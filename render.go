package kdap

import (
	"fmt"
	"strings"
)

// RenderStarNets renders ranked star nets as a numbered list, one
// interpretation per line, the way the paper's Table 1 presents them.
// Long attribute values are shortened to snippets (§6.2's content
// summaries).
func RenderStarNets(nets []*StarNet, limit int) string {
	var b strings.Builder
	for i, sn := range nets {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "... (%d more interpretations)\n", len(nets)-limit)
			break
		}
		fmt.Fprintf(&b, "%2d. [%.6f] ", i+1, sn.Score)
		for j, bg := range sn.Groups {
			if j > 0 {
				b.WriteString("  +  ")
			}
			vals := make([]string, 0, len(bg.Group.Hits))
			for _, h := range bg.Group.Hits {
				vals = append(vals, Snippet(h.Value.Text(), 40))
				if len(vals) == 3 && len(bg.Group.Hits) > 3 {
					vals = append(vals, fmt.Sprintf("…+%d", len(bg.Group.Hits)-3))
					break
				}
			}
			fmt.Fprintf(&b, "%s/%s{%s}", bg.Alias(), bg.Group.Attr, strings.Join(vals, " OR "))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RenderFacets renders the explore phase's dynamic facets as an indented
// text tree: dimensions, then ranked group-by attributes, then instances
// with aggregates — the textual equivalent of the paper's multi-faceted
// interface.
func RenderFacets(f *Facets) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sub-dataspace: %d fact rows, total aggregate %.2f\n",
		f.SubspaceSize, f.TotalAggregate)
	for _, d := range f.Dimensions {
		mark := ""
		if d.Hitted {
			mark = " *"
		}
		fmt.Fprintf(&b, "%s%s\n", d.Dimension, mark)
		for _, a := range d.Attributes {
			tag := ""
			switch {
			case a.Promoted:
				tag = " (hit)"
			case a.Numeric:
				tag = " (numeric)"
			}
			fmt.Fprintf(&b, "  %s%s  score=%s\n", a.Attr.Attr, tag, scoreLabel(a))
			for _, inst := range a.Instances {
				fmt.Fprintf(&b, "    %-32s %14.2f  (%+.4f)\n",
					Snippet(inst.Label, 32), inst.Aggregate, inst.Score)
			}
		}
	}
	return b.String()
}

func scoreLabel(a *AttrFacet) string {
	if a.Promoted {
		return "promoted"
	}
	return fmt.Sprintf("%.4f", a.Score)
}

// Snippet shortens a long attribute value for display, cutting at a word
// boundary and appending an ellipsis — the paper's treatment of big
// textual attributes such as product descriptions.
func Snippet(s string, max int) string {
	if max <= 1 || len(s) <= max {
		return s
	}
	cut := s[:max-1]
	if i := strings.LastIndexByte(cut, ' '); i > max/2 {
		cut = cut[:i]
	}
	return cut + "…"
}
