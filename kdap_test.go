package kdap

import (
	"strings"
	"testing"
)

func TestPublicQuickstartFlow(t *testing.T) {
	wh := EBiz()
	e := NewEngine(wh)
	nets, err := e.Differentiate("Columbus LCD")
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) == 0 {
		t.Fatal("no interpretations")
	}
	f, err := e.Explore(nets[0], DefaultExploreOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.SubspaceSize == 0 || len(f.Dimensions) == 0 {
		t.Fatal("empty facets")
	}
	out := RenderFacets(f)
	if !strings.Contains(out, "Sub-dataspace") {
		t.Error("facet rendering missing header")
	}
	listing := RenderStarNets(nets, 5)
	if !strings.Contains(listing, "1. [") {
		t.Errorf("net rendering: %q", listing)
	}
}

func TestRenderStarNetsTruncation(t *testing.T) {
	e := NewEngine(EBiz())
	nets, _ := e.Differentiate("Columbus LCD")
	if len(nets) < 3 {
		t.Skip("not enough nets")
	}
	out := RenderStarNets(nets, 2)
	if !strings.Contains(out, "more interpretations") {
		t.Error("limit footer missing")
	}
	full := RenderStarNets(nets, 0)
	if strings.Contains(full, "more interpretations") {
		t.Error("unlimited rendering should not truncate")
	}
}

func TestSnippet(t *testing.T) {
	cases := []struct {
		in   string
		max  int
		want string
	}{
		{"short", 10, "short"},
		{"exactly-ten", 11, "exactly-ten"},
		{"a long description about mountain bikes", 20, "a long description…"},
		{"nospacesatallinthisverylongword", 10, "nospacesa…"},
		{"x", 1, "x"},
	}
	for _, c := range cases {
		if got := Snippet(c.in, c.max); got != c.want {
			t.Errorf("Snippet(%q, %d) = %q, want %q", c.in, c.max, got, c.want)
		}
	}
}

func TestNewEngineWithMeasure(t *testing.T) {
	wh := EBiz()
	e := NewEngineWithMeasure(wh, RevenueMeasure(wh), Avg)
	if e.Agg() != Avg {
		t.Error("aggregation not wired")
	}
	nets, err := e.Differentiate("Projectors")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v, %d nets", err, len(nets))
	}
	if agg := e.SubspaceAggregate(nets[0]); agg <= 0 {
		t.Errorf("average revenue = %g", agg)
	}
}

func TestSharedWarehousesAreSingletons(t *testing.T) {
	if AWOnline() != AWOnline() {
		t.Error("AWOnline should be cached")
	}
	if AWReseller() != AWReseller() {
		t.Error("AWReseller should be cached")
	}
}

func TestMergeIntervalsPublic(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := []float64{2, 4, 6, 8, 10, 12, 14, 16}
	res := MergeIntervals(x, y, DefaultAnnealConfig())
	if res.ErrPct > 50 {
		t.Errorf("perfectly correlated series should merge well: %+v", res)
	}
}

func TestBellwetherModePublic(t *testing.T) {
	e := NewEngine(AWOnline())
	nets, err := e.Differentiate("France Clothing")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v", err)
	}
	opts := DefaultExploreOptions()
	opts.Mode = Bellwether
	f, err := e.Explore(nets[0], opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Dimensions) == 0 {
		t.Fatal("no facets in bellwether mode")
	}
}

func TestRenderStarNetsValueTruncation(t *testing.T) {
	e := NewEngine(AWOnline())
	// "Mountain" alone matches many product names: the rendering must
	// truncate long hit lists with a "…+N" marker.
	nets, err := e.Differentiate("Mountain")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v", err)
	}
	out := RenderStarNets(nets, 10)
	if !strings.Contains(out, "…+") {
		t.Errorf("long hit lists not truncated:\n%s", out)
	}
}

func TestPublicSessionFlow(t *testing.T) {
	s := NewSession(NewEngine(EBiz()), DefaultExploreOptions())
	if _, err := s.Query("Columbus LCD"); err != nil {
		t.Fatal(err)
	}
	f, err := s.Pick(1)
	if err != nil || f.SubspaceSize == 0 {
		t.Fatalf("pick: %v", err)
	}
	if s.Engine() == nil || s.Options().TopKAttrs == 0 {
		t.Error("session accessors")
	}
}

func TestPublicDiscover(t *testing.T) {
	e := NewEngine(EBiz())
	out, err := e.Discover(AttrRef{Table: "PGROUP", Attr: "GroupName"}, "Product", Surprise, 3)
	if err != nil || len(out) == 0 {
		t.Fatalf("discover: %v", err)
	}
}
