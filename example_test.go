package kdap_test

import (
	"fmt"
	"strings"

	"kdap"
)

// The two-phase KDAP loop: differentiate a keyword query into ranked
// interpretations, then explore the chosen one.
func ExampleNewEngine() {
	engine := kdap.NewEngine(kdap.EBiz())
	nets, err := engine.Differentiate("San Jose")
	if err != nil {
		panic(err)
	}
	top := nets[0]
	fmt.Println("interpretation:", top.DomainSignature())
	fmt.Println("hit:", top.Groups[0].Group.Hits[0].Value.Text())
	// Output:
	// interpretation: LOC.City[Store]
	// hit: San Jose
}

// Numeric predicates mix with keywords (the §7 measure extension).
func ExampleEngine_Differentiate_numericPredicate() {
	engine := kdap.NewEngine(kdap.EBiz())
	nets, err := engine.Differentiate("Projectors UnitPrice>1000")
	if err != nil {
		panic(err)
	}
	fmt.Println(nets[0].Filters[0].Raw)
	// Output:
	// UnitPrice>1000
}

// Explore builds the dynamic facets of a sub-dataspace; promoted hit
// attributes come first in their dimension.
func ExampleEngine_Explore() {
	engine := kdap.NewEngine(kdap.EBiz())
	nets, _ := engine.Differentiate("Projectors")
	facets, err := engine.Explore(nets[0], kdap.DefaultExploreOptions())
	if err != nil {
		panic(err)
	}
	for _, d := range facets.Dimensions {
		if d.Hitted {
			fmt.Println("hitted dimension:", d.Dimension)
			fmt.Println("promoted attribute:", d.Attributes[0].Attr.Attr)
		}
	}
	// Output:
	// hitted dimension: Product
	// promoted attribute: ClassTitle
}

// SQL renders an interpretation as the query it stands for.
func ExampleStarNet_SQL() {
	engine := kdap.NewEngine(kdap.EBiz())
	nets, _ := engine.Differentiate("Projectors")
	sql := nets[0].SQL(engine.Measure(), engine.Agg(), engine.Graph().FactTable())
	fmt.Println(strings.Split(sql, "\n")[0])
	// Output:
	// SELECT SUM("SalesRevenue")
}

// MergeIntervals is Algorithm 2: merge basic intervals into display
// ranges while preserving the correlation against the roll-up series.
func ExampleMergeIntervals() {
	x := []float64{10, 12, 11, 50, 52, 51, 90, 91, 92}
	y := []float64{20, 22, 21, 95, 99, 97, 180, 183, 181}
	res := kdap.MergeIntervals(x, y, kdap.DefaultAnnealConfig())
	fmt.Printf("ranges: %d, error below 5%%: %v\n", len(res.Splits)+1, res.ErrPct < 5)
	// Output:
	// ranges: 6, error below 5%: true
}
