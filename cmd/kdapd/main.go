// Command kdapd serves the KDAP JSON API over HTTP.
//
// Usage:
//
//	kdapd [-addr :8080] [-db ebiz,online,reseller] [-log text|json]
//	      [-query-timeout 10s] [-max-inflight 0]
//	      [-answer-cache-size 512] [-answer-cache-ttl 5m] [-shards 0]
//	      [-autotune] [-batch-window 0] [-batch-max 16] [-slo-target 250ms]
//	      [-mmap-dir DIR] [-segment-size 8192] [-segment-cache-mb 64]
//	      [-worker -shard-range I/N | -coordinator -workers HOST:PORT,...]
//
// Cluster modes (see docs/CLUSTER.md):
//
//	kdapd -worker -shard-range 0/2 -addr :9001
//	    serve the binary scatter protocol on -addr, owning shard range
//	    0 of 2 of every -db warehouse (no HTTP API)
//	kdapd -coordinator -workers host1:9001,host2:9002
//	    serve the HTTP API as a scatter-gather coordinator over the
//	    listed workers (list order is shard order); -cluster-fallback,
//	    -node-timeout, and -hedge-after tune dispatch
//
// With -mmap-dir, each served warehouse's fact table is rewritten into
// segmented column files under DIR/<warehouse> at startup and served
// disk-backed: scans page 8K-row segments in through an LRU cache
// bounded by -segment-cache-mb, and per-segment zone maps and Bloom
// filters let matching scans skip segments without touching disk.
// Answers are byte-identical to resident serving.
//
// A minimal web UI is served at /; the JSON endpoints live under /api.
// Prometheus metrics are exposed at /metrics, pprof profiles under
// /debug/pprof/, and access logs go to stderr via log/slog (-log json
// for machine-readable lines).
// See internal/server for the endpoint contract. Example session:
//
//	curl -s localhost:8080/api/query -d '{"db":"ebiz","q":"Columbus LCD"}'
//	curl -s localhost:8080/api/explore -d '{"session":"s1","pick":1}'
//
// The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"net"

	"kdap/internal/cluster"
	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/kdapcore"
	"kdap/internal/persist"
	"kdap/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dbs := flag.String("db", "ebiz,online,reseller", "comma-separated warehouses to serve")
	logFormat := flag.String("log", "text", "access log format: text or json")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second,
		"per-request pipeline deadline (0 disables); overruns return 504")
	maxInflight := flag.Int("max-inflight", 0,
		"max concurrently executing API requests (0 = unlimited); excess is queued briefly then shed with 503")
	answerCacheSize := flag.Int("answer-cache-size", 512,
		"answer cache entries per warehouse and phase (0 disables caching, ETags, and request coalescing)")
	answerCacheTTL := flag.Duration("answer-cache-ttl", 5*time.Minute,
		"answer cache entry lifetime (0 = no expiry)")
	shards := flag.Int("shards", 0,
		"partition each fact table into this many zone-mapped shards for pruned scatter-gather scans (<=1 = monolithic)")
	autotune := flag.Bool("autotune", false,
		"calibrate the parallel-kernel row threshold at startup against the largest served fact table")
	batchWindow := flag.Duration("batch-window", 0,
		"gather window for shared-scan batched execution (0 disables batching)")
	batchMax := flag.Int("batch-max", 16,
		"max requests gathered into one shared-scan batch before it flushes early")
	sloTarget := flag.Duration("slo-target", 250*time.Millisecond,
		"per-request latency target for kdap_slo_* classification and the /debug/queries slow ring")
	mmapDir := flag.String("mmap-dir", "",
		"serve fact tables disk-backed: write segmented column files under this directory and page them in on demand (empty = resident)")
	segmentSize := flag.Int("segment-size", 0,
		"rows per storage segment when -mmap-dir is set (power of two; 0 = 8192)")
	segmentCacheMB := flag.Int("segment-cache-mb", 64,
		"segment page-cache budget per disk-backed warehouse, in MiB (0 = store default)")
	worker := flag.Bool("worker", false,
		"run as a cluster worker: serve the binary scatter protocol on -addr instead of the HTTP API (requires -shard-range)")
	shardRange := flag.String("shard-range", "",
		"this worker's shard assignment as I/N (e.g. 0/2): contiguous fact-row range I of N per warehouse")
	coordinator := flag.Bool("coordinator", false,
		"run as a cluster coordinator: scatter fact-row materialization to -workers (requires -workers)")
	workerAddrs := flag.String("workers", "",
		"comma-separated worker addresses in shard order (with -coordinator)")
	clusterFallback := flag.Bool("cluster-fallback", true,
		"re-scan a failed worker's range locally so answers stay complete (false degrades to attributed partial answers)")
	nodeTimeout := flag.Duration("node-timeout", 2*time.Second,
		"hard per-worker deadline for one scatter leg")
	hedgeAfter := flag.Duration("hedge-after", 500*time.Millisecond,
		"launch a hedged local re-scan when a worker exceeds this soft deadline (0 disables hedging)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		log.Fatalf("unknown log format %q (want text or json)", *logFormat)
	}
	logger := slog.New(handler)

	warehouses := make(map[string]*dataset.Warehouse)
	for _, name := range strings.Split(*dbs, ",") {
		switch strings.TrimSpace(name) {
		case "ebiz":
			warehouses["ebiz"] = dataset.EBiz()
		case "online":
			warehouses["online"] = dataset.AWOnline()
		case "reseller":
			warehouses["reseller"] = dataset.AWReseller()
		case "":
		default:
			log.Fatalf("unknown warehouse %q", name)
		}
	}
	if len(warehouses) == 0 {
		log.Fatal("no warehouses selected")
	}

	var stores []*persist.Store
	if *mmapDir != "" {
		for name, wh := range warehouses {
			dir := filepath.Join(*mmapDir, name)
			backed, store, err := persist.BackedWarehouseOpts(dir, wh,
				persist.SegmentWriterOptions{SegmentSize: *segmentSize})
			if err != nil {
				log.Fatalf("segmenting %s into %s: %v", name, dir, err)
			}
			warehouses[name] = backed
			stores = append(stores, store)
			fmt.Printf("warehouse %s: fact table disk-backed under %s\n", name, dir)
		}
	}

	if *worker && *coordinator {
		log.Fatal("-worker and -coordinator are mutually exclusive")
	}
	if *worker {
		runWorker(*addr, *shardRange, *shards, *maxInflight, warehouses, stores)
		return
	}

	srvOpts := server.DefaultOptions()
	srvOpts.QueryTimeout = *queryTimeout
	srvOpts.MaxInflight = *maxInflight
	srvOpts.AnswerCacheSize = *answerCacheSize
	srvOpts.AnswerCacheTTL = *answerCacheTTL
	srvOpts.Shards = *shards
	srvOpts.Autotune = *autotune
	srvOpts.BatchWindow = *batchWindow
	srvOpts.BatchMax = *batchMax
	srvOpts.SLOTarget = *sloTarget
	srvOpts.SegmentCacheMB = *segmentCacheMB
	if *coordinator {
		if *workerAddrs == "" {
			log.Fatal("-coordinator requires -workers")
		}
		for _, a := range strings.Split(*workerAddrs, ",") {
			if a = strings.TrimSpace(a); a != "" {
				srvOpts.ClusterWorkers = append(srvOpts.ClusterWorkers, a)
			}
		}
		copts := cluster.DefaultOptions()
		copts.NodeTimeout = *nodeTimeout
		copts.HedgeAfter = *hedgeAfter
		copts.Fallback = *clusterFallback
		srvOpts.Cluster = copts
	}
	api := server.NewWithOptions(warehouses, srvOpts)
	api.SetLogger(logger)
	if cl := api.Cluster(); cl != nil {
		// Workers may still be binding; retry topology verification
		// briefly before refusing to serve over a skewed cluster.
		deadline := time.Now().Add(10 * time.Second)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			err := cl.Verify(ctx)
			cancel()
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				log.Fatalf("cluster verification failed: %v", err)
			}
			time.Sleep(500 * time.Millisecond)
		}
		fmt.Printf("cluster verified: %d worker(s)\n", len(srvOpts.ClusterWorkers))
		defer cl.Close()
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	fmt.Printf("kdapd listening on %s, serving %d warehouse(s); UI at /\n", *addr, len(warehouses))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	for _, st := range stores {
		if err := st.Close(); err != nil {
			log.Printf("closing segment store: %v", err)
		}
	}
}

// runWorker serves the binary scatter protocol: one engine per
// warehouse (built exactly like the server's, so a scan here is
// byte-identical to a coordinator-local scan), owning the -shard-range
// slice of every fact table. Shuts down gracefully on SIGINT/SIGTERM.
func runWorker(addr, shardRange string, shards, maxInflight int, warehouses map[string]*dataset.Warehouse, stores []*persist.Store) {
	var idx, total int
	if n, err := fmt.Sscanf(shardRange, "%d/%d", &idx, &total); n != 2 || err != nil {
		log.Fatalf("-worker requires -shard-range I/N, got %q", shardRange)
	}
	if total <= 0 || idx < 0 || idx >= total {
		log.Fatalf("shard range %d/%d out of bounds", idx, total)
	}
	engines := make(map[string]*kdapcore.Engine, len(warehouses))
	for name, wh := range warehouses {
		e := experiments.Engine(wh)
		if shards > 1 {
			e.SetShards(shards)
		}
		engines[name] = e
	}
	w := cluster.NewWorker(engines, idx, total, maxInflight)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		w.Close()
	}()
	fmt.Printf("kdapd worker %d/%d listening on %s, serving %d warehouse(s)\n",
		idx, total, addr, len(warehouses))
	if err := w.Serve(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal(err)
	}
	for _, st := range stores {
		if err := st.Close(); err != nil {
			log.Printf("closing segment store: %v", err)
		}
	}
}
