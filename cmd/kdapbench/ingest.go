package main

// The ingest experiment pins the streaming-append path's headline
// numbers: a scaled AW_ONLINE warehouse starts with half of its facts
// resident, then the other half streams in through AppendFacts in
// batches while an interactive query workload runs against it. Three
// things land in BENCH.json:
//
//	facts/sec   sustained append throughput, measured over the append
//	            wall time alone — the 100k/sec floor the gate holds.
//	p50 ratio   query p50 while ingesting over the idle p50 measured
//	            just before, bounded by the shared 20% nightly budget.
//	parity      after the stream drains, every workload query's facet
//	            fingerprint (kdapcore.Fingerprint, hex-exact floats)
//	            must be byte-identical to a from-scratch build of the
//	            full warehouse — the incremental-maintenance claim.
//
// Unlike the qps ladder's closed loop, the storm here is *paced*: each
// client issues a zipf-picked workload query on a fixed think-time
// cadence, the shape of humans exploring dashboards rather than a
// saturation test. That is deliberate. Under closed-loop saturation
// every core is already spoken for, so a background loader measures the
// scheduler's fairness, not the append path; under an offered load with
// headroom, facts/sec measures what the single writer actually sustains
// and the idle-vs-ingesting p50 comparison isolates the ingest tax.
//
// The parity check deliberately runs against the streamed engine's
// *live* caches: any answer the delta-scoped eviction wrongly kept
// across an append surfaces here as a fingerprint mismatch.
//
// `kdapbench -exp ingest` pins the numbers into BENCH.json's "ingest"
// section; the nightly gate re-runs the whole measurement.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/kdapcore"
	"kdap/internal/workload"
)

const (
	// ingestScale / ingestResident: total generated facts and the prefix
	// built resident; the difference streams in during the storm.
	ingestScale    = 512_000
	ingestResident = 256_000
	// ingestBatchRows matches kdapgen -stream's default batch size.
	ingestBatchRows = 2048
	// ingestFloorFactsPerSec is the sustained-throughput floor the
	// nightly gate enforces (an absolute contract, not baseline-relative:
	// interactive loads shouldn't have to wait for a bulk loader).
	ingestFloorFactsPerSec = 100_000
	// The paced storm: ingestClients clients each issue one workload
	// query every ingestThinkTime, ingestOps times — 256 requests per
	// storm, zipf-picked like the qps ladder.
	ingestClients   = 4
	ingestOps       = 64
	ingestThinkTime = 25 * time.Millisecond
	// ingestP50AbsSlackMs is the absolute guard under the ratio gate:
	// with the answer cache on, both p50s sit in the microseconds, where
	// a 20% ratio is timer noise. The gate only fails when the ratio is
	// blown AND the absolute regression would be user-visible.
	ingestP50AbsSlackMs = 1.0
)

// ingestBench is BENCH.json's "ingest" section.
type ingestBench struct {
	Workload     string `json:"workload"`
	FactRows     int    `json:"fact_rows"`
	ResidentRows int    `json:"resident_rows"`
	AppendedRows int    `json:"appended_rows"`
	BatchRows    int    `json:"batch_rows"`
	Batches      int    `json:"batches"`
	// FactsPerSec is AppendedRows over the append goroutine's wall time
	// (first batch submitted to last batch acknowledged), measured while
	// the query storm runs.
	FactsPerSec float64 `json:"facts_per_sec"`
	// Idle vs ingesting latency of the paced storm (think-time cadence,
	// zipf picks, answer cache on).
	IdleP50Ms      float64 `json:"idle_p50_ms"`
	IdleP99Ms      float64 `json:"idle_p99_ms"`
	IngestingP50Ms float64 `json:"ingesting_p50_ms"`
	IngestingP99Ms float64 `json:"ingesting_p99_ms"`
	P50Ratio       float64 `json:"ingesting_over_idle_p50"`
	// Delta-scoped invalidation tally across the whole stream: answers
	// evicted because a batch intersected their scope vs answers that
	// kept serving (the win over a global cache nuke).
	EvictedAnswers int64 `json:"evicted_answers"`
	KeptAnswers    int64 `json:"kept_answers"`
	// FingerprintsMatched of FingerprintQueries workload queries whose
	// post-stream facets are byte-identical to the from-scratch build.
	FingerprintQueries  int `json:"fingerprint_queries"`
	FingerprintsMatched int `json:"fingerprints_matched"`
}

// pacedLoopRun drives one paced storm: every client walks its pick
// sequence issuing one request per think-time tick (immediately, if the
// previous request overran the tick). Latencies cover the request work
// only, never the think time; wall time covers the whole storm.
func pacedLoopRun(picks [][]int, think time.Duration, do func(qi int) error) ([]time.Duration, time.Duration, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		lats     = make([]time.Duration, 0, len(picks)*len(picks[0]))
	)
	start := time.Now()
	for c := range picks {
		wg.Add(1)
		go func(seq []int) {
			defer wg.Done()
			local := make([]time.Duration, 0, len(seq))
			for _, qi := range seq {
				t0 := time.Now()
				if err := do(qi); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				took := time.Since(t0)
				local = append(local, took)
				if took < think {
					time.Sleep(think - took)
				}
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(picks[c])
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return lats, wall, nil
}

// ingestQueryOp is one storm request against the streamed engine: the
// serial differentiate+explore pair with the answer cache in play —
// the production read path minus HTTP.
func ingestQueryOp(e *kdapcore.Engine, qs []workload.Query, opts kdapcore.ExploreOptions) func(qi int) error {
	return func(qi int) error {
		nets, err := e.Differentiate(qs[qi].Text)
		if err != nil {
			return err
		}
		if len(nets) == 0 {
			return fmt.Errorf("ingest bench: %q: no interpretations", qs[qi].Text)
		}
		if _, err := e.Explore(nets[0], opts); err != nil && !emptySubspace(err) {
			return err
		}
		return nil
	}
}

// ingestFingerprint resolves one workload query to its top net's facet
// fingerprint. Queries whose top interpretation selects no facts
// fingerprint as a fixed marker, so "empty on both sides" counts as
// parity and "empty on one side" as a mismatch.
func ingestFingerprint(e *kdapcore.Engine, text string, opts kdapcore.ExploreOptions) ([]byte, error) {
	nets, err := e.Differentiate(text)
	if err != nil {
		return nil, err
	}
	if len(nets) == 0 {
		return nil, fmt.Errorf("ingest bench: %q: no interpretations", text)
	}
	f, err := e.Explore(nets[0], opts)
	if emptySubspace(err) {
		return []byte("empty sub-dataspace"), nil
	}
	if err != nil {
		return nil, err
	}
	return f.Fingerprint(), nil
}

func computeIngest() (*ingestBench, error) {
	wh, tail := dataset.AWOnlineScaledPartial(ingestScale, ingestResident)
	e := experiments.Engine(wh)
	e.SetAnswerCache(512, 0)
	qs := workload.AWOnlineQueries()
	picks := zipfPicks(ingestClients, ingestOps, len(qs))
	opts := kdapcore.DefaultExploreOptions()
	op := ingestQueryOp(e, qs, opts)

	// Idle baseline: one warm-up storm (caches, code vectors), then the
	// measured one.
	if _, _, err := pacedLoopRun(picks, ingestThinkTime, op); err != nil {
		return nil, err
	}
	idleLats, idleWall, err := pacedLoopRun(picks, ingestThinkTime, op)
	if err != nil {
		return nil, err
	}
	idle := modeResult(idleLats, idleWall)

	// The stream: one appender goroutine (the engine serializes writers
	// anyway) drains the tail in batches while storms run back to back.
	// Latency samples pool across every storm that ran before the stream
	// finished, so the quantiles reflect contended operation; facts/sec
	// is measured over the appender's wall time alone.
	type appendSummary struct {
		batches int
		wall    time.Duration
		err     error
	}
	doneCh := make(chan appendSummary, 1)
	go func() {
		start := time.Now()
		batches := 0
		for lo := 0; lo < len(tail); lo += ingestBatchRows {
			hi := lo + ingestBatchRows
			if hi > len(tail) {
				hi = len(tail)
			}
			if _, err := e.AppendFacts(context.Background(), tail[lo:hi]); err != nil {
				doneCh <- appendSummary{batches, time.Since(start), err}
				return
			}
			batches++
		}
		doneCh <- appendSummary{batches, time.Since(start), nil}
	}()

	var (
		lats    []time.Duration
		wall    time.Duration
		summary appendSummary
	)
	for done := false; !done; {
		l, w, err := pacedLoopRun(picks, ingestThinkTime, op)
		if err != nil {
			return nil, err
		}
		lats = append(lats, l...)
		wall += w
		select {
		case summary = <-doneCh:
			done = true
		default:
		}
	}
	if summary.err != nil {
		return nil, fmt.Errorf("ingest bench: append: %w", summary.err)
	}
	ingesting := modeResult(lats, wall)
	st := e.IngestStats()

	// Parity: the streamed warehouse now holds exactly the rows a full
	// build would (the generator is seeded), so every workload query
	// must fingerprint byte-identically against a from-scratch engine.
	oracle := experiments.Engine(dataset.AWOnlineScaled(ingestScale))
	matched := 0
	for _, q := range qs {
		got, err := ingestFingerprint(e, q.Text, opts)
		if err != nil {
			return nil, err
		}
		want, err := ingestFingerprint(oracle, q.Text, opts)
		if err != nil {
			return nil, err
		}
		if bytes.Equal(got, want) {
			matched++
		} else {
			fmt.Printf("ingest: fingerprint mismatch on %q (%d vs %d bytes)\n", q.Text, len(got), len(want))
		}
	}

	out := &ingestBench{
		Workload:            "AW_ONLINE scaled",
		FactRows:            ingestScale,
		ResidentRows:        ingestResident,
		AppendedRows:        len(tail),
		BatchRows:           ingestBatchRows,
		Batches:             summary.batches,
		FactsPerSec:         float64(len(tail)) / summary.wall.Seconds(),
		IdleP50Ms:           idle.P50Ms,
		IdleP99Ms:           idle.P99Ms,
		IngestingP50Ms:      ingesting.P50Ms,
		IngestingP99Ms:      ingesting.P99Ms,
		P50Ratio:            ingesting.P50Ms / idle.P50Ms,
		EvictedAnswers:      st.EvictedAnswers,
		KeptAnswers:         st.KeptAnswers,
		FingerprintQueries:  len(qs),
		FingerprintsMatched: matched,
	}
	fmt.Printf("ingest %7d facts appended in %d batches: %8.0f facts/sec\n",
		out.AppendedRows, out.Batches, out.FactsPerSec)
	fmt.Printf("ingest query p50 %8.3fms idle -> %8.3fms ingesting (%.2fx)   p99 %8.3fms -> %8.3fms\n",
		out.IdleP50Ms, out.IngestingP50Ms, out.P50Ratio, out.IdleP99Ms, out.IngestingP99Ms)
	fmt.Printf("ingest answers evicted %d kept %d   fingerprints %d/%d byte-identical to rebuild\n",
		out.EvictedAnswers, out.KeptAnswers, out.FingerprintsMatched, out.FingerprintQueries)
	return out, nil
}

// ingestJSON runs the ingest measurement and pins it into BENCH.json's
// "ingest" section, leaving every other section untouched.
func ingestJSON() error {
	fresh, err := computeIngest()
	if err != nil {
		return err
	}
	buf, err := os.ReadFile("BENCH.json")
	if err != nil {
		return fmt.Errorf("ingest: read BENCH.json (run -exp bench first): %w", err)
	}
	var out benchFile
	if err := json.Unmarshal(buf, &out); err != nil {
		return fmt.Errorf("ingest: parse BENCH.json: %w", err)
	}
	out.Ingest = fresh
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH.json", append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH.json (ingest section)")
	return nil
}

// nightlyIngest re-runs the full ingest measurement and gates it on the
// three contracts the section pins: sustained append throughput at or
// above the 100k facts/sec floor, query p50 while ingesting within the
// shared 20% budget of the idle p50 measured in the same run (same
// process, same machine — no cross-run drift), and every workload
// query's post-stream fingerprint byte-identical to the rebuild.
func nightlyIngest(base *ingestBench) ([]string, error) {
	if base == nil {
		fmt.Println("ingest: no baseline in BENCH.json, skipped")
		return nil, nil
	}
	fresh, err := computeIngest()
	if err != nil {
		return nil, err
	}
	var failures []string
	status := "ok"
	if fresh.FactsPerSec < ingestFloorFactsPerSec {
		status = "FAIL"
		failures = append(failures, fmt.Sprintf("ingest: %.0f facts/sec below the %d floor",
			fresh.FactsPerSec, ingestFloorFactsPerSec))
	}
	fmt.Printf("ingest rate  %12.0f facts/sec   baseline %12.0f (floor %d)  %s\n",
		fresh.FactsPerSec, base.FactsPerSec, ingestFloorFactsPerSec, status)
	status = "ok"
	if fresh.P50Ratio > nightlySlack && fresh.IngestingP50Ms-fresh.IdleP50Ms > ingestP50AbsSlackMs {
		status = "FAIL"
		failures = append(failures, fmt.Sprintf("ingest: query p50 %.3fms while ingesting vs %.3fms idle (%.2fx > %.2fx budget)",
			fresh.IngestingP50Ms, fresh.IdleP50Ms, fresh.P50Ratio, nightlySlack))
	}
	fmt.Printf("ingest p50   %11.2fx idle        baseline %11.2fx (budget %.2fx over %.1fms)  %s\n",
		fresh.P50Ratio, base.P50Ratio, nightlySlack, ingestP50AbsSlackMs, status)
	status = "ok"
	if fresh.FingerprintsMatched != fresh.FingerprintQueries {
		status = "FAIL"
		failures = append(failures, fmt.Sprintf("ingest: %d of %d post-stream fingerprints differ from the from-scratch build",
			fresh.FingerprintQueries-fresh.FingerprintsMatched, fresh.FingerprintQueries))
	}
	fmt.Printf("ingest parity %8d/%d fingerprints byte-identical  %s\n",
		fresh.FingerprintsMatched, fresh.FingerprintQueries, status)
	return failures, nil
}
