// Command kdapbench regenerates every table and figure of the paper's
// evaluation section and prints them as text tables.
//
// Usage:
//
//	kdapbench [-exp all|table1|table2|table3|fig4|fig4r|fig4sim|fig5|fig6|fig7|merge|latency|discover|calibrate|qps|bench|segments|ingest|cluster|nightly]
//
// The output is what EXPERIMENTS.md records as "measured".
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/kdapcore"
	"kdap/internal/schemagraph"
	"kdap/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, table1, table2, table3, fig4, fig4r, fig4sim, fig5, fig6, fig7, merge, latency, discover, calibrate, qps, bench, segments, ingest, cluster, nightly")
	flag.Parse()

	// nightly is a gate, not an experiment: it never runs under "all"
	// (which regenerates BENCH.json — a gate that rewrites its own
	// baseline would always pass).
	if *exp == "nightly" {
		start := time.Now()
		if err := nightly(); err != nil {
			fmt.Fprintf(os.Stderr, "nightly: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[nightly completed in %v]\n", time.Since(start).Round(time.Millisecond))
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("table1", table1)
	run("table2", table2)
	run("table3", table3)
	run("fig4", fig4Online)
	run("fig4r", fig4Reseller)
	run("fig4sim", fig4Similarity)
	run("fig5", fig5)
	run("fig6", fig6)
	run("fig7", fig7)
	run("merge", mergeAblation)
	run("latency", latency)
	run("discover", discover)
	// calibrate mutates the process-wide kernel tuning, so it only runs
	// when asked for by name, never under "all".
	if *exp == "calibrate" {
		run("calibrate", calibrate)
	}
	// qps mutates GOMAXPROCS during its sweep and takes tens of seconds,
	// so like calibrate it only runs when asked for by name.
	if *exp == "qps" {
		run("qps", qpsReport)
	}
	// segments streams multi-million-row warehouses onto disk and takes
	// minutes at the 10M rung, so it too only runs when asked by name;
	// it rewrites only BENCH.json's "segments" section.
	if *exp == "segments" {
		run("segments", segmentsJSON)
	}
	// ingest builds two half-million-fact warehouses and runs query
	// storms against a live append stream, so it also only runs when
	// asked by name; it rewrites only BENCH.json's "ingest" section.
	if *exp == "ingest" {
		run("ingest", ingestJSON)
	}
	// cluster boots loopback worker topologies and runs the full 50-query
	// parity sweep through real sockets, so it also only runs when asked
	// by name; it rewrites only BENCH.json's "cluster" section.
	if *exp == "cluster" {
		run("cluster", clusterJSON)
	}
	run("bench", benchJSON)
}

func table1() error {
	fmt.Printf("== Table 1: star nets for %q (AW_ONLINE) ==\n", experiments.Table1Query)
	lines, _, err := experiments.Table1(3)
	if err != nil {
		return err
	}
	for i, l := range lines {
		fmt.Printf("%d. %s\n", i+1, l)
	}
	return nil
}

func table2() error {
	fmt.Println("== Table 2: Product-dimension facets for the selected star net ==")
	_, lines, err := experiments.Table2()
	if err != nil {
		return err
	}
	for _, l := range lines {
		fmt.Println(l)
	}
	return nil
}

func table3() error {
	fmt.Println("== Table 3: the 50-query workload, with the standard method's rank per query ==")
	e := experiments.Engine(dataset.AWOnline())
	for _, q := range workload.AWOnlineQueries() {
		rank, err := experiments.QueryRank(e, q, kdapcore.Standard)
		if err != nil {
			return err
		}
		fmt.Printf("%2d. %-42q rank %d\n", q.ID, q.Text, rank)
	}
	return nil
}

func fig4Online() error {
	fmt.Println("== Figure 4: star-net ranking methods, 50-query workload (AW_ONLINE) ==")
	e := experiments.Engine(dataset.AWOnline())
	curves, err := experiments.Fig4(e, workload.AWOnlineQueries())
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRankCurves(curves))
	return nil
}

func fig4Reseller() error {
	fmt.Println("== Figure 4 replica: reseller workload (AW_RESELLER, §6.3) ==")
	e := experiments.Engine(dataset.AWReseller())
	curves, err := experiments.Fig4(e, workload.AWResellerQueries())
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRankCurves(curves))
	return nil
}

func fig4Similarity() error {
	fmt.Println("== Similarity ablation: Figure 4 standard method under each text scorer ==")
	curves, err := experiments.SimilarityAblation(dataset.AWOnline(), workload.AWOnlineQueries())
	if err != nil {
		return err
	}
	for _, sc := range curves {
		c := sc.Curve
		fmt.Printf("%-14s top1=%3.0f%% top2=%3.0f%% top3=%3.0f%% top4=%3.0f%% top5=%3.0f%%\n",
			sc.Similarity, c.CumulativePct[0], c.CumulativePct[1], c.CumulativePct[2],
			c.CumulativePct[3], c.CumulativePct[4])
	}
	return nil
}

func fig5() error {
	fmt.Println("== Figure 5: bucket count vs group-by attribute score error (AW_ONLINE) ==")
	wh := dataset.AWOnline()
	e := experiments.Engine(wh)
	var results []experiments.BucketSweepResult
	for _, c := range experiments.Fig5Cases() {
		r, err := experiments.BucketSweep(wh, e, c, experiments.DefaultBucketSweep)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	fmt.Print(experiments.FormatBucketSweeps(results))
	return nil
}

func fig6() error {
	fmt.Println("== Figure 6: bucket count vs group-by attribute score error (AW_RESELLER) ==")
	wh := dataset.AWReseller()
	e := experiments.Engine(wh)
	var results []experiments.BucketSweepResult
	for _, c := range experiments.Fig6Cases() {
		r, err := experiments.BucketSweep(wh, e, c, experiments.DefaultBucketSweep)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	fmt.Print(experiments.FormatBucketSweeps(results))
	return nil
}

func discover() error {
	fmt.Println("== Discovery: most surprising product subcategories (AW_ONLINE) ==")
	e := experiments.Engine(dataset.AWOnline())
	out, err := e.Discover(schemagraph.AttrRef{Table: "DimProductSubcategory", Attr: "SubcategoryName"},
		"Product", kdapcore.Surprise, 8)
	if err != nil {
		return err
	}
	for i, d := range out {
		fmt.Printf("%d. %-22s %6d facts  revenue %14.2f  along %s (%+.3f)\n",
			i+1, d.Value.Text(), d.Rows, d.Aggregate, d.BestAttr, d.Score)
	}
	return nil
}

func latency() error {
	fmt.Println("== Interactive latency over the 50-query workload (AW_ONLINE) ==")
	rep, err := experiments.Latency()
	if err != nil {
		return err
	}
	fmt.Printf("differentiate  p50=%-12v p95=%-12v max=%v\n",
		rep.DifferentiateP50, rep.DifferentiateP95, rep.DifferentiateMax)
	fmt.Printf("explore        p50=%-12v p95=%-12v max=%v  (%d subspaces)\n",
		rep.ExploreP50, rep.ExploreP95, rep.ExploreMax, rep.ExploredSubspaces)
	return nil
}

func mergeAblation() error {
	fmt.Println("== Merge-algorithm ablation: error% per strategy (§7 extension) ==")
	rows, err := experiments.MergeAblation([]int{5, 6, 7})
	if err != nil {
		return err
	}
	fmt.Printf("%-42s %2s %12s %8s %10s\n", "case", "K", "equal-width", "greedy", "anneal500")
	for _, r := range rows {
		fmt.Printf("%-42s %2d %11.2f%% %7.2f%% %9.2f%%\n", r.Label, r.K, r.EqualWidth, r.Greedy, r.Anneal)
	}
	return nil
}

func fig7() error {
	fmt.Println("== Figures 7/8: interval-merge convergence (error% vs iterations, K = 5..7) ==")
	for _, c := range experiments.Fig7Cases() {
		curves, err := experiments.Fig7(c, []int{5, 6, 7}, experiments.DefaultAnnealIterations)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAnnealCurves(curves))
		fmt.Println()
	}
	return nil
}
