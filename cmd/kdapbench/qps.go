package main

// The qps experiment is the closed-loop throughput ladder: N concurrent
// clients replay the 50-query workload (zipf-skewed popularity, the
// duplication shape real query logs have) against three execution
// stacks —
//
//	serial   in-process, every request does all of its own work
//	batched  in-process, shared-scan batched execution (no answer cache)
//	http     the full kdapd stack over HTTP: batching + answer cache
//
// — swept over GOMAXPROCS 1/4/16. Every mode replays the exact same
// deterministic request sequence, so the QPS and latency quantiles are
// comparable run to run; the numbers land in BENCH.json and the nightly
// gate holds future changes to them.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/kdapcore"
	"kdap/internal/server"
	"kdap/internal/telemetry/profile"
	"kdap/internal/workload"
)

const (
	// qpsClients closed-loop clients stay constant across the
	// GOMAXPROCS sweep: the ladder varies the engine's parallelism, not
	// the offered concurrency.
	qpsClients = 16
	// qpsOps requests per client per run: 256 total per measurement.
	qpsOps = 16
	// qpsZipfExponent skews query popularity toward the head — the
	// shape real query logs have (a few queries dominate, a long tail
	// remains); search-log fits usually land between 1 and 1.5.
	qpsZipfExponent = 1.4
	// qpsBatchWindow is the gather window the batched modes run with.
	qpsBatchWindow = 4 * time.Millisecond
)

// qpsGOMAXPROCS is the sweep axis.
var qpsGOMAXPROCS = []int{1, 4, 16}

// qpsModeResult is one (mode, GOMAXPROCS) measurement.
type qpsModeResult struct {
	QPS   float64 `json:"qps"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// qpsSweepEntry is one GOMAXPROCS rung of the ladder.
type qpsSweepEntry struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Serial     qpsModeResult `json:"serial"`
	Batched    qpsModeResult `json:"batched"`
	HTTP       qpsModeResult `json:"http"`
	// Speedup is batched QPS over serial QPS — the batching win with
	// the answer cache out of the picture.
	Speedup float64 `json:"batched_over_serial"`
	// SharedScans/SharedAnswers snapshot the batched engine's sharing
	// counters after the run: they explain where the speedup came from.
	SharedScans   int64 `json:"shared_scans"`
	SharedAnswers int64 `json:"shared_answers"`
}

// qpsBench is the BENCH.json qps section.
type qpsBench struct {
	Workload      string          `json:"workload"`
	Clients       int             `json:"clients"`
	OpsPerClient  int             `json:"ops_per_client"`
	ZipfExponent  float64         `json:"zipf_exponent"`
	BatchWindowMs float64         `json:"batch_window_ms"`
	Sweep         []qpsSweepEntry `json:"sweep"`
	// ProfileOverhead pins the cost of always-on per-request wide-event
	// profiling: the top-rung batched measurement re-run with a flight
	// recorder doing Start / context-attach / Complete per request. The
	// nightly gate bounds the p50 overhead at 5%.
	ProfileOverhead *qpsProfileOverhead `json:"profile_overhead,omitempty"`
}

// qpsProfileOverhead is the profiled-vs-unprofiled batched comparison
// at the top GOMAXPROCS rung.
type qpsProfileOverhead struct {
	GOMAXPROCS     int     `json:"gomaxprocs"`
	BaselineQPS    float64 `json:"baseline_qps"`
	BaselineP50Ms  float64 `json:"baseline_p50_ms"`
	ProfiledQPS    float64 `json:"profiled_qps"`
	ProfiledP50Ms  float64 `json:"profiled_p50_ms"`
	OverheadP50Pct float64 `json:"overhead_p50_pct"`
}

// zipfPicks precomputes every client's query-index sequence from a
// fixed seed, so all modes and all GOMAXPROCS rungs replay the
// identical arrival pattern.
func zipfPicks(clients, ops, nq int) [][]int {
	z := rand.NewZipf(rand.New(rand.NewSource(42)), qpsZipfExponent, 1, uint64(nq-1))
	picks := make([][]int, clients)
	for c := range picks {
		picks[c] = make([]int, ops)
		for i := range picks[c] {
			picks[c][i] = int(z.Uint64())
		}
	}
	return picks
}

// closedLoop drives one measurement: each client works through its
// pick sequence back to back, and the wall time of the whole storm
// yields QPS while the per-request latencies yield the quantiles.
func closedLoop(picks [][]int, do func(qi int) error) (qpsModeResult, error) {
	lats, wall, err := closedLoopRun(picks, do)
	if err != nil {
		return qpsModeResult{}, err
	}
	return modeResult(lats, wall), nil
}

// closedLoopRun is the raw form of closedLoop: it returns the per-op
// latencies and the storm's wall time, so callers can pool samples
// across runs before computing quantiles (the overhead rung does).
func closedLoopRun(picks [][]int, do func(qi int) error) ([]time.Duration, time.Duration, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		lats     = make([]time.Duration, 0, len(picks)*len(picks[0]))
	)
	start := time.Now()
	for c := range picks {
		wg.Add(1)
		go func(seq []int) {
			defer wg.Done()
			local := make([]time.Duration, 0, len(seq))
			for _, qi := range seq {
				t0 := time.Now()
				if err := do(qi); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(picks[c])
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return lats, wall, nil
}

// modeResult folds latency samples and total wall time into the
// QPS/quantile summary.
func modeResult(lats []time.Duration, wall time.Duration) qpsModeResult {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		i := int(float64(len(lats)) * p)
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return float64(lats[i].Nanoseconds()) / 1e6
	}
	return qpsModeResult{
		QPS:   float64(len(lats)) / wall.Seconds(),
		P50Ms: pct(0.50),
		P99Ms: pct(0.99),
	}
}

// emptySubspace recognizes the one expected per-query failure: a few
// workload queries' top interpretation selects no facts, and explore
// reports that. The engine still did the request's work, so the
// closed loop counts it as a completed op in every mode.
func emptySubspace(err error) bool {
	return err != nil && strings.Contains(err.Error(), "empty sub-dataspace")
}

// qpsSerial measures per-request execution: a fresh engine with no
// batching and no answer cache, every request differentiating and
// exploring on its own.
func qpsSerial(wh *dataset.Warehouse, qs []workload.Query, picks [][]int) (qpsModeResult, error) {
	e := experiments.Engine(wh)
	opts := kdapcore.DefaultExploreOptions()
	return closedLoop(picks, func(qi int) error {
		nets, err := e.Differentiate(qs[qi].Text)
		if err != nil {
			return err
		}
		if len(nets) == 0 {
			return fmt.Errorf("qps: %q: no interpretations", qs[qi].Text)
		}
		if _, err = e.Explore(nets[0], opts); emptySubspace(err) {
			return nil
		}
		return err
	})
}

// qpsBatched measures shared-scan batched execution with the answer
// cache off, so the speedup over serial is attributable to batching
// alone (gather + scan scope + in-flight dedup).
func qpsBatched(wh *dataset.Warehouse, qs []workload.Query, picks [][]int) (qpsModeResult, int64, int64, error) {
	lats, wall, scans, answers, err := qpsBatchedRun(wh, qs, picks)
	if err != nil {
		return qpsModeResult{}, 0, 0, err
	}
	return modeResult(lats, wall), scans, answers, nil
}

// qpsBatchedRun is qpsBatched returning raw samples (for pooling).
func qpsBatchedRun(wh *dataset.Warehouse, qs []workload.Query, picks [][]int) ([]time.Duration, time.Duration, int64, int64, error) {
	e := experiments.Engine(wh)
	e.SetBatching(qpsBatchWindow, qpsClients)
	opts := kdapcore.DefaultExploreOptions()
	ctx := context.Background()
	lats, wall, err := closedLoopRun(picks, func(qi int) error {
		nets, _, err := e.DifferentiateBatchedCtx(ctx, qs[qi].Text)
		if err != nil {
			return err
		}
		if len(nets) == 0 {
			return fmt.Errorf("qps: %q: no interpretations", qs[qi].Text)
		}
		if _, _, err = e.ExploreBatchedCtx(ctx, nets[0], opts); emptySubspace(err) {
			return nil
		}
		return err
	})
	st := e.BatchStats()
	return lats, wall, st.SharedScans, st.SharedExplores + st.SharedDifferentiates, err
}

// qpsProfiledRun is qpsBatchedRun with the per-request wide event enabled —
// Recorder.Start, context attach, instrumentation fan-in, Complete —
// exactly the per-request work the server's api() wrapper adds. The
// delta against the plain batched rung is the profiling tax.
func qpsProfiledRun(wh *dataset.Warehouse, qs []workload.Query, picks [][]int) ([]time.Duration, time.Duration, error) {
	e := experiments.Engine(wh)
	e.SetBatching(qpsBatchWindow, qpsClients)
	opts := kdapcore.DefaultExploreOptions()
	rec := profile.NewRecorder(64, 64, 64, 250*time.Millisecond, nil)
	return closedLoopRun(picks, func(qi int) error {
		p := rec.Start("/api/query", "")
		p.SetQuery(qs[qi].Text)
		ctx := profile.NewContext(context.Background(), p)
		fail := func(err error) error {
			rec.Complete(p, 0, profile.DispositionError, err)
			return err
		}
		nets, _, err := e.DifferentiateBatchedCtx(ctx, qs[qi].Text)
		if err != nil {
			return fail(err)
		}
		if len(nets) == 0 {
			return fail(fmt.Errorf("qps: %q: no interpretations", qs[qi].Text))
		}
		if _, _, err = e.ExploreBatchedCtx(ctx, nets[0], opts); err != nil && !emptySubspace(err) {
			return fail(err)
		}
		rec.Complete(p, 200, profile.DispositionOK, nil)
		return nil
	})
}

// qpsOverheadPairs is how many interleaved baseline/profiled run pairs
// the overhead rung pools before computing quantiles.
const qpsOverheadPairs = 5

// qpsOverheadPair measures the overhead comparison. A single 256-op
// batched run's p50 swings by ±15% with scheduler state, so one pair
// (or best-of-N-runs tricks) flakes a 5% gate in either direction. The
// two modes instead run strictly interleaved — baseline, profiled,
// baseline, ... — so slow drift hits both sides equally, and each
// side's per-op latencies are POOLED across all its runs before the
// quantile is taken: 5x the samples, one p50 per mode.
func qpsOverheadPair(wh *dataset.Warehouse, qs []workload.Query, picks [][]int) (baseline, profiled qpsModeResult, err error) {
	var baseLats, profLats []time.Duration
	var baseWall, profWall time.Duration
	for i := 0; i < qpsOverheadPairs; i++ {
		bl, bw, _, _, err := qpsBatchedRun(wh, qs, picks)
		if err != nil {
			return qpsModeResult{}, qpsModeResult{}, err
		}
		pl, pw, err := qpsProfiledRun(wh, qs, picks)
		if err != nil {
			return qpsModeResult{}, qpsModeResult{}, err
		}
		baseLats = append(baseLats, bl...)
		baseWall += bw
		profLats = append(profLats, pl...)
		profWall += pw
	}
	return modeResult(baseLats, baseWall), modeResult(profLats, profWall), nil
}

// qpsHTTP measures the full kdapd stack over loopback HTTP: JSON in
// and out, sessions, admission, batching, and the default answer
// cache — the ladder's production rung.
func qpsHTTP(wh *dataset.Warehouse, qs []workload.Query, picks [][]int) (qpsModeResult, error) {
	opts := server.DefaultOptions()
	opts.SessionCap = 4096
	opts.BatchWindow = qpsBatchWindow
	opts.BatchMax = qpsClients
	srv := server.NewWithOptions(map[string]*dataset.Warehouse{"online": wh}, opts)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	tr := &http.Transport{MaxIdleConns: 2 * qpsClients, MaxIdleConnsPerHost: 2 * qpsClients}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	post := func(path string, req, resp any) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		r, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(r.Body, 256))
			return fmt.Errorf("qps: %s: HTTP %d: %s", path, r.StatusCode, msg)
		}
		return json.NewDecoder(r.Body).Decode(resp)
	}
	return closedLoop(picks, func(qi int) error {
		var q struct {
			Session string `json:"session"`
		}
		if err := post("/api/query", map[string]any{"db": "online", "q": qs[qi].Text}, &q); err != nil {
			return err
		}
		var f struct {
			SubspaceSize int `json:"subspaceSize"`
		}
		if err := post("/api/explore", map[string]any{"session": q.Session, "pick": 1}, &f); err != nil && !emptySubspace(err) {
			return err
		}
		return nil
	})
}

// computeQPS runs the full ladder and returns the BENCH.json section.
func computeQPS() (qpsBench, error) {
	wh := dataset.AWOnline()
	qs := workload.AWOnlineQueries()
	picks := zipfPicks(qpsClients, qpsOps, len(qs))
	out := qpsBench{
		Workload:      "AW_ONLINE",
		Clients:       qpsClients,
		OpsPerClient:  qpsOps,
		ZipfExponent:  qpsZipfExponent,
		BatchWindowMs: float64(qpsBatchWindow) / float64(time.Millisecond),
	}
	for _, p := range qpsGOMAXPROCS {
		prev := runtime.GOMAXPROCS(p)
		serial, err := qpsSerial(wh, qs, picks)
		if err == nil {
			var batched qpsModeResult
			var scans, answers int64
			if batched, scans, answers, err = qpsBatched(wh, qs, picks); err == nil {
				var httpRes qpsModeResult
				if httpRes, err = qpsHTTP(wh, qs, picks); err == nil {
					out.Sweep = append(out.Sweep, qpsSweepEntry{
						GOMAXPROCS:    p,
						Serial:        serial,
						Batched:       batched,
						HTTP:          httpRes,
						Speedup:       batched.QPS / serial.QPS,
						SharedScans:   scans,
						SharedAnswers: answers,
					})
					// The profiling-overhead rung runs only at the top of
					// the ladder, back-to-back with its baseline so the two
					// share warm-up and scheduling state. Both sides are
					// best-of-two: the true cost per request is a handful of
					// atomic adds, so a single 256-op run is dominated by
					// scheduler noise, and an asymmetric comparison would
					// flake the 5% gate in either direction.
					if p == qpsGOMAXPROCS[len(qpsGOMAXPROCS)-1] {
						var baseline, profiled qpsModeResult
						if baseline, profiled, err = qpsOverheadPair(wh, qs, picks); err == nil {
							out.ProfileOverhead = &qpsProfileOverhead{
								GOMAXPROCS:     p,
								BaselineQPS:    baseline.QPS,
								BaselineP50Ms:  baseline.P50Ms,
								ProfiledQPS:    profiled.QPS,
								ProfiledP50Ms:  profiled.P50Ms,
								OverheadP50Pct: (profiled.P50Ms - baseline.P50Ms) / baseline.P50Ms * 100,
							}
						}
					}
				}
			}
		}
		runtime.GOMAXPROCS(prev)
		if err != nil {
			return qpsBench{}, err
		}
	}
	return out, nil
}

// qpsReport is the -exp qps entry point.
func qpsReport() error {
	fmt.Printf("== Closed-loop QPS ladder: %d clients, %d ops each, zipf %.1f over the 50-query workload ==\n",
		qpsClients, qpsOps, qpsZipfExponent)
	rep, err := computeQPS()
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-28s %-28s %-28s %8s\n", "GOMAXPROCS",
		"serial qps (p50/p99 ms)", "batched qps (p50/p99 ms)", "http qps (p50/p99 ms)", "speedup")
	for _, s := range rep.Sweep {
		fmt.Printf("%-10d %8.1f (%6.1f/%7.1f)     %8.1f (%6.1f/%7.1f)     %8.1f (%6.1f/%7.1f)    %6.2fx\n",
			s.GOMAXPROCS,
			s.Serial.QPS, s.Serial.P50Ms, s.Serial.P99Ms,
			s.Batched.QPS, s.Batched.P50Ms, s.Batched.P99Ms,
			s.HTTP.QPS, s.HTTP.P50Ms, s.HTTP.P99Ms,
			s.Speedup)
	}
	if po := rep.ProfileOverhead; po != nil {
		fmt.Printf("profiling overhead @GOMAXPROCS=%d: p50 %.2fms -> %.2fms (%+.1f%%), qps %.1f -> %.1f\n",
			po.GOMAXPROCS, po.BaselineP50Ms, po.ProfiledP50Ms, po.OverheadP50Pct,
			po.BaselineQPS, po.ProfiledQPS)
	}
	return nil
}
