package main

// The segments experiment measures the disk-backed segment layer at
// scale: it streams a scaled AW_ONLINE warehouse (1M and 10M facts)
// into segment files, then times a selective drill-down served entirely
// from disk through the byte-budgeted page cache — cold (page cache
// dropped before every run) and warm (pages resident). Alongside the
// latencies it records the skip profile (how many of the table's
// segments the drill never touched, on zone-map or Bloom evidence) and
// the process's peak RSS, the number that proves the 10M-fact warehouse
// was answered in bounded memory rather than materialized.
//
// `kdapbench -exp segments` pins the numbers into BENCH.json's
// "segments" section; the nightly gate re-runs the first (1M) scale and
// fails on a cold-drill latency regression, an RSS blowup, or a skip
// rate below the 50% floor.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"kdap/internal/experiments"
	"kdap/internal/persist"
	"kdap/internal/relation"
)

// segmentsBench is BENCH.json's "segments" section.
type segmentsBench struct {
	SegmentSize   int                  `json:"segment_size"`
	CacheBudgetMB int                  `json:"cache_budget_mb"`
	Scales        []segmentsScaleBench `json:"scales"`
}

// segmentsScaleBench is one fact-count point of the segments ladder.
type segmentsScaleBench struct {
	Facts    int    `json:"facts"`
	Segments int    `json:"segments"`
	Query    string `json:"query"`
	// SubspaceRows is the drill's result cardinality (sanity anchor:
	// the bound selects the top ~10% of the ingest-clustered SalesKey).
	SubspaceRows int `json:"subspace_rows"`
	// BuildSecs is the wall time to stream-generate the facts into
	// segment files (never materializing the table in memory).
	BuildSecs float64 `json:"build_secs"`
	// ColdDrillNs times differentiate-free SubspaceRows with both the
	// rows cache and the segment page cache purged before every run —
	// every byte the drill touches comes off disk. WarmDrillNs purges
	// only the rows cache, so pages are served from the budgeted LRU.
	ColdDrillNs int64 `json:"cold_drill_ns"`
	WarmDrillNs int64 `json:"warm_drill_ns"`
	// Skip profile of one cold drill: segments the scan proved
	// irrelevant from the manifest's Bloom filters or zone maps without
	// touching their pages, and SkippedPct = skipped / Segments — the
	// fraction of the table the drill never read.
	SkippedBloom int64   `json:"skipped_bloom"`
	SkippedZone  int64   `json:"skipped_zone"`
	SkippedPct   float64 `json:"skipped_pct"`
	// Paging profile of the same cold drill.
	PagedIn int64 `json:"paged_in"`
	Evicted int64 `json:"evicted"`
	// MaxRSSKB is the process's VmHWM after this scale completed. At
	// 10M facts the raw columns are ~25x larger than the 64 MiB page
	// budget, so a bounded number here is the disk-backed claim.
	MaxRSSKB int64 `json:"max_rss_kb"`
}

const (
	segBenchCacheMB = 64
	segBenchColdIt  = 3
	segBenchWarmIt  = 5
)

var segBenchScales = []int{1_000_000, 10_000_000}

// benchSegmentsScale builds the n-fact backed warehouse in a temp dir
// and measures the drill.
func benchSegmentsScale(n int) (segmentsScaleBench, error) {
	dir, err := os.MkdirTemp("", "kdapbench-segments-")
	if err != nil {
		return segmentsScaleBench{}, err
	}
	defer os.RemoveAll(dir)

	buildStart := time.Now()
	wh, store, err := persist.AWOnlineScaledBacked(dir, n, 0)
	if err != nil {
		return segmentsScaleBench{}, fmt.Errorf("segments bench: build %d facts: %w", n, err)
	}
	defer store.Close()
	buildSecs := time.Since(buildStart).Seconds()
	store.SetCacheBudget(segBenchCacheMB << 20)

	e := experiments.Engine(wh)
	query := fmt.Sprintf("Road Bikes SalesKey>%d", n/10*9)
	nets, err := e.Differentiate(query)
	if err != nil || len(nets) == 0 {
		return segmentsScaleBench{}, fmt.Errorf("segments bench: differentiate %q: %v (%d nets)", query, err, len(nets))
	}

	// One instrumented cold drill for the skip and paging profile.
	store.DropCache()
	e.InvalidateSubspaceRows()
	before := store.Stats()
	rows := e.SubspaceRows(nets[0])
	after := store.Stats()
	if len(rows) == 0 {
		return segmentsScaleBench{}, fmt.Errorf("segments bench: %q drill produced no rows", query)
	}
	nseg := relation.NumSegments(store.NumRows(), store.SegmentSize())
	skipped := (after.SkippedBloom - before.SkippedBloom) + (after.SkippedZone - before.SkippedZone)

	cold := timeMinNs(segBenchColdIt, func() {
		store.DropCache()
		e.InvalidateSubspaceRows()
		if len(e.SubspaceRows(nets[0])) != len(rows) {
			panic("segments bench: cold drill changed cardinality")
		}
	})
	warm := timeMinNs(segBenchWarmIt, func() {
		e.InvalidateSubspaceRows()
		if len(e.SubspaceRows(nets[0])) != len(rows) {
			panic("segments bench: warm drill changed cardinality")
		}
	})

	return segmentsScaleBench{
		Facts:        n,
		Segments:     nseg,
		Query:        query,
		SubspaceRows: len(rows),
		BuildSecs:    buildSecs,
		ColdDrillNs:  cold,
		WarmDrillNs:  warm,
		SkippedBloom: after.SkippedBloom - before.SkippedBloom,
		SkippedZone:  after.SkippedZone - before.SkippedZone,
		SkippedPct:   100 * float64(skipped) / float64(nseg),
		PagedIn:      after.PagedIn - before.PagedIn,
		Evicted:      after.Evicted - before.Evicted,
		MaxRSSKB:     vmHWMKB(),
	}, nil
}

func computeSegments(scales []int) (*segmentsBench, error) {
	out := &segmentsBench{
		SegmentSize:   relation.DefaultSegmentSize,
		CacheBudgetMB: segBenchCacheMB,
	}
	for _, n := range scales {
		sb, err := benchSegmentsScale(n)
		if err != nil {
			return nil, err
		}
		fmt.Printf("segments %8d facts: cold %8.1fms warm %8.1fms  skipped %d/%d segs (%.0f%%)  rss %d KB  (built in %.1fs)\n",
			sb.Facts, float64(sb.ColdDrillNs)/1e6, float64(sb.WarmDrillNs)/1e6,
			sb.SkippedBloom+sb.SkippedZone, sb.Segments, sb.SkippedPct, sb.MaxRSSKB, sb.BuildSecs)
		out.Scales = append(out.Scales, sb)
	}
	return out, nil
}

// segmentsJSON runs the segments ladder and pins it into BENCH.json's
// "segments" section, leaving every other section untouched.
func segmentsJSON() error {
	fresh, err := computeSegments(segBenchScales)
	if err != nil {
		return err
	}
	buf, err := os.ReadFile("BENCH.json")
	if err != nil {
		return fmt.Errorf("segments: read BENCH.json (run -exp bench first): %w", err)
	}
	var out benchFile
	if err := json.Unmarshal(buf, &out); err != nil {
		return fmt.Errorf("segments: parse BENCH.json: %w", err)
	}
	out.Segments = fresh
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH.json", append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH.json (segments section)")
	return nil
}

// nightlySegments gates the first (1M-fact) rung of the segments ladder
// against the pinned baseline: cold-drill latency within the shared 20%
// budget, peak RSS within 1.5x, and the skip rate at or above the 50%
// floor the layer was built to clear. The 10M rung stays pinned but is
// not re-run nightly — one core, one night. Runs before computeBench so
// VmHWM still reflects the segmented run rather than the resident
// warehouses the other benches load.
func nightlySegments(base *segmentsBench) ([]string, error) {
	if base == nil || len(base.Scales) == 0 {
		fmt.Println("segments: no baseline in BENCH.json, skipped")
		return nil, nil
	}
	const rssSlack = 1.5
	b := base.Scales[0]
	fresh, err := benchSegmentsScale(b.Facts)
	if err != nil {
		return nil, err
	}
	var failures []string
	ratio := float64(fresh.ColdDrillNs) / float64(b.ColdDrillNs)
	status := "ok"
	if ratio > nightlySlack {
		status = "FAIL"
		failures = append(failures, fmt.Sprintf("segments@%d: cold drill %dns vs baseline %dns (%.2fx > %.2fx budget)",
			b.Facts, fresh.ColdDrillNs, b.ColdDrillNs, ratio, nightlySlack))
	}
	fmt.Printf("segments@%d cold %12d ns   baseline %12d   %.2fx  %s\n",
		b.Facts, fresh.ColdDrillNs, b.ColdDrillNs, ratio, status)
	if b.MaxRSSKB > 0 && float64(fresh.MaxRSSKB) > float64(b.MaxRSSKB)*rssSlack {
		failures = append(failures, fmt.Sprintf("segments@%d: peak RSS %d KB vs baseline %d KB (> %.1fx ceiling)",
			b.Facts, fresh.MaxRSSKB, b.MaxRSSKB, rssSlack))
	}
	fmt.Printf("segments@%d rss  %12d KB   baseline %12d KB (ceiling %.1fx)\n",
		b.Facts, fresh.MaxRSSKB, b.MaxRSSKB, rssSlack)
	if fresh.SkippedPct < 50 {
		failures = append(failures, fmt.Sprintf("segments@%d: skip rate %.0f%% below the 50%% floor",
			b.Facts, fresh.SkippedPct))
	}
	fmt.Printf("segments@%d skip %11.0f %%    baseline %11.0f %% (floor 50%%)\n",
		b.Facts, fresh.SkippedPct, b.SkippedPct)
	return failures, nil
}

// timeMinNs runs fn iters times and returns the fastest wall time —
// the drill is seconds-scale at 10M facts, so the bench-style
// 200ms-per-block loop would cost minutes for no extra signal.
func timeMinNs(iters int, fn func()) int64 {
	var best int64
	for i := 0; i < iters; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start).Nanoseconds(); i == 0 || d < best {
			best = d
		}
	}
	return best
}

// vmHWMKB reads the process's peak resident set (VmHWM) from
// /proc/self/status; 0 on platforms without procfs.
func vmHWMKB() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}
