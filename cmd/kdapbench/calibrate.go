package main

import (
	"fmt"
	"runtime"

	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/olap"
)

// calibrate sweeps the serial/striped kernel crossover for a ladder of
// GOMAXPROCS values against the AW_ONLINE fact table — the same
// calibration kdapd runs at startup under -autotune — and prints each
// verdict. The host's own core count is restored (and its verdict
// applied) before returning, so a following -exp bench run measures the
// tuned kernel.
func calibrate() error {
	fmt.Println("== Kernel calibration: striped-scan crossover per GOMAXPROCS (AW_ONLINE) ==")
	e := experiments.Engine(dataset.AWOnline())
	ex, m := e.Executor(), e.Measure()

	host := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(host)
	for _, gmp := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(gmp)
		tn := olap.CalibrateThreshold(ex, m)
		verdict := "serial always (striping never won)"
		if tn.ParallelRowThreshold > 0 {
			verdict = fmt.Sprintf("stripe at >= %d rows", tn.ParallelRowThreshold)
		}
		fmt.Printf("GOMAXPROCS %2d: %s\n", gmp, verdict)
	}

	runtime.GOMAXPROCS(host)
	tn := olap.CalibrateThreshold(ex, m)
	olap.ApplyTuning(tn)
	fmt.Printf("applied for this host (GOMAXPROCS %d): threshold %d\n", host, olap.ParallelRowThreshold())
	return nil
}
