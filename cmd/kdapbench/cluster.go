package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"

	"kdap/internal/cluster"
	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/kdapcore"
	"kdap/internal/workload"
)

// The cluster experiment is the distributed rung of the bench ladder:
// in-process worker nodes on loopback (real sockets, real wire
// protocol — only the network distance is fake), a coordinator engine
// scattering to them, fingerprint parity against a monolithic engine
// over the full 50-query workload, and a cold-explore latency ladder at
// 1/2/4 workers. Written to BENCH.json's "cluster" section by
// `-exp cluster`; the nightly gate re-runs parity (hard fail on any
// divergence) and holds the 2-worker-vs-monolithic latency ratio to the
// usual slack budget.

// clusterBench is BENCH.json's "cluster" section.
type clusterBench struct {
	Workload string `json:"workload"`
	// ParityQueries/ParityMatched: workload queries whose 2-worker
	// facets fingerprint byte-identical to the monolithic engine's.
	ParityQueries int `json:"parity_queries"`
	ParityMatched int `json:"parity_matched"`
	// MonolithicNsPerOp is the cold explore (rows cache purged every
	// iteration) on a single local engine.
	MonolithicNsPerOp int64 `json:"monolithic_ns_per_op"`
	// Rungs is the same cold explore through a coordinator at each
	// worker count.
	Rungs []clusterRung `json:"rungs"`
	// RatioTwoWorkers = 2-worker ns/op ÷ monolithic ns/op — the number
	// the nightly gate pins. Loopback workers can't beat a local scan
	// (the rows still cross a socket), so this measures scatter overhead
	// and catches protocol or dispatch regressions.
	RatioTwoWorkers float64 `json:"ratio_two_workers"`
}

// clusterRung is one worker-count point of the ladder.
type clusterRung struct {
	Workers int   `json:"workers"`
	NsPerOp int64 `json:"ns_per_op"`
}

// clusterQuery is the ladder's drill: selective enough that row-set
// transfer doesn't dwarf the semijoin, same query the sharded bench
// uses.
const clusterQuery = "Road Bikes UnitPrice>1000"

// startBenchWorkers launches n in-process workers on loopback and
// returns their addresses plus a shutdown func.
func startBenchWorkers(n int) ([]string, func(), error) {
	var addrs []string
	var ws []*cluster.Worker
	shutdown := func() {
		for _, w := range ws {
			w.Close()
		}
	}
	for i := 0; i < n; i++ {
		w := cluster.NewWorker(map[string]*kdapcore.Engine{
			"online": experiments.Engine(dataset.AWOnline()),
		}, i, n, 0)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		go w.Serve(ln)
		ws = append(ws, w)
		addrs = append(addrs, ln.Addr().String())
	}
	return addrs, shutdown, nil
}

// clusterEngine builds a coordinator engine scattering to addrs, with
// hedging off and fallback on — the configuration where every answer
// must come off the wire unless a node actually dies.
func clusterEngine(addrs []string) (*kdapcore.Engine, *cluster.Cluster, error) {
	e := experiments.Engine(dataset.AWOnline())
	opts := cluster.DefaultOptions()
	opts.HedgeAfter = 0
	cl := cluster.New(addrs, map[string]*kdapcore.Engine{"online": e}, opts)
	if err := cl.Verify(context.Background()); err != nil {
		cl.Close()
		return nil, nil, err
	}
	e.SetScatter(cl.Scatterer("online"))
	return e, cl, nil
}

// coldExplore differentiates once, then returns a timed body that
// explores the top net with the rows cache purged every iteration, so
// every run re-materializes the subspace (through the scatter path on a
// coordinator engine).
func coldExplore(e *kdapcore.Engine, query string) (func(), error) {
	nets, err := e.Differentiate(query)
	if err != nil || len(nets) == 0 {
		return nil, fmt.Errorf("cluster bench: differentiate %q: %v (%d nets)", query, err, len(nets))
	}
	opts := kdapcore.DefaultExploreOptions()
	return func() {
		e.InvalidateSubspaceRows()
		if _, err := e.Explore(nets[0], opts); err != nil {
			panic(err)
		}
	}, nil
}

func computeCluster() (*clusterBench, error) {
	out := &clusterBench{Workload: "AW_ONLINE"}

	// Parity first: all 50 workload queries, 2 workers vs monolithic.
	mono := experiments.Engine(dataset.AWOnline())
	addrs, shutdown, err := startBenchWorkers(2)
	if err != nil {
		return nil, err
	}
	coord, cl, err := clusterEngine(addrs)
	if err != nil {
		shutdown()
		return nil, err
	}
	exploreFP := func(e *kdapcore.Engine, q string) ([]byte, error) {
		nets, err := e.Differentiate(q)
		if err != nil || len(nets) == 0 {
			return nil, fmt.Errorf("differentiate %q: %v (%d nets)", q, err, len(nets))
		}
		f, err := e.Explore(nets[0], kdapcore.DefaultExploreOptions())
		// Same convention as the ingest parity sweep: empty on both
		// sides is parity, empty on one side is a mismatch.
		if emptySubspace(err) {
			return []byte("empty sub-dataspace"), nil
		}
		if err != nil {
			return nil, fmt.Errorf("explore %q: %w", q, err)
		}
		return f.Fingerprint(), nil
	}
	for _, q := range workload.AWOnlineQueries() {
		out.ParityQueries++
		want, err := exploreFP(mono, q.Text)
		if err != nil {
			cl.Close()
			shutdown()
			return nil, err
		}
		got, err := exploreFP(coord, q.Text)
		if err != nil {
			cl.Close()
			shutdown()
			return nil, err
		}
		if bytes.Equal(want, got) {
			out.ParityMatched++
		} else {
			fmt.Printf("cluster: PARITY MISMATCH query %d %q\n", q.ID, q.Text)
		}
	}
	cl.Close()
	shutdown()

	// Latency ladder: monolithic, then 1/2/4 workers.
	body, err := coldExplore(mono, clusterQuery)
	if err != nil {
		return nil, err
	}
	out.MonolithicNsPerOp = measure("ClusterMonolithic", body).NsPerOp
	for _, n := range []int{1, 2, 4} {
		addrs, shutdown, err := startBenchWorkers(n)
		if err != nil {
			return nil, err
		}
		coord, cl, err := clusterEngine(addrs)
		if err != nil {
			shutdown()
			return nil, err
		}
		body, err := coldExplore(coord, clusterQuery)
		if err != nil {
			cl.Close()
			shutdown()
			return nil, err
		}
		ns := measure(fmt.Sprintf("Cluster%dWorkers", n), body).NsPerOp
		out.Rungs = append(out.Rungs, clusterRung{Workers: n, NsPerOp: ns})
		if n == 2 {
			out.RatioTwoWorkers = float64(ns) / float64(out.MonolithicNsPerOp)
		}
		cl.Close()
		shutdown()
	}
	return out, nil
}

func printCluster(c *clusterBench) {
	fmt.Printf("cluster parity   %d/%d workload fingerprints byte-identical (2 workers)\n",
		c.ParityMatched, c.ParityQueries)
	fmt.Printf("cluster mono     %12d ns/op cold explore\n", c.MonolithicNsPerOp)
	for _, r := range c.Rungs {
		fmt.Printf("cluster %dw       %12d ns/op (%.2fx mono)\n",
			r.Workers, r.NsPerOp, float64(r.NsPerOp)/float64(c.MonolithicNsPerOp))
	}
}

func clusterJSON() error {
	fresh, err := computeCluster()
	if err != nil {
		return err
	}
	if fresh.ParityMatched != fresh.ParityQueries {
		return fmt.Errorf("cluster: %d of %d workload queries diverged from monolithic",
			fresh.ParityQueries-fresh.ParityMatched, fresh.ParityQueries)
	}
	buf, err := os.ReadFile("BENCH.json")
	if err != nil {
		return fmt.Errorf("cluster: read BENCH.json (run -exp bench first): %w", err)
	}
	var out benchFile
	if err := json.Unmarshal(buf, &out); err != nil {
		return fmt.Errorf("cluster: parse BENCH.json: %w", err)
	}
	out.Cluster = fresh
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH.json", append(enc, '\n'), 0o644); err != nil {
		return err
	}
	printCluster(fresh)
	fmt.Println("wrote BENCH.json (cluster section)")
	return nil
}

// clusterRatioSlack is the nightly budget for the 2-worker-vs-mono
// ratio: loopback scatter adds protocol and socket cost on top of the
// scan, and the ratio flaps more than a pure-CPU kernel, so it gets a
// wider budget than nightlySlack.
const clusterRatioSlack = 1.50

func nightlyCluster(base *clusterBench) ([]string, error) {
	if base == nil {
		fmt.Println("cluster: no baseline in BENCH.json, skipped")
		return nil, nil
	}
	fresh, err := computeCluster()
	if err != nil {
		return nil, err
	}
	var failures []string
	status := "ok"
	if fresh.ParityMatched != fresh.ParityQueries {
		status = "FAIL"
		failures = append(failures, fmt.Sprintf("cluster: %d of %d workload queries diverged from monolithic",
			fresh.ParityQueries-fresh.ParityMatched, fresh.ParityQueries))
	}
	fmt.Printf("cluster parity %6d/%d fingerprints byte-identical  %s\n",
		fresh.ParityMatched, fresh.ParityQueries, status)
	status = "ok"
	if base.RatioTwoWorkers > 0 && fresh.RatioTwoWorkers > base.RatioTwoWorkers*clusterRatioSlack {
		status = "FAIL"
		failures = append(failures, fmt.Sprintf("cluster: 2-worker ratio %.2fx vs baseline %.2fx (>%.0f%% regression)",
			fresh.RatioTwoWorkers, base.RatioTwoWorkers, (clusterRatioSlack-1)*100))
	}
	fmt.Printf("cluster 2w ratio %9.2fx mono      baseline %9.2fx (budget %.2fx)  %s\n",
		fresh.RatioTwoWorkers, base.RatioTwoWorkers, clusterRatioSlack, status)
	return failures, nil
}
