package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"kdap/internal/cache"
	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
)

// The bench experiment times the columnar execution kernels against the
// retained row-at-a-time reference paths on AW_ONLINE and writes the
// numbers to BENCH.json, so future changes can track the perf
// trajectory without re-deriving a baseline.

// benchResult is one measured operation.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchFile is the BENCH.json schema.
type benchFile struct {
	GeneratedBy string        `json:"generated_by"`
	Date        string        `json:"date"`
	GoOS        string        `json:"goos"`
	GoArch      string        `json:"goarch"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Dataset     string        `json:"dataset"`
	Results     []benchResult `json:"results"`
	// Baseline holds the pre-columnar seed numbers (go test -bench
	// -benchtime=20x on the same machine), kept verbatim so the
	// speedup this PR claims stays auditable.
	Baseline map[string]benchResult `json:"baseline_pre_columnar"`
	// BaselinePreCancellation pins the kernel numbers from just before
	// the context-first refactor threaded cancellation checks through
	// the hot loops (go test -bench -benchtime=100x, same machine), so
	// the refactor's zero-overhead claim — a nil Done channel costs
	// nothing — stays auditable against the Results above.
	BaselinePreCancellation map[string]benchResult `json:"baseline_pre_cancellation"`
	// Telemetry snapshots the engine's own counters after the timed
	// runs: cache hit rates and kernel-path counts explain the numbers
	// above (e.g. a warm constraint cache or an all-columnar run).
	Telemetry benchTelemetry `json:"telemetry"`
	// AnswerCache records the cold-vs-warm cost of a full query pair
	// (differentiate + explore) through the answer cache, plus the
	// cache's counters after the timed runs.
	AnswerCache answerCacheBench `json:"answer_cache"`
}

// answerCacheBench is the cold-vs-warm answer-cache comparison.
type answerCacheBench struct {
	// ColdNsPerOp times differentiate + explore with the cache
	// invalidated before every iteration (every answer recomputed).
	ColdNsPerOp int64 `json:"cold_ns_per_op"`
	// WarmNsPerOp times the same pair against a populated cache.
	WarmNsPerOp int64   `json:"warm_ns_per_op"`
	Speedup     float64 `json:"speedup"`
	// Differentiate and Explore snapshot the per-phase cache counters
	// accumulated across both timed runs.
	Differentiate answerCacheSnapshot `json:"differentiate"`
	Explore       answerCacheSnapshot `json:"explore"`
}

// answerCacheSnapshot is cache.AnswerStats plus the derived hit rate.
type answerCacheSnapshot struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Coalesced int64   `json:"coalesced"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	HitRate   float64 `json:"hit_rate"`
}

func snapshotAnswers(s cache.AnswerStats) answerCacheSnapshot {
	return answerCacheSnapshot{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Coalesced: s.Coalesced, Entries: s.Len, Bytes: s.Bytes,
		HitRate: s.HitRate(),
	}
}

// benchTelemetry is the post-run engine counter snapshot.
type benchTelemetry struct {
	SubspaceRowsCache cacheSnapshot  `json:"subspace_rows_cache"`
	ConstraintCache   cacheSnapshot  `json:"constraint_cache"`
	Kernels           olap.ExecStats `json:"kernels"`
	FulltextProbes    int64          `json:"fulltext_probes"`
}

// cacheSnapshot is cache.Stats plus the derived hit rate.
type cacheSnapshot struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

func snapshotCache(s cache.Stats) cacheSnapshot {
	return cacheSnapshot{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		HitRate: s.HitRate(),
	}
}

// measure times fn (≥ minIters iterations, ≥ 200ms of wall time) and
// counts its steady-state allocations.
func measure(name string, fn func()) benchResult {
	fn() // warm caches out of the timed region
	const minIters = 20
	iters := 0
	start := time.Now()
	for elapsed := time.Duration(0); iters < minIters || elapsed < 200*time.Millisecond; elapsed = time.Since(start) {
		fn()
		iters++
	}
	ns := time.Since(start).Nanoseconds() / int64(iters)
	allocs := testing.AllocsPerRun(5, fn)
	return benchResult{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func benchJSON() error {
	e := experiments.Engine(dataset.AWOnline())
	ex := e.Executor()
	m := e.Measure()
	path, ok := e.Graph().PathFromFact("DimProductSubcategory", "Product")
	if !ok {
		return fmt.Errorf("bench: no path to DimProductSubcategory")
	}
	rows := ex.FactRows(nil)

	nets, err := e.Differentiate(experiments.Table1Query)
	if err != nil || len(nets) == 0 {
		return fmt.Errorf("bench: differentiate: %v (%d nets)", err, len(nets))
	}
	opts := kdapcore.DefaultExploreOptions()
	opts.DisplayIntervals = 3

	out := benchFile{
		GeneratedBy: "kdapbench -exp bench",
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "AW_ONLINE",
		Results: []benchResult{
			measure("GroupByDict", func() {
				if len(ex.GroupBy(rows, "SubcategoryName", path, m, olap.Sum)) == 0 {
					panic("no groups")
				}
			}),
			measure("GroupByRef", func() {
				if len(ex.GroupByRef(rows, "SubcategoryName", path, m, olap.Sum)) == 0 {
					panic("no groups")
				}
			}),
			measure("FusedAggregate", func() {
				if ex.Aggregate(rows, m, olap.Sum) == 0 {
					panic("zero aggregate")
				}
			}),
			measure("AggregateRef", func() {
				if ex.AggregateRef(rows, m, olap.Sum) == 0 {
					panic("zero aggregate")
				}
			}),
			measure("Table2Facets", func() {
				if _, err := e.Explore(nets[0], opts); err != nil {
					panic(err)
				}
			}),
		},
		Baseline: map[string]benchResult{
			"Table2Facets": {Name: "BenchmarkTable2Facets", NsPerOp: 67288548, AllocsPerOp: 22094},
			"GroupBy":      {Name: "BenchmarkGroupBy", NsPerOp: 3748548, AllocsPerOp: 61},
		},
		BaselinePreCancellation: map[string]benchResult{
			"GroupByDict":    {Name: "BenchmarkGroupByDict/dict", NsPerOp: 177768, AllocsPerOp: 7},
			"FusedAggregate": {Name: "BenchmarkFusedAggregate/fused", NsPerOp: 183794, AllocsPerOp: 0},
		},
	}
	out.Telemetry = benchTelemetry{
		SubspaceRowsCache: snapshotCache(e.RowsCacheStats()),
		ConstraintCache:   snapshotCache(ex.ConstraintCacheStats()),
		Kernels:           ex.Stats(),
		FulltextProbes:    e.Index().ProbeCount(),
	}

	// Cold vs warm through the answer cache: the cache is enabled only
	// now, so the kernel measurements above stay uncached. Cold
	// invalidates before every iteration; warm replays the identical
	// query pair against the populated store.
	e.SetAnswerCache(64, 0)
	queryPair := func() {
		ns, err := e.Differentiate(experiments.Table1Query)
		if err != nil || len(ns) == 0 {
			panic(fmt.Sprintf("bench: differentiate: %v (%d nets)", err, len(ns)))
		}
		if _, err := e.Explore(ns[0], opts); err != nil {
			panic(err)
		}
	}
	cold := measure("AnswerCacheCold", func() {
		e.InvalidateAnswers()
		queryPair()
	})
	warm := measure("AnswerCacheWarm", queryPair)
	out.Results = append(out.Results, cold, warm)
	diffStats, explStats, _ := e.AnswerCacheStats()
	out.AnswerCache = answerCacheBench{
		ColdNsPerOp:   cold.NsPerOp,
		WarmNsPerOp:   warm.NsPerOp,
		Speedup:       float64(cold.NsPerOp) / float64(warm.NsPerOp),
		Differentiate: snapshotAnswers(diffStats),
		Explore:       snapshotAnswers(explStats),
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH.json", append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range out.Results {
		fmt.Printf("%-16s %12d ns/op %10.0f allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	fmt.Println("wrote BENCH.json")
	return nil
}
