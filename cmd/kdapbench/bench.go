package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"kdap/internal/cache"
	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/workload"
)

// The bench experiment times the columnar execution kernels against the
// retained row-at-a-time reference paths on AW_ONLINE and writes the
// numbers to BENCH.json, so future changes can track the perf
// trajectory without re-deriving a baseline.

// benchResult is one measured operation.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchFile is the BENCH.json schema.
type benchFile struct {
	GeneratedBy string        `json:"generated_by"`
	Date        string        `json:"date"`
	GoOS        string        `json:"goos"`
	GoArch      string        `json:"goarch"`
	GoMaxProcs  int           `json:"gomaxprocs"`
	Dataset     string        `json:"dataset"`
	Results     []benchResult `json:"results"`
	// Baseline holds the pre-columnar seed numbers (go test -bench
	// -benchtime=20x on the same machine), kept verbatim so the
	// speedup this PR claims stays auditable.
	Baseline map[string]benchResult `json:"baseline_pre_columnar"`
	// BaselinePreCancellation pins the kernel numbers from just before
	// the context-first refactor threaded cancellation checks through
	// the hot loops (go test -bench -benchtime=100x, same machine), so
	// the refactor's zero-overhead claim — a nil Done channel costs
	// nothing — stays auditable against the Results above.
	BaselinePreCancellation map[string]benchResult `json:"baseline_pre_cancellation"`
	// Telemetry snapshots the engine's own counters after the timed
	// runs: cache hit rates and kernel-path counts explain the numbers
	// above (e.g. a warm constraint cache or an all-columnar run).
	Telemetry benchTelemetry `json:"telemetry"`
	// AnswerCache records the cold-vs-warm cost of a full query pair
	// (differentiate + explore) through the answer cache, plus the
	// cache's counters after the timed runs.
	AnswerCache answerCacheBench `json:"answer_cache"`
	// Sharded compares a cold selective drill-down through a
	// zone-mapped sharded executor against the monolithic scan. The
	// nightly gate requires Speedup >= 2.
	Sharded shardedBench `json:"sharded"`
	// Quality pins star-net ranking quality on the 50-query workload;
	// the nightly gate fails on any precision@1 drop.
	Quality qualityBench `json:"quality"`
	// KernelSweep re-times the hot kernels (GroupByDict, FusedAggregate)
	// and the sharded drill at GOMAXPROCS 1/4/16, replacing the old
	// single-GOMAXPROCS kernel snapshot: the parallel path only trips
	// above the striping threshold, so a one-point measurement says
	// nothing about the multicore ladder.
	KernelSweep []kernelSweepEntry `json:"kernel_sweep"`
	// QPS is the closed-loop throughput ladder (see qps.go): serial vs
	// batched vs full-HTTP QPS and latency quantiles per GOMAXPROCS.
	// The nightly gate fails on a >20% batched-QPS drop, a p99 blowup,
	// or a batched-over-serial speedup below 2x at the top rung.
	QPS qpsBench `json:"qps"`
	// Segments pins the disk-backed segment layer's drill ladder (1M
	// and 10M facts): cold/warm latency, segment skip rate, and peak
	// RSS. Written by `-exp segments` (not `-exp bench` — the 10M rung
	// takes minutes); the nightly gate re-runs the 1M rung.
	Segments *segmentsBench `json:"segments,omitempty"`
	// Ingest pins the streaming-append path (see ingest.go): sustained
	// facts/sec while the query storm runs, ingesting-vs-idle p50, and
	// post-stream fingerprint parity against a from-scratch build.
	// Written by `-exp ingest`; the nightly gate re-runs the whole
	// measurement.
	Ingest *ingestBench `json:"ingest,omitempty"`
	// Cluster pins the distributed rung (see cluster.go): fingerprint
	// parity of a 2-worker scatter-gather topology against a monolithic
	// engine over the full workload, plus the cold-explore latency
	// ladder at 1/2/4 loopback workers. Written by `-exp cluster`; the
	// nightly gate re-runs parity and holds the 2-worker ratio.
	Cluster *clusterBench `json:"cluster,omitempty"`
}

// kernelSweepEntry is one GOMAXPROCS point of the kernel sweep.
type kernelSweepEntry struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	Results    []benchResult `json:"results"`
}

// shardedBench is the sharded-vs-monolithic drill-down comparison.
type shardedBench struct {
	// Query is the drill whose numeric bound lands on the
	// ingest-clustered SalesKey column, so zone maps can prune.
	Query  string `json:"query"`
	Shards int    `json:"shards"`
	// MonolithicNsPerOp and ShardedNsPerOp time SubspaceRows with the
	// rows cache purged before every iteration (cold semijoin + drill
	// filter each time).
	MonolithicNsPerOp int64   `json:"monolithic_ns_per_op"`
	ShardedNsPerOp    int64   `json:"sharded_ns_per_op"`
	Speedup           float64 `json:"speedup"`
	// Per-drill planner profile: shards scanned vs pruned by zone maps
	// or constraint bits for one cold execution of Query.
	ShardsScanned    int64 `json:"shards_scanned"`
	ShardsPrunedZone int64 `json:"shards_pruned_zone"`
	ShardsPrunedBits int64 `json:"shards_pruned_bits"`
	// SubspaceRows is the drill's result cardinality, asserted equal
	// between the two engines before anything is timed.
	SubspaceRows int `json:"subspace_rows"`
}

// qualityBench is the workload ranking-quality snapshot.
type qualityBench struct {
	Workload     string  `json:"workload"`
	Method       string  `json:"method"`
	Queries      int     `json:"queries"`
	Top1         int     `json:"top1"`
	PrecisionAt1 float64 `json:"precision_at_1"`
}

// answerCacheBench is the cold-vs-warm answer-cache comparison.
type answerCacheBench struct {
	// ColdNsPerOp times differentiate + explore with the cache
	// invalidated before every iteration (every answer recomputed).
	ColdNsPerOp int64 `json:"cold_ns_per_op"`
	// WarmNsPerOp times the same pair against a populated cache.
	WarmNsPerOp int64   `json:"warm_ns_per_op"`
	Speedup     float64 `json:"speedup"`
	// Differentiate and Explore snapshot the per-phase cache counters
	// accumulated across both timed runs.
	Differentiate answerCacheSnapshot `json:"differentiate"`
	Explore       answerCacheSnapshot `json:"explore"`
}

// answerCacheSnapshot is cache.AnswerStats plus the derived hit rate.
type answerCacheSnapshot struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Coalesced int64   `json:"coalesced"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	HitRate   float64 `json:"hit_rate"`
}

func snapshotAnswers(s cache.AnswerStats) answerCacheSnapshot {
	return answerCacheSnapshot{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Coalesced: s.Coalesced, Entries: s.Len, Bytes: s.Bytes,
		HitRate: s.HitRate(),
	}
}

// benchTelemetry is the post-run engine counter snapshot.
type benchTelemetry struct {
	SubspaceRowsCache cacheSnapshot  `json:"subspace_rows_cache"`
	ConstraintCache   cacheSnapshot  `json:"constraint_cache"`
	Kernels           olap.ExecStats `json:"kernels"`
	FulltextProbes    int64          `json:"fulltext_probes"`
}

// cacheSnapshot is cache.Stats plus the derived hit rate.
type cacheSnapshot struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

func snapshotCache(s cache.Stats) cacheSnapshot {
	return cacheSnapshot{
		Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		HitRate: s.HitRate(),
	}
}

// measure times fn (≥ minIters iterations, ≥ 200ms of wall time) and
// counts its steady-state allocations.
func measure(name string, fn func()) benchResult {
	fn() // warm caches out of the timed region
	// Best of three timed blocks: a single block averages in whatever
	// transient load the machine happens to carry, which makes the
	// nightly ratio flap; the minimum converges on the kernel's true
	// cost in both the baseline and the fresh run.
	const (
		minIters = 20
		blocks   = 3
	)
	var ns int64
	for b := 0; b < blocks; b++ {
		iters := 0
		start := time.Now()
		for elapsed := time.Duration(0); iters < minIters || elapsed < 200*time.Millisecond; elapsed = time.Since(start) {
			fn()
			iters++
		}
		if per := time.Since(start).Nanoseconds() / int64(iters); b == 0 || per < ns {
			ns = per
		}
	}
	allocs := testing.AllocsPerRun(5, fn)
	return benchResult{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

// benchSharded builds two engines over the same warehouse — one
// partitioned into zone-mapped shards, one monolithic — and times a
// cold selective drill-down through each. The drill's numeric bound
// lands on the ingest-clustered SalesKey column, so the sharded planner
// can prove most shards irrelevant from their zone maps alone.
func benchSharded() (shardedBench, error) {
	const (
		drillQuery = "Road Bikes SalesKey>54000"
		shardCount = 32
	)
	wh := dataset.AWOnline()
	mono := experiments.Engine(wh)
	shd := experiments.Engine(wh)
	shd.SetShards(shardCount)

	monoNets, err := mono.Differentiate(drillQuery)
	if err != nil || len(monoNets) == 0 {
		return shardedBench{}, fmt.Errorf("sharded bench: differentiate: %v (%d nets)", err, len(monoNets))
	}
	shdNets, err := shd.Differentiate(drillQuery)
	if err != nil || len(shdNets) == 0 {
		return shardedBench{}, fmt.Errorf("sharded bench: differentiate: %v (%d nets)", err, len(shdNets))
	}

	// One cold drill per engine first: assert both produce the same
	// subspace and capture the planner's per-drill pruning profile.
	before := shd.Executor().Stats()
	shd.InvalidateSubspaceRows()
	rows := shd.SubspaceRows(shdNets[0])
	after := shd.Executor().Stats()
	mono.InvalidateSubspaceRows()
	monoRows := mono.SubspaceRows(monoNets[0])
	if len(rows) == 0 {
		return shardedBench{}, fmt.Errorf("sharded bench: %q drill produced no rows", drillQuery)
	}
	if len(rows) != len(monoRows) {
		return shardedBench{}, fmt.Errorf("sharded bench: sharded drill %d rows, monolithic %d", len(rows), len(monoRows))
	}

	monoRes := measure("MonolithicDrill", func() {
		mono.InvalidateSubspaceRows()
		if len(mono.SubspaceRows(monoNets[0])) != len(rows) {
			panic("monolithic drill changed cardinality")
		}
	})
	shdRes := measure("ShardedDrill", func() {
		shd.InvalidateSubspaceRows()
		if len(shd.SubspaceRows(shdNets[0])) != len(rows) {
			panic("sharded drill changed cardinality")
		}
	})
	return shardedBench{
		Query:             drillQuery,
		Shards:            shardCount,
		MonolithicNsPerOp: monoRes.NsPerOp,
		ShardedNsPerOp:    shdRes.NsPerOp,
		Speedup:           float64(monoRes.NsPerOp) / float64(shdRes.NsPerOp),
		ShardsScanned:     after.ShardsScanned - before.ShardsScanned,
		ShardsPrunedZone:  after.ShardsPrunedZone - before.ShardsPrunedZone,
		ShardsPrunedBits:  after.ShardsPrunedBits - before.ShardsPrunedBits,
		SubspaceRows:      len(rows),
	}, nil
}

// benchQuality scores the standard ranking method's precision@1 on the
// 50-query AW_ONLINE workload — the quality floor the nightly gate
// holds every future change to.
func benchQuality() (qualityBench, error) {
	e := experiments.Engine(dataset.AWOnline())
	qs := workload.AWOnlineQueries()
	top1 := 0
	for _, q := range qs {
		rank, err := experiments.QueryRank(e, q, kdapcore.Standard)
		if err != nil {
			return qualityBench{}, fmt.Errorf("quality bench: query %d %q: %w", q.ID, q.Text, err)
		}
		if rank == 1 {
			top1++
		}
	}
	return qualityBench{
		Workload:     "AW_ONLINE",
		Method:       kdapcore.Standard.String(),
		Queries:      len(qs),
		Top1:         top1,
		PrecisionAt1: float64(top1) / float64(len(qs)),
	}, nil
}

// computeKernelSweep times the two hot scan kernels and the cold
// sharded drill at each GOMAXPROCS rung. AW_ONLINE's fact table is far
// above the default striping threshold, so rungs above 1 actually take
// the parallel path (asserted by TestBenchWorkloadTakesParallelPath).
func computeKernelSweep() ([]kernelSweepEntry, error) {
	e := experiments.Engine(dataset.AWOnline())
	ex := e.Executor()
	m := e.Measure()
	path, ok := e.Graph().PathFromFact("DimProductSubcategory", "Product")
	if !ok {
		return nil, fmt.Errorf("kernel sweep: no path to DimProductSubcategory")
	}
	rows := ex.FactRows(nil)

	shd := experiments.Engine(dataset.AWOnline())
	shd.SetShards(32)
	nets, err := shd.Differentiate("Road Bikes SalesKey>54000")
	if err != nil || len(nets) == 0 {
		return nil, fmt.Errorf("kernel sweep: differentiate: %v (%d nets)", err, len(nets))
	}

	var out []kernelSweepEntry
	for _, p := range qpsGOMAXPROCS {
		prev := runtime.GOMAXPROCS(p)
		out = append(out, kernelSweepEntry{GOMAXPROCS: p, Results: []benchResult{
			measure("GroupByDict", func() {
				if len(ex.GroupBy(rows, "SubcategoryName", path, m, olap.Sum)) == 0 {
					panic("no groups")
				}
			}),
			measure("FusedAggregate", func() {
				if ex.Aggregate(rows, m, olap.Sum) == 0 {
					panic("zero aggregate")
				}
			}),
			measure("ShardedDrill", func() {
				shd.InvalidateSubspaceRows()
				if len(shd.SubspaceRows(nets[0])) == 0 {
					panic("sharded drill produced no rows")
				}
			}),
		}})
		runtime.GOMAXPROCS(prev)
	}
	return out, nil
}

func computeBench() (benchFile, error) {
	e := experiments.Engine(dataset.AWOnline())
	ex := e.Executor()
	m := e.Measure()
	path, ok := e.Graph().PathFromFact("DimProductSubcategory", "Product")
	if !ok {
		return benchFile{}, fmt.Errorf("bench: no path to DimProductSubcategory")
	}
	rows := ex.FactRows(nil)

	nets, err := e.Differentiate(experiments.Table1Query)
	if err != nil || len(nets) == 0 {
		return benchFile{}, fmt.Errorf("bench: differentiate: %v (%d nets)", err, len(nets))
	}
	opts := kdapcore.DefaultExploreOptions()
	opts.DisplayIntervals = 3

	out := benchFile{
		GeneratedBy: "kdapbench -exp bench",
		Date:        time.Now().UTC().Format("2006-01-02"),
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Dataset:     "AW_ONLINE",
		Results: []benchResult{
			measure("GroupByDict", func() {
				if len(ex.GroupBy(rows, "SubcategoryName", path, m, olap.Sum)) == 0 {
					panic("no groups")
				}
			}),
			measure("GroupByRef", func() {
				if len(ex.GroupByRef(rows, "SubcategoryName", path, m, olap.Sum)) == 0 {
					panic("no groups")
				}
			}),
			measure("FusedAggregate", func() {
				if ex.Aggregate(rows, m, olap.Sum) == 0 {
					panic("zero aggregate")
				}
			}),
			measure("AggregateRef", func() {
				if ex.AggregateRef(rows, m, olap.Sum) == 0 {
					panic("zero aggregate")
				}
			}),
			measure("Table2Facets", func() {
				if _, err := e.Explore(nets[0], opts); err != nil {
					panic(err)
				}
			}),
		},
		Baseline: map[string]benchResult{
			"Table2Facets": {Name: "BenchmarkTable2Facets", NsPerOp: 67288548, AllocsPerOp: 22094},
			"GroupBy":      {Name: "BenchmarkGroupBy", NsPerOp: 3748548, AllocsPerOp: 61},
		},
		BaselinePreCancellation: map[string]benchResult{
			"GroupByDict":    {Name: "BenchmarkGroupByDict/dict", NsPerOp: 177768, AllocsPerOp: 7},
			"FusedAggregate": {Name: "BenchmarkFusedAggregate/fused", NsPerOp: 183794, AllocsPerOp: 0},
		},
	}
	out.Telemetry = benchTelemetry{
		SubspaceRowsCache: snapshotCache(e.RowsCacheStats()),
		ConstraintCache:   snapshotCache(ex.ConstraintCacheStats()),
		Kernels:           ex.Stats(),
		FulltextProbes:    e.Index().ProbeCount(),
	}

	// Cold vs warm through the answer cache: the cache is enabled only
	// now, so the kernel measurements above stay uncached. Cold
	// invalidates before every iteration; warm replays the identical
	// query pair against the populated store.
	e.SetAnswerCache(64, 0)
	queryPair := func() {
		ns, err := e.Differentiate(experiments.Table1Query)
		if err != nil || len(ns) == 0 {
			panic(fmt.Sprintf("bench: differentiate: %v (%d nets)", err, len(ns)))
		}
		if _, err := e.Explore(ns[0], opts); err != nil {
			panic(err)
		}
	}
	cold := measure("AnswerCacheCold", func() {
		e.InvalidateAnswers()
		queryPair()
	})
	warm := measure("AnswerCacheWarm", queryPair)
	out.Results = append(out.Results, cold, warm)
	diffStats, explStats, _ := e.AnswerCacheStats()
	out.AnswerCache = answerCacheBench{
		ColdNsPerOp:   cold.NsPerOp,
		WarmNsPerOp:   warm.NsPerOp,
		Speedup:       float64(cold.NsPerOp) / float64(warm.NsPerOp),
		Differentiate: snapshotAnswers(diffStats),
		Explore:       snapshotAnswers(explStats),
	}

	if out.Sharded, err = benchSharded(); err != nil {
		return benchFile{}, err
	}
	out.Results = append(out.Results,
		benchResult{Name: "MonolithicDrill", NsPerOp: out.Sharded.MonolithicNsPerOp},
		benchResult{Name: "ShardedDrill", NsPerOp: out.Sharded.ShardedNsPerOp},
	)
	if out.Quality, err = benchQuality(); err != nil {
		return benchFile{}, err
	}
	if out.KernelSweep, err = computeKernelSweep(); err != nil {
		return benchFile{}, err
	}
	if out.QPS, err = computeQPS(); err != nil {
		return benchFile{}, err
	}
	return out, nil
}

func benchJSON() error {
	out, err := computeBench()
	if err != nil {
		return err
	}
	// Carry the pinned segments ladder and ingest section forward: they
	// are written by `-exp segments` / `-exp ingest` only (both are
	// minutes of work), and a plain `-exp bench` refresh must not
	// silently drop them.
	if prev, err := os.ReadFile("BENCH.json"); err == nil {
		var old benchFile
		if json.Unmarshal(prev, &old) == nil {
			out.Segments = old.Segments
			out.Ingest = old.Ingest
			out.Cluster = old.Cluster
		}
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH.json", append(buf, '\n'), 0o644); err != nil {
		return err
	}
	for _, r := range out.Results {
		fmt.Printf("%-16s %12d ns/op %10.0f allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
	}
	fmt.Printf("sharded drill    %.2fx speedup (%d scanned / %d zone-pruned / %d bit-pruned)\n",
		out.Sharded.Speedup, out.Sharded.ShardsScanned, out.Sharded.ShardsPrunedZone, out.Sharded.ShardsPrunedBits)
	fmt.Printf("quality          precision@1 %.2f (%d/%d)\n",
		out.Quality.PrecisionAt1, out.Quality.Top1, out.Quality.Queries)
	for _, ks := range out.KernelSweep {
		for _, r := range ks.Results {
			fmt.Printf("%-16s %12d ns/op   (GOMAXPROCS=%d)\n", r.Name, r.NsPerOp, ks.GOMAXPROCS)
		}
	}
	for _, s := range out.QPS.Sweep {
		fmt.Printf("qps GOMAXPROCS=%-2d serial %.0f  batched %.0f (%.2fx)  http %.0f\n",
			s.GOMAXPROCS, s.Serial.QPS, s.Batched.QPS, s.Speedup, s.HTTP.QPS)
	}
	if po := out.QPS.ProfileOverhead; po != nil {
		fmt.Printf("profiling overhead @GOMAXPROCS=%d: p50 %+.1f%%\n", po.GOMAXPROCS, po.OverheadP50Pct)
	}
	fmt.Println("wrote BENCH.json")
	return nil
}

// nightlySlack is how much slower than the committed BENCH.json a
// benchmark may run before the nightly gate fails. CI machines are
// noisy; 20% is the regression budget the issue tracker agreed on.
const nightlySlack = 1.20

// nightly re-runs the measured suite in-process and compares it against
// the committed BENCH.json baseline. It fails (non-nil error, so the
// process exits 1) on any >20% latency regression, any precision@1
// drop, or a sharded drill speedup below 2x.
func nightly() error {
	buf, err := os.ReadFile("BENCH.json")
	if err != nil {
		return fmt.Errorf("nightly: read baseline: %w", err)
	}
	var base benchFile
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("nightly: parse baseline: %w", err)
	}
	// The segments gate runs first, while VmHWM still reflects the
	// disk-backed run rather than the resident warehouses computeBench
	// is about to load.
	segFailures, err := nightlySegments(base.Segments)
	if err != nil {
		return err
	}
	fresh, err := computeBench()
	if err != nil {
		return err
	}

	baseline := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseline[r.Name] = r
	}
	failures := segFailures
	for _, r := range fresh.Results {
		b, ok := baseline[r.Name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Printf("%-16s %12d ns/op   (no baseline, skipped)\n", r.Name, r.NsPerOp)
			continue
		}
		ratio := float64(r.NsPerOp) / float64(b.NsPerOp)
		status := "ok"
		if ratio > nightlySlack {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("%s: %d ns/op vs baseline %d (%.2fx > %.2fx budget)",
				r.Name, r.NsPerOp, b.NsPerOp, ratio, nightlySlack))
		}
		fmt.Printf("%-16s %12d ns/op   baseline %12d   %.2fx  %s\n", r.Name, r.NsPerOp, b.NsPerOp, ratio, status)
	}
	fmt.Printf("%-16s %12.2f        baseline %12.2f\n", "precision@1", fresh.Quality.PrecisionAt1, base.Quality.PrecisionAt1)
	if fresh.Quality.PrecisionAt1 < base.Quality.PrecisionAt1 {
		failures = append(failures, fmt.Sprintf("precision@1 dropped: %.2f vs baseline %.2f (%d/%d vs %d/%d)",
			fresh.Quality.PrecisionAt1, base.Quality.PrecisionAt1,
			fresh.Quality.Top1, fresh.Quality.Queries, base.Quality.Top1, base.Quality.Queries))
	}
	fmt.Printf("%-16s %11.2fx        baseline %11.2fx\n", "sharded speedup", fresh.Sharded.Speedup, base.Sharded.Speedup)
	if fresh.Sharded.Speedup < 2 {
		failures = append(failures, fmt.Sprintf("sharded drill speedup %.2fx below the 2x floor", fresh.Sharded.Speedup))
	}

	// Kernel sweep: every (kernel, GOMAXPROCS) point holds to the same
	// 20% latency budget as the flat results.
	baseSweep := make(map[string]benchResult)
	for _, ks := range base.KernelSweep {
		for _, r := range ks.Results {
			baseSweep[fmt.Sprintf("%s@%d", r.Name, ks.GOMAXPROCS)] = r
		}
	}
	for _, ks := range fresh.KernelSweep {
		for _, r := range ks.Results {
			key := fmt.Sprintf("%s@%d", r.Name, ks.GOMAXPROCS)
			b, ok := baseSweep[key]
			if !ok || b.NsPerOp <= 0 {
				fmt.Printf("%-28s %12d ns/op   (no baseline, skipped)\n", key, r.NsPerOp)
				continue
			}
			ratio := float64(r.NsPerOp) / float64(b.NsPerOp)
			status := "ok"
			if ratio > nightlySlack {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: %d ns/op vs baseline %d (%.2fx > %.2fx budget)",
					key, r.NsPerOp, b.NsPerOp, ratio, nightlySlack))
			}
			fmt.Printf("%-28s %12d ns/op   baseline %12d   %.2fx  %s\n", key, r.NsPerOp, b.NsPerOp, ratio, status)
		}
	}

	// QPS ladder: batched throughput may not drop more than the 20%
	// budget at any rung, batched p99 gets a wider 50% budget (the tail
	// of a 256-request run is one scheduling hiccup wide), and the top
	// rung must keep batching worth at least 2x over per-request
	// execution — the floor the batch scheduler was built to clear.
	baseQPS := make(map[int]qpsSweepEntry, len(base.QPS.Sweep))
	for _, s := range base.QPS.Sweep {
		baseQPS[s.GOMAXPROCS] = s
	}
	const p99Slack = 1.50
	for _, s := range fresh.QPS.Sweep {
		b, ok := baseQPS[s.GOMAXPROCS]
		if !ok || b.Batched.QPS <= 0 {
			fmt.Printf("qps@%-2d batched %8.1f qps   (no baseline, skipped)\n", s.GOMAXPROCS, s.Batched.QPS)
			continue
		}
		status := "ok"
		if s.Batched.QPS < b.Batched.QPS/nightlySlack {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("qps@%d: batched %.1f qps vs baseline %.1f (>%.0f%% drop)",
				s.GOMAXPROCS, s.Batched.QPS, b.Batched.QPS, (nightlySlack-1)*100))
		}
		if b.Batched.P99Ms > 0 && s.Batched.P99Ms > b.Batched.P99Ms*p99Slack {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf("qps@%d: batched p99 %.1fms vs baseline %.1fms (>%.0f%% regression)",
				s.GOMAXPROCS, s.Batched.P99Ms, b.Batched.P99Ms, (p99Slack-1)*100))
		}
		fmt.Printf("qps@%-2d batched %8.1f qps (p99 %7.1fms)  baseline %8.1f (p99 %7.1fms)  %.2fx serial  %s\n",
			s.GOMAXPROCS, s.Batched.QPS, s.Batched.P99Ms, b.Batched.QPS, b.Batched.P99Ms, s.Speedup, status)
	}
	if n := len(fresh.QPS.Sweep); n > 0 {
		if top := fresh.QPS.Sweep[n-1]; top.Speedup < 2 {
			failures = append(failures, fmt.Sprintf("qps@%d: batched speedup %.2fx over serial below the 2x floor",
				top.GOMAXPROCS, top.Speedup))
		}
	}
	// Always-on profiling must stay cheap: the wide event's per-request
	// cost on the top batched rung is bounded at 5% of p50. Gated on the
	// fresh run alone (profiled vs unprofiled are measured back-to-back
	// in one process, so the ratio is robust to machine-speed drift).
	const profileOverheadBudgetPct = 5.0
	if po := fresh.QPS.ProfileOverhead; po != nil {
		status := "ok"
		if po.OverheadP50Pct > profileOverheadBudgetPct {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"qps@%d: profiling overhead %+.1f%% p50 exceeds the %.0f%% budget",
				po.GOMAXPROCS, po.OverheadP50Pct, profileOverheadBudgetPct))
		}
		fmt.Printf("qps@%-2d profiling overhead p50 %+.1f%% (budget %.0f%%)  %s\n",
			po.GOMAXPROCS, po.OverheadP50Pct, profileOverheadBudgetPct, status)
	}
	// The ingest gate runs last: it builds two 512k-row warehouses whose
	// live heap would skew the absolute-latency gates above, while its
	// own verdicts — append throughput, the idle-vs-ingesting p50 ratio,
	// fingerprint parity — are measured back-to-back inside its own run
	// and tolerate ambient heap pressure.
	// The cluster rung spins its own engines and loopback sockets; like
	// ingest it is self-contained (parity and the 2-worker ratio are
	// measured within one run), so it also goes after the absolute gates.
	cluFailures, err := nightlyCluster(base.Cluster)
	if err != nil {
		return err
	}
	failures = append(failures, cluFailures...)
	ingFailures, err := nightlyIngest(base.Ingest)
	if err != nil {
		return err
	}
	failures = append(failures, ingFailures...)
	if len(failures) > 0 {
		return fmt.Errorf("nightly: %d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Println("nightly: all benchmarks within budget")
	return nil
}
