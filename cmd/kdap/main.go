// Command kdap is an interactive KDAP session over one of the built-in
// warehouses: type a keyword query, pick an interpretation, explore the
// dynamic facets, and drill down — the paper's Figure 1 loop as a REPL.
//
// Usage:
//
//	kdap [-db ebiz|online|reseller] [-snapshot file] [-csv dir] [-mode surprise|bellwether] [-trace] [-timeout 0]
//	     [-answer-cache-size 128] [-answer-cache-ttl 0]
//
// With -trace, every query / pick / drill prints an indented per-stage
// timing tree (the same span tree the HTTP API returns behind
// ?trace=1) after its output.
//
// Commands inside the session:
//
//	<keywords>   run a keyword query and list ranked interpretations
//	pick N       select interpretation N and show its facets
//	drill N M    drill into instance M of facet attribute N
//	back         undo the last drill
//	sql          print the SQL the current interpretation stands for
//	explain N    break down interpretation N's ranking score
//	csv          print the current facets as CSV
//	pivot N M    cross-tabulate facet attributes N and M
//	mode X       switch interestingness (surprise / bellwether)
//	stats        print cache hit rates and sizes for this session
//	profile      print the execution profile of the last operation
//	help, quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kdap"
)

// repl wraps a kdap.Session with terminal rendering.
type repl struct {
	s *kdap.Session
}

func main() {
	db := flag.String("db", "ebiz", "warehouse: ebiz, online, reseller")
	snapshot := flag.String("snapshot", "", "load a warehouse snapshot written by kdapgen instead of -db")
	csvDir := flag.String("csv", "", "load a CSV directory with manifest.json instead of -db")
	mode := flag.String("mode", "surprise", "interestingness: surprise, bellwether")
	trace := flag.Bool("trace", false, "print a per-stage timing tree after each query/pick/drill")
	timeout := flag.Duration("timeout", 0,
		"per-operation deadline for query/pick/drill (0 disables); overruns abort with a deadline error")
	answerCacheSize := flag.Int("answer-cache-size", 128,
		"answer cache entries per phase; repeated queries and back-navigation are served instantly (0 disables)")
	answerCacheTTL := flag.Duration("answer-cache-ttl", 0,
		"answer cache entry lifetime (0 = no expiry; the data never changes under a REPL session)")
	shards := flag.Int("shards", 0,
		"partition the fact table into this many zone-mapped shards for pruned scatter-gather scans (<=1 = monolithic)")
	flag.Parse()

	var wh *kdap.Warehouse
	switch {
	case *snapshot != "":
		f, err := os.Open(*snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wh, err = kdap.LoadWarehouse(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *csvDir != "":
		var err error
		wh, err = kdap.LoadCSVWarehouse(*csvDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case *db == "ebiz":
		wh = kdap.EBiz()
	case *db == "online":
		wh = kdap.AWOnline()
	case *db == "reseller":
		wh = kdap.AWReseller()
	default:
		fmt.Fprintf(os.Stderr, "unknown db %q\n", *db)
		os.Exit(2)
	}

	opts := kdap.DefaultExploreOptions()
	engine := kdap.NewEngine(wh)
	engine.SetAnswerCache(*answerCacheSize, *answerCacheTTL)
	if *shards > 1 {
		engine.SetShards(*shards)
	}
	r := &repl{s: kdap.NewSession(engine, opts)}
	r.s.SetTracing(*trace)
	if *timeout > 0 {
		r.s.SetTimeout(*timeout)
	}
	if err := r.setMode(*mode); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("KDAP session on %s (%d fact rows). Type keywords, or 'help'.\n",
		wh.DB.Name(), wh.DB.Table(wh.Graph.FactTable()).Len())
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("kdap> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "quit" || line == "exit" {
			return
		}
		if line != "" {
			r.handle(line)
		}
		fmt.Print("kdap> ")
	}
}

func (r *repl) setMode(m string) error {
	switch m {
	case "surprise":
		return r.s.SetMode(kdap.Surprise)
	case "bellwether":
		return r.s.SetMode(kdap.Bellwether)
	default:
		return fmt.Errorf("unknown mode %q (want surprise or bellwether)", m)
	}
}

func (r *repl) handle(line string) {
	before := r.s.LastTrace()
	r.dispatch(line)
	// A fresh trace means the command ran a traced engine operation;
	// print its stage breakdown under the command's own output.
	if tr := r.s.LastTrace(); r.s.Tracing() && tr != nil && tr != before {
		fmt.Print(tr.Tree())
	}
}

func (r *repl) dispatch(line string) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "help":
		fmt.Println("  <keywords>   run a keyword query (numeric predicates like DealerPrice>100 work too)\n" +
			"  pick N       select interpretation N\n" +
			"  drill N M    drill into instance M of facet attribute N\n" +
			"  back         undo the last drill\n" +
			"  sql          print the SQL the current interpretation stands for\n" +
			"  explain N    break down interpretation N's ranking score\n" +
			"  csv          print the current facets as CSV\n" +
			"  pivot N M    cross-tabulate facet attributes N and M\n" +
			"  mode X       surprise / bellwether\n" +
			"  stats        cache hit rates and sizes for this session\n" +
			"  profile      execution profile of the last query/pick/drill (cache, shards, kernels, stages)\n" +
			"  quit")
	case "pick":
		r.pick(fields[1:])
	case "drill":
		r.drill(fields[1:])
	case "back":
		if f, err := r.s.Back(); err != nil {
			fmt.Println(err)
		} else {
			r.show(f)
		}
	case "sql":
		r.sql()
	case "explain":
		r.explain(fields[1:])
	case "csv":
		r.csv()
	case "pivot":
		r.pivot(fields[1:])
	case "stats":
		r.stats()
	case "profile":
		// Profiling is always on (see Session.LastProfile), so this
		// works retroactively on whatever just ran — no flag needed.
		fmt.Print(r.s.LastProfile().Render())
	case "mode":
		if len(fields) != 2 {
			fmt.Println("usage: mode surprise|bellwether")
			return
		}
		if err := r.setMode(fields[1]); err != nil {
			fmt.Println(err)
			return
		}
		if f := r.s.Facets(); f != nil {
			r.show(f)
		}
	default:
		r.query(line)
	}
}

func (r *repl) query(q string) {
	nets, err := r.s.Query(q)
	if err != nil {
		fmt.Println(err)
		return
	}
	if len(nets) == 0 {
		fmt.Println("no interpretations — try different keywords")
		for kw, sugg := range r.s.Engine().SuggestKeywords(q, 3) {
			fmt.Printf("  %q matched nothing; did you mean %s?\n", kw, strings.Join(sugg, ", "))
		}
		return
	}
	fmt.Printf("%d interpretations:\n%s", len(nets), kdap.RenderStarNets(nets, 8))
	fmt.Println("use 'pick N' to explore one")
}

func (r *repl) pick(args []string) {
	if len(args) != 1 {
		fmt.Println("usage: pick N (after a query)")
		return
	}
	n, err := strconv.Atoi(args[0])
	if err != nil {
		fmt.Println("usage: pick N")
		return
	}
	f, err := r.s.Pick(n)
	if err != nil {
		fmt.Println(err)
		return
	}
	r.show(f)
}

func (r *repl) show(f *kdap.Facets) {
	fmt.Print(kdap.RenderFacets(f))
	fmt.Println("facet attributes are numbered top to bottom; 'drill N M' to zoom in")
}

func (r *repl) drill(args []string) {
	if len(args) != 2 || r.s.Facets() == nil {
		fmt.Println("usage: drill N M (after pick)")
		return
	}
	an, err1 := strconv.Atoi(args[0])
	in, err2 := strconv.Atoi(args[1])
	attrs := r.s.FlatAttrs()
	if err1 != nil || err2 != nil || an < 1 || an > len(attrs) {
		fmt.Printf("drill 1..%d M\n", len(attrs))
		return
	}
	a := attrs[an-1]
	if in < 1 || in > len(a.Instances) {
		fmt.Printf("attribute %s has instances 1..%d\n", a.Attr.Attr, len(a.Instances))
		return
	}
	inst := a.Instances[in-1]
	var f *kdap.Facets
	var err error
	if a.Numeric {
		f, err = r.s.DrillRange(a.Attr, a.Role, inst.Lo, inst.Hi)
	} else {
		f, err = r.s.Drill(a.Attr, a.Role, inst.Value)
	}
	if err != nil {
		fmt.Println(err)
		return
	}
	r.show(f)
}

func (r *repl) sql() {
	sn := r.s.Current()
	if sn == nil {
		fmt.Println("pick an interpretation first")
		return
	}
	e := r.s.Engine()
	fmt.Println(sn.SQL(e.Measure(), e.Agg(), e.Graph().FactTable()))
}

func (r *repl) explain(args []string) {
	nets := r.s.Interpretations()
	if len(args) != 1 || nets == nil {
		fmt.Println("usage: explain N (after a query)")
		return
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 1 || n > len(nets) {
		fmt.Printf("explain 1..%d\n", len(nets))
		return
	}
	fmt.Print(nets[n-1].Explain())
}

func (r *repl) csv() {
	if r.s.Facets() == nil {
		fmt.Println("pick an interpretation first")
		return
	}
	if err := kdap.WriteFacetsCSV(os.Stdout, r.s.Facets()); err != nil {
		fmt.Println(err)
	}
}

// stats prints the session's cache counters: the answer caches (whole
// differentiate/explore results) and the subspace rows cache.
func (r *repl) stats() {
	e := r.s.Engine()
	diff, expl, ok := e.AnswerCacheStats()
	if !ok {
		fmt.Println("answer cache disabled (-answer-cache-size 0)")
	} else {
		for _, p := range []struct {
			name string
			st   kdap.AnswerCacheStats
		}{{"differentiate", diff}, {"explore", expl}} {
			fmt.Printf("answer cache %-13s %d/%d entries, %d B, %d hits / %d misses (%.0f%% hit rate), %d coalesced, %d evicted\n",
				p.name, p.st.Len, p.st.Cap, p.st.Bytes, p.st.Hits, p.st.Misses,
				100*p.st.HitRate(), p.st.Coalesced, p.st.Evictions)
		}
	}
	rc := e.RowsCacheStats()
	fmt.Printf("subspace rows cache         %d/%d entries, %d hits / %d misses (%.0f%% hit rate), %d evicted\n",
		rc.Len, rc.Cap, rc.Hits, rc.Misses, 100*rc.HitRate(), rc.Evictions)
}

func (r *repl) pivot(args []string) {
	if len(args) != 2 || r.s.Facets() == nil {
		fmt.Println("usage: pivot N M (after pick; N, M are facet attribute numbers)")
		return
	}
	attrs := r.s.FlatAttrs()
	pick := func(arg string) *kdap.AttrFacet {
		n, err := strconv.Atoi(arg)
		if err != nil || n < 1 || n > len(attrs) {
			return nil
		}
		return attrs[n-1]
	}
	ra, ca := pick(args[0]), pick(args[1])
	if ra == nil || ca == nil || ra == ca {
		fmt.Printf("pivot needs two distinct attributes in 1..%d\n", len(attrs))
		return
	}
	if ra.Numeric || ca.Numeric {
		fmt.Println("pivot works on categorical attributes; pick non-numeric facets")
		return
	}
	e := r.s.Engine()
	g := e.Graph()
	rp, ok1 := g.PathFromFact(ra.Attr.Table, ra.Role)
	cp, ok2 := g.PathFromFact(ca.Attr.Table, ca.Role)
	if !ok1 || !ok2 {
		fmt.Println("cannot resolve join paths for the pivot")
		return
	}
	rows := e.SubspaceRows(r.s.Current())
	pt := e.Executor().Pivot(rows, ra.Attr.Attr, rp, ca.Attr.Attr, cp, e.Measure(), e.Agg())
	fmt.Print(pt)
}
