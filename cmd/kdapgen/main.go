// Command kdapgen builds warehouse snapshots: from the built-in synthetic
// generators, or from a directory of CSV files plus a manifest.json (see
// internal/csvload for the format). Snapshots are reopened by cmd/kdap
// via -snapshot, or programmatically with kdap.LoadWarehouse.
//
// Usage:
//
//	kdapgen -out ebiz.kdap -db ebiz                # snapshot a builtin
//	kdapgen -out mart.kdap -csv ./mydata           # CSVs → snapshot
//	kdapgen -info mart.kdap                        # inspect a snapshot
//	kdapgen -dot mart.kdap > schema.dot            # schema diagram
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"kdap"
)

func main() {
	out := flag.String("out", "", "snapshot file to write")
	db := flag.String("db", "", "builtin warehouse to snapshot: ebiz, online, reseller")
	csvDir := flag.String("csv", "", "directory with manifest.json + CSV files to load")
	info := flag.String("info", "", "snapshot file to summarize")
	dot := flag.String("dot", "", "snapshot file to render as Graphviz DOT")
	flag.Parse()

	switch {
	case *info != "":
		wh := mustLoad(*info)
		st := wh.DB.Stats()
		fmt.Printf("%s: %d tables, %d rows, %d full-text attribute domains, fact=%s\n",
			st.Name, st.Tables, st.Rows, st.FullTextColumns, wh.Graph.FactTable())
		for _, ts := range st.PerTable {
			fmt.Printf("  %-24s %8d rows\n", ts.Name, ts.Rows)
		}
		for _, d := range wh.Graph.Dimensions() {
			fmt.Printf("  dimension %-12s tables=%v hierarchies=%d groupBy=%d\n",
				d.Name, d.Tables, len(d.Hierarchies), len(d.GroupBy))
		}
	case *dot != "":
		fmt.Print(kdap.SchemaDOT(mustLoad(*dot)))
	case *out != "":
		var wh *kdap.Warehouse
		var err error
		switch {
		case *csvDir != "":
			wh, err = kdap.LoadCSVWarehouse(*csvDir)
		case *db == "ebiz":
			wh = kdap.EBiz()
		case *db == "online":
			wh = kdap.AWOnline()
		case *db == "reseller":
			wh = kdap.AWReseller()
		default:
			log.Fatal("need -db or -csv with -out")
		}
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := kdap.SaveWarehouse(f, wh); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fi, _ := os.Stat(*out)
		fmt.Printf("wrote %s (%d KiB)\n", *out, fi.Size()/1024)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func mustLoad(path string) *kdap.Warehouse {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	wh, err := kdap.LoadWarehouse(f)
	if err != nil {
		log.Fatal(err)
	}
	return wh
}
