// Command kdapgen builds warehouse snapshots — from the built-in
// synthetic generators, or from a directory of CSV files plus a
// manifest.json (see internal/csvload for the format) — and drives
// streaming ingest against a running kdapd. Snapshots are reopened by
// cmd/kdap via -snapshot, or programmatically with kdap.LoadWarehouse.
//
// Usage:
//
//	kdapgen -out ebiz.kdap -db ebiz                # snapshot a builtin
//	kdapgen -out mart.kdap -csv ./mydata           # CSVs → snapshot
//	kdapgen -info mart.kdap                        # inspect a snapshot
//	kdapgen -dot mart.kdap > schema.dot            # schema diagram
//	kdapgen -emit -rows 100000 -skip 90000         # fact rows → JSON lines
//	kdapgen -stream URL -db online < rows.jsonl    # JSON lines → /api/ingest
//
// -emit generates AW_ONLINE scaled fact rows (internal/dataset) as one
// JSON array per line, in fact-schema column order; -skip drops the
// generated prefix so a warehouse already holding those rows receives
// only the tail. -stream reads such lines (from -in or stdin), batches
// them (-batch rows per request), and POSTs each batch to URL/api/ingest
// for warehouse -db, reporting sustained rows/sec. See docs/INGEST.md.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"kdap"
	"kdap/internal/dataset"
	"kdap/internal/relation"
)

func main() {
	out := flag.String("out", "", "snapshot file to write")
	db := flag.String("db", "", "builtin warehouse to snapshot: ebiz, online, reseller (also the -stream target warehouse)")
	csvDir := flag.String("csv", "", "directory with manifest.json + CSV files to load")
	info := flag.String("info", "", "snapshot file to summarize")
	dot := flag.String("dot", "", "snapshot file to render as Graphviz DOT")
	emit := flag.Bool("emit", false, "emit AW_ONLINE scaled fact rows as JSON lines on stdout")
	rows := flag.Int("rows", 100000, "with -emit: total fact rows the scaled build generates")
	skip := flag.Int("skip", 0, "with -emit: drop this many generated rows before emitting (the warehouse's resident prefix)")
	stream := flag.String("stream", "", "kdapd base URL to stream JSON-line rows to via POST /api/ingest")
	batch := flag.Int("batch", 2048, "with -stream: rows per ingest request")
	in := flag.String("in", "", "with -stream: JSON-lines input file (default stdin)")
	flag.Parse()

	switch {
	case *emit:
		if err := emitRows(os.Stdout, *rows, *skip); err != nil {
			log.Fatal(err)
		}
	case *stream != "":
		if *db == "" {
			log.Fatal("need -db with -stream")
		}
		src := io.Reader(os.Stdin)
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			src = f
		}
		if err := streamRows(*stream, *db, *batch, src); err != nil {
			log.Fatal(err)
		}
	case *info != "":
		wh := mustLoad(*info)
		st := wh.DB.Stats()
		fmt.Printf("%s: %d tables, %d rows, %d full-text attribute domains, fact=%s\n",
			st.Name, st.Tables, st.Rows, st.FullTextColumns, wh.Graph.FactTable())
		for _, ts := range st.PerTable {
			fmt.Printf("  %-24s %8d rows\n", ts.Name, ts.Rows)
		}
		for _, d := range wh.Graph.Dimensions() {
			fmt.Printf("  dimension %-12s tables=%v hierarchies=%d groupBy=%d\n",
				d.Name, d.Tables, len(d.Hierarchies), len(d.GroupBy))
		}
	case *dot != "":
		fmt.Print(kdap.SchemaDOT(mustLoad(*dot)))
	case *out != "":
		var wh *kdap.Warehouse
		var err error
		switch {
		case *csvDir != "":
			wh, err = kdap.LoadCSVWarehouse(*csvDir)
		case *db == "ebiz":
			wh = kdap.EBiz()
		case *db == "online":
			wh = kdap.AWOnline()
		case *db == "reseller":
			wh = kdap.AWReseller()
		default:
			log.Fatal("need -db or -csv with -out")
		}
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := kdap.SaveWarehouse(f, wh); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fi, _ := os.Stat(*out)
		fmt.Printf("wrote %s (%d KiB)\n", *out, fi.Size()/1024)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// emitRows generates the scaled AW_ONLINE fact stream and writes rows
// [skip, total) as one JSON array per line: the generator is seeded, so
// a warehouse built from the first skip rows plus this tail holds
// exactly the rows a full build of total would.
func emitRows(w io.Writer, total, skip int) error {
	if skip < 0 || skip > total {
		return fmt.Errorf("-skip %d out of range 0..%d", skip, total)
	}
	b := dataset.NewAWOnlineScaledBuild(total)
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	i := 0
	err := b.GenerateFacts(func(vals []relation.Value) error {
		i++
		if i <= skip {
			return nil
		}
		row := make([]any, len(vals))
		for j, v := range vals {
			switch v.Kind() {
			case relation.KindInt:
				row[j] = v.IntVal()
			case relation.KindFloat:
				row[j] = v.FloatVal()
			case relation.KindString:
				row[j] = v.Str()
			default:
				row[j] = nil
			}
		}
		return enc.Encode(row)
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// streamRows reads JSON-line rows from src, gathers them into batches,
// and POSTs each batch to base/api/ingest for warehouse db, reporting
// sustained throughput at the end.
func streamRows(base, db string, batchSize int, src io.Reader) error {
	if batchSize <= 0 {
		batchSize = 2048
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var (
		pending []json.RawMessage
		total   int
		batches int
		started = time.Now()
	)
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		body, err := json.Marshal(map[string]any{"db": db, "rows": pending})
		if err != nil {
			return err
		}
		resp, err := http.Post(base+"/api/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("ingest batch %d: status %d: %s", batches+1, resp.StatusCode, msg)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		total += len(pending)
		batches++
		pending = pending[:0]
		return nil
	}
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		row := make([]json.RawMessage, 0, 8)
		if err := json.Unmarshal(line, &row); err != nil {
			return fmt.Errorf("row %d: %v", total+len(pending)+1, err)
		}
		rowJSON, err := json.Marshal(row)
		if err != nil {
			return err
		}
		pending = append(pending, rowJSON)
		if len(pending) >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	dur := time.Since(started)
	rate := float64(total) / dur.Seconds()
	fmt.Printf("streamed %d rows in %d batches over %.2fs (%.0f rows/sec)\n",
		total, batches, dur.Seconds(), rate)
	return nil
}

func mustLoad(path string) *kdap.Warehouse {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	wh, err := kdap.LoadWarehouse(f)
	if err != nil {
		log.Fatal(err)
	}
	return wh
}
