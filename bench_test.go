package kdap

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§6), plus micro-benchmarks of the substrates each
// experiment exercises. Run everything with
//
//	go test -bench=. -benchmem
//
// The per-experiment benchmarks regenerate the corresponding table or
// figure data each iteration, so ns/op is the end-to-end cost of the
// experiment on this machine; cmd/kdapbench prints the actual rows.

import (
	"fmt"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/fulltext"
	"kdap/internal/kdapcore"
	"kdap/internal/stats"
	"kdap/internal/workload"
)

// BenchmarkTable1StarNets regenerates Table 1: differentiate
// "California Mountain Bikes" on AW_ONLINE and rank the candidates.
func BenchmarkTable1StarNets(b *testing.B) {
	e := NewEngine(AWOnline())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nets, err := e.Differentiate(experiments.Table1Query)
		if err != nil || len(nets) == 0 {
			b.Fatalf("differentiate: %v (%d nets)", err, len(nets))
		}
	}
}

// BenchmarkTable2Facets regenerates Table 2: explore the chosen subspace
// and build the dynamic facets (roll-up partitioning, attribute and
// instance ranking, numeric merge).
func BenchmarkTable2Facets(b *testing.B) {
	e := NewEngine(AWOnline())
	nets, err := e.Differentiate(experiments.Table1Query)
	if err != nil || len(nets) == 0 {
		b.Fatal("no nets")
	}
	opts := DefaultExploreOptions()
	opts.DisplayIntervals = 3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explore(nets[0], opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Ranking regenerates Figure 4: the 50-query workload under
// all four ranking methods.
func BenchmarkFig4Ranking(b *testing.B) {
	e := experiments.Engine(dataset.AWOnline())
	qs := workload.AWOnlineQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(e, qs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Buckets regenerates one Figure 5 line: the YearlyIncome
// bucket-count sweep over every StateProvince→Country roll-up case.
func BenchmarkFig5Buckets(b *testing.B) {
	wh := dataset.AWOnline()
	e := experiments.Engine(wh)
	c := experiments.Fig5Cases()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BucketSweep(wh, e, c, experiments.DefaultBucketSweep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Buckets regenerates one Figure 6 line on AW_RESELLER.
func BenchmarkFig6Buckets(b *testing.B) {
	wh := dataset.AWReseller()
	e := experiments.Engine(wh)
	c := experiments.Fig6Cases()[2] // NumberOfEmployees
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BucketSweep(wh, e, c, experiments.DefaultBucketSweep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Annealing regenerates one Figure 7 case for K = 5, 6, 7.
func BenchmarkFig7Annealing(b *testing.B) {
	c := experiments.Fig7Cases()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(c, []int{5, 6, 7}, experiments.DefaultAnnealIterations); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnneal500Iterations isolates the §6.5 claim that a
// 500-iteration interval merge takes under 5 ms: pure in-memory annealing
// over 40 basic intervals.
func BenchmarkAnneal500Iterations(b *testing.B) {
	rng := stats.NewRNG(9)
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = rng.Float64() * 1000
		y[i] = x[i]*0.8 + rng.Float64()*200
	}
	cfg := kdapcore.AnnealConfig{K: 6, L: 4, N: 500, AcceptProb: 0.25, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kdapcore.MergeIntervals(x, y, cfg)
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkMergeAblation compares the paper's simulated-annealing
// interval merge against the deterministic greedy alternative (§7's
// hypothesized "more efficient algorithm") and the unoptimized
// equal-width start.
func BenchmarkMergeAblation(b *testing.B) {
	rng := stats.NewRNG(77)
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = rng.Float64() * 1000
		y[i] = x[i]*0.6 + rng.Float64()*400
	}
	cfg := kdapcore.AnnealConfig{K: 6, L: 4, N: 500, AcceptProb: 0.25, Seed: 3}
	b.Run("anneal500", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kdapcore.MergeIntervals(x, y, cfg)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kdapcore.MergeIntervalsGreedy(x, y, cfg)
		}
	})
	b.Run("equalwidth", func(b *testing.B) {
		none := cfg
		none.N = 0
		for i := 0; i < b.N; i++ {
			kdapcore.MergeIntervals(x, y, none)
		}
	})
}

// BenchmarkExploreAblation compares sequential vs. parallel facet
// construction and the effect of the sub-dataspace cache (cold engines
// re-run the semijoin every iteration; warm ones hit the cache).
func BenchmarkExploreAblation(b *testing.B) {
	wh := AWOnline()
	nets, err := NewEngine(wh).Differentiate(experiments.Table1Query)
	if err != nil || len(nets) == 0 {
		b.Fatal("no nets")
	}
	sn := nets[0]
	b.Run("sequential-warm", func(b *testing.B) {
		e := NewEngine(wh)
		opts := DefaultExploreOptions()
		for i := 0; i < b.N; i++ {
			if _, err := e.Explore(sn, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-warm", func(b *testing.B) {
		e := NewEngine(wh)
		opts := DefaultExploreOptions()
		opts.Parallel = true
		for i := 0; i < b.N; i++ {
			if _, err := e.Explore(sn, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold-cache", func(b *testing.B) {
		opts := DefaultExploreOptions()
		for i := 0; i < b.N; i++ {
			e := NewEngine(wh) // fresh engine: no subspace cache, no path memo
			if _, err := e.Explore(sn, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDiscover measures the batch surprise scan over the EBiz
// product-group level (one Explore per group instance).
func BenchmarkDiscover(b *testing.B) {
	e := NewEngine(EBiz())
	level := AttrRef{Table: "PGROUP", Attr: "GroupName"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := e.Discover(level, "Product", Surprise, 5)
		if err != nil || len(out) == 0 {
			b.Fatalf("discover: %v (%d)", err, len(out))
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkFullTextSearch measures a single-keyword probe of the
// AW_ONLINE attribute-instance index.
func BenchmarkFullTextSearch(b *testing.B) {
	ix := AWOnline().Index
	queries := []string{"California", "Mountain", "Discount", "October", "Sydney"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := ix.Search(queries[i%len(queries)], fulltext.Options{}); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkFullTextPhrase measures a positional phrase probe.
func BenchmarkFullTextPhrase(b *testing.B) {
	ix := AWOnline().Index
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := ix.SearchPhrase("Mountain Bikes", fulltext.Options{}); len(hits) == 0 {
			b.Fatal("no hits")
		}
	}
}

// BenchmarkStarNetExecution measures slicing a sub-dataspace out of the
// >60k-row fact table through snowflake join paths.
func BenchmarkStarNetExecution(b *testing.B) {
	e := NewEngine(AWOnline())
	nets, err := e.Differentiate("California Mountain Bikes")
	if err != nil || len(nets) == 0 {
		b.Fatal("no nets")
	}
	sn := nets[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := e.SubspaceRows(sn); len(rows) == 0 {
			b.Fatal("empty subspace")
		}
	}
}

// BenchmarkGroupBy measures a full-dataspace group-by along a two-hop
// snowflake path.
func BenchmarkGroupBy(b *testing.B) {
	e := NewEngine(AWOnline())
	ex := e.Executor()
	path, ok := e.Graph().PathFromFact("DimProductSubcategory", "Product")
	if !ok {
		b.Fatal("no path")
	}
	rows := ex.FactRows(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups := ex.GroupBy(rows, "SubcategoryName", path, e.Measure(), Sum)
		if len(groups) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkGroupByDict measures the same full-dataspace two-hop
// group-by as BenchmarkGroupBy, but is pinned to the columnar kernel's
// workload for the perf trajectory in BENCH.json: dictionary-encoded
// attribute codes accumulated into a dense state slice. The /ref
// variant runs the retained row-at-a-time reference path over the
// identical inputs.
func BenchmarkGroupByDict(b *testing.B) {
	e := NewEngine(AWOnline())
	ex := e.Executor()
	path, ok := e.Graph().PathFromFact("DimProductSubcategory", "Product")
	if !ok {
		b.Fatal("no path")
	}
	rows := ex.FactRows(nil)
	ex.GroupBy(rows, "SubcategoryName", path, e.Measure(), Sum) // warm the code-vector cache
	b.Run("dict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			groups := ex.GroupBy(rows, "SubcategoryName", path, e.Measure(), Sum)
			if len(groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			groups := ex.GroupByRef(rows, "SubcategoryName", path, e.Measure(), Sum)
			if len(groups) == 0 {
				b.Fatal("no groups")
			}
		}
	})
}

// BenchmarkFusedAggregate measures the fused scan+aggregate kernel over
// the full AW_ONLINE dataspace (parallel above the row threshold)
// against the row-at-a-time reference.
func BenchmarkFusedAggregate(b *testing.B) {
	e := NewEngine(AWOnline())
	ex := e.Executor()
	rows := ex.FactRows(nil)
	want := ex.Aggregate(rows, e.Measure(), Sum) // warm the measure vector
	if want == 0 {
		b.Fatal("zero aggregate")
	}
	b.Run("fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ex.Aggregate(rows, e.Measure(), Sum) == 0 {
				b.Fatal("zero")
			}
		}
	})
	b.Run("ref", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if ex.AggregateRef(rows, e.Measure(), Sum) == 0 {
				b.Fatal("zero")
			}
		}
	})
}

// BenchmarkWarehouseBuild measures constructing the full EBiz warehouse
// (schema, data generation, indexing) from scratch.
func BenchmarkWarehouseBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wh := dataset.EBiz()
		if wh.DB.Table("TRANSITEM").Len() == 0 {
			b.Fatal("no facts")
		}
	}
}

// BenchmarkSubspaceScaling measures how sub-dataspace slicing scales with
// fact-table size over the same schema.
func BenchmarkSubspaceScaling(b *testing.B) {
	for _, size := range []int{4000, 16000, 64000} {
		wh := dataset.EBizSized(size)
		e := kdapcore.NewEngine(wh.Graph, wh.Index,
			RevenueMeasure(wh), Sum)
		nets, err := e.Differentiate("Columbus LCD")
		if err != nil || len(nets) == 0 {
			b.Fatal("no nets")
		}
		sn := nets[0]
		cs := sn.Constraints()
		b.Run(fmt.Sprintf("facts=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// Hit the executor directly so the engine's subspace
				// cache doesn't absorb the work being measured.
				if rows := e.Executor().FactRows(cs); len(rows) == 0 {
					b.Fatal("empty subspace")
				}
			}
		})
	}
}

// BenchmarkDifferentiatePerKeywords measures the differentiate phase as
// query length grows.
func BenchmarkDifferentiatePerKeywords(b *testing.B) {
	e := NewEngine(AWOnline())
	queries := map[string]string{
		"1kw": "California",
		"2kw": "California Bikes",
		"3kw": "California Mountain Bikes",
		"5kw": "North America Europe Pacific Bikes 2003",
	}
	for _, name := range []string{"1kw", "2kw", "3kw", "5kw"} {
		q := queries[name]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.Differentiate(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
