// CSV mart: KDAP over data files on disk — no Go code for the schema.
//
// The data/ directory holds three CSV files and a manifest.json declaring
// tables, keys, dimensions, and hierarchies (see internal/csvload for the
// format). This example loads the directory, runs a keyword query with a
// genuinely ambiguous keyword ("Mystery" is a genre; "Paris" a city), and
// explores the chosen interpretation.
//
// Run with:
//
//	go run ./examples/csvmart
//
// With -segments the fact CSV streams into disk segment files instead
// of loading resident — same answers, bounded memory — and the run
// reports the store's paging counters at the end.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"kdap"
)

func main() {
	segments := flag.Bool("segments", false, "stream the fact table into disk segments and serve it paged")
	flag.Parse()

	// Resolve data/ relative to this example's source directory when run
	// via `go run ./examples/csvmart`, falling back to the working
	// directory.
	dir := filepath.Join("examples", "csvmart", "data")
	if _, err := os.Stat(dir); err != nil {
		dir = "data"
	}
	var (
		wh    *kdap.Warehouse
		store *kdap.SegmentStore
		err   error
	)
	if *segments {
		segDir, terr := os.MkdirTemp("", "csvmart-segments-")
		if terr != nil {
			panic(terr)
		}
		defer os.RemoveAll(segDir)
		wh, store, err = kdap.LoadCSVWarehouseSegmented(dir, segDir)
	} else {
		wh, err = kdap.LoadCSVWarehouse(dir)
	}
	if err != nil {
		panic(err)
	}
	fmt.Printf("loaded %s: %d tables, %d rows\n", wh.DB.Name(), wh.DB.Stats().Tables, wh.DB.Stats().Rows)

	fact := wh.DB.Table("Orders")
	copies := fact.Schema().ColumnIndex("Copies")
	price := fact.Schema().ColumnIndex("Price")
	revenue := kdap.Measure{Name: "Revenue", Eval: func(row []kdap.Value) float64 {
		return row[copies].AsFloat() * row[price].AsFloat()
	}}
	engine := kdap.NewEngineWithMeasure(wh, revenue, kdap.Sum)

	fmt.Println("\n=== \"Mystery Paris\" ===")
	nets, err := engine.Differentiate("Mystery Paris")
	if err != nil {
		panic(err)
	}
	fmt.Print(kdap.RenderStarNets(nets, 5))

	facets, err := engine.Explore(nets[0], kdap.DefaultExploreOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Print(kdap.RenderFacets(facets))

	fmt.Println("\nSQL for the chosen interpretation:")
	fmt.Println(nets[0].SQL(engine.Measure(), engine.Agg(), "Orders"))

	if store != nil {
		st := store.Stats()
		fmt.Printf("\nsegment store: %d cache hits, %d paged in, %d evicted, %d skipped (bloom), %d skipped (zone)\n",
			st.Resident, st.PagedIn, st.Evicted, st.SkippedBloom, st.SkippedZone)
	}
}
