// Surprise hunting: the paper's first OLAP application (§1, §5.2.1).
//
// An analyst investigating mountain-bike sales in California wants to
// know which group-by attributes expose *exceptions* — partitions of the
// sub-dataspace whose aggregate distribution deviates most from the
// rolled-up background trend (Equation 1: the negated correlation). The
// facets surface, for every dimension, the attributes and instances where
// California mountain-bike sales behave unlike the wider market.
//
// Run with:
//
//	go run ./examples/surprise
package main

import (
	"fmt"
	"math"

	"kdap"
)

func main() {
	engine := kdap.NewEngine(kdap.AWOnline())

	nets, err := engine.Differentiate("California Mountain Bikes")
	if err != nil {
		panic(err)
	}
	fmt.Println("Top interpretations:")
	fmt.Print(kdap.RenderStarNets(nets, 3))

	opts := kdap.DefaultExploreOptions()
	opts.Mode = kdap.Surprise
	opts.TopKAttrs = 2
	facets, err := engine.Explore(nets[0], opts)
	if err != nil {
		panic(err)
	}

	fmt.Printf("\nSub-dataspace: %d facts, revenue %.2f\n",
		facets.SubspaceSize, facets.TotalAggregate)
	fmt.Println("\nMost surprising partitions per dimension (Eq. 1, surprise mode):")
	for _, d := range facets.Dimensions {
		for _, a := range d.Attributes {
			if a.Promoted {
				continue
			}
			fmt.Printf("  %-10s %-20s score %+.4f\n", d.Dimension, a.Attr.Attr, a.Score)
		}
	}

	// Pull out the single most deviant instance across all facets: the
	// concrete "sales for X are way off the trend" finding.
	var bestDim, bestAttr, bestInst string
	var bestScore float64
	for _, d := range facets.Dimensions {
		for _, a := range d.Attributes {
			for _, inst := range a.Instances {
				if math.Abs(inst.Score) > math.Abs(bestScore) {
					bestDim, bestAttr, bestInst = d.Dimension, a.Attr.Attr, inst.Label
					bestScore = inst.Score
				}
			}
		}
	}
	direction := "above"
	if bestScore < 0 {
		direction = "below"
	}
	fmt.Printf("\nBiggest exception: %s / %s = %q — its share of California "+
		"mountain-bike revenue is %.1f points %s its share in the roll-up space.\n",
		bestDim, bestAttr, bestInst, math.Abs(bestScore)*100, direction)
}
