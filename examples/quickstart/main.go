// Quickstart: the paper's running example end to end.
//
// A business analyst types "Columbus LCD" against the EBiz e-commerce
// warehouse (Figure 2 of the paper). The keyword "Columbus" is ambiguous
// — a city (with three different join paths: store location, buyer
// location, seller location), a holiday ("Columbus Day"), even a customer
// surname — and "LCD" matches product groups and product names at
// different hierarchy levels. KDAP enumerates the interpretations, ranks
// them, and then explores the one the analyst picks, building dynamic
// facets over the aggregated sub-dataspace.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"strings"

	"kdap"
)

func main() {
	wh := kdap.EBiz()
	engine := kdap.NewEngine(wh)

	fmt.Println("=== Differentiate: interpretations of \"Columbus LCD\" ===")
	nets, err := engine.Differentiate("Columbus LCD")
	if err != nil {
		panic(err)
	}
	fmt.Print(kdap.RenderStarNets(nets, 10))

	// The analyst recognizes the intended reading: LCD product sales in
	// stores located in Columbus (the city, via the Store join path).
	var chosen *kdap.StarNet
	for _, sn := range nets {
		sig := sn.DomainSignature()
		if strings.Contains(sig, "LOC.City[Store]") && strings.Contains(sig, "PGROUP.GroupName") {
			chosen = sn
			break
		}
	}
	if chosen == nil {
		chosen = nets[0]
	}
	fmt.Printf("\n=== Explore: %s ===\n", chosen.DomainSignature())

	facets, err := engine.Explore(chosen, kdap.DefaultExploreOptions())
	if err != nil {
		panic(err)
	}
	fmt.Print(kdap.RenderFacets(facets))

	// Each facet instance is a drill-down entry point: narrow to the most
	// surprising category of the first categorical facet and re-explore.
	for _, d := range facets.Dimensions {
		for _, a := range d.Attributes {
			if a.Numeric || a.Promoted || len(a.Instances) == 0 {
				continue
			}
			inst := a.Instances[0]
			fmt.Printf("\n=== Drill down: %s = %s ===\n", a.Attr.Attr, inst.Label)
			drilled, err := engine.Drill(chosen, a.Attr, a.Role, inst.Value)
			if err != nil {
				panic(err)
			}
			sub, err := engine.Explore(drilled, kdap.DefaultExploreOptions())
			if err != nil {
				fmt.Printf("(drill produced an empty subspace: %v)\n", err)
				return
			}
			fmt.Printf("narrowed to %d fact rows, aggregate %.2f\n",
				sub.SubspaceSize, sub.TotalAggregate)
			return
		}
	}
}
