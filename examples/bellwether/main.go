// Bellwether search: the paper's second OLAP application (§1, after Chen
// et al., VLDB 2006).
//
// Here the analyst wants the opposite of a surprise: local regions whose
// aggregates *track* the global trend, so that a cheap local measurement
// predicts the expensive global one. In bellwether mode, Equation 1 keeps
// the correlation's sign, so the facets rank highest the group-by
// attributes whose sub-dataspace distribution is most correlated with its
// roll-up — e.g. "reseller sales of touring bikes in one state move with
// nationwide bike sales".
//
// Run with:
//
//	go run ./examples/bellwether
package main

import (
	"fmt"

	"kdap"
)

func main() {
	engine := kdap.NewEngine(kdap.AWReseller())

	nets, err := engine.Differentiate("Touring Bikes")
	if err != nil {
		panic(err)
	}
	if len(nets) == 0 {
		panic("no interpretations")
	}
	fmt.Println("Interpretation:", nets[0].DomainSignature())

	opts := kdap.DefaultExploreOptions()
	opts.Mode = kdap.Bellwether
	opts.TopKAttrs = 3
	facets, err := engine.Explore(nets[0], opts)
	if err != nil {
		panic(err)
	}

	fmt.Printf("Sub-dataspace: %d reseller-sales facts, revenue %.2f\n\n",
		facets.SubspaceSize, facets.TotalAggregate)
	fmt.Println("Bellwether facets (higher score = local distribution tracks the roll-up):")
	for _, d := range facets.Dimensions {
		for _, a := range d.Attributes {
			if a.Promoted {
				continue
			}
			fmt.Printf("  %-10s %-20s corr %+.4f\n", d.Dimension, a.Attr.Attr, a.Score)
			// In bellwether mode instances rank by contribution: the
			// biggest local regions a analyst would instrument first.
			for i, inst := range a.Instances {
				if i >= 3 {
					break
				}
				fmt.Printf("      %-28s %14.2f\n", inst.Label, inst.Aggregate)
			}
		}
	}

	fmt.Println("\nCompare with surprise mode (same subspace, negated correlation):")
	opts.Mode = kdap.Surprise
	sf, err := engine.Explore(nets[0], opts)
	if err != nil {
		panic(err)
	}
	for _, d := range sf.Dimensions {
		for _, a := range d.Attributes {
			if a.Promoted {
				continue
			}
			fmt.Printf("  %-10s %-20s score %+.4f\n", d.Dimension, a.Attr.Attr, a.Score)
		}
	}
}
