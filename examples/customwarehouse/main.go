// Custom warehouse: wiring KDAP onto your own star schema through the
// public API.
//
// This example builds a tiny ticketing data mart from scratch — venues,
// artists, a calendar, and a sales fact table — declares its dimensions,
// hierarchies, and group-by candidates, and runs a keyword query with an
// ambiguous term ("Paris" is both a city and an artist) against it.
//
// Run with:
//
//	go run ./examples/customwarehouse
package main

import (
	"fmt"

	"kdap"
)

func main() {
	db := kdap.NewDatabase("TicketMart")

	venue := db.MustCreateTable(kdap.MustSchema("Venue", []kdap.Column{
		{Name: "VenueKey", Kind: kdap.KindInt},
		{Name: "VenueName", Kind: kdap.KindString, FullText: true},
		{Name: "City", Kind: kdap.KindString, FullText: true},
		{Name: "Country", Kind: kdap.KindString, FullText: true},
		{Name: "Capacity", Kind: kdap.KindInt},
	}, "VenueKey", nil))

	artist := db.MustCreateTable(kdap.MustSchema("Artist", []kdap.Column{
		{Name: "ArtistKey", Kind: kdap.KindInt},
		{Name: "ArtistName", Kind: kdap.KindString, FullText: true},
		{Name: "Genre", Kind: kdap.KindString, FullText: true},
	}, "ArtistKey", nil))

	month := db.MustCreateTable(kdap.MustSchema("Month", []kdap.Column{
		{Name: "MonthKey", Kind: kdap.KindInt},
		{Name: "MonthName", Kind: kdap.KindString, FullText: true},
		{Name: "Season", Kind: kdap.KindString, FullText: true},
	}, "MonthKey", nil))

	sales := db.MustCreateTable(kdap.MustSchema("TicketSales", []kdap.Column{
		{Name: "SaleKey", Kind: kdap.KindInt},
		{Name: "VenueKey", Kind: kdap.KindInt},
		{Name: "ArtistKey", Kind: kdap.KindInt},
		{Name: "MonthKey", Kind: kdap.KindInt},
		{Name: "Tickets", Kind: kdap.KindInt},
		{Name: "Price", Kind: kdap.KindFloat},
	}, "SaleKey", []kdap.ForeignKey{
		{Column: "VenueKey", RefTable: "Venue", RefColumn: "VenueKey"},
		{Column: "ArtistKey", RefTable: "Artist", RefColumn: "ArtistKey"},
		{Column: "MonthKey", RefTable: "Month", RefColumn: "MonthKey"},
	}))

	venues := [][3]string{
		{"Grand Hall", "Paris", "France"},
		{"Riverside Arena", "London", "United Kingdom"},
		{"Sunset Pavilion", "Los Angeles", "United States"},
		{"Harbour Stage", "Sydney", "Australia"},
	}
	for i, v := range venues {
		venue.MustAppend(kdap.Int(int64(i+1)), kdap.String(v[0]), kdap.String(v[1]),
			kdap.String(v[2]), kdap.Int(int64(5000+i*2500)))
	}
	artists := [][2]string{
		{"Paris Nights", "Electronic"}, // ambiguous with the city!
		{"The Velvet Owls", "Indie Rock"},
		{"Marble Choir", "Classical"},
	}
	for i, a := range artists {
		artist.MustAppend(kdap.Int(int64(i+1)), kdap.String(a[0]), kdap.String(a[1]))
	}
	seasons := []string{"Winter", "Winter", "Spring", "Spring", "Spring", "Summer",
		"Summer", "Summer", "Autumn", "Autumn", "Autumn", "Winter"}
	names := []string{"January", "February", "March", "April", "May", "June",
		"July", "August", "September", "October", "November", "December"}
	for i := 0; i < 12; i++ {
		month.MustAppend(kdap.Int(int64(i+1)), kdap.String(names[i]), kdap.String(seasons[i]))
	}
	// Deterministic synthetic facts: every venue × artist × month cell.
	key := int64(1)
	for v := 1; v <= len(venues); v++ {
		for a := 1; a <= len(artists); a++ {
			for m := 1; m <= 12; m++ {
				tickets := int64(100 + (v*7+a*13+m*3)%200)
				price := 30 + float64((v*11+a*5+m)%40)
				sales.MustAppend(kdap.Int(key), kdap.Int(int64(v)), kdap.Int(int64(a)),
					kdap.Int(int64(m)), kdap.Int(tickets), kdap.Float(price))
				key++
			}
		}
	}

	g := kdap.NewGraph(db, "TicketSales")
	for _, d := range []*kdap.Dimension{
		{
			Name:   "Venue",
			Tables: []string{"Venue"},
			Hierarchies: []kdap.Hierarchy{{Name: "Geo", Levels: []kdap.AttrRef{
				{Table: "Venue", Attr: "Country"},
				{Table: "Venue", Attr: "City"},
				{Table: "Venue", Attr: "VenueName"},
			}}},
			GroupBy: []kdap.AttrRef{
				{Table: "Venue", Attr: "City"},
				{Table: "Venue", Attr: "Country"},
				{Table: "Venue", Attr: "Capacity"},
			},
		},
		{
			Name:   "Artist",
			Tables: []string{"Artist"},
			GroupBy: []kdap.AttrRef{
				{Table: "Artist", Attr: "ArtistName"},
				{Table: "Artist", Attr: "Genre"},
			},
		},
		{
			Name:   "Time",
			Tables: []string{"Month"},
			Hierarchies: []kdap.Hierarchy{{Name: "Calendar", Levels: []kdap.AttrRef{
				{Table: "Month", Attr: "Season"},
				{Table: "Month", Attr: "MonthName"},
			}}},
			GroupBy: []kdap.AttrRef{
				{Table: "Month", Attr: "MonthName"},
				{Table: "Month", Attr: "Season"},
			},
		},
	} {
		if err := g.AddDimension(d); err != nil {
			panic(err)
		}
	}
	if err := g.Build(); err != nil {
		panic(err)
	}
	wh := kdap.BuildWarehouse(db, g)

	// The fact table has no UnitPrice column the default engine would
	// recognize, so declare the revenue measure explicitly.
	fact := db.Table("TicketSales")
	tickets := fact.Schema().ColumnIndex("Tickets")
	price := fact.Schema().ColumnIndex("Price")
	revenue := kdap.Measure{Name: "TicketRevenue", Eval: func(row []kdap.Value) float64 {
		return row[tickets].AsFloat() * row[price].AsFloat()
	}}
	engine := kdap.NewEngineWithMeasure(wh, revenue, kdap.Sum)

	fmt.Println("=== \"Paris Summer\" on a custom warehouse ===")
	nets, err := engine.Differentiate("Paris Summer")
	if err != nil {
		panic(err)
	}
	fmt.Print(kdap.RenderStarNets(nets, 6))

	facets, err := engine.Explore(nets[0], kdap.DefaultExploreOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Print(kdap.RenderFacets(facets))
}
