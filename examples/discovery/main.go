// Discovery: batch surprise scanning without a keyword query.
//
// The paper's explore phase needs the analyst to name a subspace first.
// This example inverts the loop (discovery-driven exploration in the
// spirit of Sarawagi et al., which the paper builds its interestingness
// notion on): scan every instance of a hierarchy level, score each
// induced subspace by its most surprising group-by partition, and report
// where in the warehouse the anomalies live — then snapshot the warehouse
// to disk and prove the reloaded copy answers identically.
//
// Run with:
//
//	go run ./examples/discovery
package main

import (
	"bytes"
	"fmt"

	"kdap"
)

func main() {
	wh := kdap.EBiz()
	engine := kdap.NewEngine(wh)

	fmt.Println("=== Most surprising product groups (EBiz) ===")
	groups, err := engine.Discover(kdap.AttrRef{Table: "PGROUP", Attr: "GroupName"}, "Product", kdap.Surprise, 5)
	if err != nil {
		panic(err)
	}
	for i, d := range groups {
		fmt.Printf("%d. %-22s %6d facts  revenue %12.2f  most surprising along %s (score %+.3f)\n",
			i+1, d.Value.Text(), d.Rows, d.Aggregate, d.BestAttr, d.Score)
	}

	fmt.Println("\n=== Most surprising store cities ===")
	cities, err := engine.Discover(kdap.AttrRef{Table: "LOC", Attr: "City"}, "Store", kdap.Surprise, 5)
	if err != nil {
		panic(err)
	}
	for i, d := range cities {
		fmt.Printf("%d. %-22s %6d facts  revenue %12.2f  most surprising along %s (score %+.3f)\n",
			i+1, d.Value.Text(), d.Rows, d.Aggregate, d.BestAttr, d.Score)
	}

	// Snapshot the warehouse and verify the reloaded copy agrees.
	var buf bytes.Buffer
	if err := kdap.SaveWarehouse(&buf, wh); err != nil {
		panic(err)
	}
	fmt.Printf("\nSnapshot size: %d KiB\n", buf.Len()/1024)
	reloaded, err := kdap.LoadWarehouse(&buf)
	if err != nil {
		panic(err)
	}
	again, err := kdap.NewEngine(reloaded).Discover(
		kdap.AttrRef{Table: "PGROUP", Attr: "GroupName"}, "Product", kdap.Surprise, 5)
	if err != nil {
		panic(err)
	}
	same := len(again) == len(groups)
	for i := range groups {
		if same && (groups[i].Value != again[i].Value || groups[i].Score != again[i].Score) {
			same = false
		}
	}
	fmt.Printf("Reloaded warehouse reproduces the discovery ranking: %v\n", same)
}
