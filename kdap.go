// Package kdap implements Keyword-Driven Analytical Processing (KDAP):
// keyword search over an OLAP star/snowflake schema combined with
// multi-dimensional aggregation, after Wu, Sismanis & Reinwald
// (SIGMOD 2007).
//
// A KDAP session has two phases. In the differentiate phase, a keyword
// query such as "Columbus LCD" is expanded into ranked candidate star
// nets — join trees through the fact table annotated with the attribute
// instances each keyword matched — so the analyst can pick the intended
// interpretation ("users don't know how to specify what they want, but
// they know it when they see it"). In the explore phase, the chosen
// interpretation's sub-dataspace is aggregated and organized into dynamic
// facets: the most interesting group-by attributes per dimension, ranked
// by roll-up partitioning (how much the local aggregate distribution
// deviates from — or, in bellwether mode, tracks — the rolled-up
// background distribution), with numeric domains bucketized and merged
// into display ranges by simulated annealing.
//
// Quick start:
//
//	wh := kdap.EBiz() // or kdap.AWOnline(), or build your own warehouse
//	engine := kdap.NewEngine(wh)
//	nets, _ := engine.Differentiate("Columbus LCD")
//	facets, _ := engine.Explore(nets[0], kdap.DefaultExploreOptions())
//	fmt.Print(kdap.RenderFacets(facets))
package kdap

import (
	"io"
	"path/filepath"

	"kdap/internal/cache"
	"kdap/internal/csvload"
	"kdap/internal/dataset"
	"kdap/internal/fulltext"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/persist"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// Warehouse bundles a database with its schema graph and full-text index.
type Warehouse = dataset.Warehouse

// Engine is a KDAP session over one warehouse.
type Engine = kdapcore.Engine

// Session is the interactive query → pick → explore → drill state
// machine; front ends hold one per user.
type Session = kdapcore.Session

// StarNet is one candidate interpretation of a keyword query.
type StarNet = kdapcore.StarNet

// BoundGroup is a hit group bound to a join path within a star net.
type BoundGroup = kdapcore.BoundGroup

// HitGroup collects the hits of one or more keywords in one attribute
// domain.
type HitGroup = kdapcore.HitGroup

// Hit is a single attribute-instance match for a keyword.
type Hit = kdapcore.Hit

// Facets is the explore-phase result: the dynamic multi-faceted interface
// over a sub-dataspace.
type Facets = kdapcore.Facets

// DimensionFacets groups one dimension's selected facets.
type DimensionFacets = kdapcore.DimensionFacets

// AttrFacet is one ranked group-by attribute with organized instances.
type AttrFacet = kdapcore.AttrFacet

// Instance is one attribute value or numeric range inside a facet.
type Instance = kdapcore.Instance

// ExploreOptions parameterize facet construction.
type ExploreOptions = kdapcore.ExploreOptions

// InterestMode selects the interestingness measure (Surprise/Bellwether).
type InterestMode = kdapcore.InterestMode

// RankMethod selects the star-net ranking formula.
type RankMethod = kdapcore.RankMethod

// AnnealConfig parameterizes the numeric interval merge (Algorithm 2).
type AnnealConfig = kdapcore.AnnealConfig

// CacheOutcome reports how an answer-cached engine call was served
// (bypass, miss, hit, or coalesced) — see Engine.SetAnswerCache.
type CacheOutcome = kdapcore.CacheOutcome

// AnswerCacheStats snapshots one answer cache's counters
// (Engine.AnswerCacheStats).
type AnswerCacheStats = cache.AnswerStats

// Answer-cache outcomes.
const (
	CacheBypass    = kdapcore.CacheBypass
	CacheMiss      = kdapcore.CacheMiss
	CacheHit       = kdapcore.CacheHit
	CacheCoalesced = kdapcore.CacheCoalesced
)

// MergeResult is the outcome of a numeric interval merge.
type MergeResult = kdapcore.MergeResult

// Interestingness modes.
const (
	Surprise   = kdapcore.Surprise
	Bellwether = kdapcore.Bellwether
)

// Star-net ranking methods (Figure 4 of the paper).
const (
	Standard        = kdapcore.Standard
	NoGroupNumNorm  = kdapcore.NoGroupNumNorm
	NoGroupSizeNorm = kdapcore.NoGroupSizeNorm
	Baseline        = kdapcore.Baseline
)

// Measure evaluates a numeric measure over one fact row.
type Measure = olap.Measure

// Agg selects the aggregation function.
type Agg = olap.Agg

// Executor runs star-net slicing, aggregation, group-by, and pivot
// queries; obtain one from Engine.Executor().
type Executor = olap.Executor

// PivotTable is a two-dimensional cross-tabulation with margins.
type PivotTable = olap.PivotTable

// Aggregation functions.
const (
	Sum   = olap.Sum
	Count = olap.Count
	Avg   = olap.Avg
	Min   = olap.Min
	Max   = olap.Max
)

// Graph is the OLAP metadata layer: fact table, dimensions, hierarchies,
// and join-path enumeration.
type Graph = schemagraph.Graph

// Dimension declares one dimension's tables, hierarchies, and group-by
// candidates.
type Dimension = schemagraph.Dimension

// Hierarchy is an ordered attribute chain from general to detailed.
type Hierarchy = schemagraph.Hierarchy

// AttrRef names an attribute as (table, column).
type AttrRef = schemagraph.AttrRef

// Database is the in-memory relational store warehouses are built on.
type Database = relation.Database

// Table is one relation inside a Database.
type Table = relation.Table

// Schema declares a table's columns and keys.
type Schema = relation.Schema

// Column declares one attribute of a table.
type Column = relation.Column

// ForeignKey declares a key reference between tables.
type ForeignKey = relation.ForeignKey

// Value is a dynamically typed relational value.
type Value = relation.Value

// Index is the attribute-instance full-text index.
type Index = fulltext.Index

// EBiz builds the paper's Figure 2 running-example warehouse: a small
// e-commerce schema with the Columbus city/holiday ambiguity, the shared
// location table, dual buyer/seller account joins, and two product
// hierarchies.
func EBiz() *Warehouse { return dataset.EBiz() }

// AWOnline returns the synthetic AW_ONLINE warehouse used by the paper's
// evaluation (5 dimensions, 10 tables, >60k internet-sales facts). The
// warehouse is built once and shared.
func AWOnline() *Warehouse { return dataset.AWOnline() }

// AWReseller returns the synthetic AW_RESELLER warehouse (7 dimensions,
// 13 tables, >60k reseller-sales facts). Built once and shared.
func AWReseller() *Warehouse { return dataset.AWReseller() }

// NewEngine creates an engine over a warehouse with the paper's default
// measure: SUM of sales revenue (UnitPrice × quantity) when the fact
// table has those columns, COUNT of fact rows otherwise.
func NewEngine(wh *Warehouse) *Engine {
	return NewEngineWithMeasure(wh, RevenueMeasure(wh), Sum)
}

// NewSession creates an interactive session over an engine.
func NewSession(e *Engine, opts ExploreOptions) *Session {
	return kdapcore.NewSession(e, opts)
}

// NewEngineWithMeasure creates an engine with a caller-chosen measure and
// aggregation function (§5 notes user-defined measures as an extension;
// they are first-class here).
func NewEngineWithMeasure(wh *Warehouse, m Measure, agg Agg) *Engine {
	return kdapcore.NewEngine(wh.Graph, wh.Index, m, agg)
}

// RevenueMeasure returns the warehouse's sales-revenue measure: the
// product of its unit-price and quantity fact columns, falling back to a
// row count when the fact table has no such columns.
func RevenueMeasure(wh *Warehouse) Measure {
	fact := wh.DB.Table(wh.Graph.FactTable())
	switch {
	case fact.Schema().HasColumn("UnitPrice") && fact.Schema().HasColumn("OrderQuantity"):
		return olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "OrderQuantity")
	case fact.Schema().HasColumn("UnitPrice") && fact.Schema().HasColumn("Quantity"):
		return olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "Quantity")
	default:
		return olap.CountMeasure()
	}
}

// DefaultExploreOptions returns the paper's default explore parameters
// (surprise mode, 40 basic intervals, 6 display ranges, 500 annealing
// iterations).
func DefaultExploreOptions() ExploreOptions { return kdapcore.DefaultExploreOptions() }

// DefaultAnnealConfig returns the paper's default interval-merge
// parameters.
func DefaultAnnealConfig() AnnealConfig { return kdapcore.DefaultAnnealConfig() }

// MergeIntervals merges basic-interval series into K display ranges
// (Algorithm 2), preserving the basic-interval correlation as closely as
// the skew constraint allows.
func MergeIntervals(x, y []float64, cfg AnnealConfig) MergeResult {
	return kdapcore.MergeIntervals(x, y, cfg)
}

// Discovery is one result of Engine.Discover: a subspace and its most
// interesting group-by attribute.
type Discovery = kdapcore.Discovery

// NumericFilter is a resolved numeric query predicate ("DealerPrice>1000").
type NumericFilter = kdapcore.NumericFilter

// LoadCSVWarehouse builds a warehouse from a directory containing CSV
// files and a manifest.json describing tables, keys, dimensions, and
// hierarchies — see internal/csvload for the manifest format. This is the
// bring-your-own-data entry point.
func LoadCSVWarehouse(dir string) (*Warehouse, error) { return csvload.LoadDir(dir) }

// SegmentStore is the paged column store behind a disk-backed fact
// table: skip/paging counters (Stats) and the cache-budget knob
// (SetCacheBudget).
type SegmentStore = persist.Store

// LoadCSVWarehouseSegmented is LoadCSVWarehouse with the fact table
// disk-backed: fact CSV rows stream through a segment writer into
// column files under segDir (with per-segment zone maps, Bloom
// filters, and term segment lists) and scans page segments in on
// demand, so fact data larger than memory loads and serves in bounded
// RSS. Facet output is byte-identical to the resident load.
func LoadCSVWarehouseSegmented(dir, segDir string) (*Warehouse, *SegmentStore, error) {
	m, err := csvload.LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, nil, err
	}
	return csvload.LoadWithOptions(dir, m, csvload.LoadOptions{SegmentDir: segDir})
}

// SaveWarehouse snapshots a complete warehouse (data, schema, dimension
// metadata) to w; reopen it with LoadWarehouse.
func SaveWarehouse(w io.Writer, wh *Warehouse) error { return persist.Save(w, wh) }

// LoadWarehouse reads a warehouse snapshot written by SaveWarehouse,
// rebuilding the schema graph and full-text index.
func LoadWarehouse(r io.Reader) (*Warehouse, error) { return persist.Load(r) }

// --- building custom warehouses ---

// Value constructors for populating custom warehouses.
var (
	// String wraps a Go string as a relational value.
	String = relation.String
	// Int wraps an int64 as a relational value.
	Int = relation.Int
	// Float wraps a float64 as a relational value.
	Float = relation.Float
	// Bool wraps a bool as a relational value.
	Bool = relation.Bool
	// Null returns the NULL value.
	Null = relation.Null
)

// Value kinds for declaring column types.
const (
	KindString = relation.KindString
	KindInt    = relation.KindInt
	KindFloat  = relation.KindFloat
	KindBool   = relation.KindBool
)

// NewDatabase creates an empty in-memory database.
func NewDatabase(name string) *Database { return relation.NewDatabase(name) }

// NewSchema declares a table schema; key may be empty for keyless (fact)
// tables.
func NewSchema(name string, cols []Column, key string, fks []ForeignKey) (*Schema, error) {
	return relation.NewSchema(name, cols, key, fks)
}

// MustSchema is NewSchema that panics on error, for statically known
// schemas.
func MustSchema(name string, cols []Column, key string, fks []ForeignKey) *Schema {
	return relation.MustSchema(name, cols, key, fks)
}

// NewGraph creates the OLAP metadata layer over a database with the named
// fact (grain) table. Register dimensions with AddDimension, then call
// Build.
func NewGraph(db *Database, factTable string) *Graph { return schemagraph.New(db, factTable) }

// NewIndex creates an empty full-text index; call IndexDatabase to index
// every FullText column's distinct values, then Freeze.
func NewIndex() *Index { return fulltext.NewIndex() }

// BuildWarehouse assembles a Warehouse from its parts, freezing the
// database and index for concurrent reads. The graph must already be
// Built.
func BuildWarehouse(db *Database, g *Graph) *Warehouse {
	db.Freeze()
	ix := fulltext.NewIndex()
	ix.IndexDatabase(db)
	ix.Freeze()
	return &Warehouse{DB: db, Graph: g, Index: ix}
}
