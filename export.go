package kdap

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteFacetsCSV exports facets as CSV with one row per facet instance:
//
//	dimension, attribute, role, promoted, numeric, attr_score,
//	instance, lo, hi, aggregate, instance_score
//
// so downstream tools (spreadsheets, plotting) can consume an explore
// result directly.
func WriteFacetsCSV(w io.Writer, f *Facets) error {
	cw := csv.NewWriter(w)
	header := []string{
		"dimension", "attribute", "role", "promoted", "numeric",
		"attr_score", "instance", "lo", "hi", "aggregate", "instance_score",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			score := ""
			if !a.Promoted {
				score = ff(a.Score)
			}
			for _, inst := range a.Instances {
				lo, hi := "", ""
				if a.Numeric {
					lo, hi = ff(inst.Lo), ff(inst.Hi)
				}
				rec := []string{
					d.Dimension, a.Attr.Attr, a.Role,
					strconv.FormatBool(a.Promoted), strconv.FormatBool(a.Numeric),
					score, inst.Label, lo, hi, ff(inst.Aggregate), ff(inst.Score),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// SchemaDOT renders the warehouse's schema graph in Graphviz DOT form:
// tables as nodes (the fact complex double-boxed), foreign keys as edges,
// and dimensions as clusters. Feed it to `dot -Tsvg` to get a Figure
// 2-style diagram of any warehouse.
func SchemaDOT(wh *Warehouse) string {
	g := wh.Graph
	db := wh.DB
	out := "digraph schema {\n  rankdir=LR;\n  node [shape=box];\n"
	fact := g.FactTable()

	inDim := map[string]string{}
	for di, d := range g.Dimensions() {
		out += fmt.Sprintf("  subgraph cluster_%d {\n    label=%q;\n", di, d.Name)
		for _, tn := range d.Tables {
			if _, taken := inDim[tn]; taken {
				continue // shared tables render once, in their first dimension
			}
			inDim[tn] = d.Name
			out += fmt.Sprintf("    %q;\n", tn)
		}
		out += "  }\n"
	}
	for _, tn := range db.TableNames() {
		if _, ok := inDim[tn]; ok {
			continue
		}
		shape := "box"
		if tn == fact {
			shape = "doubleoctagon"
		}
		out += fmt.Sprintf("  %q [shape=%s];\n", tn, shape)
	}
	for _, tn := range db.TableNames() {
		for _, fk := range db.Table(tn).Schema().ForeignKeys {
			out += fmt.Sprintf("  %q -> %q [label=%q];\n", tn, fk.RefTable, fk.Column)
		}
	}
	out += "}\n"
	return out
}
