package relation

import "fmt"

// Segmented column access. A column is exposed as a sequence of
// fixed-size segments (DefaultSegmentSize rows, the last one short), so
// execution kernels can iterate storage-aligned spans instead of whole
// dense slices. Two families of readers implement the interfaces: the
// resident ones below, which subslice the Table's cached dense views at
// zero cost, and the disk-backed ones in internal/persist, which page
// segments in from column files under a byte budget. Everything the
// kernels compute is a pure function of the values a reader yields, so
// swapping one family for the other never changes output bytes.

// DefaultSegmentSize is the number of rows per column segment. Segment
// sizes must be powers of two so row→segment mapping is a shift.
const DefaultSegmentSize = 8192

// ValidSegmentSize reports whether n is a usable segment size: a power
// of two of at least 64 rows (smaller segments drown in per-segment
// bookkeeping).
func ValidSegmentSize(n int) bool {
	return n >= 64 && n&(n-1) == 0
}

// NumSegments returns how many segments cover n rows at the given
// segment size.
func NumSegments(n, segSize int) int {
	if n <= 0 {
		return 0
	}
	return (n + segSize - 1) / segSize
}

// FloatReader yields a numeric column segment by segment as float64
// (NaN marks NULL). Implementations must be safe for concurrent use;
// returned slices are shared and must not be modified.
type FloatReader interface {
	// Len returns the column's row count.
	Len() int
	// SegmentSize returns the fixed segment size (a power of two).
	SegmentSize() int
	// FloatSegment returns the values of segment si — rows
	// [si*SegmentSize, min((si+1)*SegmentSize, Len)).
	FloatSegment(si int) []float64
}

// DictReader yields a dictionary-encoded column segment by segment:
// codes index Dict, -1 marks NULL. Implementations must be safe for
// concurrent use; returned slices are shared and must not be modified.
type DictReader interface {
	Len() int
	SegmentSize() int
	// CodeSegment returns the codes of segment si.
	CodeSegment(si int) []int32
	// Dict returns the dictionary: distinct non-NULL values in
	// first-seen row order.
	Dict() []Value
}

// ColumnBacking is the storage provider behind a Table whose rows are
// not resident: per-column segmented readers plus the per-segment skip
// evidence (zone maps over numeric columns, Bloom filters over key-like
// and term columns) that lets scans prove a segment irrelevant without
// reading it. internal/persist implements it over mmap-able column
// files; the interface lives here so relation does not import persist.
type ColumnBacking interface {
	// NumRows returns the backed table's row count.
	NumRows() int
	// SegmentSize returns the backing's fixed segment size.
	SegmentSize() int
	// FloatReader returns the segmented float view of a numeric column,
	// or nil when the column is not numeric-backed.
	FloatReader(col string) FloatReader
	// DictReader returns the segmented dictionary view of a non-numeric
	// column, or nil.
	DictReader(col string) DictReader
	// SegmentMayContain reports Bloom evidence for one segment of col:
	// (false, true) proves the segment does not contain v; (true, true)
	// means it may. hasBloom false means no filter exists for the column
	// and the segment must be scanned.
	SegmentMayContain(col string, si int, v Value) (maybe, hasBloom bool)
	// SegmentZoneOverlaps reports zone-map evidence: whether any value
	// in segment si of col can fall in the closed interval [lo, hi].
	// hasZone false means the column carries no zone maps.
	SegmentZoneOverlaps(col string, si int, lo, hi float64) (overlaps, hasZone bool)
	// NoteSkips folds a scan's planning verdict into the backing's
	// skip counters (kdap_segments_skipped_{bloom,zone}_total).
	NoteSkips(bloom, zone int)
}

// AppendableBacking is the optional mutation extension of a
// ColumnBacking: a backing that can accept new rows at the tail while
// concurrent readers keep scanning. Rows arrive already validated and
// widened against the table schema. Implementations must keep every
// published segment, zone map, Bloom filter, and term segment list
// consistent with the row count they report — a reader that observed
// NumRows() == n must be able to read all n rows' evidence.
type AppendableBacking interface {
	// AppendRows appends the rows at the tail of every column.
	AppendRows(rows [][]Value) error
}

// TermSegmenter is the optional skip-list extension of a ColumnBacking:
// for full-text columns the disk format records, per distinct value,
// the ascending list of segments containing it. ok is false when the
// column carries no lists; an empty list with ok true proves the value
// absent everywhere. The fulltext index and the semijoin use the lists
// to turn a term lookup into a scan of just the segments that matter.
type TermSegmenter interface {
	ValueSegments(col string, v Value) ([]int32, bool)
}

// residentFloats adapts a dense float column to FloatReader.
type residentFloats struct{ vals []float64 }

func (r residentFloats) Len() int         { return len(r.vals) }
func (r residentFloats) SegmentSize() int { return DefaultSegmentSize }
func (r residentFloats) FloatSegment(si int) []float64 {
	lo := si * DefaultSegmentSize
	return r.vals[lo:min(lo+DefaultSegmentSize, len(r.vals))]
}

// ResidentFloats wraps a dense float column in a FloatReader with the
// default segment size. The slice is shared, not copied.
func ResidentFloats(vals []float64) FloatReader { return residentFloats{vals} }

// residentCodes adapts a dense code column to DictReader.
type residentCodes struct {
	codes []int32
	dict  []Value
}

func (r residentCodes) Len() int         { return len(r.codes) }
func (r residentCodes) SegmentSize() int { return DefaultSegmentSize }
func (r residentCodes) Dict() []Value    { return r.dict }
func (r residentCodes) CodeSegment(si int) []int32 {
	lo := si * DefaultSegmentSize
	return r.codes[lo:min(lo+DefaultSegmentSize, len(r.codes))]
}

// ResidentCodes wraps a dense dictionary-coded column in a DictReader
// with the default segment size. The slices are shared, not copied.
func ResidentCodes(codes []int32, dict []Value) DictReader { return residentCodes{codes, dict} }

// FloatCursor is a sequential random-access view over a FloatReader:
// At(row) fetches the row's segment on first touch and serves
// subsequent rows of the same segment from it. Row sets handed to the
// kernels are sorted, so a cursor fetches each segment at most once per
// pass. Not safe for concurrent use — each worker takes its own.
type FloatCursor struct {
	rd    FloatReader
	seg   []float64
	si    int
	shift uint
}

// NewFloatCursor returns a cursor over rd. The reader's segment size
// must be a power of two.
func NewFloatCursor(rd FloatReader) *FloatCursor {
	ss := rd.SegmentSize()
	if !ValidSegmentSize(ss) {
		panic(fmt.Sprintf("relation: invalid segment size %d", ss))
	}
	return &FloatCursor{rd: rd, si: -1, shift: uint(shiftFor(ss))}
}

// At returns the value at row r.
func (c *FloatCursor) At(r int) float64 {
	si := r >> c.shift
	if si != c.si {
		c.seg, c.si = c.rd.FloatSegment(si), si
	}
	return c.seg[r-si<<c.shift]
}

// DictCursor is the dictionary-coded counterpart of FloatCursor.
type DictCursor struct {
	rd    DictReader
	seg   []int32
	si    int
	shift uint
}

// NewDictCursor returns a cursor over rd.
func NewDictCursor(rd DictReader) *DictCursor {
	ss := rd.SegmentSize()
	if !ValidSegmentSize(ss) {
		panic(fmt.Sprintf("relation: invalid segment size %d", ss))
	}
	return &DictCursor{rd: rd, si: -1, shift: uint(shiftFor(ss))}
}

// At returns the code at row r.
func (c *DictCursor) At(r int) int32 {
	si := r >> c.shift
	if si != c.si {
		c.seg, c.si = c.rd.CodeSegment(si), si
	}
	return c.seg[r-si<<c.shift]
}

// shiftFor returns log2(n) for a power-of-two n.
func shiftFor(n int) int {
	s := 0
	for 1<<uint(s) < n {
		s++
	}
	return s
}
