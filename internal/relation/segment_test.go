package relation

import (
	"math"
	"testing"
)

func TestValidSegmentSize(t *testing.T) {
	for _, n := range []int{64, 128, 8192, 1 << 20} {
		if !ValidSegmentSize(n) {
			t.Errorf("ValidSegmentSize(%d) = false", n)
		}
	}
	for _, n := range []int{0, 1, 32, 63, 100, 8191, -64} {
		if ValidSegmentSize(n) {
			t.Errorf("ValidSegmentSize(%d) = true", n)
		}
	}
}

func TestNumSegments(t *testing.T) {
	cases := []struct{ n, ss, want int }{
		{0, 8192, 0}, {1, 8192, 1}, {8192, 8192, 1}, {8193, 8192, 2},
		{100, 64, 2}, {-5, 64, 0},
	}
	for _, c := range cases {
		if got := NumSegments(c.n, c.ss); got != c.want {
			t.Errorf("NumSegments(%d, %d) = %d, want %d", c.n, c.ss, got, c.want)
		}
	}
}

func TestResidentReadersAndCursors(t *testing.T) {
	n := 2*DefaultSegmentSize + 37 // three segments, short tail
	vals := make([]float64, n)
	codes := make([]int32, n)
	for i := range vals {
		vals[i] = float64(i) * 0.5
		codes[i] = int32(i % 7)
	}
	vals[5] = math.NaN()
	codes[6] = -1
	dict := []Value{String("a"), String("b"), String("c"), String("d"), String("e"), String("f"), String("g")}

	fr := ResidentFloats(vals)
	dr := ResidentCodes(codes, dict)
	if fr.Len() != n || dr.Len() != n {
		t.Fatalf("reader lengths %d/%d, want %d", fr.Len(), dr.Len(), n)
	}
	if got := len(fr.FloatSegment(2)); got != 37 {
		t.Fatalf("tail segment has %d rows, want 37", got)
	}

	fc := NewFloatCursor(fr)
	dc := NewDictCursor(dr)
	// Sequential pass, then backward jumps — cursors must refetch.
	for _, r := range []int{0, 1, 5, 6, DefaultSegmentSize - 1, DefaultSegmentSize, n - 1, 3, n - 1} {
		fv := fc.At(r)
		if !(fv == vals[r] || (math.IsNaN(fv) && math.IsNaN(vals[r]))) {
			t.Fatalf("FloatCursor.At(%d) = %v, want %v", r, fv, vals[r])
		}
		if cv := dc.At(r); cv != codes[r] {
			t.Fatalf("DictCursor.At(%d) = %d, want %d", r, cv, codes[r])
		}
	}
}

func TestCursorRejectsBadSegmentSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFloatCursor accepted a non-power-of-two segment size")
		}
	}()
	NewFloatCursor(badSizeReader{})
}

type badSizeReader struct{}

func (badSizeReader) Len() int                   { return 10 }
func (badSizeReader) SegmentSize() int           { return 100 }
func (badSizeReader) FloatSegment(int) []float64 { return nil }

// TestResidentLookupInSegments checks the segment-restricted lookup on
// a resident table scans everything (resident tables keep hash-exact
// semantics; the restriction is only meaningful for backed storage).
func TestResidentLookupInSegments(t *testing.T) {
	schema := MustSchema("T", []Column{{Name: "A", Kind: KindInt}}, "", nil)
	tab := NewTable(schema)
	for i := 0; i < 100; i++ {
		tab.MustAppend(Int(int64(i % 10)))
	}
	want := tab.Lookup("A", Int(3))
	got := tab.LookupInSegments("A", []Value{Int(3)}, []int32{0})
	if len(want) != len(got) {
		t.Fatalf("LookupInSegments on resident table returned %d rows, want %d", len(got), len(want))
	}
}
