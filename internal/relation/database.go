package relation

import (
	"fmt"
	"sort"
)

// Database is a named collection of tables with validated foreign keys.
type Database struct {
	name   string
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{name: name, tables: make(map[string]*Table)}
}

// Name returns the database name.
func (db *Database) Name() string { return db.name }

// AddTable registers a table. Table names must be unique.
func (db *Database) AddTable(t *Table) error {
	if _, dup := db.tables[t.Name()]; dup {
		return fmt.Errorf("relation: database %s: duplicate table %q", db.name, t.Name())
	}
	db.tables[t.Name()] = t
	db.order = append(db.order, t.Name())
	return nil
}

// MustCreateTable builds a table from a schema, registers it, and returns
// it; it panics on any error. Intended for static dataset construction.
func (db *Database) MustCreateTable(s *Schema) *Table {
	t := NewTable(s)
	if err := db.AddTable(t); err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table, or nil.
func (db *Database) Table(name string) *Table { return db.tables[name] }

// TableNames returns the table names in registration order.
func (db *Database) TableNames() []string {
	return append([]string(nil), db.order...)
}

// Validate checks referential integrity: every foreign key must point to an
// existing table and column, and (when strict) every non-NULL foreign-key
// value must resolve to exactly one referenced row.
func (db *Database) Validate(strict bool) error {
	for _, name := range db.order {
		t := db.tables[name]
		for _, fk := range t.Schema().ForeignKeys {
			ref := db.tables[fk.RefTable]
			if ref == nil {
				return fmt.Errorf("relation: %s.%s references missing table %q", name, fk.Column, fk.RefTable)
			}
			if !ref.Schema().HasColumn(fk.RefColumn) {
				return fmt.Errorf("relation: %s.%s references missing column %s.%s", name, fk.Column, fk.RefTable, fk.RefColumn)
			}
			if !strict {
				continue
			}
			ci := t.Schema().ColumnIndex(fk.Column)
			var bad error
			t.Scan(func(id int, row []Value) bool {
				v := row[ci]
				if v.IsNull() {
					return true
				}
				n := len(ref.Lookup(fk.RefColumn, v))
				if n != 1 {
					bad = fmt.Errorf("relation: %s row %d: %s=%#v resolves to %d rows of %s",
						name, id, fk.Column, v, n, fk.RefTable)
					return false
				}
				return true
			})
			if bad != nil {
				return bad
			}
		}
	}
	return nil
}

// Freeze freezes every table (pre-building key indexes) so that the
// database can afterwards be read concurrently.
func (db *Database) Freeze() {
	for _, name := range db.order {
		db.tables[name].Freeze()
	}
}

// Stats summarises the database for logging: table count, row counts, and
// full-text attribute count.
func (db *Database) Stats() DatabaseStats {
	st := DatabaseStats{Name: db.name, Tables: len(db.order)}
	names := append([]string(nil), db.order...)
	sort.Strings(names)
	for _, name := range names {
		t := db.tables[name]
		st.Rows += t.Len()
		st.FullTextColumns += len(t.Schema().FullTextColumns())
		st.PerTable = append(st.PerTable, TableStats{Name: name, Rows: t.Len()})
	}
	return st
}

// DatabaseStats is the result of Database.Stats.
type DatabaseStats struct {
	Name            string
	Tables          int
	Rows            int
	FullTextColumns int
	PerTable        []TableStats
}

// TableStats is one table's row count within DatabaseStats.
type TableStats struct {
	Name string
	Rows int
}
