package relation

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Table is an append-only in-memory relation. Rows are identified by dense
// integer row IDs (their insertion position), which the rest of the system
// uses as compact fact/dimension handles.
//
// Hash indexes are built lazily per column on first lookup and maintained
// on subsequent appends. A Table is not safe for concurrent mutation,
// but concurrent reads are safe once loading has finished: the lazy
// index and column-view builds are guarded by locks, so a cold column
// may be materialized mid-read (Freeze additionally pre-builds the key
// indexes and numeric views so the common lookups never take the
// build path at all).
type Table struct {
	schema  *Schema
	rows    [][]Value
	idxMu   sync.RWMutex
	indexes map[string]map[Value][]int

	// Columnar views, built on demand (numeric ones also at Freeze) and
	// dropped on Append. Unlike the hash indexes these are guarded by a
	// lock, so a cold column may be materialized safely mid-read by the
	// executor's concurrent kernels.
	colMu     sync.RWMutex
	floatCols map[int][]float64
	dictCols  map[int]*dictColumn

	// backing, when non-nil, makes this a backed table: rows is empty
	// and every access goes through the segmented column readers (see
	// segment.go). Backed tables are immutable, carry no hash indexes
	// (lookups are Bloom/zone-pruned segment scans), and never
	// materialize whole dense columns.
	backing ColumnBacking
	// dictIdx caches, per backed dict column, the value→code map used
	// to translate lookup values into codes. Guarded by colMu.
	dictIdx map[int]map[Value]int32
}

// dictColumn is a dictionary-encoded column view: codes[row] indexes
// dict, or is -1 where the stored value is NULL. The dictionary holds
// distinct values in first-seen row order.
type dictColumn struct {
	codes []int32
	dict  []Value
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{
		schema:  schema,
		indexes: make(map[string]map[Value][]int),
	}
}

// NewBackedTable creates an immutable table whose column storage lives
// behind the given backing (typically persist's segment store). The
// backing must provide a reader for every schema column: FloatReader
// for numeric columns, DictReader otherwise.
func NewBackedTable(schema *Schema, backing ColumnBacking) (*Table, error) {
	for _, c := range schema.Columns {
		if c.Kind == KindInt || c.Kind == KindFloat {
			if backing.FloatReader(c.Name) == nil {
				return nil, fmt.Errorf("relation: %s: backing has no float reader for column %q", schema.Name, c.Name)
			}
		} else if backing.DictReader(c.Name) == nil {
			return nil, fmt.Errorf("relation: %s: backing has no dict reader for column %q", schema.Name, c.Name)
		}
	}
	return &Table{schema: schema, backing: backing, dictIdx: make(map[int]map[Value]int32)}, nil
}

// Backing returns the table's column backing, or nil for a resident
// table. Execution layers use it to reach the per-segment skip evidence
// and the paging counters.
func (t *Table) Backing() ColumnBacking { return t.backing }

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of rows.
func (t *Table) Len() int {
	if t.backing != nil {
		return t.backing.NumRows()
	}
	return len(t.rows)
}

// Append validates the row against the schema and appends it, returning
// the new row ID. Int values are widened into float columns.
func (t *Table) Append(row []Value) (int, error) {
	if t.backing != nil {
		return 0, fmt.Errorf("relation: %s: backed tables are immutable", t.Name())
	}
	if len(row) != len(t.schema.Columns) {
		return 0, fmt.Errorf("relation: %s: row arity %d, want %d", t.Name(), len(row), len(t.schema.Columns))
	}
	stored := make([]Value, len(row))
	for i, v := range row {
		c := t.schema.Columns[i]
		switch {
		case v.IsNull():
			stored[i] = v
		case v.Kind() == c.Kind:
			stored[i] = v
		case c.Kind == KindFloat && v.Kind() == KindInt:
			stored[i] = Float(float64(v.IntVal()))
		default:
			return 0, fmt.Errorf("relation: %s.%s: cannot store %s value %#v in %s column",
				t.Name(), c.Name, v.Kind(), v, c.Kind)
		}
	}
	id := len(t.rows)
	t.rows = append(t.rows, stored)
	t.idxMu.Lock()
	for col, idx := range t.indexes {
		ci := t.schema.ColumnIndex(col)
		v := stored[ci]
		idx[v] = append(idx[v], id)
	}
	t.idxMu.Unlock()
	t.invalidateColumns()
	return id, nil
}

// invalidateColumns drops the columnar views; they no longer cover the
// table after an append.
func (t *Table) invalidateColumns() {
	t.colMu.Lock()
	t.floatCols = nil
	t.dictCols = nil
	t.colMu.Unlock()
}

// MustAppend is Append that panics on error; for statically known rows.
func (t *Table) MustAppend(row ...Value) int {
	id, err := t.Append(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Row returns the stored row for id. The returned slice must not be
// modified. On a backed table the row is assembled from the column
// segments — correct but per-value; kernels should read columns through
// FloatReader/DictReader instead.
func (t *Table) Row(id int) []Value {
	if t.backing != nil {
		row := make([]Value, len(t.schema.Columns))
		for ci, c := range t.schema.Columns {
			row[ci] = t.backedValue(id, ci, c)
		}
		return row
	}
	return t.rows[id]
}

// backedValue reads one cell of a backed table through its column reader.
func (t *Table) backedValue(id, ci int, c Column) Value {
	ss := t.backing.SegmentSize()
	si, off := id/ss, id%ss
	if c.Kind == KindInt || c.Kind == KindFloat {
		f := t.backing.FloatReader(c.Name).FloatSegment(si)[off]
		if math.IsNaN(f) {
			return Null()
		}
		if c.Kind == KindInt {
			return Int(int64(f))
		}
		return Float(f)
	}
	rd := t.backing.DictReader(c.Name)
	code := rd.CodeSegment(si)[off]
	if code < 0 {
		return Null()
	}
	return rd.Dict()[code]
}

// Value returns the value at (row id, column name). It panics if the
// column does not exist.
func (t *Table) Value(id int, col string) Value {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	if t.backing != nil {
		return t.backedValue(id, ci, t.schema.Columns[ci])
	}
	return t.rows[id][ci]
}

// index returns (building if needed) the hash index for col. Like the
// columnar views, a cold build is safe mid-read: concurrent callers may
// both build, but only one result is kept.
func (t *Table) index(col string) map[Value][]int {
	if t.backing != nil {
		panic(fmt.Sprintf("relation: %s is backed; lookups are segment scans, not hash indexes", t.Name()))
	}
	t.idxMu.RLock()
	idx, ok := t.indexes[col]
	t.idxMu.RUnlock()
	if ok {
		return idx
	}
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	idx = make(map[Value][]int)
	for id, row := range t.rows {
		idx[row[ci]] = append(idx[row[ci]], id)
	}
	t.idxMu.Lock()
	if prior, ok := t.indexes[col]; ok {
		idx = prior // lost the build race; keep the published index
	} else {
		t.indexes[col] = idx
	}
	t.idxMu.Unlock()
	return idx
}

// Freeze pre-builds hash indexes on the primary key and every foreign-key
// column so that subsequent concurrent lookups never mutate the table,
// and materializes the float view of every numeric column for the
// columnar kernels. Dictionary views stay lazy (their own lock makes a
// cold build safe mid-read) since most string columns are never grouped
// by.
func (t *Table) Freeze() {
	if t.backing != nil {
		// Backed tables carry no hash indexes and never materialize
		// dense views; there is nothing to pre-build.
		return
	}
	if t.schema.Key != "" {
		t.index(t.schema.Key)
	}
	for _, fk := range t.schema.ForeignKeys {
		t.index(fk.Column)
	}
	for _, c := range t.schema.Columns {
		if c.Kind == KindInt || c.Kind == KindFloat {
			t.FloatColumn(c.Name)
		}
	}
}

// FloatColumn returns the dense float64 view of col: one entry per row,
// with NULL (and any non-numeric value) represented as NaN. The view is
// built once and cached; the returned slice is shared and must not be
// modified.
func (t *Table) FloatColumn(col string) []float64 {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	if t.backing != nil {
		// Materializing a whole backed column would defeat the paging
		// budget; every caller on the backed path must go through
		// FloatReader. Panicking here turns a missed call site into a
		// loud test failure instead of a silent RSS blowup.
		panic(fmt.Sprintf("relation: %s is backed; use FloatReader(%q) instead of FloatColumn", t.Name(), col))
	}
	t.colMu.RLock()
	c := t.floatCols[ci]
	t.colMu.RUnlock()
	if c != nil {
		return c
	}
	c = make([]float64, len(t.rows))
	for i, row := range t.rows {
		c[i] = row[ci].FloatOrNaN()
	}
	t.colMu.Lock()
	if t.floatCols == nil {
		t.floatCols = make(map[int][]float64)
	}
	t.floatCols[ci] = c
	t.colMu.Unlock()
	return c
}

// DictColumn returns the dictionary-encoded view of col: codes[row]
// indexes dict (distinct non-NULL values in first-seen order), or is -1
// where the value is NULL. The view is built once and cached; the
// returned slices are shared and must not be modified.
func (t *Table) DictColumn(col string) (codes []int32, dict []Value) {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	if t.backing != nil {
		panic(fmt.Sprintf("relation: %s is backed; use DictReader(%q) instead of DictColumn", t.Name(), col))
	}
	t.colMu.RLock()
	dc := t.dictCols[ci]
	t.colMu.RUnlock()
	if dc != nil {
		return dc.codes, dc.dict
	}
	dc = &dictColumn{codes: make([]int32, len(t.rows))}
	code := make(map[Value]int32)
	for i, row := range t.rows {
		v := row[ci]
		if v.IsNull() {
			dc.codes[i] = -1
			continue
		}
		c, ok := code[v]
		if !ok {
			c = int32(len(dc.dict))
			code[v] = c
			dc.dict = append(dc.dict, v)
		}
		dc.codes[i] = c
	}
	t.colMu.Lock()
	if t.dictCols == nil {
		t.dictCols = make(map[int]*dictColumn)
	}
	t.dictCols[ci] = dc
	t.colMu.Unlock()
	return dc.codes, dc.dict
}

// Lookup returns the IDs of rows whose col equals v, using (and caching) a
// hash index. On a backed table it is a Bloom/zone-pruned segment scan.
// The returned slice is shared and must not be modified.
func (t *Table) Lookup(col string, v Value) []int {
	if t.backing != nil {
		return t.lookupScan(col, []Value{v}, nil)
	}
	return t.index(col)[v]
}

// LookupIn returns the IDs of rows whose col equals any of vals, in
// ascending row order without duplicates. On a backed table the whole
// value set is resolved in one segment scan, skipping segments that the
// column's Bloom filters or zone maps prove cannot contain any of the
// values.
func (t *Table) LookupIn(col string, vals []Value) []int {
	if t.backing != nil {
		return t.lookupScan(col, vals, nil)
	}
	idx := t.index(col)
	var out []int
	for _, v := range vals {
		out = append(out, idx[v]...)
	}
	sort.Ints(out)
	return dedupSorted(out)
}

// LookupInSegments is LookupIn restricted to the given segments of a
// backed table (ascending, deduplicated segment indices) — the hook for
// posting-level skip lists, where an upstream index already knows which
// segments can contain a value. On a resident table segs is ignored.
func (t *Table) LookupInSegments(col string, vals []Value, segs []int32) []int {
	if t.backing != nil {
		return t.lookupScan(col, vals, segs)
	}
	return t.LookupIn(col, vals)
}

// FloatReader returns the segmented float view of a numeric column:
// the backing's pageable reader for a backed table, a zero-copy wrapper
// over the cached dense view otherwise.
func (t *Table) FloatReader(col string) FloatReader {
	if t.backing != nil {
		rd := t.backing.FloatReader(col)
		if rd == nil {
			panic(fmt.Sprintf("relation: %s: no float backing for column %q", t.Name(), col))
		}
		return rd
	}
	return ResidentFloats(t.FloatColumn(col))
}

// DictReader returns the segmented dictionary view of a column.
func (t *Table) DictReader(col string) DictReader {
	if t.backing != nil {
		rd := t.backing.DictReader(col)
		if rd == nil {
			panic(fmt.Sprintf("relation: %s: no dict backing for column %q", t.Name(), col))
		}
		return rd
	}
	codes, dict := t.DictColumn(col)
	return ResidentCodes(codes, dict)
}

// ResidentFloatColumn returns the dense float view of col, or nil when
// the table is backed — the measure constructors use it so vectorized
// fast paths engage only when the column is truly resident.
func (t *Table) ResidentFloatColumn(col string) []float64 {
	if t.backing != nil {
		return nil
	}
	return t.FloatColumn(col)
}

// dictCodeMap returns (building and caching on first use) the value→code
// map of a backed dict column, used to translate lookup values into
// codes. Values outside the dictionary match nothing.
func (t *Table) dictCodeMap(ci int, rd DictReader) map[Value]int32 {
	t.colMu.RLock()
	m := t.dictIdx[ci]
	t.colMu.RUnlock()
	if m != nil {
		return m
	}
	dict := rd.Dict()
	m = make(map[Value]int32, len(dict))
	for c, v := range dict {
		m[v] = int32(c)
	}
	t.colMu.Lock()
	if prior, ok := t.dictIdx[ci]; ok {
		m = prior
	} else {
		t.dictIdx[ci] = m
	}
	t.colMu.Unlock()
	return m
}

// lookupScan resolves a value-set lookup against a backed column by
// scanning its segments in row order, consulting per-segment Bloom
// filters (and, for numeric columns, zone maps over the values' span)
// to skip segments that provably contain none of the wanted values.
// segs, when non-nil, restricts the scan to those segments. Matching is
// kind-exact, mirroring the resident hash index: an Int value never
// matches a Float column and vice versa.
func (t *Table) lookupScan(col string, vals []Value, segs []int32) []int {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	c := t.schema.Columns[ci]
	ss := t.backing.SegmentSize()
	nseg := NumSegments(t.Len(), ss)
	iter := func(body func(si int)) {
		if segs != nil {
			for _, si := range segs {
				if int(si) < nseg {
					body(int(si))
				}
			}
			return
		}
		for si := 0; si < nseg; si++ {
			body(si)
		}
	}

	var out []int
	skippedBloom, skippedZone := 0, 0
	defer func() { t.backing.NoteSkips(skippedBloom, skippedZone) }()

	if c.Kind == KindInt || c.Kind == KindFloat {
		// Numeric column: wanted values become exact float targets.
		// Kind-mismatched values are dropped; NULL matches NaN cells.
		wantNull := false
		targets := make([]float64, 0, len(vals))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if v.IsNull() {
				wantNull = true
				continue
			}
			if v.Kind() != c.Kind {
				continue
			}
			f := v.AsFloat()
			targets = append(targets, f)
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		if len(targets) == 0 && !wantNull {
			return nil
		}
		rd := t.backing.FloatReader(col)
		iter(func(si int) {
			if !wantNull {
				if ov, has := t.backing.SegmentZoneOverlaps(col, si, lo, hi); has && !ov {
					skippedZone++
					return
				}
				if ok, has := t.segMayContainAny(col, si, vals, c.Kind); has && !ok {
					skippedBloom++
					return
				}
			}
			seg := rd.FloatSegment(si)
			base := si * ss
			for i, f := range seg {
				if math.IsNaN(f) {
					if wantNull {
						out = append(out, base+i)
					}
					continue
				}
				for _, tg := range targets {
					if f == tg {
						out = append(out, base+i)
						break
					}
				}
			}
		})
		return out
	}

	// Dictionary column: translate values to codes once, then scan codes.
	rd := t.backing.DictReader(col)
	codeOf := t.dictCodeMap(ci, rd)
	wantNull := false
	want := make(map[int32]struct{}, len(vals))
	for _, v := range vals {
		if v.IsNull() {
			wantNull = true
			continue
		}
		if code, ok := codeOf[v]; ok {
			want[code] = struct{}{}
		}
	}
	if len(want) == 0 && !wantNull {
		return nil
	}
	iter(func(si int) {
		if !wantNull {
			if ok, has := t.segMayContainAny(col, si, vals, c.Kind); has && !ok {
				skippedBloom++
				return
			}
		}
		seg := rd.CodeSegment(si)
		base := si * ss
		for i, code := range seg {
			if code < 0 {
				if wantNull {
					out = append(out, base+i)
				}
				continue
			}
			if _, hit := want[code]; hit {
				out = append(out, base+i)
			}
		}
	})
	return out
}

// segMayContainAny folds Bloom evidence over a value set: the segment
// may be skipped only when the filter proves every wanted value absent.
// Kind-mismatched and out-of-dictionary values are still probed — the
// Bloom filter is keyed on canonical value encodings, so they simply
// miss.
func (t *Table) segMayContainAny(col string, si int, vals []Value, kind Kind) (maybe, has bool) {
	has = false
	for _, v := range vals {
		if v.IsNull() || ((kind == KindInt || kind == KindFloat) && v.Kind() != kind) {
			continue
		}
		m, ok := t.backing.SegmentMayContain(col, si, v)
		if !ok {
			return true, false
		}
		has = true
		if m {
			return true, true
		}
	}
	return false, has
}

// Scan calls fn for every row ID in insertion order, stopping early if fn
// returns false. On a backed table each row is assembled from its column
// segments — use the readers directly for anything hot.
func (t *Table) Scan(fn func(id int, row []Value) bool) {
	if t.backing != nil {
		n := t.Len()
		for id := 0; id < n; id++ {
			if !fn(id, t.Row(id)) {
				return
			}
		}
		return
	}
	for id, row := range t.rows {
		if !fn(id, row) {
			return
		}
	}
}

// Filter returns the IDs of rows satisfying pred, in insertion order.
func (t *Table) Filter(pred func(row []Value) bool) []int {
	var out []int
	if t.backing != nil {
		n := t.Len()
		for id := 0; id < n; id++ {
			if pred(t.Row(id)) {
				out = append(out, id)
			}
		}
		return out
	}
	for id, row := range t.rows {
		if pred(row) {
			out = append(out, id)
		}
	}
	return out
}

// DistinctValues returns the distinct non-NULL values of col in first-seen
// order.
func (t *Table) DistinctValues(col string) []Value {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	if t.backing != nil {
		c := t.schema.Columns[ci]
		if c.Kind != KindInt && c.Kind != KindFloat {
			// A dict column's dictionary is exactly its distinct non-NULL
			// values in first-seen order.
			dict := t.backing.DictReader(c.Name).Dict()
			out := make([]Value, len(dict))
			copy(out, dict)
			return out
		}
		rd := t.backing.FloatReader(c.Name)
		seen := make(map[float64]struct{})
		var out []Value
		nseg := NumSegments(t.Len(), t.backing.SegmentSize())
		for si := 0; si < nseg; si++ {
			for _, f := range rd.FloatSegment(si) {
				if math.IsNaN(f) {
					continue
				}
				if _, ok := seen[f]; ok {
					continue
				}
				seen[f] = struct{}{}
				if c.Kind == KindInt {
					out = append(out, Int(int64(f)))
				} else {
					out = append(out, Float(f))
				}
			}
		}
		return out
	}
	seen := make(map[Value]struct{})
	var out []Value
	for _, row := range t.rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// dedupSorted removes duplicates from a sorted int slice in place.
func dedupSorted(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}
