package relation

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Table is an append-only relation. Rows are identified by dense integer
// row IDs (their insertion position), which the rest of the system uses
// as compact fact/dimension handles.
//
// Hash indexes are built lazily per column on first lookup and maintained
// on subsequent appends. Concurrent reads are always safe, and appends
// through Append/AppendFacts are safe concurrently with readers: the row
// snapshot is published through an atomic pointer, so a reader sees the
// row count current when its access started (a consistent prefix) and
// never a torn row. The lazy index and column-view builds are guarded by
// locks and track how many rows they cover, extending their tails on
// demand (Freeze additionally pre-builds the key indexes and numeric
// views so the common lookups never take the build path at all).
// Appends themselves are serialized by a writer mutex.
type Table struct {
	schema *Schema
	// rows is the build-time row storage, read only when pub has never
	// been published. The first AppendFacts snapshots it into pub and
	// the field is never written again, so readers racing the first
	// publish still see a stable header.
	rows [][]Value
	// pub is the published row snapshot: a header whose len is the row
	// count visible to readers. Appends write new rows into spare
	// capacity beyond the published len, then publish a longer header —
	// readers never index past the len they loaded.
	pub atomic.Pointer[[][]Value]
	// appendMu serializes writers.
	appendMu sync.Mutex

	idxMu   sync.RWMutex
	indexes map[string]*colIndex

	// Columnar views, built on demand (numeric ones also at Freeze) and
	// extended in place on append. Unlike the hash indexes these are
	// guarded by their own lock, so a cold column may be materialized
	// safely mid-read by the executor's concurrent kernels.
	colMu     sync.RWMutex
	floatCols map[int][]float64
	dictCols  map[int]*dictColumn

	// backing, when non-nil, makes this a backed table: rows is empty
	// and every access goes through the segmented column readers (see
	// segment.go). Backed tables carry no hash indexes (lookups are
	// Bloom/zone-pruned segment scans), never materialize whole dense
	// columns, and accept appends only when the backing implements
	// AppendableBacking.
	backing ColumnBacking
	// dictIdx caches, per backed dict column, the value→code map used
	// to translate lookup values into codes. Guarded by colMu.
	dictIdx map[int]map[Value]int32
}

// colIndex is one column's hash index together with the number of rows
// it covers, so an index built from an older snapshot is extended — not
// rebuilt — the next time it is consulted. Keeping the coverage count on
// the struct (rather than in a parallel map) keeps the hot lookup path
// at a single map access.
type colIndex struct {
	buckets map[Value][]int
	n       int // rows covered
}

// dictColumn is a dictionary-encoded column view: codes[row] indexes
// dict, or is -1 where the stored value is NULL. The dictionary holds
// distinct values in first-seen row order; code is the reverse map kept
// so appends can extend codes without rescanning.
type dictColumn struct {
	codes []int32
	dict  []Value
	code  map[Value]int32
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{
		schema:  schema,
		indexes: make(map[string]*colIndex),
	}
}

// NewBackedTable creates an immutable table whose column storage lives
// behind the given backing (typically persist's segment store). The
// backing must provide a reader for every schema column: FloatReader
// for numeric columns, DictReader otherwise.
func NewBackedTable(schema *Schema, backing ColumnBacking) (*Table, error) {
	for _, c := range schema.Columns {
		if c.Kind == KindInt || c.Kind == KindFloat {
			if backing.FloatReader(c.Name) == nil {
				return nil, fmt.Errorf("relation: %s: backing has no float reader for column %q", schema.Name, c.Name)
			}
		} else if backing.DictReader(c.Name) == nil {
			return nil, fmt.Errorf("relation: %s: backing has no dict reader for column %q", schema.Name, c.Name)
		}
	}
	return &Table{schema: schema, backing: backing, dictIdx: make(map[int]map[Value]int32)}, nil
}

// Backing returns the table's column backing, or nil for a resident
// table. Execution layers use it to reach the per-segment skip evidence
// and the paging counters.
func (t *Table) Backing() ColumnBacking { return t.backing }

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// view returns the published row snapshot. Its length is the row count
// visible to the caller; later appends only ever publish longer
// snapshots, so everything below the loaded length is immutable.
func (t *Table) view() [][]Value {
	if p := t.pub.Load(); p != nil {
		return *p
	}
	return t.rows
}

// Len returns the number of rows.
func (t *Table) Len() int {
	if t.backing != nil {
		return t.backing.NumRows()
	}
	return len(t.view())
}

// Append validates the row against the schema and appends it, returning
// the new row ID. Int values are widened into float columns.
func (t *Table) Append(row []Value) (int, error) {
	return t.AppendFacts([][]Value{row})
}

// AppendFacts validates and appends a batch of rows, returning the row
// ID of the first appended row. It is the streaming-ingest entry point:
// safe to call concurrently with readers, which keep seeing a consistent
// prefix of the table while the hash indexes and columnar views are
// extended in place — never rebuilt. On a backed table the rows are
// handed to the backing, which must implement AppendableBacking.
func (t *Table) AppendFacts(rows [][]Value) (int, error) {
	// One flat backing array for the whole batch: at streaming rates the
	// per-row slice headers are pure GC pressure, and row-major layout
	// keeps the batch contiguous for the extension loops below.
	ncols := len(t.schema.Columns)
	flat := make([]Value, len(rows)*ncols)
	stored := make([][]Value, len(rows))
	for ri, row := range rows {
		if len(row) != ncols {
			return 0, fmt.Errorf("relation: %s: row arity %d, want %d", t.Name(), len(row), ncols)
		}
		srow := flat[ri*ncols : (ri+1)*ncols : (ri+1)*ncols]
		for i, v := range row {
			c := t.schema.Columns[i]
			switch {
			case v.IsNull():
				srow[i] = v
			case v.Kind() == c.Kind:
				srow[i] = v
			case c.Kind == KindFloat && v.Kind() == KindInt:
				srow[i] = Float(float64(v.IntVal()))
			default:
				return 0, fmt.Errorf("relation: %s.%s: cannot store %s value %#v in %s column",
					t.Name(), c.Name, v.Kind(), v, c.Kind)
			}
		}
		stored[ri] = srow
	}

	t.appendMu.Lock()
	defer t.appendMu.Unlock()

	if t.backing != nil {
		ab, ok := t.backing.(AppendableBacking)
		if !ok {
			return 0, fmt.Errorf("relation: %s: backing does not support appends", t.Name())
		}
		start := t.backing.NumRows()
		if err := ab.AppendRows(stored); err != nil {
			return 0, err
		}
		return start, nil
	}

	base := t.view()
	start := len(base)
	grown := append(base, stored...)
	// Publish the longer snapshot. When append grew in place the new
	// elements landed beyond every older snapshot's len, so concurrent
	// readers are unaffected; when it reallocated, older snapshots keep
	// their own backing.
	t.pub.Store(&grown)

	// Hash indexes and columnar views are NOT extended here: every read
	// path (indexLookup, FloatColumn, DictColumn) checks its coverage
	// against the snapshot it holds and tail-extends under its own lock,
	// so eager maintenance would only move that amortized cost onto the
	// write path — measured at ~70% of the append, almost all of it
	// Value-keyed map inserts for the fact table's six hash indexes.
	return start, nil
}

// extendFloatColLocked brings the cached float view of column ci up to
// the given snapshot. Caller holds colMu. In-place growth is safe: new
// entries land beyond the len of every slice header already handed out.
func (t *Table) extendFloatColLocked(ci int, rows [][]Value) {
	c := t.floatCols[ci]
	for i := len(c); i < len(rows); i++ {
		c = append(c, rows[i][ci].FloatOrNaN())
	}
	t.floatCols[ci] = c
}

// extendDictColLocked brings the cached dictionary view of column ci up
// to the given snapshot, growing the dictionary for first-seen values.
// Caller holds colMu.
func (t *Table) extendDictColLocked(ci int, rows [][]Value) {
	dc := t.dictCols[ci]
	for i := len(dc.codes); i < len(rows); i++ {
		v := rows[i][ci]
		if v.IsNull() {
			dc.codes = append(dc.codes, -1)
			continue
		}
		c, ok := dc.code[v]
		if !ok {
			c = int32(len(dc.dict))
			dc.code[v] = c
			dc.dict = append(dc.dict, v)
		}
		dc.codes = append(dc.codes, c)
	}
}

// MustAppend is Append that panics on error; for statically known rows.
func (t *Table) MustAppend(row ...Value) int {
	id, err := t.Append(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Row returns the stored row for id. The returned slice must not be
// modified. On a backed table the row is assembled from the column
// segments — correct but per-value; kernels should read columns through
// FloatReader/DictReader instead.
func (t *Table) Row(id int) []Value {
	if t.backing != nil {
		row := make([]Value, len(t.schema.Columns))
		for ci, c := range t.schema.Columns {
			row[ci] = t.backedValue(id, ci, c)
		}
		return row
	}
	return t.view()[id]
}

// backedValue reads one cell of a backed table through its column reader.
func (t *Table) backedValue(id, ci int, c Column) Value {
	ss := t.backing.SegmentSize()
	si, off := id/ss, id%ss
	if c.Kind == KindInt || c.Kind == KindFloat {
		f := t.backing.FloatReader(c.Name).FloatSegment(si)[off]
		if math.IsNaN(f) {
			return Null()
		}
		if c.Kind == KindInt {
			return Int(int64(f))
		}
		return Float(f)
	}
	rd := t.backing.DictReader(c.Name)
	code := rd.CodeSegment(si)[off]
	if code < 0 {
		return Null()
	}
	return rd.Dict()[code]
}

// Value returns the value at (row id, column name). It panics if the
// column does not exist.
func (t *Table) Value(id int, col string) Value {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	if t.backing != nil {
		return t.backedValue(id, ci, t.schema.Columns[ci])
	}
	return t.view()[id][ci]
}

// indexLookup resolves rows whose col equals any of vals through the
// hash index, building or tail-extending the index as needed so it
// covers at least the caller's row snapshot. The whole map access stays
// under the lock — appends mutate bucket headers in place — but the
// returned bucket slices are safe to use after release: an append only
// ever writes past their published len.
func (t *Table) indexLookup(col string, vals []Value) [][]int {
	rows := t.view()
	t.idxMu.RLock()
	idx := t.indexes[col]
	if idx == nil || idx.n < len(rows) {
		t.idxMu.RUnlock()
		t.extendIndex(col, rows)
		t.idxMu.RLock()
		idx = t.indexes[col]
	}
	out := make([][]int, len(vals))
	for i, v := range vals {
		out[i] = idx.buckets[v]
	}
	t.idxMu.RUnlock()
	return out
}

// extendIndex builds or tail-extends col's hash index so it covers at
// least the given row snapshot.
func (t *Table) extendIndex(col string, rows [][]Value) {
	if t.backing != nil {
		panic(fmt.Sprintf("relation: %s is backed; lookups are segment scans, not hash indexes", t.Name()))
	}
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	t.idxMu.Lock()
	idx := t.indexes[col]
	if idx == nil {
		idx = &colIndex{buckets: make(map[Value][]int)}
		t.indexes[col] = idx
	}
	for id := idx.n; id < len(rows); id++ {
		v := rows[id][ci]
		idx.buckets[v] = append(idx.buckets[v], id)
	}
	if idx.n < len(rows) {
		idx.n = len(rows)
	}
	t.idxMu.Unlock()
}

// index pre-builds the hash index for col (Freeze's hook).
func (t *Table) index(col string) {
	t.indexLookup(col, nil)
}

// Freeze pre-builds hash indexes on the primary key and every foreign-key
// column so that subsequent concurrent lookups never mutate the table,
// and materializes the float view of every numeric column for the
// columnar kernels. Dictionary views stay lazy (their own lock makes a
// cold build safe mid-read) since most string columns are never grouped
// by.
func (t *Table) Freeze() {
	if t.backing != nil {
		// Backed tables carry no hash indexes and never materialize
		// dense views; there is nothing to pre-build.
		return
	}
	if t.schema.Key != "" {
		t.index(t.schema.Key)
	}
	for _, fk := range t.schema.ForeignKeys {
		t.index(fk.Column)
	}
	for _, c := range t.schema.Columns {
		if c.Kind == KindInt || c.Kind == KindFloat {
			t.FloatColumn(c.Name)
		}
	}
}

// FloatColumn returns the dense float64 view of col: one entry per row,
// with NULL (and any non-numeric value) represented as NaN. The view is
// built once and cached; the returned slice is shared and must not be
// modified.
func (t *Table) FloatColumn(col string) []float64 {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	if t.backing != nil {
		// Materializing a whole backed column would defeat the paging
		// budget; every caller on the backed path must go through
		// FloatReader. Panicking here turns a missed call site into a
		// loud test failure instead of a silent RSS blowup.
		panic(fmt.Sprintf("relation: %s is backed; use FloatReader(%q) instead of FloatColumn", t.Name(), col))
	}
	rows := t.view()
	t.colMu.RLock()
	c := t.floatCols[ci]
	t.colMu.RUnlock()
	if len(c) >= len(rows) {
		return c
	}
	t.colMu.Lock()
	if t.floatCols == nil {
		t.floatCols = make(map[int][]float64)
	}
	if _, ok := t.floatCols[ci]; !ok {
		t.floatCols[ci] = make([]float64, 0, len(rows))
	}
	t.extendFloatColLocked(ci, rows)
	c = t.floatCols[ci]
	t.colMu.Unlock()
	return c
}

// DictColumn returns the dictionary-encoded view of col: codes[row]
// indexes dict (distinct non-NULL values in first-seen order), or is -1
// where the value is NULL. The view is built once and cached; the
// returned slices are shared and must not be modified.
func (t *Table) DictColumn(col string) (codes []int32, dict []Value) {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	if t.backing != nil {
		panic(fmt.Sprintf("relation: %s is backed; use DictReader(%q) instead of DictColumn", t.Name(), col))
	}
	rows := t.view()
	t.colMu.RLock()
	dc := t.dictCols[ci]
	if dc != nil && len(dc.codes) >= len(rows) {
		codes, dict = dc.codes, dc.dict
		t.colMu.RUnlock()
		return codes, dict
	}
	t.colMu.RUnlock()
	t.colMu.Lock()
	if t.dictCols == nil {
		t.dictCols = make(map[int]*dictColumn)
	}
	if _, ok := t.dictCols[ci]; !ok {
		t.dictCols[ci] = &dictColumn{
			codes: make([]int32, 0, len(rows)),
			code:  make(map[Value]int32),
		}
	}
	t.extendDictColLocked(ci, rows)
	dc = t.dictCols[ci]
	codes, dict = dc.codes, dc.dict
	t.colMu.Unlock()
	return codes, dict
}

// Lookup returns the IDs of rows whose col equals v, using (and caching) a
// hash index. On a backed table it is a Bloom/zone-pruned segment scan.
// The returned slice is shared and must not be modified.
func (t *Table) Lookup(col string, v Value) []int {
	if t.backing != nil {
		return t.lookupScan(col, []Value{v}, nil)
	}
	// Open-coded single-value fast path: joins call Lookup once per fact
	// row, so the [][]int the batched form allocates would be real GC
	// pressure here. The bucket is safe to use after the lock is
	// released — an append only ever writes past its published len.
	rows := t.view()
	t.idxMu.RLock()
	if idx := t.indexes[col]; idx != nil && idx.n >= len(rows) {
		b := idx.buckets[v]
		t.idxMu.RUnlock()
		return b
	}
	t.idxMu.RUnlock()
	return t.indexLookup(col, []Value{v})[0]
}

// LookupIn returns the IDs of rows whose col equals any of vals, in
// ascending row order without duplicates. On a backed table the whole
// value set is resolved in one segment scan, skipping segments that the
// column's Bloom filters or zone maps prove cannot contain any of the
// values.
func (t *Table) LookupIn(col string, vals []Value) []int {
	if t.backing != nil {
		return t.lookupScan(col, vals, nil)
	}
	var out []int
	for _, bucket := range t.indexLookup(col, vals) {
		out = append(out, bucket...)
	}
	sort.Ints(out)
	return dedupSorted(out)
}

// LookupInSegments is LookupIn restricted to the given segments of a
// backed table (ascending, deduplicated segment indices) — the hook for
// posting-level skip lists, where an upstream index already knows which
// segments can contain a value. On a resident table segs is ignored.
func (t *Table) LookupInSegments(col string, vals []Value, segs []int32) []int {
	if t.backing != nil {
		return t.lookupScan(col, vals, segs)
	}
	return t.LookupIn(col, vals)
}

// FloatReader returns the segmented float view of a numeric column:
// the backing's pageable reader for a backed table, a zero-copy wrapper
// over the cached dense view otherwise.
func (t *Table) FloatReader(col string) FloatReader {
	if t.backing != nil {
		rd := t.backing.FloatReader(col)
		if rd == nil {
			panic(fmt.Sprintf("relation: %s: no float backing for column %q", t.Name(), col))
		}
		return rd
	}
	return ResidentFloats(t.FloatColumn(col))
}

// DictReader returns the segmented dictionary view of a column.
func (t *Table) DictReader(col string) DictReader {
	if t.backing != nil {
		rd := t.backing.DictReader(col)
		if rd == nil {
			panic(fmt.Sprintf("relation: %s: no dict backing for column %q", t.Name(), col))
		}
		return rd
	}
	codes, dict := t.DictColumn(col)
	return ResidentCodes(codes, dict)
}

// ResidentFloatColumn returns the dense float view of col, or nil when
// the table is backed — the measure constructors use it so vectorized
// fast paths engage only when the column is truly resident.
func (t *Table) ResidentFloatColumn(col string) []float64 {
	if t.backing != nil {
		return nil
	}
	return t.FloatColumn(col)
}

// dictCodeMap returns (building and caching on first use) the value→code
// map of a backed dict column, used to translate lookup values into
// codes. Values outside the dictionary match nothing. An append can grow
// a backed dictionary, so a cached map shorter than the current
// dictionary is rebuilt from the longer one.
func (t *Table) dictCodeMap(ci int, rd DictReader) map[Value]int32 {
	dict := rd.Dict()
	t.colMu.RLock()
	m := t.dictIdx[ci]
	t.colMu.RUnlock()
	if len(m) >= len(dict) {
		return m
	}
	m = make(map[Value]int32, len(dict))
	for c, v := range dict {
		m[v] = int32(c)
	}
	t.colMu.Lock()
	if prior, ok := t.dictIdx[ci]; ok && len(prior) >= len(m) {
		m = prior
	} else {
		t.dictIdx[ci] = m
	}
	t.colMu.Unlock()
	return m
}

// lookupScan resolves a value-set lookup against a backed column by
// scanning its segments in row order, consulting per-segment Bloom
// filters (and, for numeric columns, zone maps over the values' span)
// to skip segments that provably contain none of the wanted values.
// segs, when non-nil, restricts the scan to those segments. Matching is
// kind-exact, mirroring the resident hash index: an Int value never
// matches a Float column and vice versa.
func (t *Table) lookupScan(col string, vals []Value, segs []int32) []int {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	c := t.schema.Columns[ci]
	ss := t.backing.SegmentSize()
	nseg := NumSegments(t.Len(), ss)
	iter := func(body func(si int)) {
		if segs != nil {
			for _, si := range segs {
				if int(si) < nseg {
					body(int(si))
				}
			}
			return
		}
		for si := 0; si < nseg; si++ {
			body(si)
		}
	}

	var out []int
	skippedBloom, skippedZone := 0, 0
	defer func() { t.backing.NoteSkips(skippedBloom, skippedZone) }()

	if c.Kind == KindInt || c.Kind == KindFloat {
		// Numeric column: wanted values become exact float targets.
		// Kind-mismatched values are dropped; NULL matches NaN cells.
		wantNull := false
		targets := make([]float64, 0, len(vals))
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if v.IsNull() {
				wantNull = true
				continue
			}
			if v.Kind() != c.Kind {
				continue
			}
			f := v.AsFloat()
			targets = append(targets, f)
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		if len(targets) == 0 && !wantNull {
			return nil
		}
		rd := t.backing.FloatReader(col)
		iter(func(si int) {
			if !wantNull {
				if ov, has := t.backing.SegmentZoneOverlaps(col, si, lo, hi); has && !ov {
					skippedZone++
					return
				}
				if ok, has := t.segMayContainAny(col, si, vals, c.Kind); has && !ok {
					skippedBloom++
					return
				}
			}
			seg := rd.FloatSegment(si)
			base := si * ss
			for i, f := range seg {
				if math.IsNaN(f) {
					if wantNull {
						out = append(out, base+i)
					}
					continue
				}
				for _, tg := range targets {
					if f == tg {
						out = append(out, base+i)
						break
					}
				}
			}
		})
		return out
	}

	// Dictionary column: translate values to codes once, then scan codes.
	rd := t.backing.DictReader(col)
	codeOf := t.dictCodeMap(ci, rd)
	wantNull := false
	want := make(map[int32]struct{}, len(vals))
	for _, v := range vals {
		if v.IsNull() {
			wantNull = true
			continue
		}
		if code, ok := codeOf[v]; ok {
			want[code] = struct{}{}
		}
	}
	if len(want) == 0 && !wantNull {
		return nil
	}
	iter(func(si int) {
		if !wantNull {
			if ok, has := t.segMayContainAny(col, si, vals, c.Kind); has && !ok {
				skippedBloom++
				return
			}
		}
		seg := rd.CodeSegment(si)
		base := si * ss
		for i, code := range seg {
			if code < 0 {
				if wantNull {
					out = append(out, base+i)
				}
				continue
			}
			if _, hit := want[code]; hit {
				out = append(out, base+i)
			}
		}
	})
	return out
}

// segMayContainAny folds Bloom evidence over a value set: the segment
// may be skipped only when the filter proves every wanted value absent.
// Kind-mismatched and out-of-dictionary values are still probed — the
// Bloom filter is keyed on canonical value encodings, so they simply
// miss.
func (t *Table) segMayContainAny(col string, si int, vals []Value, kind Kind) (maybe, has bool) {
	has = false
	for _, v := range vals {
		if v.IsNull() || ((kind == KindInt || kind == KindFloat) && v.Kind() != kind) {
			continue
		}
		m, ok := t.backing.SegmentMayContain(col, si, v)
		if !ok {
			return true, false
		}
		has = true
		if m {
			return true, true
		}
	}
	return false, has
}

// Scan calls fn for every row ID in insertion order, stopping early if fn
// returns false. On a backed table each row is assembled from its column
// segments — use the readers directly for anything hot.
func (t *Table) Scan(fn func(id int, row []Value) bool) {
	if t.backing != nil {
		n := t.Len()
		for id := 0; id < n; id++ {
			if !fn(id, t.Row(id)) {
				return
			}
		}
		return
	}
	for id, row := range t.view() {
		if !fn(id, row) {
			return
		}
	}
}

// Filter returns the IDs of rows satisfying pred, in insertion order.
func (t *Table) Filter(pred func(row []Value) bool) []int {
	var out []int
	if t.backing != nil {
		n := t.Len()
		for id := 0; id < n; id++ {
			if pred(t.Row(id)) {
				out = append(out, id)
			}
		}
		return out
	}
	for id, row := range t.view() {
		if pred(row) {
			out = append(out, id)
		}
	}
	return out
}

// DistinctValues returns the distinct non-NULL values of col in first-seen
// order.
func (t *Table) DistinctValues(col string) []Value {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	if t.backing != nil {
		c := t.schema.Columns[ci]
		if c.Kind != KindInt && c.Kind != KindFloat {
			// A dict column's dictionary is exactly its distinct non-NULL
			// values in first-seen order.
			dict := t.backing.DictReader(c.Name).Dict()
			out := make([]Value, len(dict))
			copy(out, dict)
			return out
		}
		rd := t.backing.FloatReader(c.Name)
		seen := make(map[float64]struct{})
		var out []Value
		nseg := NumSegments(t.Len(), t.backing.SegmentSize())
		for si := 0; si < nseg; si++ {
			for _, f := range rd.FloatSegment(si) {
				if math.IsNaN(f) {
					continue
				}
				if _, ok := seen[f]; ok {
					continue
				}
				seen[f] = struct{}{}
				if c.Kind == KindInt {
					out = append(out, Int(int64(f)))
				} else {
					out = append(out, Float(f))
				}
			}
		}
		return out
	}
	seen := make(map[Value]struct{})
	var out []Value
	for _, row := range t.view() {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// dedupSorted removes duplicates from a sorted int slice in place.
func dedupSorted(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}
