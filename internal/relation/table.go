package relation

import (
	"fmt"
	"sort"
)

// Table is an append-only in-memory relation. Rows are identified by dense
// integer row IDs (their insertion position), which the rest of the system
// uses as compact fact/dimension handles.
//
// Hash indexes are built lazily per column on first lookup and maintained
// on subsequent appends. A Table is not safe for concurrent mutation;
// concurrent reads are safe once loading has finished and Freeze was
// called (Freeze pre-builds the key indexes so readers never mutate).
type Table struct {
	schema  *Schema
	rows    [][]Value
	indexes map[string]map[Value][]int
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{
		schema:  schema,
		indexes: make(map[string]map[Value][]int),
	}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Append validates the row against the schema and appends it, returning
// the new row ID. Int values are widened into float columns.
func (t *Table) Append(row []Value) (int, error) {
	if len(row) != len(t.schema.Columns) {
		return 0, fmt.Errorf("relation: %s: row arity %d, want %d", t.Name(), len(row), len(t.schema.Columns))
	}
	stored := make([]Value, len(row))
	for i, v := range row {
		c := t.schema.Columns[i]
		switch {
		case v.IsNull():
			stored[i] = v
		case v.Kind() == c.Kind:
			stored[i] = v
		case c.Kind == KindFloat && v.Kind() == KindInt:
			stored[i] = Float(float64(v.IntVal()))
		default:
			return 0, fmt.Errorf("relation: %s.%s: cannot store %s value %#v in %s column",
				t.Name(), c.Name, v.Kind(), v, c.Kind)
		}
	}
	id := len(t.rows)
	t.rows = append(t.rows, stored)
	for col, idx := range t.indexes {
		ci := t.schema.ColumnIndex(col)
		v := stored[ci]
		idx[v] = append(idx[v], id)
	}
	return id, nil
}

// MustAppend is Append that panics on error; for statically known rows.
func (t *Table) MustAppend(row ...Value) int {
	id, err := t.Append(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Row returns the stored row for id. The returned slice must not be
// modified.
func (t *Table) Row(id int) []Value {
	return t.rows[id]
}

// Value returns the value at (row id, column name). It panics if the
// column does not exist.
func (t *Table) Value(id int, col string) Value {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	return t.rows[id][ci]
}

// index returns (building if needed) the hash index for col.
func (t *Table) index(col string) map[Value][]int {
	if idx, ok := t.indexes[col]; ok {
		return idx
	}
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	idx := make(map[Value][]int)
	for id, row := range t.rows {
		idx[row[ci]] = append(idx[row[ci]], id)
	}
	t.indexes[col] = idx
	return idx
}

// Freeze pre-builds hash indexes on the primary key and every foreign-key
// column so that subsequent concurrent lookups never mutate the table.
func (t *Table) Freeze() {
	if t.schema.Key != "" {
		t.index(t.schema.Key)
	}
	for _, fk := range t.schema.ForeignKeys {
		t.index(fk.Column)
	}
}

// Lookup returns the IDs of rows whose col equals v, using (and caching) a
// hash index. The returned slice is shared and must not be modified.
func (t *Table) Lookup(col string, v Value) []int {
	return t.index(col)[v]
}

// LookupIn returns the IDs of rows whose col equals any of vals, in
// ascending row order without duplicates.
func (t *Table) LookupIn(col string, vals []Value) []int {
	idx := t.index(col)
	var out []int
	for _, v := range vals {
		out = append(out, idx[v]...)
	}
	sort.Ints(out)
	return dedupSorted(out)
}

// Scan calls fn for every row ID in insertion order, stopping early if fn
// returns false.
func (t *Table) Scan(fn func(id int, row []Value) bool) {
	for id, row := range t.rows {
		if !fn(id, row) {
			return
		}
	}
}

// Filter returns the IDs of rows satisfying pred, in insertion order.
func (t *Table) Filter(pred func(row []Value) bool) []int {
	var out []int
	for id, row := range t.rows {
		if pred(row) {
			out = append(out, id)
		}
	}
	return out
}

// DistinctValues returns the distinct non-NULL values of col in first-seen
// order.
func (t *Table) DistinctValues(col string) []Value {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	seen := make(map[Value]struct{})
	var out []Value
	for _, row := range t.rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// dedupSorted removes duplicates from a sorted int slice in place.
func dedupSorted(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}
