package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Table is an append-only in-memory relation. Rows are identified by dense
// integer row IDs (their insertion position), which the rest of the system
// uses as compact fact/dimension handles.
//
// Hash indexes are built lazily per column on first lookup and maintained
// on subsequent appends. A Table is not safe for concurrent mutation,
// but concurrent reads are safe once loading has finished: the lazy
// index and column-view builds are guarded by locks, so a cold column
// may be materialized mid-read (Freeze additionally pre-builds the key
// indexes and numeric views so the common lookups never take the
// build path at all).
type Table struct {
	schema  *Schema
	rows    [][]Value
	idxMu   sync.RWMutex
	indexes map[string]map[Value][]int

	// Columnar views, built on demand (numeric ones also at Freeze) and
	// dropped on Append. Unlike the hash indexes these are guarded by a
	// lock, so a cold column may be materialized safely mid-read by the
	// executor's concurrent kernels.
	colMu     sync.RWMutex
	floatCols map[int][]float64
	dictCols  map[int]*dictColumn
}

// dictColumn is a dictionary-encoded column view: codes[row] indexes
// dict, or is -1 where the stored value is NULL. The dictionary holds
// distinct values in first-seen row order.
type dictColumn struct {
	codes []int32
	dict  []Value
}

// NewTable creates an empty table with the given schema.
func NewTable(schema *Schema) *Table {
	return &Table{
		schema:  schema,
		indexes: make(map[string]map[Value][]int),
	}
}

// Schema returns the table's schema.
func (t *Table) Schema() *Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Append validates the row against the schema and appends it, returning
// the new row ID. Int values are widened into float columns.
func (t *Table) Append(row []Value) (int, error) {
	if len(row) != len(t.schema.Columns) {
		return 0, fmt.Errorf("relation: %s: row arity %d, want %d", t.Name(), len(row), len(t.schema.Columns))
	}
	stored := make([]Value, len(row))
	for i, v := range row {
		c := t.schema.Columns[i]
		switch {
		case v.IsNull():
			stored[i] = v
		case v.Kind() == c.Kind:
			stored[i] = v
		case c.Kind == KindFloat && v.Kind() == KindInt:
			stored[i] = Float(float64(v.IntVal()))
		default:
			return 0, fmt.Errorf("relation: %s.%s: cannot store %s value %#v in %s column",
				t.Name(), c.Name, v.Kind(), v, c.Kind)
		}
	}
	id := len(t.rows)
	t.rows = append(t.rows, stored)
	t.idxMu.Lock()
	for col, idx := range t.indexes {
		ci := t.schema.ColumnIndex(col)
		v := stored[ci]
		idx[v] = append(idx[v], id)
	}
	t.idxMu.Unlock()
	t.invalidateColumns()
	return id, nil
}

// invalidateColumns drops the columnar views; they no longer cover the
// table after an append.
func (t *Table) invalidateColumns() {
	t.colMu.Lock()
	t.floatCols = nil
	t.dictCols = nil
	t.colMu.Unlock()
}

// MustAppend is Append that panics on error; for statically known rows.
func (t *Table) MustAppend(row ...Value) int {
	id, err := t.Append(row)
	if err != nil {
		panic(err)
	}
	return id
}

// Row returns the stored row for id. The returned slice must not be
// modified.
func (t *Table) Row(id int) []Value {
	return t.rows[id]
}

// Value returns the value at (row id, column name). It panics if the
// column does not exist.
func (t *Table) Value(id int, col string) Value {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	return t.rows[id][ci]
}

// index returns (building if needed) the hash index for col. Like the
// columnar views, a cold build is safe mid-read: concurrent callers may
// both build, but only one result is kept.
func (t *Table) index(col string) map[Value][]int {
	t.idxMu.RLock()
	idx, ok := t.indexes[col]
	t.idxMu.RUnlock()
	if ok {
		return idx
	}
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	idx = make(map[Value][]int)
	for id, row := range t.rows {
		idx[row[ci]] = append(idx[row[ci]], id)
	}
	t.idxMu.Lock()
	if prior, ok := t.indexes[col]; ok {
		idx = prior // lost the build race; keep the published index
	} else {
		t.indexes[col] = idx
	}
	t.idxMu.Unlock()
	return idx
}

// Freeze pre-builds hash indexes on the primary key and every foreign-key
// column so that subsequent concurrent lookups never mutate the table,
// and materializes the float view of every numeric column for the
// columnar kernels. Dictionary views stay lazy (their own lock makes a
// cold build safe mid-read) since most string columns are never grouped
// by.
func (t *Table) Freeze() {
	if t.schema.Key != "" {
		t.index(t.schema.Key)
	}
	for _, fk := range t.schema.ForeignKeys {
		t.index(fk.Column)
	}
	for _, c := range t.schema.Columns {
		if c.Kind == KindInt || c.Kind == KindFloat {
			t.FloatColumn(c.Name)
		}
	}
}

// FloatColumn returns the dense float64 view of col: one entry per row,
// with NULL (and any non-numeric value) represented as NaN. The view is
// built once and cached; the returned slice is shared and must not be
// modified.
func (t *Table) FloatColumn(col string) []float64 {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	t.colMu.RLock()
	c := t.floatCols[ci]
	t.colMu.RUnlock()
	if c != nil {
		return c
	}
	c = make([]float64, len(t.rows))
	for i, row := range t.rows {
		c[i] = row[ci].FloatOrNaN()
	}
	t.colMu.Lock()
	if t.floatCols == nil {
		t.floatCols = make(map[int][]float64)
	}
	t.floatCols[ci] = c
	t.colMu.Unlock()
	return c
}

// DictColumn returns the dictionary-encoded view of col: codes[row]
// indexes dict (distinct non-NULL values in first-seen order), or is -1
// where the value is NULL. The view is built once and cached; the
// returned slices are shared and must not be modified.
func (t *Table) DictColumn(col string) (codes []int32, dict []Value) {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	t.colMu.RLock()
	dc := t.dictCols[ci]
	t.colMu.RUnlock()
	if dc != nil {
		return dc.codes, dc.dict
	}
	dc = &dictColumn{codes: make([]int32, len(t.rows))}
	code := make(map[Value]int32)
	for i, row := range t.rows {
		v := row[ci]
		if v.IsNull() {
			dc.codes[i] = -1
			continue
		}
		c, ok := code[v]
		if !ok {
			c = int32(len(dc.dict))
			code[v] = c
			dc.dict = append(dc.dict, v)
		}
		dc.codes[i] = c
	}
	t.colMu.Lock()
	if t.dictCols == nil {
		t.dictCols = make(map[int]*dictColumn)
	}
	t.dictCols[ci] = dc
	t.colMu.Unlock()
	return dc.codes, dc.dict
}

// Lookup returns the IDs of rows whose col equals v, using (and caching) a
// hash index. The returned slice is shared and must not be modified.
func (t *Table) Lookup(col string, v Value) []int {
	return t.index(col)[v]
}

// LookupIn returns the IDs of rows whose col equals any of vals, in
// ascending row order without duplicates.
func (t *Table) LookupIn(col string, vals []Value) []int {
	idx := t.index(col)
	var out []int
	for _, v := range vals {
		out = append(out, idx[v]...)
	}
	sort.Ints(out)
	return dedupSorted(out)
}

// Scan calls fn for every row ID in insertion order, stopping early if fn
// returns false.
func (t *Table) Scan(fn func(id int, row []Value) bool) {
	for id, row := range t.rows {
		if !fn(id, row) {
			return
		}
	}
}

// Filter returns the IDs of rows satisfying pred, in insertion order.
func (t *Table) Filter(pred func(row []Value) bool) []int {
	var out []int
	for id, row := range t.rows {
		if pred(row) {
			out = append(out, id)
		}
	}
	return out
}

// DistinctValues returns the distinct non-NULL values of col in first-seen
// order.
func (t *Table) DistinctValues(col string) []Value {
	ci := t.schema.ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("relation: %s has no column %q", t.Name(), col))
	}
	seen := make(map[Value]struct{})
	var out []Value
	for _, row := range t.rows {
		v := row[ci]
		if v.IsNull() {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// dedupSorted removes duplicates from a sorted int slice in place.
func dedupSorted(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	w := 1
	for i := 1; i < len(xs); i++ {
		if xs[i] != xs[w-1] {
			xs[w] = xs[i]
			w++
		}
	}
	return xs[:w]
}
