package relation

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		text string
	}{
		{Null(), KindNull, ""},
		{String("abc"), KindString, "abc"},
		{Int(42), KindInt, "42"},
		{Int(-7), KindInt, "-7"},
		{Float(2.5), KindFloat, "2.5"},
		{Bool(true), KindBool, "true"},
		{Bool(false), KindBool, "false"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%#v: kind %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if got := c.v.Text(); got != c.text {
			t.Errorf("%#v: Text %q, want %q", c.v, got, c.text)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if String("x").Str() != "x" {
		t.Error("Str round trip failed")
	}
	if Int(9).IntVal() != 9 {
		t.Error("IntVal round trip failed")
	}
	if Float(1.5).FloatVal() != 1.5 {
		t.Error("FloatVal round trip failed")
	}
	if !Bool(true).BoolVal() {
		t.Error("BoolVal round trip failed")
	}
	if !Null().IsNull() || String("").IsNull() {
		t.Error("IsNull misreports")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("Str on int", func() { Int(1).Str() })
	mustPanic("IntVal on string", func() { String("x").IntVal() })
	mustPanic("FloatVal on bool", func() { Bool(true).FloatVal() })
	mustPanic("BoolVal on null", func() { Null().BoolVal() })
	mustPanic("AsFloat on string", func() { String("x").AsFloat() })
}

func TestValueAsFloat(t *testing.T) {
	if Int(3).AsFloat() != 3.0 {
		t.Error("int AsFloat")
	}
	if Float(0.25).AsFloat() != 0.25 {
		t.Error("float AsFloat")
	}
	if !math.IsNaN(Null().AsFloat()) {
		t.Error("null AsFloat should be NaN")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(3).Equal(Float(3)) || !Float(3).Equal(Int(3)) {
		t.Error("3 == 3.0 expected")
	}
	if Int(3).Equal(Float(3.5)) {
		t.Error("3 != 3.5 expected")
	}
	if String("3").Equal(Int(3)) {
		t.Error("string/int must not compare equal")
	}
	if !Null().Equal(Null()) {
		t.Error("NULL equals NULL (value identity, not SQL ternary)")
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{Null(), Int(-5), Float(-1.5), Int(0), Float(2.5), Int(10)}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%#v, %#v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
	if String("a").Compare(String("b")) != -1 || String("b").Compare(String("a")) != 1 {
		t.Error("string ordering")
	}
	if Bool(false).Compare(Bool(true)) != -1 {
		t.Error("bool ordering")
	}
}

func TestValueCompareIsTotalOrderOverStrings(t *testing.T) {
	// Property: sorting by Compare yields the same order as sort.Strings.
	f := func(ss []string) bool {
		vals := make([]Value, len(ss))
		for i, s := range ss {
			vals[i] = String(s)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
		sorted := append([]string(nil), ss...)
		sort.Strings(sorted)
		for i := range vals {
			if vals[i].Str() != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int(a).Compare(Int(b)) == -Int(b).Compare(Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueAsMapKey(t *testing.T) {
	m := map[Value]int{}
	m[String("x")] = 1
	m[Int(1)] = 2
	m[Float(1)] = 3
	m[Null()] = 4
	if len(m) != 4 {
		t.Fatalf("distinct keys collapsed: %d entries", len(m))
	}
	if m[String("x")] != 1 || m[Int(1)] != 2 || m[Float(1)] != 3 || m[Null()] != 4 {
		t.Error("map lookup by value failed")
	}
}

func TestKindString(t *testing.T) {
	if KindString.String() != "string" || KindNull.String() != "null" ||
		KindInt.String() != "int" || KindFloat.String() != "float" || KindBool.String() != "bool" {
		t.Error("Kind.String names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should render something")
	}
}
