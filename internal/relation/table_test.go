package relation

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func citySchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("City",
		[]Column{
			{Name: "CityKey", Kind: KindInt},
			{Name: "Name", Kind: KindString, FullText: true},
			{Name: "Population", Kind: KindFloat},
		},
		"CityKey", nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cols := []Column{{Name: "A", Kind: KindInt}}
	cases := []struct {
		name string
		fn   func() (*Schema, error)
	}{
		{"empty name", func() (*Schema, error) { return NewSchema("", cols, "", nil) }},
		{"no columns", func() (*Schema, error) { return NewSchema("T", nil, "", nil) }},
		{"dup column", func() (*Schema, error) {
			return NewSchema("T", []Column{{Name: "A", Kind: KindInt}, {Name: "A", Kind: KindString}}, "", nil)
		}},
		{"null-kind column", func() (*Schema, error) {
			return NewSchema("T", []Column{{Name: "A", Kind: KindNull}}, "", nil)
		}},
		{"missing key", func() (*Schema, error) { return NewSchema("T", cols, "B", nil) }},
		{"missing fk column", func() (*Schema, error) {
			return NewSchema("T", cols, "", []ForeignKey{{Column: "B", RefTable: "X", RefColumn: "Y"}})
		}},
		{"empty fk target", func() (*Schema, error) {
			return NewSchema("T", cols, "", []ForeignKey{{Column: "A"}})
		}},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := citySchema(t)
	if s.ColumnIndex("Name") != 1 || s.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if !s.HasColumn("Population") || s.HasColumn("Pop") {
		t.Error("HasColumn wrong")
	}
	c, ok := s.Column("Name")
	if !ok || !c.FullText {
		t.Error("Column lookup wrong")
	}
	if got := s.FullTextColumns(); !reflect.DeepEqual(got, []string{"Name"}) {
		t.Errorf("FullTextColumns = %v", got)
	}
	if s.String() != "City(CityKey:int, Name:string, Population:float)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTableAppendAndRead(t *testing.T) {
	tab := NewTable(citySchema(t))
	id0 := tab.MustAppend(Int(1), String("Columbus"), Float(900000))
	id1 := tab.MustAppend(Int(2), String("San Jose"), Int(1000000)) // int widened to float
	if id0 != 0 || id1 != 1 || tab.Len() != 2 {
		t.Fatalf("ids %d,%d len %d", id0, id1, tab.Len())
	}
	if tab.Value(1, "Population").Kind() != KindFloat {
		t.Error("int not widened into float column")
	}
	if tab.Value(0, "Name").Str() != "Columbus" {
		t.Error("read back failed")
	}
}

func TestTableAppendErrors(t *testing.T) {
	tab := NewTable(citySchema(t))
	if _, err := tab.Append([]Value{Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := tab.Append([]Value{String("x"), String("y"), Float(1)}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := tab.Append([]Value{Null(), Null(), Null()}); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
}

func TestTableLookupAndIndexMaintenance(t *testing.T) {
	tab := NewTable(citySchema(t))
	tab.MustAppend(Int(1), String("Columbus"), Float(1))
	// Force index construction, then append more: index must stay fresh.
	if got := tab.Lookup("Name", String("Columbus")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Lookup = %v", got)
	}
	tab.MustAppend(Int(2), String("Columbus"), Float(2))
	tab.MustAppend(Int(3), String("Seattle"), Float(3))
	if got := tab.Lookup("Name", String("Columbus")); len(got) != 2 {
		t.Errorf("index not maintained on append: %v", got)
	}
	got := tab.LookupIn("Name", []Value{String("Seattle"), String("Columbus"), String("Columbus")})
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("LookupIn = %v", got)
	}
	if got := tab.Lookup("Name", String("Nowhere")); got != nil {
		t.Errorf("missing key should return nil, got %v", got)
	}
}

func TestTableScanFilterDistinct(t *testing.T) {
	tab := NewTable(citySchema(t))
	tab.MustAppend(Int(1), String("A"), Float(10))
	tab.MustAppend(Int(2), String("B"), Float(20))
	tab.MustAppend(Int(3), String("A"), Float(30))
	tab.MustAppend(Int(4), Null(), Float(40))

	var seen int
	tab.Scan(func(id int, row []Value) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Errorf("Scan early stop: %d", seen)
	}

	ids := tab.Filter(func(row []Value) bool { return row[2].AsFloat() > 15 })
	if !reflect.DeepEqual(ids, []int{1, 2, 3}) {
		t.Errorf("Filter = %v", ids)
	}

	dv := tab.DistinctValues("Name")
	if !reflect.DeepEqual(dv, []Value{String("A"), String("B")}) {
		t.Errorf("DistinctValues = %#v (NULL must be skipped, order first-seen)", dv)
	}
}

func TestTablePanicsOnUnknownColumn(t *testing.T) {
	tab := NewTable(citySchema(t))
	tab.MustAppend(Int(1), String("A"), Float(1))
	for name, fn := range map[string]func(){
		"Value":          func() { tab.Value(0, "nope") },
		"Lookup":         func() { tab.Lookup("nope", Int(1)) },
		"DistinctValues": func() { tab.DistinctValues("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on unknown column", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Lookup agrees with a full scan for random data, regardless of
// whether the index was built before or after the appends.
func TestTableLookupMatchesScanProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(MustSchema("T", []Column{
			{Name: "K", Kind: KindInt},
		}, "", nil))
		if n%2 == 0 {
			tab.Lookup("K", Int(0)) // build index early
		}
		for i := 0; i < int(n); i++ {
			tab.MustAppend(Int(int64(rng.Intn(8))))
		}
		for k := int64(0); k < 8; k++ {
			want := tab.Filter(func(row []Value) bool { return row[0].Equal(Int(k)) })
			got := tab.Lookup("K", Int(k))
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDedupSorted(t *testing.T) {
	cases := []struct{ in, want []int }{
		{nil, nil},
		{[]int{1}, []int{1}},
		{[]int{1, 1, 1}, []int{1}},
		{[]int{1, 2, 2, 3, 3, 3}, []int{1, 2, 3}},
	}
	for _, c := range cases {
		if got := dedupSorted(append([]int(nil), c.in...)); !reflect.DeepEqual(got, c.want) {
			t.Errorf("dedupSorted(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDatabaseValidate(t *testing.T) {
	db := NewDatabase("test")
	city := db.MustCreateTable(citySchema(t))
	store := db.MustCreateTable(MustSchema("Store", []Column{
		{Name: "StoreKey", Kind: KindInt},
		{Name: "CityKey", Kind: KindInt},
	}, "StoreKey", []ForeignKey{{Column: "CityKey", RefTable: "City", RefColumn: "CityKey"}}))

	city.MustAppend(Int(1), String("Columbus"), Float(1))
	store.MustAppend(Int(10), Int(1))
	if err := db.Validate(true); err != nil {
		t.Fatalf("valid db rejected: %v", err)
	}

	store.MustAppend(Int(11), Int(999)) // dangling FK
	if err := db.Validate(false); err != nil {
		t.Errorf("non-strict should pass: %v", err)
	}
	if err := db.Validate(true); err == nil {
		t.Error("strict validation missed dangling foreign key")
	}

	store.MustAppend(Int(12), Null()) // NULL FK is fine
}

func TestDatabaseValidateMissingTargets(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateTable(MustSchema("A", []Column{
		{Name: "X", Kind: KindInt},
	}, "", []ForeignKey{{Column: "X", RefTable: "Missing", RefColumn: "Y"}}))
	if err := db.Validate(false); err == nil {
		t.Error("missing ref table accepted")
	}

	db2 := NewDatabase("test2")
	db2.MustCreateTable(MustSchema("B", []Column{{Name: "Y", Kind: KindInt}}, "", nil))
	db2.MustCreateTable(MustSchema("A", []Column{
		{Name: "X", Kind: KindInt},
	}, "", []ForeignKey{{Column: "X", RefTable: "B", RefColumn: "Z"}}))
	if err := db2.Validate(false); err == nil {
		t.Error("missing ref column accepted")
	}
}

func TestDatabaseTablesAndStats(t *testing.T) {
	db := NewDatabase("d")
	a := db.MustCreateTable(MustSchema("A", []Column{{Name: "X", Kind: KindInt}}, "", nil))
	db.MustCreateTable(MustSchema("B", []Column{{Name: "Y", Kind: KindString, FullText: true}}, "", nil))
	a.MustAppend(Int(1))
	a.MustAppend(Int(2))

	if db.Table("A") != a || db.Table("missing") != nil {
		t.Error("Table lookup wrong")
	}
	if !reflect.DeepEqual(db.TableNames(), []string{"A", "B"}) {
		t.Error("TableNames order wrong")
	}
	if err := db.AddTable(NewTable(MustSchema("A", []Column{{Name: "X", Kind: KindInt}}, "", nil))); err == nil {
		t.Error("duplicate table accepted")
	}
	st := db.Stats()
	if st.Tables != 2 || st.Rows != 2 || st.FullTextColumns != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestFreezeAllowsConcurrentReads(t *testing.T) {
	db := NewDatabase("d")
	tab := db.MustCreateTable(MustSchema("T", []Column{
		{Name: "K", Kind: KindInt},
	}, "K", nil))
	for i := 0; i < 100; i++ {
		tab.MustAppend(Int(int64(i % 10)))
	}
	db.Freeze()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := int64(0); i < 10; i++ {
				if len(tab.Lookup("K", Int(i))) != 10 {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent lookup returned wrong result")
		}
	}
}

func columnarTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable(citySchema(t))
	tbl.MustAppend(Int(1), String("Columbus"), Float(900000))
	tbl.MustAppend(Int(2), String("Seattle"), Null())
	tbl.MustAppend(Int(3), String("Columbus"), Float(120000))
	tbl.MustAppend(Int(4), Null(), Float(42)) // ints widen into float columns too
	return tbl
}

func TestFloatColumn(t *testing.T) {
	tbl := columnarTable(t)
	pop := tbl.FloatColumn("Population")
	if len(pop) != 4 {
		t.Fatalf("len = %d", len(pop))
	}
	if pop[0] != 900000 || pop[2] != 120000 || pop[3] != 42 {
		t.Errorf("pop = %v", pop)
	}
	if !math.IsNaN(pop[1]) {
		t.Errorf("NULL should read as NaN, got %g", pop[1])
	}
	// String columns yield all-NaN rather than panicking: the columnar
	// kernels probe attribute columns whose kind they don't know.
	name := tbl.FloatColumn("Name")
	for i, v := range name {
		if !math.IsNaN(v) {
			t.Errorf("string column row %d = %g", i, v)
		}
	}
	// The view is cached...
	if &pop[0] != &tbl.FloatColumn("Population")[0] {
		t.Error("FloatColumn not cached")
	}
	// ...and invalidated by Append.
	tbl.MustAppend(Int(5), String("Austin"), Float(7))
	pop2 := tbl.FloatColumn("Population")
	if len(pop2) != 5 || pop2[4] != 7 {
		t.Errorf("post-append pop = %v", pop2)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown column should panic")
		}
	}()
	tbl.FloatColumn("Nope")
}

func TestDictColumn(t *testing.T) {
	tbl := columnarTable(t)
	codes, dict := tbl.DictColumn("Name")
	if len(codes) != 4 {
		t.Fatalf("codes = %v", codes)
	}
	// First-seen order: Columbus=0, Seattle=1; NULL is -1.
	want := []int32{0, 1, 0, -1}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if len(dict) != 2 || dict[0].Str() != "Columbus" || dict[1].Str() != "Seattle" {
		t.Fatalf("dict = %v", dict)
	}
	// Decoding must reproduce the stored column exactly.
	for i := 0; i < tbl.Len(); i++ {
		v := tbl.Value(i, "Name")
		if codes[i] < 0 {
			if !v.IsNull() {
				t.Errorf("row %d: code -1 for non-NULL %v", i, v)
			}
			continue
		}
		if dict[codes[i]] != v {
			t.Errorf("row %d decodes to %v, want %v", i, dict[codes[i]], v)
		}
	}
	// Cached, then invalidated by Append.
	c2, _ := tbl.DictColumn("Name")
	if &codes[0] != &c2[0] {
		t.Error("DictColumn not cached")
	}
	tbl.MustAppend(Int(5), String("Austin"), Float(7))
	c3, d3 := tbl.DictColumn("Name")
	if len(c3) != 5 || c3[4] != 2 || len(d3) != 3 {
		t.Errorf("post-append codes = %v dict = %v", c3, d3)
	}
}

// Freeze pre-builds numeric float views; concurrent readers of frozen
// tables then share them without taking the build path.
func TestFreezeBuildsFloatColumns(t *testing.T) {
	tbl := columnarTable(t)
	tbl.Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pop := tbl.FloatColumn("Population")
			if pop[0] != 900000 {
				t.Error("bad column read")
			}
			codes, _ := tbl.DictColumn("Name")
			if codes[0] != 0 {
				t.Error("bad dict read")
			}
		}()
	}
	wg.Wait()
}
