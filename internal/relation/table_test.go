package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func citySchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("City",
		[]Column{
			{Name: "CityKey", Kind: KindInt},
			{Name: "Name", Kind: KindString, FullText: true},
			{Name: "Population", Kind: KindFloat},
		},
		"CityKey", nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaValidation(t *testing.T) {
	cols := []Column{{Name: "A", Kind: KindInt}}
	cases := []struct {
		name string
		fn   func() (*Schema, error)
	}{
		{"empty name", func() (*Schema, error) { return NewSchema("", cols, "", nil) }},
		{"no columns", func() (*Schema, error) { return NewSchema("T", nil, "", nil) }},
		{"dup column", func() (*Schema, error) {
			return NewSchema("T", []Column{{Name: "A", Kind: KindInt}, {Name: "A", Kind: KindString}}, "", nil)
		}},
		{"null-kind column", func() (*Schema, error) {
			return NewSchema("T", []Column{{Name: "A", Kind: KindNull}}, "", nil)
		}},
		{"missing key", func() (*Schema, error) { return NewSchema("T", cols, "B", nil) }},
		{"missing fk column", func() (*Schema, error) {
			return NewSchema("T", cols, "", []ForeignKey{{Column: "B", RefTable: "X", RefColumn: "Y"}})
		}},
		{"empty fk target", func() (*Schema, error) {
			return NewSchema("T", cols, "", []ForeignKey{{Column: "A"}})
		}},
	}
	for _, c := range cases {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaLookups(t *testing.T) {
	s := citySchema(t)
	if s.ColumnIndex("Name") != 1 || s.ColumnIndex("missing") != -1 {
		t.Error("ColumnIndex wrong")
	}
	if !s.HasColumn("Population") || s.HasColumn("Pop") {
		t.Error("HasColumn wrong")
	}
	c, ok := s.Column("Name")
	if !ok || !c.FullText {
		t.Error("Column lookup wrong")
	}
	if got := s.FullTextColumns(); !reflect.DeepEqual(got, []string{"Name"}) {
		t.Errorf("FullTextColumns = %v", got)
	}
	if s.String() != "City(CityKey:int, Name:string, Population:float)" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestTableAppendAndRead(t *testing.T) {
	tab := NewTable(citySchema(t))
	id0 := tab.MustAppend(Int(1), String("Columbus"), Float(900000))
	id1 := tab.MustAppend(Int(2), String("San Jose"), Int(1000000)) // int widened to float
	if id0 != 0 || id1 != 1 || tab.Len() != 2 {
		t.Fatalf("ids %d,%d len %d", id0, id1, tab.Len())
	}
	if tab.Value(1, "Population").Kind() != KindFloat {
		t.Error("int not widened into float column")
	}
	if tab.Value(0, "Name").Str() != "Columbus" {
		t.Error("read back failed")
	}
}

func TestTableAppendErrors(t *testing.T) {
	tab := NewTable(citySchema(t))
	if _, err := tab.Append([]Value{Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := tab.Append([]Value{String("x"), String("y"), Float(1)}); err == nil {
		t.Error("kind mismatch accepted")
	}
	if _, err := tab.Append([]Value{Null(), Null(), Null()}); err != nil {
		t.Errorf("NULLs rejected: %v", err)
	}
}

func TestTableLookupAndIndexMaintenance(t *testing.T) {
	tab := NewTable(citySchema(t))
	tab.MustAppend(Int(1), String("Columbus"), Float(1))
	// Force index construction, then append more: index must stay fresh.
	if got := tab.Lookup("Name", String("Columbus")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Lookup = %v", got)
	}
	tab.MustAppend(Int(2), String("Columbus"), Float(2))
	tab.MustAppend(Int(3), String("Seattle"), Float(3))
	if got := tab.Lookup("Name", String("Columbus")); len(got) != 2 {
		t.Errorf("index not maintained on append: %v", got)
	}
	got := tab.LookupIn("Name", []Value{String("Seattle"), String("Columbus"), String("Columbus")})
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("LookupIn = %v", got)
	}
	if got := tab.Lookup("Name", String("Nowhere")); got != nil {
		t.Errorf("missing key should return nil, got %v", got)
	}
}

func TestTableScanFilterDistinct(t *testing.T) {
	tab := NewTable(citySchema(t))
	tab.MustAppend(Int(1), String("A"), Float(10))
	tab.MustAppend(Int(2), String("B"), Float(20))
	tab.MustAppend(Int(3), String("A"), Float(30))
	tab.MustAppend(Int(4), Null(), Float(40))

	var seen int
	tab.Scan(func(id int, row []Value) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Errorf("Scan early stop: %d", seen)
	}

	ids := tab.Filter(func(row []Value) bool { return row[2].AsFloat() > 15 })
	if !reflect.DeepEqual(ids, []int{1, 2, 3}) {
		t.Errorf("Filter = %v", ids)
	}

	dv := tab.DistinctValues("Name")
	if !reflect.DeepEqual(dv, []Value{String("A"), String("B")}) {
		t.Errorf("DistinctValues = %#v (NULL must be skipped, order first-seen)", dv)
	}
}

func TestTablePanicsOnUnknownColumn(t *testing.T) {
	tab := NewTable(citySchema(t))
	tab.MustAppend(Int(1), String("A"), Float(1))
	for name, fn := range map[string]func(){
		"Value":          func() { tab.Value(0, "nope") },
		"Lookup":         func() { tab.Lookup("nope", Int(1)) },
		"DistinctValues": func() { tab.DistinctValues("nope") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on unknown column", name)
				}
			}()
			fn()
		}()
	}
}

// Property: Lookup agrees with a full scan for random data, regardless of
// whether the index was built before or after the appends.
func TestTableLookupMatchesScanProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(MustSchema("T", []Column{
			{Name: "K", Kind: KindInt},
		}, "", nil))
		if n%2 == 0 {
			tab.Lookup("K", Int(0)) // build index early
		}
		for i := 0; i < int(n); i++ {
			tab.MustAppend(Int(int64(rng.Intn(8))))
		}
		for k := int64(0); k < 8; k++ {
			want := tab.Filter(func(row []Value) bool { return row[0].Equal(Int(k)) })
			got := tab.Lookup("K", Int(k))
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDedupSorted(t *testing.T) {
	cases := []struct{ in, want []int }{
		{nil, nil},
		{[]int{1}, []int{1}},
		{[]int{1, 1, 1}, []int{1}},
		{[]int{1, 2, 2, 3, 3, 3}, []int{1, 2, 3}},
	}
	for _, c := range cases {
		if got := dedupSorted(append([]int(nil), c.in...)); !reflect.DeepEqual(got, c.want) {
			t.Errorf("dedupSorted(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDatabaseValidate(t *testing.T) {
	db := NewDatabase("test")
	city := db.MustCreateTable(citySchema(t))
	store := db.MustCreateTable(MustSchema("Store", []Column{
		{Name: "StoreKey", Kind: KindInt},
		{Name: "CityKey", Kind: KindInt},
	}, "StoreKey", []ForeignKey{{Column: "CityKey", RefTable: "City", RefColumn: "CityKey"}}))

	city.MustAppend(Int(1), String("Columbus"), Float(1))
	store.MustAppend(Int(10), Int(1))
	if err := db.Validate(true); err != nil {
		t.Fatalf("valid db rejected: %v", err)
	}

	store.MustAppend(Int(11), Int(999)) // dangling FK
	if err := db.Validate(false); err != nil {
		t.Errorf("non-strict should pass: %v", err)
	}
	if err := db.Validate(true); err == nil {
		t.Error("strict validation missed dangling foreign key")
	}

	store.MustAppend(Int(12), Null()) // NULL FK is fine
}

func TestDatabaseValidateMissingTargets(t *testing.T) {
	db := NewDatabase("test")
	db.MustCreateTable(MustSchema("A", []Column{
		{Name: "X", Kind: KindInt},
	}, "", []ForeignKey{{Column: "X", RefTable: "Missing", RefColumn: "Y"}}))
	if err := db.Validate(false); err == nil {
		t.Error("missing ref table accepted")
	}

	db2 := NewDatabase("test2")
	db2.MustCreateTable(MustSchema("B", []Column{{Name: "Y", Kind: KindInt}}, "", nil))
	db2.MustCreateTable(MustSchema("A", []Column{
		{Name: "X", Kind: KindInt},
	}, "", []ForeignKey{{Column: "X", RefTable: "B", RefColumn: "Z"}}))
	if err := db2.Validate(false); err == nil {
		t.Error("missing ref column accepted")
	}
}

func TestDatabaseTablesAndStats(t *testing.T) {
	db := NewDatabase("d")
	a := db.MustCreateTable(MustSchema("A", []Column{{Name: "X", Kind: KindInt}}, "", nil))
	db.MustCreateTable(MustSchema("B", []Column{{Name: "Y", Kind: KindString, FullText: true}}, "", nil))
	a.MustAppend(Int(1))
	a.MustAppend(Int(2))

	if db.Table("A") != a || db.Table("missing") != nil {
		t.Error("Table lookup wrong")
	}
	if !reflect.DeepEqual(db.TableNames(), []string{"A", "B"}) {
		t.Error("TableNames order wrong")
	}
	if err := db.AddTable(NewTable(MustSchema("A", []Column{{Name: "X", Kind: KindInt}}, "", nil))); err == nil {
		t.Error("duplicate table accepted")
	}
	st := db.Stats()
	if st.Tables != 2 || st.Rows != 2 || st.FullTextColumns != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestFreezeAllowsConcurrentReads(t *testing.T) {
	db := NewDatabase("d")
	tab := db.MustCreateTable(MustSchema("T", []Column{
		{Name: "K", Kind: KindInt},
	}, "K", nil))
	for i := 0; i < 100; i++ {
		tab.MustAppend(Int(int64(i % 10)))
	}
	db.Freeze()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := int64(0); i < 10; i++ {
				if len(tab.Lookup("K", Int(i))) != 10 {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent lookup returned wrong result")
		}
	}
}
