package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	// Name is the attribute name, unique within its table.
	Name string
	// Kind is the declared type; inserted values must match it or be NULL
	// (ints are accepted into float columns and widened).
	Kind Kind
	// FullText marks the column as searchable: the full-text indexer
	// treats each distinct value of the column as a virtual document.
	FullText bool
}

// ForeignKey declares that Column of the owning table references
// RefColumn of RefTable. KDAP schemas use single-column keys.
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Schema is the declared structure of a table.
type Schema struct {
	// Name is the table name, unique within its database.
	Name string
	// Columns in declaration order.
	Columns []Column
	// Key names the primary-key column, or is empty for keyless tables
	// (fact tables are typically keyless here).
	Key string
	// ForeignKeys lists the outbound references of the table.
	ForeignKeys []ForeignKey

	byName map[string]int
}

// NewSchema builds a schema and validates that column names are unique and
// that declared keys refer to existing columns.
func NewSchema(name string, cols []Column, key string, fks []ForeignKey) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relation: schema with empty name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relation: schema %q has no columns", name)
	}
	s := &Schema{
		Name:        name,
		Columns:     append([]Column(nil), cols...),
		Key:         key,
		ForeignKeys: append([]ForeignKey(nil), fks...),
		byName:      make(map[string]int, len(cols)),
	}
	for i, c := range s.Columns {
		if c.Name == "" {
			return nil, fmt.Errorf("relation: schema %q: column %d has empty name", name, i)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("relation: schema %q: duplicate column %q", name, c.Name)
		}
		if c.Kind == KindNull {
			return nil, fmt.Errorf("relation: schema %q: column %q declared null-kinded", name, c.Name)
		}
		s.byName[c.Name] = i
	}
	if key != "" {
		if _, ok := s.byName[key]; !ok {
			return nil, fmt.Errorf("relation: schema %q: key column %q not declared", name, key)
		}
	}
	for _, fk := range s.ForeignKeys {
		if _, ok := s.byName[fk.Column]; !ok {
			return nil, fmt.Errorf("relation: schema %q: foreign-key column %q not declared", name, fk.Column)
		}
		if fk.RefTable == "" || fk.RefColumn == "" {
			return nil, fmt.Errorf("relation: schema %q: foreign key on %q has empty target", name, fk.Column)
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// known schemas such as the built-in datasets.
func MustSchema(name string, cols []Column, key string, fks []ForeignKey) *Schema {
	s, err := NewSchema(name, cols, key, fks)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// HasColumn reports whether the schema declares the named column.
func (s *Schema) HasColumn(name string) bool { return s.ColumnIndex(name) >= 0 }

// Column returns the named column. The second result is false if absent.
func (s *Schema) Column(name string) (Column, bool) {
	i := s.ColumnIndex(name)
	if i < 0 {
		return Column{}, false
	}
	return s.Columns[i], true
}

// FullTextColumns returns the names of all columns marked FullText.
func (s *Schema) FullTextColumns() []string {
	var out []string
	for _, c := range s.Columns {
		if c.FullText {
			out = append(out, c.Name)
		}
	}
	return out
}

// String renders the schema as "name(col:kind, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}
