// Package relation implements a small in-memory relational engine: typed
// values, table schemas with primary/foreign keys, hash-indexed tables, and
// the scan/filter/semijoin primitives that the KDAP star-net executor is
// built on.
//
// The engine intentionally supports exactly the operations a star/snowflake
// OLAP schema needs — equality lookups along key columns, predicate scans,
// and distinct-value projection — rather than a general query language.
package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero Kind so that the zero
// Value is a well-formed NULL.
const (
	KindNull Kind = iota
	KindString
	KindInt
	KindFloat
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed relational value. Value is comparable (it
// contains no pointers or slices) and may therefore be used directly as a
// map key, which the group-by and index code relies on.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// String returns a string Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string content of v. It panics unless v is a string;
// use Text for a lossy any-kind rendering.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("relation: Str on %s value", v.kind))
	}
	return v.s
}

// IntVal returns the integer content of v. It panics unless v is an int.
func (v Value) IntVal() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("relation: IntVal on %s value", v.kind))
	}
	return v.i
}

// FloatVal returns the float content of v. It panics unless v is a float.
func (v Value) FloatVal() float64 {
	if v.kind != KindFloat {
		panic(fmt.Sprintf("relation: FloatVal on %s value", v.kind))
	}
	return v.f
}

// BoolVal returns the boolean content of v. It panics unless v is a bool.
func (v Value) BoolVal() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("relation: BoolVal on %s value", v.kind))
	}
	return v.b
}

// Numeric reports whether v carries a numeric kind (int or float).
func (v Value) Numeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// AsFloat converts a numeric value to float64. NULL converts to NaN so that
// aggregation code can skip it; other kinds panic.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	case KindNull:
		return math.NaN()
	default:
		panic(fmt.Sprintf("relation: AsFloat on %s value", v.kind))
	}
}

// FloatOrNaN converts a numeric value to float64 and every other kind —
// NULL, string, bool — to NaN. It is the non-panicking sibling of
// AsFloat; the columnar kernels use NaN as the single absent-value
// sentinel so that a []float64 column needs no side validity mask.
func (v Value) FloatOrNaN() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		return math.NaN()
	}
}

// Text renders any value as a string: strings verbatim, numbers in decimal
// notation, booleans as true/false, NULL as the empty string. Text is what
// the full-text indexer feeds to the tokenizer.
func (v Value) Text() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return ""
	}
}

// Equal reports deep equality of two values. Int and float values of equal
// magnitude compare equal (3 == 3.0), matching SQL numeric comparison.
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		return v == o
	}
	if v.Numeric() && o.Numeric() {
		return v.AsFloat() == o.AsFloat()
	}
	return false
}

// Compare orders two values. NULL sorts before everything; values of
// different non-numeric kinds order by kind. The result is -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.Numeric() && o.Numeric() {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	default:
		return 0
	}
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return strconv.Quote(v.s)
	default:
		return v.Text()
	}
}
