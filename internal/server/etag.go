package server

// HTTP revalidation for cached answers. The engine's pipelines are
// deterministic: the canonical answer identity (query or explore cache
// key) plus the dataset version fully determine the result, so an ETag
// derived from those inputs validates a client's cached copy without
// recomputing — If-None-Match on an unchanged answer is a 304 before
// the pipeline ever runs. The tags are weak (W/ prefix): /api/query
// bodies differ per request in the freshly minted session id, so two
// responses under one tag are semantically, not byte-wise, equivalent.

import (
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
)

// answerETag derives the weak entity tag for a deterministic answer
// from its identifying parts (endpoint kind, warehouse, data version,
// canonical key, ...).
func answerETag(parts ...string) string {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			_, _ = h.Write([]byte{0x1f})
		}
		_, _ = h.Write([]byte(p))
	}
	return `W/"` + strconv.FormatUint(h.Sum64(), 16) + `"`
}

// notModified reports whether the request's If-None-Match header
// matches etag under RFC 9110 weak comparison (ignoring W/ prefixes),
// i.e. whether the handler may answer 304 Not Modified.
func notModified(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	if strings.TrimSpace(inm) == "*" {
		return true
	}
	want := opaqueTag(etag)
	for _, candidate := range strings.Split(inm, ",") {
		if opaqueTag(strings.TrimSpace(candidate)) == want {
			return true
		}
	}
	return false
}

// opaqueTag strips the weakness prefix, leaving the quoted opaque tag.
func opaqueTag(tag string) string {
	return strings.TrimPrefix(strings.TrimPrefix(tag, "W/"), "w/")
}

// cacheHeaderName carries the answer-cache disposition of a response:
// miss, hit, coalesced, bypass, or revalidated (a 304).
const cacheHeaderName = "X-KDAP-Cache"

// writeNotModified answers a revalidation hit: 304 with the matching
// tag and no body.
func writeNotModified(w http.ResponseWriter, etag string) {
	w.Header().Set("ETag", etag)
	w.Header().Set(cacheHeaderName, "revalidated")
	w.WriteHeader(http.StatusNotModified)
}
