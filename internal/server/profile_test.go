package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"kdap/internal/telemetry/profile"
)

// postJSON posts a JSON body to path (which may carry query
// parameters) and returns the response with its body decoded into out.
func postJSON(t *testing.T, url, path, body string, out any) *http.Response {
	t.Helper()
	resp, err := http.Post(url+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp
}

// ?profile=1 returns the request's wide event inline on both pipeline
// routes, with the execution evidence populated.
func TestProfileInline(t *testing.T) {
	ts := newTestServer(t)

	var q QueryResponse
	resp := postJSON(t, ts.URL, "/api/query?profile=1", `{"db":"ebiz","q":"Columbus LCD"}`, &q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	p := q.Profile
	if p == nil {
		t.Fatal("?profile=1 query response has no profile")
	}
	if p.Route != "/api/query" || p.DB != "ebiz" || p.Query != "Columbus LCD" {
		t.Errorf("profile identity: %+v", p)
	}
	if p.ID == "" || p.ID != resp.Header.Get("X-Request-ID") {
		t.Errorf("profile id %q != response header %q", p.ID, resp.Header.Get("X-Request-ID"))
	}
	if p.InFlight || p.Disposition != profile.DispositionOK || p.Status != http.StatusOK {
		t.Errorf("inline profile not sealed ok: %+v", p)
	}
	if p.Cache == "" {
		t.Errorf("no cache outcome recorded: %+v", p)
	}
	if p.Candidates == 0 || p.FulltextProbes == 0 {
		t.Errorf("differentiate evidence missing (candidates=%d probes=%d)", p.Candidates, p.FulltextProbes)
	}
	if len(p.Stages) == 0 {
		t.Errorf("no stage breakdown: %+v", p)
	}

	var f FacetsDTO
	resp = postJSON(t, ts.URL, "/api/explore?profile=1",
		`{"session":"`+q.Session+`","pick":1}`, &f)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status %d", resp.StatusCode)
	}
	ep := f.Profile
	if ep == nil {
		t.Fatal("?profile=1 explore response has no profile")
	}
	if ep.Route != "/api/explore" || ep.DB != "ebiz" {
		t.Errorf("explore profile identity: %+v", ep)
	}
	if ep.SerialScans+ep.ParallelScans == 0 || ep.RowsScanned == 0 {
		t.Errorf("explore kernel evidence missing: %+v", ep)
	}
	if len(ep.Stages) == 0 {
		t.Errorf("explore profile has no stages: %+v", ep)
	}

	// Without the flag, neither inline profile appears.
	var plain QueryResponse
	postJSON(t, ts.URL, "/api/query", `{"db":"ebiz","q":"Columbus LCD"}`, &plain)
	if plain.Profile != nil {
		t.Error("profile returned without ?profile=1")
	}
}

// A client-supplied X-Request-ID is kept (truncated to the cap) and
// echoed; absent one, the server generates and echoes an ID.
func TestRequestIDPropagation(t *testing.T) {
	ts := newTestServer(t)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/api/query?profile=1",
		bytes.NewReader([]byte(`{"db":"ebiz","q":"Columbus"}`)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "trace-abc-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-abc-123" {
		t.Errorf("client ID not echoed: %q", got)
	}
	var q QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&q); err != nil {
		t.Fatal(err)
	}
	if q.Profile == nil || q.Profile.ID != "trace-abc-123" {
		t.Errorf("profile did not keep the client ID: %+v", q.Profile)
	}
}

// /debug/queries serves the flight recorder: completed events land in
// recent (and errored when non-ok), and the route/db/min_ms filters
// narrow every view.
func TestDebugQueriesEndpoint(t *testing.T) {
	ts, srv := newTestServerAndHandler(t)

	var q QueryResponse
	postJSON(t, ts.URL, "/api/query", `{"db":"ebiz","q":"Columbus LCD"}`, &q)
	// An unknown warehouse is an error disposition for the recorder.
	postJSON(t, ts.URL, "/api/query", `{"db":"nope","q":"x"}`, nil)

	get := func(path string) DebugQueriesResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
		var dq DebugQueriesResponse
		if err := json.NewDecoder(resp.Body).Decode(&dq); err != nil {
			t.Fatal(err)
		}
		return dq
	}

	dq := get("/debug/queries")
	if dq.SlowThresholdMS != srv.opts.SLOTarget.Seconds()*1000 {
		t.Errorf("slow threshold %v", dq.SlowThresholdMS)
	}
	if len(dq.Recent) < 2 {
		t.Fatalf("recent has %d events, want >= 2", len(dq.Recent))
	}
	// Newest first: the failed query leads.
	if dq.Recent[0].Disposition != profile.DispositionError || dq.Recent[0].Status != http.StatusNotFound {
		t.Errorf("newest recent event: %+v", dq.Recent[0])
	}
	if len(dq.Errored) == 0 || dq.Errored[0].Disposition != profile.DispositionError {
		t.Errorf("errored view: %+v", dq.Errored)
	}
	if len(dq.InFlight) != 0 {
		t.Errorf("in-flight not empty at rest: %+v", dq.InFlight)
	}

	if f := get("/debug/queries?route=/api/explore"); len(f.Recent) != 0 {
		t.Errorf("route filter leaked %d events", len(f.Recent))
	}
	if f := get("/debug/queries?db=ebiz"); len(f.Recent) == 0 {
		t.Error("db filter dropped the ebiz query")
	}
	if f := get("/debug/queries?min_ms=600000"); len(f.Recent) != 0 {
		t.Errorf("min_ms filter leaked %d events", len(f.Recent))
	}
	if resp, err := http.Get(ts.URL + "/debug/queries?min_ms=bogus"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus min_ms: %v %v", err, resp.Status)
	} else {
		resp.Body.Close()
	}
}

// Completed requests classify into the SLO counters, which are
// pre-registered for every route; the runtime gauges are always
// exposed.
func TestSLOAndRuntimeMetrics(t *testing.T) {
	ts := newTestServer(t)
	postJSON(t, ts.URL, "/api/query", `{"db":"ebiz","q":"Columbus LCD"}`, nil)
	body := scrape(t, ts.URL)
	for _, want := range []string{
		`kdap_slo_good_total{route="/api/query"}`,
		`kdap_slo_bad_total{route="/api/query"}`,
		`kdap_slo_good_total{route="/api/drill"}`,
		`kdap_slo_target_seconds 0.25`,
		`kdap_requests_shed_total{route="/api/explore"} 0`,
		`kdap_requests_cancelled_total{reason="deadline",route="/api/query"} 0`,
		"kdap_go_goroutines",
		"kdap_go_heap_alloc_bytes",
		"kdap_go_gc_pause_seconds_total",
		"kdap_go_gc_cycles_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
	// The interactive test query is far under the 250ms target: good=1.
	if !strings.Contains(body, `kdap_slo_good_total{route="/api/query"} 1`) {
		t.Errorf("query not classified good:\n%s", grepLines(body, "kdap_slo_"))
	}
}

// grepLines returns the lines of s containing substr, for failure
// messages that don't dump the whole exposition.
func grepLines(s, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}
