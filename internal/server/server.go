// Package server exposes a KDAP engine over a JSON HTTP API, so that the
// differentiate → pick → explore → drill loop can back a web front end
// (the medium the paper's multi-faceted interfaces live in).
//
// Endpoints:
//
//	GET  /healthz                      liveness probe
//	GET  /api/warehouses               list the served warehouses
//	POST /api/query                    {"db","q"} → session + ranked interpretations
//	POST /api/explore                  {"session","pick",...} → facets
//	POST /api/drill                    {"session","pick","table","attr","role","value"} → new session
//
// Sessions hold the non-serializable star nets server-side; responses
// carry opaque session IDs plus rendered interpretation summaries, which
// is exactly the interaction contract of the paper's Figure 1.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/telemetry"
)

// Server is the HTTP handler set over one or more warehouses.
type Server struct {
	mux     *http.ServeMux
	engines map[string]*kdapcore.Engine

	reg      *telemetry.Registry
	logger   *slog.Logger
	start    time.Time
	factRows map[string]int

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64
	// sessionCap bounds the session store; the oldest arbitrary session
	// is dropped past it.
	sessionCap int
}

type session struct {
	db   string
	nets []*kdapcore.StarNet
}

// New creates a server over the named warehouses.
func New(warehouses map[string]*dataset.Warehouse) *Server {
	s := &Server{
		mux:        http.NewServeMux(),
		engines:    make(map[string]*kdapcore.Engine),
		reg:        telemetry.NewRegistry(),
		logger:     slog.Default(),
		start:      time.Now(),
		factRows:   make(map[string]int),
		sessions:   make(map[string]*session),
		sessionCap: 1024,
	}
	for name, wh := range warehouses {
		fact := wh.DB.Table(wh.Graph.FactTable())
		var m olap.Measure
		switch {
		case fact.Schema().HasColumn("OrderQuantity"):
			m = olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "OrderQuantity")
		case fact.Schema().HasColumn("Quantity"):
			m = olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "Quantity")
		default:
			m = olap.CountMeasure()
		}
		e := kdapcore.NewEngine(wh.Graph, wh.Index, m, olap.Sum)
		s.engines[name] = e
		s.factRows[name] = fact.Len()
		s.wireEngineMetrics(name, e)
	}
	s.handle("GET /{$}", "/", s.handleUI)
	s.handle("GET /healthz", "/healthz", s.handleHealth)
	s.handle("GET /api/warehouses", "/api/warehouses", s.handleWarehouses)
	s.handle("POST /api/query", "/api/query", s.handleQuery)
	s.handle("POST /api/suggest", "/api/suggest", s.handleSuggest)
	s.handle("POST /api/explore", "/api/explore", s.handleExplore)
	s.handle("POST /api/drill", "/api/drill", s.handleDrill)
	s.registerDebugEndpoints()
	return s
}

// SetLogger replaces the access logger (default slog.Default()).
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// Registry returns the server's metrics registry, for callers that
// want to register process-level series alongside the engine metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- DTOs ---

// InterpretationDTO is one ranked star net in a query response.
type InterpretationDTO struct {
	Rank      int           `json:"rank"`
	Score     float64       `json:"score"`
	Signature string        `json:"signature"`
	Groups    []HitGroupDTO `json:"groups"`
}

// HitGroupDTO is one hit group of an interpretation.
type HitGroupDTO struct {
	Table  string   `json:"table"`
	Attr   string   `json:"attr"`
	Role   string   `json:"role"`
	Alias  string   `json:"alias"`
	Phrase string   `json:"phrase,omitempty"`
	Values []string `json:"values"`
}

// QueryResponse answers /api/query. Trace is present only when the
// request carried ?trace=1.
type QueryResponse struct {
	Session         string              `json:"session"`
	Query           string              `json:"query"`
	Interpretations []InterpretationDTO `json:"interpretations"`
	Trace           *telemetry.SpanJSON `json:"trace,omitempty"`
}

// FacetsDTO answers /api/explore. Trace is present only when the
// request carried ?trace=1.
type FacetsDTO struct {
	SubspaceSize   int                  `json:"subspaceSize"`
	TotalAggregate float64              `json:"totalAggregate"`
	Dimensions     []DimensionFacetsDTO `json:"dimensions"`
	Trace          *telemetry.SpanJSON  `json:"trace,omitempty"`
}

// DimensionFacetsDTO is one dimension's facets.
type DimensionFacetsDTO struct {
	Dimension  string         `json:"dimension"`
	Hitted     bool           `json:"hitted"`
	Attributes []AttrFacetDTO `json:"attributes"`
}

// AttrFacetDTO is one facet attribute.
type AttrFacetDTO struct {
	Table     string        `json:"table"`
	Attr      string        `json:"attr"`
	Role      string        `json:"role"`
	Score     float64       `json:"score"`
	Promoted  bool          `json:"promoted"`
	Numeric   bool          `json:"numeric"`
	Instances []InstanceDTO `json:"instances"`
}

// InstanceDTO is one facet entry.
type InstanceDTO struct {
	Label     string  `json:"label"`
	Lo        float64 `json:"lo,omitempty"`
	Hi        float64 `json:"hi,omitempty"`
	Aggregate float64 `json:"aggregate"`
	Score     float64 `json:"score"`
}

// --- handlers ---

func (s *Server) handleWarehouses(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.engines))
	for name := range s.engines {
		names = append(names, name)
	}
	writeJSON(w, http.StatusOK, map[string][]string{"warehouses": names})
}

type queryRequest struct {
	DB    string `json:"db"`
	Q     string `json:"q"`
	Limit int    `json:"limit"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	e, ok := s.engines[req.DB]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown warehouse %q", req.DB))
		return
	}
	// Every query is traced so /metrics carries per-stage latency; the
	// tree is serialized into the response only behind ?trace=1.
	tr := telemetry.NewTrace("query")
	nets, err := e.DifferentiateCtx(tr.Context(r.Context()), req.Q)
	tr.Finish()
	s.observeStages(tr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > 50 {
		limit = 20
	}
	if len(nets) > limit {
		nets = nets[:limit]
	}
	id := s.putSession(&session{db: req.DB, nets: nets})
	resp := QueryResponse{Session: id, Query: req.Q}
	if wantTrace(r) {
		resp.Trace = tr.JSON()
	}
	for i, sn := range nets {
		dto := InterpretationDTO{Rank: i + 1, Score: sn.Score, Signature: sn.DomainSignature()}
		for _, bg := range sn.Groups {
			g := HitGroupDTO{
				Table: bg.Group.Table, Attr: bg.Group.Attr,
				Role: bg.Path.Role, Alias: bg.Alias(), Phrase: bg.Group.Phrase,
			}
			for _, h := range bg.Group.Hits {
				g.Values = append(g.Values, h.Value.Text())
			}
			dto.Groups = append(dto.Groups, g)
		}
		resp.Interpretations = append(resp.Interpretations, dto)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSuggest returns "did you mean" corrections for the query's
// unmatched keywords.
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	e, ok := s.engines[req.DB]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown warehouse %q", req.DB))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"suggestions": e.SuggestKeywords(req.Q, 3),
	})
}

type exploreRequest struct {
	Session       string `json:"session"`
	Pick          int    `json:"pick"`
	Mode          string `json:"mode"`
	TopKAttrs     int    `json:"topKAttrs"`
	TopKInstances int    `json:"topKInstances"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req exploreRequest
	if !readJSON(w, r, &req) {
		return
	}
	e, sn, ok := s.resolve(w, req.Session, req.Pick)
	if !ok {
		return
	}
	opts := kdapcore.DefaultExploreOptions()
	opts.Parallel = true
	switch req.Mode {
	case "", "surprise":
	case "bellwether":
		opts.Mode = kdapcore.Bellwether
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q", req.Mode))
		return
	}
	if req.TopKAttrs > 0 {
		opts.TopKAttrs = req.TopKAttrs
	}
	if req.TopKInstances > 0 {
		opts.TopKInstances = req.TopKInstances
	}
	tr := telemetry.NewTrace("explore")
	f, err := e.ExploreCtx(tr.Context(r.Context()), sn, opts)
	tr.Finish()
	s.observeStages(tr)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	dto := facetsDTO(f)
	if wantTrace(r) {
		dto.Trace = tr.JSON()
	}
	writeJSON(w, http.StatusOK, dto)
}

// wantTrace reports whether the request asked for its span tree
// (?trace=1).
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

type drillRequest struct {
	Session string `json:"session"`
	Pick    int    `json:"pick"`
	Table   string `json:"table"`
	Attr    string `json:"attr"`
	Role    string `json:"role"`
	// Value drills into a categorical instance…
	Value string `json:"value"`
	// …or Lo/Hi (with Numeric true) into a numeric range.
	Numeric bool    `json:"numeric"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
}

func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	var req drillRequest
	if !readJSON(w, r, &req) {
		return
	}
	e, sn, ok := s.resolve(w, req.Session, req.Pick)
	if !ok {
		return
	}
	attr := schemagraph.AttrRef{Table: req.Table, Attr: req.Attr}
	var drilled *kdapcore.StarNet
	var err error
	if req.Numeric {
		drilled, err = e.DrillRange(sn, attr, req.Role, req.Lo, req.Hi)
	} else {
		drilled, err = e.Drill(sn, attr, req.Role, relation.String(req.Value))
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	db := s.sessions[req.Session].db
	s.mu.Unlock()
	id := s.putSession(&session{db: db, nets: []*kdapcore.StarNet{drilled}})
	writeJSON(w, http.StatusOK, map[string]string{"session": id})
}

// resolve looks up a session and 1-based interpretation pick.
func (s *Server) resolve(w http.ResponseWriter, sessionID string, pick int) (*kdapcore.Engine, *kdapcore.StarNet, bool) {
	s.mu.Lock()
	sess := s.sessions[sessionID]
	s.mu.Unlock()
	if sess == nil {
		writeError(w, http.StatusNotFound, "unknown session")
		return nil, nil, false
	}
	if pick < 1 || pick > len(sess.nets) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("pick out of range 1..%d", len(sess.nets)))
		return nil, nil, false
	}
	return s.engines[sess.db], sess.nets[pick-1], true
}

func (s *Server) putSession(sess *session) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	id := "s" + strconv.FormatUint(s.nextID, 36)
	if len(s.sessions) >= s.sessionCap {
		for k := range s.sessions {
			delete(s.sessions, k)
			break
		}
	}
	s.sessions[id] = sess
	return id
}

func facetsDTO(f *kdapcore.Facets) FacetsDTO {
	out := FacetsDTO{SubspaceSize: f.SubspaceSize, TotalAggregate: f.TotalAggregate}
	for _, d := range f.Dimensions {
		dd := DimensionFacetsDTO{Dimension: d.Dimension, Hitted: d.Hitted}
		for _, a := range d.Attributes {
			score := a.Score
			if math.IsInf(score, 0) || math.IsNaN(score) {
				// JSON has no Inf; promoted facets carry their rank in
				// the Promoted flag instead.
				score = 0
			}
			ad := AttrFacetDTO{
				Table: a.Attr.Table, Attr: a.Attr.Attr, Role: a.Role,
				Score: score, Promoted: a.Promoted, Numeric: a.Numeric,
			}
			for _, inst := range a.Instances {
				ad.Instances = append(ad.Instances, InstanceDTO{
					Label: inst.Label, Lo: inst.Lo, Hi: inst.Hi,
					Aggregate: inst.Aggregate, Score: inst.Score,
				})
			}
			dd.Attributes = append(dd.Attributes, ad)
		}
		out.Dimensions = append(out.Dimensions, dd)
	}
	return out
}

// --- JSON plumbing ---

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
