// Package server exposes a KDAP engine over a JSON HTTP API, so that the
// differentiate → pick → explore → drill loop can back a web front end
// (the medium the paper's multi-faceted interfaces live in).
//
// Endpoints:
//
//	GET  /healthz                      liveness probe
//	GET  /api/warehouses               list the served warehouses
//	POST /api/query                    {"db","q"} → session + ranked interpretations
//	POST /api/explore                  {"session","pick",...} → facets
//	POST /api/drill                    {"session","pick","table","attr","role","value"} → new session
//
// Sessions hold the non-serializable star nets server-side; responses
// carry opaque session IDs plus rendered interpretation summaries, which
// is exactly the interaction contract of the paper's Figure 1.
//
// When the answer cache is enabled (Options.AnswerCacheSize, on by
// default), /api/query and /api/explore responses carry a weak ETag and
// an X-KDAP-Cache disposition header (miss | hit | coalesced | bypass |
// revalidated); requests presenting a matching If-None-Match answer 304
// before the pipeline runs. See docs/OPERATIONS.md for the serving
// flags and the full metrics reference.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"kdap/internal/cache"
	"kdap/internal/cluster"
	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

// Options tune the server's request lifecycle.
type Options struct {
	// QueryTimeout bounds every API request: the handler's context
	// carries a deadline and the pipeline returns DeadlineExceeded
	// (mapped to 504) when it fires. Zero means no per-request deadline
	// beyond the client's own.
	QueryTimeout time.Duration
	// MaxInflight caps concurrently executing API requests; zero or
	// negative disables admission control.
	MaxInflight int
	// MaxQueue is how many requests may wait for an in-flight slot
	// before the server sheds with 503 (default 2×MaxInflight).
	MaxQueue int
	// QueueWait is the longest a queued request waits before being shed
	// (default 250ms).
	QueueWait time.Duration
	// SessionCap bounds the session store (default 1024); cold sessions
	// are evicted CLOCK-style.
	SessionCap int
	// AnswerCacheSize is the per-engine answer cache capacity in entries
	// (per phase: differentiate and explore each); zero or negative
	// disables answer caching, ETags, and request coalescing.
	AnswerCacheSize int
	// AnswerCacheTTL expires cached answers this long after insertion;
	// zero keeps them until evicted or invalidated.
	AnswerCacheTTL time.Duration
	// Shards partitions each warehouse's fact table into this many
	// contiguous row-range shards with zone maps, enabling shard-pruned
	// scatter-gather execution; <= 1 keeps monolithic scans. Results are
	// byte-identical either way.
	Shards int
	// Autotune calibrates the parallel-kernel row threshold at startup
	// against the largest served fact table (see olap.CalibrateThreshold)
	// instead of trusting the factory default. The tuning is process-wide
	// and decided before the first request, so every response the process
	// ever serves uses one consistent stripe schedule.
	Autotune bool
	// BatchWindow enables shared-scan batched execution: a query-phase
	// request that misses every cache waits up to this long for other
	// in-flight requests against the same warehouse, and the batch runs
	// as one fused scan pass. Zero disables batching. Results are
	// byte-identical to solo execution.
	BatchWindow time.Duration
	// BatchMax caps how many requests one batch may gather before it
	// flushes early (default 16 when batching is on).
	BatchMax int
	// SegmentCacheMB bounds each disk-backed warehouse's segment page
	// cache, in MiB (zero keeps the store's own default). It only
	// applies to warehouses whose fact table carries a column backing
	// with a cache budget — resident warehouses ignore it.
	SegmentCacheMB int
	// SLOTarget is the per-request latency target (default 250ms). It
	// drives the kdap_slo_good_total / kdap_slo_bad_total classification
	// and doubles as the flight recorder's slow-ring threshold, so the
	// queries /debug/queries calls "slow" are exactly the ones burning
	// the error budget.
	SLOTarget time.Duration
	// ClusterWorkers, when non-empty, runs this server as a
	// scatter-gather coordinator: fact-row materialization fans out to
	// the listed worker nodes (slice order is shard order — workers[i]
	// owns range i of len(workers)), while every float kernel still runs
	// here, keeping answers byte-identical to a monolithic server. See
	// docs/CLUSTER.md.
	ClusterWorkers []string
	// Cluster tunes coordinator dispatch (deadlines, hedging, fallback).
	// Start from cluster.DefaultOptions(); ignored without
	// ClusterWorkers.
	Cluster cluster.Options
}

// DefaultOptions returns the defaults New uses: no deadline, no
// admission cap, 1024 sessions, a 512-entry answer cache with a
// five-minute TTL.
func DefaultOptions() Options {
	return Options{
		SessionCap:      1024,
		AnswerCacheSize: 512,
		AnswerCacheTTL:  5 * time.Minute,
		SLOTarget:       250 * time.Millisecond,
	}
}

// Server is the HTTP handler set over one or more warehouses.
type Server struct {
	mux     *http.ServeMux
	engines map[string]*kdapcore.Engine
	opts    Options
	adm     *admission
	rec     *profile.Recorder

	reg      *telemetry.Registry
	logger   *slog.Logger
	start    time.Time
	factRows map[string]int
	cluster  *cluster.Cluster

	// sessions is the CLOCK-evicted session store: under the cap, hot
	// sessions (anything resolved or created within one sweep of the
	// hand) survive while idle ones are dropped.
	sessions *cache.Clock[string, *session]
	nextID   atomic.Uint64
}

type session struct {
	db   string
	nets []*kdapcore.StarNet
}

// New creates a server over the named warehouses with DefaultOptions.
func New(warehouses map[string]*dataset.Warehouse) *Server {
	return NewWithOptions(warehouses, DefaultOptions())
}

// NewWithOptions creates a server with explicit lifecycle options.
func NewWithOptions(warehouses map[string]*dataset.Warehouse, opts Options) *Server {
	if opts.SessionCap <= 0 {
		opts.SessionCap = 1024
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 2 * opts.MaxInflight
	}
	if opts.SLOTarget <= 0 {
		opts.SLOTarget = 250 * time.Millisecond
	}
	s := &Server{
		mux:      http.NewServeMux(),
		engines:  make(map[string]*kdapcore.Engine),
		opts:     opts,
		adm:      newAdmission(opts.MaxInflight, opts.MaxQueue, opts.QueueWait),
		reg:      telemetry.NewRegistry(),
		logger:   slog.Default(),
		start:    time.Now(),
		factRows: make(map[string]int),
		sessions: cache.NewClock[string, *session](opts.SessionCap),
	}
	s.rec = profile.NewRecorder(flightRecentN, flightSlowN, flightErrN, opts.SLOTarget, s.observeSLO)
	for name, wh := range warehouses {
		fact := wh.DB.Table(wh.Graph.FactTable())
		var m olap.Measure
		switch {
		case fact.Schema().HasColumn("OrderQuantity"):
			m = olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "OrderQuantity")
		case fact.Schema().HasColumn("Quantity"):
			m = olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "Quantity")
		default:
			m = olap.CountMeasure()
		}
		e := kdapcore.NewEngine(wh.Graph, wh.Index, m, olap.Sum)
		e.SetAnswerCache(opts.AnswerCacheSize, opts.AnswerCacheTTL)
		if opts.Shards > 1 {
			e.SetShards(opts.Shards)
		}
		if opts.BatchWindow > 0 {
			e.SetBatching(opts.BatchWindow, opts.BatchMax)
		}
		if b := fact.Backing(); b != nil {
			if opts.SegmentCacheMB > 0 {
				if bud, ok := b.(interface{ SetCacheBudget(bytes int64) }); ok {
					bud.SetCacheBudget(int64(opts.SegmentCacheMB) << 20)
				}
			}
			s.wireSegmentMetrics(name, b)
		}
		s.engines[name] = e
		s.factRows[name] = fact.Len()
		s.wireEngineMetrics(name, e)
	}
	if opts.Autotune {
		// The threshold is process-wide, so calibrate once against the
		// largest served fact table — the one whose scans have the most
		// to gain (or lose) from striping.
		var big *kdapcore.Engine
		bigRows := -1
		for name, e := range s.engines {
			if s.factRows[name] > bigRows {
				big, bigRows = e, s.factRows[name]
			}
		}
		if big != nil {
			olap.ApplyTuning(olap.CalibrateThreshold(big.Executor(), big.Measure()))
		}
	}
	if len(opts.ClusterWorkers) > 0 {
		// The coordinator is built over the same engines that serve
		// requests, so its fallback and hedged re-scans share every cache
		// and shard structure with the local path.
		s.cluster = cluster.New(opts.ClusterWorkers, s.engines, opts.Cluster)
		for name, e := range s.engines {
			e.SetScatter(s.cluster.Scatterer(name))
		}
		s.cluster.WireMetrics(s.reg)
	}
	s.handle("GET /{$}", "/", s.handleUI)
	s.handle("GET /healthz", "/healthz", s.handleHealth)
	s.handle("GET /api/warehouses", "/api/warehouses", s.handleWarehouses)
	// The query-executing routes additionally pass through the admission
	// and deadline layer; cheap metadata routes above do not.
	s.handle("POST /api/query", "/api/query", s.api("/api/query", s.handleQuery))
	s.handle("POST /api/suggest", "/api/suggest", s.api("/api/suggest", s.handleSuggest))
	s.handle("POST /api/explore", "/api/explore", s.api("/api/explore", s.handleExplore))
	s.handle("POST /api/drill", "/api/drill", s.api("/api/drill", s.handleDrill))
	s.handle("POST /api/ingest", "/api/ingest", s.api("/api/ingest", s.handleIngest))
	s.registerDebugEndpoints()
	s.wireAdmissionMetrics()
	s.wireSLOMetrics()
	s.wireRuntimeMetrics()
	return s
}

// queueWaitKey carries the admission queue wait through the request
// context so handlers can attach it to their trace as a queue_wait
// span.
type queueWaitKey struct{}

// queueWaitOf returns the admission wait recorded for this request.
func queueWaitOf(ctx context.Context) time.Duration {
	d, _ := ctx.Value(queueWaitKey{}).(time.Duration)
	return d
}

// api wraps a query-executing handler in the request lifecycle layer:
// the per-request wide event (started here, completed here with the
// response's true status and duration), admission control (shed with
// 503 + Retry-After when saturated), the per-request deadline, and the
// queue-wait annotation. The request ID — the client's X-Request-ID or
// a generated one — is echoed on the response and stamped on the
// profile so a slow request in /debug/queries can be matched to the
// client's own logs.
func (s *Server) api(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		p := s.rec.Start(route, requestID(r))
		w.Header().Set(requestIDHeader, p.ID())
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		release, wait, admitted := s.adm.acquire(r.Context())
		if !admitted {
			s.reg.Counter("kdap_requests_shed_total",
				"API requests shed by admission control (in-flight cap and queue full or wait expired).",
				"route", route).Inc()
			sr.Header().Set("Retry-After", "1")
			writeError(sr, http.StatusServiceUnavailable, "server at capacity, retry later")
			p.SetQueueWait(wait)
			s.rec.Complete(p, http.StatusServiceUnavailable, profile.DispositionShed, errShed)
			return
		}
		defer release()
		ctx := r.Context()
		if s.opts.QueryTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
			defer cancel()
		}
		if wait > 0 {
			ctx = context.WithValue(ctx, queueWaitKey{}, wait)
			p.SetQueueWait(wait)
		}
		ctx = profile.NewContext(ctx, p)
		h(sr, r.WithContext(ctx))
		s.completeProfile(p, sr.status)
	}
}

// traceRequest starts the per-request trace every query-executing
// handler records, pre-seeding it with the admission queue wait.
func traceRequest(r *http.Request, op string) (*telemetry.Trace, context.Context) {
	tr := telemetry.NewTrace(op)
	if wait := queueWaitOf(r.Context()); wait > 0 {
		tr.Root().AddTimed("queue_wait", wait)
	}
	return tr, tr.Context(r.Context())
}

// writePipelineError maps a pipeline error to its HTTP response: a
// cancelled client context becomes 499 (the de-facto "client closed
// request" code), an expired deadline 504, anything else the fallback
// status. Context-ended requests also bump the per-route cancellation
// counter. The request's wide event is sealed here with the error and
// its disposition (Finish is first-call-wins, so the api wrapper's
// Complete keeps what this records).
func (s *Server) writePipelineError(w http.ResponseWriter, r *http.Request, route string, err error, fallback int) {
	p := profile.FromContext(r.Context())
	var status int
	var reason string
	switch {
	case errors.Is(err, context.Canceled):
		status, reason = 499, "cancelled"
		p.Finish(status, profile.DispositionCancelled, err)
	case errors.Is(err, context.DeadlineExceeded):
		status, reason = http.StatusGatewayTimeout, "deadline"
		p.Finish(status, profile.DispositionDeadline, err)
	default:
		p.Finish(fallback, profile.DispositionError, err)
		writeError(w, fallback, err.Error())
		return
	}
	s.reg.Counter("kdap_requests_cancelled_total",
		"API requests ended by context cancellation or deadline, by route and reason.",
		"route", route, "reason", reason).Inc()
	writeError(w, status, err.Error())
}

// SetLogger replaces the access logger (default slog.Default()).
func (s *Server) SetLogger(l *slog.Logger) { s.logger = l }

// Registry returns the server's metrics registry, for callers that
// want to register process-level series alongside the engine metrics.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Cluster returns the scatter-gather coordinator, or nil when the
// server runs monolithic. kdapd uses it to Verify the topology before
// serving and to Close the health poller on shutdown.
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// --- DTOs ---

// InterpretationDTO is one ranked star net in a query response.
type InterpretationDTO struct {
	Rank      int           `json:"rank"`
	Score     float64       `json:"score"`
	Signature string        `json:"signature"`
	Groups    []HitGroupDTO `json:"groups"`
}

// HitGroupDTO is one hit group of an interpretation.
type HitGroupDTO struct {
	Table  string   `json:"table"`
	Attr   string   `json:"attr"`
	Role   string   `json:"role"`
	Alias  string   `json:"alias"`
	Phrase string   `json:"phrase,omitempty"`
	Values []string `json:"values"`
}

// QueryResponse answers /api/query. Trace is present only when the
// request carried ?trace=1; Profile (the request's wide event) only
// behind ?profile=1.
type QueryResponse struct {
	Session         string              `json:"session"`
	Query           string              `json:"query"`
	Interpretations []InterpretationDTO `json:"interpretations"`
	Trace           *telemetry.SpanJSON `json:"trace,omitempty"`
	Profile         *profile.Event      `json:"profile,omitempty"`
}

// FacetsDTO answers /api/explore. Trace is present only when the
// request carried ?trace=1.
type FacetsDTO struct {
	SubspaceSize   int                  `json:"subspaceSize"`
	TotalAggregate float64              `json:"totalAggregate"`
	Dimensions     []DimensionFacetsDTO `json:"dimensions"`
	// Partial marks a deadline- or node-loss-degraded response (see
	// exploreRequest.Partial).
	Partial bool `json:"partial,omitempty"`
	// DegradedNodes attributes a partial answer to the cluster workers
	// that failed to contribute their shard ranges.
	DegradedNodes []string            `json:"degradedNodes,omitempty"`
	Trace         *telemetry.SpanJSON `json:"trace,omitempty"`
	Profile       *profile.Event      `json:"profile,omitempty"`
}

// DimensionFacetsDTO is one dimension's facets.
type DimensionFacetsDTO struct {
	Dimension  string         `json:"dimension"`
	Hitted     bool           `json:"hitted"`
	Attributes []AttrFacetDTO `json:"attributes"`
}

// AttrFacetDTO is one facet attribute.
type AttrFacetDTO struct {
	Table     string        `json:"table"`
	Attr      string        `json:"attr"`
	Role      string        `json:"role"`
	Score     float64       `json:"score"`
	Promoted  bool          `json:"promoted"`
	Numeric   bool          `json:"numeric"`
	Instances []InstanceDTO `json:"instances"`
}

// InstanceDTO is one facet entry.
type InstanceDTO struct {
	Label     string  `json:"label"`
	Lo        float64 `json:"lo,omitempty"`
	Hi        float64 `json:"hi,omitempty"`
	Aggregate float64 `json:"aggregate"`
	Score     float64 `json:"score"`
}

// --- handlers ---

func (s *Server) handleWarehouses(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.engines))
	for name := range s.engines {
		names = append(names, name)
	}
	writeJSON(w, http.StatusOK, map[string][]string{"warehouses": names})
}

type queryRequest struct {
	DB    string `json:"db"`
	Q     string `json:"q"`
	Limit int    `json:"limit"`
}

// maxQueryLimit caps how many interpretations a query response carries.
const maxQueryLimit = 50

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	p := profile.FromContext(r.Context())
	p.SetDB(req.DB)
	p.SetQuery(req.Q)
	e, ok := s.engines[req.DB]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown warehouse %q", req.DB))
		return
	}
	limit := req.Limit
	if limit <= 0 || limit > maxQueryLimit {
		limit = 20
	}
	// The engine is deterministic, so (warehouse, data version, ingest
	// sequence, limit, canonical query) fully identify the
	// interpretation list — enough for a weak ETag checked before the
	// pipeline runs. The ingest sequence makes client-side revalidation
	// conservative: any streamed append retires every conditional tag,
	// while the server-side answer cache stays delta-scoped. Traced and
	// profiled requests carry per-request payloads and are never
	// revalidated.
	var etag string
	if e.AnswerCacheEnabled() && !wantTrace(r) && !wantProfile(r) {
		etag = answerETag("query", req.DB,
			strconv.FormatUint(e.DataVersion(), 10),
			strconv.FormatUint(e.IngestSeq(), 10),
			strconv.Itoa(limit), kdapcore.CanonicalQuery(req.Q))
		if notModified(r, etag) {
			p.SetCacheOutcome("revalidated")
			writeNotModified(w, etag)
			return
		}
	}
	// Every query is traced so /metrics carries per-stage latency; the
	// tree is serialized into the response only behind ?trace=1.
	tr, ctx := traceRequest(r, "query")
	nets, outcome, err := e.DifferentiateBatchedCtx(ctx, req.Q)
	tr.Finish()
	s.observeStages(tr)
	p.SetStages(tr.Stages())
	if err != nil {
		s.writePipelineError(w, r, "/api/query", err, http.StatusBadRequest)
		return
	}
	p.SetCacheOutcome(outcome.String())
	if len(nets) > limit {
		nets = nets[:limit]
	}
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	w.Header().Set(cacheHeaderName, outcome.String())
	id := s.putSession(&session{db: req.DB, nets: nets})
	resp := QueryResponse{Session: id, Query: req.Q}
	if wantTrace(r) {
		resp.Trace = tr.JSON()
	}
	if wantProfile(r) {
		// Seal the event now so the inline copy shows the final
		// disposition; its duration therefore excludes response
		// serialization (the flight-recorder copy is the same event).
		p.Finish(http.StatusOK, profile.DispositionOK, nil)
		resp.Profile = p.Snapshot()
	}
	for i, sn := range nets {
		dto := InterpretationDTO{Rank: i + 1, Score: sn.Score, Signature: sn.DomainSignature()}
		for _, bg := range sn.Groups {
			g := HitGroupDTO{
				Table: bg.Group.Table, Attr: bg.Group.Attr,
				Role: bg.Path.Role, Alias: bg.Alias(), Phrase: bg.Group.Phrase,
			}
			for _, h := range bg.Group.Hits {
				g.Values = append(g.Values, h.Value.Text())
			}
			dto.Groups = append(dto.Groups, g)
		}
		resp.Interpretations = append(resp.Interpretations, dto)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSuggest returns "did you mean" corrections for the query's
// unmatched keywords.
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	e, ok := s.engines[req.DB]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown warehouse %q", req.DB))
		return
	}
	p := profile.FromContext(r.Context())
	p.SetDB(req.DB)
	p.SetQuery(req.Q)
	writeJSON(w, http.StatusOK, map[string]any{
		"suggestions": e.SuggestKeywords(req.Q, 3),
	})
}

type exploreRequest struct {
	Session       string `json:"session"`
	Pick          int    `json:"pick"`
	Mode          string `json:"mode"`
	TopKAttrs     int    `json:"topKAttrs"`
	TopKInstances int    `json:"topKInstances"`
	// Buckets and DisplayIntervals override the numeric-facet interval
	// counts (§5.2.2 / §5.3.2); zero keeps the defaults.
	Buckets          int `json:"buckets"`
	DisplayIntervals int `json:"displayIntervals"`
	// Partial opts into the degraded "best facets so far" response when
	// the per-request deadline fires during attribute scoring.
	Partial bool `json:"partial"`
}

// Client-supplied explore parameters are clamped to these maxima so a
// hostile body cannot force huge allocations (a million-bucket
// histogram per numeric attribute, say) through a public endpoint.
const (
	maxTopKAttrs        = 32
	maxTopKInstances    = 256
	maxBuckets          = 1000
	maxDisplayIntervals = 64
)

// validateExploreParams rejects out-of-range explore parameters,
// naming the offending field. Zero means "use the default" for every
// field, so only positives are range-checked and negatives are always
// rejected.
func validateExploreParams(req *exploreRequest) error {
	for _, f := range []struct {
		name string
		val  int
		max  int
	}{
		{"topKAttrs", req.TopKAttrs, maxTopKAttrs},
		{"topKInstances", req.TopKInstances, maxTopKInstances},
		{"buckets", req.Buckets, maxBuckets},
		{"displayIntervals", req.DisplayIntervals, maxDisplayIntervals},
	} {
		if f.val < 0 || f.val > f.max {
			return fmt.Errorf("%s out of range: %d (allowed 0..%d)", f.name, f.val, f.max)
		}
	}
	return nil
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req exploreRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := validateExploreParams(&req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	e, sn, db, ok := s.resolve(w, req.Session, req.Pick)
	if !ok {
		return
	}
	p := profile.FromContext(r.Context())
	p.SetDB(db)
	p.SetQuery(sn.DomainSignature())
	opts := kdapcore.DefaultExploreOptions()
	opts.Parallel = true
	switch req.Mode {
	case "", "surprise":
	case "bellwether":
		opts.Mode = kdapcore.Bellwether
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q", req.Mode))
		return
	}
	if req.TopKAttrs > 0 {
		opts.TopKAttrs = req.TopKAttrs
	}
	if req.TopKInstances > 0 {
		opts.TopKInstances = req.TopKInstances
	}
	if req.Buckets > 0 {
		opts.Buckets = req.Buckets
	}
	if req.DisplayIntervals > 0 {
		opts.DisplayIntervals = req.DisplayIntervals
	}
	opts.PartialOnDeadline = req.Partial
	// Same revalidation contract as /api/query: the explore cache key +
	// data version + ingest sequence determine the facets, so an
	// unchanged answer is a 304 without running the pipeline (and any
	// append conservatively retires the tag, even for subspaces the
	// appended rows never touched — the server-side cache still answers
	// those with X-KDAP-Cache: hit).
	var etag string
	if e.AnswerCacheEnabled() && !wantTrace(r) && !wantProfile(r) {
		if key, cacheable := kdapcore.ExploreCacheKey(sn, opts); cacheable {
			etag = answerETag("explore", db,
				strconv.FormatUint(e.DataVersion(), 10),
				strconv.FormatUint(e.IngestSeq(), 10), key)
			if notModified(r, etag) {
				p.SetCacheOutcome("revalidated")
				writeNotModified(w, etag)
				return
			}
		}
	}
	tr, ctx := traceRequest(r, "explore")
	f, outcome, err := e.ExploreBatchedCtx(ctx, sn, opts)
	tr.Finish()
	s.observeStages(tr)
	p.SetStages(tr.Stages())
	if err != nil {
		s.writePipelineError(w, r, "/api/explore", err, http.StatusUnprocessableEntity)
		return
	}
	p.SetCacheOutcome(outcome.String())
	if s.cluster != nil && f.Partial && len(f.DegradedNodes) > 0 {
		s.cluster.PartialAnswer()
	}
	// A deadline-degraded body must never be revalidated into
	// permanence: no ETag on partial responses.
	if etag != "" && !f.Partial {
		w.Header().Set("ETag", etag)
	}
	w.Header().Set(cacheHeaderName, outcome.String())
	dto := facetsDTO(f)
	if wantTrace(r) {
		dto.Trace = tr.JSON()
	}
	if wantProfile(r) {
		// See handleQuery: sealed before serialization on purpose.
		p.Finish(http.StatusOK, profile.DispositionOK, nil)
		dto.Profile = p.Snapshot()
	}
	writeJSON(w, http.StatusOK, dto)
}

// wantTrace reports whether the request asked for its span tree
// (?trace=1).
func wantTrace(r *http.Request) bool {
	return queryFlag(r, "trace")
}

// wantProfile reports whether the request asked for its wide event
// inline (?profile=1).
func wantProfile(r *http.Request) bool {
	return queryFlag(r, "profile")
}

func queryFlag(r *http.Request, name string) bool {
	switch r.URL.Query().Get(name) {
	case "1", "true", "yes":
		return true
	}
	return false
}

type drillRequest struct {
	Session string `json:"session"`
	Pick    int    `json:"pick"`
	Table   string `json:"table"`
	Attr    string `json:"attr"`
	Role    string `json:"role"`
	// Value drills into a categorical instance…
	Value string `json:"value"`
	// …or Lo/Hi (with Numeric true) into a numeric range.
	Numeric bool    `json:"numeric"`
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
}

func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	var req drillRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Numeric {
		// A NaN or infinite bound would poison every downstream
		// comparison; name the field like the explore validation does.
		for _, f := range []struct {
			name string
			val  float64
		}{{"lo", req.Lo}, {"hi", req.Hi}} {
			if math.IsNaN(f.val) || math.IsInf(f.val, 0) {
				writeError(w, http.StatusBadRequest, f.name+" must be a finite number")
				return
			}
		}
	}
	e, sn, db, ok := s.resolve(w, req.Session, req.Pick)
	if !ok {
		return
	}
	profile.FromContext(r.Context()).SetDB(db)
	attr := schemagraph.AttrRef{Table: req.Table, Attr: req.Attr}
	var drilled *kdapcore.StarNet
	var err error
	if req.Numeric {
		drilled, err = e.DrillRange(sn, attr, req.Role, req.Lo, req.Hi)
	} else {
		drilled, err = e.Drill(sn, attr, req.Role, relation.String(req.Value))
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := s.putSession(&session{db: db, nets: []*kdapcore.StarNet{drilled}})
	writeJSON(w, http.StatusOK, map[string]string{"session": id})
}

// resolve looks up a session and 1-based interpretation pick. The
// lookup doubles as the CLOCK touch that keeps active sessions alive
// under the store cap.
func (s *Server) resolve(w http.ResponseWriter, sessionID string, pick int) (*kdapcore.Engine, *kdapcore.StarNet, string, bool) {
	sess, ok := s.sessions.Get(sessionID)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return nil, nil, "", false
	}
	if pick < 1 || pick > len(sess.nets) {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("pick out of range 1..%d", len(sess.nets)))
		return nil, nil, "", false
	}
	return s.engines[sess.db], sess.nets[pick-1], sess.db, true
}

func (s *Server) putSession(sess *session) string {
	id := "s" + strconv.FormatUint(s.nextID.Add(1), 36)
	s.sessions.Put(id, sess)
	return id
}

func facetsDTO(f *kdapcore.Facets) FacetsDTO {
	out := FacetsDTO{
		SubspaceSize: f.SubspaceSize, TotalAggregate: f.TotalAggregate,
		Partial: f.Partial, DegradedNodes: f.DegradedNodes,
	}
	for _, d := range f.Dimensions {
		dd := DimensionFacetsDTO{Dimension: d.Dimension, Hitted: d.Hitted}
		for _, a := range d.Attributes {
			score := a.Score
			if math.IsInf(score, 0) || math.IsNaN(score) {
				// JSON has no Inf; promoted facets carry their rank in
				// the Promoted flag instead.
				score = 0
			}
			ad := AttrFacetDTO{
				Table: a.Attr.Table, Attr: a.Attr.Attr, Role: a.Role,
				Score: score, Promoted: a.Promoted, Numeric: a.Numeric,
			}
			for _, inst := range a.Instances {
				ad.Instances = append(ad.Instances, InstanceDTO{
					Label: inst.Label, Lo: inst.Lo, Hi: inst.Hi,
					Aggregate: inst.Aggregate, Score: inst.Score,
				})
			}
			dd.Attributes = append(dd.Attributes, ad)
		}
		out.Dimensions = append(out.Dimensions, dd)
	}
	return out
}

// --- JSON plumbing ---

func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
