package server

import (
	"context"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"kdap/internal/dataset"
)

// counterSum sums every series of one counter family in an exposition
// body (label sets differ; the storm only cares about the total).
func counterSum(t *testing.T, body, family string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if rest != "" && rest[0] != '{' && rest[0] != ' ' {
			continue // a longer family name sharing the prefix
		}
		i := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// A concurrent storm against a tiny admission envelope, with a fraction
// of clients disconnecting mid-request, must leave no residue: the
// in-flight and queued gauges converge to zero, and every shed the
// counter claims corresponds to a real admission rejection (>= the 503s
// clients actually saw — disconnected clients never see theirs).
func TestAdmissionMetricsConvergeAfterStorm(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxInflight = 2
	opts.MaxQueue = 2
	opts.QueueWait = 20 * time.Millisecond
	srv := NewWithOptions(map[string]*dataset.Warehouse{"ebiz": dataset.EBiz()}, opts)
	srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 32
	var shed503 atomic.Int64
	var ok200 atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				// A third of the clients hang up quickly — some while
				// queued, some mid-pipeline.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx,
					time.Duration(1+rand.Intn(5))*time.Millisecond)
				defer cancel()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/api/query", strings.NewReader(`{"db":"ebiz","q":"Columbus LCD"}`))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return // client disconnect; the server side must still clean up
			}
			defer resp.Body.Close()
			_, _ = io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusServiceUnavailable:
				shed503.Add(1)
			case http.StatusOK:
				ok200.Add(1)
			}
		}(i)
	}
	wg.Wait()

	// The handlers have all returned to their clients; give the server
	// side a bounded moment to release slots and drain the queue.
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.inflight() != 0 || srv.adm.queued() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission did not drain: inflight=%d queued=%d",
				srv.adm.inflight(), srv.adm.queued())
		}
		time.Sleep(5 * time.Millisecond)
	}

	body := scrape(t, ts.URL)
	if !strings.Contains(body, "kdap_requests_inflight 0") {
		t.Errorf("inflight gauge nonzero:\n%s", grepLines(body, "kdap_requests_inflight"))
	}
	if !strings.Contains(body, "kdap_requests_queued 0") {
		t.Errorf("queued gauge nonzero:\n%s", grepLines(body, "kdap_requests_queued"))
	}
	shedTotal := counterSum(t, body, "kdap_requests_shed_total")
	if shedTotal < float64(shed503.Load()) {
		t.Errorf("shed counter %v < observed 503s %d", shedTotal, shed503.Load())
	}
	if ok200.Load() == 0 {
		t.Error("storm produced no successful requests; envelope too tight to test convergence")
	}
	// Every admitted-and-completed request reached the flight recorder;
	// shed ones carry the shed disposition there too.
	if evs := srv.FlightRecorder().InFlight(); len(evs) != 0 {
		t.Errorf("flight recorder still tracks %d in-flight events", len(evs))
	}
}
