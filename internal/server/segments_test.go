package server

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/persist"
)

// TestServeSegmentedWarehouse serves EBiz twice — resident and with the
// fact table disk-backed under a tiny cache budget — and requires the
// same interpretation list and explore body, plus the five
// kdap_segments_* families on /metrics with a live paged_in count.
func TestServeSegmentedWarehouse(t *testing.T) {
	resident := dataset.EBiz()
	backed, store, err := persist.BackedWarehouseOpts(t.TempDir(), dataset.EBiz(),
		persist.SegmentWriterOptions{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	mk := func(wh *dataset.Warehouse) *httptest.Server {
		opts := DefaultOptions()
		opts.Shards = 4
		opts.SegmentCacheMB = 1
		srv := NewWithOptions(map[string]*dataset.Warehouse{"ebiz": wh}, opts)
		srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		return ts
	}
	rts, bts := mk(resident), mk(backed)

	run := func(ts *httptest.Server) (QueryResponse, string) {
		var qr QueryResponse
		post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus LCD"}, &qr)
		if len(qr.Interpretations) == 0 {
			t.Fatal("no interpretations")
		}
		resp, err := http.Post(ts.URL+"/api/explore", "application/json",
			strings.NewReader(`{"session":"`+qr.Session+`","pick":1}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explore: %d %s", resp.StatusCode, body)
		}
		return qr, string(body)
	}
	rq, rb := run(rts)
	bq, bb := run(bts)
	if len(rq.Interpretations) != len(bq.Interpretations) {
		t.Fatalf("interpretations: %d resident, %d backed",
			len(rq.Interpretations), len(bq.Interpretations))
	}
	for i := range rq.Interpretations {
		if rq.Interpretations[i].Signature != bq.Interpretations[i].Signature {
			t.Fatalf("interpretation %d signature diverges", i)
		}
	}
	if rb != bb {
		t.Fatalf("explore bodies diverge:\nresident: %s\nbacked:   %s", rb, bb)
	}

	resp, err := http.Get(bts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{
		"kdap_segments_resident_total",
		"kdap_segments_paged_in_total",
		"kdap_segments_evicted_total",
		"kdap_segments_skipped_bloom_total",
		"kdap_segments_skipped_zone_total",
	} {
		if !strings.Contains(string(metrics), fam) {
			t.Errorf("metrics missing %s", fam)
		}
	}
	if store.Stats().PagedIn == 0 {
		t.Error("backed serving paged nothing in")
	}

	// The resident server must not register segment families.
	resp2, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rm, _ := io.ReadAll(resp2.Body)
	if strings.Contains(string(rm), "kdap_segments_") {
		t.Error("resident server exposes segment families")
	}
}
