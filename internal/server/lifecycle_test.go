package server

// Tests for the request-lifecycle layer: admission control (shedding,
// queue release on client disconnect), per-request deadlines, the
// pipeline-error → HTTP status mapping, and explore parameter clamping.

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"kdap/internal/dataset"
)

func newLifecycleServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewWithOptions(map[string]*dataset.Warehouse{"ebiz": dataset.EBiz()}, opts)
	srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

// TestAdmissionShedOverHTTP saturates a 1-slot server and checks the
// load-shedding contract: 503 with Retry-After once the queue wait
// expires, the shed counter on /metrics, and recovery after the slot
// frees.
func TestAdmissionShedOverHTTP(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxInflight = 1
	opts.MaxQueue = 1
	opts.QueueWait = 25 * time.Millisecond
	ts, srv := newLifecycleServer(t, opts)

	// Occupy the only in-flight slot so every API request must queue.
	release, _, admitted := srv.adm.acquire(context.Background())
	if !admitted {
		t.Fatal("could not take the idle server's slot")
	}

	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"db":"ebiz","q":"Columbus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After header")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), `kdap_requests_shed_total{route="/api/query"} 1`) {
		t.Error("/metrics missing the shed counter increment")
	}

	// Capacity freed: the same request is admitted and succeeds.
	release()
	resp, err = http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"db":"ebiz","q":"Columbus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
	if got := srv.adm.inflight(); got != 0 {
		t.Errorf("inflight after request finished: %d, want 0", got)
	}
}

// TestAdmissionQueueFull checks the two immediate-shed paths on the
// admission controller itself: a full queue rejects without waiting,
// and a queued waiter whose context ends frees its queue position.
func TestAdmissionQueueFull(t *testing.T) {
	a := newAdmission(1, 1, time.Minute)
	release, _, admitted := a.acquire(context.Background())
	if !admitted {
		t.Fatal("first acquire should take the slot")
	}

	// Park one waiter in the queue.
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterDone := make(chan bool, 1)
	go func() {
		_, _, ok := a.acquire(waiterCtx)
		waiterDone <- ok
	}()
	deadline := time.Now().Add(2 * time.Second)
	for a.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: the next acquire must shed immediately, not wait out
	// the (one minute) maxWait.
	start := time.Now()
	if _, _, ok := a.acquire(context.Background()); ok {
		t.Error("acquire admitted past a full queue")
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("full-queue shed took %v; should be immediate", d)
	}

	// The waiter's client goes away: its queue position must free.
	cancelWaiter()
	if ok := <-waiterDone; ok {
		t.Error("cancelled waiter reported admitted")
	}
	deadline = time.Now().Add(2 * time.Second)
	for a.queued() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled waiter did not free its queue position")
		}
		time.Sleep(time.Millisecond)
	}

	// With the slot released, admission works again.
	release()
	release2, _, admitted := a.acquire(context.Background())
	if !admitted {
		t.Fatal("acquire after release should be admitted")
	}
	release2()
}

// TestAdmissionClientDisconnect runs the disconnect path over real
// HTTP: a request queued behind a saturated server whose client hangs
// up must release its queue slot so later requests are not blocked by
// a ghost.
func TestAdmissionClientDisconnect(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxInflight = 1
	opts.MaxQueue = 1
	opts.QueueWait = time.Minute // only the client disconnect can free the waiter
	ts, srv := newLifecycleServer(t, opts)

	release, _, admitted := srv.adm.acquire(context.Background())
	if !admitted {
		t.Fatal("could not take the idle server's slot")
	}
	defer release()

	// An empty body matters: net/http only watches for client
	// disconnects (cancelling r.Context()) once no request body
	// remains, and the queued handler has not read its body yet.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/api/query", http.NoBody)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for srv.adm.queued() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	cancel() // client hangs up while queued
	if err := <-errc; err == nil {
		t.Error("cancelled client request reported success")
	}
	deadline = time.Now().Add(2 * time.Second)
	for srv.adm.queued() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnected client's queue slot was not freed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueryTimeoutMapsTo504 gives the server an already-impossible
// per-request deadline and checks the pipeline surfaces it as 504 and
// counts it on /metrics.
func TestQueryTimeoutMapsTo504(t *testing.T) {
	opts := DefaultOptions()
	opts.QueryTimeout = time.Nanosecond
	ts, _ := newLifecycleServer(t, opts)

	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		strings.NewReader(`{"db":"ebiz","q":"Columbus"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("1ns deadline: status %d, want 504", resp.StatusCode)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), `kdap_requests_cancelled_total{reason="deadline",route="/api/query"}`) &&
		!strings.Contains(string(body), `kdap_requests_cancelled_total{route="/api/query",reason="deadline"}`) {
		t.Error("/metrics missing the deadline cancellation counter")
	}
}

// TestPipelineErrorMapping pins the error → status translation used by
// every query-executing handler.
func TestPipelineErrorMapping(t *testing.T) {
	_, srv := newTestServerAndHandler(t)
	cases := []struct {
		err    error
		status int
	}{
		{context.Canceled, 499},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{errors.New("no such attribute"), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/api/explore", nil)
		srv.writePipelineError(rec, req, "/api/explore", c.err, http.StatusUnprocessableEntity)
		if rec.Code != c.status {
			t.Errorf("%v: status %d, want %d", c.err, rec.Code, c.status)
		}
	}
}

// TestExploreParamClamping sends out-of-range explore parameters and
// checks each is rejected with 400 naming the offending field.
// Validation runs before session resolution, so no session is needed.
func TestExploreParamClamping(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		body  string
		field string
	}{
		{`{"session":"s1","pick":1,"topKAttrs":33}`, "topKAttrs"},
		{`{"session":"s1","pick":1,"topKAttrs":-1}`, "topKAttrs"},
		{`{"session":"s1","pick":1,"topKInstances":257}`, "topKInstances"},
		{`{"session":"s1","pick":1,"buckets":1001}`, "buckets"},
		{`{"session":"s1","pick":1,"buckets":-5}`, "buckets"},
		{`{"session":"s1","pick":1,"displayIntervals":65}`, "displayIntervals"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/api/explore", "application/json",
			strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.body, resp.StatusCode)
			continue
		}
		if !strings.Contains(string(body), c.field) {
			t.Errorf("%s: error %q does not name field %s", c.body, body, c.field)
		}
	}

	// In-range values still reach session resolution (404, not 400).
	resp, err := http.Post(ts.URL+"/api/explore", "application/json",
		strings.NewReader(`{"session":"ghost","pick":1,"topKAttrs":32,"buckets":1000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("max in-range params: status %d, want 404", resp.StatusCode)
	}
}
