package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"kdap/internal/dataset"
)

// ebizFactRow builds one valid TRANSITEM row (the EBiz fact schema:
// ItemKey, TransKey, ProductKey, Quantity, UnitPrice) keyed past the
// seeded range.
func ebizFactRow(itemKey int) []any {
	return []any{itemKey, 1, 1, 2, 19.99}
}

func TestIngestAppendsRows(t *testing.T) {
	ts := newTestServer(t)

	rows := make([][]any, 3)
	for i := range rows {
		rows[i] = ebizFactRow(dataset.EBizFactCount + i + 1)
	}
	var resp IngestResponse
	r := post(t, ts, "/api/ingest", map[string]any{"db": "ebiz", "rows": rows}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", r.StatusCode)
	}
	if resp.Start != dataset.EBizFactCount || resp.Rows != 3 {
		t.Fatalf("append landed at [%d,+%d), want [%d,+3)", resp.Start, resp.Rows, dataset.EBizFactCount)
	}
	if resp.FactRows != dataset.EBizFactCount+3 {
		t.Fatalf("factRows = %d, want %d", resp.FactRows, dataset.EBizFactCount+3)
	}
	if resp.IngestSeq != 1 {
		t.Fatalf("ingestSeq = %d, want 1", resp.IngestSeq)
	}
	if resp.NewTerms != 0 {
		t.Fatalf("newTerms = %d on a fact with no full-text columns", resp.NewTerms)
	}

	// The health probe and the fact-rows gauge read the live count.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Warehouses["ebiz"] != dataset.EBizFactCount+3 {
		t.Fatalf("healthz rows = %d, want %d", h.Warehouses["ebiz"], dataset.EBizFactCount+3)
	}
	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	raw, _ := io.ReadAll(m.Body)
	for _, want := range []string{
		`kdap_ingest_batches_total{db="ebiz"} 1`,
		`kdap_ingest_rows_total{db="ebiz"} 3`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestIngestRejectsBadBatches: every rejection leaves the warehouse
// untouched — batches are atomic.
func TestIngestRejectsBadBatches(t *testing.T) {
	ts := newTestServer(t)
	for _, tc := range []struct {
		name   string
		body   map[string]any
		status int
	}{
		{"unknown db", map[string]any{"db": "nope", "rows": [][]any{ebizFactRow(1)}}, http.StatusNotFound},
		{"empty rows", map[string]any{"db": "ebiz", "rows": [][]any{}}, http.StatusBadRequest},
		{"arity", map[string]any{"db": "ebiz", "rows": [][]any{{1, 2, 3}}}, http.StatusBadRequest},
		{"kind", map[string]any{"db": "ebiz", "rows": [][]any{{1, 1, 1, "two", 19.99}}}, http.StatusBadRequest},
		{"fractional int", map[string]any{"db": "ebiz", "rows": [][]any{{1, 1, 1, 2.5, 19.99}}}, http.StatusBadRequest},
		{"atomic batch", map[string]any{"db": "ebiz", "rows": [][]any{
			ebizFactRow(dataset.EBizFactCount + 1), {1, 1, 1, "two", 19.99},
		}}, http.StatusBadRequest},
	} {
		var e map[string]string
		r := post(t, ts, "/api/ingest", tc.body, &e)
		if r.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, r.StatusCode, tc.status)
		}
		if e["error"] == "" {
			t.Errorf("%s: no error message", tc.name)
		}
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Warehouses["ebiz"] != dataset.EBizFactCount {
		t.Fatalf("rejected batches changed the row count: %d", h.Warehouses["ebiz"])
	}
}

// TestIngestRetiresETags: a conditional tag minted before an append must
// not revalidate afterwards (client-side invalidation is conservative),
// while the server-side differentiate cache — untouched by a plain
// measure append — still serves the repeat as a hit.
func TestIngestRetiresETags(t *testing.T) {
	ts := newTestServer(t)
	body := map[string]any{"db": "ebiz", "q": "Columbus LCD"}

	_, r1 := postRaw(t, ts, "/api/query", body, nil)
	etag := r1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on query response")
	}
	if _, r := postRaw(t, ts, "/api/query", body, http.Header{"If-None-Match": {etag}}); r.StatusCode != http.StatusNotModified {
		t.Fatalf("pre-append revalidation: %d, want 304", r.StatusCode)
	}

	var ing IngestResponse
	if r := post(t, ts, "/api/ingest", map[string]any{
		"db": "ebiz", "rows": [][]any{ebizFactRow(dataset.EBizFactCount + 1)},
	}, &ing); r.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", r.StatusCode)
	}

	_, r2 := postRaw(t, ts, "/api/query", body, http.Header{"If-None-Match": {etag}})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("post-append conditional status = %d, want 200", r2.StatusCode)
	}
	if got := r2.Header.Get("ETag"); got == etag || got == "" {
		t.Fatalf("post-append ETag = %q, want a fresh tag (old %q)", got, etag)
	}
	// No new full-text terms landed, so the differentiate answer itself
	// survived the append and the 200 was served from cache.
	if got := r2.Header.Get("X-KDAP-Cache"); got != "hit" {
		t.Fatalf("post-append X-KDAP-Cache = %q, want hit", got)
	}
}

// TestIngestDeltaScopedEviction: the append's eviction pass accounts for
// every cached explore answer — evicted + kept adds up — and an explore
// after the append still answers correctly.
func TestIngestDeltaScopedEviction(t *testing.T) {
	ts := newTestServer(t)
	var q QueryResponse
	post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus LCD"}, &q)
	if q.Session == "" {
		t.Fatal("no session")
	}
	exploreBody := map[string]any{"session": q.Session, "pick": 1}
	var f1 FacetsDTO
	if r := post(t, ts, "/api/explore", exploreBody, &f1); r.StatusCode != http.StatusOK {
		t.Fatalf("explore status %d", r.StatusCode)
	}

	var ing IngestResponse
	if r := post(t, ts, "/api/ingest", map[string]any{
		"db": "ebiz", "rows": [][]any{ebizFactRow(dataset.EBizFactCount + 1)},
	}, &ing); r.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", r.StatusCode)
	}
	if ing.EvictedAnswers+ing.KeptAnswers != 1 {
		t.Fatalf("evicted %d + kept %d, want the 1 cached explore accounted for",
			ing.EvictedAnswers, ing.KeptAnswers)
	}

	var f2 FacetsDTO
	if r := post(t, ts, "/api/explore", exploreBody, &f2); r.StatusCode != http.StatusOK {
		t.Fatalf("post-append explore status %d", r.StatusCode)
	}
	if f2.SubspaceSize < f1.SubspaceSize {
		t.Fatalf("subspace shrank across an append: %d -> %d", f1.SubspaceSize, f2.SubspaceSize)
	}
}
