package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"kdap/internal/telemetry"
)

// scrape fetches /metrics, validates the exposition format, and returns
// the body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}
	return buf.String()
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)

	// Drive a query+explore so the pipeline, cache, and kernel series
	// all carry data.
	var q QueryResponse
	post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus LCD"}, &q)
	post(t, ts, "/api/explore", map[string]any{"session": q.Session, "pick": 1}, &FacetsDTO{})

	body := scrape(t, ts.URL)
	for _, want := range []string{
		`kdap_http_requests_total{code="200",route="/api/query"}`,
		`kdap_http_request_seconds_bucket{`,
		`kdap_stage_seconds_bucket{stage="differentiate",le="+Inf"}`,
		`kdap_stage_seconds_bucket{stage="subspace_semijoin",le="+Inf"}`,
		`kdap_cache_misses_total{cache="subspace_rows",db="ebiz"}`,
		`kdap_olap_groupby_total{db="ebiz",path="vector"}`,
		`kdap_olap_scans_total{db="ebiz",mode="serial"}`,
		`kdap_fulltext_probe_seconds_count{db="ebiz"}`,
		`kdap_warehouse_fact_rows{db="ebiz"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

// spanNames flattens a span tree into its set of stage names.
func spanNames(sp *telemetry.SpanJSON, into map[string]bool) {
	if sp == nil {
		return
	}
	into[sp.Name] = true
	for _, c := range sp.Children {
		spanNames(c, into)
	}
}

func TestQueryAndExploreTraces(t *testing.T) {
	ts := newTestServer(t)

	var q QueryResponse
	resp := post(t, ts, "/api/query?trace=1", map[string]any{"db": "ebiz", "q": "Columbus LCD"}, &q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if q.Trace == nil {
		t.Fatal("no trace in ?trace=1 query response")
	}
	got := map[string]bool{}
	spanNames(q.Trace, got)
	for _, stage := range []string{
		"query", "differentiate", "filter_extract", "hit_probe",
		"phrase_merge", "seed_enum", "starnet_gen", "rank",
	} {
		if !got[stage] {
			t.Errorf("query trace missing stage %q (got %v)", stage, got)
		}
	}

	var f FacetsDTO
	resp = post(t, ts, "/api/explore?trace=1", map[string]any{"session": q.Session, "pick": 1}, &f)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status %d", resp.StatusCode)
	}
	if f.Trace == nil {
		t.Fatal("no trace in ?trace=1 explore response")
	}
	got = map[string]bool{}
	spanNames(f.Trace, got)
	for _, stage := range []string{
		"explore", "subspace_semijoin", "rollup_build", "facet_score",
		"groupby_kernel", "rollup_correlate",
	} {
		if !got[stage] {
			t.Errorf("explore trace missing stage %q (got %v)", stage, got)
		}
	}

	// Without ?trace=1 the tree stays server-side.
	var plain QueryResponse
	post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus"}, &plain)
	if plain.Trace != nil {
		t.Error("trace leaked into untraced response")
	}
}

func TestErrorPathsIncrementCounters(t *testing.T) {
	ts := newTestServer(t)

	oversized := `{"db":"ebiz","q":"` + strings.Repeat("x", 1<<20) + `"}`
	cases := []struct {
		path   string
		body   string
		status int
	}{
		{"/api/query", `{bad json`, http.StatusBadRequest},
		{"/api/query", `{"db":"ghost","q":"x"}`, http.StatusNotFound},
		{"/api/query", `{"db":"ebiz","q":"   "}`, http.StatusBadRequest},
		{"/api/query", oversized, http.StatusRequestEntityTooLarge},
		{"/api/explore", `{bad json`, http.StatusBadRequest},
		{"/api/explore", `{"session":"ghost","pick":1}`, http.StatusNotFound},
		{"/api/explore", oversized, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.path, resp.StatusCode, c.status)
		}
	}

	body := scrape(t, ts.URL)
	for _, want := range []string{
		`kdap_http_errors_total{route="/api/query"} 4`,
		`kdap_http_errors_total{route="/api/explore"} 3`,
		`kdap_http_requests_total{code="400",route="/api/query"} 2`,
		`kdap_http_requests_total{code="404",route="/api/query"} 1`,
		`kdap_http_requests_total{code="413",route="/api/query"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestDebugEndpoints(t *testing.T) {
	ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expvar status %d", resp.StatusCode)
	}
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("expvar output is not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("expvar missing memstats")
	}
}
