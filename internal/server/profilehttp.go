package server

// The HTTP face of the flight recorder: request-ID plumbing, the
// status→disposition mapping that completes each request's wide event,
// GET /debug/queries, and the SLO classification derived from completed
// events. The recorder itself (rings, in-flight table) lives in
// internal/telemetry/profile; this file is only the server glue.

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"kdap/internal/telemetry/profile"
)

// Flight-recorder depths: how many completed events each view retains.
// 64 recent events cover minutes of interactive traffic; the slow and
// errored rings retain their (much rarer) events far longer.
const (
	flightRecentN = 64
	flightSlowN   = 64
	flightErrN    = 64
)

// requestIDHeader is accepted from clients and echoed on every API
// response (generated when absent), so a slow request found in
// /debug/queries can be matched to the caller's own logs.
const requestIDHeader = "X-Request-ID"

// maxRequestIDLen bounds a client-supplied ID so a hostile header
// cannot bloat the flight recorder.
const maxRequestIDLen = 64

// errShed is the error recorded on profiles of shed requests.
var errShed = errors.New("shed by admission control: in-flight cap reached and queue full or wait expired")

// requestID extracts the client-supplied request ID, truncated to
// maxRequestIDLen. Empty means "generate one" (Recorder.Start does).
func requestID(r *http.Request) string {
	id := r.Header.Get(requestIDHeader)
	if len(id) > maxRequestIDLen {
		id = id[:maxRequestIDLen]
	}
	return id
}

// completeProfile seals a request's wide event with the status the
// response actually carried and moves it into the flight recorder.
// When a handler already sealed the event (pipeline errors, ?profile=1
// responses), Finish inside Complete is a no-op and the earlier
// disposition wins; this call still performs the ring classification
// and fires the SLO hook.
func (s *Server) completeProfile(p *profile.P, status int) {
	disp := profile.DispositionOK
	switch {
	case status == 499:
		disp = profile.DispositionCancelled
	case status == http.StatusGatewayTimeout:
		disp = profile.DispositionDeadline
	case status == http.StatusServiceUnavailable:
		disp = profile.DispositionShed
	case status >= 400:
		disp = profile.DispositionError
	}
	s.rec.Complete(p, status, disp, nil)
}

// FlightRecorder exposes the server's always-on recorder, for front
// ends and tests that want the raw views behind /debug/queries.
func (s *Server) FlightRecorder() *profile.Recorder { return s.rec }

// DebugQueriesResponse answers GET /debug/queries: the live in-flight
// table plus the recent / slow / errored rings, newest first (in-flight
// oldest first, so the longest-running request leads).
type DebugQueriesResponse struct {
	SlowThresholdMS float64          `json:"slowThresholdMs"`
	InFlight        []*profile.Event `json:"inflight"`
	Recent          []*profile.Event `json:"recent"`
	Slow            []*profile.Event `json:"slow"`
	Errored         []*profile.Event `json:"errored"`
}

// handleDebugQueries serves the flight recorder. Optional filters:
// ?route=/api/query, ?db=name, ?min_ms=12.5 (minimum duration, applied
// to every view including in-flight elapsed time).
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	route, db := q.Get("route"), q.Get("db")
	var minDur time.Duration
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "min_ms must be a non-negative number")
			return
		}
		minDur = time.Duration(ms * float64(time.Millisecond))
	}
	filt := func(evs []*profile.Event) []*profile.Event {
		return profile.Filter(evs, route, db, minDur)
	}
	writeJSON(w, http.StatusOK, DebugQueriesResponse{
		SlowThresholdMS: float64(s.rec.SlowThreshold().Microseconds()) / 1000,
		InFlight:        filt(s.rec.InFlight()),
		Recent:          filt(s.rec.Recent()),
		Slow:            filt(s.rec.Slow()),
		Errored:         filt(s.rec.Errored()),
	})
}

// apiRoutes are the query-executing routes, the label set the SLO
// counters are pre-registered over.
var apiRoutes = []string{"/api/query", "/api/suggest", "/api/explore", "/api/drill"}

const (
	sloGoodHelp = "API requests meeting the latency SLO (finished within the target and not a server failure), by route."
	sloBadHelp  = "API requests violating the latency SLO (over target, 5xx, or shed), by route. Client cancellations (499) count in neither."
)

// observeSLO is the recorder's completion hook: every finished wide
// event is classified good or bad against the latency target. Bad means
// over target, a server-side failure (5xx, which includes deadline 504
// and shed 503), or shed; client cancellations (499) are excluded from
// both sides — the client gave up, the server neither met nor missed
// the objective. 4xx client errors count good unless slow: a prompt
// rejection is correct service.
func (s *Server) observeSLO(ev *profile.Event) {
	if ev.Disposition == profile.DispositionCancelled {
		return
	}
	bad := ev.Status >= 500 ||
		ev.Disposition == profile.DispositionShed ||
		time.Duration(ev.DurationUS)*time.Microsecond > s.opts.SLOTarget
	name, help := "kdap_slo_good_total", sloGoodHelp
	if bad {
		name, help = "kdap_slo_bad_total", sloBadHelp
	}
	s.reg.Counter(name, help, "route", ev.Route).Inc()
}

// wireSLOMetrics pre-registers the SLO pair for every API route (so
// burn-rate queries see zeros instead of absent series from the first
// scrape) along with the shed and cancellation counters whose natural
// increment sites are rarely reached, and publishes the target itself.
func (s *Server) wireSLOMetrics() {
	for _, route := range apiRoutes {
		s.reg.Counter("kdap_slo_good_total", sloGoodHelp, "route", route).Add(0)
		s.reg.Counter("kdap_slo_bad_total", sloBadHelp, "route", route).Add(0)
		s.reg.Counter("kdap_requests_shed_total",
			"API requests shed by admission control (in-flight cap and queue full or wait expired).",
			"route", route).Add(0)
		for _, reason := range []string{"cancelled", "deadline"} {
			s.reg.Counter("kdap_requests_cancelled_total",
				"API requests ended by context cancellation or deadline, by route and reason.",
				"route", route, "reason", reason).Add(0)
		}
	}
	s.reg.GaugeFunc("kdap_slo_target_seconds",
		"The latency target requests are classified against (and the /debug/queries slow-ring threshold).",
		func() float64 { return s.opts.SLOTarget.Seconds() })
}
