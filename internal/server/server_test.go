package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kdap/internal/dataset"
)

func newTestServer(t *testing.T) *httptest.Server {
	ts, _ := newTestServerAndHandler(t)
	return ts
}

func newTestServerAndHandler(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	srv := New(map[string]*dataset.Warehouse{"ebiz": dataset.EBiz()})
	// Keep access logs out of the test output.
	srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

func post(t *testing.T, ts *httptest.Server, path string, body any, out any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp
}

func TestHealthAndWarehouses(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Version == "" || h.GoVersion == "" {
		t.Errorf("health shape: %+v", h)
	}
	if h.UptimeSecs < 0 {
		t.Errorf("negative uptime: %v", h.UptimeSecs)
	}
	if h.Warehouses["ebiz"] <= 0 {
		t.Errorf("fact rows missing: %+v", h.Warehouses)
	}

	var whs map[string][]string
	r2, err := http.Get(ts.URL + "/api/warehouses")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if err := json.NewDecoder(r2.Body).Decode(&whs); err != nil {
		t.Fatal(err)
	}
	if len(whs["warehouses"]) != 1 || whs["warehouses"][0] != "ebiz" {
		t.Errorf("warehouses = %v", whs)
	}
}

func TestQueryExploreDrillFlow(t *testing.T) {
	ts := newTestServer(t)

	var q QueryResponse
	resp := post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus LCD"}, &q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	if q.Session == "" || len(q.Interpretations) == 0 {
		t.Fatalf("query response: %+v", q)
	}
	if q.Interpretations[0].Rank != 1 || len(q.Interpretations[0].Groups) == 0 {
		t.Errorf("interpretation shape: %+v", q.Interpretations[0])
	}

	var f FacetsDTO
	resp = post(t, ts, "/api/explore", map[string]any{"session": q.Session, "pick": 1}, &f)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status %d", resp.StatusCode)
	}
	if f.SubspaceSize == 0 || len(f.Dimensions) == 0 {
		t.Fatalf("facets: %+v", f)
	}

	// Find a categorical instance and drill into it.
	var dr drillRequest
	dr.Session = q.Session
	dr.Pick = 1
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if !a.Numeric && len(a.Instances) > 0 {
				dr.Table, dr.Attr, dr.Role, dr.Value = a.Table, a.Attr, a.Role, a.Instances[0].Label
			}
		}
	}
	if dr.Table == "" {
		t.Fatal("nothing to drill")
	}
	var drilled map[string]string
	resp = post(t, ts, "/api/drill", dr, &drilled)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drill status %d", resp.StatusCode)
	}
	if drilled["session"] == "" || drilled["session"] == q.Session {
		t.Errorf("drill session: %v", drilled)
	}
	var f2 FacetsDTO
	resp = post(t, ts, "/api/explore", map[string]any{"session": drilled["session"], "pick": 1}, &f2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore after drill: %d", resp.StatusCode)
	}
	if f2.SubspaceSize == 0 || f2.SubspaceSize > f.SubspaceSize {
		t.Errorf("drill did not narrow: %d -> %d", f.SubspaceSize, f2.SubspaceSize)
	}
}

func TestExploreBellwetherMode(t *testing.T) {
	ts := newTestServer(t)
	var q QueryResponse
	post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Projectors"}, &q)
	var f FacetsDTO
	resp := post(t, ts, "/api/explore", map[string]any{
		"session": q.Session, "pick": 1, "mode": "bellwether", "topKAttrs": 2, "topKInstances": 3,
	}, &f)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, d := range f.Dimensions {
		nonPromoted := 0
		for _, a := range d.Attributes {
			if !a.Promoted {
				nonPromoted++
			}
			if len(a.Instances) > 3 {
				t.Errorf("instance cap ignored: %d", len(a.Instances))
			}
		}
		if nonPromoted > 2 {
			t.Errorf("attr cap ignored: %d", nonPromoted)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)

	cases := []struct {
		path   string
		body   string
		status int
	}{
		{"/api/query", `{"db":"nope","q":"x"}`, http.StatusNotFound},
		{"/api/query", `{"db":"ebiz","q":"   "}`, http.StatusBadRequest},
		{"/api/query", `{bad json`, http.StatusBadRequest},
		{"/api/query", `{"db":"ebiz","q":"x","unknown":1}`, http.StatusBadRequest},
		{"/api/explore", `{"session":"ghost","pick":1}`, http.StatusNotFound},
		{"/api/drill", `{"session":"ghost","pick":1}`, http.StatusNotFound},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s %s: status %d, want %d", c.path, c.body, resp.StatusCode, c.status)
		}
	}

	// Out-of-range pick on a real session.
	var q QueryResponse
	post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus"}, &q)
	resp := post(t, ts, "/api/explore", map[string]any{"session": q.Session, "pick": 999}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad pick: status %d", resp.StatusCode)
	}
	// Unknown mode.
	resp = post(t, ts, "/api/explore", map[string]any{"session": q.Session, "pick": 1, "mode": "zzz"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: status %d", resp.StatusCode)
	}
	// Wrong method.
	r, err := http.Get(ts.URL + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET query: status %d", r.StatusCode)
	}
}

func TestNoMatchQueryReturnsEmptyInterpretations(t *testing.T) {
	ts := newTestServer(t)
	var q QueryResponse
	resp := post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "zzzz qqqq"}, &q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(q.Interpretations) != 0 {
		t.Errorf("expected no interpretations, got %d", len(q.Interpretations))
	}
}

func TestSessionEviction(t *testing.T) {
	opts := DefaultOptions()
	opts.SessionCap = 3
	srv := NewWithOptions(map[string]*dataset.Warehouse{"ebiz": dataset.EBiz()}, opts)
	srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var first QueryResponse
	post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus"}, &first)
	for i := 0; i < 5; i++ {
		post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Projectors"}, &QueryResponse{})
	}
	st := srv.sessions.Stats()
	if st.Len > 3 {
		t.Errorf("session store grew past cap: %d", st.Len)
	}
	if st.Evictions == 0 {
		t.Error("no CLOCK evictions recorded past the cap")
	}
}

func TestDrillRangeOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	var q QueryResponse
	post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Projectors"}, &q)
	var f FacetsDTO
	post(t, ts, "/api/explore", map[string]any{"session": q.Session, "pick": 1}, &f)

	var dr drillRequest
	dr.Session, dr.Pick = q.Session, 1
	for _, d := range f.Dimensions {
		for _, a := range d.Attributes {
			if a.Numeric && len(a.Instances) > 1 {
				dr.Table, dr.Attr, dr.Role = a.Table, a.Attr, a.Role
				dr.Numeric = true
				dr.Lo, dr.Hi = a.Instances[0].Lo, a.Instances[0].Hi
			}
		}
	}
	if !dr.Numeric {
		t.Skip("no numeric facet")
	}
	var drilled map[string]string
	resp := post(t, ts, "/api/drill", dr, &drilled)
	if resp.StatusCode != http.StatusOK || drilled["session"] == "" {
		t.Fatalf("range drill: %d %v", resp.StatusCode, drilled)
	}
	var f2 FacetsDTO
	post(t, ts, "/api/explore", map[string]any{"session": drilled["session"], "pick": 1}, &f2)
	if f2.SubspaceSize == 0 || f2.SubspaceSize >= f.SubspaceSize {
		t.Errorf("range drill did not narrow: %d -> %d", f.SubspaceSize, f2.SubspaceSize)
	}
}

func TestUIPage(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{"<title>KDAP</title>", "/api/query", "/api/explore", "/api/drill"} {
		if !strings.Contains(body, want) {
			t.Errorf("UI missing %q", want)
		}
	}
	// Unknown paths are not swallowed by the root handler.
	r2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status %d", r2.StatusCode)
	}
}

func TestSuggestEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var out struct {
		Suggestions map[string][]string `json:"suggestions"`
	}
	resp := post(t, ts, "/api/suggest", map[string]any{"db": "ebiz", "q": "Colombus LCD"}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Suggestions["Colombus"]) == 0 {
		t.Errorf("no suggestion for typo: %v", out.Suggestions)
	}
	if _, ok := out.Suggestions["LCD"]; ok {
		t.Error("matched keyword suggested")
	}
	resp = post(t, ts, "/api/suggest", map[string]any{"db": "ghost", "q": "x"}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown db: %d", resp.StatusCode)
	}
}
