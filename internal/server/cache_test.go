package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kdap/internal/dataset"
)

// postRaw posts a JSON body and returns the raw response bytes plus the
// response itself, for header and byte-equality assertions.
func postRaw(t *testing.T, ts *httptest.Server, path string, body any, header http.Header) ([]byte, *http.Response) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw, resp
}

// TestQueryCacheMarkerAndHit: the first query is a miss, the repeat a
// hit, and both carry the same weak ETag.
func TestQueryCacheMarkerAndHit(t *testing.T) {
	ts := newTestServer(t)
	body := map[string]any{"db": "ebiz", "q": "Columbus LCD"}

	_, r1 := postRaw(t, ts, "/api/query", body, nil)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d", r1.StatusCode)
	}
	if got := r1.Header.Get("X-KDAP-Cache"); got != "miss" {
		t.Fatalf("first X-KDAP-Cache = %q, want miss", got)
	}
	etag := r1.Header.Get("ETag")
	if !strings.HasPrefix(etag, `W/"`) {
		t.Fatalf("ETag = %q, want weak tag", etag)
	}

	_, r2 := postRaw(t, ts, "/api/query", body, nil)
	if got := r2.Header.Get("X-KDAP-Cache"); got != "hit" {
		t.Fatalf("second X-KDAP-Cache = %q, want hit", got)
	}
	if r2.Header.Get("ETag") != etag {
		t.Fatalf("ETag changed across identical queries: %q vs %q", r2.Header.Get("ETag"), etag)
	}

	// Whitespace variants canonicalize to the same answer and tag.
	_, r3 := postRaw(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "  Columbus   LCD "}, nil)
	if got := r3.Header.Get("X-KDAP-Cache"); got != "hit" {
		t.Fatalf("variant X-KDAP-Cache = %q, want hit", got)
	}
	if r3.Header.Get("ETag") != etag {
		t.Fatal("whitespace variant produced a different ETag")
	}
}

// TestQueryIfNoneMatch304: presenting the ETag back revalidates without
// running the pipeline — 304, empty body, revalidated marker.
func TestQueryIfNoneMatch304(t *testing.T) {
	ts := newTestServer(t)
	body := map[string]any{"db": "ebiz", "q": "Columbus LCD"}
	_, r1 := postRaw(t, ts, "/api/query", body, nil)
	etag := r1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on query response")
	}

	raw, r2 := postRaw(t, ts, "/api/query", body, http.Header{"If-None-Match": {etag}})
	if r2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", r2.StatusCode)
	}
	if len(raw) != 0 {
		t.Fatalf("304 carried a %d-byte body", len(raw))
	}
	if got := r2.Header.Get("X-KDAP-Cache"); got != "revalidated" {
		t.Fatalf("X-KDAP-Cache = %q, want revalidated", got)
	}

	// A stale tag (different query) must not revalidate.
	_, r3 := postRaw(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus"},
		http.Header{"If-None-Match": {etag}})
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("mismatched tag status = %d, want 200", r3.StatusCode)
	}
}

// TestExploreCacheByteIdentical: a repeated explore is a hit and its
// body is byte-for-byte the first response, and If-None-Match → 304.
func TestExploreCacheByteIdentical(t *testing.T) {
	ts := newTestServer(t)
	var q QueryResponse
	post(t, ts, "/api/query", map[string]any{"db": "ebiz", "q": "Columbus LCD"}, &q)
	if q.Session == "" || len(q.Interpretations) == 0 {
		t.Fatalf("query response: %+v", q)
	}
	body := map[string]any{"session": q.Session, "pick": 1}

	cold, r1 := postRaw(t, ts, "/api/explore", body, nil)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first explore: %d: %s", r1.StatusCode, cold)
	}
	if got := r1.Header.Get("X-KDAP-Cache"); got != "miss" {
		t.Fatalf("first explore X-KDAP-Cache = %q, want miss", got)
	}
	etag := r1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on explore response")
	}

	warm, r2 := postRaw(t, ts, "/api/explore", body, nil)
	if got := r2.Header.Get("X-KDAP-Cache"); got != "hit" {
		t.Fatalf("second explore X-KDAP-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cached explore body differs from the cold computation")
	}

	raw, r3 := postRaw(t, ts, "/api/explore", body, http.Header{"If-None-Match": {etag}})
	if r3.StatusCode != http.StatusNotModified || len(raw) != 0 {
		t.Fatalf("explore revalidation: status=%d body=%dB, want 304 empty", r3.StatusCode, len(raw))
	}
}

// TestTraceBypassesRevalidation: ?trace=1 responses embed per-request
// span trees, so they carry no ETag and ignore If-None-Match.
func TestTraceBypassesRevalidation(t *testing.T) {
	ts := newTestServer(t)
	body := map[string]any{"db": "ebiz", "q": "Columbus LCD"}
	_, r1 := postRaw(t, ts, "/api/query", body, nil)
	etag := r1.Header.Get("ETag")

	raw, r2 := postRaw(t, ts, "/api/query?trace=1", body, http.Header{"If-None-Match": {etag}})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("traced request status = %d, want 200", r2.StatusCode)
	}
	if r2.Header.Get("ETag") != "" {
		t.Error("traced response carried an ETag")
	}
	var qr QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil || qr.Trace == nil {
		t.Fatalf("traced response missing span tree: err=%v", err)
	}
}

// TestAnswerCacheDisabledByOptions: AnswerCacheSize 0 turns the whole
// layer off — bypass markers, no ETags, no answer-cache metrics.
func TestAnswerCacheDisabledByOptions(t *testing.T) {
	opts := DefaultOptions()
	opts.AnswerCacheSize = 0
	srv := NewWithOptions(map[string]*dataset.Warehouse{"ebiz": dataset.EBiz()}, opts)
	srv.SetLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := map[string]any{"db": "ebiz", "q": "Columbus LCD"}
	for i := 0; i < 2; i++ {
		_, r := postRaw(t, ts, "/api/query", body, nil)
		if got := r.Header.Get("X-KDAP-Cache"); got != "bypass" {
			t.Fatalf("request %d X-KDAP-Cache = %q, want bypass", i, got)
		}
		if r.Header.Get("ETag") != "" {
			t.Fatalf("request %d carried an ETag with caching disabled", i)
		}
	}
	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	raw, _ := io.ReadAll(m.Body)
	if strings.Contains(string(raw), "kdap_answer_cache") {
		t.Fatal("answer-cache series exported with caching disabled")
	}
}

// TestAnswerCacheMetricsExported: the enabled cache exports its full
// series family, moving with traffic.
func TestAnswerCacheMetricsExported(t *testing.T) {
	ts := newTestServer(t)
	body := map[string]any{"db": "ebiz", "q": "Columbus LCD"}
	postRaw(t, ts, "/api/query", body, nil)
	postRaw(t, ts, "/api/query", body, nil)

	m, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	raw, _ := io.ReadAll(m.Body)
	text := string(raw)
	for _, series := range []string{
		"kdap_answer_cache_hits_total",
		"kdap_answer_cache_misses_total",
		"kdap_answer_cache_evictions_total",
		"kdap_answer_cache_coalesced_total",
		"kdap_answer_cache_entries",
		"kdap_answer_cache_bytes",
	} {
		if !strings.Contains(text, series+`{db="ebiz",phase="differentiate"}`) &&
			!strings.Contains(text, series+`{phase="differentiate",db="ebiz"}`) {
			t.Errorf("metric %s missing differentiate series", series)
		}
	}
	if !strings.Contains(text, `kdap_answer_cache_hits_total{db="ebiz",phase="differentiate"} 1`) &&
		!strings.Contains(text, `kdap_answer_cache_hits_total{phase="differentiate",db="ebiz"} 1`) {
		t.Error("differentiate hit not counted after warm query")
	}
}
