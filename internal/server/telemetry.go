package server

// HTTP observability: the request middleware (counters, latency
// histograms, structured access logs), the /metrics · /debug/pprof ·
// /debug/vars endpoints, and the wiring that bridges engine-side
// counters (caches, kernels, full-text probes) into the per-server
// metrics registry. Everything reads from instruments the hot paths
// already maintain; exposition cost is paid only when /metrics is
// scraped.

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"kdap/internal/cache"
	"kdap/internal/kdapcore"
	"kdap/internal/persist"
	"kdap/internal/relation"
	"kdap/internal/telemetry"
)

// statusRecorder captures the response status code for the request
// counters and the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// handle registers h under pattern, wrapped in the telemetry
// middleware: per-route request counters by status code, a request
// latency histogram, an error counter, and a structured access log
// line per request.
func (s *Server) handle(pattern, route string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		dur := time.Since(start)
		s.reg.Counter("kdap_http_requests_total",
			"HTTP requests by route and status code.",
			"route", route, "code", fmt.Sprint(sr.status)).Inc()
		s.reg.Histogram("kdap_http_request_seconds",
			"HTTP request latency by route.", nil,
			"route", route).Observe(dur.Seconds())
		if sr.status >= 400 {
			s.reg.Counter("kdap_http_errors_total",
				"HTTP error responses (status >= 400) by route.",
				"route", route).Inc()
		}
		s.logger.Info("request",
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", sr.status,
			"duration_ms", float64(dur.Microseconds())/1000,
			"remote", r.RemoteAddr,
		)
	})
}

// observeStages folds a finished trace's per-stage durations into the
// kdap_stage_seconds histograms, so /metrics carries pipeline-stage
// latency whether or not the client asked for the span tree.
func (s *Server) observeStages(tr *telemetry.Trace) {
	for stage, d := range tr.Stages() {
		s.reg.Histogram("kdap_stage_seconds",
			"KDAP pipeline stage latency (differentiate and explore sub-stages).",
			nil, "stage", stage).Observe(d.Seconds())
	}
}

// wireAdmissionMetrics registers the request-lifecycle series: the
// session store's CLOCK counters (kdap_session_*, deliberately a
// separate family from kdap_cache_* whose series carry a db label) and
// the admission controller's live gauges. The shed and cancelled
// counters are created lazily at their increment sites.
func (s *Server) wireAdmissionMetrics() {
	s.reg.CounterFunc("kdap_session_hits_total",
		"Session store lookups that found a live session.",
		func() float64 { return float64(s.sessions.Stats().Hits) })
	s.reg.CounterFunc("kdap_session_misses_total",
		"Session store lookups that missed (expired or unknown IDs).",
		func() float64 { return float64(s.sessions.Stats().Misses) })
	s.reg.CounterFunc("kdap_session_evictions_total",
		"Sessions evicted by the CLOCK sweep at the store cap.",
		func() float64 { return float64(s.sessions.Stats().Evictions) })
	s.reg.GaugeFunc("kdap_sessions_live",
		"Sessions currently held in the store.",
		func() float64 { return float64(s.sessions.Stats().Len) })
	s.reg.GaugeFunc("kdap_requests_inflight",
		"API requests currently admitted and executing.",
		func() float64 { return float64(s.adm.inflight()) })
	s.reg.GaugeFunc("kdap_requests_queued",
		"API requests waiting for an admission slot.",
		func() float64 { return float64(s.adm.queued()) })
}

// wireEngineMetrics bridges one warehouse engine's self-maintained
// counters into the registry as func-backed series labeled by db.
func (s *Server) wireEngineMetrics(db string, e *kdapcore.Engine) {
	for _, c := range []struct {
		name string
		fn   func() cache.Stats
	}{
		{"subspace_rows", e.RowsCacheStats},
		{"constraint", e.Executor().ConstraintCacheStats},
	} {
		fn := c.fn
		s.reg.CounterFunc("kdap_cache_hits_total",
			"Clock cache hits by cache and warehouse.",
			func() float64 { return float64(fn().Hits) }, "cache", c.name, "db", db)
		s.reg.CounterFunc("kdap_cache_misses_total",
			"Clock cache misses by cache and warehouse.",
			func() float64 { return float64(fn().Misses) }, "cache", c.name, "db", db)
		s.reg.CounterFunc("kdap_cache_evictions_total",
			"Clock cache evictions by cache and warehouse.",
			func() float64 { return float64(fn().Evictions) }, "cache", c.name, "db", db)
	}

	st := e.Executor().Stats
	for _, k := range []struct {
		op, path string
		fn       func() float64
	}{
		{"groupby", "vector", func() float64 { return float64(st().GroupByVec) }},
		{"groupby", "eval", func() float64 { return float64(st().GroupByEval) }},
		{"groupby", "reference", func() float64 { return float64(st().GroupByRef) }},
		{"aggregate", "vector", func() float64 { return float64(st().AggregateVec) }},
		{"aggregate", "eval", func() float64 { return float64(st().AggregateEval) }},
		{"aggregate", "reference", func() float64 { return float64(st().AggregateRef) }},
	} {
		s.reg.CounterFunc("kdap_olap_"+k.op+"_total",
			"OLAP "+k.op+" calls by execution path (columnar vector, per-row eval, row-at-a-time reference).",
			k.fn, "path", k.path, "db", db)
	}
	s.reg.CounterFunc("kdap_olap_scans_total",
		"Fused scan+aggregate kernel invocations by mode.",
		func() float64 { return float64(st().ParallelScans) }, "mode", "parallel", "db", db)
	s.reg.CounterFunc("kdap_olap_scans_total",
		"Fused scan+aggregate kernel invocations by mode.",
		func() float64 { return float64(st().SerialScans) }, "mode", "serial", "db", db)
	s.reg.CounterFunc("kdap_olap_kernel_chunks_total",
		"Worker chunks fanned out by parallel kernels.",
		func() float64 { return float64(st().KernelChunks) }, "db", db)
	s.reg.CounterFunc("kdap_olap_column_builds_total",
		"Cold fact-aligned column materializations by kind.",
		func() float64 { return float64(st().CodeVecBuilds) }, "kind", "code", "db", db)
	s.reg.CounterFunc("kdap_olap_column_builds_total",
		"Cold fact-aligned column materializations by kind.",
		func() float64 { return float64(st().FloatColBuilds) }, "kind", "float", "db", db)

	s.reg.CounterFunc("kdap_shards_scanned_total",
		"Shards the scatter-gather planner let through to a scan.",
		func() float64 { return float64(st().ShardsScanned) }, "db", db)
	s.reg.CounterFunc("kdap_shards_pruned_total",
		"Shards skipped by the planner, by evidence: a zone map missing the predicate's bound interval, or a constraint bitset empty over the shard's row range.",
		func() float64 { return float64(st().ShardsPrunedZone) }, "reason", "zone", "db", db)
	s.reg.CounterFunc("kdap_shards_pruned_total",
		"Shards skipped by the planner, by evidence: a zone map missing the predicate's bound interval, or a constraint bitset empty over the shard's row range.",
		func() float64 { return float64(st().ShardsPrunedBits) }, "reason", "bits", "db", db)

	s.reg.RegisterHistogram("kdap_fulltext_probe_seconds",
		"Full-text index probe latency (Search and SearchPhrase).",
		e.Index().ProbeHistogram(), "db", db)

	if e.BatchingEnabled() {
		bst := e.BatchStats
		s.reg.CounterFunc("kdap_batch_released_total",
			"Shared-scan batches released (window expiry or size cap).",
			func() float64 { return float64(bst().Batches) }, "db", db)
		s.reg.CounterFunc("kdap_batch_requests_total",
			"Requests that entered a shared-scan gather window.",
			func() float64 { return float64(bst().Requests) }, "db", db)
		s.reg.CounterFunc("kdap_batch_shared_scans_total",
			"Scan-scope computations served from a batch neighbor's work instead of recomputed.",
			func() float64 { return float64(bst().SharedScans) }, "db", db)
		s.reg.CounterFunc("kdap_batch_shared_answers_total",
			"Whole requests that adopted an identical in-flight batch member's result, by phase.",
			func() float64 { return float64(bst().SharedExplores) }, "phase", "explore", "db", db)
		s.reg.CounterFunc("kdap_batch_shared_answers_total",
			"Whole requests that adopted an identical in-flight batch member's result, by phase.",
			func() float64 { return float64(bst().SharedDifferentiates) }, "phase", "differentiate", "db", db)
		s.reg.RegisterHistogram("kdap_batch_size",
			"Requests gathered per released batch (bucket bounds are counts, not seconds).",
			e.BatchSizeHistogram(), "db", db)
	}

	s.reg.GaugeFunc("kdap_warehouse_fact_rows",
		"Fact table row count per warehouse (live — it grows under streaming ingest).",
		func() float64 { return float64(e.Executor().FactLen()) }, "db", db)

	ist := e.IngestStats
	s.reg.CounterFunc("kdap_ingest_batches_total",
		"Ingest batches accepted by the engine's append path, by warehouse.",
		func() float64 { return float64(ist().Batches) }, "db", db)
	s.reg.CounterFunc("kdap_ingest_rows_total",
		"Fact rows appended by streaming ingest, by warehouse.",
		func() float64 { return float64(ist().Rows) }, "db", db)
	s.reg.CounterFunc("kdap_ingest_new_terms_total",
		"Full-text terms first seen in an ingest batch, by warehouse.",
		func() float64 { return float64(ist().NewTerms) }, "db", db)
	s.reg.CounterFunc("kdap_ingest_answers_evicted_total",
		"Cached answers retired because an ingest batch's rows intersect their dependency scope, by warehouse.",
		func() float64 { return float64(ist().EvictedAnswers) }, "db", db)
	s.reg.CounterFunc("kdap_ingest_answers_kept_total",
		"Cached explore answers that survived an ingest batch under delta-scoped invalidation, by warehouse.",
		func() float64 { return float64(ist().KeptAnswers) }, "db", db)

	if e.AnswerCacheEnabled() {
		for _, p := range []struct {
			phase string
			fn    func() cache.AnswerStats
		}{
			{"differentiate", func() cache.AnswerStats { d, _, _ := e.AnswerCacheStats(); return d }},
			{"explore", func() cache.AnswerStats { _, x, _ := e.AnswerCacheStats(); return x }},
		} {
			fn := p.fn
			s.reg.CounterFunc("kdap_answer_cache_hits_total",
				"Answer cache hits by phase and warehouse.",
				func() float64 { return float64(fn().Hits) }, "phase", p.phase, "db", db)
			s.reg.CounterFunc("kdap_answer_cache_misses_total",
				"Answer cache misses by phase and warehouse.",
				func() float64 { return float64(fn().Misses) }, "phase", p.phase, "db", db)
			s.reg.CounterFunc("kdap_answer_cache_evictions_total",
				"Answer cache evictions (capacity, TTL expiry, and version-stamp invalidation) by phase and warehouse.",
				func() float64 { return float64(fn().Evictions) }, "phase", p.phase, "db", db)
			s.reg.CounterFunc("kdap_answer_cache_coalesced_total",
				"Requests that waited on an identical in-flight computation and shared its result, by phase and warehouse.",
				func() float64 { return float64(fn().Coalesced) }, "phase", p.phase, "db", db)
			s.reg.GaugeFunc("kdap_answer_cache_entries",
				"Answers currently stored, by phase and warehouse.",
				func() float64 { return float64(fn().Len) }, "phase", p.phase, "db", db)
			s.reg.GaugeFunc("kdap_answer_cache_bytes",
				"Estimated resident bytes of stored answers, by phase and warehouse.",
				func() float64 { return float64(fn().Bytes) }, "phase", p.phase, "db", db)
		}
	}
}

// wireSegmentMetrics bridges a disk-backed fact table's segment store
// counters into the registry, labeled by warehouse. The backing is
// matched structurally so the server stays agnostic of the concrete
// store type; backings without stats register nothing.
func (s *Server) wireSegmentMetrics(db string, b relation.ColumnBacking) {
	st, ok := b.(interface{ Stats() persist.SegStats })
	if !ok {
		return
	}
	s.reg.CounterFunc("kdap_segments_resident_total",
		"Segment reads served from the resident page cache, by warehouse.",
		func() float64 { return float64(st.Stats().Resident) }, "db", db)
	s.reg.CounterFunc("kdap_segments_paged_in_total",
		"Segment pages read from disk into the cache, by warehouse.",
		func() float64 { return float64(st.Stats().PagedIn) }, "db", db)
	s.reg.CounterFunc("kdap_segments_evicted_total",
		"Segment pages evicted to stay under the cache budget, by warehouse.",
		func() float64 { return float64(st.Stats().Evicted) }, "db", db)
	s.reg.CounterFunc("kdap_segments_skipped_bloom_total",
		"Segments skipped because a per-segment Bloom filter ruled the probed value out, by warehouse.",
		func() float64 { return float64(st.Stats().SkippedBloom) }, "db", db)
	s.reg.CounterFunc("kdap_segments_skipped_zone_total",
		"Segments skipped because the per-segment zone map missed the predicate's bound interval, by warehouse.",
		func() float64 { return float64(st.Stats().SkippedZone) }, "db", db)
}

// registerDebugEndpoints mounts /metrics, the pprof profile handlers,
// and the expvar dump. These bypass the access-log middleware on
// purpose — scrapes every few seconds would drown the log.
func (s *Server) registerDebugEndpoints() {
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
	s.mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
}

// wireRuntimeMetrics registers the Go runtime gauges the SLO runbook
// leans on (is the process GC-bound or goroutine-leaking?). MemStats
// reads stop the world briefly, so one read is cached and shared across
// the gauges for up to memStatsMaxAge — scrape-rate staleness, not
// request-rate cost.
func (s *Server) wireRuntimeMetrics() {
	const memStatsMaxAge = 500 * time.Millisecond
	var mu sync.Mutex
	var last time.Time
	var ms runtime.MemStats
	read := func() runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if time.Since(last) > memStatsMaxAge {
			runtime.ReadMemStats(&ms)
			last = time.Now()
		}
		return ms
	}
	s.reg.GaugeFunc("kdap_go_goroutines",
		"Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	s.reg.GaugeFunc("kdap_go_heap_alloc_bytes",
		"Bytes of live heap objects (MemStats.HeapAlloc, cached up to 500ms).",
		func() float64 { return float64(read().HeapAlloc) })
	s.reg.CounterFunc("kdap_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(read().PauseTotalNs) / 1e9 })
	s.reg.CounterFunc("kdap_go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { return float64(read().NumGC) })
}

// buildVersion reports the module version and VCS revision baked into
// the binary, "devel" under plain go test.
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	version := bi.Main.Version
	if version == "" || version == "(devel)" {
		version = "devel"
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" && len(kv.Value) >= 7 {
			return version + "+" + kv.Value[:7]
		}
	}
	return version
}

// HealthResponse answers GET /healthz: liveness plus enough build and
// warehouse detail to identify what is running.
type HealthResponse struct {
	Status     string         `json:"status"`
	Version    string         `json:"version"`
	GoVersion  string         `json:"goVersion"`
	UptimeSecs float64        `json:"uptimeSecs"`
	Warehouses map[string]int `json:"warehouses"` // name → fact rows
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Row counts are read live from each engine — streaming ingest grows
	// them past the startup snapshot in s.factRows.
	rows := make(map[string]int, len(s.engines))
	for name, e := range s.engines {
		rows[name] = e.Executor().FactLen()
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:     "ok",
		Version:    buildVersion(),
		GoVersion:  runtime.Version(),
		UptimeSecs: time.Since(s.start).Seconds(),
		Warehouses: rows,
	})
}
