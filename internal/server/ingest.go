package server

// Streaming ingest over HTTP: POST /api/ingest appends a batch of fact
// rows to one warehouse through the engine's incremental append path
// (kdapcore.AppendFacts). The route shares the query endpoints'
// lifecycle layer — admission control, per-request deadline, wide
// event — so a query storm and an ingest storm shed against the same
// budget, and adds its own guards: a larger body limit than the query
// routes (batches are bulky) and a per-batch row cap so one request
// cannot monopolize the single writer. See docs/INGEST.md.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"kdap/internal/relation"
	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

const (
	// maxIngestBody bounds the /api/ingest request body. Ingest batches
	// are far larger than query bodies (readJSON caps those at 1 MiB):
	// at the default row cap a worst-case all-string batch still fits.
	maxIngestBody = 16 << 20
	// maxIngestRows caps rows per batch. Appends are serialized by the
	// engine's ingest mutex, so the cap bounds how long one request can
	// hold the writer; clients split larger loads into multiple batches.
	maxIngestRows = 65536
)

// ingestRequest is the /api/ingest body: the target warehouse and the
// batch as row arrays in fact-schema column order. JSON values map onto
// the schema's kinds (numbers to int or float columns, strings to
// string columns, null anywhere).
type ingestRequest struct {
	DB   string              `json:"db"`
	Rows [][]json.RawMessage `json:"rows"`
}

// IngestResponse answers /api/ingest with the engine's append summary
// plus the warehouse's post-append state.
type IngestResponse struct {
	DB string `json:"db"`
	// Start and Rows delimit the accepted batch: rows [Start, Start+Rows).
	Start int `json:"start"`
	Rows  int `json:"rows"`
	// FactRows is the fact table's total row count after the append.
	FactRows int `json:"factRows"`
	// IngestSeq is the engine's batch sequence number after this batch;
	// it participates in the query endpoints' ETags.
	IngestSeq uint64 `json:"ingestSeq"`
	// NewTerms counts full-text terms first seen in this batch.
	NewTerms int `json:"newTerms,omitempty"`
	// EvictedAnswers and KeptAnswers report the delta-scoped cache
	// invalidation: how many cached answers this batch's rows touched,
	// and how many survived it.
	EvictedAnswers int                 `json:"evictedAnswers"`
	KeptAnswers    int                 `json:"keptAnswers"`
	Trace          *telemetry.SpanJSON `json:"trace,omitempty"`
}

// rejectIngest sheds one ingest request before the writer is touched,
// counting the rejection by reason.
func (s *Server) rejectIngest(w http.ResponseWriter, status int, reason, msg string) {
	s.reg.Counter("kdap_ingest_rejected_total",
		"Ingest batches rejected before any row landed, by reason (body over the byte limit, batch over the row cap, malformed rows, unknown warehouse).",
		"reason", reason).Inc()
	writeError(w, status, msg)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxIngestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.rejectIngest(w, http.StatusRequestEntityTooLarge, "body",
				fmt.Sprintf("request body exceeds %d bytes; split the batch", mbe.Limit))
			return
		}
		s.rejectIngest(w, http.StatusBadRequest, "json", "invalid JSON: "+err.Error())
		return
	}
	e, ok := s.engines[req.DB]
	if !ok {
		s.rejectIngest(w, http.StatusNotFound, "db", fmt.Sprintf("unknown warehouse %q", req.DB))
		return
	}
	if len(req.Rows) == 0 {
		s.rejectIngest(w, http.StatusBadRequest, "empty", "rows is empty")
		return
	}
	if len(req.Rows) > maxIngestRows {
		s.rejectIngest(w, http.StatusRequestEntityTooLarge, "rows",
			fmt.Sprintf("batch has %d rows (max %d); split the batch", len(req.Rows), maxIngestRows))
		return
	}
	p := profile.FromContext(r.Context())
	p.SetDB(req.DB)
	p.SetQuery(fmt.Sprintf("ingest %d rows", len(req.Rows)))

	fact := e.Graph().DB().Table(e.Graph().FactTable())
	rows, err := decodeFactRows(fact.Schema(), req.Rows)
	if err != nil {
		s.rejectIngest(w, http.StatusBadRequest, "decode", err.Error())
		return
	}

	tr, ctx := traceRequest(r, "ingest")
	res, err := e.AppendFacts(ctx, rows)
	tr.Finish()
	s.observeStages(tr)
	p.SetStages(tr.Stages())
	if err != nil {
		// AppendFacts validates the whole batch before any row lands, so
		// a rejection here leaves the warehouse untouched.
		s.rejectIngest(w, http.StatusBadRequest, "rows_invalid", err.Error())
		return
	}
	resp := IngestResponse{
		DB:             req.DB,
		Start:          res.Start,
		Rows:           res.Rows,
		FactRows:       fact.Len(),
		IngestSeq:      e.IngestSeq(),
		NewTerms:       res.NewTerms,
		EvictedAnswers: res.EvictedExplore + res.EvictedDiff,
		KeptAnswers:    res.KeptExplore,
	}
	if wantTrace(r) {
		resp.Trace = tr.JSON()
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeFactRows maps JSON rows onto the fact schema: each row must
// carry one value per column, each value decodable to its column's
// kind. The whole batch is rejected on the first bad value — nothing
// lands — and errors name the row, column, and expectation.
func decodeFactRows(schema *relation.Schema, raw [][]json.RawMessage) ([][]relation.Value, error) {
	cols := schema.Columns
	rows := make([][]relation.Value, len(raw))
	for i, rr := range raw {
		if len(rr) != len(cols) {
			return nil, fmt.Errorf("row %d has %d values, schema %s has %d columns", i, len(rr), schema.Name, len(cols))
		}
		row := make([]relation.Value, len(cols))
		for j, m := range rr {
			v, err := decodeValue(cols[j].Kind, m)
			if err != nil {
				return nil, fmt.Errorf("row %d column %s: %v", i, cols[j].Name, err)
			}
			row[j] = v
		}
		rows[i] = row
	}
	return rows, nil
}

// decodeValue decodes one JSON value against a declared column kind.
// JSON null maps to the relational NULL for any kind; numbers headed
// for int columns must be integral (no silent truncation).
func decodeValue(kind relation.Kind, m json.RawMessage) (relation.Value, error) {
	s := string(m)
	if s == "null" {
		return relation.Null(), nil
	}
	switch kind {
	case relation.KindInt:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("want integer, got %s", s)
		}
		return relation.Int(n), nil
	case relation.KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return relation.Value{}, fmt.Errorf("want number, got %s", s)
		}
		return relation.Float(f), nil
	case relation.KindString:
		var str string
		if err := json.Unmarshal(m, &str); err != nil {
			return relation.Value{}, fmt.Errorf("want string, got %s", s)
		}
		return relation.String(str), nil
	case relation.KindBool:
		switch s {
		case "true":
			return relation.Bool(true), nil
		case "false":
			return relation.Bool(false), nil
		}
		return relation.Value{}, fmt.Errorf("want bool, got %s", s)
	}
	return relation.Value{}, fmt.Errorf("unsupported column kind %v", kind)
}
