package server

// Admission control for the API routes: a bounded in-flight semaphore
// with a short bounded wait queue in front of it. Under overload the
// server sheds requests with 503 + Retry-After instead of queueing
// without bound — the melt-down mode this layer exists to prevent is a
// growing backlog of semijoins that will all be stale by the time they
// run. The queue absorbs short bursts (a slot usually frees within one
// query's latency); anything beyond it is shed immediately so the
// client can retry against fresher capacity.

import (
	"context"
	"time"
)

// admission is the semaphore pair. A nil *admission admits everything
// (the -max-inflight 0 "unlimited" configuration).
type admission struct {
	slots   chan struct{} // in-flight capacity
	queue   chan struct{} // waiters beyond the in-flight cap
	maxWait time.Duration // longest a request may sit queued
}

// newAdmission sizes the controller; maxInflight <= 0 disables it.
func newAdmission(maxInflight, maxQueue int, maxWait time.Duration) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if maxWait <= 0 {
		maxWait = 250 * time.Millisecond
	}
	return &admission{
		slots:   make(chan struct{}, maxInflight),
		queue:   make(chan struct{}, maxQueue),
		maxWait: maxWait,
	}
}

// acquire claims an in-flight slot, waiting in the bounded queue when
// the server is saturated. It returns the release func, the time spent
// queued, and whether the request was admitted. Not admitted means
// shed: the queue was full, the wait timed out, or the client went away
// while queued (its context ended — the queue position is freed either
// way, which is what lets a closed connection release capacity).
func (a *admission) acquire(ctx context.Context) (release func(), wait time.Duration, admitted bool) {
	if a == nil {
		return func() {}, 0, true
	}
	select {
	case a.slots <- struct{}{}:
		return a.release, 0, true
	default:
	}
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, 0, false
	}
	defer func() { <-a.queue }()
	start := time.Now()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.release, time.Since(start), true
	case <-timer.C:
		return nil, time.Since(start), false
	case <-ctx.Done():
		return nil, time.Since(start), false
	}
}

func (a *admission) release() { <-a.slots }

// inflight returns the number of admitted requests currently running.
func (a *admission) inflight() int {
	if a == nil {
		return 0
	}
	return len(a.slots)
}

// queued returns the number of requests waiting for a slot.
func (a *admission) queued() int {
	if a == nil {
		return 0
	}
	return len(a.queue)
}
