package server

import "net/http"

// handleUI serves the embedded single-page front end: a minimal vanilla
// JS client for the JSON API implementing the paper's Figure 1 loop in a
// browser — search box, interpretation list, facet columns, drill-down.
func (s *Server) handleUI(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(uiHTML))
}

const uiHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>KDAP</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; max-width: 72rem; }
h1 { font-size: 1.4rem; }
input, select, button { font-size: 1rem; padding: .35rem .5rem; }
#q { width: 28rem; }
.net { cursor: pointer; padding: .3rem .5rem; border-radius: .3rem; }
.net:hover { background: #eef; }
.net.sel { background: #dde6ff; }
.dims { display: flex; flex-wrap: wrap; gap: 1.2rem; margin-top: 1rem; }
.dim { border: 1px solid #ccd; border-radius: .4rem; padding: .6rem .8rem; min-width: 16rem; }
.dim h3 { margin: .1rem 0 .4rem; font-size: 1rem; }
.attr { margin: .4rem 0; }
.attr b { font-size: .92rem; }
.inst { cursor: pointer; display: flex; justify-content: space-between; gap: 1rem;
        font-size: .9rem; padding: .1rem .3rem; border-radius: .2rem; }
.inst:hover { background: #eef; }
.hit { color: #846; }
#crumbs { margin: .6rem 0; color: #567; }
#summary { font-weight: 600; margin-top: .8rem; }
.err { color: #a33; }
</style>
</head>
<body>
<h1>Keyword-Driven Analytical Processing</h1>
<div>
  <select id="db"></select>
  <input id="q" placeholder="Columbus LCD &mdash; or DealerPrice&gt;1000 Mountain Bikes" autofocus>
  <select id="mode"><option>surprise</option><option>bellwether</option></select>
  <button onclick="runQuery()">Search</button>
</div>
<div id="crumbs"></div>
<div id="nets"></div>
<div id="summary"></div>
<div id="dims" class="dims"></div>
<script>
let session = null, pick = 0, stack = [];

async function api(path, body) {
  const resp = await fetch(path, body ? {method: 'POST', body: JSON.stringify(body)} : undefined);
  const data = await resp.json();
  if (!resp.ok) throw new Error(data.error || resp.status);
  return data;
}

async function loadWarehouses() {
  const data = await api('/api/warehouses');
  const sel = document.getElementById('db');
  for (const name of data.warehouses.sort()) {
    const o = document.createElement('option');
    o.textContent = name;
    sel.appendChild(o);
  }
}

async function runQuery() {
  clear(['crumbs', 'nets', 'summary', 'dims']);
  stack = [];
  try {
    const data = await api('/api/query', {db: el('db').value, q: el('q').value});
    session = data.session;
    const nets = el('nets');
    if (!data.interpretations) { nets.textContent = 'no interpretations'; return; }
    data.interpretations.forEach(it => {
      const div = document.createElement('div');
      div.className = 'net';
      div.textContent = it.rank + '. [' + it.score.toFixed(4) + '] ' +
        it.groups.map(g => g.alias + '/' + g.attr + ' {' + g.values.slice(0, 3).join(' | ') + '}').join('  +  ');
      div.onclick = () => choose(it.rank, div);
      nets.appendChild(div);
    });
  } catch (e) { el('nets').innerHTML = '<span class="err">' + e.message + '</span>'; }
}

async function choose(rank, div) {
  document.querySelectorAll('.net').forEach(n => n.classList.remove('sel'));
  if (div) div.classList.add('sel');
  pick = rank;
  await explore(session, rank);
}

async function explore(sess, rank) {
  try {
    const f = await api('/api/explore', {session: sess, pick: rank, mode: el('mode').value});
    el('summary').textContent = f.subspaceSize + ' fact rows, aggregate ' + f.totalAggregate.toFixed(2);
    const dims = el('dims');
    dims.innerHTML = '';
    for (const d of f.dimensions) {
      const box = document.createElement('div');
      box.className = 'dim';
      box.innerHTML = '<h3>' + d.dimension + (d.hitted ? ' *' : '') + '</h3>';
      for (const a of d.attributes) {
        const attr = document.createElement('div');
        attr.className = 'attr';
        attr.innerHTML = '<b' + (a.promoted ? ' class="hit"' : '') + '>' + a.attr +
          (a.promoted ? ' (hit)' : ' ' + a.score.toFixed(3)) + '</b>';
        for (const inst of a.instances) {
          const row = document.createElement('div');
          row.className = 'inst';
          row.innerHTML = '<span>' + inst.label + '</span><span>' + inst.aggregate.toFixed(2) + '</span>';
          row.onclick = () => drill(a, inst);
          attr.appendChild(row);
        }
        box.appendChild(attr);
      }
      dims.appendChild(box);
    }
  } catch (e) { el('summary').innerHTML = '<span class="err">' + e.message + '</span>'; }
}

async function drill(a, inst) {
  const req = {session: session, pick: pick, table: a.table, attr: a.attr, role: a.role};
  if (a.numeric) { req.numeric = true; req.lo = inst.lo; req.hi = inst.hi; }
  else { req.value = inst.label; }
  try {
    const data = await api('/api/drill', req);
    stack.push({session: session, pick: pick});
    session = data.session;
    pick = 1;
    renderCrumbs(a.attr + ' = ' + inst.label);
    await explore(session, 1);
  } catch (e) { el('summary').innerHTML = '<span class="err">' + e.message + '</span>'; }
}

function renderCrumbs(label) {
  const c = el('crumbs');
  const span = document.createElement('span');
  span.textContent = (c.textContent ? ' › ' : 'drilled: ') + label;
  c.appendChild(span);
}

function el(id) { return document.getElementById(id); }
function clear(ids) { ids.forEach(id => el(id).innerHTML = ''); }
loadWarehouses();
document.getElementById('q').addEventListener('keydown', e => { if (e.key === 'Enter') runQuery(); });
</script>
</body>
</html>
`
