// Package e2e builds the real command binaries and drives them as a user
// would: scripted REPL sessions, snapshot generation and inspection, and
// experiment regeneration.
package e2e

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "kdap-e2e")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, cmd := range []string{"kdap", "kdapbench", "kdapgen"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(dir, cmd), "kdap/cmd/"+cmd).CombinedOutput()
		if err != nil {
			panic(cmd + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, stdin string, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, name), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", name, args, err, out)
	}
	return string(out)
}

func TestREPLSession(t *testing.T) {
	script := strings.Join([]string{
		"help",
		"Columbus LCD",
		"pick 3",
		"sql",
		"explain 3",
		"drill 1 1",
		"back",
		"mode bellwether",
		"csv",
		"quit",
	}, "\n") + "\n"
	out := run(t, script, "kdap", "-db", "ebiz")
	for _, want := range []string{
		"KDAP session on EBiz",
		"interpretations:",
		"Sub-dataspace:",
		"SELECT SUM(",
		"score ",
		"dimension,attribute,role", // CSV header
	} {
		if !strings.Contains(out, want) {
			t.Errorf("REPL output missing %q\n---\n%s", want, out)
		}
	}
}

func TestREPLSuggestions(t *testing.T) {
	out := run(t, "Colombus\nquit\n", "kdap", "-db", "ebiz")
	if !strings.Contains(out, "did you mean Columbus") {
		t.Errorf("no suggestion:\n%s", out)
	}
}

func TestREPLNumericPredicate(t *testing.T) {
	out := run(t, "Projectors UnitPrice>1000\npick 1\nquit\n", "kdap", "-db", "ebiz")
	if !strings.Contains(out, "Sub-dataspace:") {
		t.Errorf("predicate session failed:\n%s", out)
	}
}

func TestSnapshotRoundTripViaBinaries(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "ebiz.kdap")
	out := run(t, "", "kdapgen", "-out", snap, "-db", "ebiz")
	if !strings.Contains(out, "wrote") {
		t.Fatalf("kdapgen: %s", out)
	}
	info := run(t, "", "kdapgen", "-info", snap)
	if !strings.Contains(info, "fact=TRANSITEM") || !strings.Contains(info, "12 tables") {
		t.Errorf("info: %s", info)
	}
	dot := run(t, "", "kdapgen", "-dot", snap)
	if !strings.Contains(dot, "digraph schema") {
		t.Errorf("dot: %s", dot)
	}
	repl := run(t, "Columbus\nquit\n", "kdap", "-snapshot", snap)
	if !strings.Contains(repl, "interpretations:") {
		t.Errorf("snapshot REPL: %s", repl)
	}
}

func TestBenchTable1(t *testing.T) {
	out := run(t, "", "kdapbench", "-exp", "table1")
	if !strings.Contains(out, "Mountain Bikes") || !strings.Contains(out, "California") {
		t.Errorf("table1: %s", out)
	}
}

func TestCSVWarehouseViaBinaries(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("p.csv", "K,Name\n1,Widget\n2,Gadget\n")
	write("f.csv", "S,K,Amount\n1,1,10\n2,2,20\n3,1,5\n")
	write("manifest.json", `{
  "name": "Mini", "fact": "F", "strict": true,
  "tables": [
    {"name": "P", "file": "p.csv", "key": "K", "columns": [
      {"name": "K", "kind": "int"}, {"name": "Name", "kind": "string", "fullText": true}]},
    {"name": "F", "file": "f.csv", "key": "S", "columns": [
      {"name": "S", "kind": "int"}, {"name": "K", "kind": "int"}, {"name": "Amount", "kind": "float"}],
     "foreignKeys": [{"column": "K", "refTable": "P", "refColumn": "K"}]}
  ],
  "dimensions": [
    {"name": "Product", "tables": ["P"], "groupBy": [{"table": "P", "attr": "Name"}]}
  ]
}`)
	snap := filepath.Join(t.TempDir(), "mini.kdap")
	run(t, "", "kdapgen", "-out", snap, "-csv", dir)
	out := run(t, "Widget\nquit\n", "kdap", "-snapshot", snap)
	if !strings.Contains(out, "interpretations:") {
		t.Errorf("csv warehouse session: %s", out)
	}
}
