package telemetry

import (
	"strings"
	"testing"
)

// The drift gate and any diff-based tooling rely on the exposition being
// byte-stable: families sorted by name, series sorted by label set,
// regardless of registration order or map iteration order. Pin it.
const goldenExposition = `# HELP kdap_batch_size Batch sizes.
# TYPE kdap_batch_size histogram
kdap_batch_size_bucket{le="1"} 1
kdap_batch_size_bucket{le="4"} 2
kdap_batch_size_bucket{le="+Inf"} 3
kdap_batch_size_sum 13
kdap_batch_size_count 3
# HELP kdap_requests_total Requests served.
# TYPE kdap_requests_total counter
kdap_requests_total{code="200",route="/api/explore"} 2
kdap_requests_total{code="200",route="/api/query"} 5
kdap_requests_total{code="400",route="/api/query"} 1
# HELP kdap_sessions Live sessions.
# TYPE kdap_sessions gauge
kdap_sessions 3
# HELP kdap_uptime_seconds Uptime.
# TYPE kdap_uptime_seconds gauge
kdap_uptime_seconds 7.5
`

// populate registers the golden fixture's series following the given
// order permutation of the four counter series.
func populateGolden(r *Registry, order []int) {
	type reg struct {
		route, code string
		n           int64
	}
	regs := []reg{
		{"/api/query", "200", 5},
		{"/api/explore", "200", 2},
		{"/api/query", "400", 1},
	}
	for _, i := range order {
		rg := regs[i]
		r.Counter("kdap_requests_total", "Requests served.", "route", rg.route, "code", rg.code).Add(rg.n)
	}
	r.Gauge("kdap_sessions", "Live sessions.").Set(3)
	r.GaugeFunc("kdap_uptime_seconds", "Uptime.", func() float64 { return 7.5 })
	h := r.Histogram("kdap_batch_size", "Batch sizes.", []float64{1, 4})
	for _, v := range []float64{1, 4, 8} {
		h.Observe(v)
	}
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	populateGolden(r, []int{2, 0, 1})
	out := render(t, r)
	if out != goldenExposition {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", out, goldenExposition)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("golden exposition invalid: %v", err)
	}
}

// Two registries populated in different registration orders must render
// byte-identically, and repeated scrapes of one registry must agree.
func TestExpositionOrderDeterministic(t *testing.T) {
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}}
	var first string
	for _, ord := range orders {
		r := NewRegistry()
		populateGolden(r, ord)
		out := render(t, r)
		if first == "" {
			first = out
			if again := render(t, r); again != out {
				t.Error("two scrapes of the same registry differ")
			}
			continue
		}
		if out != first {
			t.Errorf("registration order %v changed the exposition:\n%s\nvs\n%s", ord, out, first)
		}
	}
}
