package profile

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ring is a fixed-size ring buffer of completed events. Each ring has
// its own mutex so the three views never contend with each other; a
// push is one lock, one store, one increment.
type ring struct {
	mu   sync.Mutex
	buf  []*Event
	next int
	n    int
}

func newRing(n int) *ring {
	if n < 1 {
		n = 1
	}
	return &ring{buf: make([]*Event, n)}
}

func (r *ring) push(ev *Event) {
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.n++
	r.mu.Unlock()
}

// snapshot returns the buffered events newest-first.
func (r *ring) snapshot() []*Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := r.n
	if k > len(r.buf) {
		k = len(r.buf)
	}
	out := make([]*Event, 0, k)
	for i := 1; i <= k; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Recorder is the always-on flight recorder: a live in-flight table
// plus recent / slow / errored ring buffers of completed wide events.
// Completed events are immutable, so snapshots hand out shared
// pointers without copying.
type Recorder struct {
	slowAfter  time.Duration
	seq        atomic.Uint64
	onComplete func(*Event)

	mu       sync.Mutex
	inflight map[*P]struct{}

	recent, slow, errored *ring
}

// NewRecorder builds a recorder keeping the last recentN completed
// events, plus slowN events slower than slowAfter and errN non-ok
// events. onComplete (optional) runs for every completed event — the
// server derives SLO good/bad counters there.
func NewRecorder(recentN, slowN, errN int, slowAfter time.Duration, onComplete func(*Event)) *Recorder {
	return &Recorder{
		slowAfter:  slowAfter,
		onComplete: onComplete,
		inflight:   make(map[*P]struct{}),
		recent:     newRing(recentN),
		slow:       newRing(slowN),
		errored:    newRing(errN),
	}
}

// SlowThreshold returns the duration after which a completed request
// lands in the slow ring.
func (r *Recorder) SlowThreshold() time.Duration { return r.slowAfter }

// Start opens a wide event for a request and registers it in the
// in-flight table. An empty id gets a generated one (clients that send
// X-Request-ID keep theirs).
func (r *Recorder) Start(route, id string) *P {
	if id == "" {
		id = "kdap-" + strconv.FormatUint(r.seq.Add(1), 36)
	}
	p := New(route, id)
	r.mu.Lock()
	r.inflight[p] = struct{}{}
	r.mu.Unlock()
	return p
}

// Complete seals the profile, moves it from the in-flight table into
// the rings, and fires the completion hook. The recent ring gets every
// event; the slow ring those over the threshold; the errored ring every
// non-ok disposition.
func (r *Recorder) Complete(p *P, status int, disposition string, err error) *Event {
	if p == nil {
		return nil
	}
	p.Finish(status, disposition, err)
	r.mu.Lock()
	delete(r.inflight, p)
	r.mu.Unlock()
	ev := p.Snapshot()
	r.recent.push(ev)
	if time.Duration(ev.DurationUS)*time.Microsecond >= r.slowAfter {
		r.slow.push(ev)
	}
	if ev.Disposition != DispositionOK {
		r.errored.push(ev)
	}
	if r.onComplete != nil {
		r.onComplete(ev)
	}
	return ev
}

// Recent returns the most recently completed events, newest first.
func (r *Recorder) Recent() []*Event { return r.recent.snapshot() }

// Slow returns recent events over the slow threshold, newest first.
func (r *Recorder) Slow() []*Event { return r.slow.snapshot() }

// Errored returns recent non-ok events, newest first.
func (r *Recorder) Errored() []*Event { return r.errored.snapshot() }

// InFlight snapshots the live table, oldest first (the longest-running
// request — usually the interesting one — leads).
func (r *Recorder) InFlight() []*Event {
	r.mu.Lock()
	ps := make([]*P, 0, len(r.inflight))
	for p := range r.inflight {
		ps = append(ps, p)
	}
	r.mu.Unlock()
	out := make([]*Event, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Snapshot())
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Filter narrows a snapshot to events matching route and db (empty
// matches all) with duration >= minDur.
func Filter(evs []*Event, route, db string, minDur time.Duration) []*Event {
	out := evs[:0:0]
	minUS := minDur.Microseconds()
	for _, ev := range evs {
		if route != "" && ev.Route != route {
			continue
		}
		if db != "" && ev.DB != db {
			continue
		}
		if ev.DurationUS < minUS {
			continue
		}
		out = append(out, ev)
	}
	return out
}
