package profile

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// The disabled path — no profile in the context — must not allocate:
// the instrumentation sites run on every kernel call of every request.
func TestDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		p := FromContext(ctx)
		p.AddKernelScan(true, 16, 1024)
		p.AddShards(2, 6, 0)
		p.AddFulltextProbe(128)
		p.AddSharedScan()
		p.AddAnneal(500)
		p.AddCandidates(12)
		p.SetCacheOutcome("miss")
		p.SetBatch(1, 4)
		p.Finish(200, DispositionOK, nil)
	})
	if allocs != 0 {
		t.Errorf("disabled path allocates: %.1f allocs/op", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var p *P
	p.SetDB("x")
	p.SetQuery("x")
	p.SetQueueWait(time.Second)
	p.MarkSharedAnswer()
	p.SetStages(map[string]time.Duration{"rank": time.Millisecond})
	if p.Snapshot() != nil {
		t.Error("nil profile snapshot should be nil")
	}
	if p.ID() != "" {
		t.Error("nil profile ID should be empty")
	}
	var ev *Event
	if !strings.Contains(ev.Render(), "no profile") {
		t.Error("nil event render")
	}
}

// Concurrent adds (the facet scorer fans out under one request) must be
// race-free and lossless.
func TestConcurrentAdds(t *testing.T) {
	p := New("explore", "r1")
	ctx := NewContext(context.Background(), p)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := FromContext(ctx)
			for i := 0; i < 100; i++ {
				q.AddKernelScan(true, 16, 10)
				q.AddShards(1, 1, 1)
				q.AddSharedScan()
			}
		}()
	}
	wg.Wait()
	ev := p.Snapshot()
	if ev.ParallelScans != 800 || ev.KernelStripes != 800*16 || ev.RowsScanned != 8000 {
		t.Errorf("lost kernel adds: %+v", ev)
	}
	if ev.ShardsScanned != 800 || ev.SharedScans != 800 {
		t.Errorf("lost shard/shared adds: %+v", ev)
	}
	if !ev.InFlight {
		t.Error("unfinished profile should snapshot as in-flight")
	}
}

func TestRecorderRingsAndViews(t *testing.T) {
	var completed []*Event
	rec := NewRecorder(4, 2, 2, 10*time.Millisecond, func(ev *Event) {
		completed = append(completed, ev)
	})

	// A fast ok request: recent only.
	p := rec.Start("/api/query", "")
	if p.ID() == "" {
		t.Error("empty request id not generated")
	}
	p.SetDB("ebiz")
	rec.Complete(p, 200, DispositionOK, nil)

	// A slow one (backdated start): recent + slow.
	p = rec.Start("/api/explore", "client-7")
	p.start = p.start.Add(-50 * time.Millisecond)
	p.SetDB("online")
	rec.Complete(p, 200, DispositionOK, nil)

	// An errored one: recent + errored.
	p = rec.Start("/api/query", "")
	rec.Complete(p, 504, DispositionDeadline, errors.New("deadline exceeded"))

	if got := len(rec.Recent()); got != 3 {
		t.Errorf("recent = %d, want 3", got)
	}
	slow := rec.Slow()
	if len(slow) != 1 || slow[0].ID != "client-7" {
		t.Errorf("slow view wrong: %+v", slow)
	}
	errv := rec.Errored()
	if len(errv) != 1 || errv[0].Disposition != DispositionDeadline || errv[0].Error == "" {
		t.Errorf("errored view wrong: %+v", errv)
	}
	if len(rec.InFlight()) != 0 {
		t.Error("in-flight table not drained")
	}
	if len(completed) != 3 {
		t.Errorf("completion hook fired %d times, want 3", len(completed))
	}

	// Newest first, ring wraps at capacity 4.
	for i := 0; i < 4; i++ {
		rec.Complete(rec.Start("/api/query", ""), 200, DispositionOK, nil)
	}
	recent := rec.Recent()
	if len(recent) != 4 {
		t.Errorf("ring should cap at 4, got %d", len(recent))
	}
	for _, ev := range recent {
		if ev.Route != "/api/query" {
			t.Errorf("oldest events not evicted: %+v", ev)
		}
	}
}

func TestRecorderInFlight(t *testing.T) {
	rec := NewRecorder(4, 2, 2, time.Second, nil)
	p1 := rec.Start("/api/query", "a")
	p1.start = p1.start.Add(-time.Minute)
	p2 := rec.Start("/api/explore", "b")
	inf := rec.InFlight()
	if len(inf) != 2 || inf[0].ID != "a" {
		t.Fatalf("in-flight should list oldest first: %+v", inf)
	}
	if !inf[0].InFlight || inf[0].DurationUS < time.Minute.Microseconds() {
		t.Errorf("live event should carry elapsed duration: %+v", inf[0])
	}
	rec.Complete(p1, 200, DispositionOK, nil)
	rec.Complete(p2, 200, DispositionOK, nil)
	if len(rec.InFlight()) != 0 {
		t.Error("in-flight not empty after completion")
	}
}

func TestFilter(t *testing.T) {
	evs := []*Event{
		{Route: "/api/query", DB: "ebiz", DurationUS: 100},
		{Route: "/api/explore", DB: "ebiz", DurationUS: 5000},
		{Route: "/api/query", DB: "online", DurationUS: 20000},
	}
	if got := Filter(evs, "/api/query", "", 0); len(got) != 2 {
		t.Errorf("route filter: %d", len(got))
	}
	if got := Filter(evs, "", "ebiz", 0); len(got) != 2 {
		t.Errorf("db filter: %d", len(got))
	}
	if got := Filter(evs, "", "", time.Millisecond); len(got) != 2 {
		t.Errorf("minDur filter: %d", len(got))
	}
	if got := Filter(evs, "/api/query", "online", 10*time.Millisecond); len(got) != 1 {
		t.Errorf("combined filter: %d", len(got))
	}
}

func TestSnapshotAndRender(t *testing.T) {
	p := New("query", "req-9")
	p.SetDB("ebiz")
	p.SetQuery("nut bmx 2003")
	p.SetCacheOutcome("miss")
	p.SetQueueWait(250 * time.Microsecond)
	p.SetBatch(3, 4)
	p.AddSharedScan()
	p.AddShards(8, 56, 0)
	p.AddKernelScan(true, 16, 60000)
	p.AddKernelScan(false, 0, 100)
	p.AddFulltextProbe(1840)
	p.AddAnneal(500)
	p.AddCandidates(12)
	p.SetStages(map[string]time.Duration{
		"rank":      1200 * time.Microsecond,
		"hit_probe": 3 * time.Millisecond,
	})
	p.Finish(200, DispositionOK, nil)
	p.Finish(500, DispositionError, errors.New("late")) // idempotent: ignored

	ev := p.Snapshot()
	if ev.Status != 200 || ev.Disposition != DispositionOK || ev.Error != "" {
		t.Errorf("Finish not idempotent: %+v", ev)
	}
	if ev.BatchRole != "leader" {
		t.Errorf("role = %q, want leader", ev.BatchRole)
	}
	if ev.Stages[0].Name != "hit_probe" {
		t.Errorf("stages not sorted by duration: %+v", ev.Stages)
	}
	if _, err := json.Marshal(ev); err != nil {
		t.Fatal(err)
	}

	p2 := New("explore", "req-10")
	p2.MarkSharedAnswer()
	p2.Finish(200, DispositionOK, nil)
	if p2.Snapshot().BatchRole != "follower" {
		t.Error("shared answer should mark follower role")
	}

	out := ev.Render()
	for _, want := range []string{
		"query [req-9] db=ebiz",
		"cache=miss",
		`query: "nut bmx 2003"`,
		"queue_wait: 250µs",
		"batch: role=leader id=3 size=4 shared_scans=1",
		"shards: scanned=8 pruned_zone=56 pruned_bits=0",
		"kernels: serial=1 striped=1 stripes=16 rows=60100",
		"fulltext: probes=1 postings=1840",
		"anneal: runs=1 iters=500",
		"candidates: 12",
		"hit_probe",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
