// Package profile assembles one canonical wide event per request: the
// single record that answers "why was this query slow" by capturing
// everything the pipeline knows and previously dropped — cache outcome,
// batch membership, shard pruning, kernel path, fulltext postings
// touched, anneal iterations, ranking candidates, queue wait, per-stage
// durations, and the final disposition. Completed events feed the
// always-on flight recorder (recorder.go): ring buffers of recent /
// slow / errored queries plus a live in-flight table behind
// GET /debug/queries, with an inline JSON copy behind ?profile=1 and a
// human rendering behind the kdap REPL's `profile` command.
//
// Like the span tracer, the package is context-driven with an
// allocation-free disabled path: FromContext returns nil outside a
// profiled request, and every method on *P is safe (and free) on a nil
// receiver, so instrumentation sites need no conditionals. Counter
// fields are atomics because a single request fans out — the facet
// scorer and the striped kernels record concurrently.
package profile

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Dispositions a request can end with. The server maps HTTP status to
// these when completing a profile; the SLO layer classifies from them.
const (
	DispositionOK        = "ok"
	DispositionError     = "error"
	DispositionCancelled = "cancelled"
	DispositionDeadline  = "deadline"
	DispositionShed      = "shed"
)

// P is one request's wide event while it is being assembled. Fields
// written only by the owning request goroutine are guarded by mu anyway
// because the flight recorder's in-flight table snapshots live profiles
// concurrently; fan-out counters are atomics.
type P struct {
	id    string
	route string
	start time.Time

	mu           sync.Mutex
	db           string
	query        string
	cacheOutcome string
	disposition  string
	status       int
	errMsg       string
	queueWait    time.Duration
	duration     time.Duration
	batchID      uint64
	batchSize    int
	sharedAnswer bool
	stages       []Stage
	done         bool

	sharedScans      atomic.Int64
	shardsScanned    atomic.Int64
	shardsPrunedZone atomic.Int64
	shardsPrunedBits atomic.Int64
	serialScans      atomic.Int64
	parallelScans    atomic.Int64
	kernelStripes    atomic.Int64
	rowsScanned      atomic.Int64
	fulltextProbes   atomic.Int64
	fulltextPostings atomic.Int64
	annealRuns       atomic.Int64
	annealIters      atomic.Int64
	candidates       atomic.Int64

	clusterScatters   atomic.Int64
	clusterNodes      atomic.Int64
	clusterNodeErrors atomic.Int64
	clusterHedged     atomic.Int64
	// clusterFailed is under mu (written on the request goroutine's
	// error path, read by the in-flight snapshotter).
	clusterFailed []string
}

// Stage is one flattened pipeline stage with its summed duration.
type Stage struct {
	Name   string `json:"name"`
	Micros int64  `json:"us"`
}

// New starts a standalone wide event (not tracked by a Recorder) — the
// REPL uses this; the server goes through Recorder.Start instead.
func New(route, id string) *P {
	return &P{id: id, route: route, start: time.Now()}
}

// ctxKey carries the profile through a context.
type ctxKey struct{}

// NewContext returns ctx with p attached.
func NewContext(ctx context.Context, p *P) context.Context {
	return context.WithValue(ctx, ctxKey{}, p)
}

// FromContext returns the request's profile, or nil when the request is
// not profiled. The nil path is one context lookup and no allocations.
func FromContext(ctx context.Context) *P {
	p, _ := ctx.Value(ctxKey{}).(*P)
	return p
}

// ID returns the request ID.
func (p *P) ID() string {
	if p == nil {
		return ""
	}
	return p.id
}

// SetDB records the target warehouse.
func (p *P) SetDB(db string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.db = db
	p.mu.Unlock()
}

// SetQuery records the keyword query (or explore signature) text.
func (p *P) SetQuery(q string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.query = q
	p.mu.Unlock()
}

// SetCacheOutcome records the answer-cache disposition: miss, hit,
// coalesced, bypass, or revalidated (304).
func (p *P) SetCacheOutcome(o string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.cacheOutcome = o
	p.mu.Unlock()
}

// SetQueueWait records time spent in the admission queue.
func (p *P) SetQueueWait(d time.Duration) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.queueWait = d
	p.mu.Unlock()
}

// SetBatch records membership in a shared-scan batch.
func (p *P) SetBatch(id uint64, size int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.batchID = id
	p.batchSize = size
	p.mu.Unlock()
}

// MarkSharedAnswer marks the whole answer as adopted from a batch
// peer's in-flight computation (the request is a follower).
func (p *P) MarkSharedAnswer() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.sharedAnswer = true
	p.mu.Unlock()
}

// AddSharedScan counts one scan adopted from the batch's shared memo.
func (p *P) AddSharedScan() {
	if p == nil {
		return
	}
	p.sharedScans.Add(1)
}

// AddShards records one shard plan: shards actually scanned vs. pruned
// by zone maps and by constraint-bitset evidence.
func (p *P) AddShards(scanned, prunedZone, prunedBits int) {
	if p == nil {
		return
	}
	p.shardsScanned.Add(int64(scanned))
	p.shardsPrunedZone.Add(int64(prunedZone))
	p.shardsPrunedBits.Add(int64(prunedBits))
}

// AddKernelScan records one columnar kernel invocation: the path taken
// (serial vs. striped-parallel), the stripe count, and rows scanned.
func (p *P) AddKernelScan(parallel bool, stripes, rows int) {
	if p == nil {
		return
	}
	if parallel {
		p.parallelScans.Add(1)
		p.kernelStripes.Add(int64(stripes))
	} else {
		p.serialScans.Add(1)
	}
	p.rowsScanned.Add(int64(rows))
}

// AddFulltextProbe counts one fulltext scoring pass and the postings it
// touched.
func (p *P) AddFulltextProbe(postings int) {
	if p == nil {
		return
	}
	p.fulltextProbes.Add(1)
	p.fulltextPostings.Add(int64(postings))
}

// AddFulltextPostings counts postings touched outside a scoring pass
// (e.g. the phrase-intersection walk).
func (p *P) AddFulltextPostings(n int) {
	if p == nil {
		return
	}
	p.fulltextPostings.Add(int64(n))
}

// AddAnneal records one interval-annealing run and its iterations.
func (p *P) AddAnneal(iters int) {
	if p == nil {
		return
	}
	p.annealRuns.Add(1)
	p.annealIters.Add(int64(iters))
}

// AddClusterScatter records one scatter-gather fan-out and the worker
// nodes it dispatched to.
func (p *P) AddClusterScatter(nodes int) {
	if p == nil {
		return
	}
	p.clusterScatters.Add(1)
	p.clusterNodes.Add(int64(nodes))
}

// AddClusterNodeError records one failed worker dispatch (deadline,
// refusal, connection loss) and attributes the node.
func (p *P) AddClusterNodeError(node string) {
	if p == nil {
		return
	}
	p.clusterNodeErrors.Add(1)
	p.mu.Lock()
	p.clusterFailed = append(p.clusterFailed, node)
	p.mu.Unlock()
}

// AddClusterHedged counts one hedged local re-scan launched because a
// worker exceeded the soft deadline.
func (p *P) AddClusterHedged() {
	if p == nil {
		return
	}
	p.clusterHedged.Add(1)
}

// AddCandidates counts star-net candidates considered by ranking.
func (p *P) AddCandidates(n int) {
	if p == nil {
		return
	}
	p.candidates.Add(int64(n))
}

// SetStages stores the flattened per-stage durations (from
// Trace.Stages), sorted by descending duration for readability.
func (p *P) SetStages(st map[string]time.Duration) {
	if p == nil || len(st) == 0 {
		return
	}
	stages := make([]Stage, 0, len(st))
	for name, d := range st {
		stages = append(stages, Stage{Name: name, Micros: d.Microseconds()})
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].Micros != stages[j].Micros {
			return stages[i].Micros > stages[j].Micros
		}
		return stages[i].Name < stages[j].Name
	})
	p.mu.Lock()
	p.stages = stages
	p.mu.Unlock()
}

// Finish seals the event with its final status, disposition, and error.
// Idempotent: the first call wins (the recorder completes a profile
// exactly once, but a standalone user may defer it defensively).
func (p *P) Finish(status int, disposition string, err error) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return
	}
	p.done = true
	p.duration = time.Since(p.start)
	p.status = status
	p.disposition = disposition
	if err != nil {
		p.errMsg = err.Error()
	}
}

// Event is the wire/JSON form of a wide event — what /debug/queries and
// ?profile=1 return. Field names are part of the operator contract
// documented in docs/OPERATIONS.md.
type Event struct {
	ID          string    `json:"id"`
	Route       string    `json:"route"`
	DB          string    `json:"db,omitempty"`
	Query       string    `json:"query,omitempty"`
	Start       time.Time `json:"start"`
	DurationUS  int64     `json:"us"`
	InFlight    bool      `json:"inFlight,omitempty"`
	Status      int       `json:"status,omitempty"`
	Disposition string    `json:"disposition,omitempty"`
	Cache       string    `json:"cache,omitempty"`
	Error       string    `json:"error,omitempty"`
	QueueWaitUS int64     `json:"queueWaitUs,omitempty"`

	BatchID     uint64 `json:"batchId,omitempty"`
	BatchSize   int    `json:"batchSize,omitempty"`
	BatchRole   string `json:"batchRole,omitempty"`
	SharedScans int64  `json:"sharedScans,omitempty"`

	ShardsScanned    int64 `json:"shardsScanned,omitempty"`
	ShardsPrunedZone int64 `json:"shardsPrunedZone,omitempty"`
	ShardsPrunedBits int64 `json:"shardsPrunedBits,omitempty"`

	SerialScans   int64 `json:"serialScans,omitempty"`
	ParallelScans int64 `json:"parallelScans,omitempty"`
	KernelStripes int64 `json:"kernelStripes,omitempty"`
	RowsScanned   int64 `json:"rowsScanned,omitempty"`

	FulltextProbes   int64 `json:"fulltextProbes,omitempty"`
	FulltextPostings int64 `json:"fulltextPostings,omitempty"`

	AnnealRuns  int64 `json:"annealRuns,omitempty"`
	AnnealIters int64 `json:"annealIters,omitempty"`
	Candidates  int64 `json:"candidates,omitempty"`

	ClusterScatters    int64    `json:"clusterScatters,omitempty"`
	ClusterNodes       int64    `json:"clusterNodes,omitempty"`
	ClusterNodeErrors  int64    `json:"clusterNodeErrors,omitempty"`
	ClusterHedged      int64    `json:"clusterHedged,omitempty"`
	ClusterFailedNodes []string `json:"clusterFailedNodes,omitempty"`

	Stages []Stage `json:"stages,omitempty"`
}

// Snapshot renders the event's current state. For a live (unfinished)
// profile the duration is time elapsed so far and InFlight is true.
func (p *P) Snapshot() *Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	ev := &Event{
		ID:          p.id,
		Route:       p.route,
		DB:          p.db,
		Query:       p.query,
		Start:       p.start,
		Status:      p.status,
		Disposition: p.disposition,
		Cache:       p.cacheOutcome,
		Error:       p.errMsg,
		QueueWaitUS: p.queueWait.Microseconds(),
		BatchID:     p.batchID,
		BatchSize:   p.batchSize,
		Stages:      p.stages,
	}
	if len(p.clusterFailed) > 0 {
		ev.ClusterFailedNodes = append([]string(nil), p.clusterFailed...)
	}
	if p.done {
		ev.DurationUS = p.duration.Microseconds()
	} else {
		ev.DurationUS = time.Since(p.start).Microseconds()
		ev.InFlight = true
	}
	if p.batchID != 0 || p.sharedAnswer {
		if p.sharedAnswer {
			ev.BatchRole = "follower"
		} else {
			ev.BatchRole = "leader"
		}
	}
	p.mu.Unlock()

	ev.SharedScans = p.sharedScans.Load()
	ev.ShardsScanned = p.shardsScanned.Load()
	ev.ShardsPrunedZone = p.shardsPrunedZone.Load()
	ev.ShardsPrunedBits = p.shardsPrunedBits.Load()
	ev.SerialScans = p.serialScans.Load()
	ev.ParallelScans = p.parallelScans.Load()
	ev.KernelStripes = p.kernelStripes.Load()
	ev.RowsScanned = p.rowsScanned.Load()
	ev.FulltextProbes = p.fulltextProbes.Load()
	ev.FulltextPostings = p.fulltextPostings.Load()
	ev.AnnealRuns = p.annealRuns.Load()
	ev.AnnealIters = p.annealIters.Load()
	ev.Candidates = p.candidates.Load()
	ev.ClusterScatters = p.clusterScatters.Load()
	ev.ClusterNodes = p.clusterNodes.Load()
	ev.ClusterNodeErrors = p.clusterNodeErrors.Load()
	ev.ClusterHedged = p.clusterHedged.Load()
	return ev
}

// Render returns the human `explain`-style form of the event — what the
// kdap REPL's `profile` command prints.
func (ev *Event) Render() string {
	if ev == nil {
		return "no profile recorded\n"
	}
	var b strings.Builder
	state := ev.Disposition
	if ev.InFlight {
		state = "in-flight"
	}
	fmt.Fprintf(&b, "%s", ev.Route)
	if ev.ID != "" {
		fmt.Fprintf(&b, " [%s]", ev.ID)
	}
	if ev.DB != "" {
		fmt.Fprintf(&b, " db=%s", ev.DB)
	}
	fmt.Fprintf(&b, " — %s, %s", fmtUS(ev.DurationUS), state)
	if ev.Status != 0 {
		fmt.Fprintf(&b, " (%d)", ev.Status)
	}
	if ev.Cache != "" {
		fmt.Fprintf(&b, ", cache=%s", ev.Cache)
	}
	b.WriteByte('\n')
	if ev.Query != "" {
		fmt.Fprintf(&b, "  query: %q\n", ev.Query)
	}
	if ev.Error != "" {
		fmt.Fprintf(&b, "  error: %s\n", ev.Error)
	}
	if ev.QueueWaitUS > 0 {
		fmt.Fprintf(&b, "  queue_wait: %s\n", fmtUS(ev.QueueWaitUS))
	}
	if ev.BatchRole != "" {
		fmt.Fprintf(&b, "  batch: role=%s", ev.BatchRole)
		if ev.BatchID != 0 {
			fmt.Fprintf(&b, " id=%d size=%d", ev.BatchID, ev.BatchSize)
		}
		if ev.SharedScans > 0 {
			fmt.Fprintf(&b, " shared_scans=%d", ev.SharedScans)
		}
		b.WriteByte('\n')
	}
	if ev.ShardsScanned+ev.ShardsPrunedZone+ev.ShardsPrunedBits > 0 {
		fmt.Fprintf(&b, "  shards: scanned=%d pruned_zone=%d pruned_bits=%d\n",
			ev.ShardsScanned, ev.ShardsPrunedZone, ev.ShardsPrunedBits)
	}
	if ev.SerialScans+ev.ParallelScans > 0 {
		fmt.Fprintf(&b, "  kernels: serial=%d striped=%d stripes=%d rows=%d\n",
			ev.SerialScans, ev.ParallelScans, ev.KernelStripes, ev.RowsScanned)
	}
	if ev.FulltextProbes > 0 {
		fmt.Fprintf(&b, "  fulltext: probes=%d postings=%d\n",
			ev.FulltextProbes, ev.FulltextPostings)
	}
	if ev.AnnealRuns > 0 {
		fmt.Fprintf(&b, "  anneal: runs=%d iters=%d\n", ev.AnnealRuns, ev.AnnealIters)
	}
	if ev.Candidates > 0 {
		fmt.Fprintf(&b, "  candidates: %d\n", ev.Candidates)
	}
	if ev.ClusterScatters > 0 {
		fmt.Fprintf(&b, "  cluster: scatters=%d nodes=%d errors=%d hedged=%d",
			ev.ClusterScatters, ev.ClusterNodes, ev.ClusterNodeErrors, ev.ClusterHedged)
		if len(ev.ClusterFailedNodes) > 0 {
			fmt.Fprintf(&b, " failed=%s", strings.Join(ev.ClusterFailedNodes, ","))
		}
		b.WriteByte('\n')
	}
	if len(ev.Stages) > 0 {
		b.WriteString("  stages:\n")
		for _, st := range ev.Stages {
			fmt.Fprintf(&b, "    %-24s %9s\n", st.Name, fmtUS(st.Micros))
		}
	}
	return b.String()
}

// fmtUS renders microseconds at stage-breakdown resolution.
func fmtUS(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(us)/1000)
	default:
		return fmt.Sprintf("%dµs", us)
	}
}
