// Package telemetry is the stdlib-only observability layer: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms) with
// Prometheus text-format exposition, and a lightweight per-query span
// tracer (trace.go). KDAP is an interactive system — the paper's §7
// experiments live or die on per-stage latency — so the pipeline, the
// caches, and the columnar kernels all report here, and the HTTP server
// exposes the registry at GET /metrics.
//
// Design constraints, in order:
//
//  1. Zero dependencies. The repo is stdlib-only and stays that way.
//  2. Hot-path cost is a handful of atomic operations and no
//     allocations: instruments are resolved once (or via a read-locked
//     map lookup) and then updated lock-free.
//  3. Instance-scoped. There is no global default registry; the server
//     owns one registry per process and wires engines into it, so tests
//     and multi-warehouse setups never fight over series names.
//
// Besides the write-style instruments (Counter, Gauge, Histogram),
// CounterFunc and GaugeFunc register read-at-scrape callbacks: the
// server uses them to expose engine-owned statistics — clock-cache and
// answer-cache counters, warehouse row counts — without the engine ever
// depending on this package. docs/OPERATIONS.md is the operator-facing
// reference for every exported series; the CI cache-smoke step checks
// the live exposition against it.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the exposition to stay
// monotonic; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d atomically.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Observations are lock-free:
// one atomic add into the bucket, one into the count, one CAS loop for
// the sum. Buckets are cumulative only at exposition time.
type Histogram struct {
	bounds []float64      // ascending upper bounds; +Inf is implicit
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum    Gauge
	count  atomic.Int64
}

// DefLatencyBuckets are the default latency buckets in seconds, spanning
// warm answer-cache hits (a couple of microseconds) through
// sub-millisecond kernel calls to multi-second cold explores. The
// sub-10µs bounds exist because the fastest served answers — cache hits
// around 2.4µs and 304 revalidations — would otherwise all collapse
// into one bucket and p50/p99 estimates over them would be meaningless.
var DefLatencyBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// NewHistogram creates a histogram over the given ascending upper
// bounds. A nil/empty bounds slice uses DefLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// metricKind tags a family with its exposition TYPE.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// sample is one labeled series within a family. Exactly one of the
// value sources is set.
type sample struct {
	labels  string // canonical rendered label set, "" or `{k="v",…}`
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // func-backed counter or gauge
}

func (s *sample) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	default:
		return math.NaN()
	}
}

// family is all series sharing one metric name. ordered mirrors samples
// sorted by label set, maintained at registration so every scrape walks
// the same deterministic order without re-sorting.
type family struct {
	name    string
	help    string
	kind    metricKind
	samples map[string]*sample
	ordered []*sample
}

// Registry holds metric families and renders them as Prometheus text
// exposition format. Safe for concurrent use; instrument lookups take a
// read lock, instrument updates are lock-free. ordered mirrors fams
// sorted by name, maintained at registration time (registration is rare,
// scrapes are not), which also makes the exposition byte-order
// deterministic across processes regardless of map iteration order.
type Registry struct {
	mu      sync.RWMutex
	fams    map[string]*family
	ordered []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Labels renders key/value pairs as a canonical Prometheus label set
// (sorted by key, values escaped). Pairs must come in even count.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("telemetry: odd label key/value count")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getOrCreate returns the family's sample under the label set, creating
// both as needed. build constructs the instrument on first use.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels string, build func() *sample) *sample {
	r.mu.RLock()
	f := r.fams[name]
	var s *sample
	if f != nil {
		s = f.samples[labels]
	}
	r.mu.RUnlock()
	if s != nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, samples: make(map[string]*sample)}
		r.fams[name] = f
		i := sort.Search(len(r.ordered), func(i int) bool { return r.ordered[i].name >= name })
		r.ordered = append(r.ordered, nil)
		copy(r.ordered[i+1:], r.ordered[i:])
		r.ordered[i] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	if s = f.samples[labels]; s != nil {
		return s
	}
	s = build()
	s.labels = labels
	f.samples[labels] = s
	i := sort.Search(len(f.ordered), func(i int) bool { return f.ordered[i].labels >= labels })
	f.ordered = append(f.ordered, nil)
	copy(f.ordered[i+1:], f.ordered[i:])
	f.ordered[i] = s
	return s
}

// Counter returns (creating if needed) the counter series name+labels.
// labels are key/value pairs, e.g. Counter("x_total", "…", "route", "/q").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getOrCreate(name, help, kindCounter, Labels(labels...), func() *sample {
		return &sample{counter: &Counter{}}
	})
	if s.counter == nil {
		panic("telemetry: " + name + " is func-backed")
	}
	return s.counter
}

// Gauge returns (creating if needed) the gauge series name+labels.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getOrCreate(name, help, kindGauge, Labels(labels...), func() *sample {
		return &sample{gauge: &Gauge{}}
	})
	if s.gauge == nil {
		panic("telemetry: " + name + " is func-backed")
	}
	return s.gauge
}

// Histogram returns (creating if needed) the histogram series
// name+labels over the given bounds (nil bounds = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	s := r.getOrCreate(name, help, kindHistogram, Labels(labels...), func() *sample {
		return &sample{hist: NewHistogram(bounds)}
	})
	return s.hist
}

// CounterFunc registers a counter series whose value is read from fn at
// exposition time — the bridge for components that keep their own
// atomic counters (caches, kernels) without importing telemetry's
// instrument types. fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.getOrCreate(name, help, kindCounter, Labels(labels...), func() *sample {
		return &sample{fn: fn}
	})
}

// GaugeFunc registers a gauge series read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.getOrCreate(name, help, kindGauge, Labels(labels...), func() *sample {
		return &sample{fn: fn}
	})
}

// RegisterHistogram adopts an externally owned histogram (e.g. the
// full-text index's probe latencies) as the series name+labels.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...string) {
	r.getOrCreate(name, help, kindHistogram, Labels(labels...), func() *sample {
		return &sample{hist: h}
	})
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families and series in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot the pre-sorted family and sample slices under the lock;
	// values are read after, lock-free (they are atomics or caller-owned
	// funcs). Registration maintains sort order, so no per-scrape sorting
	// and the byte order is identical across scrapes and processes.
	type famSnap struct {
		f       *family
		samples []*sample
	}
	r.mu.RLock()
	snaps := make([]famSnap, 0, len(r.ordered))
	for _, f := range r.ordered {
		snaps = append(snaps, famSnap{f: f, samples: f.ordered})
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, fs := range snaps {
		f := fs.f
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range fs.samples {
			if f.kind == kindHistogram {
				writeHistogram(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative buckets with
// le labels, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *sample) {
	h := s.hist
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(s.labels, formatValue(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLE(s.labels, "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, cum)
}

// mergeLE inserts the le bucket label into an existing label set.
func mergeLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// formatValue renders a sample value the way Prometheus expects:
// shortest round-trip float, integers without an exponent.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
