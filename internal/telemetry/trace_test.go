package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeShape(t *testing.T) {
	tr := NewTrace("query")
	ctx := tr.Context(context.Background())

	dctx, d := StartSpan(ctx, "differentiate")
	_, probe := StartSpan(dctx, "hit_probe")
	time.Sleep(time.Millisecond)
	probe.End()
	_, rank := StartSpan(dctx, "rank")
	rank.End()
	d.End()
	tr.Finish()

	j := tr.JSON()
	if j.Name != "query" || len(j.Children) != 1 {
		t.Fatalf("root: %+v", j)
	}
	diff := j.Children[0]
	if diff.Name != "differentiate" || len(diff.Children) != 2 {
		t.Fatalf("differentiate: %+v", diff)
	}
	if diff.Children[0].Name != "hit_probe" || diff.Children[0].Micros < 500 {
		t.Errorf("hit_probe span: %+v", diff.Children[0])
	}

	stages := tr.Stages()
	for _, name := range []string{"query", "differentiate", "hit_probe", "rank"} {
		if _, ok := stages[name]; !ok {
			t.Errorf("Stages missing %q", name)
		}
	}
	tree := tr.Tree()
	if !strings.Contains(tree, "hit_probe") || !strings.Contains(tree, "differentiate") {
		t.Errorf("tree rendering:\n%s", tree)
	}
}

// With no trace attached, StartSpan must not allocate and must return a
// usable nil span — this is the disabled-by-default hot path the
// benchmarks run through.
func TestStartSpanDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c, sp := StartSpan(ctx, "stage")
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Errorf("disabled StartSpan allocates %v per call", allocs)
	}
	if d := (*Span)(nil).Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
}

// Concurrent children under one parent (the facet scorer's fan-out)
// must be race-free.
func TestConcurrentChildSpans(t *testing.T) {
	tr := NewTrace("explore")
	ctx := tr.Context(context.Background())
	sctx, score := StartSpan(ctx, "facet_score")
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := StartSpan(sctx, "score_attr")
			sp.End()
		}()
	}
	wg.Wait()
	score.End()
	tr.Finish()
	if n := len(tr.JSON().Children[0].Children); n != 16 {
		t.Errorf("recorded %d child spans, want 16", n)
	}
}
