package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kdap_requests_total", "Requests served.", "route", "/api/query", "code", "200")
	c.Inc()
	c.Add(2)
	if got := r.Counter("kdap_requests_total", "Requests served.", "code", "200", "route", "/api/query"); got != c {
		t.Fatal("label order changed the series identity")
	}
	g := r.Gauge("kdap_sessions", "Live sessions.")
	g.Set(4)
	g.Add(-1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE kdap_requests_total counter",
		`kdap_requests_total{code="200",route="/api/query"} 3`,
		"# TYPE kdap_sessions gauge",
		"kdap_sessions 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("kdap_stage_seconds", "Stage latency.", []float64{0.001, 0.01, 0.1}, "stage", "hit_probe")
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-0.5555) > 1e-9 {
		t.Fatalf("sum = %g", h.Sum())
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE kdap_stage_seconds histogram",
		`kdap_stage_seconds_bucket{stage="hit_probe",le="0.001"} 1`,
		`kdap_stage_seconds_bucket{stage="hit_probe",le="0.01"} 2`,
		`kdap_stage_seconds_bucket{stage="hit_probe",le="0.1"} 3`,
		`kdap_stage_seconds_bucket{stage="hit_probe",le="+Inf"} 4`,
		`kdap_stage_seconds_count{stage="hit_probe"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
}

// A value landing exactly on a bound belongs to that bound's bucket
// (Prometheus le semantics).
func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1)
	if h.counts[0].Load() != 1 {
		t.Error("observation equal to a bound must land in that bound's bucket")
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.CounterFunc("kdap_cache_hits_total", "Cache hits.", func() float64 { return n }, "cache", "rows")
	r.GaugeFunc("kdap_uptime_seconds", "Uptime.", func() float64 { return 7.5 })
	n++
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `kdap_cache_hits_total{cache="rows"} 42`) {
		t.Errorf("counter func not read at exposition time:\n%s", out)
	}
	if !strings.Contains(out, "kdap_uptime_seconds 7.5") {
		t.Errorf("gauge func missing:\n%s", out)
	}
}

func TestRegisterHistogramAdoptsExternal(t *testing.T) {
	r := NewRegistry()
	h := NewHistogram(nil)
	h.Observe(0.002)
	r.RegisterHistogram("kdap_fulltext_probe_seconds", "Probe latency.", h, "db", "ebiz")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `kdap_fulltext_probe_seconds_count{db="ebiz"} 1`) {
		t.Errorf("adopted histogram missing:\n%s", b.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("kdap_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("kdap_x_total", "x")
}

// Concurrent get-or-create plus updates plus exposition must be
// race-free (run under -race in CI).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("kdap_ops_total", "Ops.", "worker", string(rune('a'+g%4))).Inc()
				r.Histogram("kdap_op_seconds", "Op latency.", nil).Observe(0.001)
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, w := range []string{"a", "b", "c", "d"} {
		total += r.Counter("kdap_ops_total", "Ops.", "worker", w).Value()
	}
	if total != 8*200 {
		t.Errorf("lost increments: %d", total)
	}
}

func TestValidateExpositionRejectsGarbage(t *testing.T) {
	bad := []string{
		"kdap_untyped_sample 1\n",                                 // no TYPE
		"# TYPE kdap_a counter\nkdap_a{unclosed=\"x} 1\n",         // bad labels
		"# TYPE kdap_a counter\nkdap_a one\n",                     // bad value
		"# TYPE kdap_h histogram\nkdap_h_sum 1\nkdap_h_count 1\n", // no +Inf bucket
	}
	for _, in := range bad {
		if err := ValidateExposition(strings.NewReader(in)); err == nil {
			t.Errorf("accepted invalid exposition %q", in)
		}
	}
}
