package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// The span tracer records a per-query tree of timed pipeline stages —
// differentiate's filter extraction → hit probing → phrase merge → seed
// enumeration → star-net generation → ranking, and explore's subspace
// semijoin → roll-up build → facet scoring → interval annealing. It is
// context-driven: StartSpan is a no-op returning a nil *Span unless a
// Trace has been attached with Trace.Context, so the untraced path costs
// one context lookup and zero allocations. The HTTP server attaches a
// trace to every request (folding stage durations into the metrics
// registry and, behind ?trace=1, serializing the tree into the
// response); the kdap CLI's -trace flag prints the tree after each step.

// Span is one timed stage. Spans form a tree under a Trace; child spans
// may be created concurrently (the facet scorer fans out), so the child
// list is mutex-protected. A nil *Span is a valid no-op span.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	children []*Span
}

// spanKey carries the current parent span through a context.
type spanKey struct{}

// Trace is one query's span tree.
type Trace struct {
	root *Span
}

// NewTrace starts a trace whose root span carries the given name
// (typically the request kind: "query", "explore").
func NewTrace(name string) *Trace {
	return &Trace{root: &Span{name: name, start: time.Now()}}
}

// Context returns ctx with the trace attached; StartSpan calls under it
// record into this trace.
func (t *Trace) Context(ctx context.Context) context.Context {
	return context.WithValue(ctx, spanKey{}, t.root)
}

// Finish ends the root span.
func (t *Trace) Finish() { t.root.End() }

// Root returns the root span.
func (t *Trace) Root() *Span { return t.root }

// StartSpan begins a stage span under the current span of ctx. When no
// trace is attached it returns (ctx, nil) without allocating; ending a
// nil span is a no-op, so call sites need no conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := &Span{name: name, start: time.Now()}
	parent.mu.Lock()
	parent.children = append(parent.children, sp)
	parent.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// SpanFromContext returns the current span of ctx, or nil when no trace
// is attached. Useful with AddTimed for stages whose duration is
// measured around a call that may or may not have done shared work
// (e.g. a batched follower adopting a peer's scan).
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// AddTimed attaches an already-measured child span — for stages timed
// outside the traced call tree, like the admission queue wait measured
// by middleware before the request trace exists. Safe on a nil span.
func (s *Span) AddTimed(name string, d time.Duration) {
	if s == nil {
		return
	}
	child := &Span{name: name, start: time.Now().Add(-d), dur: d}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
}

// End stops the span's clock. Safe on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	s.dur = d
	s.mu.Unlock()
}

// Name returns the span's stage name.
func (s *Span) Name() string { return s.name }

// Duration returns the recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// snapshot returns the span's duration and children without holding the
// lock during recursion.
func (s *Span) snapshot() (time.Duration, []*Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur, append([]*Span(nil), s.children...)
}

// SpanJSON is the wire form of a span tree, attached to API responses
// behind ?trace=1. Durations are microseconds: enough resolution for
// sub-millisecond kernels, small enough to read.
type SpanJSON struct {
	Name     string      `json:"name"`
	Micros   int64       `json:"us"`
	Children []*SpanJSON `json:"children,omitempty"`
}

// JSON converts the trace to its wire form.
func (t *Trace) JSON() *SpanJSON { return spanJSON(t.root) }

func spanJSON(s *Span) *SpanJSON {
	dur, children := s.snapshot()
	out := &SpanJSON{Name: s.name, Micros: dur.Microseconds()}
	for _, c := range children {
		out.Children = append(out.Children, spanJSON(c))
	}
	return out
}

// Tree renders the trace as an indented per-stage breakdown:
//
//	query                          2.1ms
//	  differentiate                2.0ms
//	    hit_probe                  1.2ms
func (t *Trace) Tree() string {
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		dur, children := s.snapshot()
		fmt.Fprintf(&b, "%-*s%-*s %9s\n", 2*depth, "", 30-2*depth, s.name, fmtDur(dur))
		for _, c := range children {
			walk(c, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}

// fmtDur renders a duration at stage-breakdown resolution.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Stages flattens the tree into total duration per stage name (a stage
// appearing at several tree positions — e.g. one groupby_kernel per
// scored attribute — sums). The server folds this into its per-stage
// latency histograms so /metrics reflects pipeline timing even for
// untraced clients.
func (t *Trace) Stages() map[string]time.Duration {
	out := make(map[string]time.Duration)
	var walk func(s *Span)
	walk = func(s *Span) {
		dur, children := s.snapshot()
		out[s.name] += dur
		for _, c := range children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// StageNames returns the distinct stage names in the trace, sorted.
func (t *Trace) StageNames() []string {
	st := t.Stages()
	names := make([]string, 0, len(st))
	for n := range st {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
