package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// histSeriesState tracks one histogram series' invariants as its lines
// stream by (series lines are contiguous in sorted exposition).
type histSeriesState struct {
	lastCum  float64
	sawInf   bool
	infCum   float64
	sawCount bool
}

// ValidateExposition checks that r is well-formed Prometheus text
// exposition format (version 0.0.4): every sample line parses, every
// sample belongs to a family declared by a preceding # TYPE line, and
// histogram series satisfy their invariants (cumulative non-decreasing
// buckets ending in +Inf, a _count matching the +Inf bucket). CI runs
// this over GET /metrics so format regressions cannot land silently.
func ValidateExposition(r io.Reader) error {
	types := map[string]string{} // family name -> type
	hists := map[string]*histSeriesState{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	sawSample := false
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		sawSample = true
		fam, suffix := familyOf(name, types)
		if fam == "" {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		if types[fam] == "histogram" {
			if err := checkHistogramSample(fam, suffix, labels, value, hists); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSample {
		return fmt.Errorf("telemetry: exposition contains no samples")
	}
	for series, st := range hists {
		if !st.sawInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", series)
		}
		if !st.sawCount {
			return fmt.Errorf("histogram %s: missing _count", series)
		}
	}
	return nil
}

var (
	helpRe = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

func validateComment(line string, types map[string]string) error {
	switch {
	case strings.HasPrefix(line, "# HELP "):
		if !helpRe.MatchString(line) {
			return fmt.Errorf("malformed HELP: %q", line)
		}
	case strings.HasPrefix(line, "# TYPE "):
		m := typeRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("malformed TYPE: %q", line)
		}
		if _, dup := types[m[1]]; dup {
			return fmt.Errorf("duplicate TYPE for %s", m[1])
		}
		types[m[1]] = m[2]
	}
	// Other comments are allowed free-form.
	return nil
}

var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)( [0-9]+)?$`)

// parseSample splits a sample line into name, label map, and value.
func parseSample(line string) (string, map[string]string, float64, error) {
	m := sampleRe.FindStringSubmatch(line)
	if m == nil {
		return "", nil, 0, fmt.Errorf("malformed sample: %q", line)
	}
	name, labelStr, valStr := m[1], m[2], m[3]
	var value float64
	switch valStr {
	case "+Inf", "Inf":
		value = math.Inf(1)
	case "-Inf":
		value = math.Inf(-1)
	case "NaN":
		value = math.NaN()
	default:
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return "", nil, 0, fmt.Errorf("bad value %q: %v", valStr, err)
		}
		value = v
	}
	labels := map[string]string{}
	if labelStr != "" {
		body := labelStr[1 : len(labelStr)-1]
		if body != "" {
			if err := parseLabels(body, labels); err != nil {
				return "", nil, 0, err
			}
		}
	}
	return name, labels, value, nil
}

var labelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)`)

func parseLabels(body string, out map[string]string) error {
	for body != "" {
		m := labelRe.FindStringSubmatch(body)
		if m == nil {
			return fmt.Errorf("malformed labels near %q", body)
		}
		if _, dup := out[m[1]]; dup {
			return fmt.Errorf("duplicate label %q", m[1])
		}
		out[m[1]] = m[2]
		body = body[len(m[0]):]
	}
	return nil
}

// familyOf maps a sample name to its declared family, handling the
// histogram/summary suffixes.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
				return base, suf
			}
		}
	}
	return "", ""
}

// checkHistogramSample enforces per-series histogram invariants.
func checkHistogramSample(fam, suffix string, labels map[string]string, value float64, hists map[string]*histSeriesState) error {
	le := labels["le"]
	delete(labels, "le")
	keys := make([]string, 0, len(labels))
	for k, v := range labels {
		keys = append(keys, k+"="+v)
	}
	sort.Strings(keys)
	series := fam + "{" + strings.Join(keys, ",") + "}"
	st := hists[series]
	if st == nil {
		st = &histSeriesState{}
		hists[series] = st
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("histogram %s: bucket without le", series)
		}
		if value < st.lastCum {
			return fmt.Errorf("histogram %s: bucket counts not cumulative (%g < %g)", series, value, st.lastCum)
		}
		st.lastCum = value
		if le == "+Inf" {
			st.sawInf = true
			st.infCum = value
		}
	case "_count":
		st.sawCount = true
		if st.sawInf && value != st.infCum {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", series, value, st.infCum)
		}
	}
	return nil
}
