package csvload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/relation"
)

// writeFixture materializes a small two-dimension mart as CSV + manifest.
func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("product.csv", `ProductKey,ProductName,Category,Price
1,Trail Bike,Bikes,900
2,City Bike,Bikes,500
3,Helmet,Accessories,40
4,Pump,Accessories,15
`)
	// Header order differs from manifest order on purpose; one empty
	// region cell exercises NULL loading.
	write("store.csv", `Region,StoreKey,StoreName
West,1,Alpha Store
East,2,Beta Store
,3,Gamma Store
`)
	write("sales.csv", `SaleKey,ProductKey,StoreKey,Qty,Amount
1,1,1,2,1800
2,2,1,1,500
3,3,2,5,200
4,4,2,3,45
5,1,2,1,900
6,3,3,2,80
`)
	write("manifest.json", `{
  "name": "TinyMart",
  "fact": "Sales",
  "strict": true,
  "tables": [
    {"name": "Product", "file": "product.csv", "key": "ProductKey",
     "columns": [
       {"name": "ProductKey", "kind": "int"},
       {"name": "ProductName", "kind": "string", "fullText": true},
       {"name": "Category", "kind": "string", "fullText": true},
       {"name": "Price", "kind": "float"}
     ]},
    {"name": "Store", "file": "store.csv", "key": "StoreKey",
     "columns": [
       {"name": "StoreKey", "kind": "int"},
       {"name": "StoreName", "kind": "string", "fullText": true},
       {"name": "Region", "kind": "string", "fullText": true}
     ]},
    {"name": "Sales", "file": "sales.csv", "key": "SaleKey",
     "columns": [
       {"name": "SaleKey", "kind": "int"},
       {"name": "ProductKey", "kind": "int"},
       {"name": "StoreKey", "kind": "int"},
       {"name": "Qty", "kind": "int"},
       {"name": "Amount", "kind": "float"}
     ],
     "foreignKeys": [
       {"column": "ProductKey", "refTable": "Product", "refColumn": "ProductKey"},
       {"column": "StoreKey", "refTable": "Store", "refColumn": "StoreKey"}
     ]}
  ],
  "dimensions": [
    {"name": "Product", "tables": ["Product"],
     "hierarchies": [{"name": "Cat", "levels": [
       {"table": "Product", "attr": "Category"},
       {"table": "Product", "attr": "ProductName"}]}],
     "groupBy": [
       {"table": "Product", "attr": "Category"},
       {"table": "Product", "attr": "Price"}]},
    {"name": "Store", "tables": ["Store"],
     "groupBy": [
       {"table": "Store", "attr": "Region"},
       {"table": "Store", "attr": "StoreName"}]}
  ]
}`)
	return dir
}

func TestLoadDirEndToEnd(t *testing.T) {
	dir := writeFixture(t)
	wh, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	st := wh.DB.Stats()
	if st.Tables != 3 || st.Rows != 4+3+6 {
		t.Errorf("stats = %+v", st)
	}
	// NULL cell loaded as NULL.
	store := wh.DB.Table("Store")
	ri := store.Lookup("StoreKey", relation.Int(3))
	if len(ri) != 1 || !store.Value(ri[0], "Region").IsNull() {
		t.Error("empty cell did not load as NULL")
	}
	// Header reordering respected.
	if store.Value(ri[0], "StoreName").Str() != "Gamma Store" {
		t.Error("column remapping wrong")
	}

	// Full KDAP flow over the loaded mart.
	fact := wh.DB.Table("Sales")
	e := kdapcore.NewEngine(wh.Graph, wh.Index,
		olap.ColumnMeasure(fact, "Amount"), olap.Sum)
	nets, err := e.Differentiate("Bikes")
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v (%d nets)", err, len(nets))
	}
	rows := e.SubspaceRows(nets[0])
	if len(rows) != 3 {
		t.Errorf("Bikes subspace = %d rows, want 3", len(rows))
	}
	if agg := e.SubspaceAggregate(nets[0]); agg != 1800+500+900 {
		t.Errorf("Bikes revenue = %g", agg)
	}
	if _, err := e.Explore(nets[0], kdapcore.DefaultExploreOptions()); err != nil {
		t.Fatalf("explore: %v", err)
	}
}

// TestLoadSegmentedMatchesResident loads the fixture twice — resident
// and with the fact table streamed into disk segments — and requires
// identical facet bytes for the same interpretation.
func TestLoadSegmentedMatchesResident(t *testing.T) {
	dir := writeFixture(t)
	res, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	seg, store, err := LoadWithOptions(dir, m, LoadOptions{SegmentDir: t.TempDir(), SegmentSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if store == nil {
		t.Fatal("segmented load returned no store")
	}
	defer store.Close()
	if seg.DB.Table("Sales").Backing() == nil {
		t.Fatal("fact table is not backed")
	}
	if seg.DB.Table("Product").Backing() != nil {
		t.Fatal("dimension table was backed")
	}
	mkEngine := func(wh *dataset.Warehouse) *kdapcore.Engine {
		return kdapcore.NewEngine(wh.Graph, wh.Index,
			olap.ColumnMeasure(wh.DB.Table("Sales"), "Amount"), olap.Sum)
	}
	er, es := mkEngine(res), mkEngine(seg)
	for _, q := range []string{"Bikes", "West", "Helmet", "Amount>400"} {
		rn, err := er.Differentiate(q)
		if err != nil {
			t.Fatalf("%q resident: %v", q, err)
		}
		sn, err := es.Differentiate(q)
		if err != nil {
			t.Fatalf("%q segmented: %v", q, err)
		}
		if len(rn) != len(sn) {
			t.Fatalf("%q: %d nets resident, %d segmented", q, len(rn), len(sn))
		}
		if len(rn) == 0 {
			continue
		}
		fr, errR := er.Explore(rn[0], kdapcore.DefaultExploreOptions())
		fs, errS := es.Explore(sn[0], kdapcore.DefaultExploreOptions())
		if (errR == nil) != (errS == nil) {
			t.Fatalf("%q: explore errors diverge: %v vs %v", q, errR, errS)
		}
		if errR != nil {
			continue
		}
		if !bytes.Equal(fr.Fingerprint(), fs.Fingerprint()) {
			t.Fatalf("%q: segmented facets differ from resident", q)
		}
	}
}

func TestLoadErrors(t *testing.T) {
	dir := writeFixture(t)

	corrupt := func(name, content string) string {
		sub := t.TempDir()
		for _, f := range []string{"product.csv", "store.csv", "sales.csv", "manifest.json"} {
			data, err := os.ReadFile(filepath.Join(dir, f))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(sub, f), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if name != "" {
			if err := os.WriteFile(filepath.Join(sub, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return sub
	}

	cases := map[string]string{
		"bad kind": `{"name":"x","fact":"Sales","tables":[
			{"name":"Sales","file":"sales.csv","columns":[{"name":"SaleKey","kind":"decimal"}]}],"dimensions":[]}`,
		"unknown field": `{"name":"x","fact":"Sales","bogus":1,"tables":[],"dimensions":[]}`,
		"no fact":       `{"name":"x","tables":[],"dimensions":[]}`,
	}
	for name, manifest := range cases {
		sub := corrupt("manifest.json", manifest)
		if _, err := LoadDir(sub); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Non-numeric cell in an int column.
	sub := corrupt("sales.csv", "SaleKey,ProductKey,StoreKey,Qty,Amount\nx,1,1,1,1\n")
	if _, err := LoadDir(sub); err == nil || !strings.Contains(err.Error(), "SaleKey") {
		t.Errorf("bad cell: %v", err)
	}

	// Dangling foreign key caught by strict validation.
	sub = corrupt("sales.csv", "SaleKey,ProductKey,StoreKey,Qty,Amount\n1,999,1,1,1\n")
	if _, err := LoadDir(sub); err == nil {
		t.Error("dangling FK accepted under strict")
	}

	// Missing CSV column.
	sub = corrupt("store.csv", "StoreKey,StoreName\n1,Only\n")
	if _, err := LoadDir(sub); err == nil {
		t.Error("missing column accepted")
	}

	// Missing file entirely.
	sub = corrupt("", "")
	os.Remove(filepath.Join(sub, "product.csv"))
	if _, err := LoadDir(sub); err == nil {
		t.Error("missing csv accepted")
	}

	// Missing manifest.
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("missing manifest accepted")
	}
}
