// Package csvload assembles a KDAP warehouse from CSV files plus a JSON
// manifest, so the engine can run over user data without writing Go.
//
// The manifest declares each table's CSV file, column types, keys, and
// full-text flags, the fact table, and the dimension metadata:
//
//	{
//	  "name": "MyMart",
//	  "fact": "Sales",
//	  "factExtensions": [],
//	  "tables": [
//	    {"name": "Product", "file": "product.csv", "key": "ProductKey",
//	     "columns": [
//	       {"name": "ProductKey", "kind": "int"},
//	       {"name": "ProductName", "kind": "string", "fullText": true}
//	     ],
//	     "foreignKeys": []},
//	    ...
//	  ],
//	  "dimensions": [
//	    {"name": "Product", "tables": ["Product"],
//	     "hierarchies": [{"name": "Cat", "levels": [
//	        {"table": "Product", "attr": "Category"},
//	        {"table": "Product", "attr": "ProductName"}]}],
//	     "groupBy": [{"table": "Product", "attr": "Category"}]}
//	  ],
//	  "edgeLabels": [
//	    {"table": "Sales", "column": "BuyerKey", "role": "Buyer", "dimension": "Customer"}
//	  ]
//	}
//
// CSV files must carry a header row naming the columns (order may differ
// from the manifest); empty cells load as NULL.
package csvload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"kdap/internal/dataset"
	"kdap/internal/fulltext"
	"kdap/internal/persist"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// LoadOptions tune warehouse assembly beyond the manifest.
type LoadOptions struct {
	// SegmentDir, when non-empty, streams the fact table's CSV rows
	// through a segment writer into column files under this directory
	// and opens the fact table disk-backed: rows never materialize in
	// memory, and scans page segments in under the store's cache
	// budget. Dimension tables stay resident.
	SegmentDir string
	// SegmentSize is the rows-per-segment for SegmentDir (power of two,
	// >= 64); zero selects relation.DefaultSegmentSize.
	SegmentSize int
}

// ColumnSpec declares one CSV column.
type ColumnSpec struct {
	Name     string `json:"name"`
	Kind     string `json:"kind"` // string | int | float | bool
	FullText bool   `json:"fullText"`
}

// FKSpec declares a foreign key.
type FKSpec struct {
	Column    string `json:"column"`
	RefTable  string `json:"refTable"`
	RefColumn string `json:"refColumn"`
}

// TableSpec declares one table and its backing CSV file.
type TableSpec struct {
	Name        string       `json:"name"`
	File        string       `json:"file"`
	Key         string       `json:"key"`
	Columns     []ColumnSpec `json:"columns"`
	ForeignKeys []FKSpec     `json:"foreignKeys"`
}

// AttrSpec references a (table, attr) pair.
type AttrSpec struct {
	Table string `json:"table"`
	Attr  string `json:"attr"`
}

// HierarchySpec declares one hierarchy, most general level first.
type HierarchySpec struct {
	Name   string     `json:"name"`
	Levels []AttrSpec `json:"levels"`
}

// DimensionSpec declares one dimension.
type DimensionSpec struct {
	Name        string          `json:"name"`
	Tables      []string        `json:"tables"`
	Hierarchies []HierarchySpec `json:"hierarchies"`
	GroupBy     []AttrSpec      `json:"groupBy"`
}

// EdgeLabelSpec assigns a role to a foreign-key edge.
type EdgeLabelSpec struct {
	Table     string `json:"table"`
	Column    string `json:"column"`
	Role      string `json:"role"`
	Dimension string `json:"dimension"`
}

// Manifest is the root of the JSON configuration.
type Manifest struct {
	Name           string          `json:"name"`
	Fact           string          `json:"fact"`
	FactExtensions []string        `json:"factExtensions"`
	Tables         []TableSpec     `json:"tables"`
	Dimensions     []DimensionSpec `json:"dimensions"`
	EdgeLabels     []EdgeLabelSpec `json:"edgeLabels"`
	// Strict enables full referential-integrity validation after load.
	Strict bool `json:"strict"`
}

// parseKind maps a manifest kind name to a relation.Kind.
func parseKind(s string) (relation.Kind, error) {
	switch strings.ToLower(s) {
	case "string", "text":
		return relation.KindString, nil
	case "int", "integer":
		return relation.KindInt, nil
	case "float", "number", "real":
		return relation.KindFloat, nil
	case "bool", "boolean":
		return relation.KindBool, nil
	default:
		return 0, fmt.Errorf("csvload: unknown column kind %q", s)
	}
}

// parseCell converts one CSV cell to a typed value. Empty cells are NULL.
func parseCell(cell string, kind relation.Kind) (relation.Value, error) {
	if cell == "" {
		return relation.Null(), nil
	}
	switch kind {
	case relation.KindString:
		return relation.String(cell), nil
	case relation.KindInt:
		i, err := strconv.ParseInt(cell, 10, 64)
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Int(i), nil
	case relation.KindFloat:
		f, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Float(f), nil
	case relation.KindBool:
		b, err := strconv.ParseBool(cell)
		if err != nil {
			return relation.Value{}, err
		}
		return relation.Bool(b), nil
	default:
		return relation.Value{}, fmt.Errorf("csvload: unsupported kind")
	}
}

// LoadManifest reads and parses a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("csvload: parse %s: %w", path, err)
	}
	return &m, nil
}

// Load builds a warehouse from a manifest, resolving CSV paths relative
// to baseDir. Every table is resident.
func Load(baseDir string, m *Manifest) (*dataset.Warehouse, error) {
	wh, _, err := LoadWithOptions(baseDir, m, LoadOptions{})
	return wh, err
}

// LoadWithOptions builds a warehouse from a manifest. With
// LoadOptions.SegmentDir set, the fact table streams to disk segments
// and the returned Store exposes its paging counters and cache-budget
// knob; otherwise the Store is nil.
func LoadWithOptions(baseDir string, m *Manifest, opts LoadOptions) (*dataset.Warehouse, *persist.Store, error) {
	if m.Fact == "" {
		return nil, nil, fmt.Errorf("csvload: manifest has no fact table")
	}
	db := relation.NewDatabase(m.Name)
	var store *persist.Store
	for _, ts := range m.Tables {
		if opts.SegmentDir != "" && ts.Name == m.Fact {
			st, err := loadTableSegmented(db, baseDir, ts, opts)
			if err != nil {
				return nil, nil, err
			}
			store = st
			continue
		}
		if err := loadTable(db, baseDir, ts); err != nil {
			return nil, nil, err
		}
	}
	if err := db.Validate(m.Strict); err != nil {
		return nil, nil, fmt.Errorf("csvload: %w", err)
	}

	g := schemagraph.New(db, m.Fact)
	g.AddFactExtension(m.FactExtensions...)
	for _, ds := range m.Dimensions {
		d := &schemagraph.Dimension{Name: ds.Name, Tables: ds.Tables}
		for _, hs := range ds.Hierarchies {
			h := schemagraph.Hierarchy{Name: hs.Name}
			for _, lv := range hs.Levels {
				h.Levels = append(h.Levels, schemagraph.AttrRef{Table: lv.Table, Attr: lv.Attr})
			}
			d.Hierarchies = append(d.Hierarchies, h)
		}
		for _, gb := range ds.GroupBy {
			d.GroupBy = append(d.GroupBy, schemagraph.AttrRef{Table: gb.Table, Attr: gb.Attr})
		}
		if err := g.AddDimension(d); err != nil {
			return nil, nil, err
		}
	}
	if err := g.Build(); err != nil {
		return nil, nil, err
	}
	for _, el := range m.EdgeLabels {
		g.LabelEdge(el.Table, el.Column, el.Role, el.Dimension)
	}

	db.Freeze()
	ix := fulltext.NewIndex()
	ix.IndexDatabase(db)
	ix.Freeze()
	return &dataset.Warehouse{DB: db, Graph: g, Index: ix}, store, nil
}

// LoadDir is the convenience entry point: read <dir>/manifest.json and
// build the warehouse from the CSVs beside it.
func LoadDir(dir string) (*dataset.Warehouse, error) {
	m, err := LoadManifest(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, err
	}
	return Load(dir, m)
}

// tableSchema builds the relation schema a table spec declares.
func tableSchema(ts TableSpec) (*relation.Schema, error) {
	cols := make([]relation.Column, len(ts.Columns))
	for i, cs := range ts.Columns {
		k, err := parseKind(cs.Kind)
		if err != nil {
			return nil, fmt.Errorf("table %s: %w", ts.Name, err)
		}
		cols[i] = relation.Column{Name: cs.Name, Kind: k, FullText: cs.FullText}
	}
	fks := make([]relation.ForeignKey, len(ts.ForeignKeys))
	for i, fk := range ts.ForeignKeys {
		fks[i] = relation.ForeignKey{Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn}
	}
	return relation.NewSchema(ts.Name, cols, ts.Key, fks)
}

// streamCSV parses the table's CSV file row by row into emit, in file
// order. The sink decides where rows land — a resident table or a
// segment writer — so arbitrarily large files load in constant memory.
func streamCSV(baseDir string, ts TableSpec, schema *relation.Schema, emit func(row []relation.Value) error) error {
	cols := schema.Columns
	f, err := os.Open(filepath.Join(baseDir, ts.File))
	if err != nil {
		return fmt.Errorf("table %s: %w", ts.Name, err)
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.TrimLeadingSpace = true

	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("table %s: header: %w", ts.Name, err)
	}
	// Map manifest column order onto CSV header order.
	colPos := make([]int, len(cols))
	for i, c := range cols {
		colPos[i] = -1
		for j, h := range header {
			if h == c.Name {
				colPos[i] = j
			}
		}
		if colPos[i] < 0 {
			return fmt.Errorf("table %s: CSV %s lacks column %q", ts.Name, ts.File, c.Name)
		}
	}
	line := 1
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("table %s line %d: %w", ts.Name, line, err)
		}
		line++
		row := make([]relation.Value, len(cols))
		for i, c := range cols {
			v, err := parseCell(rec[colPos[i]], c.Kind)
			if err != nil {
				return fmt.Errorf("table %s line %d column %s: %w", ts.Name, line, c.Name, err)
			}
			row[i] = v
		}
		if err := emit(row); err != nil {
			return fmt.Errorf("table %s line %d: %w", ts.Name, line, err)
		}
	}
	return nil
}

func loadTable(db *relation.Database, baseDir string, ts TableSpec) error {
	schema, err := tableSchema(ts)
	if err != nil {
		return err
	}
	t := relation.NewTable(schema)
	err = streamCSV(baseDir, ts, schema, func(row []relation.Value) error {
		_, err := t.Append(row)
		return err
	})
	if err != nil {
		return err
	}
	return db.AddTable(t)
}

// loadTableSegmented streams the table's CSV rows through a segment
// writer into opts.SegmentDir and registers the disk-backed table.
func loadTableSegmented(db *relation.Database, baseDir string, ts TableSpec, opts LoadOptions) (*persist.Store, error) {
	schema, err := tableSchema(ts)
	if err != nil {
		return nil, err
	}
	w, err := persist.NewSegmentWriter(opts.SegmentDir, schema, persist.SegmentWriterOptions{SegmentSize: opts.SegmentSize})
	if err != nil {
		return nil, err
	}
	if err := streamCSV(baseDir, ts, schema, w.Append); err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	t, store, err := persist.OpenBackedTable(opts.SegmentDir, schema)
	if err != nil {
		return nil, err
	}
	if err := db.AddTable(t); err != nil {
		store.Close()
		return nil, err
	}
	return store, nil
}
