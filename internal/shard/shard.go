// Package shard partitions a fact table into contiguous row-range
// shards, each carrying zone maps — min/max summaries per numeric
// column, foreign-key code columns included — built once at load. The
// OLAP executor plans scans over the partition: a shard whose zone map
// cannot overlap a numeric drill bound, or in which no constraint
// bitset has a single surviving fact row, is skipped wholesale; the
// shards that remain execute independently and their results gather in
// shard order, so output stays deterministic and byte-identical to the
// monolithic scan.
//
// The design follows the disk-based keyword-search literature (EMBANKS)
// and the partitioned star-schema processing the chase-based analytic
// work assumes: per-partition min/max structures are tiny (a handful of
// float64s per shard), cost nothing to consult, and turn a selective
// drill-down over an ingest-clustered column into a scan of a few
// shards instead of the whole dataspace.
package shard

import (
	"math"

	"kdap/internal/bitset"
	"kdap/internal/relation"
)

// ZoneMap is the min/max summary of one numeric column over one
// shard's row range, ignoring NULLs and non-numeric values. A zone
// with no numeric rows has Min > Max (the empty interval), so it
// overlaps nothing and the shard is always prunable on that column.
type ZoneMap struct {
	Min, Max float64
}

// emptyZone is the identity for zone accumulation: overlaps nothing.
func emptyZone() ZoneMap {
	return ZoneMap{Min: math.Inf(1), Max: math.Inf(-1)}
}

// Overlaps reports whether any value in [z.Min, z.Max] could fall in
// the closed interval [lo, hi]. Conservative by construction: a true
// result only means the shard must be scanned, never that it matches.
func (z ZoneMap) Overlaps(lo, hi float64) bool {
	if z.Min > z.Max {
		return false // empty zone: no numeric rows in the shard
	}
	return z.Min <= hi && z.Max >= lo
}

// Observe folds one value into the zone (NaN is ignored). Exported for
// callers maintaining their own zone maps incrementally — the executor
// widens its lazy per-shard attribute zones over appended rows with it.
func (z *ZoneMap) Observe(v float64) { z.observe(v) }

// observe folds one value into the zone.
func (z *ZoneMap) observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	if v < z.Min {
		z.Min = v
	}
	if v > z.Max {
		z.Max = v
	}
}

// Shard is one contiguous row range [Lo, Hi) of the fact table with its
// per-column zone maps.
type Shard struct {
	Lo, Hi int
	zones  map[string]ZoneMap
}

// Len returns the shard's row count.
func (s *Shard) Len() int { return s.Hi - s.Lo }

// Zone returns the shard's zone map for a column built at load time
// (numeric fact columns, foreign keys included). ok is false for
// columns without a zone map — the planner must then scan the shard.
func (s *Shard) Zone(col string) (ZoneMap, bool) {
	z, ok := s.zones[col]
	return z, ok
}

// Partition is a fixed division of n fact rows into contiguous shards.
// It is immutable after Build and safe for concurrent use.
type Partition struct {
	n      int
	shards []Shard
}

// Build partitions the table into count contiguous row-range shards
// (the last one absorbs the remainder) and computes zone maps for
// every numeric column — measures and foreign-key code columns alike —
// in one pass over the table's dense float views. count is clamped to
// [1, rows]; an empty table yields a single empty shard.
func Build(t *relation.Table, count int) *Partition {
	n := t.Len()
	if count < 1 {
		count = 1
	}
	if count > n && n > 0 {
		count = n
	}
	cols := make(map[string][]float64)
	for _, c := range t.Schema().Columns {
		if c.Kind == relation.KindInt || c.Kind == relation.KindFloat {
			cols[c.Name] = t.FloatColumn(c.Name)
		}
	}
	p := &Partition{n: n, shards: make([]Shard, count)}
	size := (n + count - 1) / count
	if size == 0 {
		size = 1
	}
	for i := range p.shards {
		lo := i * size
		hi := min(lo+size, n)
		if lo > n {
			lo = n
		}
		sh := Shard{Lo: lo, Hi: hi, zones: make(map[string]ZoneMap, len(cols))}
		for name, vec := range cols {
			z := emptyZone()
			for _, v := range vec[lo:hi] {
				z.observe(v)
			}
			sh.zones[name] = z
		}
		p.shards[i] = sh
	}
	return p
}

// SegmentZoner is implemented by segment stores (internal/persist) that
// recorded per-segment min/max summaries at write time; BuildSegmented
// folds those into shard zones without paging any column data in.
type SegmentZoner interface {
	SegmentZones(col string) (mins, maxs []float64)
}

// BuildSegmented partitions a disk-backed fact table into count shards
// whose boundaries fall on segment multiples, so a shard is a whole
// number of storage segments and pruning one never strands a partial
// page. Zone maps come from the backing: folded from the manifest's
// per-segment zones when the store exposes them (the normal case — zero
// I/O), or accumulated from the segmented float readers otherwise.
// count is clamped so every shard holds at least one segment.
func BuildSegmented(t *relation.Table, count int) *Partition {
	b := t.Backing()
	if b == nil {
		return Build(t, count)
	}
	n := t.Len()
	ss := b.SegmentSize()
	nseg := relation.NumSegments(n, ss)
	if count < 1 {
		count = 1
	}
	if count > nseg && nseg > 0 {
		count = nseg
	}
	type segZones struct {
		mins, maxs []float64
		rd         relation.FloatReader
	}
	cols := make(map[string]segZones)
	zoner, _ := b.(SegmentZoner)
	for _, c := range t.Schema().Columns {
		if c.Kind != relation.KindInt && c.Kind != relation.KindFloat {
			continue
		}
		sz := segZones{}
		if zoner != nil {
			sz.mins, sz.maxs = zoner.SegmentZones(c.Name)
		}
		if sz.mins == nil {
			sz.rd = t.FloatReader(c.Name)
		}
		cols[c.Name] = sz
	}
	p := &Partition{n: n, shards: make([]Shard, count)}
	segsPer := (nseg + count - 1) / count
	if segsPer == 0 {
		segsPer = 1
	}
	for i := range p.shards {
		sLo := i * segsPer
		sHi := min(sLo+segsPer, nseg)
		if sLo > nseg {
			sLo = nseg
		}
		sh := Shard{Lo: min(sLo*ss, n), Hi: min(sHi*ss, n), zones: make(map[string]ZoneMap, len(cols))}
		for name, sz := range cols {
			z := emptyZone()
			for si := sLo; si < sHi; si++ {
				if sz.mins != nil {
					if sz.mins[si] <= sz.maxs[si] {
						z.observe(sz.mins[si])
						z.observe(sz.maxs[si])
					}
					continue
				}
				for _, v := range sz.rd.FloatSegment(si) {
					z.observe(v)
				}
			}
			sh.zones[name] = z
		}
		p.shards[i] = sh
	}
	return p
}

// ZonesOver computes per-shard zone maps for an arbitrary fact-aligned
// float column (NaN marks NULL/absent) — the executor uses it to build
// lazy zone maps over memoized dimension-attribute columns, which are
// not part of the fact table and so have no load-time zones.
func ZonesOver(vals []float64, p *Partition) []ZoneMap {
	out := make([]ZoneMap, len(p.shards))
	for i := range p.shards {
		sh := &p.shards[i]
		z := emptyZone()
		lo, hi := sh.Lo, min(sh.Hi, len(vals))
		for lo < hi {
			z.observe(vals[lo])
			lo++
		}
		out[i] = z
	}
	return out
}

// Extend returns a partition covering t's current row count: a copy of
// p whose last shard absorbs the appended rows [p.NumRows(), newN),
// with their values folded into that shard's zone maps. The receiver is
// never mutated — callers publish the extended partition atomically, so
// readers holding the old one keep a consistent (shorter) view. Zone
// maps only widen, so plans stay conservative for both.
func (p *Partition) Extend(t *relation.Table, newN int) *Partition {
	oldN := p.n
	if newN <= oldN || len(p.shards) == 0 {
		return p
	}
	shards := append([]Shard(nil), p.shards...)
	last := &shards[len(shards)-1]
	zones := make(map[string]ZoneMap, len(last.zones))
	for name, z := range last.zones {
		cur := relation.NewFloatCursor(t.FloatReader(name))
		for r := oldN; r < newN; r++ {
			z.observe(cur.At(r))
		}
		zones[name] = z
	}
	last.Hi, last.zones = newN, zones
	return &Partition{n: newN, shards: shards}
}

// Count returns the number of shards.
func (p *Partition) Count() int { return len(p.shards) }

// NumRows returns the partitioned universe size (fact rows).
func (p *Partition) NumRows() int { return p.n }

// Shards returns the shards in row order. The slice is shared and must
// not be modified.
func (p *Partition) Shards() []Shard { return p.shards }

// Bound is a closed-interval restriction [Lo, Hi] on one zone-mapped
// column, the declarative form of a numeric drill predicate. Callers
// derive a conservative superset of the predicate's matching values
// (e.g. "Price>500" becomes [500, +Inf]); exactness stays with the
// row-level predicate, the bound only licenses skipping shards.
type Bound struct {
	Col    string
	Lo, Hi float64
}

// Plan is the planner's verdict over one scan: which shards survive and
// how many were pruned, split by the evidence that pruned them.
type Plan struct {
	// Survivors are the indices of shards that must be scanned, ascending.
	Survivors []int
	// PrunedZone counts shards skipped because a zone map cannot overlap
	// a bound; PrunedBits counts shards skipped because a constraint
	// bitset has no member in the shard's row range.
	PrunedZone, PrunedBits int
}

// Scanned returns the number of surviving shards.
func (pl Plan) Scanned() int { return len(pl.Survivors) }

// Pruned returns the total number of skipped shards.
func (pl Plan) Pruned() int { return pl.PrunedZone + pl.PrunedBits }

// Plan consults the zone maps against every bound and the constraint
// bitsets against every shard's row range, returning the shards that
// could contain qualifying rows. Zone evidence is checked first (it is
// a few float compares); bit evidence second. Empty bounds and bits
// mean a full scan: every shard survives.
func (p *Partition) Plan(bounds []Bound, bits []*bitset.Set) Plan {
	pl := Plan{Survivors: make([]int, 0, len(p.shards))}
shards:
	for i := range p.shards {
		sh := &p.shards[i]
		if sh.Lo >= sh.Hi {
			continue // empty tail shard: nothing to scan, nothing pruned
		}
		for _, b := range bounds {
			if z, ok := sh.zones[b.Col]; ok && !z.Overlaps(b.Lo, b.Hi) {
				pl.PrunedZone++
				continue shards
			}
		}
		for _, s := range bits {
			if !s.AnyInRange(sh.Lo, sh.Hi) {
				pl.PrunedBits++
				continue shards
			}
		}
		pl.Survivors = append(pl.Survivors, i)
	}
	return pl
}
