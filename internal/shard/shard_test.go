package shard

import (
	"math"
	"reflect"
	"testing"

	"kdap/internal/bitset"
	"kdap/internal/relation"
)

// clusteredTable builds a table whose Seq column ascends with the row ID
// (the ingest-clustered case zone maps exploit) and whose Noise column
// is uncorrelated with row order.
func clusteredTable(t *testing.T, n int) *relation.Table {
	t.Helper()
	schema, err := relation.NewSchema("F", []relation.Column{
		{Name: "Seq", Kind: relation.KindInt},
		{Name: "Noise", Kind: relation.KindFloat},
		{Name: "Label", Kind: relation.KindString},
	}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(schema)
	for i := 0; i < n; i++ {
		noise := float64((i*7919)%100) / 10
		tab.MustAppend(relation.Int(int64(i)), relation.Float(noise), relation.String("x"))
	}
	return tab
}

func TestBuildShapesAndZones(t *testing.T) {
	tab := clusteredTable(t, 1000)
	p := Build(tab, 8)
	if p.Count() != 8 || p.NumRows() != 1000 {
		t.Fatalf("Count=%d NumRows=%d", p.Count(), p.NumRows())
	}
	prev := 0
	total := 0
	for i, sh := range p.Shards() {
		if sh.Lo != prev {
			t.Fatalf("shard %d not contiguous: Lo=%d want %d", i, sh.Lo, prev)
		}
		prev = sh.Hi
		total += sh.Len()
		z, ok := sh.Zone("Seq")
		if !ok {
			t.Fatalf("shard %d missing Seq zone", i)
		}
		if z.Min != float64(sh.Lo) || z.Max != float64(sh.Hi-1) {
			t.Fatalf("shard %d Seq zone [%g,%g], rows [%d,%d)", i, z.Min, z.Max, sh.Lo, sh.Hi)
		}
		if _, ok := sh.Zone("Label"); ok {
			t.Fatal("string column must not carry a zone map")
		}
	}
	if prev != 1000 || total != 1000 {
		t.Fatalf("shards cover %d rows ending at %d", total, prev)
	}
}

func TestBuildClamps(t *testing.T) {
	tab := clusteredTable(t, 5)
	if got := Build(tab, 64).Count(); got != 5 {
		t.Errorf("count clamped to rows: got %d", got)
	}
	if got := Build(tab, 0).Count(); got != 1 {
		t.Errorf("count clamped to 1: got %d", got)
	}
	empty := relation.NewTable(tab.Schema())
	p := Build(empty, 4)
	if p.NumRows() != 0 {
		t.Errorf("empty NumRows = %d", p.NumRows())
	}
	if pl := p.Plan(nil, nil); pl.Scanned() != 0 || pl.Pruned() != 0 {
		t.Errorf("empty partition plan = %+v", pl)
	}
}

func TestZoneOverlaps(t *testing.T) {
	z := ZoneMap{Min: 10, Max: 20}
	for _, c := range []struct {
		lo, hi float64
		want   bool
	}{
		{0, 9, false}, {21, 30, false}, {0, 10, true}, {20, 99, true},
		{12, 13, true}, {0, math.Inf(1), true}, {math.Inf(-1), 5, false},
	} {
		if got := z.Overlaps(c.lo, c.hi); got != c.want {
			t.Errorf("Overlaps(%g,%g) = %v", c.lo, c.hi, got)
		}
	}
	if emptyZone().Overlaps(math.Inf(-1), math.Inf(1)) {
		t.Error("empty zone overlapped the whole line")
	}
}

func TestPlanZonePruning(t *testing.T) {
	tab := clusteredTable(t, 1000)
	p := Build(tab, 10) // shard i covers Seq [100i, 100i+99]
	pl := p.Plan([]Bound{{Col: "Seq", Lo: 730, Hi: math.Inf(1)}}, nil)
	if !reflect.DeepEqual(pl.Survivors, []int{7, 8, 9}) {
		t.Fatalf("survivors = %v", pl.Survivors)
	}
	if pl.PrunedZone != 7 || pl.PrunedBits != 0 {
		t.Fatalf("pruned zone=%d bits=%d", pl.PrunedZone, pl.PrunedBits)
	}
	// An uncorrelated column prunes nothing: every shard's zone spans
	// nearly the full domain.
	pl = p.Plan([]Bound{{Col: "Noise", Lo: 5, Hi: 6}}, nil)
	if pl.Scanned() != 10 {
		t.Fatalf("noise column pruned %d shards", pl.Pruned())
	}
	// A column without a zone map never prunes.
	pl = p.Plan([]Bound{{Col: "Label", Lo: 0, Hi: 1}}, nil)
	if pl.Scanned() != 10 {
		t.Fatalf("unmapped column pruned %d shards", pl.Pruned())
	}
}

func TestPlanBitsPruning(t *testing.T) {
	tab := clusteredTable(t, 1000)
	p := Build(tab, 10)
	a := bitset.FromSorted(1000, []int{5, 150, 155, 930})
	b := bitset.FromSorted(1000, []int{150, 930, 999})
	pl := p.Plan(nil, []*bitset.Set{a, b})
	// Both constraints have members only in shards 1 and 9.
	if !reflect.DeepEqual(pl.Survivors, []int{1, 9}) {
		t.Fatalf("survivors = %v", pl.Survivors)
	}
	if pl.PrunedBits != 8 || pl.PrunedZone != 0 {
		t.Fatalf("pruned zone=%d bits=%d", pl.PrunedZone, pl.PrunedBits)
	}
	// Zone and bit evidence compose; zone is consulted first.
	pl = p.Plan([]Bound{{Col: "Seq", Lo: 900, Hi: 2000}}, []*bitset.Set{a})
	if !reflect.DeepEqual(pl.Survivors, []int{9}) {
		t.Fatalf("composed survivors = %v", pl.Survivors)
	}
	if pl.PrunedZone != 9 || pl.PrunedBits != 0 {
		t.Fatalf("composed pruned zone=%d bits=%d", pl.PrunedZone, pl.PrunedBits)
	}
}

func TestZoneSkipsNulls(t *testing.T) {
	schema, err := relation.NewSchema("N", []relation.Column{
		{Name: "V", Kind: relation.KindFloat},
	}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := relation.NewTable(schema)
	tab.MustAppend(relation.Null())
	tab.MustAppend(relation.Float(3))
	tab.MustAppend(relation.Null())
	tab.MustAppend(relation.Null())
	p := Build(tab, 2)
	z, _ := p.Shards()[0].Zone("V")
	if z.Min != 3 || z.Max != 3 {
		t.Errorf("zone with nulls = [%g,%g]", z.Min, z.Max)
	}
	// The all-NULL shard carries the empty zone and is always prunable.
	z, _ = p.Shards()[1].Zone("V")
	if z.Overlaps(math.Inf(-1), math.Inf(1)) {
		t.Error("all-NULL shard zone should overlap nothing")
	}
}
