package fulltext

import "sort"

// Suggest returns indexed terms within edit distance 1 or 2 of the query
// word (after normalization), ordered by (distance, document frequency
// desc, term). The KDAP engine surfaces these as "did you mean"
// corrections when a keyword matches nothing even with prefix expansion —
// rounding out §3's approximate-search requirement beyond stemming and
// partial matching.
func (ix *Index) Suggest(word string, max int) []string {
	if max <= 0 {
		return nil
	}
	q := Normalize(word)
	if q == "" {
		return nil
	}
	type cand struct {
		term string
		dist int
		df   int
	}
	var cands []cand
	for term, ti := range ix.terms {
		if term == q {
			continue
		}
		// Cheap length gate before the DP.
		dl := len(term) - len(q)
		if dl < -2 || dl > 2 {
			continue
		}
		if d := boundedEditDistance(q, term, 2); d <= 2 {
			cands = append(cands, cand{term: term, dist: d, df: len(ti.postings)})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].dist != cands[j].dist {
			return cands[i].dist < cands[j].dist
		}
		if cands[i].df != cands[j].df {
			return cands[i].df > cands[j].df
		}
		return cands[i].term < cands[j].term
	})
	if len(cands) > max {
		cands = cands[:max]
	}
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = ix.surfaceForm(c.term)
	}
	return out
}

// surfaceForm maps an index term (a stem) back to a word a user would
// recognize, by scanning the first document containing the term for the
// raw word that normalizes to it.
func (ix *Index) surfaceForm(term string) string {
	ti := ix.terms[term]
	if ti == nil || len(ti.postings) == 0 {
		return term
	}
	text := ix.docs[ti.postings[0].doc].Value.Text()
	for _, w := range RawWords(text) {
		if Normalize(w) == term {
			return w
		}
	}
	return term
}

// boundedEditDistance computes the Levenshtein distance between a and b,
// returning bound+1 as soon as the distance provably exceeds bound.
func boundedEditDistance(a, b string, bound int) int {
	la, lb := len(a), len(b)
	if la-lb > bound || lb-la > bound {
		return bound + 1
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if v := prev[j] + 1; v < m {
				m = v
			}
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}
