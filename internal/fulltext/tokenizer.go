// Package fulltext implements the text-search substrate KDAP requires: an
// inverted index over *attribute instances* rather than tuples.
//
// The paper (§3) stores each distinct attribute value as a virtual document
// in a conceptual relation (TabName, AttrID, Document) and requires
// (a) direct approximate search — stemming and partial matches — over both
// dimension and fact data, and (b) a relevance score per hit that the
// star-net ranking consumes as Sim(hit, query). This package provides both,
// with classic Lucene-style TF-IDF scoring (the prototype used Lucene) and
// positional postings for phrase queries (§4.3).
package fulltext

import (
	"strings"
	"unicode"
)

// Token is one indexed term occurrence: the normalized (lower-cased,
// stemmed) term and its word position within the document.
type Token struct {
	Term string
	Pos  int
}

// RawWords splits text into its raw words: maximal runs of letters or
// digits, unnormalized.
func RawWords(text string) []string {
	var out []string
	start := -1
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, text[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, text[start:])
	}
	return out
}

// Tokenize splits text into normalized tokens: runs of letters or digits,
// lower-cased, with alphabetic tokens Porter-stemmed. Positions count
// words, so "Flat Panel(LCD)" yields flat@0, panel@1, lcd@2 — parentheses
// and other punctuation separate words but do not occupy positions.
func Tokenize(text string) []Token {
	words := RawWords(text)
	if len(words) == 0 {
		return nil
	}
	out := make([]Token, 0, len(words))
	for pos, w := range words {
		out = append(out, Token{Term: Normalize(w), Pos: pos})
	}
	return out
}

// Terms returns just the normalized terms of text, in order.
func Terms(text string) []string {
	toks := Tokenize(text)
	terms := make([]string, len(toks))
	for i, t := range toks {
		terms[i] = t.Term
	}
	return terms
}

// Normalize lower-cases a single word and stems it if it is purely
// alphabetic (mixed alphanumerics such as model numbers are kept verbatim
// so "Mountain-200" still matches "200").
func Normalize(word string) string {
	w := strings.ToLower(word)
	for _, r := range w {
		if !unicode.IsLower(r) {
			return w
		}
	}
	return Stem(w)
}
