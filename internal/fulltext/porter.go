package fulltext

// Stem reduces an English word to its Porter stem. The input must already
// be lower-case; words shorter than three letters are returned unchanged,
// as in Porter's original description. This is a from-scratch
// implementation of the classic five-step algorithm (M.F. Porter, "An
// algorithm for suffix stripping", 1980), which is what Lucene's
// PorterStemFilter — used by the paper's prototype — implements.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	s := &stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

// stemmer holds the word being stemmed. All step methods mutate b.
type stemmer struct {
	b []byte
	// j marks the end of the stem while a candidate suffix is held; it is
	// set by hasSuffix and consumed by the measure/condition helpers.
	j int
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// letters other than a,e,i,o,u, with 'y' a consonant iff it follows a
// vowel position or starts the word.
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	default:
		return true
	}
}

// measure returns m, the number of vowel-consonant sequences in b[0..j].
func (s *stemmer) measure() int {
	n, i := 0, 0
	j := s.j
	for {
		if i > j {
			return n
		}
		if !s.isConsonant(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > j {
				return n
			}
			if s.isConsonant(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > j {
				return n
			}
			if !s.isConsonant(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0..j] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether b[i-1..i] is a double consonant.
func (s *stemmer) doubleConsonant(i int) bool {
	if i < 1 {
		return false
	}
	return s.b[i] == s.b[i-1] && s.isConsonant(i)
}

// cvc reports whether b[i-2..i] is consonant-vowel-consonant with the
// final consonant not w, x, or y — the *o condition of Porter's paper.
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the word ends with suf; when it does, j is set
// to the last index of the stem preceding the suffix.
func (s *stemmer) hasSuffix(suf string) bool {
	n := len(s.b)
	if len(suf) > n {
		return false
	}
	if string(s.b[n-len(suf):]) != suf {
		return false
	}
	s.j = n - len(suf) - 1
	return true
}

// setSuffix replaces the currently matched suffix (everything after j)
// with rep.
func (s *stemmer) setSuffix(rep string) {
	s.b = append(s.b[:s.j+1], rep...)
}

// replaceIfM0 replaces the matched suffix with rep when measure() > 0.
func (s *stemmer) replaceIfM0(rep string) {
	if s.measure() > 0 {
		s.setSuffix(rep)
	}
}

func (s *stemmer) step1a() {
	if s.b[len(s.b)-1] != 's' {
		return
	}
	switch {
	case s.hasSuffix("sses"):
		s.setSuffix("ss")
	case s.hasSuffix("ies"):
		s.setSuffix("i")
	case s.hasSuffix("ss"):
		// unchanged
	case s.hasSuffix("s"):
		s.setSuffix("")
	}
}

func (s *stemmer) step1b() {
	if s.hasSuffix("eed") {
		if s.measure() > 0 {
			s.b = s.b[:len(s.b)-1] // eed -> ee
		}
		return
	}
	fired := false
	if s.hasSuffix("ed") && s.vowelInStem() {
		s.setSuffix("")
		fired = true
	} else if s.hasSuffix("ing") && s.vowelInStem() {
		s.setSuffix("")
		fired = true
	}
	if !fired {
		return
	}
	switch {
	case s.hasSuffix("at"):
		s.setSuffix("ate")
	case s.hasSuffix("bl"):
		s.setSuffix("ble")
	case s.hasSuffix("iz"):
		s.setSuffix("ize")
	case s.doubleConsonant(len(s.b) - 1):
		switch s.b[len(s.b)-1] {
		case 'l', 's', 'z':
			// keep the double consonant
		default:
			s.b = s.b[:len(s.b)-1]
		}
	default:
		s.j = len(s.b) - 1
		if s.measure() == 1 && s.cvc(len(s.b)-1) {
			s.b = append(s.b, 'e')
		}
	}
}

func (s *stemmer) step1c() {
	if s.hasSuffix("y") && s.vowelInStem() {
		s.b[len(s.b)-1] = 'i'
	}
}

// step2 maps double suffixes to single ones when m > 0. The pairs use the
// revised rules (bli→ble, logi→log) that Porter later endorsed and Lucene
// implements.
func (s *stemmer) step2() {
	rules := []struct{ from, to string }{
		{"ational", "ate"}, {"tional", "tion"},
		{"enci", "ence"}, {"anci", "ance"},
		{"izer", "ize"},
		{"bli", "ble"},
		{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
		{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
		{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"}, {"ousness", "ous"},
		{"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
		{"logi", "log"},
	}
	for _, r := range rules {
		if s.hasSuffix(r.from) {
			s.replaceIfM0(r.to)
			return
		}
	}
}

func (s *stemmer) step3() {
	rules := []struct{ from, to string }{
		{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
		{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
	}
	for _, r := range rules {
		if s.hasSuffix(r.from) {
			s.replaceIfM0(r.to)
			return
		}
	}
}

func (s *stemmer) step4() {
	suffixes := []string{
		"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
		"ement", "ment", "ent", "ion", "ou", "ism", "ate", "iti",
		"ous", "ive", "ize",
	}
	for _, suf := range suffixes {
		if !s.hasSuffix(suf) {
			continue
		}
		if suf == "ion" {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				continue
			}
		}
		if s.measure() > 1 {
			s.setSuffix("")
		}
		return
	}
}

func (s *stemmer) step5a() {
	if s.b[len(s.b)-1] != 'e' {
		return
	}
	s.j = len(s.b) - 2
	m := s.measure()
	if m > 1 || (m == 1 && !s.cvc(len(s.b)-2)) {
		s.b = s.b[:len(s.b)-1]
	}
}

func (s *stemmer) step5b() {
	n := len(s.b)
	if n < 2 || s.b[n-1] != 'l' || !s.doubleConsonant(n-1) {
		return
	}
	s.j = n - 1
	if s.measure() > 1 {
		s.b = s.b[:n-1]
	}
}
