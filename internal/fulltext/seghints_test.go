package fulltext

import (
	"testing"

	"kdap/internal/relation"
)

func TestDocSegmentHints(t *testing.T) {
	ix := NewIndex()
	d := Doc{Table: "T", Attr: "Name", Value: relation.String("mountain bike")}
	if _, ok := ix.DocSegments(d); ok {
		t.Fatal("hint reported before any was added")
	}
	ix.Add("T", "Name", d.Value)
	ix.AddDocSegments(d, []int32{0, 3, 7})
	segs, ok := ix.DocSegments(d)
	if !ok || len(segs) != 3 || segs[1] != 3 {
		t.Fatalf("DocSegments = %v, %v", segs, ok)
	}
	// An explicit empty list is definitive absence, distinct from no hint.
	empty := Doc{Table: "T", Attr: "Name", Value: relation.String("gone")}
	ix.AddDocSegments(empty, []int32{})
	segs, ok = ix.DocSegments(empty)
	if !ok || len(segs) != 0 {
		t.Fatalf("empty hint lost: %v, %v", segs, ok)
	}
	other := Doc{Table: "T", Attr: "Name", Value: relation.String("road bike")}
	if _, ok := ix.DocSegments(other); ok {
		t.Fatal("unrelated doc gained a hint")
	}
}

// segmenterBacking is a minimal ColumnBacking + TermSegmenter for
// driving IndexDatabase's hint collection without disk files.
type segmenterBacking struct {
	codes []int32
	dict  []relation.Value
	segs  map[relation.Value][]int32
}

func (b *segmenterBacking) NumRows() int     { return len(b.codes) }
func (b *segmenterBacking) SegmentSize() int { return relation.DefaultSegmentSize }
func (b *segmenterBacking) FloatReader(col string) relation.FloatReader {
	return nil
}
func (b *segmenterBacking) DictReader(col string) relation.DictReader {
	return relation.ResidentCodes(b.codes, b.dict)
}
func (b *segmenterBacking) SegmentMayContain(col string, si int, v relation.Value) (bool, bool) {
	return true, false
}
func (b *segmenterBacking) SegmentZoneOverlaps(col string, si int, lo, hi float64) (bool, bool) {
	return true, false
}
func (b *segmenterBacking) NoteSkips(bloom, zone int) {}
func (b *segmenterBacking) ValueSegments(col string, v relation.Value) ([]int32, bool) {
	s, ok := b.segs[v]
	return s, ok
}

func TestIndexDatabaseCollectsSegmentHints(t *testing.T) {
	b := &segmenterBacking{
		codes: []int32{0, 1, 0},
		dict:  []relation.Value{relation.String("alpha works"), relation.String("beta street")},
		segs: map[relation.Value][]int32{
			relation.String("alpha works"): {0},
			relation.String("beta street"): {0},
		},
	}
	schema := relation.MustSchema("T", []relation.Column{
		{Name: "Name", Kind: relation.KindString, FullText: true},
	}, "", nil)
	tab, err := relation.NewBackedTable(schema, b)
	if err != nil {
		t.Fatal(err)
	}
	db := relation.NewDatabase("X")
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	ix := NewIndex()
	ix.IndexDatabase(db)
	segs, ok := ix.DocSegments(Doc{Table: "T", Attr: "Name", Value: relation.String("alpha works")})
	if !ok || len(segs) != 1 || segs[0] != 0 {
		t.Fatalf("hint for backed term = %v, %v", segs, ok)
	}
}
