package fulltext

import (
	"fmt"
	"testing"

	"kdap/internal/relation"
)

func benchIndex(n int) *Index {
	ix := NewIndex()
	words := []string{"mountain", "road", "touring", "silver", "black", "frame",
		"wheel", "tire", "helmet", "jersey", "california", "seattle"}
	for i := 0; i < n; i++ {
		text := fmt.Sprintf("%s %s %s %d", words[i%len(words)],
			words[(i*7)%len(words)], words[(i*13)%len(words)], i)
		ix.Add("T", "A", relation.String(text))
	}
	return ix
}

func BenchmarkIndexBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if benchIndex(2000).DocCount() == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"relational", "categories", "aggregations", "mountain",
		"bikes", "exploration", "dimensional", "interestingness"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}

func BenchmarkSearchClassicVsBM25(b *testing.B) {
	ix := benchIndex(5000)
	for _, sim := range []Similarity{ClassicTFIDF, BM25} {
		b.Run(sim.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if len(ix.Search("mountain silver", Options{Similarity: sim})) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

func BenchmarkSuggest(b *testing.B) {
	ix := benchIndex(5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Suggest("montain", 3)
	}
}
