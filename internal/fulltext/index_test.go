package fulltext

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"kdap/internal/relation"
)

// smallIndex builds an index with a handful of attribute instances drawn
// from the paper's running examples.
func smallIndex() *Index {
	ix := NewIndex()
	ix.Add("Loc", "City", relation.String("Columbus"))
	ix.Add("Loc", "City", relation.String("San Jose"))
	ix.Add("Loc", "City", relation.String("San Antonio"))
	ix.Add("Loc", "City", relation.String("San Francisco"))
	ix.Add("Holiday", "Event", relation.String("Columbus Day"))
	ix.Add("PGROUP", "GroupName", relation.String("LCD Projectors"))
	ix.Add("PGROUP", "GroupName", relation.String("Flat Panel(LCD)"))
	ix.Add("PGROUP", "GroupName", relation.String("Plasma TVs"))
	ix.Add("Customer", "FirstName", relation.String("Jose"))
	return ix
}

func docValues(hits []Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Doc.Value.Text()
	}
	return out
}

func TestAddDeduplicates(t *testing.T) {
	ix := NewIndex()
	ix.Add("T", "A", relation.String("hello world"))
	ix.Add("T", "A", relation.String("hello world"))
	if ix.DocCount() != 1 {
		t.Errorf("DocCount = %d after duplicate Add", ix.DocCount())
	}
	ix.Add("T", "B", relation.String("hello world")) // different attr → new doc
	if ix.DocCount() != 2 {
		t.Errorf("DocCount = %d, attr should distinguish docs", ix.DocCount())
	}
}

func TestAddSkipsEmptyText(t *testing.T) {
	ix := NewIndex()
	ix.Add("T", "A", relation.String("   ---   "))
	ix.Add("T", "A", relation.Null())
	if ix.DocCount() != 0 {
		t.Errorf("empty/punctuation docs indexed: %d", ix.DocCount())
	}
}

func TestSearchFindsAcrossAttributes(t *testing.T) {
	ix := smallIndex()
	hits := ix.Search("Columbus", Options{})
	if len(hits) != 2 {
		t.Fatalf("Columbus hits = %v", docValues(hits))
	}
	// "Columbus" alone is a full match of the one-word city doc but only
	// half of "Columbus Day", so the city must rank first.
	if hits[0].Doc.Table != "Loc" || hits[1].Doc.Table != "Holiday" {
		t.Errorf("ranking: %v", docValues(hits))
	}
	if hits[0].Score <= hits[1].Score {
		t.Errorf("scores not ordered: %v", hits)
	}
}

func TestSearchMultiTermPrefersBothTerms(t *testing.T) {
	ix := smallIndex()
	hits := ix.Search("san jose", Options{})
	if len(hits) == 0 || hits[0].Doc.Value.Text() != "San Jose" {
		t.Fatalf("top hit for 'san jose' = %v", docValues(hits))
	}
	// All three "San *" cities and "Jose" the customer should appear.
	if len(hits) != 4 {
		t.Errorf("expected 4 hits, got %v", docValues(hits))
	}
}

func TestSearchStemmedMatch(t *testing.T) {
	ix := NewIndex()
	ix.Add("P", "Name", relation.String("Mountain Bikes"))
	for _, q := range []string{"bike", "Bikes", "BIKE", "biking"} {
		hits := ix.Search(q, Options{})
		if len(hits) != 1 {
			t.Errorf("query %q: hits = %v", q, docValues(hits))
		}
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := smallIndex()
	if hits := ix.Search("zzzzz", Options{}); hits != nil {
		t.Errorf("unexpected hits: %v", docValues(hits))
	}
	if hits := ix.Search("", Options{}); hits != nil {
		t.Errorf("empty query should yield nil, got %v", docValues(hits))
	}
	if hits := NewIndex().Search("x", Options{}); hits != nil {
		t.Errorf("empty index should yield nil, got %v", docValues(hits))
	}
}

func TestSearchLimit(t *testing.T) {
	ix := smallIndex()
	hits := ix.Search("san", Options{Limit: 2})
	if len(hits) != 2 {
		t.Errorf("Limit not applied: %v", docValues(hits))
	}
}

func TestSearchPrefix(t *testing.T) {
	ix := smallIndex()
	// "colum" matches nothing exactly but prefixes "columbus".
	if hits := ix.Search("colum", Options{}); hits != nil {
		t.Fatalf("exact search should miss: %v", docValues(hits))
	}
	hits := ix.Search("colum", Options{Prefix: true})
	if len(hits) != 2 {
		t.Fatalf("prefix search hits = %v", docValues(hits))
	}
	// Prefix matches score below what the exact query scores.
	exact := ix.Search("Columbus", Options{})
	if hits[0].Score >= exact[0].Score {
		t.Errorf("prefix score %g should be below exact score %g", hits[0].Score, exact[0].Score)
	}
}

func TestSearchPhrase(t *testing.T) {
	ix := smallIndex()
	hits := ix.SearchPhrase("San Jose", Options{})
	if len(hits) != 1 || hits[0].Doc.Value.Text() != "San Jose" {
		t.Fatalf("phrase hits = %v", docValues(hits))
	}
	// Reversed order is not a phrase.
	if hits := ix.SearchPhrase("Jose San", Options{}); hits != nil {
		t.Errorf("reversed phrase matched: %v", docValues(hits))
	}
	// Single-word phrase degenerates to term search.
	if hits := ix.SearchPhrase("Columbus", Options{}); len(hits) != 2 {
		t.Errorf("single-term phrase: %v", docValues(hits))
	}
	if hits := ix.SearchPhrase("", Options{}); hits != nil {
		t.Errorf("empty phrase: %v", docValues(hits))
	}
	if hits := ix.SearchPhrase("San Zanzibar", Options{}); hits != nil {
		t.Errorf("half-missing phrase matched: %v", docValues(hits))
	}
}

func TestSearchPhraseNonAdjacent(t *testing.T) {
	ix := NewIndex()
	ix.Add("T", "A", relation.String("flat screen panel"))
	if hits := ix.SearchPhrase("flat panel", Options{}); hits != nil {
		t.Errorf("non-adjacent words matched as phrase: %v", docValues(hits))
	}
	ix.Add("T", "A", relation.String("flat panel screen"))
	hits := ix.SearchPhrase("flat panel", Options{})
	if len(hits) != 1 || hits[0].Doc.Value.Text() != "flat panel screen" {
		t.Errorf("adjacent phrase missed: %v", docValues(hits))
	}
}

func TestIDFOrdersRareTermsHigher(t *testing.T) {
	ix := NewIndex()
	// "common" appears in many docs, "rare" in one; a doc matching the
	// rare term must outscore a doc matching the common term.
	for i := 0; i < 20; i++ {
		ix.Add("T", "A", relation.String(fmt.Sprintf("common filler %d", i)))
	}
	ix.Add("T", "A", relation.String("rare gem"))
	common := ix.Search("common", Options{})
	rare := ix.Search("rare", Options{})
	if len(rare) != 1 || len(common) != 20 {
		t.Fatal("setup wrong")
	}
	if rare[0].Score <= common[0].Score {
		t.Errorf("rare term score %g not above common term score %g", rare[0].Score, common[0].Score)
	}
}

func TestLengthNormPrefersShorterDocs(t *testing.T) {
	ix := NewIndex()
	ix.Add("T", "A", relation.String("zebra"))
	ix.Add("T", "A", relation.String("zebra in a very long descriptive sentence about animals"))
	hits := ix.Search("zebra", Options{})
	if len(hits) != 2 || hits[0].Doc.Value.Text() != "zebra" {
		t.Errorf("length norm not applied: %v", docValues(hits))
	}
}

func TestIndexDatabase(t *testing.T) {
	db := relation.NewDatabase("d")
	tab := db.MustCreateTable(relation.MustSchema("P", []relation.Column{
		{Name: "Key", Kind: relation.KindInt},
		{Name: "Name", Kind: relation.KindString, FullText: true},
		{Name: "Hidden", Kind: relation.KindString}, // not full-text
	}, "Key", nil))
	tab.MustAppend(relation.Int(1), relation.String("Mountain Bikes"), relation.String("secret"))
	tab.MustAppend(relation.Int(2), relation.String("Road Bikes"), relation.String("secret"))
	tab.MustAppend(relation.Int(3), relation.String("Mountain Bikes"), relation.String("dup value"))

	ix := NewIndex()
	ix.IndexDatabase(db)
	if ix.DocCount() != 2 {
		t.Errorf("DocCount = %d, want 2 distinct values", ix.DocCount())
	}
	if hits := ix.Search("secret", Options{}); hits != nil {
		t.Errorf("non-fulltext column leaked into index: %v", docValues(hits))
	}
	if hits := ix.Search("mountain", Options{}); len(hits) != 1 {
		t.Errorf("mountain hits = %v", docValues(hits))
	}
}

func TestHitOrderDeterministic(t *testing.T) {
	build := func() []Hit {
		ix := NewIndex()
		ix.Add("B", "X", relation.String("tie"))
		ix.Add("A", "Y", relation.String("tie"))
		ix.Add("A", "X", relation.String("tie"))
		return ix.Search("tie", Options{})
	}
	first := build()
	for i := 0; i < 5; i++ {
		again := build()
		for j := range first {
			if first[j].Doc != again[j].Doc {
				t.Fatalf("order unstable: %v vs %v", first, again)
			}
		}
	}
	// Equal scores must be ordered by (table, attr, value).
	if !(first[0].Doc.Table == "A" && first[0].Doc.Attr == "X") {
		t.Errorf("tie-break order: %v", first)
	}
}

// Property: every hit returned for a single-term query actually contains a
// token whose normalized form equals the normalized query term, and scores
// are positive and sorted.
func TestSearchSoundnessProperty(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "omega", "bike", "bikes", "mountain"}
	f := func(seed uint16) bool {
		n := int(seed%50) + 1
		ix := NewIndex()
		docs := make([]string, n)
		for i := 0; i < n; i++ {
			w1 := words[(int(seed)+i)%len(words)]
			w2 := words[(int(seed)*3+i*7)%len(words)]
			docs[i] = w1 + " " + w2
			ix.Add("T", "A", relation.String(docs[i]))
		}
		q := words[int(seed)%len(words)]
		hits := ix.Search(q, Options{})
		qn := Normalize(q)
		last := math.Inf(1)
		for _, h := range hits {
			if h.Score <= 0 || h.Score > last {
				return false
			}
			last = h.Score
			found := false
			for _, term := range Terms(h.Doc.Value.Text()) {
				if term == qn {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrefixTermsCapAndBoundary(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 100; i++ {
		ix.Add("T", "A", relation.String(fmt.Sprintf("aaa%02d", i)))
	}
	ix.Add("T", "A", relation.String("abz"))
	terms := ix.prefixTerms("aaa")
	if len(terms) != 64 {
		t.Errorf("expansion cap: %d", len(terms))
	}
	if !sort.StringsAreSorted(terms) {
		t.Error("prefix terms not sorted")
	}
	for _, term := range terms {
		if term[:3] != "aaa" {
			t.Errorf("non-prefix term %q", term)
		}
	}
}

func TestDocString(t *testing.T) {
	d := Doc{Table: "Loc", Attr: "City", Value: relation.String("Columbus")}
	if d.String() != `Loc/City/"Columbus"` {
		t.Errorf("Doc.String = %q", d.String())
	}
}

func TestFreezeThenConcurrentSearch(t *testing.T) {
	ix := smallIndex()
	ix.Freeze()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			ok := true
			for i := 0; i < 50; i++ {
				if len(ix.Search("san", Options{Prefix: true})) == 0 {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent search failed")
		}
	}
}

func TestBM25Similarity(t *testing.T) {
	ix := smallIndex()
	classic := ix.Search("Columbus", Options{})
	bm := ix.Search("Columbus", Options{Similarity: BM25})
	if len(classic) != len(bm) {
		t.Fatalf("hit sets differ: %d vs %d", len(classic), len(bm))
	}
	// Same membership, scores on different scales, city still first (the
	// one-word doc wins the length normalization under both models).
	if bm[0].Doc.Value.Text() != "Columbus" {
		t.Errorf("BM25 top hit = %v", bm[0].Doc)
	}
	for _, h := range bm {
		if h.Score <= 0 {
			t.Errorf("non-positive BM25 score: %+v", h)
		}
	}
	if classic[0].Score == bm[0].Score {
		t.Error("similarities look identical — BM25 branch not taken?")
	}
}

func TestBM25IDFOrdering(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 20; i++ {
		ix.Add("T", "A", relation.String(fmt.Sprintf("common filler %d", i)))
	}
	ix.Add("T", "A", relation.String("rare gem"))
	rare := ix.Search("rare", Options{Similarity: BM25})
	common := ix.Search("common", Options{Similarity: BM25})
	if len(rare) != 1 || rare[0].Score <= common[0].Score {
		t.Errorf("BM25 idf ordering: rare %v vs common %v", rare, common)
	}
}

func TestBM25Phrase(t *testing.T) {
	ix := smallIndex()
	hits := ix.SearchPhrase("San Jose", Options{Similarity: BM25})
	if len(hits) != 1 || hits[0].Doc.Value.Text() != "San Jose" {
		t.Errorf("BM25 phrase hits = %v", docValues(hits))
	}
}

func TestSimilarityString(t *testing.T) {
	if ClassicTFIDF.String() != "classic-tfidf" || BM25.String() != "bm25" {
		t.Error("similarity names")
	}
	if Similarity(9).String() != "unknown" {
		t.Error("unknown similarity name")
	}
}
