package fulltext

// Cancellation coverage for the probe loops: a cancelled context
// surfaces context.Canceled from SearchCtx and SearchPhraseCtx, and
// the Background wrappers still return full results.

import (
	"context"
	"errors"
	"testing"
)

func TestSearchCtxCancel(t *testing.T) {
	ix := smallIndex()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.SearchCtx(ctx, "Columbus", Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := ix.SearchPhraseCtx(ctx, "LCD Projectors", Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchPhraseCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSearchCtxMatchesWrapper(t *testing.T) {
	ix := smallIndex()
	want := ix.Search("Columbus", Options{})
	got, err := ix.SearchCtx(context.Background(), "Columbus", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("SearchCtx returned %d hits, wrapper %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Doc.Value != want[i].Doc.Value || got[i].Score != want[i].Score {
			t.Errorf("hit %d: ctx %+v, wrapper %+v", i, got[i], want[i])
		}
	}
}
