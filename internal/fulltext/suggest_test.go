package fulltext

import (
	"testing"
	"testing/quick"

	"kdap/internal/relation"
)

func TestSuggestTypos(t *testing.T) {
	ix := NewIndex()
	ix.Add("Loc", "City", relation.String("Columbus"))
	ix.Add("Loc", "City", relation.String("Seattle"))
	ix.Add("P", "Name", relation.String("Mountain Bikes"))

	// Matching happens on index stems, but suggestions surface the
	// original word form users recognize.
	cases := map[string]string{
		"Colombus": "Columbus", // transposed vowel
		"Seatle":   "Seattle",  // dropped letter
		"Mountian": "Mountain", // transposition = 2 edits
	}
	for typo, want := range cases {
		got := ix.Suggest(typo, 3)
		found := false
		for _, s := range got {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Suggest(%q) = %v, want %q among them", typo, got, want)
		}
	}
}

func TestSuggestExcludesExactAndFar(t *testing.T) {
	ix := NewIndex()
	ix.Add("T", "A", relation.String("columbus"))
	ix.Add("T", "A", relation.String("zzzzzzzz"))
	got := ix.Suggest("columbus", 5)
	for _, s := range got {
		if s == "columbu" { // stem of columbus is "columbu"? ensure no self
			t.Errorf("self-suggestion: %v", got)
		}
	}
	if sugg := ix.Suggest("qqq", 5); len(sugg) != 0 {
		t.Errorf("far word suggested: %v", sugg)
	}
	if ix.Suggest("x", 0) != nil || ix.Suggest("", 3) != nil {
		t.Error("degenerate inputs should return nil")
	}
}

func TestSuggestOrdering(t *testing.T) {
	ix := NewIndex()
	// "bike" appears in many docs; "bake" in one. Query "bikes" stems to
	// "bike" (exact) — use "bika": distance 1 to both bike and bake.
	for i := 0; i < 5; i++ {
		ix.Add("T", "A", relation.String("bike model "+string(rune('a'+i))))
	}
	ix.Add("T", "A", relation.String("bake"))
	got := ix.Suggest("bika", 2)
	if len(got) == 0 || got[0] != "bike" {
		t.Errorf("Suggest(bika) = %v, want bike first (higher df)", got)
	}
}

func TestBoundedEditDistance(t *testing.T) {
	cases := []struct {
		a, b  string
		bound int
		want  int
	}{
		{"", "", 2, 0},
		{"a", "", 2, 1},
		{"abc", "abc", 2, 0},
		{"abc", "abd", 2, 1},
		{"abc", "acb", 2, 2},
		{"kitten", "sitting", 2, 3}, // exceeds bound → bound+1
		{"abcdefg", "xbcdefg", 2, 1},
	}
	for _, c := range cases {
		got := boundedEditDistance(c.a, c.b, c.bound)
		if c.want > c.bound {
			if got <= c.bound {
				t.Errorf("dist(%q,%q) = %d, want > %d", c.a, c.b, got, c.bound)
			}
		} else if got != c.want {
			t.Errorf("dist(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: the bounded distance is symmetric and zero iff equal (within
// the bound regime).
func TestEditDistanceProperties(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 12 || len(b) > 12 {
			return true
		}
		d1 := boundedEditDistance(a, b, 2)
		d2 := boundedEditDistance(b, a, 2)
		if d1 != d2 {
			return false
		}
		if a == b && d1 != 0 {
			return false
		}
		if a != b && d1 == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
