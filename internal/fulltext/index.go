package fulltext

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kdap/internal/relation"
	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

// Doc identifies one virtual document: a distinct attribute instance. This
// is the paper's conceptual (TabName, AttrID, Document) relation — note the
// attribute-level granularity, which §3 argues is required for KDAP where
// tuple-level indexing (DBExplorer/DISCOVER style) cannot distinguish which
// attribute of a tuple matched.
type Doc struct {
	Table string
	Attr  string
	Value relation.Value
}

// String renders the doc as Table/Attr/"value".
func (d Doc) String() string {
	return fmt.Sprintf("%s/%s/%q", d.Table, d.Attr, d.Value.Text())
}

// Hit is one search result: a matching attribute instance and its
// relevance score (the Sim(h.val, q) of the paper's ranking formula).
type Hit struct {
	Doc   Doc
	Score float64
}

type posting struct {
	doc       int
	positions []int32
}

type termInfo struct {
	postings []posting
}

// Index is a positional inverted index over attribute instances. Build it
// with Add or IndexDatabase, then query with Search / SearchPhrase.
// An Index is safe for concurrent use: searches take a read lock for
// their whole scoring pass, Add and AddDocSegments take the write lock,
// so streaming ingest can extend postings while probes run — each probe
// sees either the pre-append or post-append postings, never a torn
// state.
type Index struct {
	mu       sync.RWMutex
	docs     []Doc
	docLens  []int
	totalLen int
	byKey    map[Doc]int
	terms    map[string]*termInfo

	// sortedTerms is the prefix-expansion snapshot: invalidated (set
	// nil) by Add, rebuilt on demand under the read lock. An atomic
	// pointer rather than a lazily mutated field so concurrent searches
	// never write shared state.
	sortedTerms atomic.Pointer[[]string]

	// segHints maps a doc to the ascending list of storage segments of
	// its source column known to contain its value — the skip lists a
	// disk-backed table records per term (relation.TermSegmenter).
	// Consumers resolving a hit back to matching rows scan only the
	// hinted segments instead of the whole column. An absent entry means
	// no evidence: scan everything. A present empty list proves the
	// value occurs nowhere (possible after deletes or stale hints).
	segHints map[Doc][]int32

	// probeHist records Search/SearchPhrase wall time in seconds; the
	// differentiate phase is probe-bound, so this is the latency window
	// the §7 responsiveness concern cares about. Lock-free to observe,
	// safe alongside concurrent readers.
	probeHist *telemetry.Histogram
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		byKey:     make(map[Doc]int),
		terms:     make(map[string]*termInfo),
		probeHist: telemetry.NewHistogram(nil),
	}
}

// ProbeHistogram exposes the index's probe-latency histogram so owners
// can register it with a telemetry registry.
func (ix *Index) ProbeHistogram() *telemetry.Histogram { return ix.probeHist }

// ProbeCount returns the number of probes recorded (Search and
// SearchPhrase calls).
func (ix *Index) ProbeCount() int64 { return ix.probeHist.Count() }

// DocCount returns the number of indexed attribute instances.
func (ix *Index) DocCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// TermCount returns the number of distinct indexed terms.
func (ix *Index) TermCount() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.terms)
}

// Add indexes one attribute instance. Re-adding the same (table, attr,
// value) triple is a no-op, so callers may feed raw column scans.
func (ix *Index) Add(table, attr string, value relation.Value) {
	key := Doc{Table: table, Attr: attr, Value: value}
	toks := Tokenize(value.Text())
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if _, dup := ix.byKey[key]; dup {
		return
	}
	if len(toks) == 0 {
		return
	}
	id := len(ix.docs)
	ix.docs = append(ix.docs, key)
	ix.docLens = append(ix.docLens, len(toks))
	ix.totalLen += len(toks)
	ix.byKey[key] = id
	ix.sortedTerms.Store(nil)
	for _, tok := range toks {
		ti := ix.terms[tok.Term]
		if ti == nil {
			ti = &termInfo{}
			ix.terms[tok.Term] = ti
		}
		if n := len(ti.postings); n > 0 && ti.postings[n-1].doc == id {
			ti.postings[n-1].positions = append(ti.postings[n-1].positions, int32(tok.Pos))
		} else {
			ti.postings = append(ti.postings, posting{doc: id, positions: []int32{int32(tok.Pos)}})
		}
	}
}

// AddDocSegments records the segment skip list for one doc: the
// ascending storage segments of the doc's source column that contain
// its value. Overwrites any prior hint for the doc.
func (ix *Index) AddDocSegments(d Doc, segs []int32) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.segHints == nil {
		ix.segHints = make(map[Doc][]int32)
	}
	ix.segHints[d] = segs
}

// DocSegments returns the segment skip list recorded for a doc. ok is
// false when no hint exists and the caller must scan every segment.
func (ix *Index) DocSegments(d Doc) ([]int32, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	segs, ok := ix.segHints[d]
	return segs, ok
}

// IndexDatabase indexes every distinct value of every FullText column of
// every table in db. Tables whose backing records per-term segment
// lists (relation.TermSegmenter) additionally contribute segment skip
// hints, so resolving a hit on a disk-backed table pages in only the
// segments that contain the matched value.
func (ix *Index) IndexDatabase(db *relation.Database) {
	for _, name := range db.TableNames() {
		t := db.Table(name)
		segmenter, _ := t.Backing().(relation.TermSegmenter)
		for _, col := range t.Schema().FullTextColumns() {
			for _, v := range t.DistinctValues(col) {
				ix.Add(name, col, v)
				if segmenter != nil {
					if segs, ok := segmenter.ValueSegments(col, v); ok {
						ix.AddDocSegments(Doc{Table: name, Attr: col, Value: v}, segs)
					}
				}
			}
		}
	}
}

// idf returns the inverse document frequency of a term with document
// frequency df: 1 + ln(N / (df+1)), Lucene's classic formulation.
func (ix *Index) idf(df int) float64 {
	return 1 + math.Log(float64(len(ix.docs))/float64(df+1))
}

// idfBM25 is the Okapi idf: ln(1 + (N-df+0.5)/(df+0.5)).
func (ix *Index) idfBM25(df int) float64 {
	n := float64(len(ix.docs))
	return math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
}

// avgDocLen returns the mean document length.
func (ix *Index) avgDocLen() float64 {
	if len(ix.docs) == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(len(ix.docs))
}

// Similarity selects the document-query scoring function.
type Similarity int

const (
	// ClassicTFIDF is Lucene's classic similarity (sqrt-tf, squared log
	// idf, length norm, coord, query norm) — what the paper's 2007
	// prototype used.
	ClassicTFIDF Similarity = iota
	// BM25 is the Okapi BM25 function with k1 = 1.2, b = 0.75, the
	// modern default; provided for ablations of KDAP's ranking quality
	// under a different text-relevance model.
	BM25
)

// String names the similarity.
func (s Similarity) String() string {
	switch s {
	case ClassicTFIDF:
		return "classic-tfidf"
	case BM25:
		return "bm25"
	default:
		return "unknown"
	}
}

// BM25 parameters.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Options configure a search.
type Options struct {
	// Prefix enables partial matching: a query term additionally matches
	// every indexed term it prefixes, at a reduced weight. This is the
	// paper's "partial matches" requirement (§3).
	Prefix bool
	// Limit truncates the result list when positive.
	Limit int
	// Similarity selects the scoring function (default ClassicTFIDF).
	Similarity Similarity
}

// prefixWeight scales the contribution of prefix (non-exact) term matches.
const prefixWeight = 0.5

// Search scores every attribute instance against the keyword query using
// classic TF-IDF similarity:
//
//	score(q,d) = coord(q,d) · queryNorm(q) · Σ_t tf(t,d) · idf(t)² · lengthNorm(d)
//
// with tf = sqrt(freq), idf = 1+ln(N/(df+1)), lengthNorm = 1/sqrt(|d|),
// coord = (matched query terms)/(total query terms). Results are sorted by
// descending score with a deterministic tie-break on the doc identity.
func (ix *Index) Search(query string, opts Options) []Hit {
	hits, _ := ix.SearchCtx(context.Background(), query, opts)
	return hits
}

// SearchCtx is Search under a context: the scoring loop checks for
// cancellation between query terms and every cancelCheckPostings
// postings inside a term's posting list, so probes against very common
// terms stop promptly when the caller's deadline fires. Returns
// ctx.Err() on cancellation.
func (ix *Index) SearchCtx(ctx context.Context, query string, opts Options) ([]Hit, error) {
	defer ix.observeProbe(time.Now())
	qterms := Terms(query)
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.searchTerms(ctx, qterms, opts)
}

// observeProbe records one probe's latency from its start time.
func (ix *Index) observeProbe(start time.Time) {
	if ix.probeHist != nil { // zero-value Index in tests
		ix.probeHist.Observe(time.Since(start).Seconds())
	}
}

// SearchPhrase returns only the attribute instances in which the query
// terms occur as a consecutive phrase, scored like Search but restricted
// to phrase-containing documents. A single-term phrase degenerates to
// Search without prefix expansion.
func (ix *Index) SearchPhrase(query string, opts Options) []Hit {
	hits, _ := ix.SearchPhraseCtx(context.Background(), query, opts)
	return hits
}

// SearchPhraseCtx is SearchPhrase under a context, with the same
// cancellation points as SearchCtx plus a check per phrase candidate.
func (ix *Index) SearchPhraseCtx(ctx context.Context, query string, opts Options) ([]Hit, error) {
	defer ix.observeProbe(time.Now())
	qterms := Terms(query)
	if len(qterms) == 0 {
		return nil, nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(qterms) == 1 {
		opts.Prefix = false
		return ix.searchTerms(ctx, qterms, opts)
	}
	candidates, err := ix.phraseDocs(ctx, qterms)
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	opts.Prefix = false
	all, err := ix.searchTerms(ctx, qterms, Options{Similarity: opts.Similarity})
	if err != nil {
		return nil, err
	}
	var out []Hit
	for _, h := range all {
		if _, ok := candidates[ix.byKey[h.Doc]]; ok {
			// Phrase confirmation means every query term matched in
			// sequence; reward full-phrase hits with coord = 1 already
			// implied, so the score carries over unchanged.
			out = append(out, h)
		}
	}
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	return out, nil
}

// cancelCheckPostings is the stride between ctx.Err() checks inside a
// posting-list scoring loop: common terms in a large warehouse can
// carry tens of thousands of postings, and the differentiate phase is
// probe-bound.
const cancelCheckPostings = 4096

// searchTerms is the shared scoring core of Search and SearchPhrase.
func (ix *Index) searchTerms(ctx context.Context, qterms []string, opts Options) ([]Hit, error) {
	if len(qterms) == 0 || len(ix.docs) == 0 {
		return nil, nil
	}
	done := ctx.Done()
	type acc struct {
		score   float64
		matched int
	}
	accs := make(map[int]*acc)
	var queryNormSq float64
	touched := 0 // postings scored, for the request's wide event

	for _, qt := range qterms {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Expand the query term to the indexed terms it matches.
		type match struct {
			ti     *termInfo
			weight float64
		}
		var matches []match
		if ti := ix.terms[qt]; ti != nil {
			matches = append(matches, match{ti, 1})
		} else if opts.Prefix {
			// Partial matching is a fallback for terms with no exact
			// posting — expanding terms that already match exactly would
			// drown precise hits in near-miss noise ("com" →
			// "components").
			for _, term := range ix.prefixTerms(qt) {
				matches = append(matches, match{ix.terms[term], prefixWeight})
			}
		}
		if len(matches) == 0 {
			// Unmatched query terms still count toward coord's denominator
			// but contribute nothing; idf of an absent term is ignored in
			// queryNorm, as Lucene does.
			continue
		}
		seen := make(map[int]bool)
		bestIDF := 0.0
		avgdl := ix.avgDocLen()
		for _, m := range matches {
			df := len(m.ti.postings)
			touched += df
			switch opts.Similarity {
			case BM25:
				idf := ix.idfBM25(df)
				for base := 0; base < len(m.ti.postings); base += cancelCheckPostings {
					if done != nil {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
					}
					end := min(base+cancelCheckPostings, len(m.ti.postings))
					for _, p := range m.ti.postings[base:end] {
						a := accs[p.doc]
						if a == nil {
							a = &acc{}
							accs[p.doc] = a
						}
						tf := float64(len(p.positions))
						dl := float64(ix.docLens[p.doc])
						tfn := tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgdl))
						a.score += idf * tfn * m.weight
						if !seen[p.doc] {
							seen[p.doc] = true
							a.matched++
						}
					}
				}
			default: // ClassicTFIDF
				idf := ix.idf(df)
				if idf > bestIDF {
					bestIDF = idf
				}
				w := idf * idf * m.weight
				for base := 0; base < len(m.ti.postings); base += cancelCheckPostings {
					if done != nil {
						if err := ctx.Err(); err != nil {
							return nil, err
						}
					}
					end := min(base+cancelCheckPostings, len(m.ti.postings))
					for _, p := range m.ti.postings[base:end] {
						a := accs[p.doc]
						if a == nil {
							a = &acc{}
							accs[p.doc] = a
						}
						tf := math.Sqrt(float64(len(p.positions)))
						a.score += tf * w / math.Sqrt(float64(ix.docLens[p.doc]))
						if !seen[p.doc] {
							seen[p.doc] = true
							a.matched++
						}
					}
				}
			}
		}
		queryNormSq += bestIDF * bestIDF
	}
	profile.FromContext(ctx).AddFulltextProbe(touched)
	if len(accs) == 0 {
		return nil, nil
	}
	queryNorm := 1.0
	if queryNormSq > 0 {
		queryNorm = 1 / math.Sqrt(queryNormSq)
	}
	hits := make([]Hit, 0, len(accs))
	for doc, a := range accs {
		score := a.score
		if opts.Similarity != BM25 {
			coord := float64(a.matched) / float64(len(qterms))
			score *= coord * queryNorm
		}
		hits = append(hits, Hit{Doc: ix.docs[doc], Score: score})
	}
	sortHits(hits)
	if opts.Limit > 0 && len(hits) > opts.Limit {
		hits = hits[:opts.Limit]
	}
	return hits, nil
}

// phraseDocs returns the set of doc IDs containing qterms consecutively.
func (ix *Index) phraseDocs(ctx context.Context, qterms []string) (map[int]struct{}, error) {
	infos := make([]*termInfo, len(qterms))
	for i, qt := range qterms {
		infos[i] = ix.terms[qt]
		if infos[i] == nil {
			return nil, nil
		}
	}
	// Intersect postings on the rarest term first for efficiency.
	rarest := 0
	for i, ti := range infos {
		if len(ti.postings) < len(infos[rarest].postings) {
			rarest = i
		}
	}
	done := ctx.Done()
	out := make(map[int]struct{})
	postings := infos[rarest].postings
	profile.FromContext(ctx).AddFulltextPostings(len(postings))
	for base := 0; base < len(postings); base += cancelCheckPostings {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		end := min(base+cancelCheckPostings, len(postings))
		for _, p := range postings[base:end] {
			if ix.docHasPhrase(p.doc, qterms, infos) {
				out[p.doc] = struct{}{}
			}
		}
	}
	return out, nil
}

// docHasPhrase reports whether doc contains the terms at consecutive
// positions.
func (ix *Index) docHasPhrase(doc int, qterms []string, infos []*termInfo) bool {
	positions := make([][]int32, len(qterms))
	for i, ti := range infos {
		j := sort.Search(len(ti.postings), func(k int) bool { return ti.postings[k].doc >= doc })
		if j == len(ti.postings) || ti.postings[j].doc != doc {
			return false
		}
		positions[i] = ti.postings[j].positions
	}
	for _, start := range positions[0] {
		ok := true
		for i := 1; i < len(positions); i++ {
			if !containsPos(positions[i], start+int32(i)) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func containsPos(ps []int32, want int32) bool {
	i := sort.Search(len(ps), func(k int) bool { return ps[k] >= want })
	return i < len(ps) && ps[i] == want
}

// prefixTerms returns the indexed terms having q as a proper or improper
// prefix, capped to avoid pathological expansion. Caller holds the read
// lock; the sorted snapshot is (re)built here when an Add invalidated
// it, and published through an atomic pointer — concurrent rebuilders
// do duplicate work, last store wins, but never mutate shared state.
func (ix *Index) prefixTerms(q string) []string {
	const maxExpansion = 64
	var sorted []string
	if p := ix.sortedTerms.Load(); p != nil {
		sorted = *p
	} else {
		sorted = make([]string, 0, len(ix.terms))
		for t := range ix.terms {
			sorted = append(sorted, t)
		}
		sort.Strings(sorted)
		ix.sortedTerms.Store(&sorted)
	}
	i := sort.SearchStrings(sorted, q)
	var out []string
	for ; i < len(sorted) && len(out) < maxExpansion; i++ {
		if !strings.HasPrefix(sorted[i], q) {
			break
		}
		out = append(out, sorted[i])
	}
	return out
}

// sortHits orders hits by descending score, breaking ties by doc identity
// so results are stable across runs.
func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		a, b := hits[i].Doc, hits[j].Doc
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		return a.Value.Text() < b.Value.Text()
	})
}

// Freeze pre-builds the sorted term list used by prefix expansion so
// the first prefix search does not pay for it. Optional: the index is
// safe for concurrent use either way.
func (ix *Index) Freeze() {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ix.prefixTerms("")
}
