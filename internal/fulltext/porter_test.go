package fulltext

import (
	"strings"
	"testing"
	"testing/quick"
)

// Vectors from Porter's 1980 paper and the reference implementation's
// sample vocabulary (with the revised bli/logi rules, as in Lucene).
func TestStemVectors(t *testing.T) {
	vectors := map[string]string{
		// step 1a
		"caresses": "caress", "ponies": "poni", "ties": "ti",
		"caress": "caress", "cats": "cat",
		// step 1b
		"feed": "feed", "agreed": "agre", "plastered": "plaster",
		"bled": "bled", "motoring": "motor", "sing": "sing",
		"conflated": "conflat", "troubled": "troubl", "sized": "size",
		"hopping": "hop", "tanned": "tan", "falling": "fall",
		"hissing": "hiss", "fizzed": "fizz", "failing": "fail",
		"filing": "file",
		// step 1c
		"happy": "happi", "sky": "sky",
		// step 2
		"relational": "relat", "conditional": "condit", "rational": "ration",
		"valenci": "valenc", "hesitanci": "hesit",
		"digitizer": "digit", "conformabli": "conform",
		"radicalli": "radic", "differentli": "differ", "vileli": "vile",
		"analogousli": "analog", "vietnamization": "vietnam",
		"predication": "predic", "operator": "oper", "feudalism": "feudal",
		"decisiveness": "decis", "hopefulness": "hope",
		"callousness": "callous", "formaliti": "formal",
		"sensitiviti": "sensit", "sensibiliti": "sensibl",
		// step 3
		"triplicate": "triplic", "formative": "form", "formalize": "formal",
		"electriciti": "electr", "electrical": "electr",
		"hopeful": "hope", "goodness": "good",
		// step 4
		"revival": "reviv", "allowance": "allow", "inference": "infer",
		"airliner": "airlin", "gyroscopic": "gyroscop",
		"adjustable": "adjust", "defensible": "defens",
		"irritant": "irrit", "replacement": "replac",
		"adjustment": "adjust", "dependent": "depend",
		"adoption": "adopt", "homologou": "homolog",
		"communism": "commun", "activate": "activ",
		"angulariti": "angular", "homologous": "homolog",
		"effective": "effect", "bowdlerize": "bowdler",
		// step 5
		"probate": "probat", "rate": "rate", "cease": "ceas",
		"controll": "control", "roll": "roll",
		// short words pass through
		"a": "a", "is": "is", "be": "be",
	}
	for in, want := range vectors {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

// Stemming must unify the morphological families KDAP's keyword matching
// depends on.
func TestStemFamilies(t *testing.T) {
	families := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"accessory", "accessories"},
		{"bike", "bikes"},
		{"sale", "sales"},
	}
	for _, fam := range families {
		base := Stem(fam[0])
		for _, w := range fam[1:] {
			if got := Stem(w); got != base {
				t.Errorf("Stem(%q) = %q, want %q (family of %q)", w, got, base, fam[0])
			}
		}
	}
}

// Property: stemming is idempotent-ish on its own output for plain
// alphabetic words — stemming a stem must never grow the word, and must
// terminate with a non-empty result for non-empty input.
func TestStemProperties(t *testing.T) {
	f := func(raw string) bool {
		var b strings.Builder
		for _, r := range strings.ToLower(raw) {
			if r >= 'a' && r <= 'z' {
				b.WriteRune(r)
			}
		}
		w := b.String()
		if w == "" {
			return true
		}
		s := Stem(w)
		if len(s) > len(w) && !strings.HasSuffix(s, "e") {
			// step1b may add back 'e' (hop+ing → hope case), nothing else
			// may grow the word.
			return false
		}
		return len(s) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Flat Panel(LCD)")
	want := []Token{{"flat", 0}, {"panel", 1}, {"lcd", 2}}
	if len(toks) != len(want) {
		t.Fatalf("Tokenize = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, toks[i], want[i])
		}
	}
}

func TestTokenizeMixedAlphanumeric(t *testing.T) {
	// Model numbers must not be stemmed and must split on punctuation.
	toks := Terms("Mountain-200 Silver, 38\"")
	want := []string{"mountain", "200", "silver", "38"}
	if len(toks) != len(want) {
		t.Fatalf("Terms = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("term %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestTokenizeEmptyAndPunctuation(t *testing.T) {
	if got := Tokenize(""); got != nil {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("--- ,,, ()"); got != nil {
		t.Errorf("punctuation-only should produce no tokens: %v", got)
	}
}

func TestNormalizeStemsOnlyAlpha(t *testing.T) {
	if Normalize("Bikes") != "bike" {
		t.Errorf("Normalize(Bikes) = %q", Normalize("Bikes"))
	}
	if Normalize("R2D2") != "r2d2" {
		t.Errorf("mixed alphanumerics must not be stemmed: %q", Normalize("R2D2"))
	}
}
