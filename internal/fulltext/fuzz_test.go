package fulltext

import (
	"testing"

	"kdap/internal/relation"
)

// The fuzz targets double as robustness regression tests: their seed
// corpora run on every `go test`, and `go test -fuzz` explores further.

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"", "Columbus LCD", "Flat Panel(LCD)", "Mountain-200 Silver, 38",
		"fernando35@adventure-works.com", "---", "日本語 text", "a b c d e f",
		"ALL CAPS WORDS", "ÀÉÎÕÜ accents", "tab\tand\nnewline",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		prev := -1
		for _, tok := range toks {
			if tok.Term == "" {
				t.Fatalf("empty term in %q", s)
			}
			if tok.Pos <= prev {
				t.Fatalf("positions not strictly increasing in %q: %v", s, toks)
			}
			prev = tok.Pos
		}
	})
}

func FuzzStem(f *testing.F) {
	for _, seed := range []string{
		"", "a", "ab", "caresses", "agreed", "sky", "relational",
		"yyyyy", "eeeee", "bbbbbb", "ionization", "maximize",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		// Restrict to the stemmer's contract: lower-case ASCII letters.
		clean := make([]byte, 0, len(s))
		for i := 0; i < len(s); i++ {
			if s[i] >= 'a' && s[i] <= 'z' {
				clean = append(clean, s[i])
			}
		}
		w := string(clean)
		out := Stem(w) // must not panic
		if w != "" && out == "" {
			t.Fatalf("Stem(%q) produced empty output", w)
		}
	})
}

func FuzzSearch(f *testing.F) {
	ix := NewIndex()
	ix.Add("T", "A", relation.String("Columbus Day holiday"))
	ix.Add("T", "A", relation.String("Mountain-200 Silver"))
	ix.Add("T", "B", relation.String("flat panel lcd monitor"))
	for _, seed := range []string{"columbus", "mountain 200", "lcd panel", "", "zzz", "a b c d"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, q string) {
		hits := ix.Search(q, Options{Prefix: true})
		for _, h := range hits {
			if h.Score <= 0 {
				t.Fatalf("non-positive score for %q: %+v", q, h)
			}
		}
		_ = ix.SearchPhrase(q, Options{})
		_ = ix.Search(q, Options{Similarity: BM25})
	})
}
