// Package schemagraph models the OLAP metadata KDAP operates on: which
// table is the fact table, how tables group into dimensions, which
// attribute chains form aggregation hierarchies, and — crucially for the
// paper's differentiate phase — every join path from a table holding a
// keyword hit to the fact table.
//
// The paper (§4.2) modifies classic keyword-join enumeration in two ways
// that this package encodes: every candidate join network must reach the
// fact table (the "minimal tuple tree" principle of DISCOVER does not
// apply), and paths need dimension/role labels so that the same physical
// table reachable through different foreign keys (Location via Store
// vs. via Customer; Account via BuyerKey vs. SellerKey) yields distinct
// semantic interpretations with distinct aliases.
package schemagraph

import (
	"fmt"
	"sort"
	"strings"

	"kdap/internal/relation"
)

// AttrRef names an attribute as (table, column).
type AttrRef struct {
	Table string
	Attr  string
}

// String renders the reference as "Table.Attr".
func (a AttrRef) String() string { return a.Table + "." + a.Attr }

// Hierarchy is an ordered chain of attributes from the most general level
// (index 0, e.g. Year) to the most detailed (e.g. Date). Roll-up
// partitioning (§5.2.1) generalizes a hit attribute to the previous level.
type Hierarchy struct {
	Name   string
	Levels []AttrRef
}

// ParentOf returns the hierarchy level directly above attr, if attr is a
// non-root level of this hierarchy.
func (h Hierarchy) ParentOf(attr AttrRef) (AttrRef, bool) {
	for i, lv := range h.Levels {
		if lv == attr && i > 0 {
			return h.Levels[i-1], true
		}
	}
	return AttrRef{}, false
}

// Dimension groups the tables of one logical dimension and declares its
// hierarchies and candidate group-by attributes. Per §5.2.1 the candidate
// group-by attributes are manually specified (automatic discovery is the
// paper's future work), so they are schema metadata here.
type Dimension struct {
	Name string
	// Tables owned by this dimension. A table may belong to several
	// dimensions (the paper's Location example).
	Tables []string
	// Hierarchies within this dimension, most general level first.
	Hierarchies []Hierarchy
	// GroupBy lists the attributes eligible as facet group-by candidates.
	GroupBy []AttrRef
}

func (d *Dimension) ownsTable(name string) bool {
	for _, t := range d.Tables {
		if t == name {
			return true
		}
	}
	return false
}

// Hop is one join step: rows of FromTable relate to rows of ToTable where
// FromTable.FromCol = ToTable.ToCol. A Hop is symmetric — the executor may
// walk it in either direction.
type Hop struct {
	FromTable string
	FromCol   string
	ToTable   string
	ToCol     string
}

// Reverse returns the hop walked in the opposite direction.
func (h Hop) Reverse() Hop {
	return Hop{FromTable: h.ToTable, FromCol: h.ToCol, ToTable: h.FromTable, ToCol: h.FromCol}
}

// String renders the hop as "A.x=B.y".
func (h Hop) String() string {
	return fmt.Sprintf("%s.%s=%s.%s", h.FromTable, h.FromCol, h.ToTable, h.ToCol)
}

// JoinPath is a simple path from Source to the fact table.
type JoinPath struct {
	// Source is the table where the keyword hit lives.
	Source string
	// Hops lead from Source to the fact table, in walk order.
	Hops []Hop
	// Dim is the owning dimension's name, when determinable.
	Dim string
	// Role disambiguates multiple paths of the same dimension (the
	// paper's table-alias requirement): e.g. "Buyer" vs "Seller" for the
	// two Account joins, or the dimension name when unambiguous.
	Role string
}

// Target returns the final table of the path (the fact table for paths
// produced by JoinPaths).
func (p JoinPath) Target() string {
	if len(p.Hops) == 0 {
		return p.Source
	}
	return p.Hops[len(p.Hops)-1].ToTable
}

// Tables returns every table on the path, Source first.
func (p JoinPath) Tables() []string {
	out := []string{p.Source}
	for _, h := range p.Hops {
		out = append(out, h.ToTable)
	}
	return out
}

// Signature is a canonical string identifying the path, used for
// deduplication and for comparing interpretations in tests.
func (p JoinPath) Signature() string {
	// Hot path: the OLAP executor keys its per-path memos by signature,
	// so this runs on every group-by/aggregate call. One allocation.
	n := len(p.Source)
	for _, h := range p.Hops {
		n += 4 + len(h.FromTable) + len(h.FromCol) + len(h.ToTable) + len(h.ToCol)
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteString(p.Source)
	for _, h := range p.Hops {
		b.WriteByte('|')
		b.WriteString(h.FromTable)
		b.WriteByte('.')
		b.WriteString(h.FromCol)
		b.WriteByte('>')
		b.WriteString(h.ToTable)
		b.WriteByte('.')
		b.WriteString(h.ToCol)
	}
	return b.String()
}

// String renders the path as "A -> B -> Fact [role]".
func (p JoinPath) String() string {
	return strings.Join(p.Tables(), " -> ") + " [" + p.Role + "]"
}

// edge is an FK edge with an optional role label.
type edge struct {
	hop  Hop // oriented from the FK-holding table to the referenced table
	role string
}

// Graph is the schema graph of one OLAP database.
type Graph struct {
	db   *relation.Database
	fact string
	// factExt lists header tables that are part of the fact complex
	// (e.g. TRANS when the grain table is TRANSITEM); they never resolve
	// to a dimension.
	factExt map[string]bool
	dims    []*Dimension
	dimsBy  map[string]*Dimension
	// roleDim maps an edge role label to its dimension name.
	roleDim map[string]string

	edges []edge
	adj   map[string][]int // table -> indexes into edges touching it

	maxHops int
	built   bool
}

// New creates a schema graph over db with the named fact (grain) table.
func New(db *relation.Database, factTable string) *Graph {
	return &Graph{
		db:      db,
		fact:    factTable,
		factExt: make(map[string]bool),
		dimsBy:  make(map[string]*Dimension),
		roleDim: make(map[string]string),
		maxHops: 8,
	}
}

// DB returns the underlying database.
func (g *Graph) DB() *relation.Database { return g.db }

// FactTable returns the fact (grain) table name.
func (g *Graph) FactTable() string { return g.fact }

// SetMaxHops bounds join-path enumeration length (default 8).
func (g *Graph) SetMaxHops(n int) { g.maxHops = n }

// AddFactExtension marks header tables as part of the fact complex.
func (g *Graph) AddFactExtension(tables ...string) {
	for _, t := range tables {
		g.factExt[t] = true
	}
}

// isFactish reports whether t is the fact table or a fact extension.
func (g *Graph) isFactish(t string) bool { return t == g.fact || g.factExt[t] }

// AddDimension registers a dimension. Dimension names must be unique.
func (g *Graph) AddDimension(d *Dimension) error {
	if _, dup := g.dimsBy[d.Name]; dup {
		return fmt.Errorf("schemagraph: duplicate dimension %q", d.Name)
	}
	g.dims = append(g.dims, d)
	g.dimsBy[d.Name] = d
	return nil
}

// LabelEdge assigns a role label to the FK edge held by (table, column)
// and binds the role to a dimension. Use it when one table references
// another through several foreign keys with different meanings (the
// paper's BuyerKey/SellerKey case).
func (g *Graph) LabelEdge(table, column, role, dimension string) {
	g.roleDim[role] = dimension
	for i := range g.edges {
		e := &g.edges[i]
		if e.hop.FromTable == table && e.hop.FromCol == column {
			e.role = role
		}
	}
}

// Build derives the edge set from the database's foreign keys and
// validates dimension metadata. Call it after all tables exist and before
// LabelEdge / JoinPaths.
func (g *Graph) Build() error {
	if g.db.Table(g.fact) == nil {
		return fmt.Errorf("schemagraph: fact table %q not in database", g.fact)
	}
	for ext := range g.factExt {
		if g.db.Table(ext) == nil {
			return fmt.Errorf("schemagraph: fact extension %q not in database", ext)
		}
	}
	g.edges = nil
	g.adj = make(map[string][]int)
	for _, name := range g.db.TableNames() {
		t := g.db.Table(name)
		for _, fk := range t.Schema().ForeignKeys {
			e := edge{hop: Hop{
				FromTable: name, FromCol: fk.Column,
				ToTable: fk.RefTable, ToCol: fk.RefColumn,
			}}
			idx := len(g.edges)
			g.edges = append(g.edges, e)
			g.adj[name] = append(g.adj[name], idx)
			g.adj[fk.RefTable] = append(g.adj[fk.RefTable], idx)
		}
	}
	for _, d := range g.dims {
		for _, tn := range d.Tables {
			if g.db.Table(tn) == nil {
				return fmt.Errorf("schemagraph: dimension %q lists missing table %q", d.Name, tn)
			}
		}
		for _, h := range d.Hierarchies {
			for _, lv := range h.Levels {
				t := g.db.Table(lv.Table)
				if t == nil || !t.Schema().HasColumn(lv.Attr) {
					return fmt.Errorf("schemagraph: dimension %q hierarchy %q: missing attribute %s", d.Name, h.Name, lv)
				}
			}
		}
		for _, a := range d.GroupBy {
			t := g.db.Table(a.Table)
			if t == nil || !t.Schema().HasColumn(a.Attr) {
				return fmt.Errorf("schemagraph: dimension %q group-by: missing attribute %s", d.Name, a)
			}
		}
	}
	g.built = true
	return nil
}

// Dimensions returns the registered dimensions in registration order.
func (g *Graph) Dimensions() []*Dimension {
	return append([]*Dimension(nil), g.dims...)
}

// FactExtensions returns the fact-complex header tables, sorted.
func (g *Graph) FactExtensions() []string {
	out := make([]string, 0, len(g.factExt))
	for t := range g.factExt {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// EdgeLabel is one role annotation on a foreign-key edge, as set by
// LabelEdge; persistence uses it to reconstruct a graph.
type EdgeLabel struct {
	Table     string
	Column    string
	Role      string
	Dimension string
}

// EdgeLabels returns every labeled edge, ordered by (table, column).
func (g *Graph) EdgeLabels() []EdgeLabel {
	var out []EdgeLabel
	for _, e := range g.edges {
		if e.role == "" {
			continue
		}
		out = append(out, EdgeLabel{
			Table: e.hop.FromTable, Column: e.hop.FromCol,
			Role: e.role, Dimension: g.roleDim[e.role],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// MaxHops returns the join-path length bound.
func (g *Graph) MaxHops() int { return g.maxHops }

// Dimension returns the named dimension, or nil.
func (g *Graph) Dimension(name string) *Dimension { return g.dimsBy[name] }

// JoinPaths enumerates every simple path from the given table to the fact
// table, labeled with dimension and role, deterministically ordered by
// signature. It is the path half of Algorithm 1's star-net generation.
func (g *Graph) JoinPaths(from string) []JoinPath {
	if !g.built {
		panic("schemagraph: JoinPaths before Build")
	}
	if from == g.fact {
		return []JoinPath{{Source: from, Dim: "", Role: "Fact"}}
	}
	var out []JoinPath
	visited := map[string]bool{from: true}
	var hops []Hop
	var roles []string
	var dfs func(cur string)
	dfs = func(cur string) {
		if len(hops) > g.maxHops {
			return
		}
		if cur == g.fact {
			p := JoinPath{Source: from, Hops: append([]Hop(nil), hops...)}
			p.Dim, p.Role = g.classify(p, roles)
			out = append(out, p)
			return
		}
		for _, ei := range g.adj[cur] {
			e := g.edges[ei]
			var next string
			var hop Hop
			if e.hop.FromTable == cur {
				next, hop = e.hop.ToTable, e.hop
			} else {
				next, hop = e.hop.FromTable, e.hop.Reverse()
			}
			if visited[next] {
				continue
			}
			visited[next] = true
			hops = append(hops, hop)
			roles = append(roles, e.role)
			dfs(next)
			hops = hops[:len(hops)-1]
			roles = roles[:len(roles)-1]
			visited[next] = false
		}
	}
	dfs(from)
	sort.Slice(out, func(i, j int) bool { return out[i].Signature() < out[j].Signature() })
	return out
}

// classify determines the dimension and role of a path. Role labels on
// edges win; otherwise the path is owned by the unique dimension of the
// first non-fact table encountered walking from the fact end.
func (g *Graph) classify(p JoinPath, edgeRoles []string) (dim, role string) {
	for _, r := range edgeRoles {
		if r != "" {
			return g.roleDim[r], r
		}
	}
	tables := p.Tables()
	for i := len(tables) - 1; i >= 0; i-- {
		t := tables[i]
		if g.isFactish(t) {
			continue
		}
		var owners []string
		for _, d := range g.dims {
			if d.ownsTable(t) {
				owners = append(owners, d.Name)
			}
		}
		if len(owners) == 1 {
			return owners[0], owners[0]
		}
		if len(owners) > 1 {
			// Ambiguous at this table; keep walking outward — a nearer-
			// to-fact table should have resolved it, so walking further
			// out will not help. Fall through to unknown.
			break
		}
	}
	return "", "?"
}

// PathFromFact returns the canonical path from table to the fact whose
// role matches role (or whose dimension matches when role is a dimension
// name). Used by the facet executor to map fact rows to group-by
// attribute values consistently with the user's chosen interpretation.
func (g *Graph) PathFromFact(table, role string) (JoinPath, bool) {
	paths := g.JoinPaths(table)
	// Prefer exact role match, then dimension match, then shortest.
	var best *JoinPath
	for i := range paths {
		p := &paths[i]
		if p.Role == role {
			return *p, true
		}
		if p.Dim == role && (best == nil || len(p.Hops) < len(best.Hops)) {
			best = p
		}
	}
	if best != nil {
		return *best, true
	}
	if len(paths) > 0 {
		// Deterministic fallback: the shortest path.
		bi := 0
		for i := range paths {
			if len(paths[i].Hops) < len(paths[bi].Hops) {
				bi = i
			}
		}
		return paths[bi], true
	}
	return JoinPath{}, false
}

// HierarchyParent finds, across all dimensions, the hierarchy level above
// the given attribute, together with the owning dimension. Roll-up
// partitioning uses it to build the background space.
func (g *Graph) HierarchyParent(attr AttrRef) (parent AttrRef, dim *Dimension, ok bool) {
	for _, d := range g.dims {
		for _, h := range d.Hierarchies {
			if p, found := h.ParentOf(attr); found {
				return p, d, true
			}
		}
	}
	return AttrRef{}, nil, false
}

// DimensionOfTable returns the dimensions owning a table.
func (g *Graph) DimensionOfTable(table string) []*Dimension {
	var out []*Dimension
	for _, d := range g.dims {
		if d.ownsTable(table) {
			out = append(out, d)
		}
	}
	return out
}

// InnerPathsWithin enumerates simple paths between two tables that stay
// inside one dimension's tables; the roll-up executor uses them to
// navigate within a dimension (e.g. Subcategory → Category) without
// straying through tables another dimension shares.
func (g *Graph) InnerPathsWithin(from, to string, dim *Dimension) []JoinPath {
	paths := g.InnerPaths(from, to)
	if dim == nil {
		return paths
	}
	var out []JoinPath
	for _, p := range paths {
		ok := true
		for _, tb := range p.Tables() {
			if !dim.ownsTable(tb) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

// InnerPaths enumerates simple paths between two tables that avoid the
// fact complex entirely.
func (g *Graph) InnerPaths(from, to string) []JoinPath {
	if !g.built {
		panic("schemagraph: InnerPaths before Build")
	}
	var out []JoinPath
	visited := map[string]bool{from: true}
	var hops []Hop
	var dfs func(cur string)
	dfs = func(cur string) {
		if len(hops) > g.maxHops {
			return
		}
		if cur == to {
			out = append(out, JoinPath{Source: from, Hops: append([]Hop(nil), hops...)})
			return
		}
		for _, ei := range g.adj[cur] {
			e := g.edges[ei]
			var next string
			var hop Hop
			if e.hop.FromTable == cur {
				next, hop = e.hop.ToTable, e.hop
			} else {
				next, hop = e.hop.FromTable, e.hop.Reverse()
			}
			if visited[next] || g.isFactish(next) {
				continue
			}
			visited[next] = true
			hops = append(hops, hop)
			dfs(next)
			hops = hops[:len(hops)-1]
			visited[next] = false
		}
	}
	if g.isFactish(from) || g.isFactish(to) {
		return nil
	}
	dfs(from)
	sort.Slice(out, func(i, j int) bool { return out[i].Signature() < out[j].Signature() })
	return out
}
