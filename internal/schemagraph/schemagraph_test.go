package schemagraph

import (
	"reflect"
	"strings"
	"testing"

	"kdap/internal/relation"
)

// miniEBiz builds a reduced version of the paper's Figure 2 schema with
// exactly the features join-path enumeration must handle: a shared LOC
// table, dual BuyerKey/SellerKey joins, a fact extension header table,
// and two product hierarchies meeting at PRODUCT.
func miniEBiz(t *testing.T) *Graph {
	t.Helper()
	db := relation.NewDatabase("mini")
	add := func(name string, cols []relation.Column, key string, fks []relation.ForeignKey) {
		db.MustCreateTable(relation.MustSchema(name, cols, key, fks))
	}
	ic := func(n string) relation.Column { return relation.Column{Name: n, Kind: relation.KindInt} }
	sc := func(n string) relation.Column {
		return relation.Column{Name: n, Kind: relation.KindString, FullText: true}
	}
	add("LOC", []relation.Column{ic("LocKey"), sc("City")}, "LocKey", nil)
	add("STORE", []relation.Column{ic("StoreKey"), ic("LocKey")}, "StoreKey",
		[]relation.ForeignKey{{Column: "LocKey", RefTable: "LOC", RefColumn: "LocKey"}})
	add("CUSTOMER", []relation.Column{ic("CustKey"), ic("LocKey")}, "CustKey",
		[]relation.ForeignKey{{Column: "LocKey", RefTable: "LOC", RefColumn: "LocKey"}})
	add("ACCOUNT", []relation.Column{ic("AccountKey"), ic("CustKey")}, "AccountKey",
		[]relation.ForeignKey{{Column: "CustKey", RefTable: "CUSTOMER", RefColumn: "CustKey"}})
	add("UNSPSC", []relation.Column{ic("UnspscKey"), sc("FamilyTitle"), sc("ClassTitle")}, "UnspscKey", nil)
	add("PLINE", []relation.Column{ic("LineKey"), sc("LineName")}, "LineKey", nil)
	add("PGROUP", []relation.Column{ic("PGroupKey"), sc("GroupName"), ic("LineKey")}, "PGroupKey",
		[]relation.ForeignKey{{Column: "LineKey", RefTable: "PLINE", RefColumn: "LineKey"}})
	add("PRODUCT", []relation.Column{ic("ProductKey"), sc("ProductName"), ic("UnspscKey"), ic("PGroupKey")}, "ProductKey",
		[]relation.ForeignKey{
			{Column: "UnspscKey", RefTable: "UNSPSC", RefColumn: "UnspscKey"},
			{Column: "PGroupKey", RefTable: "PGROUP", RefColumn: "PGroupKey"},
		})
	add("TRANS", []relation.Column{ic("TransKey"), ic("StoreKey"), ic("BuyerKey"), ic("SellerKey")}, "TransKey",
		[]relation.ForeignKey{
			{Column: "StoreKey", RefTable: "STORE", RefColumn: "StoreKey"},
			{Column: "BuyerKey", RefTable: "ACCOUNT", RefColumn: "AccountKey"},
			{Column: "SellerKey", RefTable: "ACCOUNT", RefColumn: "AccountKey"},
		})
	add("TRANSITEM", []relation.Column{ic("ItemKey"), ic("TransKey"), ic("ProductKey")}, "ItemKey",
		[]relation.ForeignKey{
			{Column: "TransKey", RefTable: "TRANS", RefColumn: "TransKey"},
			{Column: "ProductKey", RefTable: "PRODUCT", RefColumn: "ProductKey"},
		})

	g := New(db, "TRANSITEM")
	g.AddFactExtension("TRANS")
	for _, d := range []*Dimension{
		{Name: "Store", Tables: []string{"STORE", "LOC"}},
		{Name: "Customer", Tables: []string{"CUSTOMER", "ACCOUNT", "LOC"}},
		{Name: "Product", Tables: []string{"PRODUCT", "UNSPSC", "PGROUP", "PLINE"},
			Hierarchies: []Hierarchy{
				{Name: "UNSPSC", Levels: []AttrRef{
					{Table: "UNSPSC", Attr: "FamilyTitle"},
					{Table: "UNSPSC", Attr: "ClassTitle"},
					{Table: "PRODUCT", Attr: "ProductName"},
				}},
				{Name: "Line", Levels: []AttrRef{
					{Table: "PLINE", Attr: "LineName"},
					{Table: "PGROUP", Attr: "GroupName"},
					{Table: "PRODUCT", Attr: "ProductName"},
				}},
			},
			GroupBy: []AttrRef{{Table: "PGROUP", Attr: "GroupName"}},
		},
	} {
		if err := g.AddDimension(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	g.LabelEdge("TRANS", "BuyerKey", "Buyer", "Customer")
	g.LabelEdge("TRANS", "SellerKey", "Seller", "Customer")
	return g
}

func pathStrings(ps []JoinPath) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.String()
	}
	return out
}

// The paper's three-join-paths claim: LOC reaches the fact table through
// Store, Buyer, and Seller, and through nothing else.
func TestLocThreeJoinPaths(t *testing.T) {
	g := miniEBiz(t)
	paths := g.JoinPaths("LOC")
	if len(paths) != 3 {
		t.Fatalf("LOC paths = %v", pathStrings(paths))
	}
	roles := map[string]bool{}
	for _, p := range paths {
		roles[p.Role] = true
		if p.Target() != "TRANSITEM" {
			t.Errorf("path does not end at fact: %v", p)
		}
		if p.Source != "LOC" {
			t.Errorf("path source: %v", p)
		}
	}
	if !roles["Store"] || !roles["Buyer"] || !roles["Seller"] {
		t.Errorf("roles = %v", roles)
	}
	for _, p := range paths {
		switch p.Role {
		case "Store":
			if p.Dim != "Store" {
				t.Errorf("store path dim = %q", p.Dim)
			}
		case "Buyer", "Seller":
			if p.Dim != "Customer" {
				t.Errorf("%s path dim = %q", p.Role, p.Dim)
			}
		}
	}
}

func TestProductHierarchyPaths(t *testing.T) {
	g := miniEBiz(t)
	for table, wantLen := range map[string]int{
		"PRODUCT": 2, "UNSPSC": 3, "PGROUP": 3, "PLINE": 4,
	} {
		paths := g.JoinPaths(table)
		if len(paths) != 1 {
			t.Errorf("%s: %d paths (%v), want 1", table, len(paths), pathStrings(paths))
			continue
		}
		p := paths[0]
		if len(p.Tables()) != wantLen {
			t.Errorf("%s path length %d, want %d: %v", table, len(p.Tables()), wantLen, p)
		}
		if p.Dim != "Product" {
			t.Errorf("%s dim = %q", table, p.Dim)
		}
	}
}

func TestJoinPathsFromFactItself(t *testing.T) {
	g := miniEBiz(t)
	paths := g.JoinPaths("TRANSITEM")
	if len(paths) != 1 || len(paths[0].Hops) != 0 || paths[0].Role != "Fact" {
		t.Errorf("fact self-path = %v", pathStrings(paths))
	}
}

func TestJoinPathsDeterministic(t *testing.T) {
	g := miniEBiz(t)
	first := pathStrings(g.JoinPaths("LOC"))
	for i := 0; i < 5; i++ {
		if got := pathStrings(g.JoinPaths("LOC")); !reflect.DeepEqual(got, first) {
			t.Fatalf("unstable enumeration: %v vs %v", got, first)
		}
	}
}

func TestMaxHopsBound(t *testing.T) {
	g := miniEBiz(t)
	g.SetMaxHops(2)
	if paths := g.JoinPaths("PLINE"); len(paths) != 0 {
		t.Errorf("PLINE needs 3 hops; maxHops=2 should prune it: %v", pathStrings(paths))
	}
	if paths := g.JoinPaths("PRODUCT"); len(paths) != 1 {
		t.Errorf("PRODUCT within bound should survive: %v", pathStrings(paths))
	}
}

func TestHopReverseAndString(t *testing.T) {
	h := Hop{FromTable: "A", FromCol: "x", ToTable: "B", ToCol: "y"}
	r := h.Reverse()
	if r.FromTable != "B" || r.FromCol != "y" || r.ToTable != "A" || r.ToCol != "x" {
		t.Errorf("Reverse = %+v", r)
	}
	if h.String() != "A.x=B.y" {
		t.Errorf("String = %q", h.String())
	}
	if r.Reverse() != h {
		t.Error("double reverse must be identity")
	}
}

func TestPathSignatureDistinguishesRoles(t *testing.T) {
	g := miniEBiz(t)
	paths := g.JoinPaths("LOC")
	sigs := map[string]bool{}
	for _, p := range paths {
		if sigs[p.Signature()] {
			t.Errorf("duplicate signature %q", p.Signature())
		}
		sigs[p.Signature()] = true
	}
}

func TestHierarchyParent(t *testing.T) {
	g := miniEBiz(t)
	parent, dim, ok := g.HierarchyParent(AttrRef{Table: "UNSPSC", Attr: "ClassTitle"})
	if !ok || parent != (AttrRef{Table: "UNSPSC", Attr: "FamilyTitle"}) || dim.Name != "Product" {
		t.Errorf("parent of ClassTitle = %v, %v, %v", parent, dim, ok)
	}
	// GroupName's parent lives in another table.
	parent, _, ok = g.HierarchyParent(AttrRef{Table: "PGROUP", Attr: "GroupName"})
	if !ok || parent != (AttrRef{Table: "PLINE", Attr: "LineName"}) {
		t.Errorf("parent of GroupName = %v, %v", parent, ok)
	}
	// Root level has no parent.
	if _, _, ok := g.HierarchyParent(AttrRef{Table: "UNSPSC", Attr: "FamilyTitle"}); ok {
		t.Error("root level must have no parent")
	}
	// ProductName appears in two hierarchies; the first (UNSPSC) wins.
	parent, _, ok = g.HierarchyParent(AttrRef{Table: "PRODUCT", Attr: "ProductName"})
	if !ok || parent != (AttrRef{Table: "UNSPSC", Attr: "ClassTitle"}) {
		t.Errorf("parent of ProductName = %v, %v", parent, ok)
	}
}

func TestPathFromFactRoleSelection(t *testing.T) {
	g := miniEBiz(t)
	p, ok := g.PathFromFact("LOC", "Buyer")
	if !ok || p.Role != "Buyer" {
		t.Fatalf("PathFromFact(LOC, Buyer) = %v, %v", p, ok)
	}
	if !strings.Contains(p.Signature(), "BuyerKey") {
		t.Errorf("buyer path signature %q", p.Signature())
	}
	// Dimension-name fallback: role "Customer" matches dim, shortest wins.
	p, ok = g.PathFromFact("LOC", "Customer")
	if !ok || p.Dim != "Customer" {
		t.Errorf("PathFromFact(LOC, Customer) = %v, %v", p, ok)
	}
	// Unknown role falls back to the shortest path.
	p, ok = g.PathFromFact("LOC", "nonsense")
	if !ok || len(p.Hops) != 3 {
		t.Errorf("fallback path = %v (role %s)", p, p.Role)
	}
	// Unreachable table.
	if _, ok := g.PathFromFact("NOPE", "Store"); ok {
		t.Error("missing table should not resolve")
	}
}

func TestInnerPathsAvoidFact(t *testing.T) {
	g := miniEBiz(t)
	// PGROUP → PLINE within the Product dimension.
	paths := g.InnerPaths("PGROUP", "PLINE")
	if len(paths) != 1 || len(paths[0].Hops) != 1 {
		t.Fatalf("InnerPaths(PGROUP, PLINE) = %v", pathStrings(paths))
	}
	// UNSPSC → PGROUP must route through PRODUCT, not through the fact.
	paths = g.InnerPaths("UNSPSC", "PGROUP")
	if len(paths) != 1 {
		t.Fatalf("InnerPaths(UNSPSC, PGROUP) = %v", pathStrings(paths))
	}
	for _, tb := range paths[0].Tables() {
		if tb == "TRANS" || tb == "TRANSITEM" {
			t.Errorf("inner path crosses fact complex: %v", paths[0])
		}
	}
	// STORE → CUSTOMER connect through the shared LOC table (legitimate,
	// avoids the fact complex) but through nothing else.
	paths = g.InnerPaths("STORE", "CUSTOMER")
	if len(paths) != 1 || len(paths[0].Hops) != 2 {
		t.Errorf("InnerPaths(STORE, CUSTOMER) = %v", pathStrings(paths))
	}
	// Constrained to the Store dimension, that path is excluded.
	if got := g.InnerPathsWithin("STORE", "CUSTOMER", g.Dimension("Store")); len(got) != 0 {
		t.Errorf("InnerPathsWithin crossed dimensions: %v", pathStrings(got))
	}
	// Within the Product dimension, UNSPSC → PGROUP survives.
	if got := g.InnerPathsWithin("UNSPSC", "PGROUP", g.Dimension("Product")); len(got) != 1 {
		t.Errorf("InnerPathsWithin(Product) = %v", pathStrings(got))
	}
	// Same table → zero-hop path.
	paths = g.InnerPaths("UNSPSC", "UNSPSC")
	if len(paths) != 1 || len(paths[0].Hops) != 0 {
		t.Errorf("self inner path = %v", pathStrings(paths))
	}
	// Fact endpoints are rejected.
	if paths := g.InnerPaths("TRANS", "LOC"); paths != nil {
		t.Errorf("factish endpoint accepted: %v", pathStrings(paths))
	}
}

func TestBuildValidation(t *testing.T) {
	db := relation.NewDatabase("v")
	db.MustCreateTable(relation.MustSchema("F", []relation.Column{{Name: "K", Kind: relation.KindInt}}, "K", nil))

	g := New(db, "MISSING")
	if err := g.Build(); err == nil {
		t.Error("missing fact table accepted")
	}

	g = New(db, "F")
	g.AddFactExtension("NOPE")
	if err := g.Build(); err == nil {
		t.Error("missing fact extension accepted")
	}

	g = New(db, "F")
	_ = g.AddDimension(&Dimension{Name: "D", Tables: []string{"GHOST"}})
	if err := g.Build(); err == nil {
		t.Error("dimension with missing table accepted")
	}

	g = New(db, "F")
	_ = g.AddDimension(&Dimension{Name: "D", Hierarchies: []Hierarchy{
		{Name: "H", Levels: []AttrRef{{Table: "F", Attr: "Ghost"}}},
	}})
	if err := g.Build(); err == nil {
		t.Error("hierarchy with missing attribute accepted")
	}

	g = New(db, "F")
	_ = g.AddDimension(&Dimension{Name: "D", GroupBy: []AttrRef{{Table: "F", Attr: "Ghost"}}})
	if err := g.Build(); err == nil {
		t.Error("group-by with missing attribute accepted")
	}

	g = New(db, "F")
	if err := g.AddDimension(&Dimension{Name: "D"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddDimension(&Dimension{Name: "D"}); err == nil {
		t.Error("duplicate dimension accepted")
	}
}

func TestJoinPathsBeforeBuildPanics(t *testing.T) {
	db := relation.NewDatabase("v")
	db.MustCreateTable(relation.MustSchema("F", []relation.Column{{Name: "K", Kind: relation.KindInt}}, "K", nil))
	g := New(db, "F")
	for name, fn := range map[string]func(){
		"JoinPaths":  func() { g.JoinPaths("F") },
		"InnerPaths": func() { g.InnerPaths("F", "F") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s before Build should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDimensionOfTable(t *testing.T) {
	g := miniEBiz(t)
	dims := g.DimensionOfTable("LOC")
	if len(dims) != 2 {
		t.Fatalf("LOC owners = %d", len(dims))
	}
	names := []string{dims[0].Name, dims[1].Name}
	if !reflect.DeepEqual(names, []string{"Store", "Customer"}) {
		t.Errorf("LOC owners = %v", names)
	}
	if len(g.DimensionOfTable("TRANS")) != 0 {
		t.Error("fact extension owned by a dimension")
	}
	if g.Dimension("Product") == nil || g.Dimension("Nope") != nil {
		t.Error("Dimension lookup wrong")
	}
	if len(g.Dimensions()) != 3 {
		t.Error("Dimensions() count")
	}
}

func TestAttrRefString(t *testing.T) {
	if (AttrRef{Table: "T", Attr: "A"}).String() != "T.A" {
		t.Error("AttrRef.String")
	}
}

func TestGraphAccessors(t *testing.T) {
	g := miniEBiz(t)
	if g.FactTable() != "TRANSITEM" {
		t.Error("FactTable")
	}
	if g.DB() == nil || g.DB().Table("LOC") == nil {
		t.Error("DB accessor")
	}
	if g.MaxHops() != 8 {
		t.Errorf("MaxHops = %d", g.MaxHops())
	}
	if got := g.FactExtensions(); len(got) != 1 || got[0] != "TRANS" {
		t.Errorf("FactExtensions = %v", got)
	}
	labels := g.EdgeLabels()
	if len(labels) != 2 {
		t.Fatalf("EdgeLabels = %v", labels)
	}
	if labels[0].Column != "BuyerKey" || labels[0].Role != "Buyer" || labels[0].Dimension != "Customer" {
		t.Errorf("first label = %+v", labels[0])
	}
	if labels[1].Column != "SellerKey" {
		t.Errorf("second label = %+v", labels[1])
	}
	// Zero-hop path target.
	p := JoinPath{Source: "LOC"}
	if p.Target() != "LOC" {
		t.Error("zero-hop Target")
	}
}
