package persist

import (
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/shard"
)

// A partition is derived state — like the full-text index it is not
// serialized but re-built from the fact table. Re-deriving it on a
// round-tripped warehouse must reproduce the shard layout and every
// zone map exactly; anything else would mean the snapshot altered the
// fact data the zone maps summarize.
func TestRoundTripRederivesIdenticalShards(t *testing.T) {
	orig := dataset.EBiz()
	got := roundTrip(t, orig)

	const shards = 16
	factName := orig.Graph.FactTable()
	po := shard.Build(orig.DB.Table(factName), shards)
	pg := shard.Build(got.DB.Table(factName), shards)

	if po.Count() != pg.Count() || po.NumRows() != pg.NumRows() {
		t.Fatalf("partition shape differs: %d/%d shards, %d/%d rows",
			po.Count(), pg.Count(), po.NumRows(), pg.NumRows())
	}
	numeric := []string{}
	for _, c := range orig.DB.Table(factName).Schema().Columns {
		if z, ok := po.Shards()[0].Zone(c.Name); ok {
			_ = z
			numeric = append(numeric, c.Name)
		}
	}
	if len(numeric) == 0 {
		t.Fatal("fact table has no zone-mapped columns")
	}
	for i := range po.Shards() {
		so, sg := po.Shards()[i], pg.Shards()[i]
		if so.Lo != sg.Lo || so.Hi != sg.Hi {
			t.Fatalf("shard %d range [%d,%d) vs [%d,%d)", i, so.Lo, so.Hi, sg.Lo, sg.Hi)
		}
		for _, col := range numeric {
			zo, ok1 := so.Zone(col)
			zg, ok2 := sg.Zone(col)
			if !ok1 || !ok2 {
				t.Fatalf("shard %d missing zone for %s (orig=%v reload=%v)", i, col, ok1, ok2)
			}
			if zo != zg {
				t.Fatalf("shard %d zone %s: [%g,%g] vs [%g,%g]",
					i, col, zo.Min, zo.Max, zg.Min, zg.Max)
			}
		}
	}
}
