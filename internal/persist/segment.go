package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"kdap/internal/relation"
)

// Disk-backed segmented column storage: the on-disk implementation of
// relation.ColumnBacking. A table is laid out as one raw data file per
// column (float64 rows for numeric columns, int32 dictionary codes
// otherwise) plus a binary manifest carrying the dictionaries and the
// per-segment skip evidence — zone maps over numeric columns, Bloom
// filters over foreign-key and full-text columns, and per-term segment
// lists for full-text columns. The SegmentWriter streams rows in (never
// holding more than one segment's accumulators), and the Store pages
// individual segments back out through a byte-budgeted LRU cache, so a
// warehouse orders of magnitude beyond RAM answers drills in bounded
// residency.

// Manifest magic: format name + version in eight bytes.
const segMagic = "KDAPSEG1"

const (
	manifestName  = "manifest.kdseg"
	colFilePat    = "col_%d.dat"
	floatRowBytes = 8
	codeRowBytes  = 4
)

// DefaultSegmentCacheBytes is the Store's default page-cache budget.
const DefaultSegmentCacheBytes = 64 << 20

// column flag bits in the manifest.
const (
	flagDict     = 1 << 0
	flagZones    = 1 << 1
	flagBloom    = 1 << 2
	flagTermSegs = 1 << 3
)

// zoneEntry is one segment's min/max over a numeric column. An empty
// zone (all NULL) has Min > Max and overlaps nothing.
type zoneEntry struct{ Min, Max float64 }

func emptyZoneEntry() zoneEntry { return zoneEntry{Min: math.Inf(1), Max: math.Inf(-1)} }

// manifest is the decoded form of the manifest file.
type manifest struct {
	segSize int
	numRows int
	cols    []manifestCol
}

// manifestCol is one column's manifest record.
type manifestCol struct {
	name     string
	kind     relation.Kind
	dict     []relation.Value
	zones    []zoneEntry   // per segment, numeric columns only
	blooms   []bloomFilter // per segment, bloom columns only
	termSegs [][]int32     // per dict code, full-text dict columns only
	isDict   bool
}

// numSegs returns the manifest's segment count.
func (m *manifest) numSegs() int { return relation.NumSegments(m.numRows, m.segSize) }

// ---------------------------------------------------------------------
// Manifest encoding

type manifestEncoder struct{ b []byte }

func (e *manifestEncoder) u8(v byte)     { e.b = append(e.b, v) }
func (e *manifestEncoder) u16(v uint16)  { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *manifestEncoder) u32(v uint32)  { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *manifestEncoder) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *manifestEncoder) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e *manifestEncoder) value(v relation.Value) {
	e.u8(byte(v.Kind()))
	switch v.Kind() {
	case relation.KindString:
		s := v.Str()
		e.u32(uint32(len(s)))
		e.b = append(e.b, s...)
	case relation.KindInt:
		e.u64(uint64(v.IntVal()))
	case relation.KindFloat:
		e.f64(v.FloatVal())
	case relation.KindBool:
		if v.BoolVal() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	}
}

// encodeManifest serializes a manifest. The layout is fixed little-
// endian with length-prefixed variable parts; see decodeManifest for
// the authoritative grammar.
func encodeManifest(m *manifest) []byte {
	e := &manifestEncoder{b: make([]byte, 0, 1<<16)}
	e.b = append(e.b, segMagic...)
	e.u32(uint32(m.segSize))
	e.u64(uint64(m.numRows))
	e.u32(uint32(len(m.cols)))
	nseg := m.numSegs()
	for _, c := range m.cols {
		e.u16(uint16(len(c.name)))
		e.b = append(e.b, c.name...)
		e.u8(byte(c.kind))
		var flags byte
		if c.isDict {
			flags |= flagDict
		}
		if c.zones != nil {
			flags |= flagZones
		}
		if c.blooms != nil {
			flags |= flagBloom
		}
		if c.termSegs != nil {
			flags |= flagTermSegs
		}
		e.u8(flags)
		if c.isDict {
			e.u32(uint32(len(c.dict)))
			for _, v := range c.dict {
				e.value(v)
			}
		}
		if c.zones != nil {
			for si := 0; si < nseg; si++ {
				e.f64(c.zones[si].Min)
				e.f64(c.zones[si].Max)
			}
		}
		if c.blooms != nil {
			for si := 0; si < nseg; si++ {
				f := c.blooms[si]
				e.u32(f.k)
				e.u32(uint32(len(f.bits)))
				e.b = append(e.b, f.bits...)
			}
		}
		if c.termSegs != nil {
			e.u32(uint32(len(c.termSegs)))
			for _, segs := range c.termSegs {
				e.u32(uint32(len(segs)))
				for _, s := range segs {
					e.u32(uint32(s))
				}
			}
		}
	}
	return e.b
}

// ---------------------------------------------------------------------
// Manifest decoding. The decoder is the fuzz surface: every length is
// validated against the remaining input before allocation, and every
// structural inconsistency returns an error — it must never panic or
// over-allocate on adversarial bytes.

type manifestDecoder struct {
	b   []byte
	off int
}

var errTruncated = fmt.Errorf("persist: manifest truncated")

func (d *manifestDecoder) remaining() int { return len(d.b) - d.off }

func (d *manifestDecoder) take(n int) ([]byte, error) {
	if n < 0 || d.remaining() < n {
		return nil, errTruncated
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out, nil
}

func (d *manifestDecoder) u8() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *manifestDecoder) u16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *manifestDecoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *manifestDecoder) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *manifestDecoder) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *manifestDecoder) value() (relation.Value, error) {
	k, err := d.u8()
	if err != nil {
		return relation.Value{}, err
	}
	switch relation.Kind(k) {
	case relation.KindNull:
		return relation.Null(), nil
	case relation.KindString:
		n, err := d.u32()
		if err != nil {
			return relation.Value{}, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return relation.Value{}, err
		}
		return relation.String(string(b)), nil
	case relation.KindInt:
		v, err := d.u64()
		return relation.Int(int64(v)), err
	case relation.KindFloat:
		v, err := d.f64()
		return relation.Float(v), err
	case relation.KindBool:
		b, err := d.u8()
		return relation.Bool(b != 0), err
	default:
		return relation.Value{}, fmt.Errorf("persist: manifest value kind %d", k)
	}
}

// maxManifestSegs bounds the segment count implied by a manifest header
// so a forged (rows, segSize) pair cannot drive huge zone allocations.
const maxManifestSegs = 1 << 24

// decodeManifest parses a manifest buffer.
func decodeManifest(data []byte) (*manifest, error) {
	d := &manifestDecoder{b: data}
	magic, err := d.take(len(segMagic))
	if err != nil {
		return nil, err
	}
	if string(magic) != segMagic {
		return nil, fmt.Errorf("persist: bad segment magic %q", magic)
	}
	ssz, err := d.u32()
	if err != nil {
		return nil, err
	}
	if !relation.ValidSegmentSize(int(ssz)) {
		return nil, fmt.Errorf("persist: invalid segment size %d", ssz)
	}
	rows, err := d.u64()
	if err != nil {
		return nil, err
	}
	if rows > math.MaxInt64/floatRowBytes {
		return nil, fmt.Errorf("persist: absurd row count %d", rows)
	}
	m := &manifest{segSize: int(ssz), numRows: int(rows)}
	nseg := m.numSegs()
	if nseg > maxManifestSegs {
		return nil, fmt.Errorf("persist: %d segments exceeds limit", nseg)
	}
	ncols, err := d.u32()
	if err != nil {
		return nil, err
	}
	for ci := 0; ci < int(ncols); ci++ {
		var c manifestCol
		nameLen, err := d.u16()
		if err != nil {
			return nil, err
		}
		name, err := d.take(int(nameLen))
		if err != nil {
			return nil, err
		}
		c.name = string(name)
		kind, err := d.u8()
		if err != nil {
			return nil, err
		}
		c.kind = relation.Kind(kind)
		flags, err := d.u8()
		if err != nil {
			return nil, err
		}
		c.isDict = flags&flagDict != 0
		numeric := c.kind == relation.KindInt || c.kind == relation.KindFloat
		if c.isDict == numeric {
			return nil, fmt.Errorf("persist: column %q: kind %s with dict=%v", c.name, c.kind, c.isDict)
		}
		if c.isDict {
			dictLen, err := d.u32()
			if err != nil {
				return nil, err
			}
			// A dict entry is at least two bytes on the wire; reject
			// counts the remaining input cannot possibly hold.
			if int(dictLen) > d.remaining() {
				return nil, errTruncated
			}
			c.dict = make([]relation.Value, 0, dictLen)
			for i := 0; i < int(dictLen); i++ {
				v, err := d.value()
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					return nil, fmt.Errorf("persist: column %q: NULL in dictionary", c.name)
				}
				c.dict = append(c.dict, v)
			}
		}
		if flags&flagZones != 0 {
			if !numeric {
				return nil, fmt.Errorf("persist: column %q: zones on non-numeric column", c.name)
			}
			c.zones = make([]zoneEntry, nseg)
			for si := 0; si < nseg; si++ {
				if c.zones[si].Min, err = d.f64(); err != nil {
					return nil, err
				}
				if c.zones[si].Max, err = d.f64(); err != nil {
					return nil, err
				}
			}
		}
		if flags&flagBloom != 0 {
			c.blooms = make([]bloomFilter, nseg)
			for si := 0; si < nseg; si++ {
				k, err := d.u32()
				if err != nil {
					return nil, err
				}
				if k == 0 || k > 64 {
					return nil, fmt.Errorf("persist: column %q: bloom k=%d", c.name, k)
				}
				nbytes, err := d.u32()
				if err != nil {
					return nil, err
				}
				bits, err := d.take(int(nbytes))
				if err != nil {
					return nil, err
				}
				c.blooms[si] = bloomFilter{bits: append([]byte(nil), bits...), k: k}
			}
		}
		if flags&flagTermSegs != 0 {
			if !c.isDict {
				return nil, fmt.Errorf("persist: column %q: term segments on non-dict column", c.name)
			}
			n, err := d.u32()
			if err != nil {
				return nil, err
			}
			if int(n) != len(c.dict) {
				return nil, fmt.Errorf("persist: column %q: %d term-segment lists for %d dict entries", c.name, n, len(c.dict))
			}
			c.termSegs = make([][]int32, n)
			for i := range c.termSegs {
				cnt, err := d.u32()
				if err != nil {
					return nil, err
				}
				if int(cnt) > nseg || int(cnt)*4 > d.remaining() {
					return nil, errTruncated
				}
				segs := make([]int32, cnt)
				for j := range segs {
					s, err := d.u32()
					if err != nil {
						return nil, err
					}
					if int(s) >= nseg {
						return nil, fmt.Errorf("persist: column %q: term segment %d out of range", c.name, s)
					}
					segs[j] = int32(s)
				}
				c.termSegs[i] = segs
			}
		}
		m.cols = append(m.cols, c)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("persist: %d trailing manifest bytes", d.remaining())
	}
	return m, nil
}

// ---------------------------------------------------------------------
// SegmentWriter: streaming columnar ingest.

// SegmentWriterOptions configure a SegmentWriter.
type SegmentWriterOptions struct {
	// SegmentSize is the rows-per-segment (a power of two, min 64).
	// 0 means relation.DefaultSegmentSize.
	SegmentSize int
	// BloomColumns names the columns to carry per-segment Bloom
	// filters. nil means the schema's foreign-key columns plus every
	// full-text column; an explicit empty slice disables filters.
	BloomColumns []string
}

// SegmentWriter streams rows of one table into segment files under a
// directory. Rows are validated against the schema exactly like
// Table.Append (ints widen into float columns); per-segment zone maps,
// Bloom filters, and term→segment lists accumulate as rows arrive, so
// nothing larger than one segment's bookkeeping is ever resident.
// Close finalizes the last partial segment and writes the manifest.
type SegmentWriter struct {
	dir     string
	schema  *relation.Schema
	segSize int
	rows    int
	cols    []*writerCol
	closed  bool
}

// writerCol is one column's streaming state.
type writerCol struct {
	col     relation.Column
	numeric bool
	f       *os.File
	bw      *bufio.Writer

	// dictionary state (non-numeric columns)
	codeOf map[relation.Value]int32
	dict   []relation.Value

	// per-segment accumulators, flushed at each segment boundary
	zone     zoneEntry
	zones    []zoneEntry
	bloomOn  bool
	segHash  map[uint64]struct{}
	blooms   []bloomFilter
	termsOn  bool
	termSegs [][]int32 // per dict code: segments containing the term
}

// NewSegmentWriter creates segment files for the schema under dir
// (created if absent).
func NewSegmentWriter(dir string, schema *relation.Schema, opts SegmentWriterOptions) (*SegmentWriter, error) {
	segSize := opts.SegmentSize
	if segSize == 0 {
		segSize = relation.DefaultSegmentSize
	}
	if !relation.ValidSegmentSize(segSize) {
		return nil, fmt.Errorf("persist: invalid segment size %d (want a power of two >= 64)", segSize)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	bloomOn := make(map[string]bool)
	if opts.BloomColumns == nil {
		for _, fk := range schema.ForeignKeys {
			bloomOn[fk.Column] = true
		}
		for _, name := range schema.FullTextColumns() {
			bloomOn[name] = true
		}
	} else {
		for _, name := range opts.BloomColumns {
			if !schema.HasColumn(name) {
				return nil, fmt.Errorf("persist: bloom column %q not in schema %s", name, schema.Name)
			}
			bloomOn[name] = true
		}
	}
	w := &SegmentWriter{dir: dir, schema: schema, segSize: segSize}
	for ci, c := range schema.Columns {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf(colFilePat, ci)))
		if err != nil {
			w.closeFiles()
			return nil, err
		}
		wc := &writerCol{
			col:     c,
			numeric: c.Kind == relation.KindInt || c.Kind == relation.KindFloat,
			f:       f,
			bw:      bufio.NewWriterSize(f, 1<<16),
			zone:    emptyZoneEntry(),
			bloomOn: bloomOn[c.Name],
		}
		if !wc.numeric {
			wc.codeOf = make(map[relation.Value]int32)
			wc.termsOn = c.FullText
		}
		if wc.bloomOn {
			wc.segHash = make(map[uint64]struct{})
		}
		w.cols = append(w.cols, wc)
	}
	return w, nil
}

func (w *SegmentWriter) closeFiles() {
	for _, wc := range w.cols {
		if wc.f != nil {
			wc.f.Close()
		}
	}
}

// SegmentSize returns the writer's rows-per-segment.
func (w *SegmentWriter) SegmentSize() int { return w.segSize }

// NumRows returns the rows appended so far.
func (w *SegmentWriter) NumRows() int { return w.rows }

// flushSegment finalizes the per-segment accumulators of every column.
func (w *SegmentWriter) flushSegment() {
	for _, wc := range w.cols {
		if wc.numeric {
			wc.zones = append(wc.zones, wc.zone)
			wc.zone = emptyZoneEntry()
		}
		if wc.bloomOn {
			hashes := make([]uint64, 0, len(wc.segHash))
			for h := range wc.segHash {
				hashes = append(hashes, h)
			}
			wc.blooms = append(wc.blooms, newBloom(hashes))
			clear(wc.segHash)
		}
	}
}

// Append validates and writes one row.
func (w *SegmentWriter) Append(row []relation.Value) error {
	if w.closed {
		return fmt.Errorf("persist: append after Close")
	}
	if len(row) != len(w.schema.Columns) {
		return fmt.Errorf("persist: %s: row arity %d, want %d", w.schema.Name, len(row), len(w.schema.Columns))
	}
	if w.rows > 0 && w.rows%w.segSize == 0 {
		w.flushSegment()
	}
	si := w.rows / w.segSize
	var buf [8]byte
	for i, v := range row {
		wc := w.cols[i]
		c := wc.col
		// Validate and widen exactly like Table.Append.
		stored := v
		switch {
		case v.IsNull():
		case v.Kind() == c.Kind:
		case c.Kind == relation.KindFloat && v.Kind() == relation.KindInt:
			stored = relation.Float(float64(v.IntVal()))
		default:
			return fmt.Errorf("persist: %s.%s: cannot store %s value %#v in %s column",
				w.schema.Name, c.Name, v.Kind(), v, c.Kind)
		}
		if wc.numeric {
			f := stored.FloatOrNaN()
			if !math.IsNaN(f) {
				if f < wc.zone.Min {
					wc.zone.Min = f
				}
				if f > wc.zone.Max {
					wc.zone.Max = f
				}
			}
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
			if _, err := wc.bw.Write(buf[:8]); err != nil {
				return err
			}
		} else {
			code := int32(-1)
			if !stored.IsNull() {
				var ok bool
				code, ok = wc.codeOf[stored]
				if !ok {
					code = int32(len(wc.dict))
					wc.codeOf[stored] = code
					wc.dict = append(wc.dict, stored)
					if wc.termsOn {
						wc.termSegs = append(wc.termSegs, nil)
					}
				}
				if wc.termsOn {
					segs := wc.termSegs[code]
					if len(segs) == 0 || segs[len(segs)-1] != int32(si) {
						wc.termSegs[code] = append(segs, int32(si))
					}
				}
			}
			binary.LittleEndian.PutUint32(buf[:4], uint32(code))
			if _, err := wc.bw.Write(buf[:4]); err != nil {
				return err
			}
		}
		if wc.bloomOn && !stored.IsNull() {
			wc.segHash[hashValue(stored)] = struct{}{}
		}
	}
	w.rows++
	return nil
}

// Close flushes the final partial segment, writes the manifest, and
// closes the column files.
func (w *SegmentWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.rows > 0 {
		w.flushSegment()
	}
	m := &manifest{segSize: w.segSize, numRows: w.rows}
	for _, wc := range w.cols {
		mc := manifestCol{name: wc.col.Name, kind: wc.col.Kind, isDict: !wc.numeric}
		if wc.numeric {
			mc.zones = wc.zones
		} else {
			mc.dict = wc.dict
			if wc.termsOn {
				mc.termSegs = wc.termSegs
			}
		}
		if wc.bloomOn {
			mc.blooms = wc.blooms
		}
		m.cols = append(m.cols, mc)
		if err := wc.bw.Flush(); err != nil {
			w.closeFiles()
			return err
		}
		if err := wc.f.Close(); err != nil {
			return err
		}
		wc.f = nil
	}
	return os.WriteFile(filepath.Join(w.dir, manifestName), encodeManifest(m), 0o644)
}

// WriteTableSegments streams every row of a resident table into segment
// files under dir — the migration path from an in-memory warehouse.
func WriteTableSegments(dir string, t *relation.Table, opts SegmentWriterOptions) error {
	w, err := NewSegmentWriter(dir, t.Schema(), opts)
	if err != nil {
		return err
	}
	var appendErr error
	t.Scan(func(id int, row []relation.Value) bool {
		appendErr = w.Append(row)
		return appendErr == nil
	})
	if appendErr != nil {
		w.closeFiles()
		return appendErr
	}
	return w.Close()
}

// ---------------------------------------------------------------------
// Store: the pageable read side.

// SegStats is a snapshot of a Store's paging and skip counters, exported
// as kdap_segments_*_total.
type SegStats struct {
	// Resident counts segment reads served from the page cache;
	// PagedIn counts reads that went to disk; Evicted counts segments
	// dropped to stay inside the cache budget.
	Resident, PagedIn, Evicted int64
	// SkippedBloom / SkippedZone count segments a scan skipped on
	// Bloom-filter or zone-map evidence without touching their pages.
	SkippedBloom, SkippedZone int64
}

// segKey addresses one cached segment.
type segKey struct{ ci, si int }

// cacheEnt is one cached segment with LRU links (intrusive list).
type cacheEnt struct {
	key        segKey
	f64        []float64
	i32        []int32
	size       int64
	prev, next *cacheEnt
}

// storeCol is one column's open state. The skip-evidence fields (dict,
// zones, blooms, termSeg, codeOf) and the open-tail buffers are guarded
// by the Store's metaMu once the store has been made appendable; before
// that they are immutable.
type storeCol struct {
	col     relation.Column
	numeric bool
	f       *os.File
	dict    []relation.Value
	zones   []zoneEntry
	blooms  []bloomFilter
	termSeg [][]int32

	codeOf map[relation.Value]int32

	// Append-side state (nil/zero until ensureAppendable). tailF/tailC
	// hold the open — not yet sealed — segment's values, served to
	// readers in place of a file read; wf is the write handle used to
	// seal full segments and flush partial tails.
	wf       *os.File
	tailF    []float64
	tailC    []int32
	zoneAcc  zoneEntry
	openHash map[uint64]struct{}
}

// Store opens a segment directory for reading and implements
// relation.ColumnBacking over it: column readers page 8 KiB–64 KiB
// segments in on demand through a byte-budgeted LRU, and the manifest's
// zone maps and Bloom filters answer skip queries without I/O. Safe for
// concurrent use, including concurrently with AppendRows: the row count
// is published atomically after the rows' values and skip evidence, so
// a reader that observed NumRows() == n can resolve everything below n.
type Store struct {
	dir     string
	segSize int
	numRows atomic.Int64
	schema  *relation.Schema
	cols    []*storeCol
	byName  map[string]int

	// metaMu guards the per-column skip evidence and tail buffers
	// against AppendRows. Read paths hold it briefly; the writer holds
	// it only while publishing a staged chunk, never during file I/O.
	metaMu sync.RWMutex
	// amu serializes appenders; appendable marks that the open tail has
	// been lifted into the tail buffers and write handles are open.
	amu        sync.Mutex
	appendable bool
	dirty      bool
	// openSeg is the index of the open (unsealed) segment; -1 when the
	// store is not appendable. Guarded by metaMu.
	openSeg int

	mu     sync.Mutex
	cache  map[segKey]*cacheEnt
	head   *cacheEnt // most recent
	tail   *cacheEnt // least recent
	usage  int64
	budget int64

	resident     atomic.Int64
	pagedIn      atomic.Int64
	evicted      atomic.Int64
	skippedBloom atomic.Int64
	skippedZone  atomic.Int64
}

// OpenStore opens the segment directory and validates it against the
// schema: every schema column must be present with the matching kind,
// and every data file must hold exactly the manifest's row count.
func OpenStore(dir string, schema *relation.Schema) (*Store, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	m, err := decodeManifest(raw)
	if err != nil {
		return nil, err
	}
	st := &Store{
		dir:     dir,
		segSize: m.segSize,
		schema:  schema,
		openSeg: -1,
		cache:   make(map[segKey]*cacheEnt),
		budget:  DefaultSegmentCacheBytes,
		byName:  make(map[string]int, len(m.cols)),
	}
	st.numRows.Store(int64(m.numRows))
	if len(m.cols) != len(schema.Columns) {
		return nil, fmt.Errorf("persist: %s: manifest has %d columns, schema %d", schema.Name, len(m.cols), len(schema.Columns))
	}
	ok := false
	defer func() {
		if !ok {
			st.Close()
		}
	}()
	for ci, mc := range m.cols {
		sc := schema.Columns[ci]
		if mc.name != sc.Name || mc.kind != sc.Kind {
			return nil, fmt.Errorf("persist: %s: column %d is %s:%s on disk, %s:%s in schema",
				schema.Name, ci, mc.name, mc.kind, sc.Name, sc.Kind)
		}
		f, err := os.Open(filepath.Join(dir, fmt.Sprintf(colFilePat, ci)))
		if err != nil {
			return nil, err
		}
		col := &storeCol{
			col:     sc,
			numeric: !mc.isDict,
			f:       f,
			dict:    mc.dict,
			zones:   mc.zones,
			blooms:  mc.blooms,
			termSeg: mc.termSegs,
		}
		width := int64(codeRowBytes)
		if col.numeric {
			width = floatRowBytes
		}
		fi, err := f.Stat()
		if err != nil {
			return nil, err
		}
		if fi.Size() != int64(m.numRows)*width {
			return nil, fmt.Errorf("persist: %s.%s: data file holds %d bytes, want %d",
				schema.Name, sc.Name, fi.Size(), int64(m.numRows)*width)
		}
		st.cols = append(st.cols, col)
		st.byName[sc.Name] = ci
	}
	ok = true
	return st, nil
}

// Close flushes any unflushed appended tail and releases the column
// file handles.
func (st *Store) Close() error {
	var first error
	if st.dirty {
		first = st.Flush()
	}
	for _, c := range st.cols {
		if c.f != nil {
			if err := c.f.Close(); err != nil && first == nil {
				first = err
			}
			c.f = nil
		}
		if c.wf != nil {
			if err := c.wf.Close(); err != nil && first == nil {
				first = err
			}
			c.wf = nil
		}
	}
	return first
}

// SetCacheBudget sets the page-cache byte budget. 0 or negative means
// unbounded. Shrinking evicts immediately.
func (st *Store) SetCacheBudget(bytes int64) {
	st.mu.Lock()
	st.budget = bytes
	st.evictLocked(nil)
	st.mu.Unlock()
}

// DropCache discards every cached segment page, so the next reads page
// in from disk again — the cold-cache hook benchmarks use. Unlike
// budget-pressure eviction, dropped pages are not counted in
// SegStats.Evicted.
func (st *Store) DropCache() {
	st.mu.Lock()
	st.cache = make(map[segKey]*cacheEnt)
	st.head, st.tail = nil, nil
	st.usage = 0
	st.mu.Unlock()
}

// Stats snapshots the paging and skip counters.
func (st *Store) Stats() SegStats {
	return SegStats{
		Resident:     st.resident.Load(),
		PagedIn:      st.pagedIn.Load(),
		Evicted:      st.evicted.Load(),
		SkippedBloom: st.skippedBloom.Load(),
		SkippedZone:  st.skippedZone.Load(),
	}
}

// NumRows implements relation.ColumnBacking. The count is published
// atomically after its rows' data and skip evidence.
func (st *Store) NumRows() int { return int(st.numRows.Load()) }

// SegmentSize implements relation.ColumnBacking.
func (st *Store) SegmentSize() int { return st.segSize }

// colIndex resolves a column name, or -1.
func (st *Store) colIndex(name string) int {
	if i, ok := st.byName[name]; ok {
		return i
	}
	return -1
}

// FloatReader implements relation.ColumnBacking.
func (st *Store) FloatReader(col string) relation.FloatReader {
	ci := st.colIndex(col)
	if ci < 0 || !st.cols[ci].numeric {
		return nil
	}
	return storeFloatReader{st: st, ci: ci}
}

// DictReader implements relation.ColumnBacking.
func (st *Store) DictReader(col string) relation.DictReader {
	ci := st.colIndex(col)
	if ci < 0 || st.cols[ci].numeric {
		return nil
	}
	return storeDictReader{st: st, ci: ci}
}

// SegmentMayContain implements relation.ColumnBacking: Bloom evidence.
func (st *Store) SegmentMayContain(col string, si int, v relation.Value) (maybe, hasBloom bool) {
	ci := st.colIndex(col)
	if ci < 0 {
		return true, false
	}
	st.metaMu.RLock()
	defer st.metaMu.RUnlock()
	if st.cols[ci].blooms == nil || si >= len(st.cols[ci].blooms) {
		return true, false
	}
	return st.cols[ci].blooms[si].mayContain(hashValue(v)), true
}

// SegmentZoneOverlaps implements relation.ColumnBacking: zone evidence.
func (st *Store) SegmentZoneOverlaps(col string, si int, lo, hi float64) (overlaps, hasZone bool) {
	ci := st.colIndex(col)
	if ci < 0 {
		return true, false
	}
	st.metaMu.RLock()
	defer st.metaMu.RUnlock()
	if st.cols[ci].zones == nil || si >= len(st.cols[ci].zones) {
		return true, false
	}
	z := st.cols[ci].zones[si]
	if z.Min > z.Max {
		return false, true
	}
	return z.Min <= hi && z.Max >= lo, true
}

// NoteSkips implements relation.ColumnBacking.
func (st *Store) NoteSkips(bloom, zone int) {
	if bloom > 0 {
		st.skippedBloom.Add(int64(bloom))
	}
	if zone > 0 {
		st.skippedZone.Add(int64(zone))
	}
}

// SegmentZones returns per-segment min/max pairs for a numeric column
// (empty zones have min > max), or nil when the column carries none.
func (st *Store) SegmentZones(col string) (mins, maxs []float64) {
	ci := st.colIndex(col)
	if ci < 0 {
		return nil, nil
	}
	st.metaMu.RLock()
	defer st.metaMu.RUnlock()
	if st.cols[ci].zones == nil {
		return nil, nil
	}
	z := st.cols[ci].zones
	mins = make([]float64, len(z))
	maxs = make([]float64, len(z))
	for i := range z {
		mins[i], maxs[i] = z[i].Min, z[i].Max
	}
	return mins, maxs
}

// ValueSegments implements relation.TermSegmenter: the ascending list
// of segments in which a full-text column holds v. ok is false when the
// column carries no term lists or v is outside its dictionary (an
// absent value occupies no segment — callers get an empty scan).
func (st *Store) ValueSegments(col string, v relation.Value) ([]int32, bool) {
	ci := st.colIndex(col)
	if ci < 0 {
		return nil, false
	}
	c := st.cols[ci]
	st.metaMu.RLock()
	if c.termSeg == nil {
		st.metaMu.RUnlock()
		return nil, false
	}
	if len(c.codeOf) >= len(c.dict) {
		code, ok := c.codeOf[v]
		segs := []int32(nil)
		if ok {
			segs = c.termSeg[code]
		}
		st.metaMu.RUnlock()
		return segs, true // a value outside the dictionary is definitively nowhere
	}
	st.metaMu.RUnlock()

	st.metaMu.Lock()
	defer st.metaMu.Unlock()
	st.extendCodeOfLocked(c)
	code, ok := c.codeOf[v]
	if !ok {
		return nil, true
	}
	return c.termSeg[code], true
}

// extendCodeOfLocked brings a column's value→code map up to its
// dictionary. Caller holds metaMu.
func (st *Store) extendCodeOfLocked(c *storeCol) {
	if c.codeOf == nil {
		c.codeOf = make(map[relation.Value]int32, len(c.dict))
	}
	for code := len(c.codeOf); code < len(c.dict); code++ {
		c.codeOf[c.dict[code]] = int32(code)
	}
}

// rowsInSeg returns the row count of segment si.
func (st *Store) rowsInSeg(si int) int {
	lo := si * st.segSize
	return min(st.segSize, st.NumRows()-lo)
}

// ---------------------------------------------------------------------
// Page cache.

// lruUnlink removes e from the LRU list.
func (st *Store) lruUnlink(e *cacheEnt) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		st.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		st.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// lruPushFront makes e the most recent entry.
func (st *Store) lruPushFront(e *cacheEnt) {
	e.next = st.head
	if st.head != nil {
		st.head.prev = e
	}
	st.head = e
	if st.tail == nil {
		st.tail = e
	}
}

// evictLocked drops least-recent entries until usage fits the budget,
// never evicting keep (the entry being returned to a caller).
func (st *Store) evictLocked(keep *cacheEnt) {
	if st.budget <= 0 {
		return
	}
	for st.usage > st.budget && st.tail != nil {
		victim := st.tail
		if victim == keep {
			break
		}
		st.lruUnlink(victim)
		delete(st.cache, victim.key)
		st.usage -= victim.size
		st.evicted.Add(1)
	}
}

// loadSegment returns the cached or freshly paged segment (ci, si),
// covering at least the store's current row count. A cached entry paged
// in before appends grew the segment is shorter than the segment is
// now; such entries are discarded and reloaded rather than served.
func (st *Store) loadSegment(ci, si int) *cacheEnt {
	key := segKey{ci, si}
	want := st.rowsInSeg(si)
	st.mu.Lock()
	if e, ok := st.cache[key]; ok {
		if len(e.f64)+len(e.i32) >= want {
			if st.head != e {
				st.lruUnlink(e)
				st.lruPushFront(e)
			}
			st.mu.Unlock()
			st.resident.Add(1)
			return e
		}
		st.lruUnlink(e)
		delete(st.cache, key)
		st.usage -= e.size
	}
	st.mu.Unlock()

	// Page in outside the lock: concurrent misses on the same segment
	// may both read, but only one result is kept.
	c := st.cols[ci]
	n := st.rowsInSeg(si)
	if n < 0 {
		panic(fmt.Sprintf("persist: segment %d out of range for %d rows", si, st.NumRows()))
	}
	e := &cacheEnt{key: key}
	if c.numeric {
		buf := make([]byte, n*floatRowBytes)
		if _, err := c.f.ReadAt(buf, int64(si)*int64(st.segSize)*floatRowBytes); err != nil {
			panic(fmt.Sprintf("persist: %s segment %d: %v", c.col.Name, si, err))
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		e.f64, e.size = vals, int64(n*floatRowBytes)
	} else {
		buf := make([]byte, n*codeRowBytes)
		if _, err := c.f.ReadAt(buf, int64(si)*int64(st.segSize)*codeRowBytes); err != nil {
			panic(fmt.Sprintf("persist: %s segment %d: %v", c.col.Name, si, err))
		}
		codes := make([]int32, n)
		for i := range codes {
			codes[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
		}
		e.i32, e.size = codes, int64(n*codeRowBytes)
	}
	st.pagedIn.Add(1)

	st.mu.Lock()
	if prior, ok := st.cache[key]; ok && len(prior.f64)+len(prior.i32) >= n {
		e = prior // lost the page-in race; keep the published segment
		if st.head != e {
			st.lruUnlink(e)
			st.lruPushFront(e)
		}
	} else {
		if ok {
			prior := st.cache[key]
			st.lruUnlink(prior)
			delete(st.cache, key)
			st.usage -= prior.size
		}
		st.cache[key] = e
		st.lruPushFront(e)
		st.usage += e.size
		st.evictLocked(e)
	}
	st.mu.Unlock()
	return e
}

// storeFloatReader implements relation.FloatReader over one column.
type storeFloatReader struct {
	st *Store
	ci int
}

func (r storeFloatReader) Len() int         { return r.st.NumRows() }
func (r storeFloatReader) SegmentSize() int { return r.st.segSize }
func (r storeFloatReader) FloatSegment(si int) []float64 {
	if vals, ok := r.st.tailFloatSegment(r.ci, si); ok {
		return vals
	}
	return r.st.loadSegment(r.ci, si).f64
}

// storeDictReader implements relation.DictReader over one column.
type storeDictReader struct {
	st *Store
	ci int
}

func (r storeDictReader) Len() int         { return r.st.NumRows() }
func (r storeDictReader) SegmentSize() int { return r.st.segSize }
func (r storeDictReader) Dict() []relation.Value {
	r.st.metaMu.RLock()
	d := r.st.cols[r.ci].dict
	r.st.metaMu.RUnlock()
	return d
}
func (r storeDictReader) CodeSegment(si int) []int32 {
	if codes, ok := r.st.tailCodeSegment(r.ci, si); ok {
		return codes
	}
	return r.st.loadSegment(r.ci, si).i32
}

// tailFloatSegment serves the open segment's values from the tail
// buffer. ok is false when si is a sealed (file-resident) segment.
func (st *Store) tailFloatSegment(ci, si int) ([]float64, bool) {
	st.metaMu.RLock()
	defer st.metaMu.RUnlock()
	if si != st.openSeg {
		return nil, false
	}
	// Copy: the writer keeps appending to the buffer in place.
	return append([]float64(nil), st.cols[ci].tailF...), true
}

// tailCodeSegment is tailFloatSegment for dictionary columns.
func (st *Store) tailCodeSegment(ci, si int) ([]int32, bool) {
	st.metaMu.RLock()
	defer st.metaMu.RUnlock()
	if si != st.openSeg {
		return nil, false
	}
	return append([]int32(nil), st.cols[ci].tailC...), true
}

// ---------------------------------------------------------------------
// Appendable tail: streaming ingest into an open store.
//
// Appended rows accumulate in per-column tail buffers that stand in for
// the open (last, partial) segment; readers resolve that segment from
// the buffers instead of the file. When the open segment fills it is
// sealed — written to the column files at its final offset, its zone
// map, Bloom filter, and term segment entries frozen — and a new open
// segment starts. The bytes a sealed segment carries are identical to
// what a SegmentWriter streaming the same rows would have produced, so
// appending and rewriting from scratch converge on the same store.
// Flush persists the partial tail and rewrites the manifest, making the
// directory reopenable mid-segment.

// ensureAppendableLocked lifts the open partial segment (if any) from
// the files into the tail buffers and opens write handles. Caller holds
// amu.
func (st *Store) ensureAppendableLocked() error {
	if st.appendable {
		return nil
	}
	n := st.NumRows()
	openLen := n % st.segSize
	openSi := -1
	if openLen > 0 {
		openSi = n / st.segSize
	}
	empty := n == 0
	for ci, c := range st.cols {
		wf, err := os.OpenFile(filepath.Join(st.dir, fmt.Sprintf(colFilePat, ci)), os.O_WRONLY, 0)
		if err != nil {
			return err
		}
		c.wf = wf
	}
	st.metaMu.Lock()
	defer st.metaMu.Unlock()
	for _, c := range st.cols {
		// An empty store carries no evidence yet; enable the same
		// families NewSegmentWriter would: zones on numeric columns,
		// Blooms on foreign keys and full-text columns, term segment
		// lists on full-text dictionary columns.
		if empty {
			if c.numeric && c.zones == nil {
				c.zones = []zoneEntry{}
			}
			if c.blooms == nil && st.defaultBloomCol(c.col) {
				c.blooms = []bloomFilter{}
			}
		}
		// Term segment lists are created lazily at the first non-NULL
		// value, so a FullText column whose dictionary is still empty may
		// legitimately carry none yet.
		if !c.numeric && c.col.FullText && c.termSeg == nil && len(c.dict) == 0 {
			c.termSeg = [][]int32{}
		}
		c.zoneAcc = emptyZoneEntry()
		if c.blooms != nil {
			c.openHash = make(map[uint64]struct{})
		}
		if !c.numeric {
			st.extendCodeOfLocked(c)
		}
		if openLen == 0 {
			continue
		}
		// Lift the partial segment into the tail buffers and rebuild its
		// accumulators from its values.
		off := int64(openSi) * int64(st.segSize)
		if c.numeric {
			buf := make([]byte, openLen*floatRowBytes)
			if _, err := c.f.ReadAt(buf, off*floatRowBytes); err != nil {
				return err
			}
			c.tailF = make([]float64, openLen)
			for i := range c.tailF {
				f := math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
				c.tailF[i] = f
				if !math.IsNaN(f) {
					if f < c.zoneAcc.Min {
						c.zoneAcc.Min = f
					}
					if f > c.zoneAcc.Max {
						c.zoneAcc.Max = f
					}
					if c.openHash != nil {
						c.openHash[hashValue(numericValue(c.col.Kind, f))] = struct{}{}
					}
				}
			}
		} else {
			buf := make([]byte, openLen*codeRowBytes)
			if _, err := c.f.ReadAt(buf, off*codeRowBytes); err != nil {
				return err
			}
			c.tailC = make([]int32, openLen)
			for i := range c.tailC {
				code := int32(binary.LittleEndian.Uint32(buf[i*4:]))
				c.tailC[i] = code
				if code >= 0 && c.openHash != nil {
					c.openHash[hashValue(c.dict[code])] = struct{}{}
				}
			}
		}
	}
	// Drop any cached pages of the now tail-served open segment.
	if openSi >= 0 {
		st.mu.Lock()
		for ci := range st.cols {
			if e, ok := st.cache[segKey{ci, openSi}]; ok {
				st.lruUnlink(e)
				delete(st.cache, e.key)
				st.usage -= e.size
			}
		}
		st.mu.Unlock()
	}
	st.openSeg = openSi
	st.appendable = true
	return nil
}

// defaultBloomCol reports NewSegmentWriter's default Bloom policy for a
// column: foreign keys and full-text columns carry filters.
func (st *Store) defaultBloomCol(c relation.Column) bool {
	if c.FullText {
		return true
	}
	for _, fk := range st.schema.ForeignKeys {
		if fk.Column == c.Name {
			return true
		}
	}
	return false
}

// numericValue reconstructs the stored Value of a numeric cell, matching
// the kind-exact encoding hashValue expects.
func numericValue(kind relation.Kind, f float64) relation.Value {
	if kind == relation.KindInt {
		return relation.Int(int64(f))
	}
	return relation.Float(f)
}

// AppendRows implements relation.AppendableBacking: validates, widens,
// and appends the rows at the tail of every column, maintaining zone
// maps, Bloom filters, dictionaries, and term segment lists
// incrementally. Safe to call concurrently with readers; appenders are
// serialized.
func (st *Store) AppendRows(rows [][]relation.Value) error {
	st.amu.Lock()
	defer st.amu.Unlock()
	if err := st.ensureAppendableLocked(); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(st.cols) {
			return fmt.Errorf("persist: row arity %d, want %d", len(row), len(st.cols))
		}
	}
	for i := 0; i < len(rows); {
		st.metaMu.Lock()
		n := st.NumRows()
		openLen := n % st.segSize
		if st.openSeg < 0 {
			// Start a fresh open segment: give every evidence family its
			// (to be overwritten below) open entry.
			st.openSeg = n / st.segSize
			for _, c := range st.cols {
				if c.zones != nil {
					c.zones = append(c.zones, emptyZoneEntry())
				}
				if c.blooms != nil {
					c.blooms = append(c.blooms, bloomFilter{})
				}
				c.zoneAcc = emptyZoneEntry()
				if c.openHash != nil {
					clear(c.openHash)
				}
			}
		}
		take := min(st.segSize-openLen, len(rows)-i)
		for _, row := range rows[i : i+take] {
			for ci, c := range st.cols {
				v := row[ci]
				stored := v
				switch {
				case v.IsNull():
				case v.Kind() == c.col.Kind:
				case c.col.Kind == relation.KindFloat && v.Kind() == relation.KindInt:
					stored = relation.Float(float64(v.IntVal()))
				default:
					st.metaMu.Unlock()
					return fmt.Errorf("persist: %s: cannot store %s value %#v in %s column",
						c.col.Name, v.Kind(), v, c.col.Kind)
				}
				if c.numeric {
					f := stored.FloatOrNaN()
					c.tailF = append(c.tailF, f)
					if !math.IsNaN(f) {
						if f < c.zoneAcc.Min {
							c.zoneAcc.Min = f
						}
						if f > c.zoneAcc.Max {
							c.zoneAcc.Max = f
						}
					}
				} else {
					code := int32(-1)
					if !stored.IsNull() {
						var ok bool
						code, ok = c.codeOf[stored]
						if !ok {
							code = int32(len(c.dict))
							c.codeOf[stored] = code
							c.dict = append(c.dict, stored)
							if c.termSeg != nil {
								c.termSeg = append(c.termSeg, nil)
							}
						}
						if c.termSeg != nil {
							segs := c.termSeg[code]
							if len(segs) == 0 || segs[len(segs)-1] != int32(st.openSeg) {
								c.termSeg[code] = append(segs, int32(st.openSeg))
							}
						}
					}
					c.tailC = append(c.tailC, code)
				}
				if c.openHash != nil && !stored.IsNull() {
					c.openHash[hashValue(stored)] = struct{}{}
				}
			}
		}
		// Publish the open segment's refreshed evidence, then the rows.
		openSi := st.openSeg
		for _, c := range st.cols {
			if c.zones != nil {
				c.zones[openSi] = c.zoneAcc
			}
			if c.blooms != nil {
				hashes := make([]uint64, 0, len(c.openHash))
				for h := range c.openHash {
					hashes = append(hashes, h)
				}
				c.blooms[openSi] = newBloom(hashes)
			}
		}
		sealed := openLen+take == st.segSize
		st.metaMu.Unlock()
		st.numRows.Store(int64(n + take))
		st.dirty = true
		i += take
		if sealed {
			if err := st.sealOpenLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

// sealOpenLocked writes the full open segment to the column files and
// retires the tail buffers. Caller holds amu; the file writes happen
// outside metaMu so readers keep resolving the segment from the tail
// until the sealed bytes are in place.
func (st *Store) sealOpenLocked() error {
	if err := st.writeTailsLocked(); err != nil {
		return err
	}
	st.metaMu.Lock()
	for _, c := range st.cols {
		c.tailF = c.tailF[:0]
		c.tailC = c.tailC[:0]
		c.zoneAcc = emptyZoneEntry()
		if c.openHash != nil {
			clear(c.openHash)
		}
	}
	st.openSeg = -1
	st.metaMu.Unlock()
	return nil
}

// writeTailsLocked writes every column's tail buffer to its file at the
// open segment's offset. Caller holds amu.
func (st *Store) writeTailsLocked() error {
	if st.openSeg < 0 {
		return nil
	}
	off := int64(st.openSeg) * int64(st.segSize)
	for _, c := range st.cols {
		if c.numeric {
			buf := make([]byte, len(c.tailF)*floatRowBytes)
			for i, f := range c.tailF {
				binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(f))
			}
			if _, err := c.wf.WriteAt(buf, off*floatRowBytes); err != nil {
				return err
			}
		} else {
			buf := make([]byte, len(c.tailC)*codeRowBytes)
			for i, code := range c.tailC {
				binary.LittleEndian.PutUint32(buf[i*4:], uint32(code))
			}
			if _, err := c.wf.WriteAt(buf, off*codeRowBytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush persists the partial open segment and rewrites the manifest so
// the directory can be reopened with every appended row intact. The
// store remains appendable afterwards.
func (st *Store) Flush() error {
	st.amu.Lock()
	defer st.amu.Unlock()
	if !st.dirty {
		return nil
	}
	if err := st.writeTailsLocked(); err != nil {
		return err
	}
	st.metaMu.RLock()
	m := &manifest{segSize: st.segSize, numRows: st.NumRows()}
	for _, c := range st.cols {
		mc := manifestCol{name: c.col.Name, kind: c.col.Kind, isDict: !c.numeric}
		if !c.numeric {
			mc.dict = append([]relation.Value(nil), c.dict...)
			// len 0 encodes as absent, matching SegmentWriter's lazy
			// creation — a value-less column carries no lists yet.
			if len(c.termSeg) > 0 {
				mc.termSegs = make([][]int32, len(c.termSeg))
				for i, segs := range c.termSeg {
					mc.termSegs[i] = append([]int32(nil), segs...)
				}
			}
		}
		if c.zones != nil {
			mc.zones = append([]zoneEntry(nil), c.zones...)
		}
		if c.blooms != nil {
			mc.blooms = append([]bloomFilter(nil), c.blooms...)
		}
		m.cols = append(m.cols, mc)
	}
	st.metaMu.RUnlock()
	if err := os.WriteFile(filepath.Join(st.dir, manifestName), encodeManifest(m), 0o644); err != nil {
		return err
	}
	st.dirty = false
	return nil
}

// OpenBackedTable opens dir as the storage of a backed relation.Table.
// The returned Store is also the table's Backing(); callers keep it to
// set the cache budget and poll paging stats.
func OpenBackedTable(dir string, schema *relation.Schema) (*relation.Table, *Store, error) {
	st, err := OpenStore(dir, schema)
	if err != nil {
		return nil, nil, err
	}
	t, err := relation.NewBackedTable(schema, st)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	return t, st, nil
}
