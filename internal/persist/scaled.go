package persist

import (
	"kdap/internal/dataset"
	"kdap/internal/fulltext"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// BackedWarehouse rewrites wh's fact table into segment files under dir
// and returns a warehouse identical to wh except that fact-column reads
// page segments in from disk. Dimension tables are shared with wh (they
// are immutable once frozen); the schema graph and full-text index are
// rebuilt around the backed fact, so term segment lists flow into the
// new index's skip hints. The source warehouse is untouched — keeping
// both alive gives tests a resident oracle next to the disk-backed
// subject.
func BackedWarehouse(dir string, wh *dataset.Warehouse) (*dataset.Warehouse, *Store, error) {
	return BackedWarehouseOpts(dir, wh, SegmentWriterOptions{})
}

// BackedWarehouseOpts is BackedWarehouse with explicit segment-writer
// options (segment size, primarily).
func BackedWarehouseOpts(dir string, wh *dataset.Warehouse, opts SegmentWriterOptions) (*dataset.Warehouse, *Store, error) {
	factName := wh.Graph.FactTable()
	fact := wh.DB.Table(factName)
	if err := WriteTableSegments(dir, fact, opts); err != nil {
		return nil, nil, err
	}
	bfact, store, err := OpenBackedTable(dir, fact.Schema())
	if err != nil {
		return nil, nil, err
	}
	db := relation.NewDatabase(wh.DB.Name())
	for _, name := range wh.DB.TableNames() {
		t := wh.DB.Table(name)
		if name == factName {
			t = bfact
		}
		if err := db.AddTable(t); err != nil {
			return nil, nil, err
		}
	}
	g := schemagraph.New(db, factName)
	g.SetMaxHops(wh.Graph.MaxHops())
	g.AddFactExtension(wh.Graph.FactExtensions()...)
	for _, d := range wh.Graph.Dimensions() {
		if err := g.AddDimension(d); err != nil {
			return nil, nil, err
		}
	}
	if err := g.Build(); err != nil {
		return nil, nil, err
	}
	for _, el := range wh.Graph.EdgeLabels() {
		g.LabelEdge(el.Table, el.Column, el.Role, el.Dimension)
	}
	db.Freeze()
	ix := fulltext.NewIndex()
	ix.IndexDatabase(db)
	ix.Freeze()
	return &dataset.Warehouse{DB: db, Graph: g, Index: ix}, store, nil
}

// AWOnlineScaledBacked builds the scaled AW_ONLINE warehouse with its
// fact table disk-backed: generated rows stream through a SegmentWriter
// into column files under dir (zone maps, Bloom filters, and term
// segment lists accumulate during the stream — the fact table never
// materializes in memory), and the warehouse's fact table pages
// segments in on demand under the store's cache budget. segSize <= 0
// selects relation.DefaultSegmentSize. The returned Store exposes the
// skip/paging counters and the cache-budget knob.
func AWOnlineScaledBacked(dir string, n, segSize int) (*dataset.Warehouse, *Store, error) {
	b := dataset.NewAWOnlineScaledBuild(n)
	schema := b.FactSchema()
	w, err := NewSegmentWriter(dir, schema, SegmentWriterOptions{SegmentSize: segSize})
	if err != nil {
		return nil, nil, err
	}
	if err := b.GenerateFacts(w.Append); err != nil {
		w.Close()
		return nil, nil, err
	}
	if err := w.Close(); err != nil {
		return nil, nil, err
	}
	fact, store, err := OpenBackedTable(dir, schema)
	if err != nil {
		return nil, nil, err
	}
	wh, err := b.Finish(fact)
	if err != nil {
		return nil, nil, err
	}
	return wh, store, nil
}
