package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"kdap/internal/relation"
)

// segTestRows returns the rows segTestTable would hold, so tests can
// split them between a seed writer and a streamed append.
func segTestRows(rows int) [][]relation.Value {
	terms := []string{"alpha", "beta", "gamma", "delta"}
	out := make([][]relation.Value, rows)
	for i := 0; i < rows; i++ {
		v := relation.Float(float64(i%97) * 1.5)
		if i%13 == 0 {
			v = relation.Null()
		}
		term := terms[i*len(terms)/rows]
		out[i] = []relation.Value{
			relation.Int(int64(i + 1)), relation.String(term), v, relation.Int(int64(i / 64)),
		}
	}
	return out
}

// assertDirsIdentical requires every file of a to exist byte-identical
// in b and vice versa.
func assertDirsIdentical(t *testing.T, a, b string) {
	t.Helper()
	ents, err := os.ReadDir(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		wa, err := os.ReadFile(filepath.Join(a, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		wb, err := os.ReadFile(filepath.Join(b, e.Name()))
		if err != nil {
			t.Fatalf("append dir missing %s: %v", e.Name(), err)
		}
		if !bytes.Equal(wa, wb) {
			t.Fatalf("%s differs between full write and append path (%d vs %d bytes)", e.Name(), len(wa), len(wb))
		}
	}
	back, err := os.ReadDir(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ents) {
		t.Fatalf("append dir has %d files, full write %d", len(back), len(ents))
	}
}

// TestAppendConvergesOnWriterBytes seeds a store with a prefix of the
// rows (ending mid-segment), streams the rest through AppendRows in
// uneven batches, flushes, and requires every artifact — column files,
// manifest with zone maps, Bloom filters, dictionaries, term segment
// lists — byte-identical to writing all rows through a SegmentWriter in
// one pass. This is the "no full rebuild anywhere" contract: the
// incremental maintenance must land on exactly the state a rebuild
// would.
func TestAppendConvergesOnWriterBytes(t *testing.T) {
	const total, segSize = 1000, 128
	rows := segTestRows(total)
	for _, seed := range []int{0, 300, 384, total - 1} { // empty, mid-segment, boundary, one short
		tab := segTestTable(t, total)
		fullDir := t.TempDir()
		if err := WriteTableSegments(fullDir, tab, SegmentWriterOptions{SegmentSize: segSize}); err != nil {
			t.Fatal(err)
		}

		appDir := t.TempDir()
		w, err := NewSegmentWriter(appDir, tab.Schema(), SegmentWriterOptions{SegmentSize: segSize})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows[:seed] {
			if err := w.Append(row); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		st, err := OpenStore(appDir, tab.Schema())
		if err != nil {
			t.Fatalf("seed %d: reopen: %v", seed, err)
		}
		for i := seed; i < total; {
			n := min(1+i%171, total-i) // uneven batches, some crossing segment boundaries
			if err := st.AppendRows(rows[i : i+n]); err != nil {
				t.Fatalf("seed %d: append at %d: %v", seed, i, err)
			}
			i += n
		}
		if st.NumRows() != total {
			t.Fatalf("seed %d: %d rows after append", seed, st.NumRows())
		}
		if err := st.Close(); err != nil { // Close flushes the dirty tail
			t.Fatalf("seed %d: close: %v", seed, err)
		}
		assertDirsIdentical(t, fullDir, appDir)
	}
}

// TestAppendReopenRoundTrip appends past a Flush, reopens the store,
// appends more, and checks every row and the skip evidence survive.
func TestAppendReopenRoundTrip(t *testing.T) {
	const total, segSize = 700, 128
	rows := segTestRows(total)
	tab := segTestTable(t, total)
	dir := t.TempDir()
	w, err := NewSegmentWriter(dir, tab.Schema(), SegmentWriterOptions{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows[:200] {
		if err := w.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(dir, tab.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRows(rows[200:450]); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	bt, st2, err := OpenBackedTable(dir, tab.Schema())
	if err != nil {
		t.Fatalf("reopen mid-segment: %v", err)
	}
	defer st2.Close()
	if bt.Len() != 450 {
		t.Fatalf("reopened with %d rows, want 450", bt.Len())
	}
	if _, err := bt.AppendFacts(rows[450:]); err != nil {
		t.Fatalf("append through table: %v", err)
	}
	if bt.Len() != total {
		t.Fatalf("table len %d after append, want %d", bt.Len(), total)
	}
	for _, col := range []string{"K", "Term", "V", "FK"} {
		for _, v := range []relation.Value{
			relation.Int(3), relation.Int(600), relation.String("delta"), relation.Null(),
		} {
			want, got := tab.Lookup(col, v), bt.Lookup(col, v)
			if len(want) != len(got) {
				t.Fatalf("Lookup(%s, %#v): %d rows, want %d", col, v, len(got), len(want))
			}
		}
	}
	segs, ok := st2.ValueSegments("Term", relation.String("delta"))
	if !ok || len(segs) == 0 {
		t.Fatalf("term lists lost across append: segs=%v ok=%v", segs, ok)
	}
}

// TestAppendConcurrentReaders hammers a backed table with scans and
// lookups while a writer streams rows in, checking prefix consistency:
// every reader sees a row count it can fully resolve, and values below
// that count match the oracle. Run under -race this doubles as the
// persist-side data-race gate for streaming ingest.
func TestAppendConcurrentReaders(t *testing.T) {
	const total, segSize = 2048, 128
	rows := segTestRows(total)
	tab := segTestTable(t, total)
	dir := t.TempDir()
	w, err := NewSegmentWriter(dir, tab.Schema(), SegmentWriterOptions{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows[:256] {
		if err := w.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	bt, st, err := OpenBackedTable(dir, tab.Schema())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetCacheBudget(4 * segSize * 8) // keep the page cache churning

	oracleV := tab.FloatColumn("V")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rd := bt.FloatReader("V")
				n := rd.Len()
				for si := 0; si < relation.NumSegments(n, segSize); si++ {
					seg := rd.FloatSegment(si)
					for i, f := range seg {
						r := si*segSize + i
						if r >= n {
							break
						}
						want := oracleV[r]
						if f != want && !(f != f && want != want) {
							t.Errorf("row %d: %v want %v", r, f, want)
							return
						}
					}
				}
				if got := bt.Lookup("Term", relation.String("alpha")); len(got) == 0 {
					t.Error("alpha vanished mid-append")
					return
				}
			}
		}()
	}
	for i := 256; i < total; i += 64 {
		if _, err := bt.AppendFacts(rows[i : i+64]); err != nil {
			t.Fatalf("append at %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if bt.Len() != total {
		t.Fatalf("len %d, want %d", bt.Len(), total)
	}
}
