// Package persist serializes a complete warehouse — data, schema,
// dimension metadata, and edge labels — to a single gob stream, so that a
// generated or loaded warehouse can be snapshotted to disk and reopened
// without re-running generation or ETL. The full-text index is rebuilt on
// load (it is derived state and rebuilding is fast and deterministic).
package persist

import (
	"encoding/gob"
	"fmt"
	"io"

	"kdap/internal/dataset"
	"kdap/internal/fulltext"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// formatVersion guards against reading snapshots from incompatible
// releases.
const formatVersion = 1

// valueData is the serialized form of one relational value.
type valueData struct {
	Kind uint8
	S    string
	I    int64
	F    float64
	B    bool
}

func encodeValue(v relation.Value) valueData {
	d := valueData{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case relation.KindString:
		d.S = v.Str()
	case relation.KindInt:
		d.I = v.IntVal()
	case relation.KindFloat:
		d.F = v.FloatVal()
	case relation.KindBool:
		d.B = v.BoolVal()
	}
	return d
}

func decodeValue(d valueData) (relation.Value, error) {
	switch relation.Kind(d.Kind) {
	case relation.KindNull:
		return relation.Null(), nil
	case relation.KindString:
		return relation.String(d.S), nil
	case relation.KindInt:
		return relation.Int(d.I), nil
	case relation.KindFloat:
		return relation.Float(d.F), nil
	case relation.KindBool:
		return relation.Bool(d.B), nil
	default:
		return relation.Value{}, fmt.Errorf("persist: unknown value kind %d", d.Kind)
	}
}

type columnData struct {
	Name     string
	Kind     uint8
	FullText bool
}

type fkData struct {
	Column    string
	RefTable  string
	RefColumn string
}

type tableData struct {
	Name        string
	Columns     []columnData
	Key         string
	ForeignKeys []fkData
	Rows        [][]valueData
}

type hierarchyData struct {
	Name   string
	Levels []schemagraph.AttrRef
}

type dimensionData struct {
	Name        string
	Tables      []string
	Hierarchies []hierarchyData
	GroupBy     []schemagraph.AttrRef
}

type warehouseFile struct {
	Version    int
	Name       string
	Fact       string
	FactExt    []string
	MaxHops    int
	Tables     []tableData
	Dimensions []dimensionData
	EdgeLabels []schemagraph.EdgeLabel
}

// Save writes the warehouse to w.
func Save(w io.Writer, wh *dataset.Warehouse) error {
	wf := warehouseFile{
		Version:    formatVersion,
		Name:       wh.DB.Name(),
		Fact:       wh.Graph.FactTable(),
		FactExt:    wh.Graph.FactExtensions(),
		MaxHops:    wh.Graph.MaxHops(),
		EdgeLabels: wh.Graph.EdgeLabels(),
	}
	for _, tn := range wh.DB.TableNames() {
		t := wh.DB.Table(tn)
		s := t.Schema()
		td := tableData{Name: tn, Key: s.Key}
		for _, c := range s.Columns {
			td.Columns = append(td.Columns, columnData{Name: c.Name, Kind: uint8(c.Kind), FullText: c.FullText})
		}
		for _, fk := range s.ForeignKeys {
			td.ForeignKeys = append(td.ForeignKeys, fkData{Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn})
		}
		td.Rows = make([][]valueData, 0, t.Len())
		t.Scan(func(id int, row []relation.Value) bool {
			r := make([]valueData, len(row))
			for i, v := range row {
				r[i] = encodeValue(v)
			}
			td.Rows = append(td.Rows, r)
			return true
		})
		wf.Tables = append(wf.Tables, td)
	}
	for _, d := range wh.Graph.Dimensions() {
		dd := dimensionData{Name: d.Name, Tables: d.Tables, GroupBy: d.GroupBy}
		for _, h := range d.Hierarchies {
			dd.Hierarchies = append(dd.Hierarchies, hierarchyData{Name: h.Name, Levels: h.Levels})
		}
		wf.Dimensions = append(wf.Dimensions, dd)
	}
	return gob.NewEncoder(w).Encode(&wf)
}

// Load reads a warehouse from r, rebuilding the schema graph and the
// full-text index.
func Load(r io.Reader) (*dataset.Warehouse, error) {
	var wf warehouseFile
	if err := gob.NewDecoder(r).Decode(&wf); err != nil {
		return nil, fmt.Errorf("persist: decode: %w", err)
	}
	if wf.Version != formatVersion {
		return nil, fmt.Errorf("persist: snapshot version %d, want %d", wf.Version, formatVersion)
	}
	db := relation.NewDatabase(wf.Name)
	for _, td := range wf.Tables {
		cols := make([]relation.Column, len(td.Columns))
		for i, c := range td.Columns {
			cols[i] = relation.Column{Name: c.Name, Kind: relation.Kind(c.Kind), FullText: c.FullText}
		}
		fks := make([]relation.ForeignKey, len(td.ForeignKeys))
		for i, fk := range td.ForeignKeys {
			fks[i] = relation.ForeignKey{Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn}
		}
		schema, err := relation.NewSchema(td.Name, cols, td.Key, fks)
		if err != nil {
			return nil, fmt.Errorf("persist: table %s: %w", td.Name, err)
		}
		t := relation.NewTable(schema)
		for ri, rd := range td.Rows {
			row := make([]relation.Value, len(rd))
			for i, vd := range rd {
				v, err := decodeValue(vd)
				if err != nil {
					return nil, fmt.Errorf("persist: %s row %d: %w", td.Name, ri, err)
				}
				row[i] = v
			}
			if _, err := t.Append(row); err != nil {
				return nil, fmt.Errorf("persist: %s row %d: %w", td.Name, ri, err)
			}
		}
		if err := db.AddTable(t); err != nil {
			return nil, err
		}
	}

	g := schemagraph.New(db, wf.Fact)
	g.SetMaxHops(wf.MaxHops)
	g.AddFactExtension(wf.FactExt...)
	for _, dd := range wf.Dimensions {
		d := &schemagraph.Dimension{Name: dd.Name, Tables: dd.Tables, GroupBy: dd.GroupBy}
		for _, h := range dd.Hierarchies {
			d.Hierarchies = append(d.Hierarchies, schemagraph.Hierarchy{Name: h.Name, Levels: h.Levels})
		}
		if err := g.AddDimension(d); err != nil {
			return nil, err
		}
	}
	if err := g.Build(); err != nil {
		return nil, fmt.Errorf("persist: rebuild graph: %w", err)
	}
	for _, el := range wf.EdgeLabels {
		g.LabelEdge(el.Table, el.Column, el.Role, el.Dimension)
	}

	db.Freeze()
	ix := fulltext.NewIndex()
	ix.IndexDatabase(db)
	ix.Freeze()
	return &dataset.Warehouse{DB: db, Graph: g, Index: ix}, nil
}
