package persist

import (
	"bytes"
	"strings"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/relation"
)

func roundTrip(t *testing.T, wh *dataset.Warehouse) *dataset.Warehouse {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, wh); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return got
}

func TestRoundTripPreservesData(t *testing.T) {
	orig := dataset.EBiz()
	got := roundTrip(t, orig)

	so, sg := orig.DB.Stats(), got.DB.Stats()
	if so.Tables != sg.Tables || so.Rows != sg.Rows || so.FullTextColumns != sg.FullTextColumns {
		t.Errorf("stats differ: %+v vs %+v", so, sg)
	}
	if err := got.DB.Validate(true); err != nil {
		t.Errorf("reloaded db fails integrity: %v", err)
	}
	// Row-level spot check.
	of, gf := orig.DB.Table("TRANSITEM"), got.DB.Table("TRANSITEM")
	for i := 0; i < of.Len(); i += 397 {
		ro, rg := of.Row(i), gf.Row(i)
		for c := range ro {
			if !ro[c].Equal(rg[c]) {
				t.Fatalf("row %d col %d: %#v vs %#v", i, c, ro[c], rg[c])
			}
		}
	}
}

func TestRoundTripPreservesGraphSemantics(t *testing.T) {
	orig := dataset.EBiz()
	got := roundTrip(t, orig)

	if len(got.Graph.Dimensions()) != len(orig.Graph.Dimensions()) {
		t.Fatal("dimension count differs")
	}
	// The three LOC join paths — including the Buyer/Seller labels — must
	// survive.
	paths := got.Graph.JoinPaths("LOC")
	if len(paths) != 3 {
		t.Fatalf("LOC paths after reload = %d", len(paths))
	}
	roles := map[string]bool{}
	for _, p := range paths {
		roles[p.Role] = true
	}
	if !roles["Buyer"] || !roles["Seller"] || !roles["Store"] {
		t.Errorf("roles lost: %v", roles)
	}
}

// End-to-end equivalence: the same query over original and reloaded
// warehouses yields identical ranked interpretations and subspaces.
func TestRoundTripQueryEquivalence(t *testing.T) {
	orig := dataset.EBiz()
	got := roundTrip(t, orig)

	mk := func(wh *dataset.Warehouse) *kdapcore.Engine {
		fact := wh.DB.Table("TRANSITEM")
		return kdapcore.NewEngine(wh.Graph, wh.Index,
			olap.ProductMeasure(fact, "revenue", "UnitPrice", "Quantity"), olap.Sum)
	}
	eo, eg := mk(orig), mk(got)
	for _, q := range []string{"Columbus LCD", "San Jose", "Projectors UnitPrice>1000"} {
		no, err1 := eo.Differentiate(q)
		ng, err2 := eg.Differentiate(q)
		if err1 != nil || err2 != nil {
			t.Fatalf("%q: %v / %v", q, err1, err2)
		}
		if len(no) != len(ng) {
			t.Fatalf("%q: %d vs %d nets", q, len(no), len(ng))
		}
		for i := range no {
			if no[i].Signature() != ng[i].Signature() || no[i].Score != ng[i].Score {
				t.Fatalf("%q net %d differs:\n  %s\n  %s", q, i, no[i].Signature(), ng[i].Signature())
			}
		}
		if len(no) > 0 {
			ro, rg := eo.SubspaceRows(no[0]), eg.SubspaceRows(ng[0])
			if len(ro) != len(rg) {
				t.Fatalf("%q: subspaces differ: %d vs %d", q, len(ro), len(rg))
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not a gob stream")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestVersionCheck(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, dataset.EBiz()); err != nil {
		t.Fatal(err)
	}
	// Corrupt the version by re-encoding with a bumped version is
	// awkward with gob; instead assert the happy path stores the current
	// version and relies on decode structure for compatibility.
	wh, err := Load(&buf)
	if err != nil || wh == nil {
		t.Fatalf("load: %v", err)
	}
}

func TestValueCodecAllKinds(t *testing.T) {
	vals := []relation.Value{
		relation.Null(), relation.String("x"), relation.Int(-9),
		relation.Float(2.5), relation.Bool(true), relation.Bool(false),
	}
	for _, v := range vals {
		got, err := decodeValue(encodeValue(v))
		if err != nil {
			t.Fatalf("%#v: %v", v, err)
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip: %#v -> %#v", v, got)
		}
	}
	if _, err := decodeValue(valueData{Kind: 99}); err == nil {
		t.Error("unknown kind accepted")
	}
}
