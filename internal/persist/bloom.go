package persist

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"kdap/internal/relation"
)

// Per-segment Bloom filters over key-like and term columns. A filter is
// sized at build time from the segment's actual distinct-value count
// (bloomBitsPerKey bits each, k = bloomHashes probes), so sparse
// segments stay tiny while full-cardinality ones get a useful false-
// positive rate (~1% at 10 bits/key, 7 hashes — the classic LevelDB
// operating point). Probes use double hashing over one 64-bit FNV-1a
// digest of the value's canonical encoding, so a filter built by the
// segment writer and a probe issued by a scan agree on bit positions by
// construction.

const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
	bloomMinBits    = 64
)

// bloomFilter is one segment's filter: a bit array probed k times.
type bloomFilter struct {
	bits []byte
	k    uint32
}

// hashValue digests a value's canonical encoding: a kind tag byte
// followed by the kind's payload bytes. Int and Float payloads differ
// even for equal magnitudes — probes are kind-exact, matching the
// engine's hash-index equality.
func hashValue(v relation.Value) uint64 {
	h := fnv.New64a()
	var tag [1]byte
	var buf [8]byte
	switch v.Kind() {
	case relation.KindString:
		tag[0] = 's'
		h.Write(tag[:])
		h.Write([]byte(v.Str()))
	case relation.KindInt:
		tag[0] = 'i'
		h.Write(tag[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(v.IntVal()))
		h.Write(buf[:])
	case relation.KindFloat:
		tag[0] = 'f'
		h.Write(tag[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.FloatVal()))
		h.Write(buf[:])
	case relation.KindBool:
		tag[0] = 'b'
		if v.BoolVal() {
			tag[0] = 'B'
		}
		h.Write(tag[:])
	default: // NULL never enters a filter
		tag[0] = 'n'
		h.Write(tag[:])
	}
	return h.Sum64()
}

// bloomProbes derives the double-hashing pair from one digest. h2 is
// forced odd so successive probes walk the whole (power-free) bit space.
func bloomProbes(digest uint64) (h1, h2 uint64) {
	h1 = digest
	h2 = digest>>33 | digest<<31
	h2 |= 1
	return h1, h2
}

// newBloom builds a filter over n distinct hashes.
func newBloom(hashes []uint64) bloomFilter {
	nbits := len(hashes) * bloomBitsPerKey
	if nbits < bloomMinBits {
		nbits = bloomMinBits
	}
	nbits = (nbits + 7) &^ 7
	f := bloomFilter{bits: make([]byte, nbits/8), k: bloomHashes}
	m := uint64(nbits)
	for _, d := range hashes {
		h1, h2 := bloomProbes(d)
		for i := uint64(0); i < uint64(f.k); i++ {
			bit := (h1 + i*h2) % m
			f.bits[bit/8] |= 1 << (bit % 8)
		}
	}
	return f
}

// mayContain reports whether the digest may be in the filter. A false
// result is definitive; true may be a false positive.
func (f bloomFilter) mayContain(digest uint64) bool {
	m := uint64(len(f.bits)) * 8
	if m == 0 || f.k == 0 {
		return true // degenerate filter carries no evidence
	}
	h1, h2 := bloomProbes(digest)
	for i := uint64(0); i < uint64(f.k); i++ {
		bit := (h1 + i*h2) % m
		if f.bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}
