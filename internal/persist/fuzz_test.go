package persist

import (
	"math"
	"testing"

	"kdap/internal/relation"
)

// fuzzManifests returns representative encoded manifests used to seed
// the decoder fuzzer: every column shape (numeric with zones+Bloom,
// dict with term lists, plain dict, empty table).
func fuzzManifests() [][]byte {
	mkZone := func(lo, hi float64) zoneEntry { return zoneEntry{Min: lo, Max: hi} }
	full := &manifest{
		segSize: 64, numRows: 130,
		cols: []manifestCol{
			{
				name: "K", kind: relation.KindInt,
				zones:  []zoneEntry{mkZone(1, 64), mkZone(65, 128), mkZone(129, 130)},
				blooms: []bloomFilter{newBloom([]uint64{1, 2}), newBloom([]uint64{3}), newBloom(nil)},
			},
			{
				name: "Term", kind: relation.KindString, isDict: true,
				dict:     []relation.Value{relation.String("a"), relation.String("b")},
				termSegs: [][]int32{{0, 1}, {2}},
			},
			{
				name: "V", kind: relation.KindFloat,
				zones: []zoneEntry{mkZone(0, 9.5), mkZone(math.Inf(1), math.Inf(-1)), mkZone(-1, 1)},
			},
			{
				name: "S", kind: relation.KindString, isDict: true,
				dict: []relation.Value{relation.Bool(true), relation.Int(-7), relation.Float(2.5), relation.String("x")},
			},
		},
	}
	empty := &manifest{segSize: 8192, numRows: 0, cols: []manifestCol{
		{name: "V", kind: relation.KindFloat, zones: nil},
	}}
	return [][]byte{encodeManifest(full), encodeManifest(empty)}
}

// FuzzSegmentManifest hammers the manifest decoder with arbitrary
// bytes: it must never panic or over-allocate, and any manifest it
// accepts must re-encode to the exact input bytes (the format has a
// single canonical encoding).
func FuzzSegmentManifest(f *testing.F) {
	for _, m := range fuzzManifests() {
		f.Add(m)
		// Truncations and bit flips of valid manifests steer coverage
		// toward the validation branches.
		f.Add(m[:len(m)/2])
		flipped := append([]byte(nil), m...)
		flipped[len(flipped)/3] ^= 0x40
		f.Add(flipped)
	}
	f.Add([]byte("KDAPSEG1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		out := encodeManifest(m)
		if string(out) != string(data) {
			t.Fatalf("accepted manifest does not round-trip: %d in, %d out", len(data), len(out))
		}
	})
}
