package persist

import (
	"bytes"
	"testing"

	"kdap/internal/dataset"
)

func BenchmarkSave(b *testing.B) {
	wh := dataset.EBiz()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Save(&buf, wh); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoad(b *testing.B) {
	var buf bytes.Buffer
	if err := Save(&buf, dataset.EBiz()); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
