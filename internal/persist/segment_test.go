package persist

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"kdap/internal/relation"
)

// segTestTable builds a mixed-kind table: an int key (ingest-clustered),
// a dict-coded full-text term column, a float measure with NULLs, and
// an FK-like code column.
func segTestTable(t *testing.T, rows int) *relation.Table {
	t.Helper()
	schema := relation.MustSchema("T", []relation.Column{
		{Name: "K", Kind: relation.KindInt},
		{Name: "Term", Kind: relation.KindString, FullText: true},
		{Name: "V", Kind: relation.KindFloat},
		{Name: "FK", Kind: relation.KindInt},
	}, "K", []relation.ForeignKey{
		{Column: "FK", RefTable: "D", RefColumn: "DK"},
	})
	tab := relation.NewTable(schema)
	terms := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < rows; i++ {
		v := relation.Float(float64(i%97) * 1.5)
		if i%13 == 0 {
			v = relation.Null()
		}
		// Terms are clustered: each quarter of the table sticks to one
		// term, so term segment lists actually restrict scans.
		term := terms[i*len(terms)/rows]
		tab.MustAppend(relation.Int(int64(i+1)), relation.String(term), v, relation.Int(int64(i/64)))
	}
	tab.Freeze()
	return tab
}

func writeSegs(t *testing.T, tab *relation.Table, segSize int) (string, *relation.Table, *Store) {
	t.Helper()
	dir := t.TempDir()
	err := WriteTableSegments(dir, tab, SegmentWriterOptions{SegmentSize: segSize})
	if err != nil {
		t.Fatalf("write segments: %v", err)
	}
	bt, store, err := OpenBackedTable(dir, tab.Schema())
	if err != nil {
		t.Fatalf("open backed: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	return dir, bt, store
}

// TestSegmentRoundTripRows verifies every row survives the disk
// round-trip, including NULLs (NaN floats, -1 codes) and the Int→Float
// widening the float storage applies.
func TestSegmentRoundTripRows(t *testing.T) {
	tab := segTestTable(t, 1000)
	_, bt, _ := writeSegs(t, tab, 128)
	if bt.Len() != tab.Len() {
		t.Fatalf("backed len %d, want %d", bt.Len(), tab.Len())
	}
	for r := 0; r < tab.Len(); r++ {
		want, got := tab.Row(r), bt.Row(r)
		for ci := range want {
			w, g := want[ci], got[ci]
			if w.IsNull() && g.IsNull() {
				continue
			}
			// Numeric columns store float64: Int(5) comes back Float(5).
			if w.Numeric() && g.Numeric() {
				if w.AsFloat() != g.AsFloat() {
					t.Fatalf("row %d col %d: %v != %v", r, ci, w, g)
				}
				continue
			}
			if !w.Equal(g) {
				t.Fatalf("row %d col %d: %v != %v", r, ci, w, g)
			}
		}
	}
}

// TestSegmentRederivedIdentical rewrites the opened backed table's rows
// through a second writer and requires bit-identical artifacts: the
// manifest (zone maps, Bloom filters, dictionaries, term segment lists
// re-derived from the decoded rows) and every column file.
func TestSegmentRederivedIdentical(t *testing.T) {
	tab := segTestTable(t, 1000)
	dir1, bt, _ := writeSegs(t, tab, 128)
	dir2 := t.TempDir()
	w, err := NewSegmentWriter(dir2, tab.Schema(), SegmentWriterOptions{SegmentSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	bt.Scan(func(id int, row []relation.Value) bool {
		if err := w.Append(row); err != nil {
			t.Fatalf("row %d: %v", id, err)
		}
		return true
	})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		a, err := os.ReadFile(filepath.Join(dir1, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dir2, e.Name()))
		if err != nil {
			t.Fatalf("rewrite missing %s: %v", e.Name(), err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs after re-derivation (%d vs %d bytes)", e.Name(), len(a), len(b))
		}
	}
}

// TestBackedLookupKindExact checks backed lookups keep the hash-index
// semantics: Int and Float values only match their own kind, NULL
// matches stored NULLs, and strings resolve through the dictionary.
func TestBackedLookupKindExact(t *testing.T) {
	tab := segTestTable(t, 500)
	_, bt, _ := writeSegs(t, tab, 128)
	for _, col := range []string{"K", "Term", "V", "FK"} {
		for _, v := range []relation.Value{
			relation.Int(3), relation.Float(3), relation.Float(4.5),
			relation.String("beta"), relation.String("nope"), relation.Null(),
		} {
			want := tab.Lookup(col, v)
			got := bt.Lookup(col, v)
			if len(want) != len(got) {
				t.Fatalf("Lookup(%s, %#v): %d rows backed, want %d", col, v, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("Lookup(%s, %#v): row %d is %d, want %d", col, v, i, got[i], want[i])
				}
			}
		}
	}
}

// TestStoreEvictionUnderBudget forces the page cache below one
// column's worth of segments and checks reads stay correct while the
// budget holds.
func TestStoreEvictionUnderBudget(t *testing.T) {
	tab := segTestTable(t, 4096)
	_, bt, store := writeSegs(t, tab, 128)
	store.SetCacheBudget(2 * 128 * 8) // two float segments
	rd := bt.FloatReader("V")
	for pass := 0; pass < 3; pass++ {
		for si := 0; si < relation.NumSegments(bt.Len(), 128); si++ {
			seg := rd.FloatSegment(si)
			want := tab.FloatColumn("V")[si*128 : min((si+1)*128, tab.Len())]
			for i := range seg {
				if seg[i] != want[i] && !(seg[i] != seg[i] && want[i] != want[i]) {
					t.Fatalf("pass %d seg %d row %d: %v want %v", pass, si, i, seg[i], want[i])
				}
			}
		}
	}
	st := store.Stats()
	if st.Evicted == 0 {
		t.Fatalf("no evictions under a 2-segment budget: %+v", st)
	}
	if st.PagedIn <= st.Resident && st.PagedIn == 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
}

// TestStoreSkipEvidence checks the skip counters: a lookup for a value
// outside every zone skips via zone maps; a lookup for an absent value
// inside the key range skips via Bloom filters (FK carries Blooms by
// default).
func TestStoreSkipEvidence(t *testing.T) {
	tab := segTestTable(t, 4096)
	_, bt, store := writeSegs(t, tab, 128)
	if rows := bt.Lookup("FK", relation.Int(1<<40)); len(rows) != 0 {
		t.Fatalf("phantom rows for out-of-range FK: %d", len(rows))
	}
	st := store.Stats()
	if st.SkippedZone == 0 {
		t.Fatalf("out-of-range lookup skipped no segments by zone: %+v", st)
	}
	// K is ingest-clustered 1..n: any absent value still falls inside
	// some segment's zone, so pruning it needs the Bloom filter — but K
	// is the primary key, not an FK/term column, so by default it has
	// zones only. FK=7 exists; FK values are i/64 so e.g. 63 is present
	// only late in the table. Use a present-but-rare term instead: every
	// "alpha" row lives in the first quarter, and Bloom filters on the
	// Term column prove the rest of the segments clean.
	before := store.Stats()
	rows := bt.Lookup("Term", relation.String("alpha"))
	if len(rows) != len(tab.Lookup("Term", relation.String("alpha"))) {
		t.Fatalf("term lookup row count diverges")
	}
	after := store.Stats()
	if after.SkippedBloom <= before.SkippedBloom {
		t.Fatalf("clustered term lookup skipped no segments by Bloom: before %+v after %+v", before, after)
	}
}

// TestValueSegmentsTermLists checks the manifest's per-term segment
// lists: present terms yield exactly the segments holding them, absent
// terms yield an empty definitive list.
func TestValueSegmentsTermLists(t *testing.T) {
	tab := segTestTable(t, 1024)
	_, bt, store := writeSegs(t, tab, 128)
	segs, ok := store.ValueSegments("Term", relation.String("alpha"))
	if !ok {
		t.Fatal("Term column carries no segment lists")
	}
	wantSegs := map[int32]bool{}
	for _, r := range tab.Lookup("Term", relation.String("alpha")) {
		wantSegs[int32(r/128)] = true
	}
	if len(segs) != len(wantSegs) {
		t.Fatalf("ValueSegments(alpha) = %v, want %d segments", segs, len(wantSegs))
	}
	for _, s := range segs {
		if !wantSegs[s] {
			t.Fatalf("ValueSegments(alpha) includes segment %d without the term", s)
		}
	}
	absent, ok := store.ValueSegments("Term", relation.String("nope"))
	if !ok || len(absent) != 0 {
		t.Fatalf("absent term: segs=%v ok=%v, want empty definitive list", absent, ok)
	}
	// LookupInSegments honors the restriction.
	rows := bt.LookupInSegments("Term", []relation.Value{relation.String("alpha")}, segs)
	if len(rows) != len(tab.Lookup("Term", relation.String("alpha"))) {
		t.Fatalf("LookupInSegments returned %d rows", len(rows))
	}
}

// TestOpenStoreRejectsCorruptSizes checks that a column file whose size
// disagrees with the manifest's row count fails to open instead of
// reading garbage.
func TestOpenStoreRejectsCorruptSizes(t *testing.T) {
	tab := segTestTable(t, 300)
	dir := t.TempDir()
	if err := WriteTableSegments(dir, tab, SegmentWriterOptions{SegmentSize: 128}); err != nil {
		t.Fatal(err)
	}
	// Truncate one column file.
	path := filepath.Join(dir, "col_2.dat")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, tab.Schema()); err == nil {
		t.Fatal("OpenStore accepted a truncated column file")
	}
}
