package workload

import (
	"strings"
	"testing"
)

func TestAWOnlineQueriesShape(t *testing.T) {
	qs := AWOnlineQueries()
	if len(qs) != 50 {
		t.Fatalf("queries = %d, want 50 (Table 3)", len(qs))
	}
	seenText := map[string]bool{}
	for i, q := range qs {
		if q.ID != i+1 {
			t.Errorf("query %d has ID %d", i, q.ID)
		}
		if strings.TrimSpace(q.Text) == "" {
			t.Errorf("q%d has empty text", q.ID)
		}
		if seenText[q.Text] {
			t.Errorf("duplicate query text %q", q.Text)
		}
		seenText[q.Text] = true
		if len(q.Acceptable) == 0 {
			t.Errorf("q%d has no ground truth", q.ID)
		}
		for _, a := range q.Acceptable {
			if a == "" {
				t.Errorf("q%d has empty signature", q.ID)
			}
		}
	}
}

// The paper notes the 50 queries are "evenly distributed in terms of the
// number of keywords contained" — ours must cover 1 through ≥5 keywords.
func TestAWOnlineQueriesKeywordSpread(t *testing.T) {
	counts := map[int]int{}
	for _, q := range AWOnlineQueries() {
		counts[len(strings.Fields(q.Text))]++
	}
	for _, n := range []int{1, 2, 3, 4, 5} {
		if counts[n] == 0 {
			t.Errorf("no %d-keyword queries: %v", n, counts)
		}
	}
}

func TestSignaturesAreCanonical(t *testing.T) {
	for _, q := range append(AWOnlineQueries(), AWResellerQueries()...) {
		for _, a := range q.Acceptable {
			parts := strings.Split(a, " & ")
			for i := 1; i < len(parts); i++ {
				if parts[i] < parts[i-1] {
					t.Errorf("q%d %q: signature not sorted: %q", q.ID, q.Text, a)
				}
			}
		}
	}
}

func TestRelevant(t *testing.T) {
	q := Query{ID: 1, Text: "x", Acceptable: []string{"A[r]", "B[r] & C[r]"}}
	if !q.Relevant("A[r]") || !q.Relevant("B[r] & C[r]") {
		t.Error("acceptable signature rejected")
	}
	if q.Relevant("A[r] & B[r]") || q.Relevant("") {
		t.Error("unacceptable signature accepted")
	}
}

func TestResellerQueriesUseResellerVocabulary(t *testing.T) {
	// §6.3: the replica workload draws on dimensions AW_ONLINE lacks.
	var resellerish int
	qs := AWResellerQueries()
	for _, q := range qs {
		for _, a := range q.Acceptable {
			if strings.Contains(a, "DimReseller") || strings.Contains(a, "DimEmployee") ||
				strings.Contains(a, "DimDepartment") {
				resellerish++
				break
			}
		}
	}
	if resellerish*2 < len(qs) {
		t.Errorf("only %d/%d reseller queries target reseller/employee dimensions", resellerish, len(qs))
	}
}
