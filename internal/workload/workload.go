// Package workload defines the keyword-query workloads of the paper's
// evaluation: the 50 AW_ONLINE queries of Table 3 together with encoded
// ground-truth interpretations (the paper checked relevance manually; we
// encode the intended star net as a set of acceptable domain signatures),
// plus the AW_RESELLER replica workload of §6.3.
//
// Two queries are spelled slightly differently from Table 3 because our
// tokenizer — like Lucene's standard analyzer the prototype used — splits
// on punctuation: "Sport100" is written "Sport-100" (the actual product
// model spelling) and "HalfPrice Pedal Sale" is written "Half-Price Pedal
// Sale" (the actual promotion spelling). The intent is identical.
package workload

import (
	"sort"
	"strings"
)

// Query is one workload query with its ground truth.
type Query struct {
	ID   int
	Text string
	// Acceptable holds the domain signatures (see StarNet.DomainSignature)
	// of star nets that a human judge would accept as the intended
	// interpretation. Equivalent readings (product name vs. model name of
	// the same product) are all listed.
	Acceptable []string
}

// Relevant reports whether the given domain signature is an acceptable
// interpretation of the query.
func (q Query) Relevant(sig string) bool {
	for _, a := range q.Acceptable {
		if a == sig {
			return true
		}
	}
	return false
}

// sig builds a canonical domain signature from its parts (sorted, " & "
// joined) — the same canonicalization StarNet.DomainSignature applies.
func sig(parts ...string) string {
	sort.Strings(parts)
	return strings.Join(parts, " & ")
}

// Short names for the AW_ONLINE domains.
const (
	geoCity    = "DimGeography.City[Customer]"
	geoState   = "DimGeography.StateProvinceName[Customer]"
	geoCountry = "DimGeography.CountryRegionName[Customer]"
	geoCode    = "DimGeography.CountryRegionCode[Customer]"
	terrRegion = "DimSalesTerritory.Region[Customer]"
	terrCtry   = "DimSalesTerritory.Country[Customer]"
	terrGroup  = "DimSalesTerritory.TerritoryGroup[Customer]"
	custFirst  = "DimCustomer.FirstName[Customer]"
	custEmail  = "DimCustomer.EmailAddress[Customer]"
	custPhone  = "DimCustomer.Phone[Customer]"
	custAddr   = "DimCustomer.AddressLine1[Customer]"
	custEdu    = "DimCustomer.Education[Customer]"
	custOcc    = "DimCustomer.Occupation[Customer]"
	prodName   = "DimProduct.EnglishProductName[Product]"
	prodModel  = "DimProduct.ModelName[Product]"
	prodColor  = "DimProduct.Color[Product]"
	prodDesc   = "DimProduct.EnglishDescription[Product]"
	subcatName = "DimProductSubcategory.SubcategoryName[Product]"
	catName    = "DimProductCategory.CategoryName[Product]"
	dateMonth  = "DimDate.MonthName[Date]"
	dateYear   = "DimDate.CalendarYear[Date]"
	dateDay    = "DimDate.DayName[Date]"
	promoName  = "DimPromotion.EnglishPromotionName[Promotion]"
	promoType  = "DimPromotion.EnglishPromotionType[Promotion]"
	curName    = "DimCurrency.CurrencyName[Currency]"
)

// AWOnlineQueries returns the 50-query Table 3 workload.
func AWOnlineQueries() []Query {
	return []Query{
		{1, "Overstock", []string{sig(promoName)}},
		{2, "Tire", []string{sig(prodName), sig(prodModel), sig(subcatName), sig(promoName)}},
		{3, "Sport-100", []string{sig(prodModel), sig(prodName)}},
		{4, "October", []string{sig(dateMonth)}},
		{5, "fernando35@adventure-works.com", []string{sig(custEmail)}},
		{6, "Bolts", []string{sig(prodName), sig(prodModel)}},
		{7, "Europe", []string{sig(terrGroup)}},
		{8, "Australia", []string{sig(geoCountry), sig(terrCtry), sig(terrRegion)}},
		{9, "Bachelors", []string{sig(custEdu)}},
		{10, "Blade", []string{sig(prodName), sig(prodModel)}},
		{11, "Mountain Tire", []string{sig(prodName), sig(prodModel)}},
		{12, "Flat Washer", []string{sig(prodName), sig(prodModel)}},
		{13, "Internal Lock", []string{sig(prodName), sig(prodModel)}},
		{14, "California US", []string{sig(geoState, geoCode)}},
		{15, "Brakes Chains", []string{sig(subcatName, subcatName)}},
		{16, "Road Bikes", []string{sig(subcatName)}},
		{17, "Blade California", []string{sig(prodName, geoState), sig(prodModel, geoState)}},
		{18, "Chainring Bikes", []string{sig(prodName, catName), sig(prodModel, catName)}},
		{19, "Keyed Washer", []string{sig(prodName), sig(prodModel)}},
		{20, "Silver Hub", []string{sig(prodName), sig(prodModel)}},
		{21, "2001 January US", []string{sig(dateYear, dateMonth, geoCode)}},
		{22, "Caps Gloves Jerseys", []string{sig(subcatName, subcatName, subcatName)}},
		{23, "Half-Price Pedal Sale", []string{sig(promoName)}},
		{24, "Sydney Helmet Discount", []string{sig(geoCity, promoName)}},
		{25, "Sydney California Promotion", []string{sig(geoCity, geoState, promoName)}},
		{26, "Discount California December", []string{
			sig(promoType, geoState, dateMonth), sig(promoName, geoState, dateMonth)}},
		{27, "Mountain Bike Socks", []string{sig(prodName), sig(prodModel)}},
		{28, "Cycling Cap Alexandria", []string{sig(prodModel, geoCity), sig(prodName, geoCity)}},
		{29, "HL Road Frame", []string{sig(prodName), sig(prodModel)}},
		{30, "Ithaca Accessories Clothing", []string{sig(geoCity, catName, catName)}},
		{31, "New South Wales Professional", []string{sig(geoState, custOcc)}},
		{32, "San Jose Metal Plate", []string{sig(geoCity, prodName), sig(geoCity, prodModel)}},
		{33, "Washington Tires Tubes", []string{
			sig(geoState, subcatName, subcatName), sig(geoState, subcatName)}},
		{34, "Germany US Dollar 2000", []string{
			sig(geoCountry, curName, dateYear), sig(terrCtry, curName, dateYear)}},
		{35, "California Accessories 2001 September", []string{
			sig(geoState, catName, dateYear, dateMonth)}},
		{36, "Bikes Components Clothing Accessories", []string{
			sig(catName, catName, catName, catName)}},
		{37, "Central Valley Torrance Denver", []string{sig(geoCity, geoCity, geoCity)}},
		{38, "Black Yellow handcrafted bumps", []string{
			sig(prodColor, prodColor, prodDesc, prodDesc)}},
		{39, "ML Fork North America", []string{
			sig(prodName, terrGroup), sig(prodModel, terrGroup)}},
		{40, "Central United States HeadSet", []string{
			sig(terrRegion, terrCtry, subcatName),
			sig(terrRegion, geoCountry, subcatName),
			sig(terrRegion, terrCtry, prodName),
			sig(terrRegion, terrCtry, prodModel)}},
		{41, "Allpurpose bar for on or off-road", []string{sig(prodDesc)}},
		{42, "December November Mountain Tire Sale", []string{
			sig(dateMonth, dateMonth, promoName)}},
		{43, "US 2001 2002 2003 2004", []string{
			sig(geoCode, dateYear, dateYear, dateYear, dateYear)}},
		{44, "Seattle Saddles 1245550139", []string{sig(geoCity, subcatName, custPhone)}},
		{45, "San Francisco Palo Alto Santa Cruz", []string{sig(geoCity, geoCity, geoCity)}},
		{46, "7800 Corrinne Court Sunday", []string{sig(custAddr, dateDay)}},
		{47, "North America Europe Pacific Bikes 2003", []string{
			sig(terrGroup, terrGroup, terrGroup, catName, dateYear)}},
		{48, "Sealed cartridge Horquilla GM", []string{
			sig(prodDesc, prodDesc, prodDesc), sig(prodDesc, prodDesc, prodDesc, prodDesc),
			sig(prodDesc, prodDesc), sig(prodDesc)}},
		{49, "LL Mountain Front Wheel US", []string{
			sig(prodName, geoCode), sig(prodModel, geoCode)}},
		{50, "Headlights Dual-Beam Weatherproof", []string{
			sig(prodName, prodName), sig(prodModel, prodModel),
			sig(prodName, prodModel), sig(prodModel, prodName),
			sig(prodName, prodDesc), sig(prodModel, prodDesc)}},
	}
}

// Short names for AW_RESELLER domains (keywords drawn from the Reseller
// and Employee dimensions that AW_ONLINE does not have, per §6.3).
const (
	rsName     = "DimReseller.ResellerName[Reseller]"
	rsType     = "DimReseller.BusinessType[Reseller]"
	rsGeoCity  = "DimGeography.City[Reseller]"
	rsGeoState = "DimGeography.StateProvinceName[Reseller]"
	empTitle   = "DimEmployee.Title[Employee]"
	empFirst   = "DimEmployee.FirstName[Employee]"
	deptName   = "DimDepartment.DepartmentName[Employee]"
	rsSubcat   = "DimProductSubcategory.SubcategoryName[Product]"
	rsModel    = "DimProduct.ModelName[Product]"
	rsProdName = "DimProduct.EnglishProductName[Product]"
	rsCat      = "DimProductCategory.CategoryName[Product]"
	rsLine     = "DimProductModel.ProductLine[Product]"
	rsMonth    = "DimDate.MonthName[Date]"
	rsPromo    = "DimPromotion.EnglishPromotionName[Promotion]"
)

// AWResellerQueries returns the reseller-side replica workload.
func AWResellerQueries() []Query {
	return []Query{
		{1, "Warehouse", []string{sig(rsType)}},
		{2, "Specialty Bike Shop", []string{sig(rsType)}},
		{3, "Sales Representative", []string{sig(empTitle)}},
		{4, "Design Engineer", []string{sig(empTitle)}},
		{5, "Marketing", []string{sig(deptName)}},
		{6, "Shipping and Receiving", []string{sig(deptName)}},
		{7, "Pacific Bicycle Specialists", []string{sig(rsName)}},
		// "Wheel Warehouse" legitimately reads as a reseller name or as
		// "wheels sold by warehouse-type resellers"; both are accepted.
		{8, "Wheel Warehouse", []string{sig(rsName), sig(rsSubcat, rsType)}},
		{9, "British Columbia", []string{sig(rsGeoState)}},
		{10, "Warehouse Mountain Bikes", []string{sig(rsType, rsSubcat)}},
		{11, "Sales Manager Helmets", []string{sig(empTitle, rsSubcat)}},
		{12, "Engineering October", []string{sig(deptName, rsMonth)}},
		{13, "Vancouver Touring Bikes", []string{sig(rsGeoCity, rsSubcat)}},
		{14, "Specialty Road", []string{
			sig(rsType, rsLine), sig(rsType, rsSubcat), sig(rsType, rsModel), sig(rsType, rsProdName)}},
		{15, "Production Technician Clothing", []string{sig(empTitle, rsCat)}},
		{16, "Cycle Center Mountain Tire Sale", []string{sig(rsName, rsPromo)}},
		{17, "Bike Works", []string{sig(rsName)}},
		{18, "Sports Depot Helmets", []string{sig(rsName, rsSubcat)}},
		{19, "Value Added Reseller", []string{sig(rsType)}},
		{20, "Shipping Clerk", []string{sig(empTitle)}},
		{21, "Production", []string{sig(deptName)}},
		{22, "Premier Cycling Outlet", []string{sig(rsName)}},
		{23, "Hamburg Warehouse", []string{sig(rsGeoCity, rsType)}},
		{24, "Melbourne Mountain Frames", []string{sig(rsGeoCity, rsSubcat)}},
		{25, "Sales Manager Mountain Bikes December", []string{sig(empTitle, rsSubcat, rsMonth)}},
		{26, "Specialty Bike Shop Road Bikes", []string{sig(rsType, rsSubcat)}},
		{27, "Ontario Tires Tubes", []string{
			sig(rsGeoState, rsSubcat), sig(rsGeoState, rsSubcat, rsSubcat)}},
		{28, "Design Engineer Touring", []string{
			sig(empTitle, rsLine), sig(empTitle, rsSubcat), sig(empTitle, rsModel), sig(empTitle, rsProdName)}},
		{29, "Marketing Specialist Gloves", []string{sig(empTitle, rsSubcat)}},
		{30, "Premier Wheel Warehouse Mountain Tire", []string{
			sig(rsName, rsProdName), sig(rsName, rsModel), sig(rsSubcat, rsType, rsProdName), sig(rsSubcat, rsType, rsModel)}},
	}
}
