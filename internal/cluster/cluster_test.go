package cluster

import (
	"bytes"
	"context"
	"errors"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/experiments"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/telemetry"
	"kdap/internal/workload"
)

const testDB = "online"

// newEngine builds a fresh AWOnline engine (the paper's warehouse and
// measure), so every node in a test cluster replicates the same data.
func newEngine() *kdapcore.Engine {
	return experiments.Engine(dataset.AWOnline())
}

// testCluster is one in-process topology: n workers on loopback plus a
// coordinator wired into its own engine.
type testCluster struct {
	cl      *Cluster
	engine  *kdapcore.Engine // coordinator engine, scatter-enabled
	workers []*Worker
	addrs   []string
}

func startCluster(t *testing.T, n int, opts Options) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		w := NewWorker(map[string]*kdapcore.Engine{testDB: newEngine()}, i, n, 0)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go w.Serve(ln)
		t.Cleanup(func() { w.Close() })
		tc.workers = append(tc.workers, w)
		tc.addrs = append(tc.addrs, ln.Addr().String())
	}
	tc.engine = newEngine()
	tc.cl = New(tc.addrs, map[string]*kdapcore.Engine{testDB: tc.engine}, opts)
	t.Cleanup(tc.cl.Close)
	tc.engine.SetScatter(tc.cl.Scatterer(testDB))
	return tc
}

// explore differentiates and explores query's top net, returning the
// facets fingerprint.
func explore(t *testing.T, e *kdapcore.Engine, query string, opts kdapcore.ExploreOptions) (*kdapcore.Facets, []byte) {
	t.Helper()
	nets, err := e.Differentiate(query)
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate %q: nets=%d err=%v", query, len(nets), err)
	}
	f, err := e.ExploreCtx(context.Background(), nets[0], opts)
	if err != nil {
		t.Fatalf("explore %q: %v", query, err)
	}
	return f, f.Fingerprint()
}

func TestShardRangePartition(t *testing.T) {
	for _, rows := range []int{0, 1, 7, 100, 60398} {
		for _, total := range []int{1, 2, 3, 4, 7} {
			prev := 0
			for i := 0; i < total; i++ {
				lo, hi := shardRange(rows, i, total)
				if lo != prev {
					t.Fatalf("rows=%d total=%d node=%d: range [%d,%d) not contiguous after %d",
						rows, total, i, lo, hi, prev)
				}
				if hi < lo {
					t.Fatalf("rows=%d total=%d node=%d: inverted range [%d,%d)", rows, total, i, lo, hi)
				}
				prev = hi
			}
			if prev != rows {
				t.Fatalf("rows=%d total=%d: partition covers [0,%d), want [0,%d)", rows, total, prev, rows)
			}
		}
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	req := &rowsRequest{
		DB: "online",
		Lo: 17,
		Hi: 9999,
		Cs: []olap.Constraint{{
			Table:  "DimProduct",
			Attr:   "EnglishProductName",
			Values: []relation.Value{relation.String("Road-150"), relation.Int(3), relation.Float(2.5), relation.Bool(true), relation.Null()},
			Path: schemagraph.JoinPath{
				Source: "FactInternetSales", Dim: "DimProduct", Role: "product",
				Hops: []schemagraph.Hop{{FromTable: "FactInternetSales", FromCol: "ProductKey", ToTable: "DimProduct", ToCol: "ProductKey"}},
			},
		}},
		Filters: []kdapcore.NumericFilter{{
			Raw:    "UnitPrice>1000",
			Attr:   schemagraph.AttrRef{Table: "FactInternetSales", Attr: "UnitPrice"},
			Role:   "measure",
			OnFact: true,
			Op:     kdapcore.OpGT,
			Value:  1000,
		}},
	}
	op, d, err := decodeRequest(encodeRowsRequest(req))
	if err != nil || op != opRows {
		t.Fatalf("decodeRequest: op=%d err=%v", op, err)
	}
	got, err := decodeRowsRequest(d)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("request round trip mismatch:\n%#v\n%#v", req, got)
	}

	resp := &rowsResponse{Lo: 17, Hi: 9999, Rows: []int{17, 18, 400, 9998}, Count: 4, Sum: 1234.5}
	rd, err := decodeResponse(encodeRowsResponse(resp), opRows)
	if err != nil {
		t.Fatal(err)
	}
	gotResp, err := decodeRowsResponse(rd)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, gotResp) {
		t.Fatalf("response round trip mismatch:\n%#v\n%#v", resp, gotResp)
	}

	h := &healthResponse{Index: 1, Total: 4, Inflight: 2, DBs: []healthDB{{Name: "online", FactRows: 60398, Lo: 15099, Hi: 30199}}}
	hd, err := decodeResponse(encodeHealthResponse(h), opHealth)
	if err != nil {
		t.Fatal(err)
	}
	gotH, err := decodeHealthResponse(hd)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, gotH) {
		t.Fatalf("health round trip mismatch:\n%#v\n%#v", h, gotH)
	}
}

func TestProtocolRejectsCorruption(t *testing.T) {
	if _, _, err := decodeRequest([]byte("BADMAGIC\x02")); err == nil {
		t.Fatal("bad magic accepted")
	}
	payload := encodeRowsRequest(&rowsRequest{DB: "online", Lo: 0, Hi: 10})
	for cut := len(netMagic) + 1; cut < len(payload); cut++ {
		_, d, err := decodeRequest(payload[:cut])
		if err != nil {
			continue
		}
		if _, err := decodeRowsRequest(d); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Error responses decode into the worker's message.
	if _, err := decodeResponse(encodeError(opRows, "worker busy"), opRows); err == nil || !bytes.Contains([]byte(err.Error()), []byte("worker busy")) {
		t.Fatalf("error response: %v", err)
	}
	// An oversized frame length must be refused before allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// Distributed explores must be byte-identical to a monolithic engine
// across worker counts — the Fingerprint oracle is the contract.
func TestClusterByteIdentity(t *testing.T) {
	mono := newEngine()
	opts := kdapcore.DefaultExploreOptions()
	queries := []string{
		"Road Bikes UnitPrice>1000",
		"California Mountain Bikes",
		"Road Bikes SalesKey>54000",
		"Accessories",
	}
	for _, n := range []int{1, 2, 3} {
		copts := DefaultOptions()
		copts.HedgeAfter = 0 // force the remote path to answer
		tc := startCluster(t, n, copts)
		if err := tc.cl.Verify(context.Background()); err != nil {
			t.Fatalf("verify %d workers: %v", n, err)
		}
		for _, q := range queries {
			wantF, want := explore(t, mono, q, opts)
			gotF, got := explore(t, tc.engine, q, opts)
			if !bytes.Equal(want, got) {
				t.Fatalf("%d workers, %q: distributed facets differ from monolithic", n, q)
			}
			if gotF.Partial || wantF.Partial {
				t.Fatalf("%d workers, %q: unexpected partial", n, q)
			}
		}
	}
}

// The full 50-query workload at 2 workers — the same parity rung the
// nightly bench gate pins — kept in-tree so -race covers it.
func TestClusterWorkloadParity(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload parity is a long test")
	}
	mono := newEngine()
	copts := DefaultOptions()
	copts.HedgeAfter = 0
	tc := startCluster(t, 2, copts)
	opts := kdapcore.DefaultExploreOptions()
	// A few workload queries select no facts under their top
	// interpretation; empty on both sides is parity, empty on one side
	// is a divergence.
	fingerprint := func(e *kdapcore.Engine, query string) []byte {
		nets, err := e.Differentiate(query)
		if err != nil || len(nets) == 0 {
			t.Fatalf("differentiate %q: nets=%d err=%v", query, len(nets), err)
		}
		f, err := e.ExploreCtx(context.Background(), nets[0], opts)
		if err != nil && strings.Contains(err.Error(), "empty sub-dataspace") {
			return []byte("empty sub-dataspace")
		}
		if err != nil {
			t.Fatalf("explore %q: %v", query, err)
		}
		return f.Fingerprint()
	}
	for _, q := range workload.AWOnlineQueries() {
		want := fingerprint(mono, q.Text)
		got := fingerprint(tc.engine, q.Text)
		if !bytes.Equal(want, got) {
			t.Fatalf("query %d %q: distributed facets differ from monolithic", q.ID, q.Text)
		}
	}
}

// A worker dying mid-explore with fallback off yields an attributed
// partial answer when the client opted in, a typed error when it did
// not, and a complete answer again once the node recovers — never a
// hang, never silently wrong rows.
func TestClusterNodeLossDegradation(t *testing.T) {
	copts := DefaultOptions()
	copts.Fallback = false
	copts.HedgeAfter = 0
	copts.NodeTimeout = 500 * time.Millisecond
	tc := startCluster(t, 2, copts)
	mono := newEngine()

	// Kill node 1 deterministically: every opRows drops the connection.
	tc.workers[1].SetFaultHook(func(op byte) error {
		if op == opRows {
			return errors.New("injected fault")
		}
		return nil
	})

	const query = "Road Bikes UnitPrice>1000"
	opts := kdapcore.DefaultExploreOptions()
	opts.PartialOnDeadline = true

	start := time.Now()
	f, _ := explore(t, tc.engine, query, opts)
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("degraded explore took %v — deadline not honored", el)
	}
	if !f.Partial {
		t.Fatal("explore over a dead node did not mark Partial")
	}
	if len(f.DegradedNodes) != 1 || f.DegradedNodes[0] != tc.addrs[1] {
		t.Fatalf("DegradedNodes = %v, want [%s]", f.DegradedNodes, tc.addrs[1])
	}
	if f.SubspaceSize == 0 {
		t.Fatal("degraded answer lost the surviving shard too")
	}

	// Without the partial opt-in the loss is an error, not a wrong answer.
	strict := kdapcore.DefaultExploreOptions()
	nets, err := tc.engine.Differentiate(query)
	if err != nil || len(nets) == 0 {
		t.Fatalf("differentiate: %v", err)
	}
	if _, err := tc.engine.ExploreCtx(context.Background(), nets[0], strict); err == nil {
		t.Fatal("explore without PartialOnDeadline succeeded over a dead node")
	} else {
		var de *kdapcore.DegradedError
		if !errors.As(err, &de) {
			t.Fatalf("expected DegradedError, got %v", err)
		}
	}

	// Recovery: the degraded row set must not have been cached anywhere.
	tc.workers[1].SetFaultHook(nil)
	f2, got := explore(t, tc.engine, query, opts)
	if f2.Partial || len(f2.DegradedNodes) != 0 {
		t.Fatalf("post-recovery explore still partial: %v", f2.DegradedNodes)
	}
	_, want := explore(t, mono, query, kdapcore.DefaultExploreOptions())
	if !bytes.Equal(want, got) {
		t.Fatal("post-recovery facets differ from monolithic — degraded rows were cached")
	}
}

// With fallback on, losing a node costs latency, not correctness: the
// coordinator re-scans the dead node's range locally and the answer
// stays byte-identical.
func TestClusterFallbackMasksNodeLoss(t *testing.T) {
	copts := DefaultOptions()
	copts.HedgeAfter = 0
	copts.NodeTimeout = 500 * time.Millisecond
	tc := startCluster(t, 2, copts)
	reg := telemetry.NewRegistry()
	tc.cl.WireMetrics(reg)
	tc.workers[0].SetFaultHook(func(op byte) error {
		if op == opRows {
			return errors.New("injected fault")
		}
		return nil
	})
	mono := newEngine()

	const query = "California Mountain Bikes"
	f, got := explore(t, tc.engine, query, kdapcore.DefaultExploreOptions())
	if f.Partial {
		t.Fatal("fallback path marked Partial")
	}
	_, want := explore(t, mono, query, kdapcore.DefaultExploreOptions())
	if !bytes.Equal(want, got) {
		t.Fatal("fallback facets differ from monolithic")
	}
	if tc.cl.mNodeErr[0].Value() == 0 {
		t.Fatal("node error not recorded for the faulted worker")
	}
}

// A stalled (not dead) worker is hedged: after HedgeAfter the
// coordinator races a local re-scan and the first success wins, with
// output parity preserved.
func TestClusterHedgedRetry(t *testing.T) {
	copts := DefaultOptions()
	copts.HedgeAfter = 20 * time.Millisecond
	copts.NodeTimeout = 10 * time.Second
	tc := startCluster(t, 2, copts)
	reg := telemetry.NewRegistry()
	tc.cl.WireMetrics(reg)
	tc.workers[1].SetFaultHook(func(op byte) error {
		if op == opRows {
			time.Sleep(300 * time.Millisecond) // stall, then serve normally
		}
		return nil
	})
	mono := newEngine()

	const query = "Road Bikes SalesKey>54000"
	start := time.Now()
	f, got := explore(t, tc.engine, query, kdapcore.DefaultExploreOptions())
	if f.Partial {
		t.Fatal("hedged explore marked Partial")
	}
	_, want := explore(t, mono, query, kdapcore.DefaultExploreOptions())
	if !bytes.Equal(want, got) {
		t.Fatal("hedged facets differ from monolithic")
	}
	if tc.cl.mHedged.Value() == 0 {
		t.Fatalf("stalled worker produced no hedged re-scans (took %v)", time.Since(start))
	}
}

// Workers refuse requests outside their owned range and coordinators
// refuse to form a cluster over a mismatched topology.
func TestClusterVerifyRejectsTopologySkew(t *testing.T) {
	// Worker believes it is shard 0 of 3; coordinator expects 0 of 2.
	w := NewWorker(map[string]*kdapcore.Engine{testDB: newEngine()}, 0, 3, 0)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })

	w2 := NewWorker(map[string]*kdapcore.Engine{testDB: newEngine()}, 1, 2, 0)
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w2.Serve(ln2)
	t.Cleanup(func() { w2.Close() })

	cl := New([]string{ln.Addr().String(), ln2.Addr().String()},
		map[string]*kdapcore.Engine{testDB: newEngine()}, DefaultOptions())
	t.Cleanup(cl.Close)
	err = cl.Verify(context.Background())
	if err == nil {
		t.Fatal("Verify accepted a worker with the wrong shard arithmetic")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("shard 0/3")) {
		t.Fatalf("Verify error does not name the skew: %v", err)
	}
}

// The worker's admission control sheds excess requests with a busy
// error instead of queueing blind; the coordinator treats the shed as a
// node error and falls back.
func TestWorkerAdmission(t *testing.T) {
	w := NewWorker(map[string]*kdapcore.Engine{testDB: newEngine()}, 0, 1, 1)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go w.Serve(ln)
	t.Cleanup(func() { w.Close() })

	// Occupy the single admission slot directly, then drive a request:
	// it must be shed with the busy error, not served or queued.
	w.inflight.Add(1)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	lo, hi := w.Range(testDB)
	if err := writeFrame(conn, encodeRowsRequest(&rowsRequest{DB: testDB, Lo: lo, Hi: hi})); err != nil {
		t.Fatal(err)
	}
	payload, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeResponse(payload, opRows); err == nil || !bytes.Contains([]byte(err.Error()), []byte("busy")) {
		t.Fatalf("over-admitted request not shed: %v", err)
	}

	// Release the slot: the same connection serves normally again.
	w.inflight.Add(-1)
	if err := writeFrame(conn, encodeRowsRequest(&rowsRequest{DB: testDB, Lo: lo, Hi: hi})); err != nil {
		t.Fatal(err)
	}
	payload, err = readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	d, err := decodeResponse(payload, opRows)
	if err != nil {
		t.Fatalf("post-shed request failed: %v", err)
	}
	resp, err := decodeRowsResponse(d)
	if err != nil {
		t.Fatal(err)
	}
	if int(resp.Count) != len(resp.Rows) || resp.Lo != lo || resp.Hi != hi {
		t.Fatalf("bad response after shed: %+v", resp)
	}
}
