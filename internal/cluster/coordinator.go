package cluster

import (
	"context"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

// Options tunes the coordinator's dispatch behavior.
type Options struct {
	// NodeTimeout is the hard per-node deadline for one scatter leg;
	// <= 0 means 2s.
	NodeTimeout time.Duration
	// HedgeAfter is the soft deadline after which the coordinator
	// launches a concurrent local re-scan of the slow node's range and
	// takes whichever finishes first; <= 0 disables hedging.
	HedgeAfter time.Duration
	// HealthEvery is the background health-poll period; <= 0 means 2s.
	HealthEvery time.Duration
	// Fallback re-scans a failed node's range on the coordinator so the
	// answer stays complete; when false a lost node degrades the answer
	// instead (DegradedError → Facets.Partial for opted-in explores).
	Fallback bool
}

// DefaultOptions is the production posture: 2s hard deadline, 500ms
// hedge, local fallback on.
func DefaultOptions() Options {
	return Options{
		NodeTimeout: 2 * time.Second,
		HedgeAfter:  500 * time.Millisecond,
		HealthEvery: 2 * time.Second,
		Fallback:    true,
	}
}

// Cluster is the coordinator half of scatter-gather: it owns the worker
// address list (list order is shard order — workers[i] owns range i of
// len(workers)), the local engines used for fallback and hedged
// re-scans, and the per-node health view maintained by a background
// poller.
//
// The shard map is fixed at construction from the coordinator's own
// fact-table sizes: the distributed prefix is [0, base) split by the
// floor partition, and rows ingested after startup — the tail
// [base, FactLen) — are always scanned coordinator-locally, so
// streaming ingest needs no cluster-wide coordination.
type Cluster struct {
	workers []string
	local   map[string]*kdapcore.Engine
	opts    Options
	base    map[string]int // fact rows at construction, per db

	healthy []atomic.Bool
	stop    chan struct{}
	wg      sync.WaitGroup

	mFanout  *telemetry.Counter
	mHedged  *telemetry.Counter
	mPartial *telemetry.Counter
	mNodeErr []*telemetry.Counter
	mNodeSec []*telemetry.Histogram
}

// New builds a coordinator over workers (shard order = slice order) and
// the local engines (which double as the fallback scan path). The
// background health poller starts immediately; nodes begin optimistic
// (healthy) so a cold start does not shed to fallback before the first
// poll.
func New(workers []string, local map[string]*kdapcore.Engine, opts Options) *Cluster {
	if opts.NodeTimeout <= 0 {
		opts.NodeTimeout = 2 * time.Second
	}
	if opts.HealthEvery <= 0 {
		opts.HealthEvery = 2 * time.Second
	}
	c := &Cluster{
		workers: workers,
		local:   local,
		opts:    opts,
		base:    make(map[string]int, len(local)),
		healthy: make([]atomic.Bool, len(workers)),
		stop:    make(chan struct{}),
	}
	for db, e := range local {
		c.base[db] = e.Executor().FactLen()
	}
	for i := range c.healthy {
		c.healthy[i].Store(true)
	}
	c.wg.Add(1)
	go c.healthLoop()
	return c
}

// Close stops the health poller.
func (c *Cluster) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
}

// Workers returns the worker address list in shard order.
func (c *Cluster) Workers() []string { return append([]string(nil), c.workers...) }

// WireMetrics registers every kdap_cluster_* family eagerly — including
// the per-node error counters and latency histograms for each
// configured worker — so the full surface is visible on /metrics from
// the first scrape, not only after the first fault.
func (c *Cluster) WireMetrics(reg *telemetry.Registry) {
	c.mFanout = reg.Counter("kdap_cluster_fanout_total",
		"Scatter-gather fan-outs dispatched to cluster workers.")
	c.mHedged = reg.Counter("kdap_cluster_hedged_total",
		"Hedged local re-scans launched after a worker exceeded the soft deadline.")
	c.mPartial = reg.Counter("kdap_cluster_partial_answers_total",
		"Explore answers served partial with degraded-node attribution.")
	c.mNodeErr = make([]*telemetry.Counter, len(c.workers))
	c.mNodeSec = make([]*telemetry.Histogram, len(c.workers))
	for i, addr := range c.workers {
		c.mNodeErr[i] = reg.Counter("kdap_cluster_node_errors_total",
			"Failed worker dispatches (deadline, refusal, connection loss) by node.",
			"node", addr)
		c.mNodeSec[i] = reg.Histogram("kdap_cluster_node_seconds",
			"Per-node scatter leg latency.", nil,
			"node", addr)
	}
}

// PartialAnswer records one partial answer served to a client; the
// server calls it when an explore response carries degraded nodes.
func (c *Cluster) PartialAnswer() {
	if c.mPartial != nil {
		c.mPartial.Inc()
	}
}

// Scatterer returns db's kdapcore.RowScatterer, or nil when db is not
// served locally (no fallback path would exist).
func (c *Cluster) Scatterer(db string) kdapcore.RowScatterer {
	if c.local[db] == nil {
		return nil
	}
	return &scatterer{c: c, db: db}
}

// scatterer binds the cluster to one warehouse.
type scatterer struct {
	c  *Cluster
	db string
}

func (s *scatterer) ScatterRows(ctx context.Context, cs []olap.Constraint, filters []kdapcore.NumericFilter) ([]int, error) {
	return s.c.scatterRows(ctx, s.db, cs, filters)
}

// nodeResult is one gathered scatter leg.
type nodeResult struct {
	rows   []int
	failed bool  // node lost with no fallback: degrade
	err    error // hard error: abort the whole scatter
}

// scatterRows fans the materialization out to every node owning a
// non-empty range, gathers in shard order, and appends the
// coordinator-local ingest tail. Rows lost to a failed node (fallback
// off) surface as a DegradedError carrying the surviving rows.
func (c *Cluster) scatterRows(ctx context.Context, db string, cs []olap.Constraint, filters []kdapcore.NumericFilter) ([]int, error) {
	e := c.local[db]
	base := c.base[db]
	if c.mFanout != nil {
		c.mFanout.Inc()
	}
	profile.FromContext(ctx).AddClusterScatter(len(c.workers))

	results := make([]nodeResult, len(c.workers))
	var wg sync.WaitGroup
	for i := range c.workers {
		lo, hi := shardRange(base, i, len(c.workers))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			results[i] = c.nodeRows(ctx, db, i, lo, hi, cs, filters)
		}(i, lo, hi)
	}
	wg.Wait()

	var gathered []int
	var failed []string
	for i, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if r.failed {
			failed = append(failed, c.workers[i])
			continue
		}
		gathered = append(gathered, r.rows...)
	}

	// Ingest tail: rows appended after the shard map was fixed are
	// outside every node's range and always scanned locally.
	if cur := e.Executor().FactLen(); cur > base {
		tail, err := e.FactRowsRange(ctx, cs, filters, base, cur)
		if err != nil {
			return nil, err
		}
		gathered = append(gathered, tail...)
	}

	if len(failed) > 0 {
		sort.Strings(failed)
		return nil, &kdapcore.DegradedError{Nodes: failed, Rows: gathered}
	}
	return gathered, nil
}

// nodeRows produces one node's leg: remote scan with a hard per-node
// deadline, an optional hedged local re-scan after the soft deadline,
// and a local fallback re-scan when the node fails outright. Exactly
// one of rows/failed/err is meaningful in the result.
func (c *Cluster) nodeRows(ctx context.Context, db string, idx, lo, hi int, cs []olap.Constraint, filters []kdapcore.NumericFilter) nodeResult {
	type attempt struct {
		rows []int
		err  error
	}

	if c.healthy[idx].Load() {
		nctx, cancel := context.WithTimeout(ctx, c.opts.NodeTimeout)
		ch := make(chan attempt, 2)
		pending := 1
		go func() {
			start := time.Now()
			rows, err := c.fetchRows(nctx, idx, db, lo, hi, cs, filters)
			if c.mNodeSec != nil {
				c.mNodeSec[idx].Observe(time.Since(start).Seconds())
			}
			ch <- attempt{rows, err}
		}()
		var hedge <-chan time.Time
		if c.opts.HedgeAfter > 0 {
			hedge = time.After(c.opts.HedgeAfter)
		}
		var lastErr error
		for pending > 0 {
			select {
			case a := <-ch:
				pending--
				if a.err == nil {
					cancel()
					return nodeResult{rows: a.rows}
				}
				lastErr = a.err
			case <-hedge:
				hedge = nil
				pending++
				if c.mHedged != nil {
					c.mHedged.Inc()
				}
				profile.FromContext(ctx).AddClusterHedged()
				go func() {
					rows, err := c.local[db].FactRowsRange(nctx, cs, filters, lo, hi)
					ch <- attempt{rows, err}
				}()
			}
		}
		cancel()
		c.nodeError(ctx, idx)
		// The node (and any hedge) failed inside the node deadline; if
		// the request itself is dead, abort rather than re-scan.
		if ctx.Err() != nil {
			return nodeResult{err: ctx.Err()}
		}
		_ = lastErr
	} else {
		c.nodeError(ctx, idx)
	}

	if !c.opts.Fallback {
		return nodeResult{failed: true}
	}
	rows, err := c.local[db].FactRowsRange(ctx, cs, filters, lo, hi)
	if err != nil {
		return nodeResult{err: err}
	}
	return nodeResult{rows: rows}
}

// nodeError records one failed dispatch against node idx.
func (c *Cluster) nodeError(ctx context.Context, idx int) {
	if c.mNodeErr != nil {
		c.mNodeErr[idx].Inc()
	}
	profile.FromContext(ctx).AddClusterNodeError(c.workers[idx])
}

// fetchRows performs one remote opRows round trip and validates the
// response: echoed range, count integrity, and strictly ascending rows
// inside the range — a corrupt or misconfigured worker surfaces as a
// node error, never as silently wrong rows.
func (c *Cluster) fetchRows(ctx context.Context, idx int, db string, lo, hi int, cs []olap.Constraint, filters []kdapcore.NumericFilter) ([]int, error) {
	payload, err := c.roundTrip(ctx, c.workers[idx],
		encodeRowsRequest(&rowsRequest{DB: db, Lo: lo, Hi: hi, Cs: cs, Filters: filters}), opRows)
	if err != nil {
		return nil, err
	}
	resp, err := decodeRowsResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.Lo != lo || resp.Hi != hi {
		return nil, fmt.Errorf("cluster: node %s answered range [%d,%d), want [%d,%d)",
			c.workers[idx], resp.Lo, resp.Hi, lo, hi)
	}
	if int(resp.Count) != len(resp.Rows) {
		return nil, fmt.Errorf("cluster: node %s count %d != %d rows",
			c.workers[idx], resp.Count, len(resp.Rows))
	}
	prev := lo - 1
	for _, r := range resp.Rows {
		if r <= prev || r >= hi {
			return nil, fmt.Errorf("cluster: node %s returned row %d outside ascending [%d,%d)",
				c.workers[idx], r, lo, hi)
		}
		prev = r
	}
	return resp.Rows, nil
}

// roundTrip dials addr, sends one request frame, and returns the
// decoded success body. The connection honors both the context deadline
// and early cancellation.
func (c *Cluster) roundTrip(ctx context.Context, addr string, req []byte, op byte) (*wireDecoder, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	if err := writeFrame(conn, req); err != nil {
		return nil, err
	}
	payload, err := readFrame(conn)
	if err != nil {
		return nil, err
	}
	return decodeResponse(payload, op)
}

// fetchHealth performs one opHealth round trip.
func (c *Cluster) fetchHealth(ctx context.Context, addr string) (*healthResponse, error) {
	payload, err := c.roundTrip(ctx, addr, encodeHealthRequest(), opHealth)
	if err != nil {
		return nil, err
	}
	return decodeHealthResponse(payload)
}

// healthLoop polls every worker on a timer and flips the per-node
// health bits that gate dispatch: an unhealthy node is skipped (and
// falls back or degrades) without paying the hard deadline first.
func (c *Cluster) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for i, addr := range c.workers {
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.NodeTimeout)
			_, err := c.fetchHealth(ctx, addr)
			cancel()
			c.healthy[i].Store(err == nil)
		}
	}
}

// Verify health-checks every worker and cross-checks its reported
// topology — index, total, and each warehouse's fact-row count and
// shard range — against the coordinator's own expectation. Run at
// startup before serving traffic; a stale worker (different dataset, or
// a different floor partition) is a consistency bug, not a runtime
// degradation, and must refuse to form a cluster.
func (c *Cluster) Verify(ctx context.Context) error {
	var problems []string
	for i, addr := range c.workers {
		h, err := c.fetchHealth(ctx, addr)
		if err != nil {
			problems = append(problems, fmt.Sprintf("node %s: %v", addr, err))
			continue
		}
		if h.Index != i || h.Total != len(c.workers) {
			problems = append(problems,
				fmt.Sprintf("node %s: reports shard %d/%d, want %d/%d",
					addr, h.Index, h.Total, i, len(c.workers)))
			continue
		}
		reported := make(map[string]healthDB, len(h.DBs))
		for _, db := range h.DBs {
			reported[db.Name] = db
		}
		for db, rows := range c.base {
			r, ok := reported[db]
			if !ok {
				problems = append(problems, fmt.Sprintf("node %s: missing db %q", addr, db))
				continue
			}
			wantLo, wantHi := shardRange(rows, i, len(c.workers))
			if r.FactRows != rows || r.Lo != wantLo || r.Hi != wantHi {
				problems = append(problems,
					fmt.Sprintf("node %s db %q: reports %d rows [%d,%d), want %d rows [%d,%d)",
						addr, db, r.FactRows, r.Lo, r.Hi, rows, wantLo, wantHi))
			}
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("cluster: topology verification failed:\n  %s",
			strings.Join(problems, "\n  "))
	}
	return nil
}
