package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"kdap/internal/kdapcore"
	"kdap/internal/olap"
)

// shardRange computes worker index's contiguous slice of an n-row fact
// table under the total-node floor partition: [floor(n·i/t), floor(n·(i+1)/t)).
// Coordinator and worker both derive ranges from this one formula, so a
// node that never answers still has a well-defined range for fallback.
func shardRange(rows, index, total int) (lo, hi int) {
	if total <= 0 {
		return 0, rows
	}
	return rows * index / total, rows * (index + 1) / total
}

// Worker serves the node side of the scatter protocol: it owns shard
// range index/total of every warehouse it loaded (dimension tables are
// fully replicated by loading the whole warehouse, so the semijoin in
// FactRowsRange never leaves the node) and answers opRows by scanning
// only its range.
type Worker struct {
	engines  map[string]*kdapcore.Engine
	index    int
	total    int
	inflight atomic.Int64
	maxInfl  int64

	// faultHook, when set, runs before each op is served; a non-nil
	// error makes the worker drop the connection without responding —
	// the deterministic stand-in for a node dying mid-request that the
	// degradation tests inject.
	faultHook atomic.Pointer[func(op byte) error]

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

// NewWorker builds a worker owning shard range index of total for each
// engine. maxInflight bounds concurrently served requests (0 means a
// small default); excess requests get a busy error so the coordinator's
// admission-aware dispatch can fall back instead of queueing blind.
func NewWorker(engines map[string]*kdapcore.Engine, index, total, maxInflight int) *Worker {
	if maxInflight <= 0 {
		maxInflight = 64
	}
	return &Worker{
		engines: engines,
		index:   index,
		total:   total,
		maxInfl: int64(maxInflight),
		conns:   make(map[net.Conn]bool),
	}
}

// SetFaultHook installs (or clears, with nil) the test fault injector.
func (w *Worker) SetFaultHook(hook func(op byte) error) {
	if hook == nil {
		w.faultHook.Store(nil)
		return
	}
	w.faultHook.Store(&hook)
}

// Range returns the worker's shard range for db (0,0 when the db is
// unknown).
func (w *Worker) Range(db string) (lo, hi int) {
	e := w.engines[db]
	if e == nil {
		return 0, 0
	}
	return shardRange(e.Executor().FactLen(), w.index, w.total)
}

// Serve accepts and serves connections on ln until Close. It always
// returns a non-nil error (net.ErrClosed after a clean Close).
func (w *Worker) Serve(ln net.Listener) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	w.ln = ln
	w.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		w.conns[conn] = true
		w.wg.Add(1)
		w.mu.Unlock()
		go w.serveConn(conn)
	}
}

// Close stops the listener, closes live connections, and waits for
// in-flight handlers to drain.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	ln := w.ln
	for c := range w.conns {
		c.Close()
	}
	w.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	w.wg.Wait()
	return nil
}

func (w *Worker) dropConn(conn net.Conn) {
	conn.Close()
	w.mu.Lock()
	delete(w.conns, conn)
	w.mu.Unlock()
	w.wg.Done()
}

// serveConn runs the per-connection frame loop: one request frame in,
// one response frame out, until the peer hangs up.
func (w *Worker) serveConn(conn net.Conn) {
	defer w.dropConn(conn)
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		op, d, err := decodeRequest(payload)
		if err != nil {
			// Version or framing mismatch: nothing sane to echo back.
			return
		}
		if hook := w.faultHook.Load(); hook != nil {
			if herr := (*hook)(op); herr != nil {
				return // simulate the node dying: vanish without a response
			}
		}
		resp := w.dispatch(op, d)
		if err := writeFrame(conn, resp); err != nil {
			return
		}
	}
}

// dispatch serves one decoded request and returns the response payload.
func (w *Worker) dispatch(op byte, d *wireDecoder) []byte {
	switch op {
	case opHealth:
		return encodeHealthResponse(w.health())
	case opRows:
		if n := w.inflight.Add(1); n > w.maxInfl {
			w.inflight.Add(-1)
			return encodeError(op, "worker busy")
		}
		defer w.inflight.Add(-1)
		req, err := decodeRowsRequest(d)
		if err != nil {
			return encodeError(op, err.Error())
		}
		resp, err := w.scanRows(req)
		if err != nil {
			return encodeError(op, err.Error())
		}
		return encodeRowsResponse(resp)
	default:
		return encodeError(op, fmt.Sprintf("unknown op %d", op))
	}
}

func (w *Worker) health() *healthResponse {
	h := &healthResponse{
		Index:    w.index,
		Total:    w.total,
		Inflight: int(w.inflight.Load()),
	}
	for name, e := range w.engines {
		rows := e.Executor().FactLen()
		lo, hi := shardRange(rows, w.index, w.total)
		h.DBs = append(h.DBs, healthDB{Name: name, FactRows: rows, Lo: lo, Hi: hi})
	}
	return h
}

// scanRows materializes the requested range node-locally. The request
// carries the coordinator's [lo, hi) rather than trusting the worker's
// own range arithmetic, so a topology mismatch surfaces as a range
// mismatch in the response instead of silently wrong rows.
func (w *Worker) scanRows(req *rowsRequest) (*rowsResponse, error) {
	e := w.engines[req.DB]
	if e == nil {
		return nil, fmt.Errorf("unknown db %q", req.DB)
	}
	wantLo, wantHi := shardRange(e.Executor().FactLen(), w.index, w.total)
	if req.Lo < wantLo || req.Hi > wantHi {
		return nil, fmt.Errorf("range [%d,%d) outside owned [%d,%d)",
			req.Lo, req.Hi, wantLo, wantHi)
	}
	rows, err := e.FactRowsRange(context.Background(), req.Cs, req.Filters, req.Lo, req.Hi)
	if err != nil {
		return nil, err
	}
	sum, err := e.Executor().AggregateCtx(context.Background(), rows, e.Measure(), olap.Sum)
	if err != nil {
		return nil, err
	}
	return &rowsResponse{
		Lo:    req.Lo,
		Hi:    req.Hi,
		Rows:  rows,
		Count: uint64(len(rows)),
		Sum:   sum,
	}, nil
}
