// Package cluster lifts KDAP's in-process shard boundary across the
// network: a coordinator fans fact-row materialization out to worker
// kdapd nodes that each own a contiguous fact-row range (dimension
// tables are replicated, so the star-net semijoin never leaves a node),
// gathers the partial row sets in shard order, and hands the
// concatenation back to kdapcore — where every float kernel still runs,
// so distributed answers are byte-identical to monolithic ones. The
// Facets.Fingerprint oracle holds that contract in CI.
//
// This file is the wire protocol. Frames are u32 little-endian
// length-prefixed; every request payload opens with the version magic
// and an op byte, and the canonical scalar encodings (u32-length
// strings, kind-tagged relation values, little-endian fixed ints)
// mirror the persist segment manifest so the two on-the-wire formats in
// the repo read the same way.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// netMagic versions the protocol; a coordinator and worker disagreeing
// on encoding fail loudly at the first frame instead of mis-decoding.
const netMagic = "KDAPNET1"

// Ops. A response frame echoes the op it answers.
const (
	opHealth byte = 1 // node health + per-db shard-range report
	opRows   byte = 2 // scatter: materialize the node's fact-row range
)

// Response status bytes.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// maxFrame bounds a frame payload so a corrupt or hostile length prefix
// cannot balloon an allocation. 64 MiB comfortably fits the largest
// row-set response (delta-uvarint IDs for millions of rows).
const maxFrame = 64 << 20

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("cluster: frame %d bytes exceeds %d", len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("cluster: frame length %d exceeds %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// wireEncoder builds a frame payload. Append-only, mirroring the
// persist manifestEncoder.
type wireEncoder struct{ buf []byte }

func (e *wireEncoder) u8(v byte)     { e.buf = append(e.buf, v) }
func (e *wireEncoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *wireEncoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *wireEncoder) f64(v float64) { e.u64(math.Float64bits(v)) }
func (e *wireEncoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}
func (e *wireEncoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// value encodes a relation.Value as kind byte + payload, the same shape
// the segment manifest uses.
func (e *wireEncoder) value(v relation.Value) {
	e.u8(byte(v.Kind()))
	switch v.Kind() {
	case relation.KindNull:
	case relation.KindString:
		e.str(v.Str())
	case relation.KindInt:
		e.u64(uint64(v.IntVal()))
	case relation.KindFloat:
		e.f64(v.FloatVal())
	case relation.KindBool:
		if v.BoolVal() {
			e.u8(1)
		} else {
			e.u8(0)
		}
	}
}

func (e *wireEncoder) joinPath(p schemagraph.JoinPath) {
	e.str(p.Source)
	e.str(p.Dim)
	e.str(p.Role)
	e.u32(uint32(len(p.Hops)))
	for _, h := range p.Hops {
		e.str(h.FromTable)
		e.str(h.FromCol)
		e.str(h.ToTable)
		e.str(h.ToCol)
	}
}

func (e *wireEncoder) constraint(c olap.Constraint) {
	e.str(c.Table)
	e.str(c.Attr)
	e.u32(uint32(len(c.Values)))
	for _, v := range c.Values {
		e.value(v)
	}
	e.joinPath(c.Path)
}

func (e *wireEncoder) filter(f kdapcore.NumericFilter) {
	e.str(f.Raw)
	e.str(f.Attr.Table)
	e.str(f.Attr.Attr)
	e.str(f.Role)
	e.joinPath(f.Path)
	if f.OnFact {
		e.u8(1)
	} else {
		e.u8(0)
	}
	e.u8(byte(f.Op))
	e.f64(f.Value)
}

// rows encodes an ascending row-ID set as count + delta uvarints.
func (e *wireEncoder) rows(rows []int) {
	e.u32(uint32(len(rows)))
	prev := 0
	for _, r := range rows {
		e.uvarint(uint64(r - prev))
		prev = r
	}
}

// wireDecoder consumes a frame payload with bounds checking; the first
// failure sticks and every later read returns the zero value.
type wireDecoder struct {
	buf []byte
	off int
	err error
}

var errTruncated = errors.New("cluster: truncated frame")

func (d *wireDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.buf) {
		d.err = errTruncated
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *wireDecoder) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *wireDecoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *wireDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *wireDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *wireDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.err = errTruncated
		return 0
	}
	d.off += n
	return v
}

func (d *wireDecoder) str() string {
	n := d.u32()
	b := d.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}

func (d *wireDecoder) value() relation.Value {
	switch relation.Kind(d.u8()) {
	case relation.KindNull:
		return relation.Null()
	case relation.KindString:
		return relation.String(d.str())
	case relation.KindInt:
		return relation.Int(int64(d.u64()))
	case relation.KindFloat:
		return relation.Float(d.f64())
	case relation.KindBool:
		return relation.Bool(d.u8() != 0)
	default:
		if d.err == nil {
			d.err = fmt.Errorf("cluster: unknown value kind")
		}
		return relation.Null()
	}
}

func (d *wireDecoder) joinPath() schemagraph.JoinPath {
	var p schemagraph.JoinPath
	p.Source = d.str()
	p.Dim = d.str()
	p.Role = d.str()
	n := int(d.u32())
	if d.err != nil || n > maxFrame/16 {
		if d.err == nil {
			d.err = errTruncated
		}
		return p
	}
	for i := 0; i < n; i++ {
		p.Hops = append(p.Hops, schemagraph.Hop{
			FromTable: d.str(), FromCol: d.str(),
			ToTable: d.str(), ToCol: d.str(),
		})
	}
	return p
}

func (d *wireDecoder) constraint() olap.Constraint {
	var c olap.Constraint
	c.Table = d.str()
	c.Attr = d.str()
	n := int(d.u32())
	if d.err != nil || n > maxFrame/2 {
		if d.err == nil {
			d.err = errTruncated
		}
		return c
	}
	for i := 0; i < n; i++ {
		c.Values = append(c.Values, d.value())
	}
	c.Path = d.joinPath()
	return c
}

func (d *wireDecoder) filter() kdapcore.NumericFilter {
	var f kdapcore.NumericFilter
	f.Raw = d.str()
	f.Attr.Table = d.str()
	f.Attr.Attr = d.str()
	f.Role = d.str()
	f.Path = d.joinPath()
	f.OnFact = d.u8() != 0
	f.Op = kdapcore.FilterOp(d.u8())
	f.Value = d.f64()
	return f
}

func (d *wireDecoder) rows() []int {
	n := int(d.u32())
	if d.err != nil || n > maxFrame {
		if d.err == nil {
			d.err = errTruncated
		}
		return nil
	}
	out := make([]int, 0, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		prev += d.uvarint()
		out = append(out, int(prev))
	}
	return out
}

// rowsRequest is the opRows payload: materialize db's fact rows in
// [Lo, Hi) under the constraint set and numeric filters.
type rowsRequest struct {
	DB      string
	Lo, Hi  int
	Cs      []olap.Constraint
	Filters []kdapcore.NumericFilter
}

func encodeRowsRequest(req *rowsRequest) []byte {
	var e wireEncoder
	e.buf = append(e.buf, netMagic...)
	e.u8(opRows)
	e.str(req.DB)
	e.u64(uint64(req.Lo))
	e.u64(uint64(req.Hi))
	e.u32(uint32(len(req.Cs)))
	for _, c := range req.Cs {
		e.constraint(c)
	}
	e.u32(uint32(len(req.Filters)))
	for _, f := range req.Filters {
		e.filter(f)
	}
	return e.buf
}

// decodeRequest validates the magic and returns the op plus a decoder
// positioned at the op-specific body.
func decodeRequest(payload []byte) (byte, *wireDecoder, error) {
	d := &wireDecoder{buf: payload}
	magic := d.take(len(netMagic))
	if d.err != nil || string(magic) != netMagic {
		return 0, nil, fmt.Errorf("cluster: bad protocol magic")
	}
	op := d.u8()
	if d.err != nil {
		return 0, nil, d.err
	}
	return op, d, nil
}

func decodeRowsRequest(d *wireDecoder) (*rowsRequest, error) {
	var req rowsRequest
	req.DB = d.str()
	req.Lo = int(d.u64())
	req.Hi = int(d.u64())
	nc := int(d.u32())
	if d.err != nil || nc > maxFrame/8 {
		return nil, errTruncated
	}
	for i := 0; i < nc; i++ {
		req.Cs = append(req.Cs, d.constraint())
	}
	nf := int(d.u32())
	if d.err != nil || nf > maxFrame/8 {
		return nil, errTruncated
	}
	for i := 0; i < nf; i++ {
		req.Filters = append(req.Filters, d.filter())
	}
	if d.err != nil {
		return nil, d.err
	}
	return &req, nil
}

// rowsResponse is the opRows success body: the node's range, the
// qualifying row IDs, and a partial aggregate (count + measure sum)
// over them. The partial aggregate is observability and integrity
// payload only — facet math runs on the coordinator over the gathered
// rows, never over these partials — so Count doubles as an integrity
// check (it must equal len(Rows)).
type rowsResponse struct {
	Lo, Hi int
	Rows   []int
	Count  uint64
	Sum    float64
}

func encodeRowsResponse(resp *rowsResponse) []byte {
	var e wireEncoder
	e.u8(opRows)
	e.u8(statusOK)
	e.u64(uint64(resp.Lo))
	e.u64(uint64(resp.Hi))
	e.rows(resp.Rows)
	e.u64(resp.Count)
	e.f64(resp.Sum)
	return e.buf
}

func decodeRowsResponse(d *wireDecoder) (*rowsResponse, error) {
	var resp rowsResponse
	resp.Lo = int(d.u64())
	resp.Hi = int(d.u64())
	resp.Rows = d.rows()
	resp.Count = d.u64()
	resp.Sum = d.f64()
	if d.err != nil {
		return nil, d.err
	}
	return &resp, nil
}

// encodeError builds an error response for op.
func encodeError(op byte, msg string) []byte {
	var e wireEncoder
	e.u8(op)
	e.u8(statusErr)
	e.str(msg)
	return e.buf
}

// decodeResponse validates a response frame against the op it answers
// and returns a decoder positioned at the success body.
func decodeResponse(payload []byte, op byte) (*wireDecoder, error) {
	d := &wireDecoder{buf: payload}
	if got := d.u8(); d.err == nil && got != op {
		return nil, fmt.Errorf("cluster: response op %d, want %d", got, op)
	}
	status := d.u8()
	if d.err != nil {
		return nil, d.err
	}
	if status != statusOK {
		msg := d.str()
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("cluster: worker error: %s", msg)
	}
	return d, nil
}

// healthDB is one warehouse's shard assignment as a worker reports it.
type healthDB struct {
	Name     string
	FactRows int
	Lo, Hi   int
}

// healthResponse is the opHealth success body: admission state plus the
// per-db ranges the worker owns, which the coordinator cross-checks
// against its own expectation in Verify.
type healthResponse struct {
	Index    int
	Total    int
	Inflight int
	DBs      []healthDB
}

func encodeHealthRequest() []byte {
	var e wireEncoder
	e.buf = append(e.buf, netMagic...)
	e.u8(opHealth)
	return e.buf
}

func encodeHealthResponse(h *healthResponse) []byte {
	var e wireEncoder
	e.u8(opHealth)
	e.u8(statusOK)
	e.u32(uint32(h.Index))
	e.u32(uint32(h.Total))
	e.u32(uint32(h.Inflight))
	e.u32(uint32(len(h.DBs)))
	for _, db := range h.DBs {
		e.str(db.Name)
		e.u64(uint64(db.FactRows))
		e.u64(uint64(db.Lo))
		e.u64(uint64(db.Hi))
	}
	return e.buf
}

func decodeHealthResponse(d *wireDecoder) (*healthResponse, error) {
	var h healthResponse
	h.Index = int(d.u32())
	h.Total = int(d.u32())
	h.Inflight = int(d.u32())
	n := int(d.u32())
	if d.err != nil || n > maxFrame/16 {
		return nil, errTruncated
	}
	for i := 0; i < n; i++ {
		h.DBs = append(h.DBs, healthDB{
			Name:     d.str(),
			FactRows: int(d.u64()),
			Lo:       int(d.u64()),
			Hi:       int(d.u64()),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	return &h, nil
}
