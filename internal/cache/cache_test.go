package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := NewClock[string, int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	c.Put("a", 10) // replace keeps the entry, swaps the value
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("replaced a = %d", v)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

// A referenced entry survives the hand's pass (the second chance);
// unreferenced entries are the eviction victims.
func TestClockEvictionPrefersRecentlyUsed(t *testing.T) {
	c := NewClock[string, int](4)
	for i, k := range []string{"a", "b", "c", "d"} {
		c.Put(k, i)
	}
	// The first eviction clears every reference bit along its lap and
	// evicts slot 0 ("a"); afterwards only re-touched entries carry a
	// second chance.
	c.Put("e", 4)
	c.Get("c")    // re-reference c
	c.Put("f", 5) // hand at slot 1: "b" is unreferenced → evicted
	c.Put("g", 6) // "c" spends its second chance; "d" is evicted
	if c.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", c.Len())
	}
	for _, k := range []string{"c", "e", "f", "g"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("key %q should have survived", k)
		}
	}
	for _, k := range []string{"a", "b", "d"} {
		if _, ok := c.Get(k); ok {
			t.Errorf("key %q should have been evicted", k)
		}
	}
}

func TestEvictionNeverExceedsCapacity(t *testing.T) {
	c := NewClock[int, int](16)
	for i := 0; i < 1000; i++ {
		c.Put(i, i)
		if c.Len() > 16 {
			t.Fatalf("len = %d after insert %d", c.Len(), i)
		}
	}
	if c.Len() != 16 {
		t.Fatalf("final len = %d", c.Len())
	}
}

func TestNonPositiveCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewClock[int, int](0)
}

// Hammer the cache from many goroutines; run under -race.
func TestConcurrentAccess(t *testing.T) {
	c := NewClock[string, int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*31+i)%64)
				if v, ok := c.Get(k); ok && v < 0 {
					t.Error("impossible value")
					return
				}
				c.Put(k, i)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Fatalf("len = %d", c.Len())
	}
}

// Stats must count hits, misses, and evictions so the telemetry layer
// can expose cache efficiency (the hit rate PR 1's caches were blind to).
func TestStats(t *testing.T) {
	c := NewClock[string, int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("phantom hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a")
	c.Get("a")
	c.Put("c", 3) // capacity 2: must evict
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Len != 2 || st.Cap != 2 {
		t.Errorf("len/cap = %d/%d", st.Len, st.Cap)
	}
	if r := st.HitRate(); r < 0.66 || r > 0.67 {
		t.Errorf("hit rate = %g", r)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate != 0")
	}
}
