package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGroupCollapsesStorm is the singleflight storm proof: N concurrent
// identical calls trigger exactly one underlying computation. The
// leader blocks until every other caller is confirmed waiting, so the
// assertion cannot flake on scheduling.
func TestGroupCollapsesStorm(t *testing.T) {
	const n = 32
	var g Group[string, int]
	var calls atomic.Int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]int, n)
	sharedCount := atomic.Int32{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = v
		}(i)
	}
	waitFor(t, func() bool { return g.Waiting("k") == n-1 })
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("computations = %d, want exactly 1", got)
	}
	if got := sharedCount.Load(); got != n-1 {
		t.Fatalf("shared results = %d, want %d", got, n-1)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %d, want 42", i, v)
		}
	}
	if g.Shared() != n-1 {
		t.Fatalf("Shared() = %d, want %d", g.Shared(), n-1)
	}
}

// TestGroupDistinctKeysDoNotCollapse: different keys compute
// independently.
func TestGroupDistinctKeysDoNotCollapse(t *testing.T) {
	var g Group[int, int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), i, func(context.Context) (int, error) {
				calls.Add(1)
				return i * 10, nil
			})
			if err != nil || v != i*10 {
				t.Errorf("key %d: v=%d err=%v", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 8 {
		t.Fatalf("calls = %d, want 8", calls.Load())
	}
}

// TestGroupSharesErrors: a non-context error is shared with waiters
// like any other result.
func TestGroupSharesErrors(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do(context.Background(), "k", func(context.Context) (int, error) {
				<-release
				return 0, boom
			})
		}(i)
	}
	waitFor(t, func() bool { return g.Waiting("k") == 1 })
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("errs[%d] = %v, want boom", i, err)
		}
	}
}

// TestGroupNeverSharesCancelledResult: when the leader's context is
// cancelled mid-computation, the waiter does not inherit the
// cancellation — it retries and computes under its own live context.
func TestGroupNeverSharesCancelledResult(t *testing.T) {
	var g Group[string, string]
	leaderStarted := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := g.Do(leaderCtx, "k", func(ctx context.Context) (string, error) {
			close(leaderStarted)
			<-ctx.Done()
			return "", ctx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v, want context.Canceled", err)
		}
	}()
	<-leaderStarted

	var followerCalls atomic.Int32
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := g.Do(context.Background(), "k", func(context.Context) (string, error) {
			followerCalls.Add(1)
			return "fresh", nil
		})
		if err != nil || v != "fresh" {
			t.Errorf("follower: v=%q err=%v", v, err)
		}
		if shared {
			t.Error("follower adopted the cancelled leader's result")
		}
	}()
	waitFor(t, func() bool { return g.Waiting("k") == 1 })
	cancelLeader()
	wg.Wait()
	if followerCalls.Load() != 1 {
		t.Fatalf("follower computations = %d, want 1", followerCalls.Load())
	}
}

// TestGroupWaiterHonorsOwnContext: a waiter whose own context ends
// returns its context error promptly instead of blocking on the leader.
func TestGroupWaiterHonorsOwnContext(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go func() {
		_, _, _ = g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(context.Context) (int, error) { return 2, nil })
		done <- err
	}()
	waitFor(t, func() bool { return g.Waiting("k") == 1 })
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter did not observe its own cancellation")
	}
}
