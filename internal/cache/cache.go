// Package cache provides the concurrent caching primitives the serving
// stack is built on. Three shapes, by workload:
//
//   - Clock: a fixed-capacity cache with CLOCK (second-chance)
//     eviction. The OLAP executor and the KDAP engine bound their
//     per-constraint and per-subspace memos with it: CLOCK approximates
//     LRU — a recently hit entry survives one sweep of the hand —
//     without serializing readers the way a linked-list LRU would. Hits
//     take only a read lock plus one atomic store of the reference bit,
//     so concurrent lookups scale.
//
//   - Group: generic singleflight. Concurrent calls with the same key
//     collapse into one computation; losers wait and share the winner's
//     result. A cancelled computation is never shared — a waiter whose
//     leader was cancelled retries under its own context.
//
//   - Answers: a versioned, TTL-aware, size-bounded LRU store for
//     finished query answers, with singleflight fill (Do), a bytes
//     gauge, and version-stamp invalidation (Bump) so a reloaded
//     dataset can never serve answers computed against its predecessor.
//
// Clock trades strict recency for read scalability (hot memo lookups);
// Answers keeps strict LRU under one mutex because answer-granularity
// traffic is orders of magnitude lower than memo-granularity traffic.
package cache

import (
	"sync"
	"sync/atomic"
)

// entry holds one cached value with its second-chance reference bit.
// Values are immutable after insertion; replacing a key swaps the whole
// entry pointer so readers never observe a partial write.
type entry[V any] struct {
	v   V
	ref atomic.Bool
}

// Clock is a fixed-capacity map cache with CLOCK eviction. The zero
// value is not usable; construct with NewClock. Safe for concurrent use.
type Clock[K comparable, V any] struct {
	mu   sync.RWMutex
	cap  int
	m    map[K]*entry[V]
	ring []K // insertion ring the hand sweeps over; len(ring) == len(m)
	hand int

	// Lifetime telemetry: lock-free monotonic counters the owner can
	// export (the server surfaces them as kdap_cache_*_total series).
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// Stats is a point-in-time snapshot of a cache's lifetime counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Len       int
	Cap       int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache's counters.
func (c *Clock[K, V]) Stats() Stats {
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Len:       n,
		Cap:       c.cap,
	}
}

// NewClock creates an empty cache holding at most capacity entries.
func NewClock[K comparable, V any](capacity int) *Clock[K, V] {
	if capacity <= 0 {
		panic("cache: non-positive capacity")
	}
	return &Clock[K, V]{cap: capacity, m: make(map[K]*entry[V], capacity)}
}

// Get returns the value cached under k and marks the entry recently
// used.
func (c *Clock[K, V]) Get(k K) (V, bool) {
	c.mu.RLock()
	e := c.m[k]
	c.mu.RUnlock()
	if e == nil {
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.hits.Add(1)
	e.ref.Store(true)
	return e.v, true
}

// Put inserts or replaces the value under k, evicting the first entry
// without a second chance when the cache is full.
func (c *Clock[K, V]) Put(k K, v V) {
	e := &entry[V]{v: v}
	e.ref.Store(true)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; ok {
		c.m[k] = e // ring slot is unchanged, only the value rotates
		return
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, k)
		c.m[k] = e
		return
	}
	// Sweep: clear reference bits until an unreferenced victim appears.
	// Terminates within two laps — the first lap clears every bit.
	for {
		victim := c.ring[c.hand]
		if c.m[victim].ref.CompareAndSwap(true, false) {
			c.hand = (c.hand + 1) % c.cap
			continue
		}
		delete(c.m, victim)
		c.evictions.Add(1)
		c.ring[c.hand] = k
		c.m[k] = e
		c.hand = (c.hand + 1) % c.cap
		return
	}
}

// Purge drops every cached entry. Lifetime counters are kept — a purge
// is an operator action, not amnesia about past traffic. Benchmarks use
// it to force the cold path on every iteration.
func (c *Clock[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = make(map[K]*entry[V], c.cap)
	c.ring = c.ring[:0]
	c.hand = 0
}

// Len returns the number of cached entries.
func (c *Clock[K, V]) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
