package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// flight is one in-progress computation and, once done is closed, its
// result. Waiters hold a pointer to it across the map delete, so a
// finished flight stays readable after the group forgets the key.
type flight[V any] struct {
	done    chan struct{}
	waiters atomic.Int32
	v       V
	err     error
}

// Group collapses concurrent calls with the same key into one
// computation (the classic "singleflight" pattern, generic over key and
// value). The zero value is ready to use; a Group must not be copied
// after first use. Safe for concurrent use.
type Group[K comparable, V any] struct {
	mu       sync.Mutex
	inflight map[K]*flight[V]
	shared   atomic.Int64
}

// Shared returns the lifetime count of calls that adopted another
// caller's result instead of computing their own.
func (g *Group[K, V]) Shared() int64 { return g.shared.Load() }

// Waiting returns how many callers are currently blocked on the key's
// in-flight computation (0 when none is running). Introspection for
// tests and debugging.
func (g *Group[K, V]) Waiting(key K) int {
	g.mu.Lock()
	f := g.inflight[key]
	g.mu.Unlock()
	if f == nil {
		return 0
	}
	return int(f.waiters.Load())
}

// Do executes fn under key, collapsing concurrent duplicates: while one
// caller (the leader) runs fn, every other caller with the same key
// waits and shares the leader's result instead of computing. shared
// reports whether the returned value came from another caller's
// computation.
//
// Two rules shape the waiting side:
//
//   - A waiter whose own context ends stops waiting and returns its
//     context error; the leader keeps computing for the rest.
//   - A cancelled computation is never shared. When the leader returns a
//     context error — its client hung up or its deadline fired — waiters
//     do not inherit that error: each retries, and one becomes the new
//     leader under its own (live) context. The leader itself does get
//     its context error back.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (v V, shared bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			var zero V
			return zero, false, err
		}
		g.mu.Lock()
		if g.inflight == nil {
			g.inflight = make(map[K]*flight[V])
		}
		if f, ok := g.inflight[key]; ok {
			f.waiters.Add(1)
			g.mu.Unlock()
			select {
			case <-ctx.Done():
				f.waiters.Add(-1)
				var zero V
				return zero, false, ctx.Err()
			case <-f.done:
			}
			f.waiters.Add(-1)
			if f.err != nil && isContextErr(f.err) {
				continue // never share a cancelled result; retry, maybe as leader
			}
			g.shared.Add(1)
			return f.v, true, f.err
		}
		f := &flight[V]{done: make(chan struct{})}
		g.inflight[key] = f
		g.mu.Unlock()
		f.v, f.err = fn(ctx)
		g.mu.Lock()
		delete(g.inflight, key)
		g.mu.Unlock()
		close(f.done)
		return f.v, false, f.err
	}
}

// isContextErr reports whether err is a context cancellation or an
// expired deadline — the results singleflight refuses to share and the
// answer store refuses to keep.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
