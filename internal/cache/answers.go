package cache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Answers is the second cache shape this package provides, built for
// finished query answers rather than intermediate memos: a versioned,
// TTL-aware, size-bounded LRU store with singleflight fill. Callers go
// through Do, which collapses concurrent identical requests into one
// computation (losers wait and share the winner's result), refuses to
// keep cancelled or caller-vetoed results, and stamps every entry with
// the store's version so a Bump — a dataset reload, say — atomically
// invalidates everything computed before it.
//
// Values handed to Put/Do are shared between all future readers and
// must be treated as immutable. Safe for concurrent use.
type Answers[V any] struct {
	cap    int
	ttl    time.Duration // 0 = entries never expire
	sizeOf func(V) int
	now    func() time.Time // test seam for TTL expiry

	mu    sync.Mutex
	m     map[string]*list.Element // key → element holding *aentry[V]
	lru   *list.List               // front = most recently used
	bytes int64

	version atomic.Uint64
	sf      Group[string, fill[V]]

	// Delta invalidation: EvictIf removes matching entries immediately
	// and records (seq, pred) in a bounded ring so in-flight
	// computations that began before the eviction cannot re-publish a
	// stale answer afterwards — put re-checks every invalidation newer
	// than the computation's start sequence, and discards outright when
	// the ring has already shed entries it would need (invalFloor).
	invalSeq   atomic.Uint64
	invals     []inval // guarded by mu; ascending seq
	invalFloor uint64  // guarded by mu; newest seq dropped from the ring

	hits, misses, evictions atomic.Int64
}

// inval is one recorded delta invalidation: answers whose computation
// began at or before seq and whose key matches pred are stale.
type inval struct {
	seq  uint64
	pred func(key string) bool
}

// invalRing bounds how many delta invalidations are retained for
// in-flight put verification. Computations older than the retained
// window are discarded rather than trusted — correctness never depends
// on the ring being large, only throughput of very slow leaders.
const invalRing = 64

// aentry is one stored answer with its version stamp and expiry.
type aentry[V any] struct {
	key     string
	v       V
	size    int64
	version uint64
	expires time.Time // zero = no expiry
}

// fill carries a singleflight result plus how the leader obtained it.
type fill[V any] struct {
	v         V
	fromCache bool
}

// AnswerStats is a point-in-time snapshot of an answer store's
// counters. Evictions counts every removal — capacity pressure, TTL
// expiry, and version-stamp staleness alike.
type AnswerStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Coalesced int64
	Len       int
	Bytes     int64
	Cap       int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s AnswerStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewAnswers creates an answer store holding at most capacity entries,
// each expiring ttl after insertion (0 = no expiry). sizeOf estimates an
// entry's resident bytes for the Bytes gauge; nil counts 1 per entry.
func NewAnswers[V any](capacity int, ttl time.Duration, sizeOf func(V) int) *Answers[V] {
	if capacity <= 0 {
		panic("cache: non-positive answer capacity")
	}
	if sizeOf == nil {
		sizeOf = func(V) int { return 1 }
	}
	return &Answers[V]{
		cap:    capacity,
		ttl:    ttl,
		sizeOf: sizeOf,
		now:    time.Now,
		m:      make(map[string]*list.Element, capacity),
		lru:    list.New(),
	}
}

// Get returns the live answer under key, counting the lookup and
// touching the entry's recency. Entries whose version stamp is stale or
// whose TTL has passed are removed and reported as misses.
func (a *Answers[V]) Get(key string) (V, bool) {
	a.mu.Lock()
	if el, ok := a.m[key]; ok {
		e := el.Value.(*aentry[V])
		if a.liveLocked(e) {
			a.lru.MoveToFront(el)
			a.mu.Unlock()
			a.hits.Add(1)
			return e.v, true
		}
		a.removeLocked(el)
		a.evictions.Add(1)
	}
	a.mu.Unlock()
	a.misses.Add(1)
	var zero V
	return zero, false
}

// peek is Get without counters or recency: the singleflight leader's
// last-moment re-check, so two callers racing past a Get miss cannot
// both compute.
func (a *Answers[V]) peek(key string) (V, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if el, ok := a.m[key]; ok {
		e := el.Value.(*aentry[V])
		if a.liveLocked(e) {
			return e.v, true
		}
	}
	var zero V
	return zero, false
}

// liveLocked reports whether the entry is current-version and unexpired.
func (a *Answers[V]) liveLocked(e *aentry[V]) bool {
	if e.version != a.version.Load() {
		return false
	}
	return e.expires.IsZero() || !a.now().After(e.expires)
}

// Put stores v under key at the current version, evicting from the LRU
// tail when the store is over capacity.
func (a *Answers[V]) Put(key string, v V) {
	a.put(key, v, a.version.Load(), a.invalSeq.Load())
}

// put stores v stamped with an explicit version — the version the
// computation began under, so an answer computed against a dataset that
// was reloaded mid-computation can never be served afterwards. startSeq
// is the invalidation sequence at computation start: if any delta
// invalidation newer than it matches key, or the ring no longer holds
// enough history to check, the answer is silently dropped instead of
// stored — a leader that began before an append cannot publish a
// pre-append answer after the append's eviction pass ran.
func (a *Answers[V]) put(key string, v V, version, startSeq uint64) {
	size := int64(a.sizeOf(v))
	e := &aentry[V]{key: key, v: v, size: size, version: version}
	if a.ttl > 0 {
		e.expires = a.now().Add(a.ttl)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if startSeq < a.invalFloor {
		return
	}
	for i := len(a.invals) - 1; i >= 0 && a.invals[i].seq > startSeq; i-- {
		if a.invals[i].pred(key) {
			return
		}
	}
	if el, ok := a.m[key]; ok {
		a.removeLocked(el)
	}
	a.m[key] = a.lru.PushFront(e)
	a.bytes += size
	for a.lru.Len() > a.cap {
		a.removeLocked(a.lru.Back())
		a.evictions.Add(1)
	}
}

// EvictIf removes every stored answer whose key matches pred and
// returns how many were dropped. The predicate is also recorded (see
// put) so computations already in flight when EvictIf ran cannot
// re-introduce an answer the eviction targeted. pred must be pure: it
// is called under the store lock, now and on future puts.
func (a *Answers[V]) EvictIf(pred func(key string) bool) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	seq := a.invalSeq.Add(1)
	a.invals = append(a.invals, inval{seq: seq, pred: pred})
	if len(a.invals) > invalRing {
		a.invalFloor = a.invals[0].seq
		a.invals = append(a.invals[:0:0], a.invals[1:]...)
	}
	n := 0
	for el := a.lru.Front(); el != nil; {
		next := el.Next()
		if pred(el.Value.(*aentry[V]).key) {
			a.removeLocked(el)
			a.evictions.Add(1)
			n++
		}
		el = next
	}
	return n
}

// removeLocked unlinks one entry and settles the bytes gauge.
func (a *Answers[V]) removeLocked(el *list.Element) {
	e := el.Value.(*aentry[V])
	a.lru.Remove(el)
	delete(a.m, e.key)
	a.bytes -= e.size
}

// Bump advances the version stamp, logically invalidating every stored
// answer at once. Stale entries are dropped lazily as lookups touch
// them; in-flight computations that began before the bump will store
// under the old stamp and likewise never be served.
func (a *Answers[V]) Bump() { a.version.Add(1) }

// Version returns the current version stamp.
func (a *Answers[V]) Version() uint64 { return a.version.Load() }

// Outcome classifies how Do served an answer.
type Outcome int

const (
	// OutcomeMiss: this caller computed the answer.
	OutcomeMiss Outcome = iota
	// OutcomeHit: the answer was already stored.
	OutcomeHit
	// OutcomeCoalesced: another caller was already computing the same
	// answer; this caller waited and shared it.
	OutcomeCoalesced
)

// Do returns the answer under key, computing it with fn on a miss.
// Concurrent calls with the same key collapse into one fn invocation;
// the rest wait and share the winner's result (never a cancelled one —
// see Group.Do). fn's second result vetoes storage: return false for
// answers that must not be cached (degraded/partial results). Errors
// are never stored.
func (a *Answers[V]) Do(ctx context.Context, key string, fn func(context.Context) (V, bool, error)) (V, Outcome, error) {
	if v, ok := a.Get(key); ok {
		return v, OutcomeHit, nil
	}
	return a.Compute(ctx, key, fn)
}

// Compute is Do for a caller that already consulted Get and missed: it
// runs the coalesced fill without counting a second lookup, so one
// request contributes exactly one hit, miss, or coalesce to Stats.
// OutcomeHit is still possible — another caller may store the answer
// between the caller's Get and the fill's re-check.
func (a *Answers[V]) Compute(ctx context.Context, key string, fn func(context.Context) (V, bool, error)) (V, Outcome, error) {
	ver := a.version.Load()
	startSeq := a.invalSeq.Load()
	r, shared, err := a.sf.Do(ctx, key, func(ctx context.Context) (fill[V], error) {
		if v, ok := a.peek(key); ok {
			return fill[V]{v: v, fromCache: true}, nil
		}
		v, store, err := fn(ctx)
		if err != nil {
			return fill[V]{}, err
		}
		if store {
			a.put(key, v, ver, startSeq)
		}
		return fill[V]{v: v}, nil
	})
	switch {
	case err != nil:
		var zero V
		return zero, OutcomeMiss, err
	case shared:
		return r.v, OutcomeCoalesced, nil
	case r.fromCache:
		return r.v, OutcomeHit, nil
	default:
		return r.v, OutcomeMiss, nil
	}
}

// Waiting returns how many callers are blocked on the key's in-flight
// computation (test/debug introspection, see Group.Waiting).
func (a *Answers[V]) Waiting(key string) int { return a.sf.Waiting(key) }

// Len returns the number of stored entries, including any not yet
// swept after a Bump or TTL expiry.
func (a *Answers[V]) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lru.Len()
}

// Stats snapshots the store's counters.
func (a *Answers[V]) Stats() AnswerStats {
	a.mu.Lock()
	n, b := a.lru.Len(), a.bytes
	a.mu.Unlock()
	return AnswerStats{
		Hits:      a.hits.Load(),
		Misses:    a.misses.Load(),
		Evictions: a.evictions.Load(),
		Coalesced: a.sf.Shared(),
		Len:       n,
		Bytes:     b,
		Cap:       a.cap,
	}
}
