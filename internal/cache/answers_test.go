package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAnswersGetPut(t *testing.T) {
	a := NewAnswers[string](4, 0, func(s string) int { return len(s) })
	if _, ok := a.Get("q"); ok {
		t.Fatal("hit on empty store")
	}
	a.Put("q", "answer")
	v, ok := a.Get("q")
	if !ok || v != "answer" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := a.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Len != 1 || st.Bytes != 6 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAnswersLRUEviction(t *testing.T) {
	a := NewAnswers[int](2, 0, nil)
	a.Put("a", 1)
	a.Put("b", 2)
	a.Get("a") // touch: a is now more recent than b
	a.Put("c", 3)
	if _, ok := a.Get("b"); ok {
		t.Fatal("b should have been the LRU victim")
	}
	if _, ok := a.Get("a"); !ok {
		t.Fatal("recently touched a was evicted")
	}
	if st := a.Stats(); st.Evictions != 1 || st.Len != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAnswersTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	a := NewAnswers[int](4, time.Minute, nil)
	a.now = func() time.Time { return now }
	a.Put("k", 7)
	if _, ok := a.Get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := a.Get("k"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	now = now.Add(2 * time.Second) // 61s after insertion
	if _, ok := a.Get("k"); ok {
		t.Fatal("entry served past its TTL")
	}
	if st := a.Stats(); st.Evictions != 1 || st.Len != 0 {
		t.Fatalf("stats after expiry = %+v", st)
	}
}

func TestAnswersVersionStampInvalidation(t *testing.T) {
	a := NewAnswers[int](4, 0, nil)
	a.Put("k", 1)
	a.Bump()
	if _, ok := a.Get("k"); ok {
		t.Fatal("stale-version entry served after Bump")
	}
	// Refill at the new version works.
	a.Put("k", 2)
	if v, ok := a.Get("k"); !ok || v != 2 {
		t.Fatalf("post-bump refill: %d, %v", v, ok)
	}
}

// TestAnswersBumpMidComputation: an answer whose computation began
// before a Bump is stored under the old stamp and never served.
func TestAnswersBumpMidComputation(t *testing.T) {
	a := NewAnswers[int](4, 0, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = a.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
			close(started)
			<-release
			return 1, true, nil
		})
	}()
	<-started
	a.Bump() // dataset reloaded while the fill is in flight
	close(release)
	<-done
	if _, ok := a.Get("k"); ok {
		t.Fatal("answer computed against the old dataset version was served")
	}
}

func TestAnswersDoOutcomes(t *testing.T) {
	a := NewAnswers[int](4, 0, nil)
	v, outcome, err := a.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
		return 9, true, nil
	})
	if err != nil || v != 9 || outcome != OutcomeMiss {
		t.Fatalf("first Do: v=%d outcome=%v err=%v", v, outcome, err)
	}
	v, outcome, err = a.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
		t.Error("recomputed a cached answer")
		return 0, false, nil
	})
	if err != nil || v != 9 || outcome != OutcomeHit {
		t.Fatalf("second Do: v=%d outcome=%v err=%v", v, outcome, err)
	}
}

// TestAnswersDoStorm: N concurrent Do calls with the same key → exactly
// one computation, everyone gets the answer, and it is cached after.
func TestAnswersDoStorm(t *testing.T) {
	const n = 24
	a := NewAnswers[int](4, 0, nil)
	var calls atomic.Int32
	release := make(chan struct{})
	var wg sync.WaitGroup
	var hits, coalesced, misses atomic.Int32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, outcome, err := a.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
				calls.Add(1)
				<-release
				return 5, true, nil
			})
			if err != nil || v != 5 {
				t.Errorf("Do: v=%d err=%v", v, err)
			}
			switch outcome {
			case OutcomeHit:
				hits.Add(1)
			case OutcomeCoalesced:
				coalesced.Add(1)
			case OutcomeMiss:
				misses.Add(1)
			}
		}()
	}
	waitFor(t, func() bool { return a.Waiting("k") == n-1 })
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("computations = %d, want exactly 1", calls.Load())
	}
	if misses.Load() != 1 || hits.Load()+coalesced.Load() != n-1 {
		t.Fatalf("outcomes: %d misses, %d hits, %d coalesced (n=%d)",
			misses.Load(), hits.Load(), coalesced.Load(), n)
	}
	if v, ok := a.Get("k"); !ok || v != 5 {
		t.Fatalf("answer not cached after storm: %d, %v", v, ok)
	}
}

// TestAnswersDoesNotCacheErrors: a failed computation leaves the store
// empty so the next caller retries.
func TestAnswersDoesNotCacheErrors(t *testing.T) {
	a := NewAnswers[int](4, 0, nil)
	boom := errors.New("boom")
	if _, _, err := a.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
		return 0, true, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	var calls int
	v, _, err := a.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
		calls++
		return 3, true, nil
	})
	if err != nil || v != 3 || calls != 1 {
		t.Fatalf("retry after error: v=%d calls=%d err=%v", v, calls, err)
	}
}

// TestAnswersStoreVeto: fn's store=false (a partial/degraded answer)
// returns the value to the caller but keeps it out of the cache.
func TestAnswersStoreVeto(t *testing.T) {
	a := NewAnswers[int](4, 0, nil)
	v, outcome, err := a.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
		return 8, false, nil
	})
	if err != nil || v != 8 || outcome != OutcomeMiss {
		t.Fatalf("vetoed Do: v=%d outcome=%v err=%v", v, outcome, err)
	}
	if _, ok := a.Get("k"); ok {
		t.Fatal("vetoed answer was cached")
	}
}

// TestAnswersCancelledComputationNotCached: the PR 3 rule carried over —
// a computation ended by cancellation caches nothing.
func TestAnswersCancelledComputationNotCached(t *testing.T) {
	a := NewAnswers[int](4, 0, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := a.Do(ctx, "k", func(ctx context.Context) (int, bool, error) {
		return 0, true, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, ok := a.Get("k"); ok {
		t.Fatal("cancelled computation was cached")
	}
}

// TestAnswersEvictIf: delta invalidation removes exactly the matching
// keys, leaves the rest live, and counts the removals as evictions.
func TestAnswersEvictIf(t *testing.T) {
	a := NewAnswers[int](8, 0, nil)
	a.Put("q:sales", 1)
	a.Put("q:returns", 2)
	a.Put("q:promo", 3)
	n := a.EvictIf(func(key string) bool { return key == "q:sales" || key == "q:promo" })
	if n != 2 {
		t.Fatalf("EvictIf removed %d entries, want 2", n)
	}
	if _, ok := a.Get("q:sales"); ok {
		t.Fatal("evicted q:sales still served")
	}
	if _, ok := a.Get("q:promo"); ok {
		t.Fatal("evicted q:promo still served")
	}
	if v, ok := a.Get("q:returns"); !ok || v != 2 {
		t.Fatalf("untouched q:returns lost: %d, %v", v, ok)
	}
	if st := a.Stats(); st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
}

// TestAnswersEvictIfMidComputation: a leader that began computing
// before an EvictIf targeting its key cannot publish afterwards — the
// pre-append answer must not reappear under a post-append cache state.
func TestAnswersEvictIfMidComputation(t *testing.T) {
	a := NewAnswers[int](4, 0, nil)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = a.Do(context.Background(), "k", func(context.Context) (int, bool, error) {
			close(started)
			<-release
			return 1, true, nil
		})
	}()
	<-started
	a.EvictIf(func(key string) bool { return key == "k" }) // rows appended mid-fill
	close(release)
	<-done
	if _, ok := a.Get("k"); ok {
		t.Fatal("answer computed before the delta invalidation was served after it")
	}
	// A non-matching key computed across the same window still stores.
	a.Put("other", 5)
	if _, ok := a.Get("other"); !ok {
		t.Fatal("unrelated key rejected by delta invalidation")
	}
}

// TestAnswersEvictIfRingOverflow: when more invalidations land than the
// ring retains, a put from before the retained window is discarded
// conservatively — never trusted.
func TestAnswersEvictIfRingOverflow(t *testing.T) {
	a := NewAnswers[int](4, 0, nil)
	ver, startSeq := a.version.Load(), a.invalSeq.Load()
	for i := 0; i < invalRing+8; i++ {
		a.EvictIf(func(string) bool { return false })
	}
	a.put("k", 1, ver, startSeq) // leader that started before the storm
	if _, ok := a.Get("k"); ok {
		t.Fatal("put older than the invalidation ring was stored")
	}
	// A fresh computation stores fine.
	a.Put("k", 2)
	if v, ok := a.Get("k"); !ok || v != 2 {
		t.Fatalf("fresh put after overflow: %d, %v", v, ok)
	}
}
