// Package bitset implements fixed-universe bit sets used by the OLAP
// executor to represent sets of fact rows. Star-net evaluation is
// dominated by intersecting row sets that repeat across candidate nets
// (every interpretation containing the "California" hit group shares the
// same semijoin result); bitsets make the intersection a word-parallel
// AND and make per-constraint caching cheap.
package bitset

import "math/bits"

// Set is a bit set over the universe [0, Len()).
type Set struct {
	words []uint64
	n     int
}

// New creates an empty set over a universe of n elements.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative universe")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// FromSorted builds a set from sorted (or unsorted — order is irrelevant)
// element slices.
func FromSorted(n int, xs []int) *Set {
	s := New(n)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

// Add inserts x. It panics if x is outside the universe.
func (s *Set) Add(x int) {
	if x < 0 || x >= s.n {
		panic("bitset: element outside universe")
	}
	s.words[x>>6] |= 1 << (uint(x) & 63)
}

// Contains reports membership of x.
func (s *Set) Contains(x int) bool {
	if x < 0 || x >= s.n {
		return false
	}
	return s.words[x>>6]&(1<<(uint(x)&63)) != 0
}

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// Universes need not match for the binary operations below: a set over a
// smaller universe is treated as the same set over the larger one, with
// every element past its own Len() absent. Streaming ingest grows the
// fact-row universe while cached per-constraint sets lag behind, so a
// mixed intersection naturally truncates to the oldest published prefix
// — exactly the prefix-consistency contract docs/INGEST.md describes —
// instead of panicking mid-query.

// AndWith intersects s with o in place. If o covers a smaller universe,
// every element of s past o's universe is dropped.
func (s *Set) AndWith(o *Set) {
	n := min(len(s.words), len(o.words))
	for i := 0; i < n; i++ {
		s.words[i] &= o.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// OrWith unions o into s in place. If o covers a larger universe, s is
// grown to match so no element of o is lost.
func (s *Set) OrWith(o *Set) {
	if o.n > s.n {
		grown := make([]uint64, len(o.words))
		copy(grown, s.words)
		s.words, s.n = grown, o.n
	}
	for i := range o.words {
		s.words[i] |= o.words[i]
	}
}

// AndCount returns |s ∩ o| without materializing the intersection.
// Elements past the smaller universe count as absent.
func (s *Set) AndCount(o *Set) int {
	n := min(len(s.words), len(o.words))
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// AnyInRange reports whether the set contains any element in [lo, hi).
// The check is word-parallel — masked compares on the two boundary
// words, a zero test per interior word — so the shard planner can probe
// a row range far cheaper than materializing it.
func (s *Set) AnyInRange(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	if lo >= hi {
		return false
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		return s.words[loW]&loMask&hiMask != 0
	}
	if s.words[loW]&loMask != 0 {
		return true
	}
	for i := loW + 1; i < hiW; i++ {
		if s.words[i] != 0 {
			return true
		}
	}
	return s.words[hiW]&hiMask != 0
}

// AppendRange appends the elements in [lo, hi) to dst in ascending
// order and returns the extended slice. It is ToSlice restricted to a
// row range, used by the sharded gather to emit one shard's rows.
func (s *Set) AppendRange(dst []int, lo, hi int) []int {
	if lo < 0 {
		lo = 0
	}
	if hi > s.n {
		hi = s.n
	}
	for wi := lo >> 6; wi <= (hi-1)>>6 && lo < hi; wi++ {
		w := s.words[wi]
		base := wi << 6
		if base < lo {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if base+63 >= hi {
			w &= ^uint64(0) >> (63 - (uint(hi-1) & 63))
		}
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// IntersectRangeAppend appends, in ascending order, the elements of
// [lo, hi) present in every set, without materializing the
// intersection. Mixed universes truncate to the smallest — an element
// outside any set's universe is absent from it. With no sets it appends
// nothing.
func IntersectRangeAppend(dst []int, lo, hi int, sets []*Set) []int {
	if len(sets) == 0 {
		return dst
	}
	first := sets[0]
	if lo < 0 {
		lo = 0
	}
	if hi > first.n {
		hi = first.n
	}
	for _, o := range sets[1:] {
		if o.n < hi {
			hi = o.n
		}
	}
	for wi := lo >> 6; wi <= (hi-1)>>6 && lo < hi; wi++ {
		w := first.words[wi]
		for _, o := range sets[1:] {
			w &= o.words[wi]
		}
		base := wi << 6
		if base < lo {
			w &= ^uint64(0) << (uint(lo) & 63)
		}
		if base+63 >= hi {
			w &= ^uint64(0) >> (63 - (uint(hi-1) & 63))
		}
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// ToSlice returns the elements in ascending order.
func (s *Set) ToSlice() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Range calls fn for each element in ascending order, stopping early if
// fn returns false.
func (s *Set) Range(fn func(x int) bool) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}
