// Package bitset implements fixed-universe bit sets used by the OLAP
// executor to represent sets of fact rows. Star-net evaluation is
// dominated by intersecting row sets that repeat across candidate nets
// (every interpretation containing the "California" hit group shares the
// same semijoin result); bitsets make the intersection a word-parallel
// AND and make per-constraint caching cheap.
package bitset

import "math/bits"

// Set is a bit set over the universe [0, Len()).
type Set struct {
	words []uint64
	n     int
}

// New creates an empty set over a universe of n elements.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative universe")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// FromSorted builds a set from sorted (or unsorted — order is irrelevant)
// element slices.
func FromSorted(n int, xs []int) *Set {
	s := New(n)
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

// Len returns the universe size.
func (s *Set) Len() int { return s.n }

// Add inserts x. It panics if x is outside the universe.
func (s *Set) Add(x int) {
	if x < 0 || x >= s.n {
		panic("bitset: element outside universe")
	}
	s.words[x>>6] |= 1 << (uint(x) & 63)
}

// Contains reports membership of x.
func (s *Set) Contains(x int) bool {
	if x < 0 || x >= s.n {
		return false
	}
	return s.words[x>>6]&(1<<(uint(x)&63)) != 0
}

// Count returns the number of elements.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	out := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(out.words, s.words)
	return out
}

// AndWith intersects s with o in place. The universes must match.
func (s *Set) AndWith(o *Set) {
	if s.n != o.n {
		panic("bitset: universe mismatch")
	}
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// OrWith unions o into s in place. The universes must match.
func (s *Set) OrWith(o *Set) {
	if s.n != o.n {
		panic("bitset: universe mismatch")
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// AndCount returns |s ∩ o| without materializing the intersection.
func (s *Set) AndCount(o *Set) int {
	if s.n != o.n {
		panic("bitset: universe mismatch")
	}
	c := 0
	for i := range s.words {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// ToSlice returns the elements in ascending order.
func (s *Set) ToSlice() []int {
	out := make([]int, 0, s.Count())
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// Range calls fn for each element in ascending order, stopping early if
// fn returns false.
func (s *Set) Range(fn func(x int) bool) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			if !fn(base + bits.TrailingZeros64(w)) {
				return
			}
			w &= w - 1
		}
	}
}
