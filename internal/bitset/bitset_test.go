package bitset

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"kdap/internal/stats"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatal("fresh set")
	}
	for _, x := range []int{0, 1, 63, 64, 65, 127, 129} {
		s.Add(x)
	}
	if s.Count() != 7 {
		t.Errorf("Count = %d", s.Count())
	}
	if !s.Contains(64) || s.Contains(2) || s.Contains(-1) || s.Contains(500) {
		t.Error("Contains wrong")
	}
	want := []int{0, 1, 63, 64, 65, 127, 129}
	if got := s.ToSlice(); !reflect.DeepEqual(got, want) {
		t.Errorf("ToSlice = %v", got)
	}
}

func TestAddPanics(t *testing.T) {
	s := New(10)
	for _, x := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) should panic", x)
				}
			}()
			s.Add(x)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func TestSetAlgebra(t *testing.T) {
	a := FromSorted(200, []int{1, 5, 64, 100, 150})
	b := FromSorted(200, []int{5, 64, 99, 150, 199})

	inter := a.Clone()
	inter.AndWith(b)
	if got := inter.ToSlice(); !reflect.DeepEqual(got, []int{5, 64, 150}) {
		t.Errorf("and = %v", got)
	}
	if a.AndCount(b) != 3 {
		t.Errorf("AndCount = %d", a.AndCount(b))
	}
	union := a.Clone()
	union.OrWith(b)
	if union.Count() != 7 {
		t.Errorf("or count = %d", union.Count())
	}
	// Originals untouched.
	if a.Count() != 5 || b.Count() != 5 {
		t.Error("operands mutated")
	}
}

// Mixed universes arise when streaming ingest grows the fact table while
// cached per-constraint sets lag behind: the binary operations treat the
// smaller set as having every element past its own Len() absent.
func TestUniverseMismatchTruncates(t *testing.T) {
	big := FromSorted(200, []int{1, 64, 130, 199})
	small := FromSorted(100, []int{1, 64, 99})

	inter := big.Clone()
	inter.AndWith(small)
	if got := inter.ToSlice(); !reflect.DeepEqual(got, []int{1, 64}) {
		t.Errorf("big∩small = %v", got)
	}
	inter2 := small.Clone()
	inter2.AndWith(big)
	if got := inter2.ToSlice(); !reflect.DeepEqual(got, []int{1, 64}) {
		t.Errorf("small∩big = %v", got)
	}
	if got := big.AndCount(small); got != 2 {
		t.Errorf("AndCount = %d", got)
	}
	if got := small.AndCount(big); got != 2 {
		t.Errorf("AndCount reversed = %d", got)
	}

	union := small.Clone()
	union.OrWith(big)
	if union.Len() != 200 {
		t.Errorf("OrWith did not grow: Len = %d", union.Len())
	}
	if got := union.ToSlice(); !reflect.DeepEqual(got, []int{1, 64, 99, 130, 199}) {
		t.Errorf("small∪big = %v", got)
	}

	got := IntersectRangeAppend(nil, 0, 200, []*Set{big, small})
	if !reflect.DeepEqual(got, []int{1, 64}) {
		t.Errorf("IntersectRangeAppend mixed = %v", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := FromSorted(100, []int{3, 30, 70})
	var seen []int
	s.Range(func(x int) bool {
		seen = append(seen, x)
		return len(seen) < 2
	})
	if !reflect.DeepEqual(seen, []int{3, 30}) {
		t.Errorf("Range = %v", seen)
	}
}

// Property: bitset intersection agrees with a map-based reference for
// random sets.
func TestIntersectionMatchesReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 64 + rng.Intn(512)
		mkSet := func() ([]int, *Set) {
			var xs []int
			seen := map[int]bool{}
			for i := 0; i < n/3; i++ {
				x := rng.Intn(n)
				if !seen[x] {
					seen[x] = true
					xs = append(xs, x)
				}
			}
			sort.Ints(xs)
			return xs, FromSorted(n, xs)
		}
		ax, as := mkSet()
		bx, bs := mkSet()
		inB := map[int]bool{}
		for _, x := range bx {
			inB[x] = true
		}
		var want []int
		for _, x := range ax {
			if inB[x] {
				want = append(want, x)
			}
		}
		got := as.Clone()
		got.AndWith(bs)
		gotSlice := got.ToSlice()
		if len(want) != len(gotSlice) {
			return false
		}
		for i := range want {
			if want[i] != gotSlice[i] {
				return false
			}
		}
		return as.AndCount(bs) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the range primitives agree with the whole-set reference
// operations restricted to [lo, hi) for random sets and ranges.
func TestRangeOpsMatchReference(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(400)
		a := New(n)
		b := New(n)
		for i := 0; i < n/2; i++ {
			a.Add(rng.Intn(n))
			b.Add(rng.Intn(n))
		}
		lo := rng.Intn(n + 1)
		hi := rng.Intn(n + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		var wantRange, wantBoth []int
		for _, x := range a.ToSlice() {
			if x >= lo && x < hi {
				wantRange = append(wantRange, x)
				if b.Contains(x) {
					wantBoth = append(wantBoth, x)
				}
			}
		}
		if a.AnyInRange(lo, hi) != (len(wantRange) > 0) {
			return false
		}
		if got := a.AppendRange(nil, lo, hi); !reflect.DeepEqual(got, wantRange) {
			return false
		}
		got := IntersectRangeAppend(nil, lo, hi, []*Set{a, b})
		return reflect.DeepEqual(got, wantBoth)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRangeOpsEdges(t *testing.T) {
	s := FromSorted(130, []int{0, 63, 64, 129})
	if s.AnyInRange(1, 63) {
		t.Error("empty interior range matched")
	}
	if !s.AnyInRange(63, 64) || !s.AnyInRange(0, 1) || !s.AnyInRange(129, 130) {
		t.Error("boundary elements missed")
	}
	if s.AnyInRange(5, 5) || s.AnyInRange(-10, 0) || s.AnyInRange(130, 200) {
		t.Error("degenerate ranges matched")
	}
	if got := s.AppendRange([]int{7}, 63, 130); !reflect.DeepEqual(got, []int{7, 63, 64, 129}) {
		t.Errorf("AppendRange = %v", got)
	}
	if got := IntersectRangeAppend(nil, 0, 130, nil); got != nil {
		t.Errorf("no sets should append nothing, got %v", got)
	}
	one := IntersectRangeAppend(nil, 60, 70, []*Set{s})
	if !reflect.DeepEqual(one, []int{63, 64}) {
		t.Errorf("single-set intersect = %v", one)
	}
}

// Property: ToSlice round-trips through FromSorted.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 1 + rng.Intn(300)
		s := New(n)
		for i := 0; i < n/2; i++ {
			s.Add(rng.Intn(n))
		}
		again := FromSorted(n, s.ToSlice())
		return reflect.DeepEqual(s.ToSlice(), again.ToSlice()) && s.Count() == again.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
