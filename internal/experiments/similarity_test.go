package experiments

import (
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/fulltext"
	"kdap/internal/workload"
)

// KDAP's ranking quality must be robust to the underlying text scorer:
// the standard method stays strong under both classic TF-IDF and BM25.
func TestSimilarityAblation(t *testing.T) {
	curves, err := SimilarityAblation(dataset.AWOnline(), workload.AWOnlineQueries())
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, sc := range curves {
		t.Logf("%-14s top1=%.0f%% top5=%.0f%% missing=%v",
			sc.Similarity, sc.Curve.CumulativePct[0], sc.Curve.CumulativePct[4], sc.Curve.Missing)
		if sc.Curve.CumulativePct[0] < 80 {
			t.Errorf("%s: top-1 %.0f%% below 80%%", sc.Similarity, sc.Curve.CumulativePct[0])
		}
		if len(sc.Curve.Missing) > 2 {
			t.Errorf("%s: %d missing interpretations", sc.Similarity, len(sc.Curve.Missing))
		}
	}
	if curves[0].Similarity != fulltext.ClassicTFIDF || curves[1].Similarity != fulltext.BM25 {
		t.Error("similarity order")
	}
}
