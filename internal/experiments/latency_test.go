package experiments

import (
	"testing"
	"time"
)

// The differentiate phase must stay interactive (well under a second per
// query on any modern machine) — §4.1's motivation for disambiguating
// before aggregating.
func TestLatencyInteractive(t *testing.T) {
	rep, err := Latency()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("differentiate p50=%v p95=%v max=%v | explore p50=%v p95=%v max=%v (%d subspaces)",
		rep.DifferentiateP50, rep.DifferentiateP95, rep.DifferentiateMax,
		rep.ExploreP50, rep.ExploreP95, rep.ExploreMax, rep.ExploredSubspaces)
	if rep.Queries != 50 {
		t.Errorf("queries = %d", rep.Queries)
	}
	if rep.DifferentiateP95 > time.Second {
		t.Errorf("differentiate p95 = %v, not interactive", rep.DifferentiateP95)
	}
	if rep.ExploredSubspaces < 45 {
		t.Errorf("only %d subspaces explored", rep.ExploredSubspaces)
	}
}
