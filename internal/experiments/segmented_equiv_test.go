package experiments

import (
	"bytes"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/persist"
	"kdap/internal/workload"
)

// Segment backing is pure storage strategy: over the full Table 3
// workload, an engine whose fact table pages segments in from disk must
// produce byte-identical facet output to the resident engine for every
// query's top interpretation. Fingerprint covers facet ordering,
// scores, display ranges, and every float's last bit, so this is the
// oracle that licenses every skip the backed scans take — a Bloom or
// zone filter that drops a segment it shouldn't changes output bytes
// here.
func TestSegmentedFacetsByteIdentical(t *testing.T) {
	wh := dataset.AWOnline()
	bwh, store, err := persist.BackedWarehouse(t.TempDir(), wh)
	if err != nil {
		t.Fatalf("backed warehouse: %v", err)
	}
	// A deliberately small cache budget forces eviction traffic during
	// the workload, so the equivalence also covers re-paged segments.
	store.SetCacheBudget(1 << 20)
	mono := Engine(wh)
	seg := Engine(bwh)
	opts := kdapcore.DefaultExploreOptions()

	explored := 0
	for _, q := range workload.AWOnlineQueries() {
		nets, err := mono.Differentiate(q.Text)
		if err != nil {
			t.Fatalf("query %d %q: %v", q.ID, q.Text, err)
		}
		segNets, err := seg.Differentiate(q.Text)
		if err != nil {
			t.Fatalf("query %d %q (backed): %v", q.ID, q.Text, err)
		}
		if len(nets) != len(segNets) {
			t.Fatalf("query %d %q: %d interpretations resident, %d backed", q.ID, q.Text, len(nets), len(segNets))
		}
		if len(nets) == 0 {
			continue
		}
		want, wantErr := mono.Explore(nets[0], opts)
		got, gotErr := seg.Explore(segNets[0], opts)
		if wantErr != nil || gotErr != nil {
			if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
				t.Fatalf("query %d: explore errors diverge: resident=%v backed=%v", q.ID, wantErr, gotErr)
			}
			continue
		}
		if !bytes.Equal(got.Fingerprint(), want.Fingerprint()) {
			t.Fatalf("query %d %q: backed facets differ from resident\nresident: %.300s\nbacked: %.300s",
				q.ID, q.Text, want.Fingerprint(), got.Fingerprint())
		}
		explored++
	}
	if explored < 40 {
		t.Fatalf("only %d/50 workload queries produced an interpretation", explored)
	}
	st := store.Stats()
	if st.PagedIn == 0 {
		t.Fatal("workload never paged a segment in — the backed table was not exercised")
	}
	t.Logf("segment stats: %+v", st)
}

// Sharding composes with segment backing: shard boundaries align to
// segment multiples and zone maps fold from the manifest, and output
// must still match the resident monolithic engine bit for bit.
func TestSegmentedShardedFacetsByteIdentical(t *testing.T) {
	wh := dataset.AWOnline()
	bwh, _, err := persist.BackedWarehouse(t.TempDir(), wh)
	if err != nil {
		t.Fatalf("backed warehouse: %v", err)
	}
	mono := Engine(wh)
	seg := Engine(bwh)
	seg.SetShards(4)
	opts := kdapcore.DefaultExploreOptions()

	explored := 0
	for _, q := range workload.AWOnlineQueries() {
		nets, err := mono.Differentiate(q.Text)
		if err != nil {
			t.Fatalf("query %d %q: %v", q.ID, q.Text, err)
		}
		if len(nets) == 0 {
			continue
		}
		want, wantErr := mono.Explore(nets[0], opts)
		got, gotErr := seg.Explore(nets[0], opts)
		if wantErr != nil || gotErr != nil {
			if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
				t.Fatalf("query %d: explore errors diverge: resident=%v backed=%v", q.ID, wantErr, gotErr)
			}
			continue
		}
		if !bytes.Equal(got.Fingerprint(), want.Fingerprint()) {
			t.Fatalf("query %d %q: sharded backed facets differ from resident", q.ID, q.Text)
		}
		explored++
	}
	if explored < 40 {
		t.Fatalf("only %d/50 workload queries produced an interpretation", explored)
	}
}
