package experiments

import (
	"kdap/internal/dataset"
	"kdap/internal/fulltext"
	"kdap/internal/workload"
)

// SimilarityCurve pairs a text-relevance model with its Figure 4 result
// under the standard ranking method.
type SimilarityCurve struct {
	Similarity fulltext.Similarity
	Curve      RankCurve
}

// SimilarityAblation re-runs the Figure 4 protocol (standard ranking
// method only) under each text similarity model. The paper's formula
// consumes Sim(h, q) as a black box; the ablation checks that KDAP's
// ranking quality is a property of the group/number normalizations, not
// of one particular text scorer.
func SimilarityAblation(wh *dataset.Warehouse, queries []workload.Query) ([]SimilarityCurve, error) {
	var out []SimilarityCurve
	for _, sim := range []fulltext.Similarity{fulltext.ClassicTFIDF, fulltext.BM25} {
		e := Engine(wh)
		e.SetTextSimilarity(sim)
		curves, err := Fig4(e, queries)
		if err != nil {
			return nil, err
		}
		out = append(out, SimilarityCurve{Similarity: sim, Curve: curves[0]}) // curves[0] = Standard
	}
	return out, nil
}
