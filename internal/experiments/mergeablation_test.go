package experiments

import "testing"

// Both optimizing strategies must beat or match the equal-width start;
// neither may blow up.
func TestMergeAblation(t *testing.T) {
	rows, err := MergeAblation([]int{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-42s K=%d equal=%6.2f%% greedy=%6.2f%% anneal=%6.2f%%",
			r.Label, r.K, r.EqualWidth, r.Greedy, r.Anneal)
		if r.Anneal > r.EqualWidth+1e-9 {
			t.Errorf("%s K=%d: annealing worse than its start", r.Label, r.K)
		}
		if r.Greedy > r.EqualWidth+10 {
			t.Errorf("%s K=%d: greedy far worse than equal-width (%.2f vs %.2f)",
				r.Label, r.K, r.Greedy, r.EqualWidth)
		}
	}
}
