package experiments

import (
	"fmt"
	"strings"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
)

// Table1Query is the §6.2 walkthrough query.
const Table1Query = "California Mountain Bikes"

// Table1 reproduces the paper's Table 1: the top-k star nets returned for
// "California Mountain Bikes" on AW_ONLINE, rendered one line per net
// with hit groups and the ranking score.
func Table1(topK int) ([]string, []*kdapcore.StarNet, error) {
	e := Engine(dataset.AWOnline())
	nets, err := e.Differentiate(Table1Query)
	if err != nil {
		return nil, nil, err
	}
	if len(nets) > topK {
		nets = nets[:topK]
	}
	lines := make([]string, 0, len(nets))
	for _, sn := range nets {
		lines = append(lines, sn.String())
	}
	return lines, nets, nil
}

// Table2 reproduces the paper's Table 2: the analyst picks the top star
// net of Table 1 and the system renders the Product dimension's facets —
// the promoted ProductSubCategory entry plus the top-ranked group-by
// attributes with their organized instances (DealerPrice as merged
// numeric ranges, ModelName, Color as categories).
func Table2() (*kdapcore.Facets, []string, error) {
	e := Engine(dataset.AWOnline())
	nets, err := e.Differentiate(Table1Query)
	if err != nil {
		return nil, nil, err
	}
	if len(nets) == 0 {
		return nil, nil, fmt.Errorf("no star nets for %q", Table1Query)
	}
	opts := kdapcore.DefaultExploreOptions()
	opts.TopKAttrs = 3
	opts.TopKInstances = 4
	opts.DisplayIntervals = 3 // Table 2 shows three DealerPrice ranges
	f, err := e.Explore(nets[0], opts)
	if err != nil {
		return nil, nil, err
	}
	var lines []string
	for _, d := range f.Dimensions {
		if d.Dimension != "Product" {
			continue
		}
		for _, a := range d.Attributes {
			tag := ""
			if a.Promoted {
				tag = " (promoted)"
			}
			lines = append(lines, fmt.Sprintf("%s%s", a.Attr.Attr, tag))
			for _, inst := range a.Instances {
				lines = append(lines, fmt.Sprintf("    %-28s %12.2f", inst.Label, inst.Aggregate))
			}
		}
	}
	if len(lines) == 0 {
		return nil, nil, fmt.Errorf("no Product dimension facets")
	}
	return f, lines, nil
}

// FormatRankCurves renders Figure 4's data as an aligned text table.
func FormatRankCurves(curves []RankCurve) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s %6s %6s %6s %6s  %s\n", "method", "top-1", "top-2", "top-3", "top-4", "top-5", "worst query")
	for _, c := range curves {
		fmt.Fprintf(&b, "%-22s %5.0f%% %5.0f%% %5.0f%% %5.0f%% %5.0f%%  %q@%d\n",
			c.Method, c.CumulativePct[0], c.CumulativePct[1], c.CumulativePct[2],
			c.CumulativePct[3], c.CumulativePct[4], c.WorstQuery, c.WorstRank)
	}
	return b.String()
}

// FormatBucketSweeps renders Figure 5/6 data as an aligned text table.
func FormatBucketSweeps(results []BucketSweepResult) string {
	var b strings.Builder
	if len(results) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "%-36s", "attribute (rollup)")
	for _, n := range results[0].Buckets {
		fmt.Fprintf(&b, " %7db", n)
	}
	fmt.Fprintf(&b, "  cases\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-36s", r.Label)
		for _, e := range r.ErrPct {
			fmt.Fprintf(&b, " %7.2f%%", e)
		}
		fmt.Fprintf(&b, "  %5d\n", r.Cases)
	}
	return b.String()
}

// FormatAnnealCurves renders Figure 7/8 data as an aligned text table.
func FormatAnnealCurves(results []AnnealCurveResult) string {
	var b strings.Builder
	if len(results) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "%-42s %2s", "case", "K")
	for _, n := range results[0].Iterations {
		fmt.Fprintf(&b, " %6d", n)
	}
	b.WriteString("\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%-42s %2d", r.Label, r.K)
		for _, e := range r.ErrPct {
			fmt.Fprintf(&b, " %5.2f%%", e)
		}
		b.WriteString("\n")
	}
	return b.String()
}
