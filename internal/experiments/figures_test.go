package experiments

import (
	"strings"
	"testing"

	"kdap/internal/dataset"
)

// Table 1's headline claim: the correct interpretation — California the
// state × Mountain Bikes the subcategory — is ranked first, and the
// competing interpretations (the street address, the Mountain products ×
// Bikes category) appear among the candidates.
func TestTable1(t *testing.T) {
	lines, nets, err := Table1(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 3 {
		t.Fatalf("nets = %d", len(nets))
	}
	for _, l := range lines {
		t.Log(l)
	}
	top := nets[0].DomainSignature()
	if !strings.Contains(top, "DimGeography.StateProvinceName") ||
		!strings.Contains(top, "DimProductSubcategory.SubcategoryName") {
		t.Errorf("top net is not state × subcategory: %s", top)
	}
	// Scores descend.
	if !(nets[0].Score >= nets[1].Score && nets[1].Score >= nets[2].Score) {
		t.Error("scores not sorted")
	}
	// The street-address interpretation must exist somewhere in the full list.
	e := Engine(dataset.AWOnline())
	all, _ := e.Differentiate(Table1Query)
	var sawAddr, sawProdCat bool
	for _, sn := range all {
		sig := sn.DomainSignature()
		if strings.Contains(sig, "DimCustomer.AddressLine1") {
			sawAddr = true
		}
		if strings.Contains(sig, "DimProduct.EnglishProductName") &&
			strings.Contains(sig, "DimProductCategory.CategoryName") {
			sawProdCat = true
		}
	}
	if !sawAddr || !sawProdCat {
		t.Errorf("Table 1 alternates missing: addr=%v prodcat=%v", sawAddr, sawProdCat)
	}
}

// Table 2's shape: the Product dimension shows the promoted subcategory
// facet whose instance is Mountain Bikes, plus ranked attributes
// including a numeric DealerPrice facet split into 3 ranges.
func TestTable2(t *testing.T) {
	f, lines, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range lines {
		t.Log(l)
	}
	var product *kdapcoreDimensionFacets
	for _, d := range f.Dimensions {
		if d.Dimension == "Product" {
			product = &kdapcoreDimensionFacets{d.Hitted, len(d.Attributes)}
			if !d.Hitted {
				t.Error("Product dimension should be hitted")
			}
			promoted := d.Attributes[0]
			if !promoted.Promoted || promoted.Attr.Attr != "SubcategoryName" {
				t.Errorf("first attribute should be the promoted subcategory, got %v", promoted.Attr)
			}
			if len(promoted.Instances) != 1 || promoted.Instances[0].Label != "Mountain Bikes" {
				t.Errorf("promoted instances = %v", promoted.Instances)
			}
			var sawNumeric bool
			for _, a := range d.Attributes {
				if a.Numeric && a.Attr.Attr == "DealerPrice" {
					sawNumeric = true
					if len(a.Instances) != 3 {
						t.Errorf("DealerPrice ranges = %d, want 3", len(a.Instances))
					}
				}
			}
			if !sawNumeric {
				names := []string{}
				for _, a := range d.Attributes {
					names = append(names, a.Attr.Attr)
				}
				t.Errorf("DealerPrice facet missing; attrs = %v", names)
			}
		}
	}
	if product == nil {
		t.Fatal("no Product dimension in facets")
	}
}

type kdapcoreDimensionFacets struct {
	hitted bool
	attrs  int
}

// Figure 5: error falls as buckets grow and is small (<10% on average)
// by 40–80 buckets, the paper's convergence claim.
func TestFig5Shape(t *testing.T) {
	wh := dataset.AWOnline()
	e := Engine(wh)
	var results []BucketSweepResult
	for _, c := range Fig5Cases() {
		r, err := BucketSweep(wh, e, c, DefaultBucketSweep)
		if err != nil {
			t.Fatalf("%s: %v", c.Label, err)
		}
		results = append(results, r)
	}
	t.Logf("\n%s", FormatBucketSweeps(results))
	for _, r := range results {
		first, last := r.ErrPct[0], r.ErrPct[len(r.ErrPct)-1]
		// Decreasing overall; a sub-2-point wiggle at the converged level
		// is noise, not a trend (the paper's curves wiggle too).
		if last > first+2 {
			t.Errorf("%s: error grew from %.2f%% to %.2f%%", r.Label, first, last)
		}
		if last > 10 {
			t.Errorf("%s: error at %d buckets = %.2f%%, want < 10%%", r.Label, r.Buckets[len(r.Buckets)-1], last)
		}
		if r.Cases < 3 {
			t.Errorf("%s: only %d roll-up cases", r.Label, r.Cases)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	wh := dataset.AWReseller()
	e := Engine(wh)
	var results []BucketSweepResult
	for _, c := range Fig6Cases() {
		r, err := BucketSweep(wh, e, c, DefaultBucketSweep)
		if err != nil {
			t.Fatalf("%s: %v", c.Label, err)
		}
		results = append(results, r)
	}
	t.Logf("\n%s", FormatBucketSweeps(results))
	for _, r := range results {
		last := r.ErrPct[len(r.ErrPct)-1]
		if last > 10 {
			t.Errorf("%s: error at max buckets = %.2f%%", r.Label, last)
		}
	}
}

// Figure 7/8: the merge error decreases with iterations for every case
// and K, and converges near the basic-interval quality by the last
// sample.
func TestFig7Shape(t *testing.T) {
	for _, c := range Fig7Cases() {
		curves, err := Fig7(c, []int{5, 6, 7}, DefaultAnnealIterations)
		if err != nil {
			t.Fatalf("%s: %v", c.Label, err)
		}
		t.Logf("\n%s", FormatAnnealCurves(curves))
		for _, r := range curves {
			first, last := r.ErrPct[0], r.ErrPct[len(r.ErrPct)-1]
			if last > first+1e-9 {
				t.Errorf("%s K=%d: error grew %.3f%% → %.3f%%", r.Label, r.K, first, last)
			}
		}
	}
}

func TestFormatRankCurves(t *testing.T) {
	e := Engine(dataset.AWOnline())
	curves, err := Fig4(e, nil)
	if err == nil && len(curves) > 0 {
		_ = FormatRankCurves(curves)
	}
	if FormatBucketSweeps(nil) != "" || FormatAnnealCurves(nil) != "" {
		t.Error("empty formatting should be empty")
	}
}
