package experiments

import (
	"runtime"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/workload"
)

// The bench workload must actually exercise the striped kernel when
// cores are available: AW_ONLINE's fact table (60k rows) sits above the
// factory threshold, so full-table scans — the background side of every
// explore — stripe. This pins the satellite fix for the old
// ParallelScans:0 snapshot, where the threshold was set so high the
// parallel path never ran on any workload query.
func TestBenchWorkloadTakesParallelPath(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	e := Engine(dataset.AWOnline())
	before := e.Executor().Stats()
	q := workload.AWOnlineQueries()[0]
	nets, err := e.Differentiate(q.Text)
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) == 0 {
		t.Fatalf("no interpretations for %q", q.Text)
	}
	if _, err := e.Explore(nets[0], kdapcore.DefaultExploreOptions()); err != nil {
		t.Fatal(err)
	}
	after := e.Executor().Stats()
	if after.ParallelScans <= before.ParallelScans {
		t.Fatalf("explore of %q at GOMAXPROCS=4 ran no parallel scans (threshold %d, serial %d->%d)",
			q.Text, olap.ParallelRowThreshold(), before.SerialScans, after.SerialScans)
	}
}
