package experiments

import (
	"strings"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/workload"
)

// Every workload query's top interpretations must render to well-formed
// SQL: balanced quoting, the fact table in FROM, one JOIN per introduced
// alias, and every hit group's predicate present.
func TestSQLWellFormedAcrossWorkload(t *testing.T) {
	e := Engine(dataset.AWOnline())
	fact := e.Graph().FactTable()
	for _, q := range workload.AWOnlineQueries() {
		nets, err := e.Differentiate(q.Text)
		if err != nil {
			t.Fatalf("%q: %v", q.Text, err)
		}
		for i, sn := range nets {
			if i >= 3 {
				break
			}
			sql := sn.SQL(e.Measure(), e.Agg(), fact)
			if strings.Count(sql, `"`)%2 != 0 {
				t.Fatalf("%q net %d: unbalanced identifier quotes\n%s", q.Text, i, sql)
			}
			if !strings.Contains(sql, `FROM "`+fact+`"`) {
				t.Fatalf("%q net %d: fact table missing\n%s", q.Text, i, sql)
			}
			if !strings.HasSuffix(sql, ";") {
				t.Fatalf("%q net %d: no terminator", q.Text, i)
			}
			if len(sn.Groups) > 0 && !strings.Contains(sql, " IN (") {
				t.Fatalf("%q net %d: no IN predicate\n%s", q.Text, i, sql)
			}
			// Single-quote count is even outside of doubled escapes; hit
			// values may contain apostrophes which double, preserving
			// parity.
			if strings.Count(sql, "'")%2 != 0 {
				t.Fatalf("%q net %d: unbalanced literals\n%s", q.Text, i, sql)
			}
		}
	}
}
