// Package experiments reproduces every table and figure of the paper's
// §6 evaluation: Table 1 (star nets for "California Mountain Bikes"),
// Table 2 (dynamic facets of the chosen subspace), Figure 4 (star-net
// ranking quality over the 50-query workload, four methods), Figures 5
// and 6 (bucket-count sweeps for numeric group-by scoring), and
// Figures 7/8 (interval-merge convergence).
package experiments

import (
	"fmt"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/workload"
)

// Engine builds a KDAP engine over a warehouse with the paper's measure:
// sales revenue = SUM(UnitPrice × OrderQuantity).
func Engine(wh *dataset.Warehouse) *kdapcore.Engine {
	fact := wh.DB.Table(wh.Graph.FactTable())
	var m olap.Measure
	switch {
	case fact.Schema().HasColumn("OrderQuantity"):
		m = olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "OrderQuantity")
	case fact.Schema().HasColumn("Quantity"):
		m = olap.ProductMeasure(fact, "SalesRevenue", "UnitPrice", "Quantity")
	default:
		m = olap.CountMeasure()
	}
	return kdapcore.NewEngine(wh.Graph, wh.Index, m, olap.Sum)
}

// RankCurve is one line of Figure 4: the fraction of workload queries
// whose relevant star net appears within the top-x results, x = 1..5.
type RankCurve struct {
	Method kdapcore.RankMethod
	// CumulativePct[x-1] = percentage of queries satisfied within top-(x).
	CumulativePct [5]float64
	// WorstQuery is the satisfied query with the deepest rank.
	WorstQuery string
	WorstRank  int
	// Missing lists queries whose relevant net never appeared at any rank
	// (should stay empty; it indicates a generation gap, not a ranking
	// failure).
	Missing []string
}

// Fig4 evaluates all four ranking methods over a workload, reproducing
// Figure 4's protocol: for each query, find the rank of the first star
// net whose domain signature the ground truth accepts.
func Fig4(e *kdapcore.Engine, queries []workload.Query) ([]RankCurve, error) {
	curves := make([]RankCurve, 0, len(kdapcore.RankMethods))
	for _, method := range kdapcore.RankMethods {
		c := RankCurve{Method: method, WorstRank: 0}
		within := [5]int{}
		for _, q := range queries {
			nets, err := e.DifferentiateRanked(q.Text, method)
			if err != nil {
				return nil, fmt.Errorf("query %d %q: %w", q.ID, q.Text, err)
			}
			rank := 0
			for i, sn := range nets {
				if q.Relevant(sn.DomainSignature()) {
					rank = i + 1
					break
				}
			}
			if rank == 0 {
				c.Missing = append(c.Missing, q.Text)
				continue
			}
			if rank > c.WorstRank {
				c.WorstRank = rank
				c.WorstQuery = q.Text
			}
			for x := rank; x <= 5; x++ {
				within[x-1]++
			}
		}
		for x := 0; x < 5; x++ {
			c.CumulativePct[x] = 100 * float64(within[x]) / float64(len(queries))
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// QueryRank returns, for one query under one method, the rank of the
// first acceptable net (0 when absent) — used by tests and by the
// per-query diagnostics of the bench harness.
func QueryRank(e *kdapcore.Engine, q workload.Query, method kdapcore.RankMethod) (int, error) {
	nets, err := e.DifferentiateRanked(q.Text, method)
	if err != nil {
		return 0, err
	}
	for i, sn := range nets {
		if q.Relevant(sn.DomainSignature()) {
			return i + 1, nil
		}
	}
	return 0, nil
}
