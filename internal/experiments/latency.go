package experiments

import (
	"sort"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/workload"
)

// LatencyReport summarizes interactive latency over the workload — the
// responsiveness §4.1 worries about when motivating early
// disambiguation. Differentiate runs once per workload query; Explore
// once per query's top interpretation.
type LatencyReport struct {
	Queries           int
	DifferentiateP50  time.Duration
	DifferentiateP95  time.Duration
	DifferentiateMax  time.Duration
	ExploreP50        time.Duration
	ExploreP95        time.Duration
	ExploreMax        time.Duration
	ExploredSubspaces int
}

func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	i := int(p * float64(len(ds)-1))
	return ds[i]
}

// Latency measures the two phases over the AW_ONLINE workload.
func Latency() (LatencyReport, error) {
	e := Engine(dataset.AWOnline())
	opts := kdapcore.DefaultExploreOptions()
	opts.Parallel = true
	var diff, expl []time.Duration
	rep := LatencyReport{}
	for _, q := range workload.AWOnlineQueries() {
		start := time.Now()
		nets, err := e.Differentiate(q.Text)
		if err != nil {
			return rep, err
		}
		diff = append(diff, time.Since(start))
		if len(nets) == 0 {
			continue
		}
		start = time.Now()
		if _, err := e.Explore(nets[0], opts); err == nil {
			expl = append(expl, time.Since(start))
			rep.ExploredSubspaces++
		}
	}
	rep.Queries = len(diff)
	rep.DifferentiateP50 = percentile(diff, 0.5)
	rep.DifferentiateP95 = percentile(diff, 0.95)
	rep.DifferentiateMax = percentile(diff, 1)
	rep.ExploreP50 = percentile(expl, 0.5)
	rep.ExploreP95 = percentile(expl, 0.95)
	rep.ExploreMax = percentile(expl, 1)
	return rep, nil
}
