package experiments

import (
	"fmt"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/stats"
)

// BucketCase is one line of Figure 5 or 6: a numeric group-by attribute
// evaluated over every roll-up case of one hierarchy step (e.g.
// YearlyIncome over every StateProvince→Country pair).
type BucketCase struct {
	// Label names the line as in the figure legend.
	Label string
	// Attr is the numeric candidate group-by attribute and Role its
	// join-path role from the fact table.
	Attr schemagraph.AttrRef
	Role string
	// HitLevel is the hierarchy level whose instances define the
	// sub-dataspaces; each instance rolls up to its parent level.
	HitLevel schemagraph.AttrRef
	HitRole  string
}

// BucketSweepResult is one figure line: average correlation error (vs the
// per-distinct-value ground truth of §6.4) per bucket count.
type BucketSweepResult struct {
	Label string
	// Buckets holds the swept basic-interval counts (the x axis).
	Buckets []int
	// ErrPct[i] is the error percentage at Buckets[i], averaged over all
	// evaluated roll-up cases.
	ErrPct []float64
	// Cases is the number of roll-up cases that entered the average.
	Cases int
}

// Fig5Cases returns the four AW_ONLINE lines of Figure 5: YearlyIncome
// and DealerPrice, each under the StateProvince→Country and the
// Subcategory→Category roll-up.
func Fig5Cases() []BucketCase {
	income := schemagraph.AttrRef{Table: "DimCustomer", Attr: "YearlyIncome"}
	price := schemagraph.AttrRef{Table: "DimProduct", Attr: "DealerPrice"}
	state := schemagraph.AttrRef{Table: "DimGeography", Attr: "StateProvinceName"}
	subcat := schemagraph.AttrRef{Table: "DimProductSubcategory", Attr: "SubcategoryName"}
	return []BucketCase{
		{Label: "YearlyIncome (State→Country)", Attr: income, Role: "Customer", HitLevel: state, HitRole: "Customer"},
		{Label: "YearlyIncome (Subcat→Category)", Attr: income, Role: "Customer", HitLevel: subcat, HitRole: "Product"},
		{Label: "DealerPrice (State→Country)", Attr: price, Role: "Product", HitLevel: state, HitRole: "Customer"},
		{Label: "DealerPrice (Subcat→Category)", Attr: price, Role: "Product", HitLevel: subcat, HitRole: "Product"},
	}
}

// Fig6Cases returns the three AW_RESELLER lines of Figure 6: AnnualSales,
// AnnualRevenue, and NumberOfEmployees under the Subcategory→Category
// roll-up.
func Fig6Cases() []BucketCase {
	subcat := schemagraph.AttrRef{Table: "DimProductSubcategory", Attr: "SubcategoryName"}
	mk := func(attr, label string) BucketCase {
		return BucketCase{
			Label:    label,
			Attr:     schemagraph.AttrRef{Table: "DimReseller", Attr: attr},
			Role:     "Reseller",
			HitLevel: subcat,
			HitRole:  "Product",
		}
	}
	return []BucketCase{
		mk("AnnualSales", "AnnualSales (Subcat→Category)"),
		mk("AnnualRevenue", "AnnualRevenue (Subcat→Category)"),
		mk("NumberOfEmployees", "NumberOfEmployees (Subcat→Category)"),
	}
}

// DefaultBucketSweep is the bucket-count x axis of Figures 5 and 6.
var DefaultBucketSweep = []int{5, 10, 20, 40, 80, 160}

// rollupCase is one (sub-dataspace, roll-up space) pair of fact value
// series for a numeric attribute.
type rollupCase struct {
	local []olap.ValueMeasure
	bg    []olap.ValueMeasure
}

// collectRollupCases materializes, for every instance of the hit level
// with a hierarchy parent, the numeric series of the sub-dataspace and of
// its rolled-up background space.
func collectRollupCases(wh *dataset.Warehouse, e *kdapcore.Engine, c BucketCase) ([]rollupCase, error) {
	g := wh.Graph
	ex := e.Executor()
	hitPath, ok := g.PathFromFact(c.HitLevel.Table, c.HitRole)
	if !ok {
		return nil, fmt.Errorf("no path from %s", c.HitLevel.Table)
	}
	attrPath, ok := g.PathFromFact(c.Attr.Table, c.Role)
	if !ok {
		return nil, fmt.Errorf("no path from %s", c.Attr.Table)
	}
	parent, dim, ok := g.HierarchyParent(c.HitLevel)
	if !ok {
		return nil, fmt.Errorf("%s has no hierarchy parent", c.HitLevel)
	}
	parentPath, ok := g.PathFromFact(parent.Table, c.HitRole)
	if !ok {
		return nil, fmt.Errorf("no path from %s", parent.Table)
	}
	innerPaths := g.InnerPathsWithin(c.HitLevel.Table, parent.Table, dim)
	if len(innerPaths) == 0 {
		return nil, fmt.Errorf("no inner path %s → %s", c.HitLevel.Table, parent.Table)
	}

	hitTable := wh.DB.Table(c.HitLevel.Table)
	m := e.Measure()
	var out []rollupCase
	for _, v := range hitTable.DistinctValues(c.HitLevel.Attr) {
		rows := ex.FactRows([]olap.Constraint{{
			Table: c.HitLevel.Table, Attr: c.HitLevel.Attr,
			Values: []relation.Value{v}, Path: hitPath,
		}})
		if len(rows) == 0 {
			continue
		}
		hitRows := hitTable.Lookup(c.HitLevel.Attr, v)
		parentVals := ex.DimValues(c.HitLevel.Table, hitRows, innerPaths[0], parent.Attr)
		if len(parentVals) == 0 {
			continue
		}
		bgRows := ex.FactRows([]olap.Constraint{{
			Table: parent.Table, Attr: parent.Attr, Values: parentVals, Path: parentPath,
		}})
		local := ex.NumericSeries(rows, c.Attr.Attr, attrPath, m)
		bg := ex.NumericSeries(bgRows, c.Attr.Attr, attrPath, m)
		if len(local) == 0 || len(bg) == 0 {
			continue
		}
		out = append(out, rollupCase{local: local, bg: bg})
	}
	return out, nil
}

// BucketSweep runs the §6.4 protocol for one figure line: for every
// roll-up case, compute the ground-truth correlation (one bucket per
// distinct sub-dataspace value) and the correlation at each swept bucket
// count; report the average error percentage. Degenerate cases — fewer
// than two distinct values, or a near-zero ground-truth correlation for
// which relative error is undefined — are skipped, mirroring the paper's
// averaging over meaningful roll-up cases.
func BucketSweep(wh *dataset.Warehouse, e *kdapcore.Engine, c BucketCase, buckets []int) (BucketSweepResult, error) {
	cases, err := collectRollupCases(wh, e, c)
	if err != nil {
		return BucketSweepResult{}, err
	}
	res := BucketSweepResult{Label: c.Label, Buckets: buckets, ErrPct: make([]float64, len(buckets))}
	for _, rc := range cases {
		gtIv := kdapcore.MakeDistinctIntervals(rc.local)
		if gtIv.Buckets() < 2 {
			continue
		}
		gt := stats.Pearson(gtIv.AggregateSeries(rc.local), gtIv.AggregateSeries(rc.bg))
		if gt > -0.1 && gt < 0.1 {
			continue
		}
		res.Cases++
		for i, b := range buckets {
			iv := kdapcore.MakeIntervals(rc.local, b)
			xo, yo := kdapcore.OccupiedSeries(iv.AggregateSeries(rc.local), iv.AggregateSeries(rc.bg))
			corr := stats.Pearson(xo, yo)
			res.ErrPct[i] += stats.AbsErrPct(corr, gt)
		}
	}
	if res.Cases == 0 {
		return res, fmt.Errorf("%s: no evaluable roll-up cases", c.Label)
	}
	for i := range res.ErrPct {
		res.ErrPct[i] /= float64(res.Cases)
	}
	return res, nil
}
