package experiments

import (
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/persist"
	"kdap/internal/relation"
)

// A selective drill over the scaled warehouse's ingest-clustered
// SalesKey must be answered from disk while proving the majority of
// segments irrelevant from manifest evidence alone (zone maps, Bloom
// filters) — the acceptance floor the 10M-fact bench rung holds to.
// Here the scale is shrunk (100k facts, 2k-row segments) so the test
// stays tier-1 fast; the skip geometry is identical, only the constant
// differs.
func TestScaledDrillSkipsMajorityOfSegments(t *testing.T) {
	const (
		facts   = 100_000
		segSize = 2048
	)
	dir := t.TempDir()
	bwh, store, err := persist.AWOnlineScaledBacked(dir, facts, segSize)
	if err != nil {
		t.Fatalf("scaled backed build: %v", err)
	}
	defer store.Close()

	// Resident oracle from the same generator seed: the drill must see
	// the same subspace either way.
	rwh := dataset.AWOnlineScaled(facts)

	const query = "Road Bikes SalesKey>90000"
	seg, res := Engine(bwh), Engine(rwh)
	segNets, err := seg.Differentiate(query)
	if err != nil || len(segNets) == 0 {
		t.Fatalf("differentiate backed: %v (%d nets)", err, len(segNets))
	}
	resNets, err := res.Differentiate(query)
	if err != nil || len(resNets) == 0 {
		t.Fatalf("differentiate resident: %v (%d nets)", err, len(resNets))
	}

	before := store.Stats()
	rows := seg.SubspaceRows(segNets[0])
	after := store.Stats()
	if len(rows) == 0 {
		t.Fatal("drill produced no rows")
	}
	if want := res.SubspaceRows(resNets[0]); len(rows) != len(want) {
		t.Fatalf("backed drill %d rows, resident oracle %d", len(rows), len(want))
	}

	nseg := relation.NumSegments(store.NumRows(), store.SegmentSize())
	skipped := (after.SkippedBloom - before.SkippedBloom) + (after.SkippedZone - before.SkippedZone)
	t.Logf("drill skipped %d of %d segments (%d bloom, %d zone), paged in %d",
		skipped, nseg,
		after.SkippedBloom-before.SkippedBloom,
		after.SkippedZone-before.SkippedZone,
		after.PagedIn-before.PagedIn)
	if skipped*2 < int64(nseg) {
		t.Errorf("drill skipped %d of %d segments, want >= 50%%", skipped, nseg)
	}
	if after.PagedIn == before.PagedIn {
		t.Error("drill paged nothing in — not actually disk-backed?")
	}
}
