package experiments

import (
	"fmt"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/olap"
	"kdap/internal/schemagraph"
)

// AnnealCase is one subfigure of Figure 7/8: a keyword-defined
// sub-dataspace, a numeric attribute domain to partition, and the
// roll-up used as the background space.
type AnnealCase struct {
	Label string
	// Online selects AW_ONLINE (true) or AW_RESELLER (false).
	Online bool
	// Query is the keyword query defining the sub-dataspace.
	Query string
	// Attr is the numeric attribute whose domain is merged, with Role
	// its join-path role.
	Attr schemagraph.AttrRef
	Role string
}

// Fig7Cases returns the paper's three merge scenarios: (a) "France
// Clothing" / Yearly Income, (b) "France Accessories" / Yearly Income,
// (c) "British Columbia" / Number of Employees (reseller database).
func Fig7Cases() []AnnealCase {
	income := schemagraph.AttrRef{Table: "DimCustomer", Attr: "YearlyIncome"}
	return []AnnealCase{
		{Label: "France Clothing / Yearly Income", Online: true, Query: "France Clothing", Attr: income, Role: "Customer"},
		{Label: "France Accessories / Yearly Income", Online: true, Query: "France Accessories", Attr: income, Role: "Customer"},
		{Label: "British Columbia / Number of Employees", Online: false, Query: "British Columbia",
			Attr: schemagraph.AttrRef{Table: "DimReseller", Attr: "NumberOfEmployees"}, Role: "Reseller"},
	}
}

// AnnealCurveResult is one convergence line: error percentage (merged vs
// basic-interval correlation) per iteration count, for one target
// interval count K.
type AnnealCurveResult struct {
	Label      string
	K          int
	Iterations []int
	ErrPct     []float64
}

// DefaultAnnealIterations is the x axis of Figures 7/8.
var DefaultAnnealIterations = []int{0, 10, 25, 50, 100, 200, 300, 500}

// annealSeries materializes the basic-interval series (x = sub-dataspace,
// y = roll-up space) for an anneal case: the sub-dataspace comes from the
// top-ranked star net of the case's keyword query, the background from
// rolling up every hit group (the engine's §5.2.1 construction).
func annealSeries(c AnnealCase, buckets int) (x, y []float64, err error) {
	var wh *dataset.Warehouse
	if c.Online {
		wh = dataset.AWOnline()
	} else {
		wh = dataset.AWReseller()
	}
	e := Engine(wh)
	nets, err := e.Differentiate(c.Query)
	if err != nil {
		return nil, nil, err
	}
	if len(nets) == 0 {
		return nil, nil, fmt.Errorf("%s: no star nets for %q", c.Label, c.Query)
	}
	sn := nets[0]
	ex := e.Executor()
	rows := e.SubspaceRows(sn)
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("%s: empty subspace", c.Label)
	}
	bgRows := RollupRows(e, sn)
	if len(bgRows) == 0 {
		return nil, nil, fmt.Errorf("%s: empty roll-up space", c.Label)
	}
	attrPath, ok := wh.Graph.PathFromFact(c.Attr.Table, c.Role)
	if !ok {
		return nil, nil, fmt.Errorf("%s: no path from %s", c.Label, c.Attr.Table)
	}
	local := ex.NumericSeries(rows, c.Attr.Attr, attrPath, e.Measure())
	bg := ex.NumericSeries(bgRows, c.Attr.Attr, attrPath, e.Measure())
	iv := kdapcore.MakeIntervals(local, buckets)
	return iv.AggregateSeries(local), iv.AggregateSeries(bg), nil
}

// Fig7 runs one anneal case for the given K values, sampling the error at
// each iteration budget. The paper varies K from 5 to 7 and runs to 500
// iterations with 40 basic intervals.
func Fig7(c AnnealCase, ks []int, iterations []int) ([]AnnealCurveResult, error) {
	x, y, err := annealSeries(c, 40)
	if err != nil {
		return nil, err
	}
	var out []AnnealCurveResult
	for _, k := range ks {
		r := AnnealCurveResult{Label: c.Label, K: k, Iterations: iterations}
		maxN := iterations[len(iterations)-1]
		res := kdapcore.MergeIntervals(x, y, kdapcore.AnnealConfig{
			K: k, L: 4, N: maxN, AcceptProb: 0.25, Seed: 7,
		})
		for _, n := range iterations {
			r.ErrPct = append(r.ErrPct, res.History[n])
		}
		out = append(out, r)
	}
	return out, nil
}

// RollupRows computes the union background space of a star net: the fact
// rows of the sub-dataspace generalized along every hitted dimension
// (taking the first successful roll-up, which is what the anneal figures
// need as their single background series).
func RollupRows(e *kdapcore.Engine, sn *kdapcore.StarNet) []int {
	// Re-derive the engine's roll-up construction through the public
	// surface: generalize each hit group via its hierarchy parent.
	g := e.Graph()
	ex := e.Executor()
	base := sn.Constraints()
	for i := range base {
		attr := schemagraph.AttrRef{Table: base[i].Table, Attr: base[i].Attr}
		parent, dim, ok := g.HierarchyParent(attr)
		var cs []olap.Constraint
		cs = append(cs, base[:i]...)
		if ok {
			hitTable := g.DB().Table(base[i].Table)
			hitRows := hitTable.LookupIn(base[i].Attr, base[i].Values)
			inner := g.InnerPathsWithin(base[i].Table, parent.Table, dim)
			if len(inner) == 0 {
				continue
			}
			parentVals := ex.DimValues(base[i].Table, hitRows, inner[0], parent.Attr)
			ppath, pok := g.PathFromFact(parent.Table, base[i].Path.Role)
			if !pok || len(parentVals) == 0 {
				continue
			}
			cs = append(cs, olap.Constraint{Table: parent.Table, Attr: parent.Attr, Values: parentVals, Path: ppath})
		}
		cs = append(cs, base[i+1:]...)
		if rows := ex.FactRows(cs); len(rows) > 0 {
			return rows
		}
	}
	return nil
}
