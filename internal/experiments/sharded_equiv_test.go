package experiments

import (
	"bytes"
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/workload"
)

// Sharding is pure execution strategy: over the full Table 3 workload,
// a sharded engine must produce byte-identical facet output to the
// monolithic one for every query's top interpretation. This is the
// strongest equivalence we can assert — Fingerprint covers facet
// ordering, scores, display ranges, and every float's last bit.
func TestShardedFacetsByteIdentical(t *testing.T) {
	wh := dataset.AWOnline()
	mono := Engine(wh)
	shd := Engine(wh)
	shd.SetShards(32)
	opts := kdapcore.DefaultExploreOptions()

	explored := 0
	for _, q := range workload.AWOnlineQueries() {
		nets, err := mono.Differentiate(q.Text)
		if err != nil {
			t.Fatalf("query %d %q: %v", q.ID, q.Text, err)
		}
		if len(nets) == 0 {
			continue
		}
		sn := nets[0]
		want, wantErr := mono.Explore(sn, opts)
		got, gotErr := shd.Explore(sn, opts)
		if wantErr != nil || gotErr != nil {
			// Some top interpretations have an empty sub-dataspace
			// ("Brakes Chains" hits disjoint product groups); both
			// engines must refuse identically.
			if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
				t.Fatalf("query %d: explore errors diverge: mono=%v shard=%v", q.ID, wantErr, gotErr)
			}
			continue
		}
		wantFP := want.Fingerprint()
		gotFP := got.Fingerprint()
		if !bytes.Equal(gotFP, wantFP) {
			t.Fatalf("query %d %q: sharded facets differ from monolithic\nmono: %.300s\nshard: %.300s",
				q.ID, q.Text, wantFP, gotFP)
		}
		explored++
	}
	if explored < 40 {
		t.Fatalf("only %d/50 workload queries produced an interpretation", explored)
	}
	st := shd.Executor().Stats()
	if st.ShardsScanned == 0 {
		t.Fatal("sharded engine never consulted the shard planner")
	}
}
