package experiments

import (
	"testing"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/workload"
)

// Every workload query's intended interpretation must be generated at
// some rank — a missing interpretation is a candidate-generation bug, not
// a ranking result.
func TestFig4AllInterpretationsGenerated(t *testing.T) {
	e := Engine(dataset.AWOnline())
	for _, q := range workload.AWOnlineQueries() {
		rank, err := QueryRank(e, q, kdapcore.Standard)
		if err != nil {
			t.Fatalf("q%d %q: %v", q.ID, q.Text, err)
		}
		if rank == 0 {
			nets, _ := e.DifferentiateRanked(q.Text, kdapcore.Standard)
			t.Errorf("q%d %q: relevant net absent (%d nets)", q.ID, q.Text, len(nets))
			for i, sn := range nets {
				if i >= 6 {
					break
				}
				t.Logf("   #%d %.5f %s", i+1, sn.Score, sn.DomainSignature())
			}
		} else {
			t.Logf("q%d %q: rank %d", q.ID, q.Text, rank)
		}
	}
}

// The headline Figure 4 shape: the standard method satisfies ≥90% of the
// queries at top-1 and 100% within top-5, dominates the baseline and the
// no-group-number-norm variant, and the no-size-norm variant lands close
// behind (the paper: 94% / 88% at top-1).
func TestFig4Shape(t *testing.T) {
	e := Engine(dataset.AWOnline())
	curves, err := Fig4(e, workload.AWOnlineQueries())
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[kdapcore.RankMethod]RankCurve{}
	for _, c := range curves {
		byMethod[c.Method] = c
		t.Logf("%-22s top1=%.0f%% top2=%.0f%% top3=%.0f%% top4=%.0f%% top5=%.0f%% worst=%q@%d missing=%v",
			c.Method, c.CumulativePct[0], c.CumulativePct[1], c.CumulativePct[2],
			c.CumulativePct[3], c.CumulativePct[4], c.WorstQuery, c.WorstRank, c.Missing)
	}
	std := byMethod[kdapcore.Standard]
	if len(std.Missing) > 0 {
		t.Fatalf("standard method missing interpretations: %v", std.Missing)
	}
	if std.CumulativePct[0] < 90 {
		t.Errorf("standard top-1 = %.0f%%, want ≥ 90%%", std.CumulativePct[0])
	}
	if std.CumulativePct[4] < 100 {
		t.Errorf("standard top-5 = %.0f%%, want 100%%", std.CumulativePct[4])
	}
	base := byMethod[kdapcore.Baseline]
	noNum := byMethod[kdapcore.NoGroupNumNorm]
	noSize := byMethod[kdapcore.NoGroupSizeNorm]
	if std.CumulativePct[0] <= base.CumulativePct[0] {
		t.Errorf("standard (%f) must beat baseline (%f) at top-1",
			std.CumulativePct[0], base.CumulativePct[0])
	}
	if std.CumulativePct[0] <= noNum.CumulativePct[0] {
		t.Errorf("standard (%f) must beat no-group-number-norm (%f) at top-1",
			std.CumulativePct[0], noNum.CumulativePct[0])
	}
	// No-size-norm does "surprisingly well" — within 15 points of standard.
	if std.CumulativePct[0]-noSize.CumulativePct[0] > 15 {
		t.Errorf("no-size-norm (%f) should be close behind standard (%f)",
			noSize.CumulativePct[0], std.CumulativePct[0])
	}
}

// §6.3's replica on the reseller database: "the results are almost
// identical" — we require the same qualitative shape.
func TestFig4Reseller(t *testing.T) {
	e := Engine(dataset.AWReseller())
	curves, err := Fig4(e, workload.AWResellerQueries())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range curves {
		t.Logf("%-22s top1=%.0f%% top5=%.0f%% missing=%v", c.Method, c.CumulativePct[0], c.CumulativePct[4], c.Missing)
	}
	var std RankCurve
	for _, c := range curves {
		if c.Method == kdapcore.Standard {
			std = c
		}
	}
	if len(std.Missing) > 0 {
		t.Fatalf("reseller standard missing: %v", std.Missing)
	}
	if std.CumulativePct[0] < 80 || std.CumulativePct[4] < 100 {
		t.Errorf("reseller standard curve: top1=%.0f top5=%.0f", std.CumulativePct[0], std.CumulativePct[4])
	}
}
