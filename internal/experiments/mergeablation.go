package experiments

import (
	"kdap/internal/kdapcore"
)

// MergeAblationRow compares the three interval-merge strategies on one
// Figure 7 case and K.
type MergeAblationRow struct {
	Label      string
	K          int
	EqualWidth float64 // error% of the unoptimized equal-width split
	Greedy     float64 // error% of the deterministic bottom-up merge
	Anneal     float64 // error% of Algorithm 2 at 500 iterations
}

// MergeAblation runs the §7 merge-algorithm comparison over the paper's
// three merge scenarios and K ∈ ks.
func MergeAblation(ks []int) ([]MergeAblationRow, error) {
	var out []MergeAblationRow
	for _, c := range Fig7Cases() {
		x, y, err := annealSeries(c, 40)
		if err != nil {
			return nil, err
		}
		for _, k := range ks {
			cfg := kdapcore.AnnealConfig{K: k, L: 4, N: 500, AcceptProb: 0.25, Seed: 7}
			start := kdapcore.MergeIntervals(x, y, kdapcore.AnnealConfig{K: k, L: 4, N: 0, AcceptProb: 0.25, Seed: 7})
			sa := kdapcore.MergeIntervals(x, y, cfg)
			gr := kdapcore.MergeIntervalsGreedy(x, y, cfg)
			out = append(out, MergeAblationRow{
				Label: c.Label, K: k,
				EqualWidth: start.ErrPct, Greedy: gr.ErrPct, Anneal: sa.ErrPct,
			})
		}
	}
	return out, nil
}
