package experiments

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"kdap/internal/dataset"
	"kdap/internal/kdapcore"
	"kdap/internal/workload"
)

// Batched execution is pure scheduling: over the full Table 3 workload,
// explores gathered into shared-scan batches must produce byte-identical
// facet output to solo execution, query by query. The solo answers are
// computed first on an unbatched engine; then every workload explore is
// fired concurrently at a batched engine (no answer cache, so all
// sharing comes from the batch layer) and each result's fingerprint is
// compared to its solo twin.
func TestBatchedFacetsByteIdentical(t *testing.T) {
	wh := dataset.AWOnline()
	solo := Engine(wh)
	batched := Engine(wh)
	batched.SetBatching(2*time.Millisecond, 8)
	opts := kdapcore.DefaultExploreOptions()

	type cs struct {
		id   int
		text string
		sn   *kdapcore.StarNet
		want []byte // nil when the solo explore errored
		werr string
	}
	var cases []cs
	for _, q := range workload.AWOnlineQueries() {
		nets, err := solo.Differentiate(q.Text)
		if err != nil {
			t.Fatalf("query %d %q: %v", q.ID, q.Text, err)
		}
		if len(nets) == 0 {
			continue
		}
		c := cs{id: q.ID, text: q.Text, sn: nets[0]}
		if f, err := solo.Explore(nets[0], opts); err != nil {
			c.werr = err.Error()
		} else {
			c.want = f.Fingerprint()
		}
		cases = append(cases, c)
	}
	if len(cases) < 40 {
		t.Fatalf("only %d/50 workload queries produced an interpretation", len(cases))
	}

	var wg sync.WaitGroup
	errs := make([]string, len(cases))
	got := make([][]byte, len(cases))
	for i := range cases {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, _, err := batched.ExploreBatchedCtx(context.Background(), cases[i].sn, opts)
			if err != nil {
				errs[i] = err.Error()
				return
			}
			got[i] = f.Fingerprint()
		}(i)
	}
	wg.Wait()

	for i, c := range cases {
		if c.werr != "" || errs[i] != "" {
			if c.werr != errs[i] {
				t.Fatalf("query %d %q: errors diverge: solo=%q batched=%q", c.id, c.text, c.werr, errs[i])
			}
			continue
		}
		if !bytes.Equal(got[i], c.want) {
			t.Fatalf("query %d %q: batched facets differ from solo\nsolo: %.300s\nbatched: %.300s",
				c.id, c.text, c.want, got[i])
		}
	}
	st := batched.BatchStats()
	if st.Batches == 0 || st.Requests == 0 {
		t.Fatalf("batched engine never gathered: %+v", st)
	}
	if st.SharedScans == 0 {
		t.Fatalf("no scan was shared across the batch — the scope never fired: %+v", st)
	}
}
