package olap

import (
	"context"
	"math"
	"time"
)

// Kernel autotuning. The factory parallel-row threshold is a guess
// about where stripe fan-out starts paying for its goroutine handoff
// and per-stripe states — a number that is really a property of the
// machine (core count, cache sizes, scheduler). CalibrateThreshold
// measures the actual crossover for the running GOMAXPROCS by racing
// the serial kernel against the striped kernel over growing prefixes
// of the executor's own fact table, and ApplyTuning installs the
// verdict process-wide.
//
// Calibration deliberately runs the same fused scan the hot path runs
// (scanAggregateChunk vs the striped schedule) rather than a synthetic
// loop, so the measured crossover includes the real costs: measure
// vector reads, aggState updates, cancellation strides.
//
// Byte-stability note: the threshold decides which row sets accumulate
// serially and which over the 16-stripe grid, so two processes with
// different tunings can disagree in the low-order float bits of large
// aggregates. Calibrate once at startup, before serving; a fleet that
// needs byte-level agreement across replicas should ship one tuning to
// all of them.

// Tuning is one calibration verdict.
type Tuning struct {
	// GOMAXPROCS the calibration ran under.
	GOMAXPROCS int `json:"gomaxprocs"`
	// ParallelRowThreshold is the smallest measured row count at which
	// the striped scan clearly beat the serial scan; 0 means striping
	// never won (single-core hosts, or fact tables too small to show a
	// crossover) and scans should stay serial.
	ParallelRowThreshold int `json:"parallel_row_threshold"`
}

// calibrateSizes are the candidate thresholds, swept smallest first.
var calibrateSizes = []int{2048, 4096, 8192, 16384, 32768, 65536}

// calibrateMargin: the striped scan must win by at least this factor
// before the crossover counts — a few percent of jitter must not flip
// a fleet's tuning between deploys.
const calibrateMargin = 1.15

// CalibrateThreshold measures the serial/striped crossover for the
// current GOMAXPROCS over the executor's fact table. The sweep stops at
// the first size where striping wins by calibrateMargin; larger sizes
// only win harder.
func CalibrateThreshold(ex *Executor, m Measure) Tuning {
	out := Tuning{GOMAXPROCS: scanWorkers()}
	rows := ex.FactRows(nil)
	if scanWorkers() == 1 {
		// One worker runs the stripes inline: striping is pure overhead.
		return out
	}
	ctx := context.Background()
	for _, n := range calibrateSizes {
		if n > len(rows) {
			break
		}
		sub := rows[:n]
		serial := timeScan(func() {
			_, _ = ex.scanAggregateChunk(ctx, sub, m)
		})
		striped := timeScan(func() {
			_, _ = ex.scanAggregateStriped(ctx, sub, m)
		})
		if striped > 0 && float64(serial) >= float64(striped)*calibrateMargin {
			out.ParallelRowThreshold = n
			break
		}
	}
	return out
}

// scanAggregateStriped forces the striped schedule regardless of the
// threshold — the calibration probe.
func (ex *Executor) scanAggregateStriped(ctx context.Context, rows []int, m Measure) (aggState, error) {
	spans := stripeSpans(len(rows))
	partial := make([]aggState, len(spans))
	errs := make([]error, len(spans))
	runStripes(len(spans), scanWorkers(), func(i int) {
		sp := spans[i]
		partial[i], errs[i] = ex.scanAggregateChunk(ctx, rows[sp.lo:sp.hi], m)
	})
	for _, err := range errs {
		if err != nil {
			return aggState{}, err
		}
	}
	st := partial[0]
	for w := 1; w < len(partial); w++ {
		st.mergeInto(&partial[w])
	}
	return st, nil
}

// timeScan returns the minimum per-run wall time of fn over a short
// adaptive burst: at least 8 runs, continuing until 4ms have been
// spent. The minimum — not the mean — is the scan's cost with the
// noise (GC, scheduler preemption) filtered out.
func timeScan(fn func()) time.Duration {
	best := time.Duration(math.MaxInt64)
	var spent time.Duration
	for i := 0; i < 8 || spent < 4*time.Millisecond; i++ {
		start := time.Now()
		fn()
		d := time.Since(start)
		spent += d
		if d < best {
			best = d
		}
		if i > 1000 {
			break
		}
	}
	return best
}

// ApplyTuning installs a calibration verdict process-wide: a positive
// threshold becomes the striping cutoff, a zero threshold pushes the
// cutoff above any realistic row set (striping never measured a win).
func ApplyTuning(t Tuning) {
	if t.ParallelRowThreshold > 0 {
		SetParallelRowThreshold(t.ParallelRowThreshold)
		return
	}
	SetParallelRowThreshold(math.MaxInt32)
}
