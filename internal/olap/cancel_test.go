package olap

// Cancellation coverage for the executor's ctx-first variants: a
// cancelled context surfaces context.Canceled from every kernel entry
// point, and the Background-context wrappers keep their old contract.

import (
	"context"
	"errors"
	"testing"
)

func allFactRows(t *testing.T, ex *Executor) []int {
	t.Helper()
	rows, err := ex.FactRowsCtx(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestCtxVariantsCancel(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	path := pathTo(t, "PGROUP", "")
	rows := allFactRows(t, ex)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	calls := map[string]func() error{
		"FactRowsCtx": func() error {
			_, err := ex.FactRowsCtx(ctx, nil)
			return err
		},
		"AggregateCtx": func() error {
			_, err := ex.AggregateCtx(ctx, rows, m, Sum)
			return err
		},
		"GroupByCtx": func() error {
			_, err := ex.GroupByCtx(ctx, rows, "GroupName", path, m, Sum)
			return err
		},
		"NumericSeriesCtx": func() error {
			_, err := ex.NumericSeriesCtx(ctx, rows, "UnitPrice", pathTo(t, "TRANSITEM", ""), m)
			return err
		},
		"FilterRowsNumericCtx": func() error {
			_, err := ex.FilterRowsNumericCtx(ctx, rows, "UnitPrice", pathTo(t, "TRANSITEM", ""),
				func(v float64) bool { return v > 0 })
			return err
		},
		"MapRowsCtx": func() error {
			_, err := ex.MapRowsCtx(ctx, rows, path)
			return err
		},
	}
	for name, call := range calls {
		if err := call(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s on cancelled ctx: err = %v, want context.Canceled", name, err)
		}
	}
}

// TestWrappersMatchCtxVariants checks the Background wrappers return
// the same results as their ctx-first counterparts on a live context.
func TestWrappersMatchCtxVariants(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	path := pathTo(t, "PGROUP", "")
	rows := allFactRows(t, ex)

	want := ex.Aggregate(rows, m, Sum)
	got, err := ex.AggregateCtx(context.Background(), rows, m, Sum)
	if err != nil || got != want {
		t.Errorf("AggregateCtx = %v, %v; wrapper = %v", got, err, want)
	}

	wantG := ex.GroupBy(rows, "GroupName", path, m, Sum)
	gotG, err := ex.GroupByCtx(context.Background(), rows, "GroupName", path, m, Sum)
	if err != nil || len(gotG) != len(wantG) {
		t.Fatalf("GroupByCtx: %d groups, err %v; wrapper %d", len(gotG), err, len(wantG))
	}
	for k, v := range wantG {
		if gotG[k] != v {
			t.Errorf("group %v: ctx %v, wrapper %v", k, gotG[k], v)
		}
	}
}
