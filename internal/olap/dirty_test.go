package olap

import (
	"testing"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// dirtyWarehouse builds a small star schema with deliberately broken
// rows: a fact with a dangling product key, a fact with a NULL product
// key, and a product with a dangling group key. Real warehouses have
// them; the executor must degrade gracefully (drop the unlinkable rows)
// rather than panic or miscount.
func dirtyWarehouse(t *testing.T) (*schemagraph.Graph, *Executor) {
	t.Helper()
	db := relation.NewDatabase("dirty")
	group := db.MustCreateTable(relation.MustSchema("Grp", []relation.Column{
		{Name: "GrpKey", Kind: relation.KindInt},
		{Name: "GrpName", Kind: relation.KindString, FullText: true},
	}, "GrpKey", nil))
	prod := db.MustCreateTable(relation.MustSchema("Prod", []relation.Column{
		{Name: "ProdKey", Kind: relation.KindInt},
		{Name: "Name", Kind: relation.KindString, FullText: true},
		{Name: "GrpKey", Kind: relation.KindInt},
	}, "ProdKey", []relation.ForeignKey{{Column: "GrpKey", RefTable: "Grp", RefColumn: "GrpKey"}}))
	fact := db.MustCreateTable(relation.MustSchema("Fact", []relation.Column{
		{Name: "FactKey", Kind: relation.KindInt},
		{Name: "ProdKey", Kind: relation.KindInt},
		{Name: "Amount", Kind: relation.KindFloat},
	}, "FactKey", []relation.ForeignKey{{Column: "ProdKey", RefTable: "Prod", RefColumn: "ProdKey"}}))

	group.MustAppend(relation.Int(1), relation.String("Widgets"))
	prod.MustAppend(relation.Int(1), relation.String("Widget A"), relation.Int(1))
	prod.MustAppend(relation.Int(2), relation.String("Widget B"), relation.Int(999)) // dangling group
	fact.MustAppend(relation.Int(1), relation.Int(1), relation.Float(10))
	fact.MustAppend(relation.Int(2), relation.Int(2), relation.Float(20))
	fact.MustAppend(relation.Int(3), relation.Int(777), relation.Float(40)) // dangling product
	fact.MustAppend(relation.Int(4), relation.Null(), relation.Float(80))   // NULL product

	g := schemagraph.New(db, "Fact")
	if err := g.AddDimension(&schemagraph.Dimension{
		Name: "Product", Tables: []string{"Prod", "Grp"},
		GroupBy: []schemagraph.AttrRef{{Table: "Grp", Attr: "GrpName"}, {Table: "Prod", Attr: "Name"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Build(); err != nil {
		t.Fatal(err)
	}
	// Non-strict integrity passes (the schema is fine, the data dirty).
	if err := db.Validate(false); err != nil {
		t.Fatal(err)
	}
	return g, NewExecutor(g)
}

func TestDirtyDataSemijoin(t *testing.T) {
	g, ex := dirtyWarehouse(t)
	path, ok := g.PathFromFact("Prod", "Product")
	if !ok {
		t.Fatal("no path")
	}
	rows := ex.FactRows([]Constraint{{
		Table: "Prod", Attr: "Name",
		Values: []relation.Value{relation.String("Widget A"), relation.String("Widget B")},
		Path:   path,
	}})
	// Only facts 1 and 2 link to real products.
	if len(rows) != 2 || rows[0] != 0 || rows[1] != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDirtyDataGroupByDropsUnlinked(t *testing.T) {
	g, ex := dirtyWarehouse(t)
	m := ColumnMeasure(g.DB().Table("Fact"), "Amount")
	all := ex.FactRows(nil)
	if len(all) != 4 {
		t.Fatalf("all = %d", len(all))
	}
	prodPath, _ := g.PathFromFact("Prod", "Product")
	byName := ex.GroupBy(all, "Name", prodPath, m, Sum)
	if len(byName) != 2 {
		t.Fatalf("groups = %v", byName)
	}
	if byName[relation.String("Widget A")] != 10 || byName[relation.String("Widget B")] != 20 {
		t.Errorf("groups = %v (dangling/NULL facts must be dropped)", byName)
	}
	// Two hops with a dangling middle: group by GrpName drops Widget B's
	// facts too.
	grpPath, _ := g.PathFromFact("Grp", "Product")
	byGrp := ex.GroupBy(all, "GrpName", grpPath, m, Sum)
	if len(byGrp) != 1 || byGrp[relation.String("Widgets")] != 10 {
		t.Errorf("group-level groups = %v", byGrp)
	}
}

func TestDirtyDataNumericSeries(t *testing.T) {
	g, ex := dirtyWarehouse(t)
	m := ColumnMeasure(g.DB().Table("Fact"), "Amount")
	all := ex.FactRows(nil)
	prodPath, _ := g.PathFromFact("Prod", "Product")
	// ProdKey as a "numeric attribute" on the product table: only linked
	// facts appear.
	series := ex.NumericSeries(all, "ProdKey", prodPath, m)
	if len(series) != 2 {
		t.Errorf("series = %v", series)
	}
}
