package olap

import (
	"context"
	"runtime"
	"testing"
)

// The fused multi-row-set scan is pure scheduling: every per-set result
// must be bit-for-bit the solo GroupByCtx result, serial or striped.
func TestGroupByMultiMatchesSolo(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	path := pathTo(t, "PGROUP", "Product")
	all := ex.FactRows(nil)
	var every2, every5 []int
	for i := 0; i < len(all); i += 2 {
		every2 = append(every2, all[i])
	}
	for i := 0; i < len(all); i += 5 {
		every5 = append(every5, all[i])
	}
	sets := [][]int{all, every2, nil, every5, all[:120]}
	for _, threshold := range []int{0, 64} { // 0 = factory default (serial on ebiz), 64 = force striping
		SetParallelRowThreshold(threshold)
		for _, agg := range []Agg{Sum, Count, Avg, Min, Max} {
			got, err := ex.GroupByMultiCtx(context.Background(), sets, "GroupName", path, m, agg)
			if err != nil {
				t.Fatalf("threshold %d agg %v: %v", threshold, agg, err)
			}
			if len(got) != len(sets) {
				t.Fatalf("%d results, want %d", len(got), len(sets))
			}
			for k, rows := range sets {
				want, err := ex.GroupByCtx(context.Background(), rows, "GroupName", path, m, agg)
				if err != nil {
					t.Fatal(err)
				}
				if len(got[k]) != len(want) {
					t.Fatalf("set %d agg %v: %d groups, want %d", k, agg, len(got[k]), len(want))
				}
				for v, w := range want {
					if g := got[k][v]; g != w && !(g != g && w != w) { // NaN==NaN for empty Avg states
						t.Fatalf("set %d agg %v group %v: %v, want %v (must be bit-identical)", k, agg, v, g, w)
					}
				}
			}
		}
	}
	SetParallelRowThreshold(0)
}

// The stripe grid depends on the row count alone, so group-by and
// aggregate bytes must be identical across GOMAXPROCS — serial stripes
// at 1 core, pooled workers at 4 or 16 — with striping forced on.
func TestKernelDeterministicAcrossGOMAXPROCS(t *testing.T) {
	SetParallelRowThreshold(64)
	defer SetParallelRowThreshold(0)
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	path := pathTo(t, "PGROUP", "Product")
	all := ex.FactRows(nil)

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	type snapshot struct {
		groups map[string]float64
		agg    float64
	}
	var base *snapshot
	for _, gmp := range []int{1, 4, 16} {
		runtime.GOMAXPROCS(gmp)
		gb, err := ex.GroupByCtx(context.Background(), all, "GroupName", path, m, Sum)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := ex.AggregateCtx(context.Background(), all, m, Sum)
		if err != nil {
			t.Fatal(err)
		}
		snap := &snapshot{groups: map[string]float64{}, agg: agg}
		for v, x := range gb {
			snap.groups[v.Text()] = x
		}
		if base == nil {
			base = snap
			continue
		}
		if snap.agg != base.agg {
			t.Fatalf("GOMAXPROCS %d: aggregate %x differs from baseline %x", gmp, snap.agg, base.agg)
		}
		if len(snap.groups) != len(base.groups) {
			t.Fatalf("GOMAXPROCS %d: %d groups vs %d", gmp, len(snap.groups), len(base.groups))
		}
		for v, x := range base.groups {
			if snap.groups[v] != x {
				t.Fatalf("GOMAXPROCS %d group %s: %x, want %x (bytes must not depend on core count)", gmp, v, snap.groups[v], x)
			}
		}
	}
}
