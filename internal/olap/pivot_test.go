package olap

import (
	"math"
	"strings"
	"testing"

	"kdap/internal/relation"
)

func TestPivotTotalsConsistency(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	rows := ex.FactRows(nil)
	pt := ex.Pivot(rows, "GroupName", pathTo(t, "PGROUP", "Product"),
		"State", pathTo(t, "LOC", "Store"), m, Sum)

	if len(pt.RowKeys) == 0 || len(pt.ColKeys) == 0 {
		t.Fatal("empty pivot")
	}
	total := ex.Aggregate(rows, m, Sum)
	if math.Abs(pt.Grand-total) > 1e-6*total {
		t.Errorf("grand %g != total %g", pt.Grand, total)
	}
	var rowSum, colSum float64
	for _, v := range pt.RowTotals {
		rowSum += v
	}
	for _, v := range pt.ColTotals {
		colSum += v
	}
	if math.Abs(rowSum-pt.Grand) > 1e-6*pt.Grand || math.Abs(colSum-pt.Grand) > 1e-6*pt.Grand {
		t.Errorf("margins: rows %g cols %g grand %g", rowSum, colSum, pt.Grand)
	}
	// Each cell equals the direct aggregate of the two-constraint slice.
	rv, cv := pt.RowKeys[0], pt.ColKeys[0]
	ri, ci := 0, 0
	slice := ex.FactRows([]Constraint{
		{Table: "PGROUP", Attr: "GroupName", Values: []relation.Value{rv}, Path: pathTo(t, "PGROUP", "Product")},
		{Table: "LOC", Attr: "State", Values: []relation.Value{cv}, Path: pathTo(t, "LOC", "Store")},
	})
	want := ex.Aggregate(slice, m, Sum)
	if pt.Present[ri][ci] != (len(slice) > 0) {
		t.Errorf("presence mismatch")
	}
	if pt.Present[ri][ci] && math.Abs(pt.Cells[ri][ci]-want) > 1e-6*(want+1) {
		t.Errorf("cell = %g, direct = %g", pt.Cells[ri][ci], want)
	}
}

func TestPivotRendering(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	rows := ex.FactRows(nil)[:500]
	pt := ex.Pivot(rows, "LineName", pathTo(t, "PLINE", "Product"),
		"Country", pathTo(t, "LOC", "Store"), m, Sum)
	out := pt.String()
	if !strings.Contains(out, "TOTAL") || !strings.Contains(out, "LineName \\ Country") {
		t.Errorf("rendering:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(pt.RowKeys)+2 {
		t.Errorf("line count %d, want %d", len(lines), len(pt.RowKeys)+2)
	}
}

func TestPivotCountAgg(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	rows := ex.FactRows(nil)
	pt := ex.Pivot(rows, "GroupName", pathTo(t, "PGROUP", "Product"),
		"Country", pathTo(t, "LOC", "Store"), CountMeasure(), Count)
	if int(pt.Grand) != len(rows) {
		t.Errorf("count grand = %g, want %d", pt.Grand, len(rows))
	}
}
