package olap

import "testing"

func BenchmarkPivot(b *testing.B) {
	ex := NewExecutor(ebiz.Graph)
	m := ProductMeasure(ebiz.DB.Table("TRANSITEM"), "rev", "UnitPrice", "Quantity")
	rows := ex.FactRows(nil)
	rp, _ := ebiz.Graph.PathFromFact("PGROUP", "Product")
	cp, _ := ebiz.Graph.PathFromFact("LOC", "Store")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt := ex.Pivot(rows, "GroupName", rp, "State", cp, m, Sum)
		if pt.Grand == 0 {
			b.Fatal("empty pivot")
		}
	}
}
