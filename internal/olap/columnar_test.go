package olap

import (
	"math"
	"testing"

	"kdap/internal/relation"
)

// The columnar kernels are a pure execution-strategy change: every
// result must match the retained row-at-a-time reference path exactly
// (sequential) or to float-merge precision (parallel).

// sampleRowSets returns row subsets of assorted sizes, including the
// full dataspace and an empty set.
func sampleRowSets(ex *Executor) [][]int {
	all := ex.FactRows(nil)
	var every3 []int
	for i := 0; i < len(all); i += 3 {
		every3 = append(every3, all[i])
	}
	return [][]int{nil, all[:1], all[:100], every3, all}
}

func TestGroupByMatchesReference(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	aggs := []Agg{Sum, Count, Avg, Min, Max}
	for _, tc := range []struct{ attr, table, role string }{
		{"GroupName", "PGROUP", "Product"},
		{"State", "LOC", "Store"},
		{"Income", "CUSTOMER", "Buyer"},
	} {
		path := pathTo(t, tc.table, tc.role)
		for _, rows := range sampleRowSets(ex) {
			for _, agg := range aggs {
				got := ex.GroupBy(rows, tc.attr, path, m, agg)
				want := ex.GroupByRef(rows, tc.attr, path, m, agg)
				if len(got) != len(want) {
					t.Fatalf("%s/%v: %d groups, want %d", tc.attr, agg, len(got), len(want))
				}
				for k, w := range want {
					g, ok := got[k]
					if !ok {
						t.Fatalf("%s/%v: missing group %v", tc.attr, agg, k)
					}
					// Sequential kernel: identical accumulation order,
					// so bit-for-bit equality (NaN == NaN for Avg of
					// empty states).
					if g != w && !(math.IsNaN(g) && math.IsNaN(w)) {
						t.Fatalf("%s/%v group %v: %v, want %v", tc.attr, agg, k, g, w)
					}
				}
			}
		}
	}
}

// CountMeasure has no vector; the dense-code kernel must still work
// through the Eval fallback.
func TestGroupByEvalFallbackMatchesReference(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	path := pathTo(t, "PGROUP", "Product")
	all := ex.FactRows(nil)
	got := ex.GroupBy(all, "GroupName", path, CountMeasure(), Count)
	want := ex.GroupByRef(all, "GroupName", path, CountMeasure(), Count)
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Fatalf("group %v: %v want %v", k, got[k], w)
		}
	}
}

// Force the chunked parallel kernel and check it against the reference
// (values agree to merge precision; group sets agree exactly) and
// against itself (deterministic across runs).
func TestGroupByParallelKernel(t *testing.T) {
	SetParallelRowThreshold(64)
	defer SetParallelRowThreshold(0)

	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	all := ex.FactRows(nil)
	path := pathTo(t, "PGROUP", "Product")
	for _, agg := range []Agg{Sum, Count, Avg, Min, Max} {
		got := ex.GroupBy(all, "GroupName", path, m, agg)
		again := ex.GroupBy(all, "GroupName", path, m, agg)
		want := ex.GroupByRef(all, "GroupName", path, m, agg)
		if len(got) != len(want) {
			t.Fatalf("%v: %d groups, want %d", agg, len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("%v: missing group %v", agg, k)
			}
			if math.Abs(g-w) > 1e-9*(math.Abs(w)+1) {
				t.Fatalf("%v group %v: %v, want %v", agg, k, g, w)
			}
			if got[k] != again[k] {
				t.Fatalf("%v group %v: parallel kernel nondeterministic", agg, k)
			}
		}
	}
}

func TestAggregateMatchesReference(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	for _, rows := range sampleRowSets(ex) {
		for _, agg := range []Agg{Sum, Count, Avg, Min, Max} {
			got := ex.Aggregate(rows, m, agg)
			want := ex.AggregateRef(rows, m, agg)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("agg %v over %d rows: %v, want %v", agg, len(rows), got, want)
			}
		}
	}
	// Parallel path agrees to merge precision.
	SetParallelRowThreshold(64)
	defer SetParallelRowThreshold(0)
	all := ex.FactRows(nil)
	for _, agg := range []Agg{Sum, Count, Avg, Min, Max} {
		got := ex.Aggregate(all, m, agg)
		want := ex.AggregateRef(all, m, agg)
		if math.Abs(got-want) > 1e-9*(math.Abs(want)+1) {
			t.Fatalf("parallel agg %v: %v, want %v", agg, got, want)
		}
	}
}

// NumericSeries and FilterRowsNumeric through the fact-aligned float
// column must match the boxed row walk.
func TestNumericColumnsMatchRowWalk(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	path := pathTo(t, "CUSTOMER", "Buyer")
	dimTable := ebiz.DB.Table("CUSTOMER")
	ai := dimTable.Schema().ColumnIndex("Income")
	f2d := ex.factToDim(path)
	for _, rows := range sampleRowSets(ex) {
		series := ex.NumericSeries(rows, "Income", path, m)
		var want []ValueMeasure
		for _, r := range rows {
			d := f2d[r]
			if d < 0 {
				continue
			}
			v := dimTable.Row(int(d))[ai]
			if v.IsNull() || !v.Numeric() {
				continue
			}
			want = append(want, ValueMeasure{Value: v.AsFloat(), Measure: m.Eval(ebiz.DB.Table("TRANSITEM").Row(r))})
		}
		if len(series) != len(want) {
			t.Fatalf("series %d entries, want %d", len(series), len(want))
		}
		for i := range want {
			if series[i] != want[i] {
				t.Fatalf("entry %d: %+v, want %+v", i, series[i], want[i])
			}
		}
		pred := func(x float64) bool { return x > 80000 }
		got := ex.FilterRowsNumeric(rows, "Income", path, pred)
		var wantRows []int
		for _, r := range rows {
			d := f2d[r]
			if d < 0 {
				continue
			}
			v := dimTable.Row(int(d))[ai]
			if v.IsNull() || !v.Numeric() || !pred(v.AsFloat()) {
				continue
			}
			wantRows = append(wantRows, r)
		}
		if len(got) != len(wantRows) {
			t.Fatalf("filter %d rows, want %d", len(got), len(wantRows))
		}
		for i := range wantRows {
			if got[i] != wantRows[i] {
				t.Fatalf("filter row %d: %d, want %d", i, got[i], wantRows[i])
			}
		}
	}
}

// The dict path must drop dangling and NULL links exactly like the
// reference on dirty data.
func TestDirtyDataColumnarMatchesReference(t *testing.T) {
	g, ex := dirtyWarehouse(t)
	m := ColumnMeasure(g.DB().Table("Fact"), "Amount")
	all := ex.FactRows(nil)
	for _, tbl := range []string{"Prod", "Grp"} {
		path, ok := g.PathFromFact(tbl, "Product")
		if !ok {
			t.Fatalf("no path from %s", tbl)
		}
		attr := map[string]string{"Prod": "Name", "Grp": "GrpName"}[tbl]
		got := ex.GroupBy(all, attr, path, m, Sum)
		want := ex.GroupByRef(all, attr, path, m, Sum)
		if len(got) != len(want) {
			t.Fatalf("%s: %v, want %v", tbl, got, want)
		}
		for k, w := range want {
			if got[k] != w {
				t.Fatalf("%s group %v: %v, want %v", tbl, k, got[k], w)
			}
		}
	}
}

// A group whose every measure value is NaN must still appear (with the
// aggregation's empty-state value), matching the reference semantics of
// creating the state before evaluating the measure.
func TestGroupByKeepsAllNaNMeasureGroups(t *testing.T) {
	g, ex := dirtyWarehouse(t)
	// A measure that is NaN for Widget A's only linked fact (row 0).
	m := Measure{Name: "picky", Eval: func(row []relation.Value) float64 {
		if row[0].IntVal() == 1 {
			return math.NaN()
		}
		return row[2].AsFloat()
	}}
	path, _ := g.PathFromFact("Prod", "Product")
	all := ex.FactRows(nil)
	got := ex.GroupBy(all, "Name", path, m, Sum)
	want := ex.GroupByRef(all, "Name", path, m, Sum)
	if len(got) != len(want) || len(got) != 2 {
		t.Fatalf("got %v, want %v (both groups must appear)", got, want)
	}
	if got[relation.String("Widget A")] != 0 {
		t.Errorf("all-NaN group sum = %v, want 0", got[relation.String("Widget A")])
	}
}
