package olap

import (
	"context"
	"math"
	"sort"
	"sync"

	"kdap/internal/bitset"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/shard"
	"kdap/internal/telemetry"
	"kdap/internal/telemetry/profile"
)

// Sharded scatter-gather execution. With SetShards the executor
// partitions the fact table into contiguous row-range shards carrying
// zone maps (internal/shard); the row-set producers — sub-dataspace
// semijoin intersection, numeric predicate filters, numeric series
// extraction — plan each scan against the zone maps and constraint
// bitsets, skip shards that cannot contain qualifying rows, and gather
// the survivors' results in shard order.
//
// Pruning is applied only to exact row-set computations: a shard is
// skipped when *no row in it* can qualify (its zone map misses the
// predicate's bound interval, or a constraint bitset has no member in
// its row range), so the gathered row sets — and everything computed
// from them — are byte-identical to the monolithic scan. The float
// aggregation kernels (groupScan, scanAggregate) deliberately keep
// their shard-independent chunk grid: float addition is not
// associative, and re-chunking sums along shard boundaries would change
// low-order bits versus the monolithic path. Shards bound what is
// scanned, never how partial sums merge.

// SetShards partitions the fact table into n contiguous row-range
// shards with zone maps, enabling shard pruning on the row-set
// producers. n <= 1 restores the monolithic scan. Safe to call
// concurrently with queries; in-flight scans finish on the partition
// they started with.
func (ex *Executor) SetShards(n int) {
	switch {
	case n <= 1:
		ex.partition.Store(nil)
	case ex.fact.Backing() != nil:
		// Backed fact tables get shard boundaries aligned to segment
		// multiples, with zone maps folded from the per-segment zones in
		// the manifest — no dense column materialization.
		ex.partition.Store(shard.BuildSegmented(ex.fact, n))
	default:
		ex.partition.Store(shard.Build(ex.fact, n))
	}
	// Per-(path,attr) shard zones are aligned to the old partition.
	ex.mu.Lock()
	ex.attrZone = make(map[attrColKey]*attrZones)
	ex.mu.Unlock()
}

// ExtendForAppend folds appended fact rows [p.NumRows(), newN) into the
// executor's partition, when one is set: the last shard absorbs the new
// rows with its zone maps widened from the fact columns. Everything
// else the executor memoizes — fact→dimension maps, attribute code and
// float vectors, per-shard attribute zones, per-constraint bitsets — is
// coverage-checked at fetch time and extends itself lazily, so this is
// the only eager step. Readers holding the old partition keep a
// consistent (shorter) prefix view.
func (ex *Executor) ExtendForAppend(newN int) {
	for {
		p := ex.partition.Load()
		if p == nil || p.NumRows() >= newN {
			return
		}
		if ex.partition.CompareAndSwap(p, p.Extend(ex.fact, newN)) {
			return
		}
	}
}

// Partition returns the current fact partition, or nil when running
// monolithically.
func (ex *Executor) Partition() *shard.Partition { return ex.partition.Load() }

// ShardCount returns the number of shards (0 when monolithic).
func (ex *Executor) ShardCount() int {
	if p := ex.partition.Load(); p != nil {
		return p.Count()
	}
	return 0
}

// noteShardPlan folds one scan's planning verdict into the counters and
// the request's wide event, when one rides the context.
func (ex *Executor) noteShardPlan(ctx context.Context, pl shard.Plan) {
	ex.stats.shardsScanned.Add(int64(pl.Scanned()))
	ex.stats.shardsPrunedZone.Add(int64(pl.PrunedZone))
	ex.stats.shardsPrunedBits.Add(int64(pl.PrunedBits))
	profile.FromContext(ctx).AddShards(pl.Scanned(), pl.PrunedZone, pl.PrunedBits)
}

// factRowsSharded gathers the constraint intersection shard by shard:
// the planner drops every shard whose zone maps miss a drill bound or
// in which some constraint bitset has no member, and the survivors'
// rows are emitted ascending via a masked word-parallel walk — no
// intermediate bitset clone, no full-universe scan. With no bounds the
// output is identical to intersecting the bitsets whole; with bounds,
// identical after the caller's row-level predicates run.
func (ex *Executor) factRowsSharded(ctx context.Context, p *shard.Partition, bounds []shard.Bound, sets []*bitset.Set) ([]int, error) {
	_, sp := telemetry.StartSpan(ctx, "shard_scan")
	defer sp.End()
	pl := p.Plan(bounds, sets)
	ex.noteShardPlan(ctx, pl)
	var rows []int
	done := ctx.Done()
	for _, si := range pl.Survivors {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sh := p.Shards()[si]
		if len(sets) == 0 {
			// Unconstrained scan: every row of the surviving shard.
			for r := sh.Lo; r < sh.Hi; r++ {
				rows = append(rows, r)
			}
			continue
		}
		rows = bitset.IntersectRangeAppend(rows, sh.Lo, sh.Hi, sets)
	}
	return rows, nil
}

// Bounds for predicates that restrict only one side.
var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// FilterFactNumericCtx keeps the fact rows whose numeric fact column
// satisfies pred, where [lo, hi] is a conservative closed-interval
// superset of pred's accepting set (every x with pred(x) true has
// lo <= x <= hi — the caller derives it from the predicate's operator).
// The scan reads the table's dense float view instead of boxed rows;
// under a partition, shards whose zone map misses [lo, hi] are skipped
// and the survivors scan in parallel, gathering in shard order. NULL
// (NaN) values never match. rows must be sorted ascending; the result
// is exactly the monolithic filter's.
func (ex *Executor) FilterFactNumericCtx(ctx context.Context, rows []int, col string, lo, hi float64, pred func(float64) bool) ([]int, error) {
	if ex.fact.Backing() != nil {
		return ex.filterFactNumericBacked(ctx, rows, col, lo, hi, pred)
	}
	vals := ex.fact.FloatColumn(col)
	p := ex.partition.Load()
	if p == nil || len(rows) == 0 {
		return filterByVals(ctx, rows, vals, pred)
	}
	_, sp := telemetry.StartSpan(ctx, "shard_scan")
	defer sp.End()
	pl := p.Plan([]shard.Bound{{Col: col, Lo: lo, Hi: hi}}, nil)
	ex.noteShardPlan(ctx, pl)
	return ex.filterGather(ctx, rows, vals, p, pl.Survivors, pred)
}

// filterFactNumericBacked is the segment-paged form of the fact-column
// numeric filter: the sorted row set is walked segment by segment
// through a cursor, and any segment whose zone map cannot overlap
// [lo, hi] is dropped wholesale — its rows never page in. The output is
// exactly the dense path's (pred only accepts values inside the bound,
// and NULL is NaN either way).
func (ex *Executor) filterFactNumericBacked(ctx context.Context, rows []int, col string, lo, hi float64, pred func(float64) bool) ([]int, error) {
	b := ex.fact.Backing()
	ss := b.SegmentSize()
	cur := relation.NewFloatCursor(ex.fact.FloatReader(col))
	var out []int
	done := ctx.Done()
	skippedZone := 0
	i := 0
	for i < len(rows) {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		si := rows[i] / ss
		segEnd := (si + 1) * ss
		if ov, has := b.SegmentZoneOverlaps(col, si, lo, hi); has && !ov {
			skippedZone++
			for i < len(rows) && rows[i] < segEnd {
				i++
			}
			continue
		}
		for i < len(rows) && rows[i] < segEnd {
			v := cur.At(rows[i])
			if !math.IsNaN(v) && pred(v) {
				out = append(out, rows[i])
			}
			i++
		}
	}
	b.NoteSkips(0, skippedZone)
	return out, nil
}

// FilterRowsNumericBoundCtx is FilterRowsNumericCtx with a declared
// bound interval: pred only accepts values in [lo, hi], which licenses
// skipping shards whose per-(path,attr) zone map misses the interval.
// The zone maps over the fact-aligned attribute column are built lazily
// on first use per partition and memoized alongside the column itself.
func (ex *Executor) FilterRowsNumericBoundCtx(ctx context.Context, rows []int, attr string, path schemagraph.JoinPath, lo, hi float64, pred func(float64) bool) ([]int, error) {
	if ex.g.DB().Table(path.Source).Schema().ColumnIndex(attr) < 0 {
		panic("olap: " + path.Source + " has no column " + attr)
	}
	vals := ex.attrFloats(attr, path)
	p := ex.partition.Load()
	if p == nil || len(rows) == 0 {
		return filterByVals(ctx, rows, vals, pred)
	}
	_, sp := telemetry.StartSpan(ctx, "shard_scan")
	defer sp.End()
	zones := ex.attrShardZones(attr, path, vals, p)
	pl := planZones(zones, p, lo, hi)
	ex.noteShardPlan(ctx, pl)
	return ex.filterGather(ctx, rows, vals, p, pl.Survivors, pred)
}

// planZones is the planner for fact-aligned dimension-attribute
// columns: survivors are the shards whose lazy zone map overlaps
// [lo, hi].
func planZones(zones []shard.ZoneMap, p *shard.Partition, lo, hi float64) shard.Plan {
	pl := shard.Plan{Survivors: make([]int, 0, len(zones))}
	for i, z := range zones {
		sh := p.Shards()[i]
		if sh.Lo >= sh.Hi {
			continue
		}
		if !z.Overlaps(lo, hi) {
			pl.PrunedZone++
			continue
		}
		pl.Survivors = append(pl.Survivors, i)
	}
	return pl
}

// attrZones is one memoized per-shard zone slice plus the row count it
// covers. SetShards clears the memo outright; Partition.Extend preserves
// every shard boundary except the last Hi, so an entry left short by a
// streaming append is brought up to date by folding just the appended
// rows — which all land in the last shard — into a copy of its zone.
type attrZones struct {
	zones []shard.ZoneMap
	upTo  int
}

// attrShardZones returns, memoized per partition lineage, the per-shard
// min/max of a fact-aligned attribute column, covering at least
// p.NumRows() rows.
func (ex *Executor) attrShardZones(attr string, path schemagraph.JoinPath, vals []float64, p *shard.Partition) []shard.ZoneMap {
	n := p.NumRows()
	key := attrColKey{path.Signature(), attr}
	ex.mu.RLock()
	e := ex.attrZone[key]
	ex.mu.RUnlock()
	if e != nil && e.upTo >= n {
		return e.zones
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	e = ex.attrZone[key]
	if e != nil && e.upTo >= n {
		return e.zones
	}
	if e == nil {
		e = &attrZones{zones: shard.ZonesOver(vals, p), upTo: n}
		ex.attrZone[key] = e
		return e.zones
	}
	zones := append([]shard.ZoneMap(nil), e.zones...)
	last := &zones[len(zones)-1]
	for r := e.upTo; r < n && r < len(vals); r++ {
		last.Observe(vals[r])
	}
	e = &attrZones{zones: zones, upTo: n}
	ex.attrZone[key] = e
	return e.zones
}

// filterByVals is the monolithic vectorized filter: one pass over the
// row set against a dense float column.
func filterByVals(ctx context.Context, rows []int, vals []float64, pred func(float64) bool) ([]int, error) {
	var out []int
	done := ctx.Done()
	for base := 0; base < len(rows); base += cancelCheckRows {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		end := min(base+cancelCheckRows, len(rows))
		for _, r := range rows[base:end] {
			v := vals[r]
			if !math.IsNaN(v) && pred(v) {
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// filterGather scans the surviving shards' row spans and concatenates
// matches in shard order. Large scans fan the survivors out across
// workers; since each shard's matches are exact row IDs, the gathered
// result is identical to the serial scan.
func (ex *Executor) filterGather(ctx context.Context, rows []int, vals []float64, p *shard.Partition, survivors []int, pred func(float64) bool) ([]int, error) {
	spans := shardSpans(rows, p, survivors)
	total := 0
	for _, sp := range spans {
		total += len(sp)
	}
	if total < ParallelRowThreshold() || len(spans) < 2 {
		ex.stats.serialScans.Add(1)
		profile.FromContext(ctx).AddKernelScan(false, 0, total)
		var out []int
		for _, span := range spans {
			matched, err := filterByVals(ctx, span, vals, pred)
			if err != nil {
				return nil, err
			}
			out = append(out, matched...)
		}
		return out, nil
	}
	ex.stats.parallelScans.Add(1)
	ex.stats.kernelChunks.Add(int64(len(spans)))
	profile.FromContext(ctx).AddKernelScan(true, len(spans), total)
	outs := make([][]int, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	sem := make(chan struct{}, kernelStripes)
	for i, span := range spans {
		if len(span) == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, span []int) {
			defer wg.Done()
			defer func() { <-sem }()
			outs[i], errs[i] = filterByVals(ctx, span, vals, pred)
		}(i, span)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []int
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}

// shardSpans slices the sorted row set into the per-survivor subsets by
// binary-searching the shard boundaries. Rows in pruned shards are
// dropped here — that is the scatter step's whole point.
func shardSpans(rows []int, p *shard.Partition, survivors []int) [][]int {
	spans := make([][]int, 0, len(survivors))
	cur := 0
	for _, si := range survivors {
		sh := p.Shards()[si]
		lo := cur + sort.SearchInts(rows[cur:], sh.Lo)
		hi := lo + sort.SearchInts(rows[lo:], sh.Hi)
		spans = append(spans, rows[lo:hi])
		cur = hi
	}
	return spans
}

// numericSeriesSharded extracts the series shard by shard: shards whose
// attribute zone is empty (every value NULL/unlinked) are pruned, the
// rest scan in parallel, and per-shard outputs concatenate in shard
// order — identical to the monolithic pass.
func (ex *Executor) numericSeriesSharded(ctx context.Context, p *shard.Partition, rows []int, attr string, path schemagraph.JoinPath, m Measure) ([]ValueMeasure, error) {
	vals := ex.attrFloats(attr, path)
	vec := measureVec(m)
	_, sp := telemetry.StartSpan(ctx, "shard_scan")
	defer sp.End()
	zones := ex.attrShardZones(attr, path, vals, p)
	pl := planZones(zones, p, negInf, posInf)
	ex.noteShardPlan(ctx, pl)
	spans := shardSpans(rows, p, pl.Survivors)
	outs := make([][]ValueMeasure, len(spans))
	errs := make([]error, len(spans))
	var wg sync.WaitGroup
	sem := make(chan struct{}, kernelStripes)
	for i, span := range spans {
		if len(span) == 0 {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, span []int) {
			defer wg.Done()
			defer func() { <-sem }()
			outs[i], errs[i] = seriesOver(ctx, span, vals, vec, m, ex.fact)
		}(i, span)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]ValueMeasure, 0, len(rows))
	for _, o := range outs {
		out = append(out, o...)
	}
	return out, nil
}
