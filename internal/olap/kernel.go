package olap

import (
	"context"
	"math"
	"runtime"
	"sync"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// The columnar execution kernels: tight loops over pre-extracted
// []int32 code vectors and []float64 measure columns, with a chunked
// parallel variant engaged for large row sets. They are pure execution
// strategy — every kernel produces results identical to the row-at-a-
// time reference path (see GroupByRef), modulo the float summation
// order of the parallel merge, which is deterministic for a fixed
// GOMAXPROCS because rows are chunked and merged in index order.
//
// Every kernel is cancellable: the scan loops are blocked into
// cancelCheckRows-row strides and consult ctx.Err() between strides,
// so a cancelled context stops a scan within one stride rather than
// after the full dataspace. When the context carries no cancellation
// (ctx.Done() == nil, e.g. context.Background()) the check short-
// circuits on a nil channel compare and the inner loops are the same
// tight code as before.

// parallelRowThreshold is the row count above which the fused
// scan+aggregate kernels fan out across GOMAXPROCS workers. Below it
// the goroutine and merge overhead outweighs the scan. Variable so
// tests can force either path.
var parallelRowThreshold = 16384

// maxKernelWorkers caps the fan-out; past a point extra workers only
// shred the cache.
const maxKernelWorkers = 16

// cancelCheckRows is the stride between ctx.Err() checks inside the
// scan kernels. At ~10ns/row a stride is a few tens of microseconds of
// work, so cancellation latency stays far below any request deadline
// while the check amortizes to well under the benchmark noise floor.
const cancelCheckRows = 8192

// kernelWorkers returns how many chunks a parallel scan over n rows
// should use (1 = run sequentially).
func kernelWorkers(n int) int {
	if n < parallelRowThreshold {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > maxKernelWorkers {
		w = maxKernelWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mergeInto folds src into dst. All five aggregation functions merge
// associatively over (sum, n, min, max), which is what makes the
// chunked parallel scan correct.
func (s *aggState) mergeInto(src *aggState) {
	s.sum += src.sum
	s.n += src.n
	if src.min < s.min {
		s.min = src.min
	}
	if src.max > s.max {
		s.max = src.max
	}
}

// measureVec resolves the measure's fact-aligned column, or nil when
// the measure only supports row-at-a-time evaluation (hand-built
// Measure literals).
func measureVec(m Measure) []float64 {
	if m.Vec == nil {
		return nil
	}
	return m.Vec()
}

// groupScan accumulates the measure over rows into one aggState per
// dictionary code, returning the dense state slice and a touched mask
// (a group is "touched" when any row carries its code, even if every
// measure value was NaN — matching the reference path, which creates a
// group state before evaluating the measure).
func (ex *Executor) groupScan(ctx context.Context, rows []int, codes []int32, ngroups int, m Measure) ([]aggState, []bool, error) {
	workers := kernelWorkers(len(rows))
	if workers == 1 {
		ex.stats.serialScans.Add(1)
		return ex.groupScanChunk(ctx, rows, codes, ngroups, m)
	}
	ex.stats.parallelScans.Add(1)
	ex.stats.kernelChunks.Add(int64(workers))
	states := make([][]aggState, workers)
	touched := make([][]bool, workers)
	errs := make([]error, workers)
	chunk := (len(rows) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			states[w], touched[w], errs[w] = ex.groupScanChunk(ctx, rows[lo:hi], codes, ngroups, m)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	// Merge partials in chunk order so the result is deterministic.
	out, outTouched := states[0], touched[0]
	for w := 1; w < workers; w++ {
		if states[w] == nil {
			continue
		}
		for g := range out {
			if touched[w][g] {
				outTouched[g] = true
				out[g].mergeInto(&states[w][g])
			}
		}
	}
	return out, outTouched, nil
}

// groupScanChunk is the sequential fused scan+aggregate kernel over one
// chunk of rows, checking for cancellation every cancelCheckRows rows.
func (ex *Executor) groupScanChunk(ctx context.Context, rows []int, codes []int32, ngroups int, m Measure) ([]aggState, []bool, error) {
	states := make([]aggState, ngroups)
	for g := range states {
		states[g] = newAggState()
	}
	touched := make([]bool, ngroups)
	done := ctx.Done()
	vec := measureVec(m)
	for base := 0; base < len(rows); base += cancelCheckRows {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		end := min(base+cancelCheckRows, len(rows))
		if vec != nil {
			for _, r := range rows[base:end] {
				c := codes[r]
				if c < 0 {
					continue
				}
				touched[c] = true
				states[c].add(vec[r])
			}
		} else {
			for _, r := range rows[base:end] {
				c := codes[r]
				if c < 0 {
					continue
				}
				touched[c] = true
				states[c].add(m.Eval(ex.fact.Row(r)))
			}
		}
	}
	return states, touched, nil
}

// scanAggregate is the fused single-group scan behind Aggregate.
func (ex *Executor) scanAggregate(ctx context.Context, rows []int, m Measure) (aggState, error) {
	workers := kernelWorkers(len(rows))
	if workers == 1 {
		ex.stats.serialScans.Add(1)
		return ex.scanAggregateChunk(ctx, rows, m)
	}
	ex.stats.parallelScans.Add(1)
	ex.stats.kernelChunks.Add(int64(workers))
	partial := make([]aggState, workers)
	errs := make([]error, workers)
	chunk := (len(rows) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		if lo >= hi {
			partial[w] = newAggState()
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w], errs[w] = ex.scanAggregateChunk(ctx, rows[lo:hi], m)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return aggState{}, err
		}
	}
	st := partial[0]
	for w := 1; w < workers; w++ {
		st.mergeInto(&partial[w])
	}
	return st, nil
}

func (ex *Executor) scanAggregateChunk(ctx context.Context, rows []int, m Measure) (aggState, error) {
	st := newAggState()
	done := ctx.Done()
	vec := measureVec(m)
	for base := 0; base < len(rows); base += cancelCheckRows {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return aggState{}, err
			}
		}
		end := min(base+cancelCheckRows, len(rows))
		if vec != nil {
			for _, r := range rows[base:end] {
				st.add(vec[r])
			}
		} else {
			for _, r := range rows[base:end] {
				st.add(m.Eval(ex.fact.Row(r)))
			}
		}
	}
	return st, nil
}

// attrColKey identifies a fact-aligned attribute column in the
// executor's memo: the join path (by signature) plus the attribute.
type attrColKey struct {
	path string
	attr string
}

// codeColumn is a fact-aligned dictionary-encoded attribute column:
// codes[factRow] indexes dict, or is -1 when the fact row has no linked
// dimension row or the attribute value is NULL.
type codeColumn struct {
	codes []int32
	dict  []relation.Value
}

// attrCodes returns, memoized, the fact-aligned code vector for the
// attribute at the far end of path: the composition of factToDim with
// the dimension table's dictionary-encoded column. This is what turns
// GroupBy into a scan over int32 codes.
func (ex *Executor) attrCodes(attr string, path schemagraph.JoinPath) ([]int32, []relation.Value) {
	key := attrColKey{path.Signature(), attr}
	ex.mu.RLock()
	cc := ex.attrCode[key]
	ex.mu.RUnlock()
	if cc != nil {
		return cc.codes, cc.dict
	}
	ex.stats.codeVecBuilds.Add(1)
	dimTable := ex.g.DB().Table(path.Source)
	dimCodes, dict := dimTable.DictColumn(attr)
	f2d := ex.factToDim(path)
	codes := make([]int32, len(f2d))
	for f, d := range f2d {
		if d < 0 {
			codes[f] = -1
		} else {
			codes[f] = dimCodes[d]
		}
	}
	cc = &codeColumn{codes: codes, dict: dict}
	ex.mu.Lock()
	ex.attrCode[key] = cc
	ex.mu.Unlock()
	return cc.codes, cc.dict
}

// attrFloats returns, memoized, the fact-aligned numeric column for the
// attribute at the far end of path: NaN where the fact row is unlinked
// or the attribute value is NULL or non-numeric.
func (ex *Executor) attrFloats(attr string, path schemagraph.JoinPath) []float64 {
	key := attrColKey{path.Signature(), attr}
	ex.mu.RLock()
	fc := ex.attrFloat[key]
	ex.mu.RUnlock()
	if fc != nil {
		return fc
	}
	ex.stats.floatColBuilds.Add(1)
	dimTable := ex.g.DB().Table(path.Source)
	dimFloats := dimTable.FloatColumn(attr)
	f2d := ex.factToDim(path)
	fc = make([]float64, len(f2d))
	for f, d := range f2d {
		if d < 0 {
			fc[f] = math.NaN()
		} else {
			fc[f] = dimFloats[d]
		}
	}
	ex.mu.Lock()
	ex.attrFloat[key] = fc
	ex.mu.Unlock()
	return fc
}
