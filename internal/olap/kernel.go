package olap

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/telemetry/profile"
)

// The columnar execution kernels: tight loops over pre-extracted
// []int32 code vectors and []float64 measure columns, with a striped
// parallel variant engaged for large row sets. They are pure execution
// strategy — every kernel produces results identical to the row-at-a-
// time reference path (see GroupByRef), modulo the float summation
// order of the stripe merge, which is canonical: a row set at or above
// the parallel threshold is always split into exactly kernelStripes
// contiguous stripes whose partials merge in stripe-index order,
// whether the stripes run on one goroutine or sixteen. The stripe grid
// is a function of the row count alone — never of GOMAXPROCS or of how
// many workers happened to be scheduled — so aggregate bytes are
// identical across core counts, and threshold calibration (see tune.go)
// only moves the serial/striped boundary, never how partials merge.
//
// Every kernel is cancellable: the scan loops are blocked into
// cancelCheckRows-row strides and consult ctx.Err() between strides,
// so a cancelled context stops a scan within one stride rather than
// after the full dataspace. When the context carries no cancellation
// (ctx.Done() == nil, e.g. context.Background()) the check short-
// circuits on a nil channel compare and the inner loops are the same
// tight code as before.

// kernelStripes is the fixed fan-out of a striped scan. It doubles as
// the worker-count cap: past a point extra workers only shred the
// cache, and a fixed stripe count is what keeps the merge order — and
// therefore the output bytes — independent of the machine.
const kernelStripes = 16

// defaultParallelRowThreshold is the factory row count above which the
// fused scan+aggregate kernels go striped. Below it the stripe states
// and goroutine handoff outweigh the scan. Overridable per process by
// SetParallelRowThreshold (the calibration pass measures the real
// crossover for the running GOMAXPROCS).
const defaultParallelRowThreshold = 8192

// parallelThreshold holds the live threshold behind an atomic so a
// load-time calibration pass may adjust it while tests (or a warm
// server) run scans concurrently.
var parallelThreshold atomic.Int64

func init() { parallelThreshold.Store(defaultParallelRowThreshold) }

// ParallelRowThreshold returns the row count at which scans go striped.
func ParallelRowThreshold() int { return int(parallelThreshold.Load()) }

// SetParallelRowThreshold overrides the striped-scan threshold for the
// whole process (it is machine tuning, like GOMAXPROCS, not a per-
// executor property). n <= 0 restores the factory default. Changing the
// threshold moves row sets between the serial and striped accumulation
// orders, so results for a given row set are byte-stable only for a
// fixed threshold — calibrate at startup, before serving queries.
func SetParallelRowThreshold(n int) {
	if n <= 0 {
		n = defaultParallelRowThreshold
	}
	parallelThreshold.Store(int64(n))
}

// cancelCheckRows is the stride between ctx.Err() checks inside the
// scan kernels. At ~10ns/row a stride is a few tens of microseconds of
// work, so cancellation latency stays far below any request deadline
// while the check amortizes to well under the benchmark noise floor.
const cancelCheckRows = 8192

// span is one stripe's half-open index range into a row set.
type span struct{ lo, hi int }

// stripeSpans splits n rows into exactly kernelStripes contiguous
// spans, the leading n%kernelStripes spans one row longer. The layout
// depends on n alone.
func stripeSpans(n int) []span {
	spans := make([]span, kernelStripes)
	base, rem := n/kernelStripes, n%kernelStripes
	lo := 0
	for i := range spans {
		hi := lo + base
		if i < rem {
			hi++
		}
		spans[i] = span{lo, hi}
		lo = hi
	}
	return spans
}

// scanWorkers returns how many goroutines a striped scan should use: up
// to one per stripe, never more than GOMAXPROCS (1 means the stripes
// run inline, in order, on the calling goroutine).
func scanWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w > kernelStripes {
		w = kernelStripes
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mergeInto folds src into dst. All five aggregation functions merge
// associatively over (sum, n, min, max), which is what makes the
// striped scan correct.
func (s *aggState) mergeInto(src *aggState) {
	s.sum += src.sum
	s.n += src.n
	if src.min < s.min {
		s.min = src.min
	}
	if src.max > s.max {
		s.max = src.max
	}
}

// measureVec resolves the measure's fact-aligned column, or nil when
// the measure only supports row-at-a-time evaluation (hand-built
// Measure literals) or reads a backed table (Seg path).
func measureVec(m Measure) []float64 {
	if m.Vec == nil {
		return nil
	}
	return m.Vec()
}

// measureCursor returns a fresh segment cursor for a measure without a
// dense vector, or nil when the measure has no segmented form. Cursors
// are not safe for concurrent use — the kernels take one per chunk.
func measureCursor(m Measure) *relation.FloatCursor {
	if m.Seg == nil {
		return nil
	}
	return relation.NewFloatCursor(m.Seg())
}

// runStripes executes one body per stripe index, inline when workers is
// 1 and over a worker pool pulling stripes from an atomic counter
// otherwise. The body for stripe i must be independent of every other
// stripe; callers merge the per-stripe partials in index order.
func runStripes(nstripes, workers int, body func(i int)) {
	if workers <= 1 {
		for i := 0; i < nstripes; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nstripes {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// groupScan accumulates the measure over rows into one aggState per
// dictionary code, returning the dense state slice and a touched mask
// (a group is "touched" when any row carries its code, even if every
// measure value was NaN — matching the reference path, which creates a
// group state before evaluating the measure).
func (ex *Executor) groupScan(ctx context.Context, rows []int, codes []int32, ngroups int, m Measure) ([]aggState, []bool, error) {
	if len(rows) < ParallelRowThreshold() {
		ex.stats.serialScans.Add(1)
		profile.FromContext(ctx).AddKernelScan(false, 0, len(rows))
		return ex.groupScanChunk(ctx, rows, codes, ngroups, m)
	}
	spans := stripeSpans(len(rows))
	workers := scanWorkers()
	if workers == 1 {
		ex.stats.serialScans.Add(1)
		profile.FromContext(ctx).AddKernelScan(false, 0, len(rows))
	} else {
		ex.stats.parallelScans.Add(1)
		ex.stats.kernelChunks.Add(int64(len(spans)))
		profile.FromContext(ctx).AddKernelScan(true, len(spans), len(rows))
	}
	states := make([][]aggState, len(spans))
	touched := make([][]bool, len(spans))
	errs := make([]error, len(spans))
	runStripes(len(spans), workers, func(i int) {
		sp := spans[i]
		states[i], touched[i], errs[i] = ex.groupScanChunk(ctx, rows[sp.lo:sp.hi], codes, ngroups, m)
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	// Merge partials in stripe order so the result is deterministic —
	// the same bytes no matter how many workers ran the stripes.
	out, outTouched := states[0], touched[0]
	for w := 1; w < len(spans); w++ {
		for g := range out {
			if touched[w][g] {
				outTouched[g] = true
				out[g].mergeInto(&states[w][g])
			}
		}
	}
	return out, outTouched, nil
}

// groupScanChunk is the sequential fused scan+aggregate kernel over one
// stripe of rows, checking for cancellation every cancelCheckRows rows.
func (ex *Executor) groupScanChunk(ctx context.Context, rows []int, codes []int32, ngroups int, m Measure) ([]aggState, []bool, error) {
	states := make([]aggState, ngroups)
	for g := range states {
		states[g] = newAggState()
	}
	touched := make([]bool, ngroups)
	done := ctx.Done()
	vec := measureVec(m)
	var cur *relation.FloatCursor
	if vec == nil && !m.constOne {
		cur = measureCursor(m)
	}
	for base := 0; base < len(rows); base += cancelCheckRows {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
		}
		end := min(base+cancelCheckRows, len(rows))
		switch {
		case vec != nil:
			for _, r := range rows[base:end] {
				c := codes[r]
				if c < 0 {
					continue
				}
				touched[c] = true
				states[c].add(vec[r])
			}
		case m.constOne:
			for _, r := range rows[base:end] {
				c := codes[r]
				if c < 0 {
					continue
				}
				touched[c] = true
				states[c].add(1)
			}
		case cur != nil:
			for _, r := range rows[base:end] {
				c := codes[r]
				if c < 0 {
					continue
				}
				touched[c] = true
				states[c].add(cur.At(r))
			}
		default:
			for _, r := range rows[base:end] {
				c := codes[r]
				if c < 0 {
					continue
				}
				touched[c] = true
				states[c].add(m.Eval(ex.fact.Row(r)))
			}
		}
	}
	return states, touched, nil
}

// scanAggregate is the fused single-group scan behind Aggregate.
func (ex *Executor) scanAggregate(ctx context.Context, rows []int, m Measure) (aggState, error) {
	if len(rows) < ParallelRowThreshold() {
		ex.stats.serialScans.Add(1)
		profile.FromContext(ctx).AddKernelScan(false, 0, len(rows))
		return ex.scanAggregateChunk(ctx, rows, m)
	}
	spans := stripeSpans(len(rows))
	workers := scanWorkers()
	if workers == 1 {
		ex.stats.serialScans.Add(1)
		profile.FromContext(ctx).AddKernelScan(false, 0, len(rows))
	} else {
		ex.stats.parallelScans.Add(1)
		ex.stats.kernelChunks.Add(int64(len(spans)))
		profile.FromContext(ctx).AddKernelScan(true, len(spans), len(rows))
	}
	partial := make([]aggState, len(spans))
	errs := make([]error, len(spans))
	runStripes(len(spans), workers, func(i int) {
		sp := spans[i]
		partial[i], errs[i] = ex.scanAggregateChunk(ctx, rows[sp.lo:sp.hi], m)
	})
	for _, err := range errs {
		if err != nil {
			return aggState{}, err
		}
	}
	st := partial[0]
	for w := 1; w < len(partial); w++ {
		st.mergeInto(&partial[w])
	}
	return st, nil
}

func (ex *Executor) scanAggregateChunk(ctx context.Context, rows []int, m Measure) (aggState, error) {
	st := newAggState()
	done := ctx.Done()
	vec := measureVec(m)
	var cur *relation.FloatCursor
	if vec == nil && !m.constOne {
		cur = measureCursor(m)
	}
	for base := 0; base < len(rows); base += cancelCheckRows {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return aggState{}, err
			}
		}
		end := min(base+cancelCheckRows, len(rows))
		switch {
		case vec != nil:
			for _, r := range rows[base:end] {
				st.add(vec[r])
			}
		case m.constOne:
			for range rows[base:end] {
				st.add(1)
			}
		case cur != nil:
			for _, r := range rows[base:end] {
				st.add(cur.At(r))
			}
		default:
			for _, r := range rows[base:end] {
				st.add(m.Eval(ex.fact.Row(r)))
			}
		}
	}
	return st, nil
}

// attrColKey identifies a fact-aligned attribute column in the
// executor's memo: the join path (by signature) plus the attribute.
type attrColKey struct {
	path string
	attr string
}

// codeColumn is a fact-aligned dictionary-encoded attribute column:
// codes[factRow] indexes dict, or is -1 when the fact row has no linked
// dimension row or the attribute value is NULL.
type codeColumn struct {
	codes []int32
	dict  []relation.Value
}

// attrCodes returns, memoized, the fact-aligned code vector for the
// attribute at the far end of path: the composition of factToDim with
// the dimension table's dictionary-encoded column. This is what turns
// GroupBy into a scan over int32 codes. The vector always covers the
// fact row count observed at call time: a memo left short by a
// streaming append is extended over just the appended rows
// (copy-on-grow), so kernels never index past a code vector with a row
// set derived from a newer snapshot.
func (ex *Executor) attrCodes(attr string, path schemagraph.JoinPath) ([]int32, []relation.Value) {
	key := attrColKey{path.Signature(), attr}
	for {
		n := ex.fact.Len()
		ex.mu.RLock()
		cc := ex.attrCode[key]
		ex.mu.RUnlock()
		if cc != nil && len(cc.codes) >= n {
			return cc.codes, cc.dict
		}
		ex.stats.codeVecBuilds.Add(1)
		dimTable := ex.g.DB().Table(path.Source)
		dimCodes, dict := dimTable.DictColumn(attr)
		f2d := ex.factToDim(path) // covers ≥ n
		lo := 0
		if cc != nil {
			lo = len(cc.codes)
		}
		tail := make([]int32, n-lo)
		for i := range tail {
			if d := f2d[lo+i]; d < 0 {
				tail[i] = -1
			} else {
				tail[i] = dimCodes[d]
			}
		}
		ex.mu.Lock()
		prev := ex.attrCode[key]
		if (prev == nil) != (cc == nil) || (prev != nil && len(prev.codes) != lo) {
			ex.mu.Unlock()
			continue // raced with another builder; retry against its result
		}
		var merged []int32
		if cc != nil {
			merged = append(cc.codes[:lo:lo], tail...)
		} else {
			merged = tail
		}
		cc = &codeColumn{codes: merged, dict: dict}
		ex.attrCode[key] = cc
		ex.mu.Unlock()
		return cc.codes, cc.dict
	}
}

// attrFloats returns, memoized, the fact-aligned numeric column for the
// attribute at the far end of path: NaN where the fact row is unlinked
// or the attribute value is NULL or non-numeric. Coverage-complete like
// attrCodes: always at least the fact row count observed at call time.
func (ex *Executor) attrFloats(attr string, path schemagraph.JoinPath) []float64 {
	key := attrColKey{path.Signature(), attr}
	for {
		n := ex.fact.Len()
		ex.mu.RLock()
		fc := ex.attrFloat[key]
		ex.mu.RUnlock()
		if fc != nil && len(fc) >= n {
			return fc
		}
		ex.stats.floatColBuilds.Add(1)
		dimTable := ex.g.DB().Table(path.Source)
		dimFloats := dimTable.FloatColumn(attr)
		f2d := ex.factToDim(path) // covers ≥ n
		lo := len(fc)
		tail := make([]float64, n-lo)
		for i := range tail {
			if d := f2d[lo+i]; d < 0 {
				tail[i] = math.NaN()
			} else {
				tail[i] = dimFloats[d]
			}
		}
		ex.mu.Lock()
		prev := ex.attrFloat[key]
		if len(prev) != lo {
			ex.mu.Unlock()
			continue // raced with another builder; retry against its result
		}
		merged := append(prev[:lo:lo], tail...)
		ex.attrFloat[key] = merged
		ex.mu.Unlock()
		return merged
	}
}
