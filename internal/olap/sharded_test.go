package olap

import (
	"context"
	"math"
	"reflect"
	"testing"

	"kdap/internal/relation"
)

// ebizConstraints returns a few representative constraint sets: single
// hit group, intersecting hit groups, and an empty intersection.
func ebizConstraints(t *testing.T) map[string][]Constraint {
	t.Helper()
	pgPath := ebiz.Graph.JoinPaths("PGROUP")[0]
	lcd := Constraint{Table: "PGROUP", Attr: "GroupName",
		Values: []relation.Value{relation.String("LCD Projectors")}, Path: pgPath}
	tv := Constraint{Table: "PGROUP", Attr: "GroupName",
		Values: []relation.Value{relation.String("Televisions")}, Path: pgPath}
	city := Constraint{Table: "LOC", Attr: "City",
		Values: []relation.Value{relation.String("San Jose")}, Path: pathTo(t, "LOC", "Store")}
	return map[string][]Constraint{
		"single":    {lcd},
		"intersect": {lcd, city},
		"empty":     {lcd, tv}, // a fact row has exactly one product group
	}
}

// The sharded gather must reproduce the monolithic intersection exactly
// (same rows, same order) while actually consulting the planner.
func TestShardedFactRowsMatchesMonolithic(t *testing.T) {
	mono := NewExecutor(ebiz.Graph)
	shd := NewExecutor(ebiz.Graph)
	shd.SetShards(16)
	if shd.ShardCount() != 16 {
		t.Fatalf("ShardCount = %d", shd.ShardCount())
	}
	for name, cs := range ebizConstraints(t) {
		want := mono.FactRows(cs)
		got := shd.FactRows(cs)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: sharded %d rows, monolithic %d rows", name, len(got), len(want))
		}
	}
	st := shd.Stats()
	if st.ShardsScanned == 0 {
		t.Error("sharded path never consulted the planner")
	}
	if st.ShardsPrunedBits == 0 {
		t.Error("no shard was bit-pruned — the empty intersection should prune everything")
	}
	if mono.Stats().ShardsScanned != 0 {
		t.Error("monolithic executor touched shard counters")
	}
}

// A drill bound on the ingest-clustered ItemKey column must skip the
// shards whose zone maps miss the bound — exactly the ones the layout
// predicts — and still return precisely the monolithic filter's rows.
func TestShardedFilterFactNumericPrunesExactly(t *testing.T) {
	const shards = 16
	shd := NewExecutor(ebiz.Graph)
	shd.SetShards(shards)
	mono := NewExecutor(ebiz.Graph)

	all := make([]int, shd.FactLen())
	for i := range all {
		all[i] = i
	}
	// ItemKey = row+1 over 4000 rows; 16 shards of 250 rows. ItemKey>3500
	// has bound [3500, +Inf]: shards 0..12 (zone max <= 3250) prune,
	// shard 13 (zone [3251,3500]) survives the closed-interval check but
	// contributes no rows, shards 14..15 match.
	pred := func(x float64) bool { return x > 3500 }
	want, err := mono.FilterFactNumericCtx(context.Background(), all, "ItemKey", 3500, math.Inf(1), pred)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shd.FilterFactNumericCtx(context.Background(), all, "ItemKey", 3500, math.Inf(1), pred)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded filter: %d rows, monolithic %d", len(got), len(want))
	}
	if len(got) != 500 {
		t.Fatalf("ItemKey>3500 over 4000 rows should keep 500, got %d", len(got))
	}
	st := shd.Stats()
	if st.ShardsScanned != 3 || st.ShardsPrunedZone != 13 {
		t.Fatalf("scanned=%d prunedZone=%d, want 3 scanned / 13 zone-pruned",
			st.ShardsScanned, st.ShardsPrunedZone)
	}
	if mono.Stats().ShardsPrunedZone != 0 {
		t.Error("monolithic executor reported pruning")
	}
}

// The parallel gather must agree with the serial one: force the fan-out
// by dropping the threshold.
func TestShardedFilterGatherParallelMatchesSerial(t *testing.T) {
	SetParallelRowThreshold(64)
	defer SetParallelRowThreshold(0)

	shd := NewExecutor(ebiz.Graph)
	shd.SetShards(8)
	mono := NewExecutor(ebiz.Graph)
	all := make([]int, shd.FactLen())
	for i := range all {
		all[i] = i
	}
	pred := func(x float64) bool { return x >= 50 }
	want, _ := mono.FilterFactNumericCtx(context.Background(), all, "UnitPrice", 50, math.Inf(1), pred)
	got, _ := shd.FilterFactNumericCtx(context.Background(), all, "UnitPrice", 50, math.Inf(1), pred)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel gather: %d rows vs %d", len(got), len(want))
	}
	if len(want) == 0 {
		t.Fatal("UnitPrice>=50 matched nothing — bad fixture")
	}
}

// Dimension-attribute filtering through a join path: the bound-aware
// variant and the opaque-predicate wrapper must both match monolithic.
func TestShardedFilterRowsNumericBound(t *testing.T) {
	shd := NewExecutor(ebiz.Graph)
	shd.SetShards(8)
	mono := NewExecutor(ebiz.Graph)
	path := pathTo(t, "DATE", "Date")
	rows := mono.FactRows(nil)
	pred := func(x float64) bool { return x == 2006 }
	want, err := mono.FilterRowsNumericCtx(context.Background(), rows, "Year", path, pred)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shd.FilterRowsNumericBoundCtx(context.Background(), rows, "Year", path, 2006, 2006, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bound filter: %d rows vs %d", len(got), len(want))
	}
	got2, err := shd.FilterRowsNumericCtx(context.Background(), rows, "Year", path, pred)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Fatal("opaque-pred wrapper diverged")
	}
	if len(want) == 0 {
		t.Fatal("Year=2006 matched nothing — bad fixture")
	}
}

// The sharded numeric-series scatter must concatenate to exactly the
// monolithic series.
func TestShardedNumericSeriesMatches(t *testing.T) {
	SetParallelRowThreshold(64)
	defer SetParallelRowThreshold(0)

	shd := NewExecutor(ebiz.Graph)
	shd.SetShards(8)
	mono := NewExecutor(ebiz.Graph)
	path := pathTo(t, "DATE", "Date")
	rows := mono.FactRows(nil)
	m := ProductMeasure(ebiz.DB.Table("TRANSITEM"), "rev", "UnitPrice", "Quantity")
	want, err := mono.NumericSeriesCtx(context.Background(), rows, "Year", path, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := shd.NumericSeriesCtx(context.Background(), rows, "Year", path, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded series: %d pairs vs %d", len(got), len(want))
	}
}

func TestSetShardsToggle(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	if ex.Partition() != nil || ex.ShardCount() != 0 {
		t.Fatal("fresh executor should be monolithic")
	}
	ex.SetShards(4)
	if ex.Partition() == nil || ex.ShardCount() != 4 {
		t.Fatal("SetShards(4) did not partition")
	}
	ex.SetShards(1)
	if ex.Partition() != nil {
		t.Fatal("SetShards(1) should restore the monolithic scan")
	}
}
