package olap

import (
	"fmt"
	"sort"
	"strings"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// PivotTable is a two-dimensional cross-tabulation of a sub-dataspace:
// rows partitioned by one attribute, columns by another, each cell the
// aggregate of the facts falling in both groups. Pivot completes the
// OLAP navigation set the paper lists in §2 (slice-dice, drill-down,
// roll-up, pivot).
type PivotTable struct {
	RowAttr, ColAttr string
	RowKeys, ColKeys []relation.Value
	// Cells[i][j] aggregates the facts with RowKeys[i] and ColKeys[j];
	// missing combinations hold 0 for Sum/Count (NaN would complicate
	// rendering; Present distinguishes true zeros).
	Cells   [][]float64
	Present [][]bool
	// RowTotals / ColTotals / Grand aggregate each margin.
	RowTotals []float64
	ColTotals []float64
	Grand     float64
}

// Pivot cross-tabulates the given fact rows by two attributes reached
// through their join paths.
func (ex *Executor) Pivot(rows []int, rowAttr string, rowPath schemagraph.JoinPath,
	colAttr string, colPath schemagraph.JoinPath, m Measure, agg Agg) *PivotTable {

	rowTable := ex.g.DB().Table(rowPath.Source)
	colTable := ex.g.DB().Table(colPath.Source)
	ri := rowTable.Schema().ColumnIndex(rowAttr)
	ci := colTable.Schema().ColumnIndex(colAttr)
	if ri < 0 || ci < 0 {
		panic(fmt.Sprintf("olap: pivot attrs %q/%q missing", rowAttr, colAttr))
	}
	rf2d := ex.factToDim(rowPath)
	cf2d := ex.factToDim(colPath)

	type cellKey struct{ r, c relation.Value }
	states := make(map[cellKey]*aggState)
	rowSet := map[relation.Value]bool{}
	colSet := map[relation.Value]bool{}
	for _, fr := range rows {
		rd, cd := rf2d[fr], cf2d[fr]
		if rd < 0 || cd < 0 {
			continue
		}
		rv := rowTable.Row(int(rd))[ri]
		cv := colTable.Row(int(cd))[ci]
		if rv.IsNull() || cv.IsNull() {
			continue
		}
		rowSet[rv] = true
		colSet[cv] = true
		k := cellKey{rv, cv}
		st := states[k]
		if st == nil {
			s := newAggState()
			st = &s
			states[k] = st
		}
		st.add(m.Eval(ex.fact.Row(fr)))
	}

	sortVals := func(set map[relation.Value]bool) []relation.Value {
		out := make([]relation.Value, 0, len(set))
		for v := range set {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
		return out
	}
	pt := &PivotTable{
		RowAttr: rowAttr, ColAttr: colAttr,
		RowKeys: sortVals(rowSet), ColKeys: sortVals(colSet),
	}
	pt.Cells = make([][]float64, len(pt.RowKeys))
	pt.Present = make([][]bool, len(pt.RowKeys))
	pt.RowTotals = make([]float64, len(pt.RowKeys))
	pt.ColTotals = make([]float64, len(pt.ColKeys))
	grand := newAggState()
	for i, rv := range pt.RowKeys {
		pt.Cells[i] = make([]float64, len(pt.ColKeys))
		pt.Present[i] = make([]bool, len(pt.ColKeys))
		rowState := newAggState()
		for j, cv := range pt.ColKeys {
			if st, ok := states[cellKey{rv, cv}]; ok {
				pt.Cells[i][j] = st.final(agg)
				pt.Present[i][j] = true
				rowState.sum += st.sum
				rowState.n += st.n
				if st.min < rowState.min {
					rowState.min = st.min
				}
				if st.max > rowState.max {
					rowState.max = st.max
				}
			}
		}
		pt.RowTotals[i] = rowState.final(agg)
		grand.sum += rowState.sum
		grand.n += rowState.n
		if rowState.min < grand.min {
			grand.min = rowState.min
		}
		if rowState.max > grand.max {
			grand.max = rowState.max
		}
	}
	for j, cv := range pt.ColKeys {
		colState := newAggState()
		for _, rv := range pt.RowKeys {
			if st, ok := states[cellKey{rv, cv}]; ok {
				colState.sum += st.sum
				colState.n += st.n
				if st.min < colState.min {
					colState.min = st.min
				}
				if st.max > colState.max {
					colState.max = st.max
				}
			}
		}
		pt.ColTotals[j] = colState.final(agg)
	}
	pt.Grand = grand.final(agg)
	return pt
}

// String renders the pivot as an aligned text table with margins.
func (pt *PivotTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", pt.RowAttr+" \\ "+pt.ColAttr)
	for _, cv := range pt.ColKeys {
		fmt.Fprintf(&b, " %14s", truncate(cv.Text(), 14))
	}
	fmt.Fprintf(&b, " %14s\n", "TOTAL")
	for i, rv := range pt.RowKeys {
		fmt.Fprintf(&b, "%-20s", truncate(rv.Text(), 20))
		for j := range pt.ColKeys {
			if pt.Present[i][j] {
				fmt.Fprintf(&b, " %14.2f", pt.Cells[i][j])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		fmt.Fprintf(&b, " %14.2f\n", pt.RowTotals[i])
	}
	fmt.Fprintf(&b, "%-20s", "TOTAL")
	for j := range pt.ColKeys {
		fmt.Fprintf(&b, " %14.2f", pt.ColTotals[j])
	}
	fmt.Fprintf(&b, " %14.2f\n", pt.Grand)
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
