package olap

import (
	"fmt"
	"sort"
	"strings"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

// PivotTable is a two-dimensional cross-tabulation of a sub-dataspace:
// rows partitioned by one attribute, columns by another, each cell the
// aggregate of the facts falling in both groups. Pivot completes the
// OLAP navigation set the paper lists in §2 (slice-dice, drill-down,
// roll-up, pivot).
type PivotTable struct {
	RowAttr, ColAttr string
	RowKeys, ColKeys []relation.Value
	// Cells[i][j] aggregates the facts with RowKeys[i] and ColKeys[j];
	// missing combinations hold 0 for Sum/Count (NaN would complicate
	// rendering; Present distinguishes true zeros).
	Cells   [][]float64
	Present [][]bool
	// RowTotals / ColTotals / Grand aggregate each margin.
	RowTotals []float64
	ColTotals []float64
	Grand     float64
}

// Pivot cross-tabulates the given fact rows by two attributes reached
// through their join paths.
func (ex *Executor) Pivot(rows []int, rowAttr string, rowPath schemagraph.JoinPath,
	colAttr string, colPath schemagraph.JoinPath, m Measure, agg Agg) *PivotTable {

	rowTable := ex.g.DB().Table(rowPath.Source)
	colTable := ex.g.DB().Table(colPath.Source)
	if rowTable.Schema().ColumnIndex(rowAttr) < 0 || colTable.Schema().ColumnIndex(colAttr) < 0 {
		panic(fmt.Sprintf("olap: pivot attrs %q/%q missing", rowAttr, colAttr))
	}
	// Columnar scan: both axes read fact-aligned dictionary codes, so
	// the cell key is a pair of int32s instead of two boxed Values.
	rCodes, rDict := ex.attrCodes(rowAttr, rowPath)
	cCodes, cDict := ex.attrCodes(colAttr, colPath)
	vec := measureVec(m)

	cellOf := func(rc, cc int32) int64 { return int64(rc)<<32 | int64(uint32(cc)) }
	states := make(map[int64]*aggState)
	rowSeen := make([]bool, len(rDict))
	colSeen := make([]bool, len(cDict))
	for _, fr := range rows {
		rc, cc := rCodes[fr], cCodes[fr]
		if rc < 0 || cc < 0 {
			continue
		}
		rowSeen[rc] = true
		colSeen[cc] = true
		k := cellOf(rc, cc)
		st := states[k]
		if st == nil {
			s := newAggState()
			st = &s
			states[k] = st
		}
		if vec != nil {
			st.add(vec[fr])
		} else {
			st.add(m.Eval(ex.fact.Row(fr)))
		}
	}

	// Order both axes by attribute value; keep the codes alongside so
	// cell lookups stay integer-keyed.
	sortCodes := func(seen []bool, dict []relation.Value) ([]relation.Value, []int32) {
		codes := make([]int32, 0, len(seen))
		for c, ok := range seen {
			if ok {
				codes = append(codes, int32(c))
			}
		}
		sort.Slice(codes, func(i, j int) bool {
			return dict[codes[i]].Compare(dict[codes[j]]) < 0
		})
		vals := make([]relation.Value, len(codes))
		for i, c := range codes {
			vals[i] = dict[c]
		}
		return vals, codes
	}
	rowKeys, rowCodes := sortCodes(rowSeen, rDict)
	colKeys, colCodes := sortCodes(colSeen, cDict)
	pt := &PivotTable{
		RowAttr: rowAttr, ColAttr: colAttr,
		RowKeys: rowKeys, ColKeys: colKeys,
	}
	pt.Cells = make([][]float64, len(pt.RowKeys))
	pt.Present = make([][]bool, len(pt.RowKeys))
	pt.RowTotals = make([]float64, len(pt.RowKeys))
	pt.ColTotals = make([]float64, len(pt.ColKeys))
	grand := newAggState()
	for i, rc := range rowCodes {
		pt.Cells[i] = make([]float64, len(pt.ColKeys))
		pt.Present[i] = make([]bool, len(pt.ColKeys))
		rowState := newAggState()
		for j, cc := range colCodes {
			if st, ok := states[cellOf(rc, cc)]; ok {
				pt.Cells[i][j] = st.final(agg)
				pt.Present[i][j] = true
				rowState.mergeInto(st)
			}
		}
		pt.RowTotals[i] = rowState.final(agg)
		grand.mergeInto(&rowState)
	}
	for j, cc := range colCodes {
		colState := newAggState()
		for _, rc := range rowCodes {
			if st, ok := states[cellOf(rc, cc)]; ok {
				colState.mergeInto(st)
			}
		}
		pt.ColTotals[j] = colState.final(agg)
	}
	pt.Grand = grand.final(agg)
	return pt
}

// String renders the pivot as an aligned text table with margins.
func (pt *PivotTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s", pt.RowAttr+" \\ "+pt.ColAttr)
	for _, cv := range pt.ColKeys {
		fmt.Fprintf(&b, " %14s", truncate(cv.Text(), 14))
	}
	fmt.Fprintf(&b, " %14s\n", "TOTAL")
	for i, rv := range pt.RowKeys {
		fmt.Fprintf(&b, "%-20s", truncate(rv.Text(), 20))
		for j := range pt.ColKeys {
			if pt.Present[i][j] {
				fmt.Fprintf(&b, " %14.2f", pt.Cells[i][j])
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		fmt.Fprintf(&b, " %14.2f\n", pt.RowTotals[i])
	}
	fmt.Fprintf(&b, "%-20s", "TOTAL")
	for j := range pt.ColKeys {
		fmt.Fprintf(&b, " %14.2f", pt.ColTotals[j])
	}
	fmt.Fprintf(&b, " %14.2f\n", pt.Grand)
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
