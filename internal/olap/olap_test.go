package olap

import (
	"math"
	"testing"
	"testing/quick"

	"kdap/internal/dataset"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
)

var ebiz = dataset.EBiz() // shared read-only warehouse across tests

func revenue(t *testing.T) Measure {
	t.Helper()
	return ProductMeasure(ebiz.DB.Table("TRANSITEM"), "revenue", "UnitPrice", "Quantity")
}

func pathTo(t *testing.T, table, role string) schemagraph.JoinPath {
	t.Helper()
	p, ok := ebiz.Graph.PathFromFact(table, role)
	if !ok {
		t.Fatalf("no path from %s (%s)", table, role)
	}
	return p
}

func TestAggString(t *testing.T) {
	names := map[Agg]string{Sum: "SUM", Count: "COUNT", Avg: "AVG", Min: "MIN", Max: "MAX"}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%v.String() = %q", int(a), a.String())
		}
	}
	if Agg(42).String() == "" {
		t.Error("unknown agg should render")
	}
}

func TestMeasureConstructors(t *testing.T) {
	fact := ebiz.DB.Table("TRANSITEM")
	qty := ColumnMeasure(fact, "Quantity")
	row := fact.Row(0)
	if qty.Eval(row) != row[fact.Schema().ColumnIndex("Quantity")].AsFloat() {
		t.Error("ColumnMeasure wrong")
	}
	rev := ProductMeasure(fact, "rev", "UnitPrice", "Quantity")
	want := row[fact.Schema().ColumnIndex("UnitPrice")].AsFloat() *
		row[fact.Schema().ColumnIndex("Quantity")].AsFloat()
	if rev.Eval(row) != want {
		t.Error("ProductMeasure wrong")
	}
	if CountMeasure().Eval(row) != 1 {
		t.Error("CountMeasure wrong")
	}
	for name, fn := range map[string]func(){
		"ColumnMeasure":  func() { ColumnMeasure(fact, "nope") },
		"ProductMeasure": func() { ProductMeasure(fact, "x", "nope", "Quantity") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad column should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFactRowsNoConstraints(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	rows := ex.FactRows(nil)
	if len(rows) != ex.FactLen() {
		t.Errorf("full dataspace = %d rows, want %d", len(rows), ex.FactLen())
	}
}

// Slicing by product group must agree with a brute-force join.
func TestFactRowsSingleConstraintMatchesBruteForce(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	paths := ebiz.Graph.JoinPaths("PGROUP")
	if len(paths) != 1 {
		t.Fatal("PGROUP path count")
	}
	val := relation.String("LCD Projectors")
	rows := ex.FactRows([]Constraint{{
		Table: "PGROUP", Attr: "GroupName", Values: []relation.Value{val}, Path: paths[0],
	}})

	// Brute force: find group key, products in group, facts with product.
	pg := ebiz.DB.Table("PGROUP")
	gk := pg.Row(pg.Lookup("GroupName", val)[0])[pg.Schema().ColumnIndex("PGroupKey")]
	prod := ebiz.DB.Table("PRODUCT")
	prodKeys := map[relation.Value]bool{}
	for _, pr := range prod.Lookup("PGroupKey", gk) {
		prodKeys[prod.Row(pr)[prod.Schema().ColumnIndex("ProductKey")]] = true
	}
	fact := ebiz.DB.Table("TRANSITEM")
	want := fact.Filter(func(row []relation.Value) bool {
		return prodKeys[row[fact.Schema().ColumnIndex("ProductKey")]]
	})
	if len(rows) != len(want) {
		t.Fatalf("semijoin %d rows, brute force %d", len(rows), len(want))
	}
	for i := range rows {
		if rows[i] != want[i] {
			t.Fatalf("row mismatch at %d: %d vs %d", i, rows[i], want[i])
		}
	}
	if len(rows) == 0 {
		t.Fatal("LCD Projectors slice is empty — dataset skew missing")
	}
}

// Buyer and Seller paths from the same city must slice different subspaces.
func TestFactRowsRoleMatters(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	var buyer, seller, store schemagraph.JoinPath
	for _, p := range ebiz.Graph.JoinPaths("LOC") {
		switch p.Role {
		case "Buyer":
			buyer = p
		case "Seller":
			seller = p
		case "Store":
			store = p
		}
	}
	val := []relation.Value{relation.String("Columbus")}
	rb := ex.FactRows([]Constraint{{Table: "LOC", Attr: "City", Values: val, Path: buyer}})
	rs := ex.FactRows([]Constraint{{Table: "LOC", Attr: "City", Values: val, Path: seller}})
	rst := ex.FactRows([]Constraint{{Table: "LOC", Attr: "City", Values: val, Path: store}})
	if len(rb) == 0 || len(rs) == 0 || len(rst) == 0 {
		t.Fatalf("empty slices: buyer %d seller %d store %d", len(rb), len(rs), len(rst))
	}
	eq := func(a, b []int) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if eq(rb, rs) || eq(rb, rst) {
		t.Error("different roles produced identical subspaces")
	}
}

// Intersection semantics: two constraints shrink the subspace to the AND.
func TestFactRowsIntersection(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	locPath := pathTo(t, "LOC", "Store")
	pgPath := pathTo(t, "PGROUP", "Product")
	cCity := Constraint{Table: "LOC", Attr: "City",
		Values: []relation.Value{relation.String("Columbus")}, Path: locPath}
	cGroup := Constraint{Table: "PGROUP", Attr: "GroupName",
		Values: []relation.Value{relation.String("LCD TVs")}, Path: pgPath}

	both := ex.FactRows([]Constraint{cCity, cGroup})
	city := ex.FactRows([]Constraint{cCity})
	group := ex.FactRows([]Constraint{cGroup})
	if len(both) == 0 {
		t.Fatal("intersection empty — Columbus stores should sell LCD TVs")
	}
	if len(both) > len(city) || len(both) > len(group) {
		t.Error("intersection larger than a side")
	}
	inCity := map[int]bool{}
	for _, r := range city {
		inCity[r] = true
	}
	inGroup := map[int]bool{}
	for _, r := range group {
		inGroup[r] = true
	}
	for _, r := range both {
		if !inCity[r] || !inGroup[r] {
			t.Fatal("intersection contains row outside a side")
		}
	}
	want := 0
	for _, r := range city {
		if inGroup[r] {
			want++
		}
	}
	if len(both) != want {
		t.Errorf("intersection size %d, want %d", len(both), want)
	}
}

func TestFactRowsEmptyIntersectionShortCircuits(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	locPath := pathTo(t, "LOC", "Store")
	rows := ex.FactRows([]Constraint{
		{Table: "LOC", Attr: "City", Values: []relation.Value{relation.String("Nowhereville")}, Path: locPath},
		{Table: "PGROUP", Attr: "GroupName", Values: []relation.Value{relation.String("LCD TVs")}, Path: pathTo(t, "PGROUP", "Product")},
	})
	if rows != nil {
		t.Errorf("expected nil, got %d rows", len(rows))
	}
}

func TestAggregateFunctions(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	rows := []int{0, 1, 2, 3, 4}
	m := revenue(t)
	var want []float64
	fact := ebiz.DB.Table("TRANSITEM")
	for _, r := range rows {
		want = append(want, m.Eval(fact.Row(r)))
	}
	var sum, min, max float64
	min, max = math.Inf(1), math.Inf(-1)
	for _, w := range want {
		sum += w
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	if got := ex.Aggregate(rows, m, Sum); math.Abs(got-sum) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, sum)
	}
	if got := ex.Aggregate(rows, m, Count); got != 5 {
		t.Errorf("Count = %g", got)
	}
	if got := ex.Aggregate(rows, m, Avg); math.Abs(got-sum/5) > 1e-9 {
		t.Errorf("Avg = %g", got)
	}
	if got := ex.Aggregate(rows, m, Min); got != min {
		t.Errorf("Min = %g, want %g", got, min)
	}
	if got := ex.Aggregate(rows, m, Max); got != max {
		t.Errorf("Max = %g, want %g", got, max)
	}
	// Empty row sets.
	if got := ex.Aggregate(nil, m, Sum); got != 0 {
		t.Errorf("empty Sum = %g", got)
	}
	if got := ex.Aggregate(nil, m, Avg); !math.IsNaN(got) {
		t.Errorf("empty Avg = %g, want NaN", got)
	}
}

// Group-by over the whole dataspace must partition the total: the sum of
// group aggregates equals the global aggregate (every fact links to a
// product group in EBiz).
func TestGroupByPartitionsTotal(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	all := ex.FactRows(nil)
	total := ex.Aggregate(all, m, Sum)
	groups := ex.GroupBy(all, "GroupName", pathTo(t, "PGROUP", "Product"), m, Sum)
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	var sum float64
	for _, v := range groups {
		sum += v
	}
	if math.Abs(sum-total) > 1e-6*math.Abs(total) {
		t.Errorf("group sum %g != total %g", sum, total)
	}
}

// Property: for random subsets of fact rows, group-by sums always add up
// to the subset's aggregate.
func TestGroupByPartitionProperty(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	path := pathTo(t, "PGROUP", "Product")
	f := func(seed uint32) bool {
		// Deterministic pseudo-random subset from the seed.
		var rows []int
		x := uint64(seed)*2654435761 + 1
		for i := 0; i < ex.FactLen(); i++ {
			x = x*6364136223846793005 + 1442695040888963407
			if x>>60 < 3 {
				rows = append(rows, i)
			}
		}
		total := ex.Aggregate(rows, m, Sum)
		var sum float64
		for _, v := range ex.GroupBy(rows, "GroupName", path, m, Sum) {
			sum += v
		}
		return math.Abs(sum-total) <= 1e-6*(math.Abs(total)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGroupByAlongSnowflakePath(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	all := ex.FactRows(nil)
	// Group by State (two hops: LOC ← STORE ← TRANS ← TRANSITEM).
	groups := ex.GroupBy(all, "State", pathTo(t, "LOC", "Store"), m, Sum)
	if len(groups) < 5 {
		t.Errorf("state groups = %d", len(groups))
	}
	if _, ok := groups[relation.String("California")]; !ok {
		t.Error("California missing from state group-by")
	}
}

func TestNumericSeries(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	all := ex.FactRows(nil)
	series := ex.NumericSeries(all, "Income", pathTo(t, "CUSTOMER", "Buyer"), m)
	if len(series) != len(all) {
		t.Errorf("series %d entries, want %d (every fact has a buyer)", len(series), len(all))
	}
	for _, vm := range series[:100] {
		if vm.Value < 20000 || vm.Value > 150000 {
			t.Fatalf("income out of generated range: %g", vm.Value)
		}
		if vm.Measure <= 0 {
			t.Fatalf("non-positive revenue: %g", vm.Measure)
		}
	}
	// Non-numeric attribute yields empty series rather than junk.
	empty := ex.NumericSeries(all[:50], "City", pathTo(t, "LOC", "Store"), m)
	if len(empty) != 0 {
		t.Errorf("string attribute produced %d numeric entries", len(empty))
	}
}

func TestDimValuesRollup(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	// Hit rows: PGROUP rows for the two LCD groups; roll up to LineName.
	pg := ebiz.DB.Table("PGROUP")
	hitRows := append(pg.Lookup("GroupName", relation.String("LCD Projectors")),
		pg.Lookup("GroupName", relation.String("Flat Panel(LCD)"))...)
	paths := ebiz.Graph.InnerPathsWithin("PGROUP", "PLINE", ebiz.Graph.Dimension("Product"))
	if len(paths) != 1 {
		t.Fatalf("inner paths = %d", len(paths))
	}
	vals := ex.DimValues("PGROUP", hitRows, paths[0], "LineName")
	if len(vals) != 2 {
		t.Fatalf("parent lines = %#v, want [Electronics Monitor]", vals)
	}
	if vals[0].Str() != "Electronics" || vals[1].Str() != "Monitor" {
		t.Errorf("parent lines = %#v", vals)
	}
}

func TestMapRowsZeroHopPath(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	rows := []int{3, 1, 2}
	got := ex.MapRows(rows, schemagraph.JoinPath{Source: "PGROUP"})
	if len(got) != 3 {
		t.Errorf("zero-hop MapRows = %v", got)
	}
}

func TestIntersectSorted(t *testing.T) {
	cases := []struct{ a, b, want []int }{
		{[]int{1, 2, 3}, []int{2, 3, 4}, []int{2, 3}},
		{[]int{1, 2}, []int{3, 4}, nil},
		{nil, []int{1}, nil},
		{[]int{5}, []int{5}, []int{5}},
	}
	for _, c := range cases {
		got := intersectSorted(c.a, c.b)
		if len(got) != len(c.want) {
			t.Errorf("intersect(%v,%v) = %v", c.a, c.b, got)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("intersect(%v,%v) = %v", c.a, c.b, got)
			}
		}
	}
}

func TestExecutorConcurrentGroupBy(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	all := ex.FactRows(nil)
	path := pathTo(t, "PGROUP", "Product")
	want := ex.GroupBy(all, "GroupName", path, m, Sum)
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			got := ex.GroupBy(all, "GroupName", path, m, Sum)
			ok := len(got) == len(want)
			for k, v := range want {
				if math.Abs(got[k]-v) > 1e-9 {
					ok = false
				}
			}
			done <- ok
		}()
	}
	for g := 0; g < 8; g++ {
		if !<-done {
			t.Fatal("concurrent GroupBy inconsistent")
		}
	}
}

// Repeated and interleaved FactRows calls must return identical results
// through the per-constraint cache, including after cache churn.
func TestFactRowsConstraintCache(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	locPath := pathTo(t, "LOC", "Store")
	pgPath := pathTo(t, "PGROUP", "Product")
	c1 := Constraint{Table: "LOC", Attr: "City",
		Values: []relation.Value{relation.String("Columbus")}, Path: locPath}
	c2 := Constraint{Table: "PGROUP", Attr: "GroupName",
		Values: []relation.Value{relation.String("LCD TVs")}, Path: pgPath}

	want := ex.FactRows([]Constraint{c1, c2})
	for i := 0; i < 5; i++ {
		// Interleave other constraints to churn the cache.
		_ = ex.FactRows([]Constraint{{Table: "LOC", Attr: "State",
			Values: []relation.Value{relation.String("California")}, Path: locPath}})
		got := ex.FactRows([]Constraint{c1, c2})
		if len(got) != len(want) {
			t.Fatalf("iteration %d: %d rows, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("iteration %d row %d differs", i, j)
			}
		}
	}
	// Order of constraints must not matter.
	rev := ex.FactRows([]Constraint{c2, c1})
	if len(rev) != len(want) {
		t.Fatalf("constraint order changed the result: %d vs %d", len(rev), len(want))
	}
}

func TestConstraintSigDistinguishes(t *testing.T) {
	locPath := pathTo(t, "LOC", "Store")
	base := Constraint{Table: "LOC", Attr: "City",
		Values: []relation.Value{relation.String("Columbus")}, Path: locPath}
	same := base
	same.Values = []relation.Value{relation.String("Columbus")}
	if constraintSig(base) != constraintSig(same) {
		t.Error("identical constraints got different signatures")
	}
	diffVal := base
	diffVal.Values = []relation.Value{relation.String("Seattle")}
	if constraintSig(base) == constraintSig(diffVal) {
		t.Error("different values collide")
	}
	diffAttr := base
	diffAttr.Attr = "State"
	if constraintSig(base) == constraintSig(diffAttr) {
		t.Error("different attrs collide")
	}
	// Value order inside one constraint is canonicalized.
	multi := base
	multi.Values = []relation.Value{relation.String("A"), relation.String("B")}
	multiRev := base
	multiRev.Values = []relation.Value{relation.String("B"), relation.String("A")}
	if constraintSig(multi) != constraintSig(multiRev) {
		t.Error("value order changed the signature")
	}
}

func TestFilterRowsNumeric(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	all := ex.FactRows(nil)
	path := pathTo(t, "CUSTOMER", "Buyer")
	rich := ex.FilterRowsNumeric(all, "Income", path, func(x float64) bool { return x > 100000 })
	if len(rich) == 0 || len(rich) >= len(all) {
		t.Fatalf("filtered = %d of %d", len(rich), len(all))
	}
	// Every surviving row's buyer income really exceeds the bound.
	series := ex.NumericSeries(rich, "Income", path, m)
	for _, vm := range series {
		if vm.Value <= 100000 {
			t.Fatalf("income %g leaked through", vm.Value)
		}
	}
	// Panics on unknown attribute.
	defer func() {
		if recover() == nil {
			t.Error("unknown attr should panic")
		}
	}()
	ex.FilterRowsNumeric(all, "Nope", path, func(float64) bool { return true })
}

func TestExecutorAccessors(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	if ex.Graph() != ebiz.Graph {
		t.Error("Graph accessor")
	}
	if ex.FactLen() != ebiz.DB.Table("TRANSITEM").Len() {
		t.Error("FactLen accessor")
	}
}

func TestPivotTruncate(t *testing.T) {
	if truncate("short", 10) != "short" {
		t.Error("no-op truncate")
	}
	if got := truncate("averylongcategoryname", 8); len(got) > 10 || got[:7] != "averylo" {
		t.Errorf("truncate = %q", got)
	}
}
