// Package olap executes aggregation queries over a star/snowflake schema:
// semijoin of keyword-hit dimension rows through join paths to fact rows
// (slicing the sub-dataspace of a star net), measures and aggregation
// functions over fact rows, and group-by along arbitrary dimension
// attributes reached through join paths.
//
// Two execution paths produce identical results. The reference path
// (GroupByRef, AggregateRef) walks boxed relation.Value rows and exists
// for the equivalence tests; the default path runs columnar kernels
// (kernel.go) over dense []float64 measure vectors and dictionary-coded
// []int32 attribute columns, memoized fact-aligned per join path, and
// fans out across cores above a row threshold with a deterministic
// chunk-order merge. Per-constraint semijoin bitsets are cached in a
// CLOCK-evicted store so star nets sharing hit groups share the
// semijoin work.
//
// An Executor is safe for concurrent use, exposes kernel-path and
// cache counters as snapshots (Stats, ConstraintCacheStats — the
// server polls them onto the telemetry registry), and observes context
// cancellation at chunk granularity on every Ctx-suffixed entry point.
package olap

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"kdap/internal/bitset"
	"kdap/internal/cache"
	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/shard"
)

// Measure evaluates a numeric measure on one fact row. The paper's
// experiments use sales revenue = UnitPrice × Quantity; arbitrary
// user-defined measures are supported per §5's extension note.
type Measure struct {
	Name string
	Eval func(row []relation.Value) float64
	// Vec, when non-nil, returns the measure evaluated over every fact
	// row as a dense fact-aligned column (NaN where undefined). The
	// columnar kernels use it to skip per-row boxed evaluation; the
	// constructors in this package populate it, hand-built Measure
	// literals may leave it nil and fall back to Eval. Against a backed
	// fact table the constructors leave Vec nil — materializing a dense
	// column would defeat the paging budget — and populate Seg instead.
	Vec func() []float64
	// Seg, when non-nil, returns a fresh segmented reader over the
	// measure (the kernels wrap one cursor per worker stripe). The
	// values a Seg reader yields are bit-identical to Vec's, so the two
	// paths produce the same output bytes.
	Seg func() relation.FloatReader
	// constOne marks a measure whose value is 1 for every row
	// (CountMeasure); the kernels then never touch fact storage at all.
	constOne bool
}

// ColumnMeasure returns a measure that reads a single numeric fact column.
func ColumnMeasure(t *relation.Table, col string) Measure {
	ci := t.Schema().ColumnIndex(col)
	if ci < 0 {
		panic(fmt.Sprintf("olap: fact table %s has no column %q", t.Name(), col))
	}
	return Measure{
		Name: col,
		Eval: func(row []relation.Value) float64 { return row[ci].AsFloat() },
		Vec: func() []float64 {
			return t.ResidentFloatColumn(col) // nil when backed
		},
		Seg: func() relation.FloatReader { return t.FloatReader(col) },
	}
}

// ProductMeasure returns a measure multiplying two numeric fact columns,
// e.g. revenue = UnitPrice × Quantity.
func ProductMeasure(t *relation.Table, name, colA, colB string) Measure {
	a := t.Schema().ColumnIndex(colA)
	b := t.Schema().ColumnIndex(colB)
	if a < 0 || b < 0 {
		panic(fmt.Sprintf("olap: fact table %s lacks %q or %q", t.Name(), colA, colB))
	}
	var mu sync.Mutex
	var vec []float64 // the product column, built on first vectorized use
	return Measure{
		Name: name,
		Eval: func(row []relation.Value) float64 {
			return row[a].AsFloat() * row[b].AsFloat()
		},
		Vec: func() []float64 {
			if t.Backing() != nil {
				return nil
			}
			// Extend (copy-on-grow) past appended rows: callers hold the
			// slice they were handed, so the shared prefix is never
			// rewritten in place.
			mu.Lock()
			defer mu.Unlock()
			if n := t.Len(); len(vec) < n {
				ca, cb := t.FloatColumn(colA), t.FloatColumn(colB)
				grown := make([]float64, n)
				copy(grown, vec)
				for i := len(vec); i < n; i++ {
					grown[i] = ca[i] * cb[i]
				}
				vec = grown
			}
			return vec
		},
		Seg: func() relation.FloatReader {
			return productReader{a: t.FloatReader(colA), b: t.FloatReader(colB)}
		},
	}
}

// productReader is the segmented form of a product measure: each
// segment is computed on fetch from the two factor segments. A cursor
// fetches each segment once per contiguous pass, so the recompute cost
// is one multiply per row — the same work the dense build does, paid
// per scan instead of up front and resident.
type productReader struct {
	a, b relation.FloatReader
}

func (r productReader) Len() int         { return r.a.Len() }
func (r productReader) SegmentSize() int { return r.a.SegmentSize() }
func (r productReader) FloatSegment(si int) []float64 {
	sa, sb := r.a.FloatSegment(si), r.b.FloatSegment(si)
	out := make([]float64, len(sa))
	for i := range out {
		out[i] = sa[i] * sb[i]
	}
	return out
}

// CountMeasure counts fact rows.
func CountMeasure() Measure {
	return Measure{Name: "count", Eval: func([]relation.Value) float64 { return 1 }, constOne: true}
}

// Agg selects the aggregation function applied to measure values.
type Agg int

// The supported aggregation functions.
const (
	Sum Agg = iota
	Count
	Avg
	Min
	Max
)

// String returns the SQL-ish name of the aggregation function.
func (a Agg) String() string {
	switch a {
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("AGG(%d)", int(a))
	}
}

type aggState struct {
	sum float64
	n   int
	min float64
	max float64
}

func newAggState() aggState {
	return aggState{min: math.Inf(1), max: math.Inf(-1)}
}

func (s *aggState) add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.sum += x
	s.n++
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

func (s *aggState) final(a Agg) float64 {
	switch a {
	case Sum:
		return s.sum
	case Count:
		return float64(s.n)
	case Avg:
		if s.n == 0 {
			return math.NaN()
		}
		return s.sum / float64(s.n)
	case Min:
		if s.n == 0 {
			return math.NaN()
		}
		return s.min
	case Max:
		if s.n == 0 {
			return math.NaN()
		}
		return s.max
	default:
		panic("olap: unknown aggregation")
	}
}

// Constraint restricts the sub-dataspace: fact rows must link, through
// Path, to a row of Table whose Attr is one of Values. One constraint per
// hit group, per the paper's star-net semantics (§4.2): dimension hit
// groups slice the subspace; all constraints intersect at the fact table.
type Constraint struct {
	Table  string
	Attr   string
	Values []relation.Value
	Path   schemagraph.JoinPath // from Table to the fact table
}

// Executor runs star-net queries against one warehouse. It memoizes
// fact-row→dimension-row mappings and fact-aligned attribute code/float
// columns per join path, and per-constraint semijoin results (as
// bitsets over fact rows), so repeated facet construction and the
// evaluation of many star nets sharing hit groups are cheap. Safe for
// concurrent use; cache hits take only a read lock, so the facet
// scorer's fan-out does not serialize on the memos.
type Executor struct {
	g    *schemagraph.Graph
	fact *relation.Table

	mu        sync.RWMutex
	factMap   map[string][]int32 // path signature -> fact row -> dim row (-1 when unlinked)
	attrCode  map[attrColKey]*codeColumn
	attrFloat map[attrColKey][]float64
	// attrZone holds lazily-built per-shard zone maps over the memoized
	// fact-aligned attribute columns, keyed like attrFloat, rebuilt when
	// SetShards replaces the partition and extended in place (copy-on-
	// grow) when a streaming append grows the last shard.
	attrZone map[attrColKey]*attrZones
	// constraintBits caches each constraint's fact-row set; candidate
	// star nets combine a small vocabulary of hit groups, so hit rates
	// are high during differentiation-heavy workloads.
	constraintBits *cache.Clock[string, *bitset.Set]

	// partition, when set, enables sharded scatter-gather on the row-set
	// producers (see sharded.go). nil means monolithic scans.
	partition atomic.Pointer[shard.Partition]

	stats execCounters
}

// execCounters are the executor's lifetime kernel counters: which
// execution path each call took (columnar vector vs row-at-a-time
// measure eval vs the retained reference implementations) and how the
// parallel kernels fanned out. All lock-free; one atomic add per call,
// never per row, so the hot kernels stay within the telemetry overhead
// budget.
type execCounters struct {
	groupByVec     atomic.Int64
	groupByEval    atomic.Int64
	groupByRef     atomic.Int64
	aggregateVec   atomic.Int64
	aggregateEval  atomic.Int64
	aggregateRef   atomic.Int64
	parallelScans  atomic.Int64
	serialScans    atomic.Int64
	kernelChunks   atomic.Int64
	multiScans     atomic.Int64
	multiRowSets   atomic.Int64
	codeVecBuilds  atomic.Int64
	floatColBuilds atomic.Int64

	shardsScanned    atomic.Int64
	shardsPrunedZone atomic.Int64
	shardsPrunedBits atomic.Int64
}

// ExecStats is a point-in-time snapshot of the executor's kernel
// counters, exported at /metrics and recorded into BENCH.json.
type ExecStats struct {
	// GroupBy calls by path: the columnar kernel over a measure vector,
	// the columnar kernel falling back to per-row measure eval, and the
	// row-at-a-time reference implementation.
	GroupByVec, GroupByEval, GroupByRef int64
	// Aggregate calls by the same three paths.
	AggregateVec, AggregateEval, AggregateRef int64
	// ParallelScans fan out over KernelChunks worker stripes in total;
	// SerialScans stayed under the parallel row threshold (or ran their
	// stripes inline at GOMAXPROCS=1).
	ParallelScans, SerialScans, KernelChunks int64
	// MultiScans counts fused multi-row-set passes (GroupByMultiCtx
	// calls); MultiRowSets is how many row sets those passes evaluated —
	// the difference from MultiScans is the scans a non-fused pipeline
	// would have issued separately.
	MultiScans, MultiRowSets int64
	// CodeVecBuilds / FloatColBuilds count cold fact-aligned column
	// materializations (cache misses in the executor's memos).
	CodeVecBuilds, FloatColBuilds int64
	// ShardsScanned counts shards the planner let through to a scan;
	// ShardsPrunedZone / ShardsPrunedBits count shards it skipped, by
	// the evidence that pruned them (zone-map miss vs constraint bitset
	// empty over the shard's row range). All zero when monolithic.
	ShardsScanned, ShardsPrunedZone, ShardsPrunedBits int64
}

// Stats snapshots the executor's kernel counters.
func (ex *Executor) Stats() ExecStats {
	return ExecStats{
		GroupByVec:     ex.stats.groupByVec.Load(),
		GroupByEval:    ex.stats.groupByEval.Load(),
		GroupByRef:     ex.stats.groupByRef.Load(),
		AggregateVec:   ex.stats.aggregateVec.Load(),
		AggregateEval:  ex.stats.aggregateEval.Load(),
		AggregateRef:   ex.stats.aggregateRef.Load(),
		ParallelScans:  ex.stats.parallelScans.Load(),
		SerialScans:    ex.stats.serialScans.Load(),
		KernelChunks:   ex.stats.kernelChunks.Load(),
		MultiScans:     ex.stats.multiScans.Load(),
		MultiRowSets:   ex.stats.multiRowSets.Load(),
		CodeVecBuilds:  ex.stats.codeVecBuilds.Load(),
		FloatColBuilds: ex.stats.floatColBuilds.Load(),

		ShardsScanned:    ex.stats.shardsScanned.Load(),
		ShardsPrunedZone: ex.stats.shardsPrunedZone.Load(),
		ShardsPrunedBits: ex.stats.shardsPrunedBits.Load(),
	}
}

// ConstraintCacheStats snapshots the per-constraint semijoin cache.
func (ex *Executor) ConstraintCacheStats() cache.Stats {
	return ex.constraintBits.Stats()
}

// constraintCacheCap bounds the per-constraint cache.
const constraintCacheCap = 512

// NewExecutor creates an executor over the graph's database.
func NewExecutor(g *schemagraph.Graph) *Executor {
	fact := g.DB().Table(g.FactTable())
	if fact == nil {
		panic("olap: graph has no fact table")
	}
	return &Executor{
		g: g, fact: fact,
		factMap:        make(map[string][]int32),
		attrCode:       make(map[attrColKey]*codeColumn),
		attrFloat:      make(map[attrColKey][]float64),
		attrZone:       make(map[attrColKey]*attrZones),
		constraintBits: cache.NewClock[string, *bitset.Set](constraintCacheCap),
	}
}

// Graph returns the schema graph the executor runs against.
func (ex *Executor) Graph() *schemagraph.Graph { return ex.g }

// FactLen returns the number of fact rows (the full dataspace size).
func (ex *Executor) FactLen() int { return ex.fact.Len() }

// FactBacking returns the fact table's segment backing, or nil when the
// fact table is resident. Callers use it to tune the backing (segment
// cache budget) or read its skip counters.
func (ex *Executor) FactBacking() relation.ColumnBacking { return ex.fact.Backing() }

// MapRows maps row IDs of path.Source to row IDs of path.Target by
// walking the path's hops; the result is sorted and deduplicated. This is
// the semijoin primitive: dimension rows in, fact rows out.
func (ex *Executor) MapRows(rows []int, path schemagraph.JoinPath) []int {
	out, _ := ex.MapRowsCtx(context.Background(), rows, path)
	return out
}

// MapRowsCtx is MapRows under a context: the hop walk checks for
// cancellation between hops and every cancelCheckRows source rows, so a
// semijoin over a large dimension stops promptly when the caller's
// deadline fires. Returns ctx.Err() on cancellation.
func (ex *Executor) MapRowsCtx(ctx context.Context, rows []int, path schemagraph.JoinPath) ([]int, error) {
	cur := rows
	curTable := ex.g.DB().Table(path.Source)
	done := ctx.Done()
	for _, hop := range path.Hops {
		next := ex.g.DB().Table(hop.ToTable)
		if next == nil {
			panic(fmt.Sprintf("olap: path references missing table %q", hop.ToTable))
		}
		fromIdx := curTable.Schema().ColumnIndex(hop.FromCol)
		if fromIdx < 0 {
			panic(fmt.Sprintf("olap: %s has no column %q", hop.FromTable, hop.FromCol))
		}
		if next.Backing() != nil {
			// A backed hop target has no hash index — per-row Lookup
			// would rescan the column once per source row. Batch the
			// distinct hop values and resolve them in one Bloom/zone-
			// pruned segment scan; LookupIn's ascending deduplicated
			// output is exactly the bitset union below.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			seen := make(map[relation.Value]struct{}, len(cur))
			vals := make([]relation.Value, 0, len(cur))
			for _, r := range cur {
				v := curTable.Row(r)[fromIdx]
				if v.IsNull() {
					continue
				}
				if _, dup := seen[v]; dup {
					continue
				}
				seen[v] = struct{}{}
				vals = append(vals, v)
			}
			cur, curTable = next.LookupIn(hop.ToCol, vals), next
			continue
		}
		// A bitset over the next table dedups and sorts in one pass —
		// ToSlice emits ascending row IDs.
		seen := bitset.New(next.Len())
		for base := 0; base < len(cur); base += cancelCheckRows {
			if done != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			end := min(base+cancelCheckRows, len(cur))
			for _, r := range cur[base:end] {
				v := curTable.Row(r)[fromIdx]
				if v.IsNull() {
					continue
				}
				for _, nr := range next.Lookup(hop.ToCol, v) {
					seen.Add(nr)
				}
			}
		}
		cur, curTable = seen.ToSlice(), next
	}
	return cur, nil
}

// constraintSig canonically identifies a constraint for caching.
func constraintSig(c Constraint) string {
	vals := make([]string, len(c.Values))
	for i, v := range c.Values {
		vals[i] = v.GoString()
	}
	sort.Strings(vals)
	return c.Table + "\x00" + c.Attr + "\x00" + c.Path.Signature() + "\x00" + strings.Join(vals, "\x01")
}

// constraintSet returns (cached) the bitset of fact rows satisfying one
// constraint. The cache evicts with second-chance/CLOCK so a hot hit
// group survives churn from one-off candidate nets. A cancelled semijoin
// is never cached — partial bitsets must not poison later queries.
//
// A cached set left behind by a streaming append (its universe shorter
// than the fact table) is extended over just the appended rows via the
// fact→dimension memo — never rebuilt — and re-cached; the shorter set
// stays intact for readers already holding it.
func (ex *Executor) constraintSet(ctx context.Context, c Constraint) (*bitset.Set, error) {
	n := ex.fact.Len()
	sig := constraintSig(c)
	if s, ok := ex.constraintBits.Get(sig); ok {
		if s.Len() >= n {
			return s, nil
		}
		ext := ex.extendConstraintSet(c, s, n)
		ex.constraintBits.Put(sig, ext)
		return ext, nil
	}
	t := ex.g.DB().Table(c.Table)
	if t == nil {
		panic(fmt.Sprintf("olap: constraint references missing table %q", c.Table))
	}
	dimRows := lookupHitRows(t, c.Attr, c.Values)
	mapped, err := ex.MapRowsCtx(ctx, dimRows, c.Path)
	if err != nil {
		return nil, err
	}
	s := bitset.FromSorted(n, mapped)
	ex.constraintBits.Put(sig, s)
	return s, nil
}

// extendConstraintSet grows a constraint's fact-row set to universe n:
// each appended fact row joins the set iff its linked dimension row (via
// the fact→dimension memo, which star-schema key uniqueness makes
// equivalent to the forward semijoin) is one of the constraint's hit
// rows. O(appended rows), independent of the dataspace size.
func (ex *Executor) extendConstraintSet(c Constraint, s *bitset.Set, n int) *bitset.Set {
	t := ex.g.DB().Table(c.Table)
	hit := bitset.FromSorted(t.Len(), lookupHitRows(t, c.Attr, c.Values))
	f2d := ex.factToDim(c.Path)
	out := bitset.New(n)
	out.OrWith(s)
	for f := s.Len(); f < n && f < len(f2d); f++ {
		if d := f2d[f]; d >= 0 && hit.Contains(int(d)) {
			out.Add(f)
		}
	}
	return out
}

// lookupHitRows resolves a hit group's value set to rows of its table.
// On a backed table whose storage records per-term segment lists (the
// full-text skip lists in the segment manifest), the scan is restricted
// to the union of the values' segments; otherwise it is a plain
// LookupIn — which on a backed table still gets Bloom/zone pruning.
func lookupHitRows(t *relation.Table, attr string, vals []relation.Value) []int {
	b := t.Backing()
	if b == nil {
		return t.LookupIn(attr, vals)
	}
	ts, ok := b.(relation.TermSegmenter)
	if !ok {
		return t.LookupIn(attr, vals)
	}
	segs, ok := unionValueSegments(ts, attr, vals)
	if !ok {
		return t.LookupIn(attr, vals)
	}
	return t.LookupInSegments(attr, vals, segs)
}

// unionValueSegments unions the per-value segment lists, ascending and
// deduplicated. ok is false when any value has no list (the scan must
// then consider every segment).
func unionValueSegments(ts relation.TermSegmenter, attr string, vals []relation.Value) ([]int32, bool) {
	seen := make(map[int32]struct{})
	for _, v := range vals {
		segs, ok := ts.ValueSegments(attr, v)
		if !ok {
			return nil, false
		}
		for _, s := range segs {
			seen[s] = struct{}{}
		}
	}
	out := make([]int32, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// FactRows returns the fact rows of the sub-dataspace defined by the
// constraints: the intersection over all constraints of the fact rows
// reachable from matching dimension rows. With no constraints it returns
// every fact row (the full dataspace). Per-constraint results are cached
// as bitsets, so nets sharing hit groups share semijoin work.
func (ex *Executor) FactRows(constraints []Constraint) []int {
	rows, _ := ex.FactRowsCtx(context.Background(), constraints)
	return rows
}

// FactRowsCtx is FactRows under a context: cancellation is checked
// between constraints and inside each constraint's semijoin, returning
// ctx.Err() instead of completing the intersection.
func (ex *Executor) FactRowsCtx(ctx context.Context, constraints []Constraint) ([]int, error) {
	return ex.FactRowsBoundedCtx(ctx, constraints, nil)
}

// FactRowsBoundedCtx is FactRowsCtx with declared numeric drill bounds:
// under a partition the planner also skips shards whose zone maps miss
// a bound's closed interval, so the semijoin intersection itself never
// touches shards a later drill predicate would discard wholesale. The
// caller MUST re-apply the row-level predicates the bounds were derived
// from — a bound licenses skipping provably irrelevant shards, nothing
// more. Monolithically (and with no bounds) this is exactly FactRowsCtx.
func (ex *Executor) FactRowsBoundedCtx(ctx context.Context, constraints []Constraint, bounds []shard.Bound) ([]int, error) {
	if len(constraints) == 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if p := ex.partition.Load(); p != nil && len(bounds) > 0 {
			return ex.factRowsSharded(ctx, p, bounds, nil)
		}
		all := make([]int, ex.fact.Len())
		for i := range all {
			all[i] = i
		}
		return all, nil
	}
	if p := ex.partition.Load(); p != nil {
		sets := make([]*bitset.Set, len(constraints))
		for i, c := range constraints {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s, err := ex.constraintSet(ctx, c)
			if err != nil {
				return nil, err
			}
			sets[i] = s
		}
		rows, err := ex.factRowsSharded(ctx, p, bounds, sets)
		if err != nil || len(rows) == 0 {
			return nil, err
		}
		return rows, nil
	}
	first, err := ex.constraintSet(ctx, constraints[0])
	if err != nil {
		return nil, err
	}
	if len(constraints) == 1 {
		rows := first.ToSlice()
		if len(rows) == 0 {
			return nil, nil
		}
		return rows, nil
	}
	acc := first.Clone()
	for _, c := range constraints[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := ex.constraintSet(ctx, c)
		if err != nil {
			return nil, err
		}
		acc.AndWith(s)
		if acc.Count() == 0 {
			return nil, nil
		}
	}
	rows := acc.ToSlice()
	if len(rows) == 0 {
		return nil, nil
	}
	return rows, nil
}

// FactRowsInRange returns the fact rows in [lo, hi) satisfying every
// constraint (every row in the range when constraints is empty). Built
// for streaming appends: per-constraint bitsets are coverage-complete
// to the current fact length, so deciding whether an appended row range
// touches a sub-dataspace costs O(hi-lo), never a dataspace rescan.
func (ex *Executor) FactRowsInRange(ctx context.Context, constraints []Constraint, lo, hi int) ([]int, error) {
	if n := ex.fact.Len(); hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo >= hi {
		return nil, nil
	}
	if len(constraints) == 0 {
		out := make([]int, hi-lo)
		for i := range out {
			out[i] = lo + i
		}
		return out, nil
	}
	sets := make([]*bitset.Set, len(constraints))
	for i, c := range constraints {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := ex.constraintSet(ctx, c)
		if err != nil {
			return nil, err
		}
		sets[i] = s
	}
	out := sets[0].AppendRange(nil, lo, hi)
	for _, s := range sets[1:] {
		if len(out) == 0 {
			return nil, nil
		}
		kept := out[:0]
		for _, r := range out {
			if s.Contains(r) {
				kept = append(kept, r)
			}
		}
		out = kept
	}
	return out, nil
}

// Aggregate applies the measure and aggregation function over fact
// rows. The scan is fused — measure column read and accumulation in one
// loop — and fans out across GOMAXPROCS workers for large row sets.
func (ex *Executor) Aggregate(rows []int, m Measure, agg Agg) float64 {
	v, _ := ex.AggregateCtx(context.Background(), rows, m, agg)
	return v
}

// AggregateCtx is Aggregate under a context: the fused scan (and every
// parallel worker chunk) checks for cancellation at cancelCheckRows
// granularity and returns ctx.Err() instead of finishing the scan.
func (ex *Executor) AggregateCtx(ctx context.Context, rows []int, m Measure, agg Agg) (float64, error) {
	if measureVec(m) != nil {
		ex.stats.aggregateVec.Add(1)
	} else {
		ex.stats.aggregateEval.Add(1)
	}
	st, err := ex.scanAggregate(ctx, rows, m)
	if err != nil {
		return 0, err
	}
	return st.final(agg), nil
}

// AggregateRef is the row-at-a-time reference implementation of
// Aggregate, retained for correctness tests and as the perf-trajectory
// baseline in cmd/kdapbench.
func (ex *Executor) AggregateRef(rows []int, m Measure, agg Agg) float64 {
	ex.stats.aggregateRef.Add(1)
	st := newAggState()
	for _, r := range rows {
		st.add(m.Eval(ex.fact.Row(r)))
	}
	return st.final(agg)
}

// GroupByCtx is GroupBy under a context: the columnar scan (and every
// parallel worker chunk) checks for cancellation at cancelCheckRows
// granularity and returns ctx.Err() instead of finishing the scan.
func (ex *Executor) GroupByCtx(ctx context.Context, rows []int, attr string, path schemagraph.JoinPath, m Measure, agg Agg) (map[relation.Value]float64, error) {
	dimTable := ex.g.DB().Table(path.Source)
	if dimTable.Schema().ColumnIndex(attr) < 0 {
		panic(fmt.Sprintf("olap: %s has no column %q", path.Source, attr))
	}
	if measureVec(m) != nil {
		ex.stats.groupByVec.Add(1)
	} else {
		ex.stats.groupByEval.Add(1)
	}
	codes, dict := ex.attrCodes(attr, path)
	states, touched, err := ex.groupScan(ctx, rows, codes, len(dict), m)
	if err != nil {
		return nil, err
	}
	out := make(map[relation.Value]float64, len(dict))
	for c := range states {
		if touched[c] {
			out[dict[c]] = states[c].final(agg)
		}
	}
	return out, nil
}

// factToDim returns, memoized, the functional mapping fact row → dimension
// row for a path from a dimension table to the fact table. Star schemas
// make the fact→dimension direction many-to-one, so each fact row maps to
// at most one dimension row (-1 when a foreign key is NULL or dangling).
//
// The mapping always covers the fact table's row count observed at call
// time: a memo left short by a streaming append is extended over just
// the appended rows (copy-on-grow — callers holding the shorter slice
// keep a consistent prefix view).
func (ex *Executor) factToDim(path schemagraph.JoinPath) []int32 {
	sig := path.Signature()
	for {
		n := ex.fact.Len()
		ex.mu.RLock()
		m, ok := ex.factMap[sig]
		ex.mu.RUnlock()
		if ok && len(m) >= n {
			return m
		}
		lo := len(m) // 0 on a cold miss
		tail := ex.buildF2DRange(path, lo, n)
		ex.mu.Lock()
		cur := ex.factMap[sig]
		if len(cur) != lo {
			// Another goroutine built a different span meanwhile; retry
			// against its result.
			ex.mu.Unlock()
			continue
		}
		merged := append(cur[:lo:lo], tail...)
		ex.factMap[sig] = merged
		ex.mu.Unlock()
		return merged
	}
}

// buildF2DRange computes the fact→dimension mapping for fact rows
// [lo, hi) by walking the reversed path fact → ... → dimension,
// column-at-a-time.
func (ex *Executor) buildF2DRange(path schemagraph.JoinPath, lo, hi int) []int32 {
	cur := make([]int32, hi-lo)
	for i := range cur {
		cur[i] = int32(lo + i)
	}
	curTable := ex.fact
	for i := len(path.Hops) - 1; i >= 0; i-- {
		hop := path.Hops[i].Reverse() // now oriented away from the fact
		next := ex.g.DB().Table(hop.ToTable)
		fromIdx := curTable.Schema().ColumnIndex(hop.FromCol)
		out := make([]int32, len(cur))
		if curTable.Backing() != nil {
			ex.factToDimBackedHop(curTable, next, hop.FromCol, hop.ToCol, cur, out)
		} else {
			for f, r := range cur {
				if r < 0 {
					out[f] = -1
					continue
				}
				v := curTable.Row(int(r))[fromIdx]
				if v.IsNull() {
					out[f] = -1
					continue
				}
				matches := next.Lookup(hop.ToCol, v)
				if len(matches) == 0 {
					out[f] = -1
				} else {
					out[f] = int32(matches[0])
				}
			}
		}
		cur, curTable = out, next
	}
	return cur
}

// factToDimBackedHop resolves one reversed hop when the current table
// is backed: the hop column is read through a segment cursor instead of
// assembling boxed rows, and each distinct value resolves to its target
// row once through a memo — identical output to the per-row walk, one
// column of I/O instead of the whole table.
func (ex *Executor) factToDimBackedHop(curTable, next *relation.Table, fromCol, toCol string, cur, out []int32) {
	c, _ := curTable.Schema().Column(fromCol)
	firstOf := func(v relation.Value) int32 {
		matches := next.Lookup(toCol, v)
		if len(matches) == 0 {
			return -1
		}
		return int32(matches[0])
	}
	if c.Kind == relation.KindInt || c.Kind == relation.KindFloat {
		cursor := relation.NewFloatCursor(curTable.FloatReader(fromCol))
		memo := make(map[float64]int32)
		for f, r := range cur {
			if r < 0 {
				out[f] = -1
				continue
			}
			fv := cursor.At(int(r))
			if math.IsNaN(fv) {
				out[f] = -1
				continue
			}
			d, ok := memo[fv]
			if !ok {
				var v relation.Value
				if c.Kind == relation.KindInt {
					v = relation.Int(int64(fv))
				} else {
					v = relation.Float(fv)
				}
				d = firstOf(v)
				memo[fv] = d
			}
			out[f] = d
		}
		return
	}
	rd := curTable.DictReader(fromCol)
	dict := rd.Dict()
	cursor := relation.NewDictCursor(rd)
	memo := make([]int32, len(dict))
	have := make([]bool, len(dict))
	for f, r := range cur {
		if r < 0 {
			out[f] = -1
			continue
		}
		code := cursor.At(int(r))
		if code < 0 {
			out[f] = -1
			continue
		}
		if !have[code] {
			memo[code] = firstOf(dict[code])
			have[code] = true
		}
		out[f] = memo[code]
	}
}

// GroupBy partitions the given fact rows by the attribute at the far end
// of path (a path from the attribute's table to the fact table) and
// aggregates the measure within each group. The result maps each
// attribute value to its aggregate; fact rows with no linked dimension
// row are dropped.
//
// Execution is columnar: the attribute is read through a memoized
// fact-aligned dictionary code vector and accumulated into a dense
// per-code state slice — no map insert, no boxed Value per row — with
// the chunked parallel kernel engaged for large row sets. The result is
// identical to GroupByRef.
func (ex *Executor) GroupBy(rows []int, attr string, path schemagraph.JoinPath, m Measure, agg Agg) map[relation.Value]float64 {
	out, _ := ex.GroupByCtx(context.Background(), rows, attr, path, m, agg)
	return out
}

// GroupByRef is the row-at-a-time, map-accumulating reference
// implementation of GroupBy, retained for correctness tests and as the
// perf-trajectory baseline in cmd/kdapbench.
func (ex *Executor) GroupByRef(rows []int, attr string, path schemagraph.JoinPath, m Measure, agg Agg) map[relation.Value]float64 {
	ex.stats.groupByRef.Add(1)
	dimTable := ex.g.DB().Table(path.Source)
	ai := dimTable.Schema().ColumnIndex(attr)
	if ai < 0 {
		panic(fmt.Sprintf("olap: %s has no column %q", path.Source, attr))
	}
	f2d := ex.factToDim(path)
	states := make(map[relation.Value]*aggState)
	for _, r := range rows {
		d := f2d[r]
		if d < 0 {
			continue
		}
		v := dimTable.Row(int(d))[ai]
		if v.IsNull() {
			continue
		}
		st := states[v]
		if st == nil {
			s := newAggState()
			st = &s
			states[v] = st
		}
		st.add(m.Eval(ex.fact.Row(r)))
	}
	out := make(map[relation.Value]float64, len(states))
	for v, st := range states {
		out[v] = st.final(agg)
	}
	return out
}

// ValueMeasure pairs one fact row's numeric attribute value with its
// measure value; the bucketizer consumes slices of these.
type ValueMeasure struct {
	Value   float64
	Measure float64
}

// NumericSeries extracts, for each fact row, the numeric value of the
// attribute reached via path together with the row's measure value.
// Rows with NULL, non-numeric, or unlinked attributes are dropped. Both
// sides read pre-extracted float columns: the memoized fact-aligned
// attribute column (NaN marks absent) and the measure's vector.
func (ex *Executor) NumericSeries(rows []int, attr string, path schemagraph.JoinPath, m Measure) []ValueMeasure {
	out, _ := ex.NumericSeriesCtx(context.Background(), rows, attr, path, m)
	return out
}

// NumericSeriesCtx is NumericSeries under a context, checking for
// cancellation every cancelCheckRows rows.
func (ex *Executor) NumericSeriesCtx(ctx context.Context, rows []int, attr string, path schemagraph.JoinPath, m Measure) ([]ValueMeasure, error) {
	if ex.g.DB().Table(path.Source).Schema().ColumnIndex(attr) < 0 {
		panic(fmt.Sprintf("olap: %s has no column %q", path.Source, attr))
	}
	if p := ex.partition.Load(); p != nil && len(rows) >= ParallelRowThreshold() {
		return ex.numericSeriesSharded(ctx, p, rows, attr, path, m)
	}
	vals := ex.attrFloats(attr, path)
	return seriesOver(ctx, rows, vals, measureVec(m), m, ex.fact)
}

// seriesOver extracts (attribute value, measure) pairs for one span of
// rows against pre-extracted columns; it is the shared body of the
// monolithic pass and each sharded worker.
func seriesOver(ctx context.Context, rows []int, vals, vec []float64, m Measure, fact *relation.Table) ([]ValueMeasure, error) {
	out := make([]ValueMeasure, 0, len(rows))
	done := ctx.Done()
	var cur *relation.FloatCursor
	if vec == nil && !m.constOne {
		cur = measureCursor(m)
	}
	for base := 0; base < len(rows); base += cancelCheckRows {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		end := min(base+cancelCheckRows, len(rows))
		switch {
		case vec != nil:
			for _, r := range rows[base:end] {
				v := vals[r]
				if math.IsNaN(v) {
					continue
				}
				out = append(out, ValueMeasure{Value: v, Measure: vec[r]})
			}
		case m.constOne:
			for _, r := range rows[base:end] {
				v := vals[r]
				if math.IsNaN(v) {
					continue
				}
				out = append(out, ValueMeasure{Value: v, Measure: 1})
			}
		case cur != nil:
			for _, r := range rows[base:end] {
				v := vals[r]
				if math.IsNaN(v) {
					continue
				}
				out = append(out, ValueMeasure{Value: v, Measure: cur.At(r)})
			}
		default:
			for _, r := range rows[base:end] {
				v := vals[r]
				if math.IsNaN(v) {
					continue
				}
				out = append(out, ValueMeasure{Value: v, Measure: m.Eval(fact.Row(r))})
			}
		}
	}
	return out, nil
}

// FilterRowsNumeric keeps the fact rows whose numeric attribute at the
// far end of path satisfies pred; rows with NULL or unlinked attributes
// are dropped. The KDAP engine uses it for the numeric-predicate query
// extension.
func (ex *Executor) FilterRowsNumeric(rows []int, attr string, path schemagraph.JoinPath, pred func(float64) bool) []int {
	out, _ := ex.FilterRowsNumericCtx(context.Background(), rows, attr, path, pred)
	return out
}

// FilterRowsNumericCtx is FilterRowsNumeric under a context, checking
// for cancellation every cancelCheckRows rows. With an opaque predicate
// the bound interval defaults to the whole line, so under a partition
// only all-NULL shards prune; callers that know the predicate's shape
// should use FilterRowsNumericBoundCtx.
func (ex *Executor) FilterRowsNumericCtx(ctx context.Context, rows []int, attr string, path schemagraph.JoinPath, pred func(float64) bool) ([]int, error) {
	return ex.FilterRowsNumericBoundCtx(ctx, rows, attr, path, negInf, posInf, pred)
}

// DimValues projects the distinct values of attr over the dimension rows
// reached from the given rows of fromTable via an inner (fact-avoiding)
// path; the roll-up executor uses it to generalize hit values to their
// hierarchy parents.
func (ex *Executor) DimValues(fromTable string, rows []int, path schemagraph.JoinPath, attr string) []relation.Value {
	target := ex.g.DB().Table(path.Target())
	mapped := ex.MapRows(rows, path)
	ai := target.Schema().ColumnIndex(attr)
	if ai < 0 {
		panic(fmt.Sprintf("olap: %s has no column %q", path.Target(), attr))
	}
	seen := make(map[relation.Value]struct{})
	var out []relation.Value
	for _, r := range mapped {
		v := target.Row(r)[ai]
		if v.IsNull() {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// intersectSorted intersects two sorted, deduplicated int slices.
func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
