package olap

import (
	"fmt"
	"sort"

	"context"

	"kdap/internal/relation"
	"kdap/internal/schemagraph"
	"kdap/internal/telemetry/profile"
)

// The multi-row-set fused scan: one pass over a shared attribute code
// column and measure vector evaluates several row sets at once. The
// explore pipeline always needs the same group-by over the local
// subspace and over every roll-up background space — overlapping row
// sets against identical columns — and the batch scheduler collects
// the same shape across concurrent requests. Fusing them walks the
// shared columns once, front to back, instead of once per row set.
//
// Determinism contract: the result for each row set is byte-identical
// to a solo GroupByCtx over that set. Each set keeps its own canonical
// stripe layout (the same serial-or-striped decision and the same
// stripe spans a solo scan would use), each stripe partial accumulates
// over the same contiguous rows in the same order, and partials merge
// in stripe-index order. Fusing only changes when each stripe runs,
// never what it computes or how partials combine.

// mtask is one stripe of one row set in a fused multi-scan.
type mtask struct {
	set    int
	stripe int
	rows   []int
}

// GroupByMultiCtx runs GroupByCtx over each row set in one fused pass
// against the shared columns, returning one result map per input set
// (position-matched; an empty set yields an empty map). Results are
// byte-identical to len(rowSets) solo GroupByCtx calls.
func (ex *Executor) GroupByMultiCtx(ctx context.Context, rowSets [][]int, attr string, path schemagraph.JoinPath, m Measure, agg Agg) ([]map[relation.Value]float64, error) {
	if len(rowSets) == 0 {
		return nil, nil
	}
	dimTable := ex.g.DB().Table(path.Source)
	if dimTable.Schema().ColumnIndex(attr) < 0 {
		panic(fmt.Sprintf("olap: %s has no column %q", path.Source, attr))
	}
	if measureVec(m) != nil {
		ex.stats.groupByVec.Add(int64(len(rowSets)))
	} else {
		ex.stats.groupByEval.Add(int64(len(rowSets)))
	}
	ex.stats.multiScans.Add(1)
	ex.stats.multiRowSets.Add(int64(len(rowSets)))
	codes, dict := ex.attrCodes(attr, path)
	ngroups := len(dict)
	threshold := ParallelRowThreshold()

	// Lay out every set's canonical stripe grid, then order the stripe
	// tasks by starting fact row: the fused pass walks the shared code
	// and measure columns roughly front to back across all sets, so a
	// column region is hot while every set that touches it consumes it.
	stripesOf := make([]int, len(rowSets))
	var tasks []mtask
	total := 0
	for k, rows := range rowSets {
		total += len(rows)
		if len(rows) == 0 {
			continue
		}
		if len(rows) < threshold {
			stripesOf[k] = 1
			tasks = append(tasks, mtask{set: k, stripe: 0, rows: rows})
			continue
		}
		spans := stripeSpans(len(rows))
		stripesOf[k] = len(spans)
		for si, sp := range spans {
			tasks = append(tasks, mtask{set: k, stripe: si, rows: rows[sp.lo:sp.hi]})
		}
	}
	sort.SliceStable(tasks, func(i, j int) bool { return tasks[i].rows[0] < tasks[j].rows[0] })

	workers := 1
	if total >= threshold {
		workers = scanWorkers()
	}
	states := make([][][]aggState, len(rowSets))
	touched := make([][][]bool, len(rowSets))
	for k, ns := range stripesOf {
		states[k] = make([][]aggState, ns)
		touched[k] = make([][]bool, ns)
	}
	// Per-set scan accounting mirrors the solo kernels, so the
	// serial/parallel counters — and the per-request wide event — stay
	// comparable whether or not calls were fused.
	prof := profile.FromContext(ctx)
	for k, ns := range stripesOf {
		switch {
		case ns == 0:
		case ns == 1 || workers == 1:
			ex.stats.serialScans.Add(1)
			prof.AddKernelScan(false, 0, len(rowSets[k]))
		default:
			ex.stats.parallelScans.Add(1)
			ex.stats.kernelChunks.Add(int64(ns))
			prof.AddKernelScan(true, ns, len(rowSets[k]))
		}
	}
	errs := make([]error, len(tasks))
	runStripes(len(tasks), workers, func(i int) {
		t := tasks[i]
		states[t.set][t.stripe], touched[t.set][t.stripe], errs[i] = ex.groupScanChunk(ctx, t.rows, codes, ngroups, m)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := make([]map[relation.Value]float64, len(rowSets))
	for k := range rowSets {
		if stripesOf[k] == 0 {
			out[k] = make(map[relation.Value]float64)
			continue
		}
		st, tc := states[k][0], touched[k][0]
		for w := 1; w < stripesOf[k]; w++ {
			for g := range st {
				if touched[k][w][g] {
					tc[g] = true
					st[g].mergeInto(&states[k][w][g])
				}
			}
		}
		res := make(map[relation.Value]float64, ngroups)
		for c := range st {
			if tc[c] {
				res[dict[c]] = st[c].final(agg)
			}
		}
		out[k] = res
	}
	return out, nil
}
