package olap

import (
	"context"
	"runtime"
	"testing"
)

// Calibration is a measurement, so the test pins its contract rather
// than its verdict: the probe kernels agree bitwise, single-core
// calibration always keeps scans serial, and the verdict is either "no
// win" or one of the swept sizes, applied correctly.
func TestCalibrateThreshold(t *testing.T) {
	ex := NewExecutor(ebiz.Graph)
	m := revenue(t)
	all := ex.FactRows(nil)

	serial, err := ex.scanAggregateChunk(context.Background(), all, m)
	if err != nil {
		t.Fatal(err)
	}
	striped, err := ex.scanAggregateStriped(context.Background(), all, m)
	if err != nil {
		t.Fatal(err)
	}
	// Same stripe-ordered merge contract as the production kernel: only
	// low-order float bits may move between serial and striped, and the
	// Count component must be exact.
	if striped.n != serial.n {
		t.Fatalf("striped probe saw %d values, serial %d", striped.n, serial.n)
	}

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	runtime.GOMAXPROCS(1)
	if tn := CalibrateThreshold(ex, m); tn.ParallelRowThreshold != 0 {
		t.Fatalf("single-core calibration picked threshold %d, want 0 (never stripe)", tn.ParallelRowThreshold)
	}

	runtime.GOMAXPROCS(4)
	tn := CalibrateThreshold(ex, m)
	if tn.ParallelRowThreshold != 0 {
		found := false
		for _, n := range calibrateSizes {
			if n == tn.ParallelRowThreshold {
				found = true
			}
		}
		if !found {
			t.Fatalf("calibration picked %d, not one of the swept sizes", tn.ParallelRowThreshold)
		}
	}

	defer SetParallelRowThreshold(0)
	ApplyTuning(Tuning{ParallelRowThreshold: 4096})
	if got := ParallelRowThreshold(); got != 4096 {
		t.Fatalf("ApplyTuning(4096): threshold %d", got)
	}
	ApplyTuning(Tuning{ParallelRowThreshold: 0})
	if got := ParallelRowThreshold(); got <= 1<<20 {
		t.Fatalf("ApplyTuning(0) should push the threshold out of reach, got %d", got)
	}
}
